// Hardware models: systolic timing, device cost model, FPGA resources,
// energy tables. These encode the relationships Table II/III rely on.
#include <gtest/gtest.h>

#include "hw/device.h"
#include "hw/energy_tables.h"
#include "hw/fpga_model.h"
#include "hw/systolic.h"

namespace cham {
namespace {

// --------------------------------------------------------------- systolic

TEST(Systolic, PerfectlyTiledGemmHasHighUtilisation) {
  hw::SystolicArraySim sim({64, 64, 400e6});
  // K and N multiples of the array, long M: fill/drain amortised.
  const auto run = sim.gemm(/*m=*/4096, /*k=*/64, /*n=*/64);
  EXPECT_GT(run.utilization, 0.9);
}

TEST(Systolic, TinyGemmWastesTheArray) {
  hw::SystolicArraySim sim({64, 64, 400e6});
  const auto run = sim.gemm(/*m=*/1, /*k=*/8, /*n=*/8);
  EXPECT_LT(run.utilization, 0.01);
}

TEST(Systolic, CyclesScaleWithTiles) {
  hw::SystolicArraySim sim({64, 64, 400e6});
  const auto small = sim.gemm(128, 64, 64);
  const auto big = sim.gemm(128, 128, 128);  // 4 tiles instead of 1
  EXPECT_EQ(big.cycles, 4 * small.cycles);
}

TEST(Systolic, MacsExact) {
  hw::SystolicArraySim sim({8, 8, 100e6});
  const auto run = sim.gemm(3, 5, 7);
  EXPECT_DOUBLE_EQ(run.macs, 3.0 * 5.0 * 7.0);
}

TEST(Systolic, InverseIsPoorlyParallel) {
  hw::SystolicArraySim sim({64, 64, 400e6});
  const auto inv = sim.matrix_inverse(256);
  const auto gemm = sim.gemm(256, 256, 256);
  // Same order of MACs, far more cycles: the SLDA bottleneck.
  EXPECT_LT(inv.utilization, gemm.utilization / 5);
}

TEST(Systolic, SecondsFollowFrequency)
{
  hw::SystolicConfig slow{64, 64, 100e6}, fast{64, 64, 400e6};
  hw::SystolicArraySim sim_s(slow), sim_f(fast);
  const auto rs = sim_s.gemm(64, 64, 64);
  const auto rf = sim_f.gemm(64, 64, 64);
  EXPECT_EQ(rs.cycles, rf.cycles);
  EXPECT_NEAR(rs.seconds(slow) / rf.seconds(fast), 4.0, 1e-9);
}

TEST(Systolic, ZeroDimGemmIsFree) {
  hw::SystolicArraySim sim({8, 8, 1e6});
  EXPECT_EQ(sim.gemm(0, 4, 4).cycles, 0);
  EXPECT_EQ(sim.gemm_output_stationary(0, 4, 4).cycles, 0);
  EXPECT_EQ(sim.matrix_inverse(0).cycles, 0);
}

TEST(Systolic, DataflowTradeoff) {
  hw::SystolicArraySim sim({32, 32, 400e6});
  // Deep reduction, small output tile: OS amortises fill over K and wins.
  const auto ws_deep = sim.gemm(32, 4096, 32);
  const auto os_deep = sim.gemm_output_stationary(32, 4096, 32);
  EXPECT_LT(os_deep.cycles, ws_deep.cycles);
  // Long M (many activations through fixed weights): WS streams them and
  // wins over OS's repeated output-tile passes.
  const auto ws_long = sim.gemm(100000, 32, 32);
  const auto os_long = sim.gemm_output_stationary(100000, 32, 32);
  EXPECT_LT(ws_long.cycles, os_long.cycles);
  // Both dataflows execute the same MACs.
  EXPECT_DOUBLE_EQ(ws_deep.macs, os_deep.macs);
}

// ------------------------------------------------------------- cost model

core::OpStats chameleon_like_stats() {
  core::OpStats s;
  s.images = 100;
  s.f_fwd_macs = 100 * 2.6e6;
  s.g_fwd_macs = 100 * 11 * 0.7e6;
  s.g_bwd_macs = 2 * s.g_fwd_macs;
  s.onchip_bytes = 100 * 11 * 2048.0;  // ST sweep from SRAM
  s.offchip_bytes = 100 * 0.2 * 2048.0;  // rare LT bursts
  s.weight_bytes = 100 * 4e5;
  return s;
}

core::OpStats latent_replay_like_stats() {
  core::OpStats s = chameleon_like_stats();
  // Same compute, but all replay traffic goes off-chip.
  s.offchip_bytes = s.onchip_bytes + s.offchip_bytes;
  s.onchip_bytes = 0;
  return s;
}

TEST(CostModel, EmptyStatsCostNothing) {
  const auto cost = hw::estimate_cost(core::OpStats{}, hw::jetson_nano());
  EXPECT_EQ(cost.latency_ms, 0);
  EXPECT_EQ(cost.energy_j, 0);
}

TEST(CostModel, OffchipReplayIsSlowerOnEveryDevice) {
  const auto cham = chameleon_like_stats();
  const auto lr = latent_replay_like_stats();
  for (const auto& dev :
       {hw::jetson_nano(), hw::zcu102_fpga(), hw::edgetpu()}) {
    const auto c = hw::estimate_cost(cham, dev, 0.2);
    const auto l = hw::estimate_cost(lr, dev, 11.0);
    EXPECT_GT(l.latency_ms, c.latency_ms) << dev.name;
    EXPECT_GT(l.energy_j, c.energy_j) << dev.name;
  }
}

TEST(CostModel, FpgaSerialisesComputeAndMemory) {
  const auto dev = hw::zcu102_fpga();
  ASSERT_FALSE(dev.overlap_compute_mem);
  const auto cost = hw::estimate_cost(latent_replay_like_stats(), dev, 11.0);
  EXPECT_NEAR(cost.latency_ms, cost.compute_ms + cost.memory_ms, 1e-9);
  EXPECT_GT(cost.mem_fraction, 0.2);  // paper: 44% for Latent Replay
}

TEST(CostModel, OverlappingDeviceTakesMax) {
  const auto dev = hw::edgetpu();
  ASSERT_TRUE(dev.overlap_compute_mem);
  const auto cost = hw::estimate_cost(chameleon_like_stats(), dev, 0.2);
  EXPECT_NEAR(cost.latency_ms, std::max(cost.compute_ms, cost.memory_ms),
              1e-9);
}

TEST(CostModel, SldaInverseDominatesOnEdgeTpu) {
  core::OpStats slda;
  slda.images = 100;
  slda.f_fwd_macs = 100 * 2.6e6;
  slda.extra_flops = 100 * 2.0 * 256 * 256 * 256;  // d^3 per image
  const auto dev = hw::edgetpu();
  const auto with_inv = hw::estimate_cost(slda, dev, 1.0);
  core::OpStats no_inv = slda;
  no_inv.extra_flops = 0;
  const auto without = hw::estimate_cost(no_inv, dev, 1.0);
  EXPECT_GT(with_inv.latency_ms, 5 * without.latency_ms);
}

TEST(CostModel, EnergyBreakdownSumsToTotal) {
  for (const auto& dev :
       {hw::jetson_nano(), hw::zcu102_fpga(), hw::edgetpu()}) {
    const auto cost = hw::estimate_cost(chameleon_like_stats(), dev, 0.2);
    EXPECT_NEAR(cost.energy_j,
                cost.compute_j + cost.memory_j + cost.static_j, 1e-12)
        << dev.name;
    EXPECT_GT(cost.compute_j, 0.0);
    EXPECT_GT(cost.memory_j, 0.0);
    EXPECT_GT(cost.static_j, 0.0);
  }
}

TEST(CostModel, EnergyIncludesStaticPower) {
  auto dev = hw::zcu102_fpga();
  auto stats = chameleon_like_stats();
  const auto base = hw::estimate_cost(stats, dev, 0.2);
  dev.static_power_w *= 2.0;
  const auto doubled = hw::estimate_cost(stats, dev, 0.2);
  EXPECT_GT(doubled.energy_j, base.energy_j);
  EXPECT_EQ(doubled.latency_ms, base.latency_ms);
}

TEST(DeviceProfiles, JetsonCannotUseOnchipBuffer) {
  EXPECT_FALSE(hw::jetson_nano().has_onchip_buffer);  // paper Sec. IV-C
  EXPECT_TRUE(hw::zcu102_fpga().has_onchip_buffer);
  EXPECT_TRUE(hw::edgetpu().has_onchip_buffer);
}

TEST(DeviceProfiles, EdgeTpuThroughputDerivedFromSystolicSim) {
  const auto dev = hw::edgetpu();
  // 64x64 @ 400 MHz peak = 1.638 TMAC/s; achieved must be below peak but
  // a sane fraction of it.
  EXPECT_LT(dev.mac_throughput, 64.0 * 64 * 400e6);
  EXPECT_GT(dev.mac_throughput, 0.2 * 64 * 64 * 400e6);
}

// ------------------------------------------------------------------ FPGA

TEST(FpgaModel, DefaultConfigMatchesPaperTable3) {
  const auto res = hw::estimate_fpga_resources({});
  EXPECT_EQ(res.dsp, 1164);
  EXPECT_EQ(res.bram, 632);
  EXPECT_EQ(res.luts, 169428);
  EXPECT_NEAR(res.dsp_pct, 46.19, 0.05);
  EXPECT_NEAR(res.bram_pct, 96.34, 0.05);
  EXPECT_NEAR(res.lut_pct, 72.50, 0.05);
  EXPECT_TRUE(res.fits);
}

TEST(FpgaModel, BiggerArrayStopsFitting) {
  hw::FpgaAcceleratorConfig cfg;
  cfg.pe_rows = cfg.pe_cols = 40;
  EXPECT_FALSE(hw::estimate_fpga_resources(cfg).fits);
}

TEST(FpgaModel, StBufferGrowthIsBramBound) {
  hw::FpgaAcceleratorConfig cfg;
  cfg.st_replay_buffer_kib = 2000;
  const auto res = hw::estimate_fpga_resources(cfg);
  EXPECT_GT(res.bram_pct, 100.0);
  EXPECT_LT(res.dsp_pct, 100.0);  // DSP unaffected by buffers
}

TEST(EnergyTable, DramFarExceedsSram) {
  EXPECT_GT(hw::EnergyTable45nm::dram_pj_per_byte,
            20 * hw::EnergyTable45nm::sram_pj_per_byte);
  EXPECT_GT(hw::EnergyTable45nm::fp32_mac_pj,
            hw::EnergyTable45nm::fp16_mac_pj);
}

}  // namespace
}  // namespace cham
