// Property test of the memory-traffic ledger (paper Table II rests on it):
// over a seeded 500-step stream with a mid-run preference shift, the
// per-component subtotals charged by the Chameleon path must sum EXACTLY to
// the on-chip and off-chip byte totals at every step, and the full
// structural audit must stay clean.
//
// Exactness is not a floating-point accident: every charge is an integral
// byte count (elements * sizeof(float)) and doubles represent integers
// exactly up to 2^53, so both accumulation orders — the running totals and
// the per-component subtotals — land on the same integer. EXPECT_EQ on the
// doubles is therefore the right assertion; any drift means a byte was
// charged to a total without a component (or vice versa).
#include <gtest/gtest.h>

#include <memory>

#include "core/chameleon.h"
#include "nn/layers.h"
#include "nn/sequential.h"

namespace cham {
namespace {

// Same minimal environment as test_chameleon_behavior: 3-channel 8x8 images,
// a 1-conv backbone, and a pool+linear head over 6 classes.
struct TinyEnv {
  data::DatasetConfig data_cfg;
  std::unique_ptr<nn::Sequential> f;
  std::unique_ptr<data::LatentCache> latents;
  core::LearnerEnv env;

  explicit TinyEnv(int64_t classes = 6) {
    data_cfg = data::core50_config();
    data_cfg.num_classes = classes;
    data_cfg.num_domains = 3;
    data_cfg.image_hw = 8;
    data_cfg.train_instances = 4;

    Rng rng(1);
    f = std::make_unique<nn::Sequential>();
    f->add(std::make_unique<nn::Conv2d>(3, 4, 8, 8, 3, 2, 1, false, rng));
    f->add(std::make_unique<nn::ReLU>());
    latents = std::make_unique<data::LatentCache>(data_cfg, *f);

    env.data_cfg = &data_cfg;
    env.latents = latents.get();
    env.latent_shape = Shape{{4, 4, 4}};
    env.f_fwd_macs = f->macs_per_sample();
    env.lr = 0.01f;
    env.head_factory = [classes]() {
      Rng hrng(2);
      auto g = std::make_unique<nn::Sequential>();
      g->add(std::make_unique<nn::GlobalAvgPool>());
      g->add(std::make_unique<nn::Linear>(4, classes, hrng));
      return g;
    };
  }
};

TEST(LedgerProperty, ComponentSubtotalsExactlySumToTrafficTotals) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.st_capacity = 6;
  cc.lt_capacity = 24;
  cc.lt_period_h = 5;
  cc.lt_replay_per_batch = 4;
  cc.learning_window = 40;
  core::ChameleonLearner learner(env.env, cc, 123);

  Rng stream(99);
  constexpr int kSteps = 500;
  for (int step = 0; step < kSteps; ++step) {
    // Skewed stream with a hard preference shift at the midpoint (classes
    // 0-2 dominate, then 3-5) plus 10% uniform background, so the run
    // crosses several recalibration windows, ST saturation, LT quota fills
    // and replacements, and LT burst staging -- every charge site fires.
    data::Batch b;
    const auto domain = static_cast<int32_t>(stream.uniform_int(3));
    b.domain = domain;
    for (int i = 0; i < 4; ++i) {
      int64_t y = (step < kSteps / 2) ? stream.uniform_int(3)
                                      : 3 + stream.uniform_int(3);
      if (stream.uniform_int(10) == 0) y = stream.uniform_int(6);
      b.keys.push_back({static_cast<int32_t>(y), domain,
                        static_cast<int32_t>(stream.uniform_int(4)), false});
      b.labels.push_back(y);
    }
    learner.observe(b);

    const core::OpStats& s = learner.stats();
    ASSERT_EQ(s.onchip_component_sum(), s.onchip_bytes) << "step " << step;
    ASSERT_EQ(s.offchip_component_sum(), s.offchip_bytes) << "step " << step;
  }

  // The stream must have exercised both stores and all six components.
  const core::OpStats& s = learner.stats();
  EXPECT_GT(s.onchip_st_replay_bytes, 0.0);
  EXPECT_GT(s.onchip_st_write_bytes, 0.0);
  EXPECT_GT(s.onchip_st_promote_bytes, 0.0);
  EXPECT_GT(s.offchip_lt_burst_bytes, 0.0);
  EXPECT_GT(s.offchip_lt_write_bytes, 0.0);
  EXPECT_EQ(s.images, 4 * kSteps);

  const util::AuditReport report = learner.check_invariants();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// Merging per-task OpStats (operator+=) must preserve the decomposition:
// the evaluator aggregates stats across tasks before reporting Table II.
TEST(LedgerProperty, AggregationPreservesComponentDecomposition) {
  core::OpStats a, b;
  a.charge_onchip_st_replay(640.0);
  a.charge_offchip_lt_burst(1280.0);
  b.charge_onchip_st_write(64.0);
  b.charge_onchip_st_promote(256.0);
  b.charge_offchip_proto(512.0);
  b.charge_offchip_lt_write(128.0);
  a += b;
  EXPECT_EQ(a.onchip_component_sum(), a.onchip_bytes);
  EXPECT_EQ(a.offchip_component_sum(), a.offchip_bytes);
  EXPECT_TRUE(a.check_invariants().ok()) << a.check_invariants().to_string();
}

}  // namespace
}  // namespace cham
