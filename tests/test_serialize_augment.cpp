// Replay-buffer serialisation round-trips and image augmentations.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/augment.h"
#include "replay/serialize.h"
#include "tensor/ops.h"

namespace cham {
namespace {

replay::ReplaySample make_sample(int64_t label, uint64_t seed) {
  replay::ReplaySample s;
  s.key = {static_cast<int32_t>(label), 2, 5, false};
  s.label = label;
  s.latent = Tensor({1, 4, 2, 2});
  Rng rng(seed);
  ops::fill_normal(s.latent, rng, 0.0f, 1.0f);
  return s;
}

TEST(Serialize, SampleRoundTrip) {
  replay::ReplaySample s = make_sample(7, 1);
  s.logits = Tensor::from({0.1f, 0.9f, -0.5f});
  std::stringstream ss;
  ASSERT_TRUE(replay::save_sample(s, ss));
  replay::ReplaySample back;
  ASSERT_TRUE(replay::load_sample(back, ss));
  EXPECT_EQ(back.key, s.key);
  EXPECT_EQ(back.label, 7);
  EXPECT_EQ(ops::max_abs_diff(back.latent, s.latent), 0.0);
  EXPECT_EQ(ops::max_abs_diff(back.logits, s.logits), 0.0);
}

TEST(Serialize, SampleWithoutPayloadsRoundTrip) {
  replay::ReplaySample s;
  s.key = {1, 2, 3, true};
  s.label = 1;
  std::stringstream ss;
  ASSERT_TRUE(replay::save_sample(s, ss));
  replay::ReplaySample back;
  ASSERT_TRUE(replay::load_sample(back, ss));
  EXPECT_EQ(back.key, s.key);
  EXPECT_TRUE(back.latent.empty());
  EXPECT_TRUE(back.logits.empty());
}

TEST(Serialize, BufferRoundTripPreservesReservoirState) {
  replay::ReplayBuffer buf(8);
  Rng rng(2);
  for (int64_t i = 0; i < 30; ++i) {
    buf.reservoir_add(make_sample(i % 5, static_cast<uint64_t>(i)), rng);
  }
  std::stringstream ss;
  ASSERT_TRUE(replay::save_buffer(buf, ss));

  replay::ReplayBuffer back(1);  // wrong capacity: load must replace it
  ASSERT_TRUE(replay::load_buffer(back, ss));
  EXPECT_EQ(back.capacity(), 8);
  EXPECT_EQ(back.size(), buf.size());
  EXPECT_EQ(back.seen(), 30);
  for (int64_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(back.item(i).label, buf.item(i).label);
    EXPECT_EQ(ops::max_abs_diff(back.item(i).latent, buf.item(i).latent),
              0.0);
  }
}

TEST(Serialize, FileRoundTrip) {
  replay::ReplayBuffer buf(4);
  Rng rng(3);
  buf.reservoir_add(make_sample(1, 9), rng);
  const std::string path = "/tmp/cham_test_buffer.bin";
  ASSERT_TRUE(replay::save_buffer_file(buf, path));
  replay::ReplayBuffer back(4);
  ASSERT_TRUE(replay::load_buffer_file(back, path));
  EXPECT_EQ(back.size(), 1);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss;
  ss << "not a buffer at all";
  replay::ReplayBuffer buf(4);
  EXPECT_FALSE(replay::load_buffer(buf, ss));
  EXPECT_FALSE(replay::load_buffer_file(buf, "/tmp/does_not_exist.bin"));
}

TEST(Serialize, RejectsTruncated) {
  replay::ReplayBuffer buf(4);
  Rng rng(4);
  buf.reservoir_add(make_sample(1, 10), rng);
  std::stringstream ss;
  ASSERT_TRUE(replay::save_buffer(buf, ss));
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  replay::ReplayBuffer back(4);
  EXPECT_FALSE(replay::load_buffer(back, truncated));
}

// ---------------------------------------------------------- augmentations

Tensor test_image() {
  Tensor img({3, 8, 8});
  for (int64_t i = 0; i < img.numel(); ++i) {
    img[i] = static_cast<float>(i % 64) / 64.0f;
  }
  return img;
}

TEST(Augment, HflipIsInvolution) {
  const Tensor img = test_image();
  EXPECT_EQ(ops::max_abs_diff(data::hflip(data::hflip(img)), img), 0.0);
  EXPECT_GT(ops::max_abs_diff(data::hflip(img), img), 0.0);
}

TEST(Augment, ShiftMovesContent) {
  Tensor img({1, 4, 4});
  img[5] = 1.0f;  // (y=1, x=1)
  const Tensor shifted = data::shift(img, 1, 1);
  EXPECT_EQ(shifted[(2) * 4 + 2], 1.0f);
  // Zero shift is identity.
  EXPECT_EQ(ops::max_abs_diff(data::shift(img, 0, 0), img), 0.0);
}

TEST(Augment, ShiftClampsAtEdges) {
  Tensor img({1, 2, 2});
  img[0] = 0.25f;
  img[1] = 0.75f;
  img[2] = 0.5f;
  img[3] = 1.0f;
  const Tensor shifted = data::shift(img, 5, 5);  // everything from corner
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(shifted[i], 0.25f);
}

TEST(Augment, ColorJitterStaysInRange) {
  const Tensor img = test_image();
  const Tensor j = data::color_jitter(img, 1.5f, 1.4f);
  for (int64_t i = 0; i < j.numel(); ++i) {
    EXPECT_GE(j[i], 0.0f);
    EXPECT_LE(j[i], 1.0f);
  }
  // Identity jitter is identity.
  EXPECT_LT(ops::max_abs_diff(data::color_jitter(img, 1.0f, 1.0f), img),
            1e-6);
}

TEST(Augment, FullPipelineDeterministicPerSeed) {
  const Tensor img = test_image();
  data::AugmentConfig cfg;
  Rng a(7), b(7), c(8);
  const Tensor out_a = data::augment(img, cfg, a);
  const Tensor out_b = data::augment(img, cfg, b);
  EXPECT_EQ(ops::max_abs_diff(out_a, out_b), 0.0);
  const Tensor out_c = data::augment(img, cfg, c);
  EXPECT_GT(ops::max_abs_diff(out_a, out_c), 0.0);
}

TEST(Augment, BatchAppliesPerImage) {
  Tensor batch({2, 3, 8, 8});
  Rng rng(9);
  ops::fill_uniform(batch, rng, 0.0f, 1.0f);
  data::AugmentConfig cfg;
  cfg.noise_sigma = 0.0f;
  Rng arng(10);
  const Tensor out = data::augment_batch(batch, cfg, arng);
  EXPECT_EQ(out.shape(), batch.shape());
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out[i], 0.0f);
    EXPECT_LE(out[i], 1.0f);
  }
}

}  // namespace
}  // namespace cham
