// PreferenceTracker: Eq. 2 allocation factor, window recalibration, drift.
#include <gtest/gtest.h>

#include "core/preference_tracker.h"
#include "tensor/rng.h"

namespace cham {
namespace {

TEST(PreferenceTracker, NeutralBeforeFirstWindow) {
  core::PreferenceTracker t(10, 3, 100, 0.5f);
  EXPECT_DOUBLE_EQ(t.delta_k(), 0.5);
  EXPECT_TRUE(t.preferred_classes().empty());
  for (int i = 0; i < 99; ++i) t.update(0);
  EXPECT_EQ(t.recalibrations(), 0);  // window not yet full
}

TEST(PreferenceTracker, IdentifiesTopKAfterWindow) {
  core::PreferenceTracker t(10, 2, 100, 0.5f);
  // Classes 3 and 7 dominate the window.
  for (int i = 0; i < 40; ++i) t.update(3);
  for (int i = 0; i < 40; ++i) t.update(7);
  for (int i = 0; i < 20; ++i) t.update(i % 8);  // noise
  EXPECT_EQ(t.recalibrations(), 1);
  EXPECT_TRUE(t.is_preferred(3));
  EXPECT_TRUE(t.is_preferred(7));
  EXPECT_EQ(t.preferred_classes().size(), 2u);
}

// A window that reveals fewer classes than top_k must not pad the preferred
// set with never-seen classes: zero-count classes would otherwise receive
// the Delta_k allocation weight in Eq. 4 despite no evidence the user cares
// about them, and n_k would be diluted by averaging over the padded top_k.
TEST(PreferenceTracker, ZeroCountClassesNeverPreferred) {
  core::PreferenceTracker t(10, 4, 20, 0.5f);
  for (int i = 0; i < 12; ++i) t.update(0);
  for (int i = 0; i < 8; ++i) t.update(1);
  ASSERT_EQ(t.recalibrations(), 1);

  EXPECT_TRUE(t.is_preferred(0));
  EXPECT_TRUE(t.is_preferred(1));
  EXPECT_EQ(t.preferred_classes().size(), 2u);  // not padded to top_k = 4
  for (int64_t c = 2; c < 10; ++c) EXPECT_FALSE(t.is_preferred(c));

  // n_k averages over the 2 actually-preferred classes (= 10), n_rest = 0,
  // so Eq. 2 saturates and clamps to 0.95; a never-seen class gets the
  // non-preferred weight.
  EXPECT_DOUBLE_EQ(t.delta_k(), 0.95);
  EXPECT_DOUBLE_EQ(t.delta(7), 1.0 - t.delta_k());
}

TEST(PreferenceTracker, DeltaIncreasesWithSkew) {
  auto run_window = [](int64_t pref_count) {
    core::PreferenceTracker t(10, 1, 100, 1.0f);
    for (int64_t i = 0; i < pref_count; ++i) t.update(0);
    for (int64_t i = 0; i < 100 - pref_count; ++i)
      t.update(1 + i % 9);
    return t.delta_k();
  };
  EXPECT_GT(run_window(80), run_window(40));
}

TEST(PreferenceTracker, RhoZeroGivesNeutralAllocation) {
  // Eq. 2 with rho = 0: n_k^0 / (n_k + n_rest)^0 = 1, clamped to 0.95, so
  // the allocation never differentiates by frequency magnitude. Preferred
  // and non-preferred weights stay fixed across skew levels.
  core::PreferenceTracker t(10, 2, 50, 0.0f);
  for (int i = 0; i < 50; ++i) t.update(i % 3);
  const double d1 = t.delta_k();
  for (int i = 0; i < 50; ++i) t.update(0);
  EXPECT_DOUBLE_EQ(t.delta_k(), d1);
}

TEST(PreferenceTracker, DeltaPerClassSplitsPreferred) {
  core::PreferenceTracker t(6, 2, 60, 0.8f);
  for (int i = 0; i < 30; ++i) t.update(4);
  for (int i = 0; i < 20; ++i) t.update(5);
  for (int i = 0; i < 10; ++i) t.update(0);
  EXPECT_DOUBLE_EQ(t.delta(4), t.delta_k());
  EXPECT_DOUBLE_EQ(t.delta(0), 1.0 - t.delta_k());
  EXPECT_GT(t.delta(4), t.delta(0));  // strong skew favours preferred
}

TEST(PreferenceTracker, AdaptsToDriftedPreferences) {
  core::PreferenceTracker t(10, 2, 100, 0.5f);
  for (int i = 0; i < 100; ++i) t.update(i % 2);  // classes 0,1
  EXPECT_TRUE(t.is_preferred(0));
  EXPECT_TRUE(t.is_preferred(1));
  // User switches to classes 8,9.
  for (int i = 0; i < 100; ++i) t.update(8 + i % 2);
  EXPECT_TRUE(t.is_preferred(8));
  EXPECT_TRUE(t.is_preferred(9));
  EXPECT_FALSE(t.is_preferred(0));
}

TEST(PreferenceTracker, DeltaClampedToProbabilityRange) {
  core::PreferenceTracker t(10, 1, 50, 1.0f);
  for (int i = 0; i < 50; ++i) t.update(3);  // 100% one class
  EXPECT_LE(t.delta_k(), 0.95);
  EXPECT_GE(t.delta_k(), 0.05);
}

TEST(PreferenceTracker, TopKLargerThanClassesClamped) {
  core::PreferenceTracker t(3, 10, 30, 0.5f);
  for (int i = 0; i < 30; ++i) t.update(i % 3);
  EXPECT_EQ(t.preferred_classes().size(), 3u);
}

TEST(PreferenceTracker, SamplesSeenAccumulates) {
  core::PreferenceTracker t(5, 2, 10, 0.5f);
  for (int i = 0; i < 25; ++i) t.update(0);
  EXPECT_EQ(t.recalibrations(), 2);
  EXPECT_EQ(t.samples_seen(), 20);  // counted at recalibration boundaries
}

}  // namespace
}  // namespace cham
