// Extension subsystems: Class-IL stream, DRAM timing model, task-free
// shift detector, CSV writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/shift_detector.h"
#include "data/stream.h"
#include "hw/dram.h"
#include "metrics/csv.h"
#include "tensor/rng.h"

namespace cham {
namespace {

// ------------------------------------------------------------- Class-IL

data::DatasetConfig tiny_data() {
  auto cfg = data::core50_config();
  cfg.num_classes = 12;
  cfg.num_domains = 3;
  cfg.train_instances = 4;
  return cfg;
}

TEST(ClassIncrementalStream, TasksPartitionClasses) {
  data::ClassIncrementalConfig cc;
  cc.classes_per_task = 4;
  data::ClassIncrementalStream stream(tiny_data(), cc);
  EXPECT_EQ(stream.num_tasks(), 3);
  std::set<int64_t> all;
  for (int64_t t = 0; t < stream.num_tasks(); ++t) {
    for (int64_t c : stream.task_classes(t)) {
      EXPECT_TRUE(all.insert(c).second) << "class in two tasks";
    }
  }
  EXPECT_EQ(all.size(), 12u);
}

TEST(ClassIncrementalStream, BatchesOnlyContainTaskClasses) {
  data::ClassIncrementalConfig cc;
  cc.classes_per_task = 6;
  data::ClassIncrementalStream stream(tiny_data(), cc);
  for (const auto& b : stream.batches()) {
    const auto& classes = stream.task_classes(b.domain);
    std::set<int64_t> allowed(classes.begin(), classes.end());
    for (int64_t y : b.labels) EXPECT_TRUE(allowed.count(y));
  }
}

TEST(ClassIncrementalStream, TasksArriveInOrder) {
  data::ClassIncrementalConfig cc;
  cc.classes_per_task = 4;
  data::ClassIncrementalStream stream(tiny_data(), cc);
  int64_t last = 0;
  for (const auto& b : stream.batches()) {
    EXPECT_GE(b.domain, last);
    last = b.domain;
  }
  EXPECT_EQ(last, stream.num_tasks() - 1);
}

TEST(ClassIncrementalStream, UnevenLastTask) {
  auto dc = tiny_data();
  dc.num_classes = 10;
  data::ClassIncrementalConfig cc;
  cc.classes_per_task = 4;
  data::ClassIncrementalStream stream(dc, cc);
  EXPECT_EQ(stream.num_tasks(), 3);
  EXPECT_EQ(stream.task_classes(2).size(), 2u);
}

// ----------------------------------------------------------------- DRAM

TEST(Dram, StreamingBeatsRandomAccess) {
  hw::DramTiming t;
  // 160 sub-row latents (2 KiB) fetched randomly vs one 320 KiB stream:
  // random access pays activate/precharge per object.
  const int64_t total = 320 * 1024;
  const auto stream = hw::stream_access(t, total);
  const auto random = hw::random_access(t, 160, 2048);
  EXPECT_LT(stream.time_ns, random.time_ns);
  EXPECT_LE(stream.energy_pj, random.energy_pj);
  EXPECT_LT(stream.activates, random.activates + 1);
}

TEST(Dram, SmallRandomObjectsCollapseBandwidth) {
  hw::DramTiming t;
  // 2 KiB objects (our latents) fetched randomly vs streamed.
  const auto random = hw::random_access(t, 100, 2048);
  const auto stream = hw::stream_access(t, 100 * 2048);
  const double bw_random = hw::effective_bandwidth(random, 100 * 2048);
  const double bw_stream = hw::effective_bandwidth(stream, 100 * 2048);
  EXPECT_LT(bw_random, bw_stream);
  // Both patterns must deliver sane LPDDR4-class numbers (0.1-10 GB/s).
  EXPECT_GT(bw_random, 1e8);
  EXPECT_LT(bw_stream, 1e10);
}

TEST(Dram, ZeroBytesFree) {
  hw::DramTiming t;
  EXPECT_EQ(hw::stream_access(t, 0).time_ns, 0);
  EXPECT_EQ(hw::random_access(t, 0, 100).energy_pj, 0);
}

TEST(Dram, ActivatesTrackRows) {
  hw::DramTiming t;
  t.row_bytes = 1024;
  const auto c = hw::stream_access(t, 4096);
  EXPECT_EQ(c.activates, 4);
}

// -------------------------------------------------------- shift detector

TEST(ShiftDetector, DetectsStepChange) {
  core::ShiftDetector det;
  Rng rng(1);
  bool fired_before_shift = false;
  for (int i = 0; i < 50; ++i) {
    fired_before_shift |= det.update(1.0 + 0.05 * rng.normal());
  }
  EXPECT_FALSE(fired_before_shift);
  bool fired_after = false;
  for (int i = 0; i < 10; ++i) {
    fired_after |= det.update(3.0 + 0.05 * rng.normal());
  }
  EXPECT_TRUE(fired_after);
  EXPECT_EQ(det.detections(), 1);
}

TEST(ShiftDetector, RefractoryPreventsDoubleFire) {
  core::ShiftDetector::Config cfg;
  cfg.refractory = 100;
  core::ShiftDetector det(cfg);
  Rng rng(2);
  for (int i = 0; i < 30; ++i) det.update(1.0 + 0.02 * rng.normal());
  int64_t fires = 0;
  for (int i = 0; i < 30; ++i) fires += det.update(5.0 + 0.02 * rng.normal());
  EXPECT_EQ(fires, 1);
}

TEST(ShiftDetector, SilentOnStationarySignal) {
  core::ShiftDetector det;
  Rng rng(3);
  int64_t fires = 0;
  for (int i = 0; i < 500; ++i) fires += det.update(2.0 + 0.1 * rng.normal());
  EXPECT_LE(fires, 1);  // rare false positives tolerated, storms are not
}

TEST(ShiftDetector, DetectsMultipleBoundaries) {
  core::ShiftDetector det;
  Rng rng(4);
  double level = 1.0;
  int64_t fires = 0;
  for (int seg = 0; seg < 4; ++seg) {
    for (int i = 0; i < 40; ++i) {
      fires += det.update(level + 0.03 * rng.normal());
    }
    level += 2.0;
  }
  EXPECT_GE(fires, 3);
}

// ------------------------------------------------------------------ CSV

TEST(Csv, QuotesSpecialCharacters) {
  metrics::CsvWriter w({"name", "note"});
  w.append_row({std::string("a,b"), std::string("say \"hi\"")});
  const std::string out = w.to_string();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, NumericRows) {
  metrics::CsvWriter w({"x", "y"});
  w.append_row(std::vector<double>{1.5, 2.25}, 2);
  EXPECT_NE(w.to_string().find("1.50,2.25"), std::string::npos);
  EXPECT_EQ(w.row_count(), 2);
}

TEST(Csv, WritesFile) {
  metrics::CsvWriter w({"a"});
  w.append_row({std::string("1")});
  const std::string path = "/tmp/cham_test_csv.csv";
  ASSERT_TRUE(w.write(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cham
