// Zero-copy replay path: gathered execution must be BIT-identical to
// stacked execution, across ragged batch sizes, train and eval, and with
// the first-layer dInput elision on. These properties hold per SIMD
// variant (the gather pack feeds the same micro-kernels as the dense pack,
// so whichever CHAM_SIMD this binary was built with is exactly the variant
// under test; the CI sanitizer/variant legs rebuild and rerun this suite).
// Also pins down the staged-LT burst ledger charge (satellite of the
// slot-ref staging rework) and the cold-start edge cases.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/chameleon.h"
#include "data/latent_cache.h"
#include "nn/layers.h"
#include "nn/sequential.h"
#include "replay/memory_accounting.h"
#include "tensor/ops.h"

namespace cham {
namespace {

// Head over 4x4x4 latents exercising every gather-capable layer: pointwise
// conv (gather-cols GEMM), depthwise conv (plane gather), general conv
// (per-sample im2col from a row pointer), GAP (plane reduction) and Linear
// (gather-A GEMM).
std::unique_ptr<nn::Sequential> make_head(uint64_t seed) {
  Rng rng(seed);
  auto g = std::make_unique<nn::Sequential>();
  g->add(std::make_unique<nn::Conv2d>(4, 8, 4, 4, 1, 1, 0, true, rng));
  g->add(std::make_unique<nn::ReLU>());
  g->add(std::make_unique<nn::DepthwiseConv2d>(8, 4, 4, 3, 1, 1, rng));
  g->add(std::make_unique<nn::Conv2d>(8, 8, 4, 4, 3, 1, 1, false, rng));
  g->add(std::make_unique<nn::GlobalAvgPool>());
  g->add(std::make_unique<nn::Linear>(8, 6, rng));
  return g;
}

constexpr int64_t kSample = 4 * 4 * 4;

// Scattered per-sample storage (separate heap blocks) + the equivalent
// stacked batch tensor, from one value stream.
struct ScatteredBatch {
  std::vector<std::vector<float>> blocks;
  std::vector<const float*> rows;
  Tensor stacked;

  explicit ScatteredBatch(int64_t n, uint64_t seed) {
    Rng rng(seed);
    stacked = Tensor({n, 4, 4, 4});
    blocks.resize(static_cast<size_t>(n));
    rows.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      auto& blk = blocks[static_cast<size_t>(i)];
      blk.resize(static_cast<size_t>(kSample));
      for (auto& v : blk) v = rng.normal_f(0.0f, 1.0f);
      rows[static_cast<size_t>(i)] = blk.data();
      std::memcpy(stacked.data() + i * kSample, blk.data(),
                  static_cast<size_t>(kSample) * sizeof(float));
    }
  }

  nn::GatherBatch gather() const {
    nn::GatherBatch gb;
    gb.rows = rows.data();
    gb.n = static_cast<int64_t>(rows.size());
    gb.sample_shape = Shape{{4, 4, 4}};
    return gb;
  }
};

TEST(GatherPath, EvalForwardBitIdenticalToStackedAcrossRaggedSizes) {
  auto g = make_head(3);
  for (int64_t n : {1, 2, 3, 5, 8, 13, 17}) {
    ScatteredBatch batch(n, 100 + static_cast<uint64_t>(n));
    const Tensor stacked = g->forward(Tensor(batch.stacked), /*train=*/false);
    const Tensor gathered = g->forward_gather(batch.gather(), /*train=*/false);
    ASSERT_EQ(stacked.shape(), gathered.shape()) << "n=" << n;
    EXPECT_EQ(std::memcmp(stacked.data(), gathered.data(),
                          static_cast<size_t>(stacked.numel()) * sizeof(float)),
              0)
        << "n=" << n;
  }
}

TEST(GatherPath, TrainStepBitIdenticalToStacked) {
  for (int64_t n : {1, 4, 11}) {
    auto dense = make_head(7);
    auto gathered = make_head(7);  // identical init
    dense->set_needs_input_grad(false);
    gathered->set_needs_input_grad(false);

    ScatteredBatch batch(n, 500 + static_cast<uint64_t>(n));
    const Tensor out_d = dense->forward(Tensor(batch.stacked), /*train=*/true);
    const Tensor out_g = gathered->forward_gather(batch.gather(),
                                                  /*train=*/true);
    ASSERT_EQ(std::memcmp(out_d.data(), out_g.data(),
                          static_cast<size_t>(out_d.numel()) * sizeof(float)),
              0)
        << "n=" << n;

    Tensor grad(out_d.shape());
    Rng grng(9);
    ops::fill_normal(grad, grng, 0.0f, 1.0f);
    dense->backward(grad);
    gathered->backward(Tensor(grad));

    auto pd = dense->params();
    auto pg = gathered->params();
    ASSERT_EQ(pd.size(), pg.size());
    for (size_t i = 0; i < pd.size(); ++i) {
      EXPECT_EQ(std::memcmp(pd[i]->grad.data(), pg[i]->grad.data(),
                            static_cast<size_t>(pd[i]->grad.numel()) *
                                sizeof(float)),
                0)
          << "param " << i << " grad diverged, n=" << n;
    }
  }
}

TEST(GatherPath, FirstLayerElisionLeavesParamGradsBitIdentical) {
  auto full = make_head(13);
  auto elided = make_head(13);
  elided->set_needs_input_grad(false);

  ScatteredBatch batch(6, 77);
  (void)full->forward(Tensor(batch.stacked), /*train=*/true);
  (void)elided->forward(Tensor(batch.stacked), /*train=*/true);
  Tensor grad({6, 6});
  Rng grng(21);
  ops::fill_normal(grad, grng, 0.0f, 1.0f);
  const Tensor din_full = full->backward(grad);
  const Tensor din_elided = elided->backward(Tensor(grad));

  EXPECT_FALSE(din_full.empty());
  EXPECT_TRUE(din_elided.empty()) << "elided first layer still produced dX";

  auto pf = full->params();
  auto pe = elided->params();
  ASSERT_EQ(pf.size(), pe.size());
  for (size_t i = 0; i < pf.size(); ++i) {
    EXPECT_EQ(std::memcmp(pf[i]->grad.data(), pe[i]->grad.data(),
                          static_cast<size_t>(pf[i]->grad.numel()) *
                              sizeof(float)),
              0)
        << "param " << i << " grad changed under elision";
  }
}

TEST(GatherPath, BackwardMacModelBelowTwiceForwardAfterElision) {
  auto g = make_head(17);
  const int64_t fwd = g->macs_per_sample();
  EXPECT_EQ(g->backward_macs_per_sample(), 2 * fwd);  // default: full dX
  g->set_needs_input_grad(false);
  const int64_t bwd = g->backward_macs_per_sample();
  EXPECT_LT(bwd, 2 * fwd);
  EXPECT_GT(bwd, fwd);  // weight grads alone already cost one forward
}

// --------------------------------------------------- learner-level checks

struct TinyEnv {
  data::DatasetConfig data_cfg;
  std::unique_ptr<nn::Sequential> f;
  std::unique_ptr<data::LatentCache> latents;
  core::LearnerEnv env;

  TinyEnv() {
    data_cfg = data::core50_config();
    data_cfg.num_classes = 6;
    data_cfg.num_domains = 3;
    data_cfg.image_hw = 8;
    data_cfg.train_instances = 4;

    Rng rng(1);
    f = std::make_unique<nn::Sequential>();
    f->add(std::make_unique<nn::Conv2d>(3, 4, 8, 8, 3, 2, 1, false, rng));
    f->add(std::make_unique<nn::ReLU>());
    latents = std::make_unique<data::LatentCache>(data_cfg, *f, 0);

    env.data_cfg = &data_cfg;
    env.latents = latents.get();
    env.latent_shape = Shape{{4, 4, 4}};
    env.f_fwd_macs = f->macs_per_sample();
    env.lr = 0.01f;
    env.head_factory = [] {
      Rng hrng(2);
      auto g = std::make_unique<nn::Sequential>();
      g->add(std::make_unique<nn::GlobalAvgPool>());
      g->add(std::make_unique<nn::Linear>(4, 6, hrng));
      return g;
    };
  }

  data::Batch batch(std::vector<int64_t> labels, long long salt = 0) const {
    data::Batch b;
    b.domain = 0;
    for (size_t i = 0; i < labels.size(); ++i) {
      b.keys.push_back(
          {static_cast<int32_t>(labels[i]), 0,
           static_cast<int32_t>((salt + static_cast<long long>(i)) % 4),
           false});
      b.labels.push_back(labels[i]);
    }
    return b;
  }
};

// Cold start: the very first observe() runs with an empty ST and empty LT
// (gather batch = incoming rows only) and every ragged batch size works.
TEST(GatherPath, ColdStartAndRaggedBatchesObserveCleanly) {
  TinyEnv env;
  core::ChameleonConfig cc;
  core::ChameleonLearner learner(env.env, cc, /*seed=*/5);

  learner.observe(env.batch({2}));  // bsz=1, ST empty, LT empty
  EXPECT_EQ(learner.short_term().size(), 1);
  learner.observe(env.batch({0, 1, 2, 3, 4}, 1));
  learner.observe(env.batch({5, 0}, 2));
  EXPECT_TRUE(learner.check_invariants().ok())
      << learner.check_invariants().to_string();
  // Slab configured to one row per latent, unit-stride gatherable.
  EXPECT_TRUE(learner.short_term().store().configured());
  EXPECT_EQ(learner.short_term().store().row_numel(),
            env.env.latent_shape.numel());
}

// Slot-ref staging regression: the burst ledger charge is unchanged — one
// DMA burst of staged_count * latent_bytes on every h-th step, zero bytes
// while consuming, even though the host now stages 8-byte refs instead of
// deep-copied tensors.
TEST(GatherPath, StagedLtBurstLedgerChargeUnchanged) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;
  core::ChameleonLearner learner(env.env, cc, /*seed=*/9);
  const double latent_sz = static_cast<double>(
      replay::latent_sample_bytes(env.env.latent_shape.numel()));

  for (long long step = 1; step <= 40; ++step) {
    const int64_t lt_before = learner.long_term().size();
    const double burst_before = learner.stats().offchip_lt_burst_bytes;
    learner.observe(env.batch(
        {step % 6, (step + 1) % 6, (step + 2) % 6}, step));
    const double burst_delta =
        learner.stats().offchip_lt_burst_bytes - burst_before;
    if (step % cc.lt_period_h == 0 && lt_before > 0) {
      const int64_t staged = std::min(
          cc.lt_period_h * cc.lt_replay_per_batch, lt_before);
      EXPECT_DOUBLE_EQ(burst_delta,
                       static_cast<double>(staged) * latent_sz)
          << "step " << step;
    } else {
      EXPECT_DOUBLE_EQ(burst_delta, 0.0) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace cham
