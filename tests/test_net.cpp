// Socket front-end (src/net/): wire codec, server robustness, and
// end-to-end fidelity.
//
// The load-bearing property mirrors the serving runtime's own contract one
// layer out: traffic submitted through NetServer over a socket must produce
// BIT-IDENTICAL predictions to the same schedule submitted in-process —
// framing, staging, cross-connection batching and the completion scatter
// may not perturb a single output. Around that sit the robustness tests:
// the server must survive malformed, truncated, oversized and mid-frame
// traffic, answer with typed errors, relay backpressure hints, and drain
// in-flight requests on graceful shutdown in both scheduler modes.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/chameleon.h"
#include "metrics/experiment.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "serve/session_store.h"
#include "util/check.h"
#include "util/json.h"

namespace cham {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for the round-trip checks: parses one object into
// key -> raw value text (nested objects kept verbatim), and unescapes
// string literals. Strict enough to catch broken emission; nothing more.

bool json_fields(const std::string& s,
                 std::map<std::string, std::string>& out) {
  out.clear();
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  };
  auto parse_string = [&](std::string& raw) -> bool {
    if (i >= s.size() || s[i] != '"') return false;
    std::size_t start = i++;
    while (i < s.size()) {
      if (s[i] == '\\') {
        i += 2;
        continue;
      }
      if (s[i] == '"') {
        raw = s.substr(start, ++i - start);
        return true;
      }
      ++i;
    }
    return false;
  };
  skip_ws();
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < s.size() && s[i] == '}') return true;
  for (;;) {
    skip_ws();
    std::string key_raw;
    if (!parse_string(key_raw)) return false;
    std::string key = key_raw.substr(1, key_raw.size() - 2);
    skip_ws();
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    skip_ws();
    std::size_t vstart = i;
    if (s[i] == '"') {
      std::string v;
      if (!parse_string(v)) return false;
    } else if (s[i] == '{' || s[i] == '[') {
      const char open = s[i];
      const char close = open == '{' ? '}' : ']';
      int depth = 0;
      bool in_str = false;
      for (; i < s.size(); ++i) {
        if (in_str) {
          if (s[i] == '\\') {
            ++i;
          } else if (s[i] == '"') {
            in_str = false;
          }
          continue;
        }
        if (s[i] == '"') in_str = true;
        if (s[i] == open) ++depth;
        if (s[i] == close && --depth == 0) {
          ++i;
          break;
        }
      }
      if (depth != 0) return false;
    } else {
      while (i < s.size() && s[i] != ',' && s[i] != '}') ++i;
    }
    out[key] = s.substr(vstart, i - vstart);
    skip_ws();
    if (i >= s.size()) return false;
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == '}') return true;
    return false;
  }
}

std::string json_unescape(const std::string& quoted) {
  std::string out;
  for (std::size_t i = 1; i + 1 < quoted.size(); ++i) {
    char c = quoted[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    char e = quoted[++i];
    switch (e) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        int v = std::stoi(quoted.substr(i + 1, 4), nullptr, 16);
        out += static_cast<char>(v);
        i += 4;
        break;
      }
      default: out += e;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared-JSON-helper round trips (no sockets involved).

TEST(NetJson, EscapeRoundTripsControlAndQuoteCharacters) {
  const std::string nasty = "a\"b\\c\nd\te\x01f/g";
  util::JsonWriter j;
  j.field("msg", nasty);
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(json_fields(j.str(), fields)) << j.str();
  ASSERT_TRUE(fields.count("msg"));
  EXPECT_EQ(json_unescape(fields["msg"]), nasty);
}

TEST(NetJson, NetStatsRoundTripsEveryField) {
  net::NetStats st;
  // Distinct values so a swapped emission order cannot pass.
  int64_t v = 3;
  for (int64_t* f :
       {&st.connections_accepted, &st.connections_closed,
        &st.connections_high_water, &st.frames_in, &st.frames_out,
        &st.bytes_in, &st.bytes_out, &st.observes_in, &st.predicts_in,
        &st.predict_batches_in, &st.flushes_in, &st.stats_in,
        &st.shutdowns_in, &st.predict_replies, &st.observe_acks,
        &st.err_backpressure, &st.err_malformed, &st.err_bad_version,
        &st.err_bad_crc, &st.err_oversized, &st.err_dispatch,
        &st.err_shutting_down, &st.err_unknown_type, &st.write_stalls,
        &st.outbox_high_water_bytes}) {
    *f = v;
    v += 7;
  }
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(json_fields(st.to_json(), fields)) << st.to_json();
  EXPECT_EQ(fields.size(), 25u);
  EXPECT_EQ(fields["connections_accepted"], "3");
  EXPECT_EQ(fields["frames_in"], std::to_string(st.frames_in));
  EXPECT_EQ(fields["err_shutting_down"], std::to_string(st.err_shutting_down));
  EXPECT_EQ(fields["outbox_high_water_bytes"],
            std::to_string(st.outbox_high_water_bytes));
}

TEST(NetJson, ServeStatsEmitsParseableObject) {
  serve::ServeStats st;
  st.submitted = 11;
  st.rejections = 2;
  st.retry_hint_ms_sum = 14.0;
  st.retry_hint_ms_max = 9.5;
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(json_fields(st.to_json(), fields)) << st.to_json();
  EXPECT_EQ(fields["submitted"], "11");
  EXPECT_EQ(fields["retry_hint_ms_avg"], "7.0000");
  EXPECT_EQ(fields["retry_hint_ms_max"], "9.5000");
  // Spot keys from each section of the emission.
  for (const char* key : {"admissions", "predict_batches", "evictions",
                          "wb_flushes", "flush_ms_max"}) {
    EXPECT_TRUE(fields.count(key)) << key;
  }
}

// ---------------------------------------------------------------------------
// Codec round trips.

data::ImageKey key_of(int c, int d, int inst, bool test) {
  data::ImageKey k;
  k.class_id = c;
  k.domain_id = d;
  k.instance_id = inst;
  k.test = test;
  return k;
}

TEST(NetProtocol, ObserveFrameRoundTrips) {
  data::Batch b;
  b.keys = {key_of(1, 0, 2, false), key_of(4, 1, 0, true)};
  b.labels = {1, 4};
  b.domain = 1;
  net::WireBuf buf;
  net::encode_observe(buf, 77, 123456789, b);
  ASSERT_GE(buf.size(), net::kHeaderBytes);

  net::FrameHeader h;
  ASSERT_TRUE(net::read_header(buf.data(), buf.size(), h));
  EXPECT_EQ(h.magic, net::kWireMagic);
  EXPECT_EQ(h.version, net::kWireVersion);
  EXPECT_EQ(h.type, net::MsgType::kObserve);
  EXPECT_EQ(h.session_id, 77u);
  EXPECT_EQ(h.request_id, 123456789u);
  ASSERT_EQ(buf.size(), net::kHeaderBytes + h.payload_len);
  const uint8_t* payload = buf.data() + net::kHeaderBytes;
  EXPECT_EQ(net::crc32(payload, h.payload_len), h.payload_crc);

  data::Batch out;
  ASSERT_TRUE(net::decode_observe(payload, h.payload_len, out));
  EXPECT_EQ(out.keys, b.keys);
  EXPECT_EQ(out.labels, b.labels);
  EXPECT_EQ(out.domain, b.domain);
}

TEST(NetProtocol, PredictAndResultFramesRoundTrip) {
  const std::vector<data::ImageKey> keys = {key_of(0, 0, 0, true),
                                            key_of(5, 1, 3, true)};
  net::WireBuf buf;
  net::encode_predict(buf, 9, 2, keys);
  net::FrameHeader h;
  ASSERT_TRUE(net::read_header(buf.data(), buf.size(), h));
  std::vector<data::ImageKey> out_keys;
  ASSERT_TRUE(net::decode_predict(buf.data() + net::kHeaderBytes,
                                  h.payload_len, out_keys));
  EXPECT_EQ(out_keys, keys);

  buf.clear();
  const std::vector<int64_t> preds = {3, 1, 4, 1, 5};
  net::encode_predict_result(buf, 9, 2, preds);
  ASSERT_TRUE(net::read_header(buf.data(), buf.size(), h));
  std::vector<int64_t> out_preds;
  ASSERT_TRUE(net::decode_predict_result(buf.data() + net::kHeaderBytes,
                                         h.payload_len, out_preds));
  EXPECT_EQ(out_preds, preds);
}

TEST(NetProtocol, PredictBatchFramesRoundTrip) {
  const std::vector<std::vector<data::ImageKey>> pages = {
      {key_of(0, 0, 0, true)},
      {key_of(1, 1, 1, true), key_of(2, 0, 2, true)},
  };
  net::WireBuf buf;
  net::encode_predict_batch(buf, 4, 8, pages);
  net::FrameHeader h;
  ASSERT_TRUE(net::read_header(buf.data(), buf.size(), h));
  std::vector<std::vector<data::ImageKey>> out;
  ASSERT_TRUE(net::decode_predict_batch(buf.data() + net::kHeaderBytes,
                                        h.payload_len, out));
  EXPECT_EQ(out, pages);

  buf.clear();
  const std::vector<std::vector<int64_t>> results = {{1}, {2, 3}};
  net::encode_predict_batch_result(buf, 4, 8, results);
  ASSERT_TRUE(net::read_header(buf.data(), buf.size(), h));
  std::vector<std::vector<int64_t>> out_res;
  ASSERT_TRUE(net::decode_predict_batch_result(buf.data() + net::kHeaderBytes,
                                               h.payload_len, out_res));
  EXPECT_EQ(out_res, results);
}

TEST(NetProtocol, ErrorFrameCarriesRetryHint) {
  net::WireBuf buf;
  net::encode_error(buf, 1, 2, net::ErrCode::kBackpressure, 250,
                    "queue full");
  net::FrameHeader h;
  ASSERT_TRUE(net::read_header(buf.data(), buf.size(), h));
  EXPECT_EQ(h.type, net::MsgType::kError);
  net::ErrorInfo info;
  ASSERT_TRUE(
      net::decode_error(buf.data() + net::kHeaderBytes, h.payload_len, info));
  EXPECT_EQ(info.code, net::ErrCode::kBackpressure);
  EXPECT_EQ(info.retry_after_ms, 250);
  EXPECT_EQ(info.message, "queue full");
}

TEST(NetProtocol, HeaderValidationClassifiesCorruption) {
  net::FrameHeader h;
  h.payload_len = 16;
  EXPECT_EQ(net::header_error(h, 1024), net::kHeaderOk);
  h.magic = 0xDEADBEEF;
  EXPECT_EQ(net::header_error(h, 1024), net::ErrCode::kMalformed);
  h.magic = net::kWireMagic;
  h.version = 99;
  EXPECT_EQ(net::header_error(h, 1024), net::ErrCode::kBadVersion);
  h.version = net::kWireVersion;
  h.payload_len = 4096;
  EXPECT_EQ(net::header_error(h, 1024), net::ErrCode::kOversized);
}

TEST(NetProtocol, TruncatedPayloadsFailToDecode) {
  data::Batch b;
  b.keys = {key_of(1, 0, 2, false)};
  b.labels = {1};
  b.domain = 0;
  net::WireBuf buf;
  net::encode_observe(buf, 1, 1, b);
  net::FrameHeader h;
  ASSERT_TRUE(net::read_header(buf.data(), buf.size(), h));
  const uint8_t* payload = buf.data() + net::kHeaderBytes;
  data::Batch out;
  for (std::size_t cut = 0; cut < h.payload_len; ++cut) {
    EXPECT_FALSE(net::decode_observe(payload, cut, out)) << "cut=" << cut;
  }
  // Hostile element count: claims more keys than bytes present.
  // Payload layout: domain i64, then key count u32. Inflate the count.
  std::vector<uint8_t> hostile(payload, payload + h.payload_len);
  hostile[8] = 0xFF;
  hostile[9] = 0xFF;
  hostile[10] = 0xFF;
  hostile[11] = 0x7F;
  EXPECT_FALSE(net::decode_observe(hostile.data(), hostile.size(), out));
}

// ---------------------------------------------------------------------------
// Server fixture: same cached experiment as the serve suite.

class NetSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    metrics::ExperimentConfig cfg = metrics::core50_experiment();
    cfg.data.num_classes = 6;
    cfg.data.num_domains = 2;
    cfg.data.train_instances = 5;
    cfg.pretrain_num_classes = 12;
    cfg.pretrain_epochs = 4;
    cfg.learner_lr = 0.02f;
    exp_ = new metrics::Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
  }

  static core::ChameleonConfig learner_config() {
    core::ChameleonConfig cc;
    cc.lt_capacity = 18;
    return cc;
  }

  static serve::LearnerFactory factory() {
    return [](uint64_t /*session_id*/, uint64_t seed) {
      return std::make_unique<core::ChameleonLearner>(exp_->env(),
                                                      learner_config(), seed);
    };
  }

  static serve::ServeConfig serve_config(const std::string& tag,
                                         serve::ServeMode mode) {
    serve::ServeConfig sc;
    sc.num_shards = 2;
    sc.max_resident = 4;
    sc.queue_capacity = 16;
    sc.mode = mode;
    sc.store_dir = "/tmp/cham_net_" + tag;
    sc.base_seed = 17;
    serve::SessionStore(sc.store_dir).clear();
    return sc;
  }

  static net::NetConfig net_config(const std::string& tag) {
    net::NetConfig nc;
    nc.transport = net::Transport::kUnix;
    nc.unix_path = "/tmp/cham_net_" + tag + ".sock";
    return nc;
  }

  static net::ClientOptions client_options(const net::NetConfig& nc) {
    net::ClientOptions co;
    co.transport = nc.transport;
    co.unix_path = nc.unix_path;
    co.tcp_port = nc.transport == net::Transport::kTcp ? 0 : 0;
    return co;
  }

  static std::vector<data::Batch> session_batches(int64_t session) {
    data::StreamConfig sc = exp_->config().stream;
    sc.seed = 1000 + static_cast<uint64_t>(session) * 7919;
    data::DomainIncrementalStream stream(exp_->config().data, sc);
    exp_->warm_latents(stream);
    return stream.batches();
  }

  static metrics::Experiment* exp_;
};

metrics::Experiment* NetSuite::exp_ = nullptr;

// Observe+predict traffic over the socket produces bit-identical
// predictions to the same schedule submitted in-process. Exercised with a
// Zipf multi-session schedule and forced evictions — the full serving
// machinery behind the wire.
TEST_F(NetSuite, UnixSocketMatchesInProcessSubmission) {
  data::MultiUserConfig mu;
  mu.num_sessions = 4;
  mu.events = 36;
  mu.predict_fraction = 0.4;
  mu.seed = 21;
  const auto schedule = data::make_zipf_schedule(mu);
  const auto test_keys = data::all_test_keys(exp_->config().data);
  std::vector<std::vector<data::Batch>> streams;
  for (int64_t s = 0; s < mu.num_sessions; ++s) {
    streams.push_back(session_batches(s));
  }

  // In-process reference: submit-retry-drain, futures collected in order.
  std::vector<std::vector<int64_t>> want;
  {
    serve::ServeConfig sc =
        serve_config("ref", serve::ServeMode::kDeterministic);
    sc.max_resident = 2;  // force evictions under 4 sessions
    serve::SessionManager mgr(sc, factory());
    std::vector<std::future<std::vector<int64_t>>> futures;
    for (const auto& ev : schedule) {
      const uint64_t sid = static_cast<uint64_t>(ev.session);
      if (ev.predict) {
        std::future<std::vector<int64_t>> f;
        while (!mgr.submit_predict(sid, test_keys, &f).accepted) mgr.drain();
        futures.push_back(std::move(f));
      } else {
        const auto& b =
            streams[static_cast<size_t>(ev.session)]
                   [static_cast<size_t>(ev.batch_index) %
                    streams[static_cast<size_t>(ev.session)].size()];
        while (!mgr.submit_observe(sid, b).accepted) mgr.drain();
      }
    }
    mgr.drain();
    for (auto& f : futures) want.push_back(f.get());
  }

  // Same schedule over the wire.
  std::vector<std::vector<int64_t>> got;
  serve::ServeConfig sc = serve_config("wire", serve::ServeMode::kDeterministic);
  sc.max_resident = 2;
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config("wire");
  net::NetServer server(mgr, nc);
  {
    net::NetClient client(client_options(nc));
    for (const auto& ev : schedule) {
      const uint64_t sid = static_cast<uint64_t>(ev.session);
      if (ev.predict) {
        net::Reply r = client.predict_admitted(sid, test_keys);
        ASSERT_TRUE(r.ok()) << net::err_code_name(r.error.code);
        got.push_back(std::move(r.preds));
      } else {
        const auto& b =
            streams[static_cast<size_t>(ev.session)]
                   [static_cast<size_t>(ev.batch_index) %
                    streams[static_cast<size_t>(ev.session)].size()];
        net::Reply r = client.observe_admitted(sid, b);
        ASSERT_TRUE(r.ok()) << net::err_code_name(r.error.code);
      }
    }
  }
  server.stop();

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "predict " << i << " diverged over the wire";
  }
  const net::NetStats ns = server.stats();
  EXPECT_EQ(ns.connections_accepted, 1);
  EXPECT_GT(ns.frames_in, 0);
  EXPECT_EQ(ns.err_malformed, 0);
}

// PREDICT_BATCH pages submit as pipelined predicts (BatchPlanner fodder)
// and the paged reply matches per-page in-process results.
TEST_F(NetSuite, PredictBatchMatchesPerPageResults) {
  serve::ServeConfig sc = serve_config("pb", serve::ServeMode::kDeterministic);
  serve::SessionManager mgr(sc, factory());
  const auto batches = session_batches(0);
  const auto test_keys = data::all_test_keys(exp_->config().data);
  const std::vector<std::vector<data::ImageKey>> pages = {
      test_keys,
      {test_keys.begin(), test_keys.begin() + 3},
      {test_keys.begin() + 1, test_keys.begin() + 5},
  };

  net::NetConfig nc = net_config("pb");
  net::NetServer server(mgr, nc);
  net::NetClient client(client_options(nc));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.observe_admitted(5, batches[static_cast<size_t>(i)])
                    .ok());
  }
  net::Reply r = client.predict_batch_admitted(5, pages);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.pages.size(), pages.size());

  core::ChameleonLearner isolated(exp_->env(), learner_config(),
                                  mgr.session_seed(5));
  for (int i = 0; i < 3; ++i) {
    isolated.observe(batches[static_cast<size_t>(i)]);
  }
  for (std::size_t p = 0; p < pages.size(); ++p) {
    EXPECT_EQ(r.pages[p], isolated.predict(pages[p])) << "page " << p;
  }
}

// Admission rejections surface as typed BACKPRESSURE errors whose
// retry_after_ms carries the manager's EWMA hint, and the retry loop
// eventually lands every observe — final state identical to isolation.
TEST_F(NetSuite, BackpressurePropagatesRetryHintOverWire) {
  serve::ServeConfig sc = serve_config("bp", serve::ServeMode::kDeterministic);
  sc.queue_capacity = 1;  // rejects under any pipelining
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config("bp");
  net::NetServer server(mgr, nc);
  net::NetClient client(client_options(nc));

  const auto batches = session_batches(2);
  constexpr int kObserves = 12;
  // Pipeline the sends: the I/O thread submits far faster than the pump
  // dispatches, so with capacity 1 most of these reject.
  std::vector<uint64_t> ids;
  for (int i = 0; i < kObserves; ++i) {
    ids.push_back(
        client.send_observe(3, batches[static_cast<size_t>(i) %
                                       batches.size()]));
  }
  int rejected = 0;
  std::vector<int> retry;  // indices that must be resubmitted, in order
  for (int i = 0; i < kObserves; ++i) {
    net::Reply r = client.await_reply(ids[static_cast<size_t>(i)]);
    if (r.ok()) continue;
    ASSERT_TRUE(r.backpressured()) << net::err_code_name(r.error.code);
    EXPECT_GE(r.error.retry_after_ms, mgr.config().retry_hint_ms);
    ++rejected;
    retry.push_back(i);
  }
  EXPECT_GT(rejected, 0) << "queue_capacity=1 never rejected a pipelined burst";
  for (int i : retry) {
    ASSERT_TRUE(client
                    .observe_admitted(
                        3, batches[static_cast<size_t>(i) % batches.size()])
                    .ok());
  }
  net::Reply pr = client.predict_admitted(3, data::all_test_keys(
                                                 exp_->config().data));
  ASSERT_TRUE(pr.ok());

  const net::NetStats ns = server.stats();
  // The retry loop's resubmissions can reject again, so >=, not ==.
  EXPECT_GE(ns.err_backpressure, rejected);
  const serve::ServeStats ss = mgr.stats();
  EXPECT_GE(ss.rejections, rejected);
}

// A wrong-magic frame gets a typed MALFORMED reply, then the connection
// closes (the stream cannot be re-synchronised). The server survives and
// keeps serving new connections. The junk deliberately overflows one 64 KiB
// read chunk: the server used to keep reading after marking the connection
// for close, re-parse the same bad header per chunk, and emit a duplicate
// ERROR frame each time — exactly one reply and one err_malformed count
// must come out however much garbage follows.
TEST_F(NetSuite, BadMagicRepliesTypedErrorOnceThenCloses) {
  serve::ServeConfig sc = serve_config("mag", serve::ServeMode::kDeterministic);
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config("mag");
  net::NetServer server(mgr, nc);

  net::NetClient bad(client_options(nc));
  // > one chunk, but well under the default AF_UNIX buffers so the blocking
  // send completes even though the server stops reading after the header.
  std::vector<uint8_t> junk((96 << 10) + 8, 0xAB);
  bad.send_raw(junk.data(), junk.size());
  net::Reply r = bad.await_reply(0xABABABABABABABABull);  // echoed garbage id
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error.code, net::ErrCode::kMalformed);
  // Connection is closed after the reply: the next await must fail — on
  // EOF, not on a duplicate ERROR frame for the same garbage header.
  EXPECT_THROW(bad.await_reply(1), util::CheckError);

  net::NetClient good(client_options(nc));
  EXPECT_TRUE(good.observe_admitted(1, session_batches(1)[0]).ok());
  EXPECT_EQ(server.stats().err_malformed, 1);
  EXPECT_EQ(server.stats().frames_out, server.stats().observe_acks + 1);
}

TEST_F(NetSuite, BadVersionRepliesTypedError) {
  serve::ServeConfig sc = serve_config("ver", serve::ServeMode::kDeterministic);
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config("ver");
  net::NetServer server(mgr, nc);

  net::NetClient c(client_options(nc));
  net::WireBuf frame;
  net::encode_control(frame, net::MsgType::kStats, 0, 42);
  frame[4] = 0x63;  // version := 99
  c.send_raw(frame.data(), frame.size());
  net::Reply r = c.await_reply(42);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error.code, net::ErrCode::kBadVersion);
  EXPECT_EQ(server.stats().err_bad_version, 1);
}

// A well-framed request with a type the server does not speak gets a typed
// UNKNOWN_TYPE error (counted as err_unknown_type, NOT err_malformed — the
// wire code and the stats category must agree) and the connection survives.
TEST_F(NetSuite, UnknownRequestTypeRepliesTypedErrorAndSurvives) {
  serve::ServeConfig sc = serve_config("unk", serve::ServeMode::kDeterministic);
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config("unk");
  net::NetServer server(mgr, nc);

  net::NetClient c(client_options(nc));
  net::WireBuf frame;
  net::encode_control(frame, net::MsgType::kStats, 0, 11);
  frame[6] = 0x55;  // type := 0x0055, not a message the protocol defines
  frame[7] = 0x00;
  c.send_raw(frame.data(), frame.size());
  net::Reply r = c.await_reply(11);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error.code, net::ErrCode::kUnknownType);

  EXPECT_TRUE(c.observe_admitted(1, session_batches(1)[0]).ok());
  EXPECT_EQ(server.stats().err_unknown_type, 1);
  EXPECT_EQ(server.stats().err_malformed, 0);
}

// A corrupted payload CRC is rejected per-frame; framing stays intact and
// the SAME connection keeps working.
TEST_F(NetSuite, BadCrcRejectsFrameButConnectionSurvives) {
  serve::ServeConfig sc = serve_config("crc", serve::ServeMode::kDeterministic);
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config("crc");
  net::NetServer server(mgr, nc);

  net::NetClient c(client_options(nc));
  const auto test_keys = data::all_test_keys(exp_->config().data);
  net::WireBuf frame;
  net::encode_predict(frame, 1, 7, test_keys);
  frame[net::kHeaderBytes] ^= 0xFF;  // corrupt payload, CRC now mismatches
  c.send_raw(frame.data(), frame.size());
  net::Reply r = c.await_reply(7);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error.code, net::ErrCode::kBadCrc);

  EXPECT_TRUE(c.observe_admitted(1, session_batches(1)[0]).ok());
  EXPECT_TRUE(c.predict_admitted(1, test_keys).ok());
  EXPECT_EQ(server.stats().err_bad_crc, 1);
}

// Oversized payload_len: typed OVERSIZED reply, payload discarded from the
// stream without buffering, connection survives.
TEST_F(NetSuite, OversizedPayloadRejectedAndSkipped) {
  serve::ServeConfig sc = serve_config("big", serve::ServeMode::kDeterministic);
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config("big");
  nc.max_payload_bytes = 1024;
  net::NetServer server(mgr, nc);

  net::NetClient c(client_options(nc));
  // Hand-build a header announcing 4 KiB, then stream the junk payload.
  net::WireBuf frame;
  net::encode_control(frame, net::MsgType::kPredict, 1, 99);
  frame[24] = 0x00;
  frame[25] = 0x10;  // payload_len := 4096
  c.send_raw(frame.data(), frame.size());
  std::vector<uint8_t> junk(4096, 0x5A);
  c.send_raw(junk.data(), junk.size());
  net::Reply r = c.await_reply(99);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error.code, net::ErrCode::kOversized);

  // The junk was consumed as payload, not parsed as frames.
  EXPECT_TRUE(c.observe_admitted(1, session_batches(1)[0]).ok());
  EXPECT_EQ(server.stats().err_oversized, 1);
  EXPECT_EQ(server.stats().err_malformed, 0);
}

// The client applies the same payload bound in reverse: a reply header
// announcing a ~4 GiB payload_len (corrupt or hostile server) is a protocol
// violation, rejected BEFORE any buffer is sized to it.
TEST_F(NetSuite, ClientRejectsOversizedReplyHeaderBeforeAllocating) {
  const std::string path = "/tmp/cham_net_clientcap.sock";
  ::unlink(path.c_str());
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);

  // Fake server: accept, send one well-formed header whose payload_len
  // field is maxed out, hang up.
  std::thread fake_server([lfd] {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) return;
    net::WireBuf frame;
    net::encode_control(frame, net::MsgType::kFlushOk, 0, 1);
    frame[24] = frame[25] = frame[26] = frame[27] = 0xFF;  // payload_len
    [[maybe_unused]] ssize_t n = ::write(cfd, frame.data(), net::kHeaderBytes);
    ::close(cfd);
  });

  net::ClientOptions co;
  co.unix_path = path;
  net::NetClient c(co);
  EXPECT_EQ(c.send_control(net::MsgType::kFlush), 1u);
  EXPECT_THROW(c.await_reply(1), util::CheckError);
  fake_server.join();
  ::close(lfd);
  ::unlink(path.c_str());
}

// Frames split at every possible byte boundary (worst-case short reads)
// still parse; a client that disconnects mid-frame doesn't hurt anyone.
TEST_F(NetSuite, SplitWritesAndTruncatedDisconnectSurvive) {
  serve::ServeConfig sc = serve_config("split",
                                       serve::ServeMode::kDeterministic);
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config("split");
  nc.sndbuf_bytes = 2048;  // force short server-side writes too
  net::NetServer server(mgr, nc);

  const auto test_keys = data::all_test_keys(exp_->config().data);
  net::NetClient c(client_options(nc));
  ASSERT_TRUE(c.observe_admitted(4, session_batches(4)[0]).ok());

  // Dribble a predict frame a few bytes at a time.
  net::WireBuf frame;
  net::encode_predict(frame, 4, 55, test_keys);
  for (std::size_t off = 0; off < frame.size(); off += 5) {
    c.send_raw(frame.data() + off, std::min<std::size_t>(5, frame.size() - off));
  }
  net::Reply r = c.await_reply(55);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.preds.size(), test_keys.size());

  // Large paged reply through the shrunken send buffer: partial-write
  // path. Page count stays below queue_capacity (a PREDICT_BATCH with more
  // pages than the shard queue holds can never fully admit); each page is
  // inflated instead so the reply dwarfs SO_SNDBUF.
  std::vector<data::ImageKey> fat_page;
  for (int rep = 0; rep < 60; ++rep) {
    fat_page.insert(fat_page.end(), test_keys.begin(), test_keys.end());
  }
  std::vector<std::vector<data::ImageKey>> pages(8, fat_page);
  net::Reply big = c.predict_batch_admitted(4, pages);
  ASSERT_TRUE(big.ok());
  ASSERT_EQ(big.pages.size(), pages.size());
  for (const auto& page : big.pages) EXPECT_EQ(page, big.pages[0]);

  // Truncated header then slam the connection shut.
  {
    net::NetClient t(client_options(nc));
    uint8_t half[7] = {0x43, 0x48, 0x41, 0x4D, 0, 0, 0};
    t.send_raw(half, sizeof(half));
  }
  // Server is unbothered.
  EXPECT_TRUE(c.predict_admitted(4, test_keys).ok());
}

// Disconnecting with predicts in flight: the responder consumes the
// orphaned futures and the server keeps serving.
TEST_F(NetSuite, ClientDisconnectWithRequestsInFlight) {
  serve::ServeConfig sc = serve_config("dis", serve::ServeMode::kDeterministic);
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config("dis");
  net::NetServer server(mgr, nc);
  const auto test_keys = data::all_test_keys(exp_->config().data);

  {
    net::NetClient c(client_options(nc));
    ASSERT_TRUE(c.observe_admitted(6, session_batches(6)[0]).ok());
    for (int i = 0; i < 8; ++i) c.send_predict(6, test_keys);
    // Destructor closes the socket with all eight replies outstanding.
  }

  net::NetClient c2(client_options(nc));
  net::Reply r = c2.predict_admitted(6, test_keys);
  ASSERT_TRUE(r.ok());
  // Both connections eventually retire.
  for (int spin = 0; spin < 200 && server.stats().connections_closed < 1;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.stats().connections_closed, 1);
}

// STATS over the wire: one JSON object embedding ServeStats and NetStats,
// both produced by the shared JsonWriter — parse it and cross-check
// counters against what this test actually did.
TEST_F(NetSuite, StatsFrameReturnsParseableCombinedJson) {
  serve::ServeConfig sc = serve_config("st", serve::ServeMode::kDeterministic);
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config("st");
  net::NetServer server(mgr, nc);
  net::NetClient c(client_options(nc));

  ASSERT_TRUE(c.observe_admitted(1, session_batches(1)[0]).ok());
  ASSERT_TRUE(c.observe_admitted(1, session_batches(1)[1]).ok());
  ASSERT_TRUE(
      c.predict_admitted(1, data::all_test_keys(exp_->config().data)).ok());
  // The predict's reply is set before its stats counter increments; wait
  // for the counter so the STATS snapshot below is deterministic.
  for (int spin = 0; spin < 1000 && mgr.stats().predicts < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  net::Reply r = c.stats_json();
  ASSERT_EQ(r.type, net::MsgType::kStatsResult);

  std::map<std::string, std::string> top;
  ASSERT_TRUE(json_fields(r.json, top)) << r.json;
  ASSERT_TRUE(top.count("serve"));
  ASSERT_TRUE(top.count("net"));
  std::map<std::string, std::string> serve_f, net_f;
  ASSERT_TRUE(json_fields(top["serve"], serve_f));
  ASSERT_TRUE(json_fields(top["net"], net_f));
  EXPECT_EQ(serve_f["observes"], "2");
  EXPECT_EQ(serve_f["predicts"], "1");
  EXPECT_EQ(net_f["observes_in"], "2");
  EXPECT_EQ(net_f["predicts_in"], "1");
  EXPECT_EQ(net_f["connections_accepted"], "1");
}

// TCP behind the same abstraction: ephemeral port, same traffic, same
// results.
TEST_F(NetSuite, TcpTransportServesIdentically) {
  serve::ServeConfig sc = serve_config("tcp", serve::ServeMode::kDeterministic);
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc;
  nc.transport = net::Transport::kTcp;
  nc.tcp_port = 0;
  net::NetServer server(mgr, nc);
  ASSERT_GT(server.port(), 0);

  net::ClientOptions co;
  co.transport = net::Transport::kTcp;
  co.tcp_port = server.port();
  net::NetClient c(co);
  const auto batches = session_batches(7);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(c.observe_admitted(7, batches[static_cast<size_t>(i)]).ok());
  }
  const auto test_keys = data::all_test_keys(exp_->config().data);
  net::Reply r = c.predict_admitted(7, test_keys);
  ASSERT_TRUE(r.ok());

  core::ChameleonLearner isolated(exp_->env(), learner_config(),
                                  mgr.session_seed(7));
  for (int i = 0; i < 2; ++i) {
    isolated.observe(batches[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(r.preds, isolated.predict(test_keys));
}

// Graceful shutdown drains in-flight requests before closing sockets:
// every pipelined predict sent BEFORE the SHUTDOWN frame still gets its
// real reply. Exercised in both scheduler modes.
class NetShutdownSuite : public NetSuite,
                         public ::testing::WithParamInterface<serve::ServeMode> {
};

TEST_P(NetShutdownSuite, GracefulShutdownDrainsInFlightRequests) {
  const serve::ServeMode mode = GetParam();
  const std::string tag =
      mode == serve::ServeMode::kDeterministic ? "gsd" : "gst";
  serve::ServeConfig sc = serve_config(tag, mode);
  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc = net_config(tag);
  net::NetServer server(mgr, nc);
  const auto test_keys = data::all_test_keys(exp_->config().data);
  const auto batches = session_batches(8);

  net::NetClient c(client_options(nc));
  ASSERT_TRUE(c.observe_admitted(8, batches[0]).ok());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(c.send_predict(8, test_keys));
  const uint64_t shutdown_id = c.send_control(net::MsgType::kShutdown);

  // The ack may overtake the predict replies; every pre-shutdown predict
  // must still complete with real results.
  net::Reply ack = c.await_reply(shutdown_id);
  EXPECT_EQ(ack.type, net::MsgType::kShutdownOk);
  std::vector<int64_t> first;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    net::Reply r = c.await_reply(ids[i]);
    ASSERT_TRUE(r.ok()) << "in-flight predict " << i
                        << " dropped during shutdown: "
                        << net::err_code_name(r.error.code);
    if (i == 0) {
      first = r.preds;
    } else {
      EXPECT_EQ(r.preds, first);
    }
  }

  // The server exits its I/O loop on its own (no stop() needed for the
  // remote-initiated path)...
  for (int spin = 0; spin < 1000 && server.running(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(server.running());
  // ...and stop() remains a safe no-op afterwards.
  server.stop();
  EXPECT_EQ(server.stats().shutdowns_in, 1);
}

INSTANTIATE_TEST_SUITE_P(Modes, NetShutdownSuite,
                         ::testing::Values(serve::ServeMode::kDeterministic,
                                           serve::ServeMode::kThreaded));

}  // namespace
}  // namespace cham
