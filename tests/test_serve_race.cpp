// TSan stress tests for the concurrent serving stack.
//
// Registered by tests/CMakeLists.txt ONLY when the build is configured with
// -DCHAM_SANITIZE=thread: the assertions here are deliberately weak (counters
// add up, nothing crashes) because the real oracle is ThreadSanitizer
// watching every interleaving the stress produces. Each test targets a
// distinct raced surface:
//
//   ServeRaceSuite.MultiShardEvictRestoreFlushStress
//       N shard workers + multiple submitter threads + forced evictions
//       (max_resident << sessions) + a pause/resume thread that freezes the
//       write-behind IO thread so restores race their own flush, + pollers
//       hammering every read-only stats surface for ~2 seconds.
//   ServeRaceSuite.DeterministicDrainFlushStress
//       Regression: deterministic-mode drain()/flush()/predict() used to
//       dispatch unserialised, so a net pump thread's drain() racing a
//       responder's flush() could pop and run one session's requests on
//       two threads at once. Pins the det_dispatch_mu_ serialisation:
//       concurrent drainers + a flusher + submitters for ~1.5 seconds.
//   ServeRaceSuite.BatchPlanCoalesceStress
//       The batch-planner path under contention: submitter threads issue
//       BURSTS of async predicts (back-to-back same-session requests, the
//       planner's merge fuel) interleaved with observes, while workers
//       coalesce under the bounded max_wait_us window and evictions recycle
//       the residency pool. Exercises take_eligible under the shard mutex,
//       plan dispatch racing eviction, and the wait_for coalescing wakeup.
//   ServeRaceSuite.NetMultiConnectionStress
//       The socket front-end: several NetClient threads hammering one
//       NetServer (pipelined predict bursts, blocking observes, STATS
//       frames) while a churn thread connects, pipelines a predict, and
//       disconnects with it still in flight — racing accept, responder
//       spawn/reap, outbox flow control (shrunken SO_SNDBUF forces partial
//       writes) and the dead-connection cleanup, then a graceful stop().
//   WorkspaceRace.StatsPolledDuringOwnerAllocation
//       Regression for the PR 7 audit finding: ws::stats() used to walk
//       every arena's chunk vector cross-thread while owner threads were
//       growing/consolidating it (and read the non-atomic high-water mark).
//       Both gauges are relaxed atomics now; this pins the fix under TSan.
//   ThreadPoolRace.StatsAndResizeDuringParallelFor
//       num_threads()/set_num_threads() racing live parallel_for regions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "metrics/experiment.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "serve/session_store.h"
#include "tensor/thread_pool.h"
#include "tensor/workspace.h"

namespace cham {
namespace {

using Clock = std::chrono::steady_clock;

class ServeRaceSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    metrics::ExperimentConfig cfg = metrics::core50_experiment();
    cfg.data.num_classes = 6;
    cfg.data.num_domains = 2;
    cfg.data.train_instances = 5;
    cfg.pretrain_num_classes = 12;
    cfg.pretrain_epochs = 2;  // stress needs a learner, not accuracy
    exp_ = new metrics::Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
  }

  static serve::LearnerFactory factory() {
    return [](uint64_t /*session_id*/, uint64_t seed) {
      core::ChameleonConfig cc;
      cc.lt_capacity = 18;
      return std::make_unique<core::ChameleonLearner>(exp_->env(), cc, seed);
    };
  }

  static metrics::Experiment* exp_;
};

metrics::Experiment* ServeRaceSuite::exp_ = nullptr;

TEST_F(ServeRaceSuite, MultiShardEvictRestoreFlushStress) {
  constexpr int64_t kSessions = 12;
  constexpr int kSubmitters = 3;
  constexpr auto kDuration = std::chrono::milliseconds(2000);

  serve::ServeConfig sc;
  sc.num_shards = 4;
  sc.max_resident = 4;  // << kSessions: evictions and restores are constant
  sc.queue_capacity = 8;
  sc.store_dir = "/tmp/cham_serve_race";
  sc.base_seed = 11;
  sc.mode = serve::ServeMode::kThreaded;
  sc.snapshot_cache_bytes = int64_t{4} << 20;  // cache pressure compactions
  serve::SessionStore(sc.store_dir).clear();

  // One small per-session request stream, reused round-robin.
  data::StreamConfig stream_cfg = exp_->config().stream;
  stream_cfg.seed = 4242;
  data::DomainIncrementalStream stream(exp_->config().data, stream_cfg);
  exp_->warm_latents(stream);
  const std::vector<data::Batch> batches = stream.batches();
  ASSERT_FALSE(batches.empty());

  serve::SessionManager mgr(sc, factory());
  const auto deadline = Clock::now() + kDuration;
  std::atomic<bool> done{false};
  std::atomic<int64_t> submitted{0};
  std::vector<std::thread> threads;

  // Submitters: observes with a predict mixed in, spread over all sessions
  // so shard queues, eviction, and restores all stay hot.
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      uint64_t step = static_cast<uint64_t>(t) * 7919;
      while (Clock::now() < deadline) {
        const uint64_t sid = step % kSessions;
        const data::Batch& b = batches[step % batches.size()];
        if (step % 5 == 4) {
          (void)mgr.predict(sid, b.keys);  // nullopt on rejection is fine
        } else if (mgr.submit_observe(sid, b).accepted) {
          submitted.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();  // backpressure: let workers drain
        }
        ++step;
      }
    });
  }

  // Freeze/unfreeze the write-behind IO thread so restores keep racing
  // their own flush (the pending/in-flight map paths).
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      mgr.write_behind().pause_for_test();
      std::this_thread::sleep_for(std::chrono::milliseconds(7));
      mgr.write_behind().resume_for_test();
      std::this_thread::sleep_for(std::chrono::milliseconds(13));
    }
  });

  // Pollers: every read-only surface that may legally race the dispatchers.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const serve::ServeStats s = mgr.stats();
      EXPECT_GE(s.submitted, s.admissions);
      (void)mgr.resident_count();
      (void)mgr.aggregate_op_stats();
      (void)mgr.write_behind().stats();
      const ws::WorkspaceStats w = ws::stats();
      EXPECT_GE(w.pool_high_water_bytes, 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Concurrent drains exercise the cv_idle wait against live submitters.
  threads.emplace_back([&] {
    while (Clock::now() < deadline) {
      mgr.drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(29));
    }
  });

  for (int t = 0; t < kSubmitters; ++t) threads[t].join();
  threads.back().join();  // drain thread shares the deadline
  done.store(true, std::memory_order_relaxed);
  for (size_t t = kSubmitters; t + 1 < threads.size(); ++t) threads[t].join();
  mgr.write_behind().resume_for_test();  // never leave the IO thread frozen

  // Deterministic coda: one more observe per session. TSan slows dispatch
  // enough that the timed phase alone cannot promise a request ever found
  // its session evicted; visiting all kSessions with only max_resident
  // resident forces at least kSessions - max_resident restores.
  for (uint64_t sid = 0; sid < static_cast<uint64_t>(kSessions); ++sid) {
    while (!mgr.submit_observe(sid, batches[sid % batches.size()]).accepted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    submitted.fetch_add(1, std::memory_order_relaxed);
  }

  mgr.flush();
  const serve::ServeStats s = mgr.stats();
  EXPECT_EQ(s.observes, submitted.load());
  EXPECT_GT(s.evictions, 0) << "stress never evicted; raise the load";
  EXPECT_GT(s.restores, 0) << "stress never restored; raise the load";
  EXPECT_EQ(s.dispatch_errors, 0);
}

TEST_F(ServeRaceSuite, DeterministicDrainFlushStress) {
  constexpr int64_t kSessions = 6;
  constexpr int kSubmitters = 2;
  constexpr auto kDuration = std::chrono::milliseconds(1500);

  serve::ServeConfig sc;
  sc.num_shards = 2;
  sc.max_resident = 3;  // < kSessions: flushes and dispatch contend for slots
  sc.queue_capacity = 8;
  sc.store_dir = "/tmp/cham_serve_race_det";
  sc.base_seed = 23;
  sc.mode = serve::ServeMode::kDeterministic;
  serve::SessionStore(sc.store_dir).clear();

  data::StreamConfig stream_cfg = exp_->config().stream;
  stream_cfg.seed = 515;
  data::DomainIncrementalStream stream(exp_->config().data, stream_cfg);
  exp_->warm_latents(stream);
  const std::vector<data::Batch> batches = stream.batches();
  ASSERT_FALSE(batches.empty());

  serve::SessionManager mgr(sc, factory());
  const auto deadline = Clock::now() + kDuration;
  std::atomic<bool> done{false};
  std::atomic<int64_t> submitted{0};
  std::vector<std::thread> threads;

  // Submitters: observes plus async predicts, mirroring the I/O thread's
  // decode-and-submit role. In-flight futures are bounded so backpressure
  // cannot stall a submitter forever.
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      uint64_t step = static_cast<uint64_t>(t) * 104729;
      std::vector<std::future<std::vector<int64_t>>> inflight;
      while (Clock::now() < deadline) {
        const uint64_t sid = step % kSessions;
        const data::Batch& b = batches[step % batches.size()];
        if (step % 4 == 3) {
          std::future<std::vector<int64_t>> f;
          if (mgr.submit_predict(sid, b.keys, &f).accepted) {
            inflight.push_back(std::move(f));
          }
        } else if (mgr.submit_observe(sid, b).accepted) {
          submitted.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();  // backpressure: let the drainers run
        }
        while (inflight.size() > 8) {
          inflight.front().get();
          inflight.erase(inflight.begin());
        }
        ++step;
      }
      for (auto& f : inflight) (void)f.get();
    });
  }

  // The net pump stand-in: caller-driven dispatch, as fast as it can.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      mgr.drain();
      std::this_thread::yield();
    }
  });

  // The FLUSH responder stand-in: drain + evict-everything, concurrently
  // with the pump's drain — the raced pair this test exists for.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      mgr.flush();
      std::this_thread::sleep_for(std::chrono::milliseconds(17));
    }
  });

  // Submitters share the deadline; the drain/flush threads must outlive
  // them (they fulfil the futures the submitters block on).
  for (int t = 0; t < kSubmitters; ++t) threads[t].join();
  done.store(true, std::memory_order_relaxed);
  for (size_t t = kSubmitters; t < threads.size(); ++t) threads[t].join();

  mgr.flush();
  const serve::ServeStats s = mgr.stats();
  EXPECT_EQ(s.observes, submitted.load());
  EXPECT_EQ(s.dispatch_errors, 0);
}

TEST_F(ServeRaceSuite, BatchPlanCoalesceStress) {
  constexpr int64_t kSessions = 10;
  constexpr int kSubmitters = 3;
  constexpr auto kDuration = std::chrono::milliseconds(1500);

  serve::ServeConfig sc;
  sc.num_shards = 4;
  sc.max_resident = 4;  // evictions race planned batches throughout
  sc.queue_capacity = 16;
  sc.store_dir = "/tmp/cham_serve_race_plan";
  sc.base_seed = 23;
  sc.mode = serve::ServeMode::kThreaded;
  sc.max_batch = 8;
  sc.max_wait_us = 2000;  // workers hold undersized plans open
  serve::SessionStore(sc.store_dir).clear();

  data::StreamConfig stream_cfg = exp_->config().stream;
  stream_cfg.seed = 777;
  data::DomainIncrementalStream stream(exp_->config().data, stream_cfg);
  exp_->warm_latents(stream);
  const std::vector<data::Batch> batches = stream.batches();
  ASSERT_FALSE(batches.empty());

  serve::SessionManager mgr(sc, factory());
  const auto deadline = Clock::now() + kDuration;
  std::atomic<bool> done{false};
  std::atomic<int64_t> predicts_accepted{0};
  std::atomic<int64_t> observes_accepted{0};
  std::atomic<int64_t> empty_results{0};
  std::vector<std::thread> threads;

  // Submitters: mostly predict bursts (2-4 back-to-back async predicts per
  // session — leading same-session runs the planner merges), with observes
  // mixed in so plans race training dispatch and eviction.
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      uint64_t step = static_cast<uint64_t>(t) * 104729;
      std::vector<std::future<std::vector<int64_t>>> pending;
      while (Clock::now() < deadline) {
        const uint64_t sid = step % kSessions;
        const data::Batch& b = batches[step % batches.size()];
        if (step % 3 != 0) {
          const int burst = 2 + static_cast<int>(step % 3);
          for (int i = 0; i < burst; ++i) {
            std::future<std::vector<int64_t>> f;
            if (mgr.submit_predict(sid, b.keys, &f).accepted) {
              pending.push_back(std::move(f));
              predicts_accepted.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else if (mgr.submit_observe(sid, b).accepted) {
          observes_accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
        // Harvest settled futures so the pending list stays bounded.
        if (pending.size() >= 64) {
          for (auto& f : pending) {
            if (f.get().empty()) {
              empty_results.fetch_add(1, std::memory_order_relaxed);
            }
          }
          pending.clear();
        }
        ++step;
      }
      for (auto& f : pending) {
        if (f.get().empty()) {
          empty_results.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Poller: stats surface racing live plan execution.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const serve::ServeStats s = mgr.stats();
      EXPECT_GE(s.batched_predicts, 0);
      EXPECT_LE(s.batched_predicts, s.predicts);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int t = 0; t < kSubmitters; ++t) threads[t].join();
  done.store(true, std::memory_order_relaxed);
  for (size_t t = kSubmitters; t < threads.size(); ++t) threads[t].join();

  mgr.drain();
  mgr.flush();
  const serve::ServeStats s = mgr.stats();
  EXPECT_EQ(s.predicts, predicts_accepted.load());
  EXPECT_EQ(s.observes, observes_accepted.load());
  EXPECT_EQ(s.dispatch_errors, 0);
  EXPECT_EQ(empty_results.load(), 0) << "a predict future resolved empty";
  EXPECT_GT(s.evictions, 0) << "stress never evicted; raise the load";
  // Merging is opportunistic under TSan's scheduling, but bursts of 2-4
  // same-session predicts with a 2ms coalescing window should produce at
  // least one merged window over ~1.5s of load.
  EXPECT_GT(s.predict_batches, 0) << "planner never merged a window";
}

// Zero-copy gather sources under concurrency: the gathered train/eval path
// packs GEMM panels from row pointers into (a) the shared latent cache and
// (b) each learner's ST slab / LT slots. (a) must stay valid while OTHER
// worker threads concurrently miss-insert new latents into the same cache
// (the unbounded cache's stable-reference contract); (b) must stay valid
// across the evict/serialize/restore cycle that destroys and rebuilds the
// slab. This stress drives all of it at once: wide key coverage forces
// concurrent cache inserts mid-gather, and max_resident << sessions keeps
// slabs being torn down and rebuilt while observes and predict bursts run.
TEST_F(ServeRaceSuite, GatherSourcesStableAcrossEvictRestore) {
  constexpr int64_t kSessions = 10;
  constexpr int kSubmitters = 4;
  constexpr auto kDuration = std::chrono::milliseconds(1500);

  serve::ServeConfig sc;
  sc.num_shards = 4;
  sc.max_resident = 4;  // << kSessions: slabs constantly destroyed/rebuilt
  sc.queue_capacity = 16;
  sc.store_dir = "/tmp/cham_serve_race_gather";
  sc.base_seed = 31;
  sc.mode = serve::ServeMode::kThreaded;
  serve::SessionStore(sc.store_dir).clear();

  data::StreamConfig stream_cfg = exp_->config().stream;
  stream_cfg.seed = 1313;
  data::DomainIncrementalStream stream(exp_->config().data, stream_cfg);
  // Deliberately NO warm_latents: the first gather over each key races the
  // cache-miss insert path of every other worker.
  const std::vector<data::Batch> batches = stream.batches();
  ASSERT_FALSE(batches.empty());

  serve::SessionManager mgr(sc, factory());
  const auto deadline = Clock::now() + kDuration;
  std::atomic<int64_t> observes_accepted{0};
  std::atomic<int64_t> empty_results{0};
  std::vector<std::thread> threads;

  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      uint64_t step = static_cast<uint64_t>(t) * 7919;
      std::vector<std::future<std::vector<int64_t>>> pending;
      while (Clock::now() < deadline) {
        const uint64_t sid = step % kSessions;
        // Stride the batch stream differently per thread so distinct keys
        // are being gathered and inserted concurrently.
        const data::Batch& b =
            batches[(step * (static_cast<uint64_t>(t) + 1)) % batches.size()];
        if (step % 4 == 3) {
          std::future<std::vector<int64_t>> f;
          if (mgr.submit_predict(sid, b.keys, &f).accepted) {
            pending.push_back(std::move(f));
          }
        } else if (mgr.submit_observe(sid, b).accepted) {
          observes_accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
        if (pending.size() >= 32) {
          for (auto& f : pending) {
            if (f.get().empty()) {
              empty_results.fetch_add(1, std::memory_order_relaxed);
            }
          }
          pending.clear();
        }
        ++step;
      }
      for (auto& f : pending) {
        if (f.get().empty()) {
          empty_results.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (auto& t : threads) t.join();
  mgr.drain();
  mgr.flush();
  const serve::ServeStats s = mgr.stats();
  EXPECT_EQ(s.observes, observes_accepted.load());
  EXPECT_EQ(s.dispatch_errors, 0);
  EXPECT_EQ(empty_results.load(), 0) << "a predict future resolved empty";
  EXPECT_GT(s.evictions, 0) << "stress never evicted; raise the load";
  EXPECT_GT(s.restores, 0) << "stress never restored; raise the load";
}

// Socket front-end under concurrency. The server-side raced surfaces are
// the per-connection mutexes (I/O thread enqueues acks while responders
// enqueue predict replies and wait for outbox space), the accept /
// responder-spawn / dead-reap lifecycle, and the read-pause flow control.
// A deliberately tiny SO_SNDBUF makes every sizeable reply go partial so
// the wire-buffer resume path runs constantly, and a churn thread keeps
// disconnecting with a predict still in flight (the responder must consume
// the orphaned future and the I/O thread must reap it without leaking).
TEST_F(ServeRaceSuite, NetMultiConnectionStress) {
  constexpr int kClients = 3;
  constexpr int64_t kSessions = 8;
  constexpr auto kDuration = std::chrono::milliseconds(1500);

  serve::ServeConfig sc;
  sc.num_shards = 4;
  sc.max_resident = 4;  // evictions/restores race the wire traffic
  sc.queue_capacity = 16;
  sc.store_dir = "/tmp/cham_serve_race_net";
  sc.base_seed = 47;
  sc.mode = serve::ServeMode::kThreaded;
  sc.max_batch = 8;
  sc.max_wait_us = 2000;  // cross-connection predicts coalesce
  serve::SessionStore(sc.store_dir).clear();

  data::StreamConfig stream_cfg = exp_->config().stream;
  stream_cfg.seed = 2121;
  data::DomainIncrementalStream stream(exp_->config().data, stream_cfg);
  exp_->warm_latents(stream);
  const std::vector<data::Batch> batches = stream.batches();
  ASSERT_FALSE(batches.empty());

  serve::SessionManager mgr(sc, factory());
  net::NetConfig nc;
  nc.unix_path = "/tmp/cham_serve_race_net.sock";
  nc.sndbuf_bytes = 4096;            // replies go partial: resume path hot
  nc.outbox_limit_bytes = 64 << 10;  // read-pause flow control engages
  net::NetServer server(mgr, nc);
  const net::ClientOptions copts{net::Transport::kUnix, nc.unix_path, 0};

  const auto deadline = Clock::now() + kDuration;
  std::atomic<int64_t> observes_ok{0};
  std::atomic<int64_t> predicts_ok{0};
  std::atomic<int64_t> empty_results{0};
  std::vector<std::thread> threads;

  // Steady clients: pipelined predict bursts + sequenced observes + STATS.
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      net::NetClient client(copts);
      uint64_t step = static_cast<uint64_t>(t) * 104729;
      std::vector<uint64_t> ids;
      while (Clock::now() < deadline) {
        const uint64_t sid = step % kSessions;
        const data::Batch& b = batches[step % batches.size()];
        if (step % 3 != 0) {
          const int burst = 2 + static_cast<int>(step % 3);
          ids.clear();
          for (int i = 0; i < burst; ++i) {
            ids.push_back(client.send_predict(sid, b.keys));
          }
          for (uint64_t id : ids) {
            net::Reply r = client.await_reply(id);
            if (r.ok()) {
              predicts_ok.fetch_add(1, std::memory_order_relaxed);
              if (r.preds.empty()) {
                empty_results.fetch_add(1, std::memory_order_relaxed);
              }
            } else {
              EXPECT_TRUE(r.backpressured())
                  << net::err_code_name(r.error.code);
            }
          }
        } else if (step % 24 == 12) {
          net::Reply r = client.stats_json();
          EXPECT_TRUE(r.ok());
          EXPECT_FALSE(r.json.empty());
        } else {
          net::Reply r = client.observe(sid, b);
          if (r.ok()) {
            observes_ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            EXPECT_TRUE(r.backpressured()) << net::err_code_name(r.error.code);
            std::this_thread::yield();
          }
        }
        ++step;
      }
    });
  }

  // Churn: connect, pipeline a predict, disconnect with it in flight. The
  // responder consumes the orphaned future; the I/O thread reaps the dead
  // connection while the steady clients keep it busy.
  threads.emplace_back([&] {
    uint64_t step = 1;
    while (Clock::now() < deadline) {
      net::NetClient brief(copts);
      (void)brief.send_predict(step % kSessions,
                               batches[step % batches.size()].keys);
      // Destructor closes the socket with the reply (probably) unsent.
      ++step;
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  for (auto& t : threads) t.join();
  server.stop();  // graceful drain with zero clients left

  const serve::ServeStats s = mgr.stats();
  const net::NetStats ns = server.stats();
  EXPECT_EQ(s.dispatch_errors, 0);
  EXPECT_EQ(empty_results.load(), 0) << "a predict reply arrived empty";
  EXPECT_EQ(s.observes, observes_ok.load());
  EXPECT_GE(s.predicts, predicts_ok.load());  // churn predicts also admitted
  EXPECT_EQ(ns.connections_accepted, ns.connections_closed);
  EXPECT_GT(ns.connections_accepted, kClients);  // churn reconnected
  EXPECT_EQ(ns.err_malformed, 0);
  EXPECT_EQ(ns.err_bad_crc, 0);
  EXPECT_EQ(ns.err_dispatch, 0);
  EXPECT_GT(s.evictions, 0) << "stress never evicted; raise the load";
}

TEST(WorkspaceRace, StatsPolledDuringOwnerAllocation) {
  constexpr auto kDuration = std::chrono::milliseconds(500);
  const auto deadline = Clock::now() + kDuration;
  std::atomic<bool> stop{false};

  // Owner threads: grow, rewind and consolidate their thread-local arenas
  // as fast as possible (every alloc updates the gauges ws::stats reads).
  std::vector<std::thread> owners;
  for (int t = 0; t < 2; ++t) {
    owners.emplace_back([&] {
      uint64_t n = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        ws::ArenaScope scope;
        float* p = scope.floats(64 + (n % 4096));
        p[0] = 1.0f;  // touch so the alloc is not optimised out
        ++n;
      }
    });
  }

  while (Clock::now() < deadline) {
    const ws::WorkspaceStats s = ws::stats();
    EXPECT_GE(s.arena_reserved_bytes, 0);
    EXPECT_GE(s.arena_high_water_bytes, 0);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : owners) t.join();
}

TEST(ThreadPoolRace, StatsAndResizeDuringParallelFor) {
  constexpr auto kDuration = std::chrono::milliseconds(500);
  const auto deadline = Clock::now() + kDuration;
  const int prev = num_threads();
  std::atomic<bool> stop{false};

  std::thread poller([&] {
    int flip = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_GE(num_threads(), 1);
      set_num_threads(2 + (flip++ % 3));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<int64_t> out(1 << 14, 0);
  while (Clock::now() < deadline) {
    parallel_for(0, static_cast<int64_t>(out.size()), [&](int64_t b,
                                                          int64_t e) {
      for (int64_t i = b; i < e; ++i) out[static_cast<size_t>(i)] += i;
    });
  }
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  set_num_threads(prev);
}

}  // namespace
}  // namespace cham
