// MobileNetV1 structure, latent split, SGD, parameter I/O, Sequential.
#include <gtest/gtest.h>

#include <cstdio>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/mobilenet.h"
#include "nn/model_io.h"
#include "nn/sequential.h"
#include "nn/sgd.h"
#include "tensor/ops.h"

namespace cham {
namespace {

nn::MobileNetConfig tiny_cfg() {
  nn::MobileNetConfig cfg;
  cfg.input_hw = 32;
  cfg.width_mult = 0.25f;
  cfg.num_classes = 7;
  return cfg;
}

TEST(MobileNet, Has27ConvLayers) {
  Rng rng(1);
  auto m = nn::build_mobilenet_v1(tiny_cfg(), rng);
  EXPECT_EQ(m.conv_layer_count(), 27);  // 1 + 13 * 2, paper numbering
}

TEST(MobileNet, ForwardShape) {
  Rng rng(2);
  auto m = nn::build_mobilenet_v1(tiny_cfg(), rng);
  Tensor x({2, 3, 32, 32});
  ops::fill_normal(x, rng, 0.0f, 1.0f);
  Tensor y = m.net->forward(x, false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 7);
}

TEST(MobileNet, SpatialDownsamplingSchedule) {
  Rng rng(3);
  auto m = nn::build_mobilenet_v1(tiny_cfg(), rng);
  // Five stride-2 stages: 32 -> 16 -> 8 -> 4 -> 2 -> 1.
  EXPECT_EQ(m.shape_after(1)[1], 16);   // after conv1 (s2)
  EXPECT_EQ(m.shape_after(27)[1], 1);   // final feature map
  EXPECT_EQ(m.shape_after(21)[1], 2);   // the paper's latent layer
}

TEST(MobileNet, SplitAtLatentLayerPreservesFunction) {
  Rng rng(4);
  auto cfg = tiny_cfg();
  auto full = nn::build_mobilenet_v1(cfg, rng);
  Tensor x({1, 3, 32, 32});
  Rng xrng(5);
  ops::fill_normal(x, xrng, 0.0f, 1.0f);
  const Tensor y_full = full.net->forward(x, false);

  Rng rng2(4);  // identical weights via identical seed
  auto rebuilt = nn::build_mobilenet_v1(cfg, rng2);
  auto split = nn::split_at_conv_layer(std::move(rebuilt), 21);
  const Tensor z = split.f->forward(x, false);
  EXPECT_EQ(z.shape(), (Shape{{1, split.latent_shape[0],
                               split.latent_shape[1],
                               split.latent_shape[2]}}));
  const Tensor y_split = split.g->forward(z, false);
  EXPECT_LT(ops::max_abs_diff(y_full, y_split), 1e-5);
}

TEST(MobileNet, MacsPositiveAndSplitAdditive) {
  Rng rng(6);
  auto full = nn::build_mobilenet_v1(tiny_cfg(), rng);
  const int64_t total = full.net->macs_per_sample();
  auto split = nn::split_at_conv_layer(std::move(full), 21);
  EXPECT_GT(total, 0);
  EXPECT_EQ(split.f->macs_per_sample() + split.g->macs_per_sample(), total);
  // The frozen part dominates (the motivation for latent replay).
  EXPECT_GT(split.f->macs_per_sample(), split.g->macs_per_sample());
}

TEST(MobileNet, WidthMultiplierScalesParams) {
  Rng rng(7);
  auto narrow_cfg = tiny_cfg();
  auto wide_cfg = tiny_cfg();
  wide_cfg.width_mult = 1.0f;
  auto narrow = nn::build_mobilenet_v1(narrow_cfg, rng);
  auto wide = nn::build_mobilenet_v1(wide_cfg, rng);
  EXPECT_GT(wide.net->param_count(), 4 * narrow.net->param_count());
}

TEST(MobileNet, CopyParamsReproducesOutputs) {
  Rng rng_a(8), rng_b(9);
  auto a = nn::build_mobilenet_v1(tiny_cfg(), rng_a);
  auto b = nn::build_mobilenet_v1(tiny_cfg(), rng_b);
  Tensor x({1, 3, 32, 32});
  Rng xrng(10);
  ops::fill_normal(x, xrng, 0.0f, 1.0f);
  EXPECT_GT(ops::max_abs_diff(a.net->forward(x, false),
                              b.net->forward(x, false)),
            1e-4);
  nn::copy_params(*a.net, *b.net);
  EXPECT_LT(ops::max_abs_diff(a.net->forward(x, false),
                              b.net->forward(x, false)),
            1e-6);
}

TEST(MobileNet, CopyExceptClassifierSkipsFc) {
  auto cfg_a = tiny_cfg();
  auto cfg_b = tiny_cfg();
  cfg_b.num_classes = 13;  // different classifier width
  Rng ra(11), rb(12);
  auto a = nn::build_mobilenet_v1(cfg_a, ra);
  auto b = nn::build_mobilenet_v1(cfg_b, rb);
  nn::copy_params_except_classifier(*a.net, *b.net);
  Tensor x({1, 3, 32, 32});
  Rng xrng(13);
  ops::fill_normal(x, xrng, 0.0f, 1.0f);
  Tensor y = b.net->forward(x, false);
  EXPECT_EQ(y.dim(1), 13);
}

TEST(ModelIo, RoundTripsExactly) {
  Rng rng(14);
  auto a = nn::build_mobilenet_v1(tiny_cfg(), rng);
  const std::string path = "/tmp/cham_test_model_io.bin";
  ASSERT_TRUE(nn::save_params(*a.net, path));

  Rng rng2(15);
  auto b = nn::build_mobilenet_v1(tiny_cfg(), rng2);
  ASSERT_TRUE(nn::load_params(*b.net, path));
  Tensor x({1, 3, 32, 32});
  Rng xrng(16);
  ops::fill_normal(x, xrng, 0.0f, 1.0f);
  EXPECT_EQ(ops::max_abs_diff(a.net->forward(x, false),
                              b.net->forward(x, false)),
            0.0);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsWrongArchitecture) {
  Rng rng(17);
  auto a = nn::build_mobilenet_v1(tiny_cfg(), rng);
  const std::string path = "/tmp/cham_test_model_io2.bin";
  ASSERT_TRUE(nn::save_params(*a.net, path));
  auto other_cfg = tiny_cfg();
  other_cfg.width_mult = 1.0f;
  auto b = nn::build_mobilenet_v1(other_cfg, rng);
  EXPECT_FALSE(nn::load_params(*b.net, path));
  EXPECT_FALSE(nn::load_params(*a.net, "/tmp/does_not_exist.bin"));
  std::remove(path.c_str());
}

TEST(Sgd, GradientDescentReducesLoss) {
  Rng rng(18);
  nn::Sequential net;
  net.add(std::make_unique<nn::Linear>(4, 3, rng));
  nn::Sgd opt(net.params(), 0.1f);

  Tensor x({8, 4});
  ops::fill_normal(x, rng, 0.0f, 1.0f);
  std::vector<int64_t> labels = {0, 1, 2, 0, 1, 2, 0, 1};

  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 50; ++step) {
    opt.zero_grad();
    Tensor logits = net.forward(x, true);
    auto loss = nn::softmax_cross_entropy(logits, labels);
    net.backward(loss.grad);
    opt.step();
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.5f);
}

TEST(Sgd, MomentumAcceleratesOnQuadratic) {
  // Single scalar parameter, constant gradient towards zero: momentum must
  // move further than plain SGD after a few steps.
  auto make_param = [] {
    nn::Param p(Shape{{1}});
    p.value[0] = 1.0f;
    return p;
  };
  nn::Param plain = make_param(), heavy = make_param();
  nn::Sgd opt_plain({&plain}, 0.1f, 0.0f);
  nn::Sgd opt_heavy({&heavy}, 0.1f, 0.9f);
  for (int i = 0; i < 5; ++i) {
    plain.grad[0] = plain.value[0];
    heavy.grad[0] = heavy.value[0];
    opt_plain.step();
    opt_heavy.step();
  }
  EXPECT_LT(heavy.value[0], plain.value[0]);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  nn::Param p(Shape{{1}});
  p.value[0] = 1.0f;
  nn::Sgd opt({&p}, 0.1f, 0.0f, 0.5f);
  p.zero_grad();
  opt.step();  // pure decay: w -= lr * wd * w
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
}

TEST(Sequential, SliceMovesLayers) {
  Rng rng(19);
  nn::Sequential seq;
  seq.add(std::make_unique<nn::Linear>(4, 4, rng));
  seq.add(std::make_unique<nn::Linear>(4, 4, rng));
  seq.add(std::make_unique<nn::Linear>(4, 2, rng));
  auto tail = seq.slice(2, 3);
  EXPECT_EQ(seq.size(), 2);
  EXPECT_EQ(tail->size(), 1);
}

TEST(BatchNorm, FrozenStatsIgnoreBatch) {
  nn::BatchNorm2d bn(2);
  bn.set_track_running_stats(false);
  Tensor x({4, 2, 3, 3});
  Rng rng(20);
  ops::fill_normal(x, rng, 5.0f, 2.0f);  // far from running stats (0, 1)
  Tensor y_train = bn.forward(x, true);
  Tensor y_eval = bn.forward(x, false);
  // Frozen stats: train and eval forward identical.
  EXPECT_LT(ops::max_abs_diff(y_train, y_eval), 1e-6);
  EXPECT_NEAR(bn.running_mean()[0], 0.0f, 1e-6);
}

TEST(BatchNorm, TrackedStatsMoveTowardBatch) {
  nn::BatchNorm2d bn(1, /*momentum=*/0.5f);
  Tensor x({2, 1, 2, 2});
  x.fill(4.0f);
  bn.forward(x, true);
  EXPECT_NEAR(bn.running_mean()[0], 2.0f, 1e-5);  // 0.5*0 + 0.5*4
}

}  // namespace
}  // namespace cham
