// Dataset generator and Domain-IL stream: determinism, class/domain
// structure, preference skew, and temporal correlation.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/dataset.h"
#include "data/stream.h"
#include "tensor/ops.h"

namespace cham {
namespace {

TEST(Dataset, ImageIsDeterministic) {
  auto cfg = data::core50_config();
  data::ImageKey key{7, 3, 2, false};
  Tensor a = data::synthesize_image(cfg, key);
  Tensor b = data::synthesize_image(cfg, key);
  EXPECT_EQ(ops::max_abs_diff(a, b), 0.0);
}

TEST(Dataset, ImageInUnitRange) {
  auto cfg = data::core50_config();
  Tensor img = data::synthesize_image(cfg, {0, 0, 0, false});
  for (int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_GE(img[i], 0.0f);
    EXPECT_LE(img[i], 1.0f);
  }
}

TEST(Dataset, DifferentClassesDiffer) {
  auto cfg = data::core50_config();
  Tensor a = data::synthesize_image(cfg, {1, 0, 0, false});
  Tensor b = data::synthesize_image(cfg, {2, 0, 0, false});
  EXPECT_GT(ops::max_abs_diff(a, b), 0.05);
}

TEST(Dataset, DifferentDomainsShiftAppearance) {
  auto cfg = data::core50_config();
  Tensor a = data::synthesize_image(cfg, {1, 0, 0, false});
  Tensor b = data::synthesize_image(cfg, {1, 5, 0, false});
  EXPECT_GT(ops::max_abs_diff(a, b), 0.05);
}

TEST(Dataset, OpenLorisShiftsSmallerThanCore50) {
  // Average per-pixel domain displacement should be smaller for the
  // smoother OpenLORIS configuration (paper Sec. IV-B rationale).
  auto hard = data::core50_config();
  auto soft = data::openloris_config();
  auto domain_delta = [](const data::DatasetConfig& cfg) {
    double total = 0;
    int count = 0;
    for (int32_t c = 0; c < 5; ++c) {
      Tensor base = data::synthesize_image(cfg, {c, 0, 0, false});
      for (int32_t d = 1; d < 5; ++d) {
        Tensor img = data::synthesize_image(cfg, {c, d, 0, false});
        Tensor diff = ops::sub(img, base);
        total += ops::l2_norm(diff) / std::sqrt(double(img.numel()));
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_LT(domain_delta(soft), domain_delta(hard));
}

TEST(Dataset, TestKeysCoverEverything) {
  auto cfg = data::core50_config();
  cfg.num_classes = 5;
  cfg.num_domains = 3;
  cfg.test_instances = 2;
  auto keys = data::all_test_keys(cfg);
  EXPECT_EQ(keys.size(), 5u * 3u * 2u);
  std::set<uint64_t> unique;
  for (const auto& k : keys) {
    EXPECT_TRUE(k.test);
    unique.insert(k.packed());
  }
  EXPECT_EQ(unique.size(), keys.size());
}

TEST(Dataset, TrainAndTestInstancesDiffer) {
  auto cfg = data::core50_config();
  Tensor train = data::synthesize_image(cfg, {3, 2, 0, false});
  Tensor test = data::synthesize_image(cfg, {3, 2, 0, true});
  EXPECT_GT(ops::max_abs_diff(train, test), 1e-4);
}

TEST(Dataset, BatchStacksImages) {
  auto cfg = data::core50_config();
  std::vector<data::ImageKey> keys = {{0, 0, 0, false}, {1, 0, 0, false}};
  Tensor batch = data::synthesize_batch(cfg, keys);
  EXPECT_EQ(batch.dim(0), 2);
  Tensor first = data::synthesize_image(cfg, keys[0]);
  for (int64_t i = 0; i < first.numel(); ++i) EXPECT_EQ(batch[i], first[i]);
}

TEST(ImageKey, PackedUniqueAcrossFields) {
  std::set<uint64_t> seen;
  for (int32_t c = 0; c < 4; ++c)
    for (int32_t d = 0; d < 4; ++d)
      for (int32_t i = 0; i < 4; ++i)
        for (bool t : {false, true}) {
          data::ImageKey k{c, d, i, t};
          EXPECT_TRUE(seen.insert(k.packed()).second);
        }
}

// ------------------------------------------------------------------ Stream

data::DatasetConfig small_data() {
  auto cfg = data::core50_config();
  cfg.num_classes = 10;
  cfg.num_domains = 4;
  cfg.train_instances = 5;
  return cfg;
}

TEST(Stream, DomainsArriveInOrder) {
  data::StreamConfig sc;
  data::DomainIncrementalStream stream(small_data(), sc);
  int64_t last_domain = 0;
  for (const auto& b : stream.batches()) {
    EXPECT_GE(b.domain, last_domain);
    last_domain = b.domain;
    for (const auto& k : b.keys) EXPECT_EQ(k.domain_id, b.domain);
  }
  EXPECT_EQ(last_domain, 3);
}

TEST(Stream, TotalSamplesMatchPoolSize) {
  auto dc = small_data();
  data::StreamConfig sc;
  data::DomainIncrementalStream stream(dc, sc);
  EXPECT_EQ(stream.total_samples(),
            dc.num_classes * dc.train_instances * dc.num_domains);
}

TEST(Stream, BatchSizeRespected) {
  data::StreamConfig sc;
  sc.batch_size = 10;
  data::DomainIncrementalStream stream(small_data(), sc);
  for (const auto& b : stream.batches()) {
    EXPECT_LE(static_cast<int64_t>(b.keys.size()), 10);
    EXPECT_EQ(b.keys.size(), b.labels.size());
  }
}

TEST(Stream, PreferredClassesOverSampled) {
  auto dc = small_data();
  dc.train_instances = 20;  // longer stream for stable statistics
  data::StreamConfig sc;
  sc.preference_weight = 8.0f;
  sc.drift_preferences = false;
  data::DomainIncrementalStream stream(dc, sc);
  const auto& pref = stream.preferred_by_domain()[0];

  std::map<int64_t, int64_t> counts;
  for (const auto& b : stream.batches()) {
    for (int64_t y : b.labels) ++counts[y];
  }
  double pref_avg = 0, other_avg = 0;
  int64_t np = 0, no = 0;
  std::set<int64_t> pref_set(pref.begin(), pref.end());
  for (auto [cls, n] : counts) {
    if (pref_set.count(cls)) {
      pref_avg += static_cast<double>(n);
      ++np;
    } else {
      other_avg += static_cast<double>(n);
      ++no;
    }
  }
  pref_avg /= static_cast<double>(np);
  other_avg /= static_cast<double>(no);
  EXPECT_GT(pref_avg, 3.0 * other_avg);
}

TEST(Stream, PreferenceDriftChangesSet) {
  auto dc = small_data();
  dc.num_domains = 6;
  data::StreamConfig sc;
  sc.drift_preferences = true;
  data::DomainIncrementalStream stream(dc, sc);
  const auto& by_domain = stream.preferred_by_domain();
  EXPECT_EQ(by_domain.front().size(), 5u);
  EXPECT_NE(by_domain.front(), by_domain.back());
}

TEST(Stream, TemporallyCorrelatedRuns) {
  data::StreamConfig sc;
  sc.run_length = 5;
  data::DomainIncrementalStream stream(small_data(), sc);
  // Consecutive same-class pairs should be far above the iid rate (~1/10).
  int64_t same = 0, total = 0;
  for (const auto& b : stream.batches()) {
    for (size_t i = 1; i < b.labels.size(); ++i) {
      same += b.labels[i] == b.labels[i - 1];
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(total), 0.3);
}

TEST(Stream, DeterministicPerSeed) {
  data::StreamConfig sc;
  sc.seed = 77;
  data::DomainIncrementalStream a(small_data(), sc);
  data::DomainIncrementalStream b(small_data(), sc);
  ASSERT_EQ(a.num_batches(), b.num_batches());
  for (int64_t i = 0; i < a.num_batches(); ++i) {
    EXPECT_EQ(a.batch(i).labels, b.batch(i).labels);
  }
  sc.seed = 78;
  data::DomainIncrementalStream c(small_data(), sc);
  bool any_diff = false;
  for (int64_t i = 0; i < std::min(a.num_batches(), c.num_batches()); ++i) {
    if (a.batch(i).labels != c.batch(i).labels) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace cham
