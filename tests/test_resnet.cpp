// Residual backbone: gradient correctness through skip connections,
// forward shapes, and trainability.
#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/resnet.h"
#include "nn/sgd.h"
#include "tensor/ops.h"

namespace cham {
namespace {

TEST(ResNet, ForwardShape) {
  nn::ResNetConfig cfg;
  cfg.num_classes = 7;
  Rng rng(1);
  auto net = nn::build_resnet(cfg, rng);
  Tensor x({2, 3, 32, 32});
  ops::fill_normal(x, rng, 0.0f, 1.0f);
  const Tensor y = net->forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{{2, 7}}));
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_TRUE(std::isfinite(y[i]));
}

TEST(ResNet, IdentityBlockGradCheck) {
  // Finite-difference check of a non-projected residual block.
  Rng rng(2);
  nn::ResidualBlock block(3, 3, 6, 6, /*stride=*/1, rng);
  Tensor x({1, 3, 6, 6});
  Rng xrng(3);
  ops::fill_normal(x, xrng, 0.0f, 1.0f);

  // Reducer: weighted sum of the outputs.
  Tensor w(block.forward(x, true).shape());
  Rng wrng(4);
  ops::fill_uniform(w, wrng, -1.0f, 1.0f);
  auto loss_of = [&](const Tensor& in) {
    Tensor y = block.forward(const_cast<Tensor&>(in), true);
    return ops::dot(y.span(), w.span());
  };

  for (nn::Param* p : block.params()) p->zero_grad();
  Tensor y = block.forward(x, true);
  Tensor gin = block.backward(w);

  const float eps = 1e-2f;
  for (int64_t i = 0; i < 24; ++i) {
    Tensor perturbed = x;
    perturbed[i] += eps;
    const float lp = loss_of(perturbed);
    perturbed[i] -= 2 * eps;
    const float lm = loss_of(perturbed);
    const double num = (double(lp) - double(lm)) / (2.0 * eps);
    EXPECT_NEAR(gin[i], num, 5e-2 * std::max(1.0, std::abs(num)))
        << "input grad " << i;
  }
}

TEST(ResNet, ProjectedBlockGradCheck) {
  Rng rng(5);
  nn::ResidualBlock block(2, 4, 8, 8, /*stride=*/2, rng);
  Tensor x({1, 2, 8, 8});
  Rng xrng(6);
  ops::fill_normal(x, xrng, 0.0f, 1.0f);

  Tensor w(block.forward(x, true).shape());
  Rng wrng(7);
  ops::fill_uniform(w, wrng, -1.0f, 1.0f);

  for (nn::Param* p : block.params()) p->zero_grad();
  block.forward(x, true);
  Tensor gin = block.backward(w);

  const float eps = 1e-2f;
  for (int64_t i = 0; i < 24; ++i) {
    Tensor perturbed = x;
    perturbed[i] += eps;
    Tensor yp = block.forward(perturbed, true);
    const float lp = ops::dot(yp.span(), w.span());
    perturbed[i] -= 2 * eps;
    Tensor ym = block.forward(perturbed, true);
    const float lm = ops::dot(ym.span(), w.span());
    const double num = (double(lp) - double(lm)) / (2.0 * eps);
    // Looser tolerance than the identity test: the projected path stacks
    // two ReLUs whose kinks the finite difference can straddle.
    EXPECT_NEAR(gin[i], num, 0.15 * std::max(1.0, std::abs(num)))
        << "input grad " << i;
  }
}

TEST(ResNet, TrainsOnToyProblem) {
  nn::ResNetConfig cfg;
  cfg.input_hw = 8;
  cfg.base_channels = 4;
  cfg.blocks_per_stage = 1;
  cfg.num_classes = 2;
  Rng rng(8);
  auto net = nn::build_resnet(cfg, rng);
  nn::Sgd opt(net->params(), 0.05f, 0.9f);

  // Two separable patterns: bright vs dark images.
  Tensor x({8, 3, 8, 8});
  std::vector<int64_t> labels(8);
  for (int64_t n = 0; n < 8; ++n) {
    labels[static_cast<size_t>(n)] = n % 2;
    for (int64_t i = 0; i < 3 * 64; ++i) {
      x[n * 3 * 64 + i] = (n % 2 == 0) ? 0.9f : 0.1f;
    }
  }

  float first = 0, last = 0;
  for (int step = 0; step < 30; ++step) {
    opt.zero_grad();
    Tensor logits = net->forward(x, true);
    auto loss = nn::softmax_cross_entropy(logits, labels);
    net->backward(loss.grad);
    opt.step();
    if (step == 0) first = loss.loss;
    last = loss.loss;
  }
  EXPECT_LT(last, first * 0.2f);
}

TEST(ResNet, MacsAccountedThroughBlocks) {
  nn::ResNetConfig cfg;
  Rng rng(9);
  auto net = nn::build_resnet(cfg, rng);
  EXPECT_GT(net->macs_per_sample(), 0);
  // Projected blocks include the shortcut convolution's MACs.
  Rng brng(10);
  nn::ResidualBlock identity(8, 8, 8, 8, 1, brng);
  nn::ResidualBlock projected(8, 16, 8, 8, 2, brng);
  EXPECT_GT(identity.macs_per_sample(), 0);
  EXPECT_GT(projected.macs_per_sample(), 0);
}

}  // namespace
}  // namespace cham
