// Multi-session serving runtime: sharded learner pool with
// checkpoint-backed session eviction (src/serve/).
//
// The load-bearing property is EVICTION FIDELITY: for a randomized schedule
// of many sessions with forced evictions, every session's final head
// weights, replay-store contents and prediction outputs must be
// bit-identical to the same session run in isolation. Everything else
// (backpressure, RNG independence, threaded dispatch) supports that
// contract.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "core/chameleon.h"
#include "core/checkpoint.h"
#include "metrics/experiment.h"
#include "serve/session_manager.h"
#include "serve/session_store.h"
#include "util/check.h"

namespace cham {
namespace {

class ServeSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    metrics::ExperimentConfig cfg = metrics::core50_experiment();
    cfg.data.num_classes = 6;
    cfg.data.num_domains = 2;
    cfg.data.train_instances = 5;
    cfg.pretrain_num_classes = 12;
    cfg.pretrain_epochs = 4;
    cfg.learner_lr = 0.02f;
    exp_ = new metrics::Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
  }

  static core::ChameleonConfig learner_config() {
    core::ChameleonConfig cc;
    cc.lt_capacity = 18;
    return cc;
  }

  static serve::LearnerFactory factory() {
    return [](uint64_t /*session_id*/, uint64_t seed) {
      return std::make_unique<core::ChameleonLearner>(exp_->env(),
                                                      learner_config(), seed);
    };
  }

  // One private stream per session (distinct orderings over the shared
  // pool, so the latent cache warms once).
  static std::vector<data::Batch> session_batches(int64_t session,
                                                  uint64_t salt = 0) {
    data::StreamConfig sc = exp_->config().stream;
    sc.seed = 1000 + static_cast<uint64_t>(session) * 7919 + salt;
    data::DomainIncrementalStream stream(exp_->config().data, sc);
    exp_->warm_latents(stream);
    return stream.batches();
  }

  // Submits with drain-on-reject: backpressure tells us to make room, the
  // deterministic scheduler makes room by dispatching.
  static void submit_or_drain(serve::SessionManager& mgr, uint64_t sid,
                              const data::Batch& batch) {
    for (;;) {
      const serve::Admission adm = mgr.submit_observe(sid, batch);
      if (adm.accepted) return;
      EXPECT_GT(adm.retry_after_ms, 0);
      mgr.drain();
    }
  }

  static void expect_bit_identical(core::ChameleonLearner& a,
                                   core::ChameleonLearner& b,
                                   const std::string& what) {
    SCOPED_TRACE(what);
    // Head weights, byte for byte.
    auto pa = a.head().params();
    auto pb = b.head().params();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
      EXPECT_EQ(std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                            static_cast<size_t>(pa[i]->value.numel()) *
                                sizeof(float)),
                0)
          << "head param " << i << " differs";
    }
    // Short-term store contents.
    ASSERT_EQ(a.short_term().size(), b.short_term().size());
    for (int64_t i = 0; i < a.short_term().size(); ++i) {
      const auto& sta = a.short_term().store();
      const auto& stb = b.short_term().store();
      EXPECT_EQ(sta.label(i), stb.label(i)) << "ST slot " << i;
      ASSERT_EQ(sta.row_numel(), stb.row_numel());
      EXPECT_EQ(std::memcmp(sta.row(i), stb.row(i),
                            static_cast<size_t>(sta.row_numel()) *
                                sizeof(float)),
                0)
          << "ST latent " << i << " differs";
    }
    // Long-term store contents (per class, slot order).
    const auto la = a.long_term().all_samples();
    const auto lb = b.long_term().all_samples();
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].label, lb[i].label) << "LT slot " << i;
      ASSERT_EQ(la[i].latent.numel(), lb[i].latent.numel());
      EXPECT_EQ(std::memcmp(la[i].latent.data(), lb[i].latent.data(),
                            static_cast<size_t>(la[i].latent.numel()) *
                                sizeof(float)),
                0)
          << "LT latent " << i << " differs";
    }
    // Preference statistics, including mid-window counters.
    EXPECT_EQ(a.preferences().samples_seen(), b.preferences().samples_seen());
    EXPECT_EQ(a.preferences().window_seen(), b.preferences().window_seen());
    EXPECT_EQ(a.preferences().recalibrations(),
              b.preferences().recalibrations());
    EXPECT_EQ(a.preferences().delta_k(), b.preferences().delta_k());
    EXPECT_EQ(a.preferences().preferred_classes(),
              b.preferences().preferred_classes());
    EXPECT_EQ(a.steps_observed(), b.steps_observed());
    // Traffic ledger.
    EXPECT_EQ(a.stats().onchip_bytes, b.stats().onchip_bytes);
    EXPECT_EQ(a.stats().offchip_bytes, b.stats().offchip_bytes);
  }

  static metrics::Experiment* exp_;
};

metrics::Experiment* ServeSuite::exp_ = nullptr;

// ---------------------------------------------------------------------------
// Acceptance gate: randomized schedule of >= 20 sessions, a resident pool
// far smaller than the session count (forced evictions), every session
// bit-identical to isolation at the end.
TEST_F(ServeSuite, EvictionFidelityAcrossRandomizedSchedule) {
  constexpr int64_t kSessions = 22;
  serve::ServeConfig sc;
  sc.num_shards = 3;
  sc.max_resident = 4;  // << kSessions: every session cycles through disk
  sc.queue_capacity = 8;
  sc.store_dir = "/tmp/cham_serve_fidelity";
  sc.base_seed = 7;
  sc.mode = serve::ServeMode::kDeterministic;
  serve::SessionStore(sc.store_dir).clear();

  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < kSessions; ++s) {
    batches.push_back(session_batches(s));
  }

  // Zipf-skewed randomized interleaving, plus one guaranteed event per
  // session so every session participates.
  data::MultiUserConfig mc;
  mc.num_sessions = kSessions;
  mc.events = 140;
  mc.zipf_s = 0.9;
  mc.seed = 11;
  auto schedule = data::make_zipf_schedule(mc);
  std::vector<int64_t> next_index(kSessions, 0);
  std::vector<std::vector<data::Batch>> submitted(kSessions);
  {
    serve::SessionManager mgr(sc, factory());
    auto submit_next = [&](int64_t session) {
      const auto& pool = batches[static_cast<size_t>(session)];
      const auto& batch = pool[static_cast<size_t>(
          next_index[static_cast<size_t>(session)] %
          static_cast<int64_t>(pool.size()))];
      ++next_index[static_cast<size_t>(session)];
      submitted[static_cast<size_t>(session)].push_back(batch);
      submit_or_drain(mgr, static_cast<uint64_t>(session), batch);
    };
    for (const auto& ev : schedule) submit_next(ev.session);
    for (int64_t s = 0; s < kSessions; ++s) submit_next(s);
    mgr.flush();

    const serve::ServeStats st = mgr.stats();
    EXPECT_GT(st.evictions, kSessions);  // pool of 4 must thrash
    EXPECT_GT(st.restores, 0);
    EXPECT_EQ(st.observes, st.admissions);
    EXPECT_LE(st.resident_high_water, sc.max_resident);

    // Every session: restore from the store and compare against the same
    // stream run in isolation with the session's derived seed.
    serve::SessionStore reader(sc.store_dir);
    const auto test_keys = data::all_test_keys(exp_->config().data);
    for (int64_t s = 0; s < kSessions; ++s) {
      core::ChameleonLearner restored(exp_->env(), learner_config(),
                                      /*seed=*/0xDEAD);
      ASSERT_TRUE(reader.load(static_cast<uint64_t>(s), restored))
          << "session " << s << " missing from store";
      core::ChameleonLearner isolated(
          exp_->env(), learner_config(),
          mgr.session_seed(static_cast<uint64_t>(s)));
      for (const auto& b : submitted[static_cast<size_t>(s)]) {
        isolated.observe(b);
      }
      expect_bit_identical(restored, isolated,
                           "session " + std::to_string(s));
      EXPECT_EQ(restored.predict(test_keys), isolated.predict(test_keys))
          << "prediction outputs differ for session " << s;
    }
  }
}

// Per-session results must not depend on how sessions interleave: the same
// per-session work submitted in two very different global orders produces
// byte-identical per-session state.
TEST_F(ServeSuite, AdmissionOrderDoesNotChangePerSessionResults) {
  constexpr int64_t kSessions = 6;
  constexpr int64_t kBatchesPerSession = 4;

  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < kSessions; ++s) {
    batches.push_back(session_batches(s, /*salt=*/77));
  }

  auto run_order = [&](const std::string& dir, bool reversed) {
    serve::ServeConfig sc;
    sc.num_shards = 2;
    sc.max_resident = 2;
    sc.queue_capacity = 4;
    sc.store_dir = dir;
    sc.base_seed = 21;
    serve::SessionStore(dir).clear();
    serve::SessionManager mgr(sc, factory());
    for (int64_t b = 0; b < kBatchesPerSession; ++b) {
      for (int64_t i = 0; i < kSessions; ++i) {
        const int64_t s = reversed ? kSessions - 1 - i : i;
        submit_or_drain(mgr, static_cast<uint64_t>(s),
                        batches[static_cast<size_t>(s)][static_cast<size_t>(
                            b % static_cast<int64_t>(
                                    batches[static_cast<size_t>(s)].size()))]);
      }
      if (b % 2 == 1) mgr.drain();
    }
    mgr.flush();
  };

  run_order("/tmp/cham_serve_order_a", false);
  run_order("/tmp/cham_serve_order_b", true);

  serve::SessionStore a("/tmp/cham_serve_order_a");
  serve::SessionStore b("/tmp/cham_serve_order_b");
  for (int64_t s = 0; s < kSessions; ++s) {
    core::ChameleonLearner la(exp_->env(), learner_config(), 0x1);
    core::ChameleonLearner lb(exp_->env(), learner_config(), 0x2);
    ASSERT_TRUE(a.load(static_cast<uint64_t>(s), la));
    ASSERT_TRUE(b.load(static_cast<uint64_t>(s), lb));
    expect_bit_identical(la, lb, "session " + std::to_string(s));
  }
}

// Satellite: per-session RNG streams are derived by hashing, not by
// admission order — distinct ids get distinct seeds, and the same id always
// gets the same seed.
TEST_F(ServeSuite, SessionSeedsAreStableAndDistinct) {
  serve::ServeConfig sc;
  sc.num_shards = 1;
  sc.max_resident = 1;
  sc.store_dir = "/tmp/cham_serve_seeds";
  sc.base_seed = 123;
  serve::SessionManager mgr(sc, factory());
  std::vector<uint64_t> seeds;
  for (uint64_t s = 0; s < 256; ++s) seeds.push_back(mgr.session_seed(s));
  for (size_t i = 0; i < seeds.size(); ++i) {
    for (size_t j = i + 1; j < seeds.size(); ++j) {
      ASSERT_NE(seeds[i], seeds[j]) << "seed collision " << i << "," << j;
    }
  }
  EXPECT_EQ(mgr.session_seed(42), mgr.session_seed(42));
  // Different base seeds decorrelate the whole pool.
  EXPECT_NE(split_seed(1, 42), split_seed(2, 42));
}

// Backpressure: a full shard queue rejects with a retry hint instead of
// growing; draining makes room again.
TEST_F(ServeSuite, BoundedQueueRejectsWithRetryHint) {
  serve::ServeConfig sc;
  sc.num_shards = 1;
  sc.max_resident = 1;
  sc.queue_capacity = 2;
  sc.retry_hint_ms = 9;
  sc.store_dir = "/tmp/cham_serve_backpressure";
  serve::SessionStore(sc.store_dir).clear();
  serve::SessionManager mgr(sc, factory());

  const auto batches = session_batches(0);
  EXPECT_TRUE(mgr.submit_observe(5, batches[0]).accepted);
  EXPECT_TRUE(mgr.submit_observe(5, batches[1]).accepted);
  const serve::Admission rejected = mgr.submit_observe(5, batches[2]);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.retry_after_ms, 9);
  EXPECT_EQ(rejected.queue_depth, 2);

  mgr.drain();
  EXPECT_TRUE(mgr.submit_observe(5, batches[2]).accepted);
  mgr.drain();

  const serve::ServeStats st = mgr.stats();
  EXPECT_EQ(st.rejections, 1);
  EXPECT_EQ(st.admissions, 3);
  EXPECT_EQ(st.observes, 3);
  EXPECT_EQ(st.queue_depth_high_water, 2);
}

// Predict is FIFO-ordered behind the session's pending observes
// (read-your-writes) and matches an isolated learner's outputs.
TEST_F(ServeSuite, PredictSeesPendingObserves) {
  serve::ServeConfig sc;
  sc.num_shards = 2;
  sc.max_resident = 2;
  sc.queue_capacity = 16;
  sc.store_dir = "/tmp/cham_serve_predict";
  sc.base_seed = 5;
  serve::SessionStore(sc.store_dir).clear();
  serve::SessionManager mgr(sc, factory());

  const auto batches = session_batches(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mgr.submit_observe(9, batches[static_cast<size_t>(i)])
                    .accepted);
  }
  const auto test_keys = data::all_test_keys(exp_->config().data);
  const auto served = mgr.predict(9, test_keys);  // no explicit drain
  ASSERT_TRUE(served.has_value());

  core::ChameleonLearner isolated(exp_->env(), learner_config(),
                                  mgr.session_seed(9));
  for (int i = 0; i < 3; ++i) {
    isolated.observe(batches[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(*served, isolated.predict(test_keys));

  const serve::ServeStats st = mgr.stats();
  EXPECT_EQ(st.observes, 3);
  EXPECT_EQ(st.predicts, 1);
}

// Threaded mode: per-session results stay bit-identical to isolation even
// with real cross-shard concurrency.
TEST_F(ServeSuite, ThreadedModeMatchesIsolation) {
  constexpr int64_t kSessions = 8;
  constexpr int64_t kBatchesPerSession = 3;
  serve::ServeConfig sc;
  sc.num_shards = 4;
  sc.max_resident = 5;
  sc.queue_capacity = 8;
  sc.store_dir = "/tmp/cham_serve_threaded";
  sc.base_seed = 31;
  sc.mode = serve::ServeMode::kThreaded;
  serve::SessionStore(sc.store_dir).clear();

  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < kSessions; ++s) {
    batches.push_back(session_batches(s, /*salt=*/31));
  }
  {
    serve::SessionManager mgr(sc, factory());
    for (int64_t b = 0; b < kBatchesPerSession; ++b) {
      for (int64_t s = 0; s < kSessions; ++s) {
        for (;;) {
          if (mgr.submit_observe(static_cast<uint64_t>(s),
                                 batches[static_cast<size_t>(s)]
                                        [static_cast<size_t>(b)])
                  .accepted) {
            break;
          }
          // Workers drain continuously; brief yield and retry.
          std::this_thread::yield();
        }
      }
    }
    mgr.flush();

    serve::SessionStore reader(sc.store_dir);
    for (int64_t s = 0; s < kSessions; ++s) {
      core::ChameleonLearner restored(exp_->env(), learner_config(), 0xF00);
      ASSERT_TRUE(reader.load(static_cast<uint64_t>(s), restored));
      core::ChameleonLearner isolated(
          exp_->env(), learner_config(),
          mgr.session_seed(static_cast<uint64_t>(s)));
      for (int64_t b = 0; b < kBatchesPerSession; ++b) {
        isolated.observe(batches[static_cast<size_t>(s)]
                                [static_cast<size_t>(b)]);
      }
      expect_bit_identical(restored, isolated,
                           "threaded session " + std::to_string(s));
    }
  }
}

// SessionStore basics: blobs round-trip, enumerate, and erase.
TEST_F(ServeSuite, SessionStoreLifecycle) {
  const std::string dir = "/tmp/cham_serve_store";
  serve::SessionStore store(dir);
  store.clear();
  EXPECT_EQ(store.size(), 0);
  EXPECT_FALSE(store.contains(4));

  core::ChameleonLearner learner(exp_->env(), learner_config(), 17);
  const auto batches = session_batches(1);
  learner.observe(batches[0]);
  ASSERT_TRUE(store.save(4, learner));
  ASSERT_TRUE(store.save(9000000007ull, learner));
  EXPECT_TRUE(store.contains(4));
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.session_ids(),
            (std::vector<uint64_t>{4, 9000000007ull}));
  EXPECT_GT(store.bytes_written(), 0);

  core::ChameleonLearner other(exp_->env(), learner_config(), 99);
  ASSERT_TRUE(store.load(4, other));
  expect_bit_identical(learner, other, "store round trip");
  EXPECT_GT(store.bytes_read(), 0);

  EXPECT_TRUE(store.erase(4));
  EXPECT_FALSE(store.contains(4));
  EXPECT_FALSE(store.erase(4));
  store.clear();
  EXPECT_EQ(store.size(), 0);
}

// Satellite: bounded LatentCache is single-owner — access from a second
// thread trips the contract instead of silently racing the LRU list.
TEST_F(ServeSuite, BoundedLatentCacheRejectsSecondThread) {
  data::LatentCache bounded(exp_->config().data, exp_->backbone(),
                            /*max_entries=*/4);
  const auto batches = session_batches(0);
  (void)bounded.latent(batches[0].keys[0]);  // this thread becomes the owner

  bool threw = false;
  std::thread second([&] {
    try {
      (void)bounded.latent(batches[0].keys[1]);
    } catch (const util::CheckError&) {
      threw = true;
    }
  });
  second.join();
  EXPECT_TRUE(threw);

  // Unbounded caches are shared freely (the serving default).
  data::LatentCache unbounded(exp_->config().data, exp_->backbone());
  (void)unbounded.latent(batches[0].keys[0]);
  bool second_ok = true;
  std::thread third([&] {
    try {
      (void)unbounded.latent(batches[0].keys[1]);
    } catch (...) {
      second_ok = false;
    }
  });
  third.join();
  EXPECT_TRUE(second_ok);
}

// The Zipf schedule helper: deterministic in the seed, skewed toward low
// ranks, and per-session batch indices count up densely.
TEST_F(ServeSuite, ZipfScheduleShape) {
  data::MultiUserConfig mc;
  mc.num_sessions = 20;
  mc.events = 2000;
  mc.zipf_s = 1.2;
  mc.seed = 3;
  const auto a = data::make_zipf_schedule(mc);
  const auto b = data::make_zipf_schedule(mc);
  ASSERT_EQ(a.size(), 2000u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].session, b[i].session);
    EXPECT_EQ(a[i].batch_index, b[i].batch_index);
  }
  std::vector<int64_t> counts(20, 0), next(20, 0);
  for (const auto& ev : a) {
    ASSERT_GE(ev.session, 0);
    ASSERT_LT(ev.session, 20);
    EXPECT_EQ(ev.batch_index, next[static_cast<size_t>(ev.session)]++);
    ++counts[static_cast<size_t>(ev.session)];
  }
  EXPECT_GT(counts[0], counts[19] * 2) << "rank 0 should dominate the tail";
}

// ---------------------------------------------------------------------------
// Write-behind eviction pipeline + serve-path failure handling.

// A learner whose predict() can be armed to throw, for fault injection
// through the virtual dispatch path the manager uses.
class ThrowingLearner : public core::ChameleonLearner {
 public:
  ThrowingLearner(const core::LearnerEnv& env,
                  const core::ChameleonConfig& cfg, uint64_t seed,
                  std::shared_ptr<std::atomic<bool>> arm)
      : core::ChameleonLearner(env, cfg, seed), arm_(std::move(arm)) {}
  // predict_batch is the single funnel both the plain predict() path and
  // the serve batch planner flow through — overriding it injects the
  // failure into either.
  std::vector<int64_t> predict_batch(
      std::span<const data::ImageKey> keys) override {
    if (arm_->load()) throw util::CheckError("injected predict failure");
    return core::ChameleonLearner::predict_batch(keys);
  }

 private:
  std::shared_ptr<std::atomic<bool>> arm_;
};

// Satellite bugfix: a failed write (disk full) must never replace a valid
// blob with a truncated one. The temp file is diverted to /dev/full so every
// write fails with ENOSPC before the rename.
TEST_F(ServeSuite, SaveFailureLeavesOldBlobIntact) {
  const std::string dir = "/tmp/cham_serve_diskfull";
  serve::SessionStore store(dir);
  store.clear();
  const auto batches = session_batches(2);
  core::ChameleonLearner learner(exp_->env(), learner_config(), 17);
  learner.observe(batches[0]);
  ASSERT_TRUE(store.save(7, learner));

  // Divert the next temp file to a device that rejects all writes.
  const std::string tmp = dir + "/session_7.chk.tmp";
  ASSERT_EQ(::symlink("/dev/full", tmp.c_str()), 0) << "symlink failed";
  learner.observe(batches[1]);
  EXPECT_FALSE(store.save(7, learner)) << "ENOSPC write must fail the save";

  // The pre-failure blob is still installed, complete, and loadable.
  core::ChameleonLearner as_of_first_save(exp_->env(), learner_config(), 17);
  as_of_first_save.observe(batches[0]);
  core::ChameleonLearner restored(exp_->env(), learner_config(), 99);
  ASSERT_TRUE(store.load(7, restored));
  expect_bit_identical(as_of_first_save, restored, "blob after failed save");

  // The failed attempt cleaned up its temp link; a retry succeeds.
  ASSERT_TRUE(store.save(7, learner));
  core::ChameleonLearner after(exp_->env(), learner_config(), 98);
  ASSERT_TRUE(store.load(7, after));
  expect_bit_identical(learner, after, "blob after retried save");
  store.clear();
}

// Satellite bugfix: an exception inside dispatch must reach the predict()
// caller through the promise — not leave it unfulfilled (caller hangs
// forever) or kill the shard worker. After the failure the session is
// unpinned and both scheduler modes keep serving.
TEST_F(ServeSuite, PredictExceptionPropagatesWithoutHanging) {
  auto arm = std::make_shared<std::atomic<bool>>(false);
  serve::LearnerFactory throwing_factory =
      [arm](uint64_t /*session_id*/, uint64_t seed) {
        return std::unique_ptr<core::ChameleonLearner>(
            std::make_unique<ThrowingLearner>(exp_->env(), learner_config(),
                                              seed, arm));
      };
  const auto batches = session_batches(4);
  const auto test_keys = data::all_test_keys(exp_->config().data);

  for (const auto mode :
       {serve::ServeMode::kDeterministic, serve::ServeMode::kThreaded}) {
    SCOPED_TRACE(mode == serve::ServeMode::kThreaded ? "threaded"
                                                     : "deterministic");
    serve::ServeConfig sc;
    sc.num_shards = 2;
    sc.max_resident = 2;
    sc.queue_capacity = 8;
    sc.store_dir = "/tmp/cham_serve_throw";
    sc.mode = mode;
    serve::SessionStore(sc.store_dir).clear();
    serve::SessionManager mgr(sc, throwing_factory);

    while (!mgr.submit_observe(8, batches[0]).accepted) mgr.drain();
    arm->store(true);
    EXPECT_THROW((void)mgr.predict(8, test_keys), util::CheckError);
    arm->store(false);

    // Worker survived, pin released: the same session serves again.
    const auto after = mgr.predict(8, test_keys);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->size(), test_keys.size());
    mgr.flush();
    const serve::ServeStats st = mgr.stats();
    EXPECT_EQ(st.dispatch_errors, 1);
    EXPECT_EQ(st.predicts, 1);  // only the successful one counts
  }
}

// Tentpole: a restore racing its own write-behind flush must read the
// pending snapshot bit-identically. The IO thread is frozen so every
// eviction's flush stays pending and every restore is forced through the
// in-memory pipeline, never disk.
TEST_F(ServeSuite, RestoreDuringPendingFlushIsBitExact) {
  constexpr int kRounds = 3;
  serve::ServeConfig sc;
  sc.num_shards = 1;
  sc.max_resident = 1;  // every session switch evicts
  sc.queue_capacity = 4;
  sc.store_dir = "/tmp/cham_serve_pending";
  sc.base_seed = 77;
  serve::SessionStore(sc.store_dir).clear();
  serve::SessionManager mgr(sc, factory());

  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < 2; ++s) batches.push_back(session_batches(s));

  mgr.write_behind().pause_for_test();
  for (int round = 0; round < kRounds; ++round) {
    for (uint64_t s = 0; s < 2; ++s) {
      submit_or_drain(mgr, s, batches[s][static_cast<size_t>(round)]);
      mgr.drain();
    }
  }
  const serve::ServeStats mid = mgr.stats();
  EXPECT_GT(mid.pending_restores, 0) << "restores must hit the frozen queue";
  EXPECT_EQ(mid.disk_restores, 0);
  mgr.write_behind().resume_for_test();
  mgr.flush();

  serve::SessionStore reader(sc.store_dir);
  for (uint64_t s = 0; s < 2; ++s) {
    core::ChameleonLearner restored(exp_->env(), learner_config(), 0xBEEF);
    ASSERT_TRUE(reader.load(s, restored));
    core::ChameleonLearner isolated(exp_->env(), learner_config(),
                                    mgr.session_seed(s));
    for (int round = 0; round < kRounds; ++round) {
      isolated.observe(batches[s][static_cast<size_t>(round)]);
    }
    expect_bit_identical(restored, isolated,
                         "pending-restore session " + std::to_string(s));
  }
}

// Satellite bugfix: drain() racing shutdown must not hang, and a manager
// destroyed with queued work must drain it. Completion of this test IS the
// assertion.
TEST_F(ServeSuite, ShutdownWithConcurrentDrainsDoesNotHang) {
  serve::ServeConfig sc;
  sc.num_shards = 2;
  sc.max_resident = 3;
  sc.queue_capacity = 16;
  sc.store_dir = "/tmp/cham_serve_shutdown";
  sc.mode = serve::ServeMode::kThreaded;
  serve::SessionStore(sc.store_dir).clear();
  const auto batches = session_batches(5);
  {
    serve::SessionManager mgr(sc, factory());
    for (int i = 0; i < 6; ++i) {
      while (!mgr.submit_observe(static_cast<uint64_t>(i % 3),
                                 batches[static_cast<size_t>(i) %
                                         batches.size()])
                  .accepted) {
        std::this_thread::yield();
      }
    }
    std::vector<std::thread> drains;
    for (int t = 0; t < 3; ++t) drains.emplace_back([&mgr] { mgr.drain(); });
    for (auto& t : drains) t.join();
    // Leave fresh work queued; the destructor must flush it.
    while (!mgr.submit_observe(1, batches[0]).accepted) {
      std::this_thread::yield();
    }
  }
  serve::SessionStore reader(sc.store_dir);
  EXPECT_EQ(reader.size(), 3);  // all three sessions landed on disk
}

// Tentpole: steady-state eviction writes shrink by >5x once a session's
// base blob is on disk — each re-eviction after a single observe writes a
// delta (op log or chunk diff), not the 2MB full blob.
TEST_F(ServeSuite, SteadyStateEvictionWritesUseDeltas) {
  constexpr int kRounds = 6;
  serve::ServeConfig sc;
  sc.num_shards = 1;
  sc.max_resident = 1;
  sc.queue_capacity = 4;
  sc.store_dir = "/tmp/cham_serve_delta";
  sc.base_seed = 13;
  serve::SessionStore(sc.store_dir).clear();
  serve::SessionManager mgr(sc, factory());

  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < 2; ++s) batches.push_back(session_batches(s, 5));

  for (int round = 0; round < kRounds; ++round) {
    for (uint64_t s = 0; s < 2; ++s) {
      submit_or_drain(
          mgr, s,
          batches[s][static_cast<size_t>(round) % batches[s].size()]);
      mgr.drain();
    }
  }
  mgr.write_behind().drain();  // settle flushes WITHOUT forcing compaction

  const serve::ServeStats st = mgr.stats();
  const int64_t delta_saves = st.wb_chunk_saves + st.wb_oplog_saves;
  ASSERT_GT(delta_saves, 0) << "steady state must produce delta writes";
  ASSERT_GT(st.wb_full_saves, 0);
  const double avg_delta =
      static_cast<double>(st.wb_delta_bytes) / static_cast<double>(delta_saves);
  const double avg_full = static_cast<double>(st.wb_full_bytes) /
                          static_cast<double>(st.wb_full_saves);
  EXPECT_LE(avg_delta * 5.0, avg_full)
      << "avg delta " << avg_delta << "B vs avg full " << avg_full << "B";

  // Fidelity still holds through the delta path.
  mgr.flush();
  serve::SessionStore reader(sc.store_dir);
  for (uint64_t s = 0; s < 2; ++s) {
    core::ChameleonLearner restored(exp_->env(), learner_config(), 0xACE);
    ASSERT_TRUE(reader.load(s, restored));
    core::ChameleonLearner isolated(exp_->env(), learner_config(),
                                    mgr.session_seed(s));
    for (int round = 0; round < kRounds; ++round) {
      isolated.observe(
          batches[s][static_cast<size_t>(round) % batches[s].size()]);
    }
    expect_bit_identical(restored, isolated,
                         "delta-path session " + std::to_string(s));
  }
}

// Disk restore through an op-log delta: base blob + logged requests on
// disk (as after a crash that lost the RAM cache), the manager replays the
// log through a fresh learner and lands, hash-verified, on the exact state.
TEST_F(ServeSuite, OpLogDeltaRestoreReplaysFromDisk) {
  serve::ServeConfig sc;
  sc.num_shards = 1;
  sc.max_resident = 2;
  sc.store_dir = "/tmp/cham_serve_oplog";
  sc.base_seed = 55;
  serve::SessionStore(sc.store_dir).clear();

  const uint64_t sid = 3;
  const uint64_t seed = split_seed(sc.base_seed, sid);
  const auto batches = session_batches(6);
  const auto test_keys = data::all_test_keys(exp_->config().data);

  // Hand-craft the on-disk state: full blob after batch 0, op-log delta
  // covering batches 1 and 2 plus one predict (predicts charge eval MACs,
  // so they are part of the logged state transition).
  core::ChameleonLearner source(exp_->env(), learner_config(), seed);
  source.observe(batches[0]);
  core::ByteBuf base;
  {
    core::ByteBufWriter os(base);
    ASSERT_TRUE(source.save_state(os));
  }
  std::vector<data::ServeOp> ops(3);
  ops[0].batch = batches[1];
  ops[1].predict = true;
  ops[1].keys = test_keys;
  ops[2].batch = batches[2];
  source.observe(batches[1]);
  (void)source.predict(test_keys);
  source.observe(batches[2]);
  core::ByteBuf target;
  {
    core::ByteBufWriter os(target);
    ASSERT_TRUE(source.save_state(os));
  }
  core::DeltaHeader h;
  h.kind = core::DeltaKind::kOpLog;
  h.base_hash = core::blob_hash(base.data(), base.size());
  h.base_len = base.size();
  h.next_hash = core::blob_hash(target.data(), target.size());
  h.next_len = target.size();
  const core::ByteBuf frame = core::encode_op_log(h, ops);
  {
    serve::SessionStore writer(sc.store_dir);
    ASSERT_TRUE(writer.put_full(sid, base.data(), base.size()));
    ASSERT_TRUE(writer.put_delta(sid, frame.data(), frame.size()));
    EXPECT_TRUE(writer.has_delta(sid));
  }

  // A cold manager must reconstruct the target state by replay.
  serve::SessionManager mgr(sc, factory());
  const auto served = mgr.predict(sid, test_keys);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(*served, source.predict(test_keys));
  const serve::ServeStats st = mgr.stats();
  EXPECT_EQ(st.disk_restores, 1);
  EXPECT_EQ(st.replayed_ops, 3);
}

// Crash consistency: a full write renames .chk before unlinking .delta; a
// crash in between leaves a stale delta whose base hash mismatches. load()
// must serve the (newer) base alone, never apply the stale delta.
TEST_F(ServeSuite, StaleDeltaIsIgnoredOnLoad) {
  serve::SessionStore store("/tmp/cham_serve_stale");
  store.clear();
  const auto batches = session_batches(7);

  core::ChameleonLearner learner(exp_->env(), learner_config(), 27);
  learner.observe(batches[0]);
  core::ByteBuf blob_a;
  {
    core::ByteBufWriter os(blob_a);
    ASSERT_TRUE(learner.save_state(os));
  }
  learner.observe(batches[1]);
  core::ByteBuf blob_b;
  {
    core::ByteBufWriter os(blob_b);
    ASSERT_TRUE(learner.save_state(os));
  }
  const core::ByteBuf delta_ab = core::encode_chunk_delta(
      blob_a.data(), blob_a.size(), blob_b.data(), blob_b.size(), 256);

  // Live pair: base A + delta A->B loads as B.
  ASSERT_TRUE(store.put_full(1, blob_a.data(), blob_a.size()));
  ASSERT_TRUE(store.put_delta(1, delta_ab.data(), delta_ab.size()));
  core::ChameleonLearner as_b(exp_->env(), learner_config(), 0x11);
  ASSERT_TRUE(store.load(1, as_b));
  core::ChameleonLearner want_b(exp_->env(), learner_config(), 27);
  want_b.observe(batches[0]);
  want_b.observe(batches[1]);
  expect_bit_identical(as_b, want_b, "chunk delta applied from store");

  // Advance the base past the delta (a put_full removes it), then
  // re-install the stale delta as a crash between rename and unlink would.
  learner.observe(batches[2]);
  core::ByteBuf blob_c;
  {
    core::ByteBufWriter os(blob_c);
    ASSERT_TRUE(learner.save_state(os));
  }
  ASSERT_TRUE(store.put_full(1, blob_c.data(), blob_c.size()));
  EXPECT_FALSE(store.has_delta(1)) << "put_full must remove the delta";
  ASSERT_TRUE(store.put_delta(1, delta_ab.data(), delta_ab.size()));

  core::ChameleonLearner as_c(exp_->env(), learner_config(), 0x22);
  ASSERT_TRUE(store.load(1, as_c));
  expect_bit_identical(as_c, learner, "stale delta ignored, base served");
  store.clear();
}

// --- Batched predict dispatch (serve/batch_planner.h) ----------------------

// Submits a predict with drain-on-reject and returns its future.
std::future<std::vector<int64_t>> submit_predict_or_drain(
    serve::SessionManager& mgr, uint64_t sid,
    const std::vector<data::ImageKey>& keys) {
  for (;;) {
    std::future<std::vector<int64_t>> result;
    if (mgr.submit_predict(sid, keys, &result).accepted) return result;
    mgr.drain();
  }
}

// Tentpole: a planned batch — merged windows included — returns exactly the
// bits the unbatched per-request path returns, and a batch of one is just
// the unbatched path. Reference results come from isolated learners run
// with each session's derived seed.
TEST_F(ServeSuite, BatchedPredictMatchesIsolatedLearner) {
  constexpr int64_t kSessions = 5;
  serve::ServeConfig sc;
  sc.num_shards = 2;
  sc.max_resident = 6;
  sc.queue_capacity = 16;
  sc.max_batch = 4;  // kSessions' predicts need > 1 window
  sc.store_dir = "/tmp/cham_serve_batch_iso";
  sc.base_seed = 33;
  serve::SessionStore(sc.store_dir).clear();
  serve::SessionManager mgr(sc, factory());

  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < kSessions; ++s) {
    batches.push_back(session_batches(s, /*salt=*/5));
    submit_or_drain(mgr, static_cast<uint64_t>(s),
                    batches[static_cast<size_t>(s)][0]);
  }
  mgr.drain();
  const auto test_keys = data::all_test_keys(exp_->config().data);

  // Batch of one: a lone queued predict becomes a single-request plan.
  auto lone = submit_predict_or_drain(mgr, 0, test_keys);
  mgr.drain();
  core::ChameleonLearner iso0(exp_->env(), learner_config(),
                              mgr.session_seed(0));
  iso0.observe(batches[0][0]);
  EXPECT_EQ(lone.get(), iso0.predict(test_keys)) << "batch-of-one differs";
  {
    const serve::ServeStats st = mgr.stats();
    EXPECT_EQ(st.predict_batches, 0) << "a lone predict must not be merged";
  }

  // Every session queues a run of predicts; one drain coalesces them all
  // into a single cross-shard plan, merging each session's run into
  // stacked eval windows (merging needs same-session requests: each
  // session has private head weights, so rows from different sessions can
  // never share a GEMM — the cross-session win is the one-sweep dispatch).
  constexpr int64_t kReps = 3;
  std::vector<std::future<std::vector<int64_t>>> futures;
  for (int64_t rep = 0; rep < kReps; ++rep) {
    for (int64_t s = 0; s < kSessions; ++s) {
      futures.push_back(
          submit_predict_or_drain(mgr, static_cast<uint64_t>(s), test_keys));
    }
  }
  mgr.drain();
  for (int64_t s = 0; s < kSessions; ++s) {
    core::ChameleonLearner iso(exp_->env(), learner_config(),
                               mgr.session_seed(static_cast<uint64_t>(s)));
    iso.observe(batches[static_cast<size_t>(s)][0]);
    const auto want = iso.predict(test_keys);
    for (int64_t rep = 0; rep < kReps; ++rep) {
      EXPECT_EQ(futures[static_cast<size_t>(rep * kSessions + s)].get(), want)
          << "batched predict differs for session " << s << " rep " << rep;
    }
  }
  const serve::ServeStats st = mgr.stats();
  EXPECT_GT(st.predict_batches, 0) << "coalescing never merged a window";
  EXPECT_GE(st.batched_predicts, 2);
  EXPECT_GE(st.batch_size_max, 2);
  EXPECT_LE(st.batch_size_max, sc.max_batch);
  EXPECT_EQ(st.predicts, kReps * kSessions + 1);
  EXPECT_EQ(st.dispatch_errors, 0);
}

// Tentpole gate (test half of bench_serve's gate_batched_bit_exact): the
// same mixed observe/predict schedule run with coalescing on (max_batch=8)
// and off (max_batch=1) yields byte-identical predictions everywhere, and
// predicts always see their session's earlier observes (read-your-writes
// through the planner's eligibility rule).
TEST_F(ServeSuite, BatchedVsUnbatchedBitExactOnMixedInterleave) {
  constexpr int64_t kSessions = 6;
  constexpr int64_t kRounds = 3;
  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < kSessions; ++s) {
    batches.push_back(session_batches(s, /*salt=*/91));
  }
  const auto test_keys = data::all_test_keys(exp_->config().data);

  // Mixed interleave: each round submits an observe then TWO predicts per
  // session before any drain, so every shard queue holds predict runs
  // blocked behind same-session observes next to eligible cross-session
  // runs (the runs merge once their observe dispatches).
  auto run = [&](const std::string& dir, int64_t max_batch) {
    serve::ServeConfig sc;
    sc.num_shards = 3;
    sc.max_resident = 4;  // below kSessions: plans race eviction
    sc.queue_capacity = 16;
    sc.max_batch = max_batch;
    sc.store_dir = dir;
    sc.base_seed = 55;
    serve::SessionStore(dir).clear();
    serve::SessionManager mgr(sc, factory());
    std::vector<std::vector<int64_t>> out;
    std::vector<std::future<std::vector<int64_t>>> futures;
    for (int64_t r = 0; r < kRounds; ++r) {
      for (int64_t s = 0; s < kSessions; ++s) {
        submit_or_drain(mgr, static_cast<uint64_t>(s),
                        batches[static_cast<size_t>(s)][static_cast<size_t>(
                            r % static_cast<int64_t>(
                                    batches[static_cast<size_t>(s)].size()))]);
        futures.push_back(submit_predict_or_drain(
            mgr, static_cast<uint64_t>(s), test_keys));
        futures.push_back(submit_predict_or_drain(
            mgr, static_cast<uint64_t>(s), test_keys));
      }
    }
    mgr.drain();
    for (auto& f : futures) out.push_back(f.get());
    const serve::ServeStats st = mgr.stats();
    EXPECT_EQ(st.predicts, 2 * kSessions * kRounds);
    EXPECT_EQ(st.dispatch_errors, 0);
    if (max_batch == 1) {
      EXPECT_EQ(st.predict_batches, 0)
          << "max_batch=1 must disable cross-request merging";
    } else {
      EXPECT_GT(st.batched_predicts, 0)
          << "mixed schedule never exercised a merged window";
    }
    return out;
  };

  const auto batched = run("/tmp/cham_serve_batch_on", 8);
  const auto unbatched = run("/tmp/cham_serve_batch_off", 1);
  ASSERT_EQ(batched.size(), unbatched.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], unbatched[i])
        << "batched vs unbatched predictions diverge at event " << i;
  }
}

// Tentpole determinism: with only predicts queued, the deterministic drain
// extracts every shard's eligible set into ONE plan whose order, grouping
// and window structure are a pure function of per-session request
// sequences — so any arrival permutation produces identical results AND
// identical batching stats.
TEST_F(ServeSuite, PlanStableAcrossArrivalPermutations) {
  constexpr int64_t kSessions = 6;
  constexpr int64_t kPredictsPerSession = 3;
  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < kSessions; ++s) {
    batches.push_back(session_batches(s, /*salt=*/13));
  }
  const auto test_keys = data::all_test_keys(exp_->config().data);

  // permutation: maps submission slot -> session, covering each session
  // kPredictsPerSession times in different global orders.
  auto run = [&](const std::string& dir,
                 const std::vector<int64_t>& session_order) {
    serve::ServeConfig sc;
    sc.num_shards = 2;
    sc.max_resident = 8;
    sc.queue_capacity = 32;
    sc.max_batch = 4;
    sc.store_dir = dir;
    sc.base_seed = 77;
    serve::SessionStore(dir).clear();
    serve::SessionManager mgr(sc, factory());
    for (int64_t s = 0; s < kSessions; ++s) {
      submit_or_drain(mgr, static_cast<uint64_t>(s),
                      batches[static_cast<size_t>(s)][0]);
    }
    mgr.drain();
    std::vector<std::future<std::vector<int64_t>>> futures(
        session_order.size());
    std::vector<int64_t> slot_of_session(kSessions, 0);
    std::vector<size_t> slot(session_order.size());
    for (size_t i = 0; i < session_order.size(); ++i) {
      const int64_t s = session_order[i];
      // Results are keyed (session, k-th predict), not arrival slot, so
      // permutations compare like for like.
      slot[i] = static_cast<size_t>(
          s * kPredictsPerSession + slot_of_session[static_cast<size_t>(s)]++);
      futures[slot[i]] = submit_predict_or_drain(
          mgr, static_cast<uint64_t>(s), test_keys);
    }
    mgr.drain();
    std::vector<std::vector<int64_t>> out;
    for (auto& f : futures) out.push_back(f.get());
    const serve::ServeStats st = mgr.stats();
    return std::make_tuple(std::move(out), st.predict_batches,
                           st.batched_predicts, st.batch_size_max);
  };

  std::vector<int64_t> forward, reversed, strided;
  for (int64_t k = 0; k < kPredictsPerSession; ++k) {
    for (int64_t s = 0; s < kSessions; ++s) {
      forward.push_back(s);
      reversed.push_back(kSessions - 1 - s);
      strided.push_back((s * 5 + k) % kSessions);
    }
  }
  const auto a = run("/tmp/cham_serve_perm_a", forward);
  const auto b = run("/tmp/cham_serve_perm_b", reversed);
  const auto c = run("/tmp/cham_serve_perm_c", strided);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<0>(a), std::get<0>(c));
  // Identical plans, not just identical answers: window structure matches.
  EXPECT_GT(std::get<1>(a), 0);
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(c));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(c));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(c));
}

// Tentpole: eviction racing a planned batch. A plan spanning more sessions
// than max_resident forces evict/restore round-trips BETWEEN its own
// groups (lazy per-group acquire); every result must still match the
// isolated learner bit for bit.
TEST_F(ServeSuite, EvictionRacesPlannedBatch) {
  constexpr int64_t kSessions = 6;
  serve::ServeConfig sc;
  sc.num_shards = 2;
  sc.max_resident = 2;  // every plan group past the 2nd evicts another
  sc.queue_capacity = 32;
  sc.max_batch = 8;
  sc.store_dir = "/tmp/cham_serve_batch_evict";
  sc.base_seed = 99;
  serve::SessionStore(sc.store_dir).clear();
  serve::SessionManager mgr(sc, factory());

  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < kSessions; ++s) {
    batches.push_back(session_batches(s, /*salt=*/37));
    submit_or_drain(mgr, static_cast<uint64_t>(s),
                    batches[static_cast<size_t>(s)][0]);
  }
  mgr.drain();
  const int64_t evictions_before = mgr.stats().evictions;

  const auto test_keys = data::all_test_keys(exp_->config().data);
  std::vector<std::future<std::vector<int64_t>>> futures;
  for (int64_t rep = 0; rep < 2; ++rep) {  // two per session: merged windows
    for (int64_t s = 0; s < kSessions; ++s) {
      futures.push_back(
          submit_predict_or_drain(mgr, static_cast<uint64_t>(s), test_keys));
    }
  }
  mgr.drain();

  const serve::ServeStats st = mgr.stats();
  EXPECT_GT(st.evictions, evictions_before)
      << "plan over " << kSessions << " sessions with max_resident "
      << sc.max_resident << " must evict mid-plan";
  EXPECT_GT(st.batched_predicts, 0);
  EXPECT_EQ(st.dispatch_errors, 0);
  for (int64_t s = 0; s < kSessions; ++s) {
    core::ChameleonLearner iso(exp_->env(), learner_config(),
                               mgr.session_seed(static_cast<uint64_t>(s)));
    iso.observe(batches[static_cast<size_t>(s)][0]);
    const auto want = iso.predict(test_keys);
    EXPECT_EQ(futures[static_cast<size_t>(s)].get(), want)
        << "rep-0 predict differs for session " << s;
    EXPECT_EQ(futures[static_cast<size_t>(kSessions + s)].get(), want)
        << "rep-1 predict differs for session " << s;
  }
}

}  // namespace
}  // namespace cham
