// Multi-session serving runtime: sharded learner pool with
// checkpoint-backed session eviction (src/serve/).
//
// The load-bearing property is EVICTION FIDELITY: for a randomized schedule
// of many sessions with forced evictions, every session's final head
// weights, replay-store contents and prediction outputs must be
// bit-identical to the same session run in isolation. Everything else
// (backpressure, RNG independence, threaded dispatch) supports that
// contract.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/chameleon.h"
#include "metrics/experiment.h"
#include "serve/session_manager.h"
#include "serve/session_store.h"
#include "util/check.h"

namespace cham {
namespace {

class ServeSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    metrics::ExperimentConfig cfg = metrics::core50_experiment();
    cfg.data.num_classes = 6;
    cfg.data.num_domains = 2;
    cfg.data.train_instances = 5;
    cfg.pretrain_num_classes = 12;
    cfg.pretrain_epochs = 4;
    cfg.learner_lr = 0.02f;
    exp_ = new metrics::Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
  }

  static core::ChameleonConfig learner_config() {
    core::ChameleonConfig cc;
    cc.lt_capacity = 18;
    return cc;
  }

  static serve::LearnerFactory factory() {
    return [](uint64_t /*session_id*/, uint64_t seed) {
      return std::make_unique<core::ChameleonLearner>(exp_->env(),
                                                      learner_config(), seed);
    };
  }

  // One private stream per session (distinct orderings over the shared
  // pool, so the latent cache warms once).
  static std::vector<data::Batch> session_batches(int64_t session,
                                                  uint64_t salt = 0) {
    data::StreamConfig sc = exp_->config().stream;
    sc.seed = 1000 + static_cast<uint64_t>(session) * 7919 + salt;
    data::DomainIncrementalStream stream(exp_->config().data, sc);
    exp_->warm_latents(stream);
    return stream.batches();
  }

  // Submits with drain-on-reject: backpressure tells us to make room, the
  // deterministic scheduler makes room by dispatching.
  static void submit_or_drain(serve::SessionManager& mgr, uint64_t sid,
                              const data::Batch& batch) {
    for (;;) {
      const serve::Admission adm = mgr.submit_observe(sid, batch);
      if (adm.accepted) return;
      EXPECT_GT(adm.retry_after_ms, 0);
      mgr.drain();
    }
  }

  static void expect_bit_identical(core::ChameleonLearner& a,
                                   core::ChameleonLearner& b,
                                   const std::string& what) {
    SCOPED_TRACE(what);
    // Head weights, byte for byte.
    auto pa = a.head().params();
    auto pb = b.head().params();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
      EXPECT_EQ(std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                            static_cast<size_t>(pa[i]->value.numel()) *
                                sizeof(float)),
                0)
          << "head param " << i << " differs";
    }
    // Short-term store contents.
    ASSERT_EQ(a.short_term().size(), b.short_term().size());
    for (int64_t i = 0; i < a.short_term().size(); ++i) {
      const auto& sa = a.short_term().buffer().item(i);
      const auto& sb = b.short_term().buffer().item(i);
      EXPECT_EQ(sa.label, sb.label) << "ST slot " << i;
      ASSERT_EQ(sa.latent.numel(), sb.latent.numel());
      EXPECT_EQ(std::memcmp(sa.latent.data(), sb.latent.data(),
                            static_cast<size_t>(sa.latent.numel()) *
                                sizeof(float)),
                0)
          << "ST latent " << i << " differs";
    }
    // Long-term store contents (per class, slot order).
    const auto la = a.long_term().all_samples();
    const auto lb = b.long_term().all_samples();
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].label, lb[i].label) << "LT slot " << i;
      ASSERT_EQ(la[i].latent.numel(), lb[i].latent.numel());
      EXPECT_EQ(std::memcmp(la[i].latent.data(), lb[i].latent.data(),
                            static_cast<size_t>(la[i].latent.numel()) *
                                sizeof(float)),
                0)
          << "LT latent " << i << " differs";
    }
    // Preference statistics, including mid-window counters.
    EXPECT_EQ(a.preferences().samples_seen(), b.preferences().samples_seen());
    EXPECT_EQ(a.preferences().window_seen(), b.preferences().window_seen());
    EXPECT_EQ(a.preferences().recalibrations(),
              b.preferences().recalibrations());
    EXPECT_EQ(a.preferences().delta_k(), b.preferences().delta_k());
    EXPECT_EQ(a.preferences().preferred_classes(),
              b.preferences().preferred_classes());
    EXPECT_EQ(a.steps_observed(), b.steps_observed());
    // Traffic ledger.
    EXPECT_EQ(a.stats().onchip_bytes, b.stats().onchip_bytes);
    EXPECT_EQ(a.stats().offchip_bytes, b.stats().offchip_bytes);
  }

  static metrics::Experiment* exp_;
};

metrics::Experiment* ServeSuite::exp_ = nullptr;

// ---------------------------------------------------------------------------
// Acceptance gate: randomized schedule of >= 20 sessions, a resident pool
// far smaller than the session count (forced evictions), every session
// bit-identical to isolation at the end.
TEST_F(ServeSuite, EvictionFidelityAcrossRandomizedSchedule) {
  constexpr int64_t kSessions = 22;
  serve::ServeConfig sc;
  sc.num_shards = 3;
  sc.max_resident = 4;  // << kSessions: every session cycles through disk
  sc.queue_capacity = 8;
  sc.store_dir = "/tmp/cham_serve_fidelity";
  sc.base_seed = 7;
  sc.mode = serve::ServeMode::kDeterministic;
  serve::SessionStore(sc.store_dir).clear();

  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < kSessions; ++s) {
    batches.push_back(session_batches(s));
  }

  // Zipf-skewed randomized interleaving, plus one guaranteed event per
  // session so every session participates.
  data::MultiUserConfig mc;
  mc.num_sessions = kSessions;
  mc.events = 140;
  mc.zipf_s = 0.9;
  mc.seed = 11;
  auto schedule = data::make_zipf_schedule(mc);
  std::vector<int64_t> next_index(kSessions, 0);
  std::vector<std::vector<data::Batch>> submitted(kSessions);
  {
    serve::SessionManager mgr(sc, factory());
    auto submit_next = [&](int64_t session) {
      const auto& pool = batches[static_cast<size_t>(session)];
      const auto& batch = pool[static_cast<size_t>(
          next_index[static_cast<size_t>(session)] %
          static_cast<int64_t>(pool.size()))];
      ++next_index[static_cast<size_t>(session)];
      submitted[static_cast<size_t>(session)].push_back(batch);
      submit_or_drain(mgr, static_cast<uint64_t>(session), batch);
    };
    for (const auto& ev : schedule) submit_next(ev.session);
    for (int64_t s = 0; s < kSessions; ++s) submit_next(s);
    mgr.flush();

    const serve::ServeStats st = mgr.stats();
    EXPECT_GT(st.evictions, kSessions);  // pool of 4 must thrash
    EXPECT_GT(st.restores, 0);
    EXPECT_EQ(st.observes, st.admissions);
    EXPECT_LE(st.resident_high_water, sc.max_resident);

    // Every session: restore from the store and compare against the same
    // stream run in isolation with the session's derived seed.
    serve::SessionStore reader(sc.store_dir);
    const auto test_keys = data::all_test_keys(exp_->config().data);
    for (int64_t s = 0; s < kSessions; ++s) {
      core::ChameleonLearner restored(exp_->env(), learner_config(),
                                      /*seed=*/0xDEAD);
      ASSERT_TRUE(reader.load(static_cast<uint64_t>(s), restored))
          << "session " << s << " missing from store";
      core::ChameleonLearner isolated(
          exp_->env(), learner_config(),
          mgr.session_seed(static_cast<uint64_t>(s)));
      for (const auto& b : submitted[static_cast<size_t>(s)]) {
        isolated.observe(b);
      }
      expect_bit_identical(restored, isolated,
                           "session " + std::to_string(s));
      EXPECT_EQ(restored.predict(test_keys), isolated.predict(test_keys))
          << "prediction outputs differ for session " << s;
    }
  }
}

// Per-session results must not depend on how sessions interleave: the same
// per-session work submitted in two very different global orders produces
// byte-identical per-session state.
TEST_F(ServeSuite, AdmissionOrderDoesNotChangePerSessionResults) {
  constexpr int64_t kSessions = 6;
  constexpr int64_t kBatchesPerSession = 4;

  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < kSessions; ++s) {
    batches.push_back(session_batches(s, /*salt=*/77));
  }

  auto run_order = [&](const std::string& dir, bool reversed) {
    serve::ServeConfig sc;
    sc.num_shards = 2;
    sc.max_resident = 2;
    sc.queue_capacity = 4;
    sc.store_dir = dir;
    sc.base_seed = 21;
    serve::SessionStore(dir).clear();
    serve::SessionManager mgr(sc, factory());
    for (int64_t b = 0; b < kBatchesPerSession; ++b) {
      for (int64_t i = 0; i < kSessions; ++i) {
        const int64_t s = reversed ? kSessions - 1 - i : i;
        submit_or_drain(mgr, static_cast<uint64_t>(s),
                        batches[static_cast<size_t>(s)][static_cast<size_t>(
                            b % static_cast<int64_t>(
                                    batches[static_cast<size_t>(s)].size()))]);
      }
      if (b % 2 == 1) mgr.drain();
    }
    mgr.flush();
  };

  run_order("/tmp/cham_serve_order_a", false);
  run_order("/tmp/cham_serve_order_b", true);

  serve::SessionStore a("/tmp/cham_serve_order_a");
  serve::SessionStore b("/tmp/cham_serve_order_b");
  for (int64_t s = 0; s < kSessions; ++s) {
    core::ChameleonLearner la(exp_->env(), learner_config(), 0x1);
    core::ChameleonLearner lb(exp_->env(), learner_config(), 0x2);
    ASSERT_TRUE(a.load(static_cast<uint64_t>(s), la));
    ASSERT_TRUE(b.load(static_cast<uint64_t>(s), lb));
    expect_bit_identical(la, lb, "session " + std::to_string(s));
  }
}

// Satellite: per-session RNG streams are derived by hashing, not by
// admission order — distinct ids get distinct seeds, and the same id always
// gets the same seed.
TEST_F(ServeSuite, SessionSeedsAreStableAndDistinct) {
  serve::ServeConfig sc;
  sc.num_shards = 1;
  sc.max_resident = 1;
  sc.store_dir = "/tmp/cham_serve_seeds";
  sc.base_seed = 123;
  serve::SessionManager mgr(sc, factory());
  std::vector<uint64_t> seeds;
  for (uint64_t s = 0; s < 256; ++s) seeds.push_back(mgr.session_seed(s));
  for (size_t i = 0; i < seeds.size(); ++i) {
    for (size_t j = i + 1; j < seeds.size(); ++j) {
      ASSERT_NE(seeds[i], seeds[j]) << "seed collision " << i << "," << j;
    }
  }
  EXPECT_EQ(mgr.session_seed(42), mgr.session_seed(42));
  // Different base seeds decorrelate the whole pool.
  EXPECT_NE(split_seed(1, 42), split_seed(2, 42));
}

// Backpressure: a full shard queue rejects with a retry hint instead of
// growing; draining makes room again.
TEST_F(ServeSuite, BoundedQueueRejectsWithRetryHint) {
  serve::ServeConfig sc;
  sc.num_shards = 1;
  sc.max_resident = 1;
  sc.queue_capacity = 2;
  sc.retry_hint_ms = 9;
  sc.store_dir = "/tmp/cham_serve_backpressure";
  serve::SessionStore(sc.store_dir).clear();
  serve::SessionManager mgr(sc, factory());

  const auto batches = session_batches(0);
  EXPECT_TRUE(mgr.submit_observe(5, batches[0]).accepted);
  EXPECT_TRUE(mgr.submit_observe(5, batches[1]).accepted);
  const serve::Admission rejected = mgr.submit_observe(5, batches[2]);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.retry_after_ms, 9);
  EXPECT_EQ(rejected.queue_depth, 2);

  mgr.drain();
  EXPECT_TRUE(mgr.submit_observe(5, batches[2]).accepted);
  mgr.drain();

  const serve::ServeStats st = mgr.stats();
  EXPECT_EQ(st.rejections, 1);
  EXPECT_EQ(st.admissions, 3);
  EXPECT_EQ(st.observes, 3);
  EXPECT_EQ(st.queue_depth_high_water, 2);
}

// Predict is FIFO-ordered behind the session's pending observes
// (read-your-writes) and matches an isolated learner's outputs.
TEST_F(ServeSuite, PredictSeesPendingObserves) {
  serve::ServeConfig sc;
  sc.num_shards = 2;
  sc.max_resident = 2;
  sc.queue_capacity = 16;
  sc.store_dir = "/tmp/cham_serve_predict";
  sc.base_seed = 5;
  serve::SessionStore(sc.store_dir).clear();
  serve::SessionManager mgr(sc, factory());

  const auto batches = session_batches(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mgr.submit_observe(9, batches[static_cast<size_t>(i)])
                    .accepted);
  }
  const auto test_keys = data::all_test_keys(exp_->config().data);
  const auto served = mgr.predict(9, test_keys);  // no explicit drain
  ASSERT_TRUE(served.has_value());

  core::ChameleonLearner isolated(exp_->env(), learner_config(),
                                  mgr.session_seed(9));
  for (int i = 0; i < 3; ++i) {
    isolated.observe(batches[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(*served, isolated.predict(test_keys));

  const serve::ServeStats st = mgr.stats();
  EXPECT_EQ(st.observes, 3);
  EXPECT_EQ(st.predicts, 1);
}

// Threaded mode: per-session results stay bit-identical to isolation even
// with real cross-shard concurrency.
TEST_F(ServeSuite, ThreadedModeMatchesIsolation) {
  constexpr int64_t kSessions = 8;
  constexpr int64_t kBatchesPerSession = 3;
  serve::ServeConfig sc;
  sc.num_shards = 4;
  sc.max_resident = 5;
  sc.queue_capacity = 8;
  sc.store_dir = "/tmp/cham_serve_threaded";
  sc.base_seed = 31;
  sc.mode = serve::ServeMode::kThreaded;
  serve::SessionStore(sc.store_dir).clear();

  std::vector<std::vector<data::Batch>> batches;
  for (int64_t s = 0; s < kSessions; ++s) {
    batches.push_back(session_batches(s, /*salt=*/31));
  }
  {
    serve::SessionManager mgr(sc, factory());
    for (int64_t b = 0; b < kBatchesPerSession; ++b) {
      for (int64_t s = 0; s < kSessions; ++s) {
        for (;;) {
          if (mgr.submit_observe(static_cast<uint64_t>(s),
                                 batches[static_cast<size_t>(s)]
                                        [static_cast<size_t>(b)])
                  .accepted) {
            break;
          }
          // Workers drain continuously; brief yield and retry.
          std::this_thread::yield();
        }
      }
    }
    mgr.flush();

    serve::SessionStore reader(sc.store_dir);
    for (int64_t s = 0; s < kSessions; ++s) {
      core::ChameleonLearner restored(exp_->env(), learner_config(), 0xF00);
      ASSERT_TRUE(reader.load(static_cast<uint64_t>(s), restored));
      core::ChameleonLearner isolated(
          exp_->env(), learner_config(),
          mgr.session_seed(static_cast<uint64_t>(s)));
      for (int64_t b = 0; b < kBatchesPerSession; ++b) {
        isolated.observe(batches[static_cast<size_t>(s)]
                                [static_cast<size_t>(b)]);
      }
      expect_bit_identical(restored, isolated,
                           "threaded session " + std::to_string(s));
    }
  }
}

// SessionStore basics: blobs round-trip, enumerate, and erase.
TEST_F(ServeSuite, SessionStoreLifecycle) {
  const std::string dir = "/tmp/cham_serve_store";
  serve::SessionStore store(dir);
  store.clear();
  EXPECT_EQ(store.size(), 0);
  EXPECT_FALSE(store.contains(4));

  core::ChameleonLearner learner(exp_->env(), learner_config(), 17);
  const auto batches = session_batches(1);
  learner.observe(batches[0]);
  ASSERT_TRUE(store.save(4, learner));
  ASSERT_TRUE(store.save(9000000007ull, learner));
  EXPECT_TRUE(store.contains(4));
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.session_ids(),
            (std::vector<uint64_t>{4, 9000000007ull}));
  EXPECT_GT(store.bytes_written(), 0);

  core::ChameleonLearner other(exp_->env(), learner_config(), 99);
  ASSERT_TRUE(store.load(4, other));
  expect_bit_identical(learner, other, "store round trip");
  EXPECT_GT(store.bytes_read(), 0);

  EXPECT_TRUE(store.erase(4));
  EXPECT_FALSE(store.contains(4));
  EXPECT_FALSE(store.erase(4));
  store.clear();
  EXPECT_EQ(store.size(), 0);
}

// Satellite: bounded LatentCache is single-owner — access from a second
// thread trips the contract instead of silently racing the LRU list.
TEST_F(ServeSuite, BoundedLatentCacheRejectsSecondThread) {
  data::LatentCache bounded(exp_->config().data, exp_->backbone(),
                            /*max_entries=*/4);
  const auto batches = session_batches(0);
  (void)bounded.latent(batches[0].keys[0]);  // this thread becomes the owner

  bool threw = false;
  std::thread second([&] {
    try {
      (void)bounded.latent(batches[0].keys[1]);
    } catch (const util::CheckError&) {
      threw = true;
    }
  });
  second.join();
  EXPECT_TRUE(threw);

  // Unbounded caches are shared freely (the serving default).
  data::LatentCache unbounded(exp_->config().data, exp_->backbone());
  (void)unbounded.latent(batches[0].keys[0]);
  bool second_ok = true;
  std::thread third([&] {
    try {
      (void)unbounded.latent(batches[0].keys[1]);
    } catch (...) {
      second_ok = false;
    }
  });
  third.join();
  EXPECT_TRUE(second_ok);
}

// The Zipf schedule helper: deterministic in the seed, skewed toward low
// ranks, and per-session batch indices count up densely.
TEST_F(ServeSuite, ZipfScheduleShape) {
  data::MultiUserConfig mc;
  mc.num_sessions = 20;
  mc.events = 2000;
  mc.zipf_s = 1.2;
  mc.seed = 3;
  const auto a = data::make_zipf_schedule(mc);
  const auto b = data::make_zipf_schedule(mc);
  ASSERT_EQ(a.size(), 2000u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].session, b[i].session);
    EXPECT_EQ(a[i].batch_index, b[i].batch_index);
  }
  std::vector<int64_t> counts(20, 0), next(20, 0);
  for (const auto& ev : a) {
    ASSERT_GE(ev.session, 0);
    ASSERT_LT(ev.session, 20);
    EXPECT_EQ(ev.batch_index, next[static_cast<size_t>(ev.session)]++);
    ++counts[static_cast<size_t>(ev.session)];
  }
  EXPECT_GT(counts[0], counts[19] * 2) << "rank 0 should dominate the tail";
}

}  // namespace
}  // namespace cham
