// GEMM and im2col correctness: packed kernels vs naive reference over a
// grid of shapes (property-style sweep), exact bit-identity against the
// serial scalar kernels in cham::ref, and the 1x1 pointwise-conv fast path
// against the im2col lowering it replaced.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "nn/layers.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/thread_pool.h"

namespace cham {
namespace {

void naive_gemm(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
                const float* b, float beta, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t p = 0; p < k; ++p) acc += double(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = beta * c[i * n + j] + alpha * static_cast<float>(acc);
    }
  }
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(uint64_t(m * 1000003 + n * 131 + k));
  Tensor a({m, k}), b({k, n}), c({m, n}), ref({m, n});
  ops::fill_normal(a, rng, 0.0f, 1.0f);
  ops::fill_normal(b, rng, 0.0f, 1.0f);
  ops::fill_normal(c, rng, 0.0f, 1.0f);
  ref = c;

  gemm(m, n, k, 1.5f, a.data(), b.data(), 0.5f, c.data());
  naive_gemm(m, n, k, 1.5f, a.data(), b.data(), 0.5f, ref.data());
  EXPECT_LT(ops::max_abs_diff(c, ref), 1e-3);
}

TEST_P(GemmShapes, AtBMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(uint64_t(m * 7 + n * 11 + k * 13));
  Tensor at({k, m}), b({k, n}), c({m, n}), ref({m, n});
  ops::fill_normal(at, rng, 0.0f, 1.0f);
  ops::fill_normal(b, rng, 0.0f, 1.0f);

  gemm_at_b(m, n, k, 1.0f, at.data(), b.data(), 0.0f, c.data());
  // Reference: transpose A then naive.
  Tensor a({m, k});
  for (int64_t i = 0; i < k; ++i)
    for (int64_t j = 0; j < m; ++j) a.at(j, i) = at.at(i, j);
  naive_gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, ref.data());
  EXPECT_LT(ops::max_abs_diff(c, ref), 1e-3);
}

TEST_P(GemmShapes, ABtMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(uint64_t(m * 17 + n * 19 + k * 23));
  Tensor a({m, k}), bt({n, k}), c({m, n}), ref({m, n});
  ops::fill_normal(a, rng, 0.0f, 1.0f);
  ops::fill_normal(bt, rng, 0.0f, 1.0f);

  gemm_a_bt(m, n, k, 1.0f, a.data(), bt.data(), 0.0f, c.data());
  Tensor b({k, n});
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < k; ++j) b.at(j, i) = bt.at(i, j);
  naive_gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, ref.data());
  EXPECT_LT(ops::max_abs_diff(c, ref), 1e-3);
}

// Gather kernels vs their dense counterparts: BIT identity, not tolerance.
// The gather pack reads the same values in the same order through pointer
// indirection, so every C element must come out with identical bits. The
// gathered rows live in per-row heap blocks (scattered addresses) to make
// sure nothing silently assumes contiguity between logical rows.
TEST_P(GemmShapes, GatherABtBitIdenticalToDense) {
  const auto [m, n, k] = GetParam();
  Rng rng(uint64_t(m * 29 + n * 31 + k * 37));
  Tensor a({m, k}), bt({n, k}), dense({m, n}), gathered({m, n});
  ops::fill_normal(a, rng, 0.0f, 1.0f);
  ops::fill_normal(bt, rng, 0.0f, 1.0f);
  ops::fill_normal(dense, rng, 0.0f, 1.0f);
  gathered = dense;

  std::vector<std::vector<float>> scattered(static_cast<size_t>(m));
  std::vector<const float*> rows(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    scattered[size_t(i)].assign(a.data() + i * k, a.data() + (i + 1) * k);
    rows[size_t(i)] = scattered[size_t(i)].data();
  }

  gemm_a_bt(m, n, k, 1.25f, a.data(), bt.data(), 0.5f, dense.data());
  gemm_gather_a_bt(m, n, k, 1.25f, rows.data(), bt.data(), 0.5f,
                   gathered.data());
  EXPECT_EQ(std::memcmp(dense.data(), gathered.data(),
                        size_t(m * n) * sizeof(float)),
            0);
}

TEST_P(GemmShapes, GatherAtBGatherBBitIdenticalToDense) {
  const auto [m, n, k] = GetParam();
  Rng rng(uint64_t(m * 41 + n * 43 + k * 47));
  Tensor at({k, m}), b({k, n}), dense({m, n}), gathered({m, n});
  ops::fill_normal(at, rng, 0.0f, 1.0f);
  ops::fill_normal(b, rng, 0.0f, 1.0f);
  ops::fill_normal(dense, rng, 0.0f, 1.0f);
  gathered = dense;

  std::vector<std::vector<float>> scattered(static_cast<size_t>(k));
  std::vector<const float*> rows(static_cast<size_t>(k));
  for (int64_t p = 0; p < k; ++p) {
    scattered[size_t(p)].assign(b.data() + p * n, b.data() + (p + 1) * n);
    rows[size_t(p)] = scattered[size_t(p)].data();
  }

  gemm_at_b(m, n, k, 1.0f, at.data(), b.data(), 1.0f, dense.data());
  gemm_at_b_gather_b(m, n, k, 1.0f, at.data(), rows.data(), 1.0f,
                     gathered.data());
  EXPECT_EQ(std::memcmp(dense.data(), gathered.data(),
                        size_t(m * n) * sizeof(float)),
            0);
}

TEST_P(GemmShapes, GatherColsBitIdenticalToDense) {
  const auto [m, n, k] = GetParam();
  Rng rng(uint64_t(m * 53 + n * 59 + k * 61));
  // Column j of B lives strided inside its own sample block, the pointwise
  // conv layout: b_cols[j][p * stride].
  const int64_t stride = 3;
  Tensor a({m, k}), dense_b({k, n}), dense({m, n}), gathered({m, n});
  ops::fill_normal(a, rng, 0.0f, 1.0f);
  ops::fill_normal(dense, rng, 0.0f, 1.0f);
  gathered = dense;

  std::vector<std::vector<float>> blocks(static_cast<size_t>(n));
  std::vector<const float*> cols(static_cast<size_t>(n));
  Rng fill(uint64_t(m + n + k));
  for (int64_t j = 0; j < n; ++j) {
    auto& blk = blocks[size_t(j)];
    blk.resize(size_t(std::max<int64_t>(1, k * stride)));
    for (auto& v : blk) v = fill.normal_f(0.0f, 1.0f);
    cols[size_t(j)] = blk.data();
    for (int64_t p = 0; p < k; ++p) dense_b.at(p, j) = blk[size_t(p * stride)];
  }

  gemm(m, n, k, 0.75f, a.data(), dense_b.data(), 1.0f, dense.data());
  gemm_gather_cols(m, n, k, 0.75f, a.data(), cols.data(), stride, 1.0f,
                   gathered.data());
  EXPECT_EQ(std::memcmp(dense.data(), gathered.data(),
                        size_t(m * n) * sizeof(float)),
            0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(1, 64, 32),
                      std::make_tuple(64, 1, 32), std::make_tuple(65, 129, 130),
                      std::make_tuple(10, 50, 512),
                      std::make_tuple(128, 128, 9)));

TEST(Gemm, AccumulatesWithBetaOne) {
  Tensor a = Tensor::from({1, 2, 3, 4}).reshaped(Shape{{2, 2}});
  Tensor b = Tensor::from({1, 0, 0, 1}).reshaped(Shape{{2, 2}});
  Tensor c = Tensor::full(Shape{{2, 2}}, 10.0f);
  gemm(2, 2, 2, 1.0f, a.data(), b.data(), 1.0f, c.data());
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 14.0f);
}

TEST(Gemm, MatmulWrapper) {
  Tensor a = Tensor::from({1, 2, 3, 4, 5, 6}).reshaped(Shape{{2, 3}});
  Tensor b = Tensor::from({7, 8, 9, 10, 11, 12}).reshaped(Shape{{3, 2}});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

// im2col: every column entry must equal the padded-image tap it names.
TEST(Im2col, TapsMatchDirectIndexing) {
  ConvGeometry g{2, 5, 5, 3, 2, 1};
  Tensor img({2, 5, 5});
  Rng rng(31);
  ops::fill_normal(img, rng, 0.0f, 1.0f);
  Tensor col({g.col_rows(), g.col_cols()});
  im2col(img.data(), g, col.data());

  const int64_t oh = g.out_h(), ow = g.out_w();
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        for (int64_t y = 0; y < oh; ++y) {
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t iy = y * g.stride + kh - g.pad;
            const int64_t ix = x * g.stride + kw - g.pad;
            const float expected =
                (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
                    ? img[(c * g.in_h + iy) * g.in_w + ix]
                    : 0.0f;
            EXPECT_EQ(col[row * oh * ow + y * ow + x], expected);
          }
        }
      }
    }
  }
}

// col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST(Im2col, Col2imIsAdjoint) {
  ConvGeometry g{3, 6, 6, 3, 1, 1};
  Rng rng(32);
  Tensor x({g.in_c, g.in_h, g.in_w});
  Tensor y({g.col_rows(), g.col_cols()});
  ops::fill_normal(x, rng, 0.0f, 1.0f);
  ops::fill_normal(y, rng, 0.0f, 1.0f);

  Tensor col({g.col_rows(), g.col_cols()});
  im2col(x.data(), g, col.data());
  Tensor back({g.in_c, g.in_h, g.in_w});
  col2im(y.data(), g, back.data());

  EXPECT_NEAR(ops::dot(col.span(), y.span()),
              ops::dot(x.span(), back.span()), 1e-2);
}

// ------------------------------------------ parallel backend determinism

// static_chunk must tile [0, n) exactly: contiguous, disjoint, complete.
TEST(ThreadPool, StaticChunkIsAnExactPartition) {
  for (int64_t n : {1, 2, 7, 64, 1000}) {
    for (int chunks : {1, 2, 3, 5, 8, 16}) {
      int64_t prev = 0;
      for (int c = 0; c < chunks; ++c) {
        const auto [b, e] = detail::static_chunk(n, chunks, c);
        EXPECT_EQ(b, prev);
        EXPECT_LE(b, e);
        prev = e;
      }
      EXPECT_EQ(prev, n);
    }
  }
}

// The determinism contract: every kernel result is bit-identical for every
// thread count (per-element reduction order never depends on the partition).
TEST(ThreadPool, KernelsBitIdenticalAcrossThreadCounts) {
  const int saved = num_threads();
  const int64_t m = 65, n = 129, k = 130;
  Rng rng(77);
  Tensor a({m, k}), b({k, n}), at({k, m}), bt({n, k}), c0({m, n});
  ops::fill_normal(a, rng, 0.0f, 1.0f);
  ops::fill_normal(b, rng, 0.0f, 1.0f);
  ops::fill_normal(at, rng, 0.0f, 1.0f);
  ops::fill_normal(bt, rng, 0.0f, 1.0f);
  ops::fill_normal(c0, rng, 0.0f, 1.0f);

  // alpha != 1 and beta != 0 exercise the folded-alpha pack and the beta
  // pre-pass inside each row chunk.
  auto run_all = [&](Tensor& cg, Tensor& ct, Tensor& cb) {
    cg = c0;
    ct = c0;
    cb = c0;
    gemm(m, n, k, 1.25f, a.data(), b.data(), 0.5f, cg.data());
    gemm_at_b(m, n, k, 1.25f, at.data(), b.data(), 0.5f, ct.data());
    gemm_a_bt(m, n, k, 1.25f, a.data(), bt.data(), 0.5f, cb.data());
  };

  Tensor g1, t1, b1;
  set_num_threads(1);
  run_all(g1, t1, b1);
  for (int threads : {2, 3, 4, 8}) {
    set_num_threads(threads);
    Tensor g, t, bb;
    run_all(g, t, bb);
    EXPECT_EQ(ops::max_abs_diff(g, g1), 0.0) << "gemm, t=" << threads;
    EXPECT_EQ(ops::max_abs_diff(t, t1), 0.0) << "gemm_at_b, t=" << threads;
    EXPECT_EQ(ops::max_abs_diff(bb, b1), 0.0) << "gemm_a_bt, t=" << threads;
  }
  set_num_threads(saved);
}

// ------------------------------------------- packed kernels vs cham::ref

// Exact bit-identity of the packed kernels against the serial scalar
// reference kernels over a grid of edge shapes: empty extents, single rows
// and columns, sizes straddling the 4x16 wide tile, the 8x4 narrow tile
// (n <= 8 selects it) and non-multiples of both — at more than one thread
// count, since the partition must not affect any reduction order.
TEST(GemmRef, BitIdenticalOnEdgeShapeGrid) {
  const int saved = num_threads();
  const int64_t sizes[] = {0, 1, 3, 4, 5, 8, 9, 16, 17, 63, 64, 65};
  const struct {
    float alpha, beta;
  } coeff[] = {{1.0f, 0.0f}, {1.25f, 0.5f}};  // copy pack and folded pack
  for (int threads : {1, 3}) {
    set_num_threads(threads);
    for (int64_t m : sizes) {
      for (int64_t n : sizes) {
        for (int64_t k : sizes) {
          Rng rng(uint64_t(m * 73856093 + n * 19349663 + k * 83492791 + 1));
          Tensor a({m, k}), b({k, n}), at({k, m}), bt({n, k}), c0({m, n});
          ops::fill_normal(a, rng, 0.0f, 1.0f);
          ops::fill_normal(b, rng, 0.0f, 1.0f);
          ops::fill_normal(at, rng, 0.0f, 1.0f);
          ops::fill_normal(bt, rng, 0.0f, 1.0f);
          ops::fill_normal(c0, rng, 0.0f, 1.0f);
          for (const auto& co : coeff) {
            Tensor c = c0, r = c0;
            gemm(m, n, k, co.alpha, a.data(), b.data(), co.beta, c.data());
            ref::gemm(m, n, k, co.alpha, a.data(), b.data(), co.beta,
                      r.data());
            ASSERT_EQ(ops::max_abs_diff(c, r), 0.0)
                << "gemm " << m << "x" << n << "x" << k << " t=" << threads;
            c = c0;
            r = c0;
            gemm_at_b(m, n, k, co.alpha, at.data(), b.data(), co.beta,
                      c.data());
            ref::gemm_at_b(m, n, k, co.alpha, at.data(), b.data(), co.beta,
                           r.data());
            ASSERT_EQ(ops::max_abs_diff(c, r), 0.0)
                << "gemm_at_b " << m << "x" << n << "x" << k
                << " t=" << threads;
            c = c0;
            r = c0;
            gemm_a_bt(m, n, k, co.alpha, a.data(), bt.data(), co.beta,
                      c.data());
            ref::gemm_a_bt(m, n, k, co.alpha, a.data(), bt.data(), co.beta,
                           r.data());
            ASSERT_EQ(ops::max_abs_diff(c, r), 0.0)
                << "gemm_a_bt " << m << "x" << n << "x" << k
                << " t=" << threads;
          }
        }
      }
    }
  }
  set_num_threads(saved);
}

// K straddling the 256-element strip: the packed core chains accumulation
// across strips through the C slot, which must reproduce the reference's
// single unbroken fma chain exactly.
TEST(GemmRef, BitIdenticalAcrossKStrips) {
  for (int64_t k : {255, 256, 257, 511, 512, 513}) {
    for (int64_t n : {4, 17}) {  // narrow and wide tile
      const int64_t m = 5;
      Rng rng(uint64_t(k * 131 + n));
      Tensor a({m, k}), b({k, n}), c({m, n}), r({m, n});
      ops::fill_normal(a, rng, 0.0f, 1.0f);
      ops::fill_normal(b, rng, 0.0f, 1.0f);
      ops::fill_normal(c, rng, 0.0f, 1.0f);
      r = c;
      gemm(m, n, k, 1.25f, a.data(), b.data(), 0.5f, c.data());
      ref::gemm(m, n, k, 1.25f, a.data(), b.data(), 0.5f, r.data());
      ASSERT_EQ(ops::max_abs_diff(c, r), 0.0) << "k=" << k << " n=" << n;
    }
  }
}

// --------------------------------------- 1x1 pointwise conv fast path

// For a 1x1 stride-1 pad-0 convolution the im2col column matrix is exactly
// the input plane, so the direct NHW-flattened GEMM path must be
// bit-identical to the lowering it replaced — for batch 1 (the direct-call
// branch) and batched inputs alike.
TEST(PointwiseConv, ForwardMatchesIm2colBitExact) {
  for (int64_t batch : {1, 3}) {
    Rng rng(uint64_t(91 + batch));
    nn::Conv2d conv(6, 10, 4, 4, /*kernel=*/1, /*stride=*/1, /*pad=*/0,
                    /*bias=*/true, rng);
    const Tensor& w = conv.params()[0]->value;
    const Tensor& bias = conv.params()[1]->value;
    Tensor x({batch, 6, 4, 4});
    ops::fill_normal(x, rng, 0.0f, 1.0f);
    const Tensor out = conv.forward(x, /*train=*/false);

    ConvGeometry g{6, 4, 4, 1, 1, 0};
    const int64_t opix = g.col_cols();
    Tensor ref({batch, 10, 4, 4});
    Tensor col({g.col_rows(), g.col_cols()});
    for (int64_t n = 0; n < batch; ++n) {
      im2col(x.data() + n * 6 * opix, g, col.data());
      float* out_n = ref.data() + n * 10 * opix;
      gemm(10, opix, g.col_rows(), 1.0f, w.data(), col.data(), 0.0f, out_n);
      for (int64_t c = 0; c < 10; ++c) {
        for (int64_t p = 0; p < opix; ++p) out_n[c * opix + p] += bias[c];
      }
    }
    EXPECT_EQ(ops::max_abs_diff(out, ref), 0.0) << "batch=" << batch;
  }
}

TEST(PointwiseConv, BackwardMatchesIm2colBitExact) {
  const int64_t batch = 2, in_c = 6, out_c = 10;
  Rng rng(92);
  nn::Conv2d conv(in_c, out_c, 4, 4, /*kernel=*/1, /*stride=*/1, /*pad=*/0,
                  /*bias=*/false, rng);
  const Tensor& w = conv.params()[0]->value;
  Tensor x({batch, in_c, 4, 4}), go({batch, out_c, 4, 4});
  ops::fill_normal(x, rng, 0.0f, 1.0f);
  ops::fill_normal(go, rng, 0.0f, 1.0f);
  (void)conv.forward(x, /*train=*/true);
  const Tensor grad_in = conv.backward(go);

  // The im2col lowering's backward on the same operands: for a 1x1 kernel
  // the column matrix is the input plane and col2im is the identity, so
  //   dW += dOut_n @ X_n^T   and   dX_n = W^T @ dOut_n,
  // accumulated over samples in the same ascending order.
  const int64_t opix = 16;
  Tensor wg({out_c, in_c});
  Tensor gin_ref({batch, in_c, 4, 4});
  for (int64_t n = 0; n < batch; ++n) {
    const float* go_n = go.data() + n * out_c * opix;
    gemm_a_bt(out_c, in_c, opix, 1.0f, go_n, x.data() + n * in_c * opix,
              1.0f, wg.data());
    gemm_at_b(in_c, opix, out_c, 1.0f, w.data(), go_n, 0.0f,
              gin_ref.data() + n * in_c * opix);
  }
  EXPECT_EQ(ops::max_abs_diff(conv.params()[0]->grad, wg), 0.0);
  EXPECT_EQ(ops::max_abs_diff(grad_in, gin_ref), 0.0);
}

TEST(ConvGeometry, OutputDims) {
  ConvGeometry g{3, 32, 32, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 16);
  ConvGeometry same{3, 32, 32, 3, 1, 1};
  EXPECT_EQ(same.out_h(), 32);
  ConvGeometry pw{8, 7, 7, 1, 1, 0};
  EXPECT_EQ(pw.out_h(), 7);
  EXPECT_EQ(pw.col_rows(), 8);
}

}  // namespace
}  // namespace cham
