// Reduced-precision numerics: fp16 bit-exactness, int8 affine, BFP blocks,
// and the tensor codecs used by the replay buffers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "quant/quantize.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cham {
namespace {

using quant::Precision;

// ------------------------------------------------------------------ fp16

TEST(Fp16, ExactValuesRoundTrip) {
  // Values exactly representable in binary16 must survive unchanged.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(quant::fp16_round_trip(v), v) << v;
  }
}

TEST(Fp16, KnownBitPatterns) {
  EXPECT_EQ(quant::fp32_to_fp16_bits(1.0f), 0x3C00);
  EXPECT_EQ(quant::fp32_to_fp16_bits(-2.0f), 0xC000);
  EXPECT_EQ(quant::fp32_to_fp16_bits(0.0f), 0x0000);
  EXPECT_EQ(quant::fp32_to_fp16_bits(65504.0f), 0x7BFF);  // max half
  EXPECT_EQ(quant::fp16_bits_to_fp32(0x3C00), 1.0f);
  EXPECT_EQ(quant::fp16_bits_to_fp32(0x7C00),
            std::numeric_limits<float>::infinity());
}

TEST(Fp16, OverflowBecomesInfinity) {
  EXPECT_TRUE(std::isinf(quant::fp16_round_trip(1e6f)));
  EXPECT_TRUE(std::isinf(quant::fp16_round_trip(-1e6f)));
}

TEST(Fp16, DenormalsPreserved) {
  const float tiny = 1e-5f;  // denormal in half precision
  const float rt = quant::fp16_round_trip(tiny);
  EXPECT_GT(rt, 0.0f);
  EXPECT_NEAR(rt, tiny, 1e-6f);
}

TEST(Fp16, UnderflowToZero) {
  EXPECT_EQ(quant::fp16_round_trip(1e-9f), 0.0f);
}

TEST(Fp16, RelativeErrorBounded) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const float v = rng.normal_f(0.0f, 10.0f);
    const float rt = quant::fp16_round_trip(v);
    // binary16 has 11 significand bits: rel error <= 2^-11.
    EXPECT_LE(std::abs(rt - v), std::abs(v) * 4.9e-4f + 1e-7f) << v;
  }
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half value 1 + 2^-10;
  // ties round to even mantissa (1.0).
  const float mid = 1.0f + 0x1.0p-11f;
  EXPECT_EQ(quant::fp16_round_trip(mid), 1.0f);
}

// ------------------------------------------------------------------ int8

TEST(Int8, ZeroIsExact) {
  std::vector<float> v = {-3.0f, 0.0f, 5.0f};
  const auto p = quant::choose_int8_params(v);
  EXPECT_EQ(quant::dequantize_int8(quant::quantize_int8(0.0f, p), p), 0.0f);
}

TEST(Int8, RangeCovered) {
  std::vector<float> v = {-2.0f, 2.0f};
  const auto p = quant::choose_int8_params(v);
  for (float x : v) {
    const float rt = quant::dequantize_int8(quant::quantize_int8(x, p), p);
    EXPECT_NEAR(rt, x, p.scale);
  }
}

TEST(Int8, ErrorBoundedByHalfScale) {
  Rng rng(2);
  std::vector<float> v(256);
  for (auto& x : v) x = rng.uniform_f(-4.0f, 4.0f);
  const auto p = quant::choose_int8_params(v);
  for (float x : v) {
    const float rt = quant::dequantize_int8(quant::quantize_int8(x, p), p);
    EXPECT_LE(std::abs(rt - x), 0.51f * p.scale);
  }
}

TEST(Int8, ConstantBlockSafe) {
  std::vector<float> v = {0.0f, 0.0f};
  const auto p = quant::choose_int8_params(v);
  EXPECT_GT(p.scale, 0.0f);
}

// ------------------------------------------------------------------- BFP

TEST(Bfp, LargestMagnitudeDrivesExponent) {
  std::vector<float> v = {0.01f, -8.0f, 0.5f};
  const auto block = quant::bfp_encode(v, 8);
  std::vector<float> out(3);
  quant::bfp_decode(block, 8, out);
  // The large value must be accurate to ~1%.
  EXPECT_NEAR(out[1], -8.0f, 0.08f);
}

TEST(Bfp, AllZeroBlock) {
  std::vector<float> v(16, 0.0f);
  const auto block = quant::bfp_encode(v, 8);
  std::vector<float> out(16, 1.0f);
  quant::bfp_decode(block, 8, out);
  for (float x : out) EXPECT_EQ(x, 0.0f);
}

TEST(Bfp, SmallValuesLosePrecisionGracefully) {
  // Classic BFP behaviour: values far below the block max quantise to
  // multiples of the shared scale (possibly zero), never blow up.
  std::vector<float> v = {100.0f, 0.001f};
  const auto block = quant::bfp_encode(v, 8);
  std::vector<float> out(2);
  quant::bfp_decode(block, 8, out);
  EXPECT_NEAR(out[0], 100.0f, 1.0f);
  EXPECT_LT(std::abs(out[1]), 1.0f);
}

// --------------------------------------------------------------- codecs

Tensor random_latent(uint64_t seed) {
  Tensor t({1, 32, 2, 2});
  Rng rng(seed);
  // ReLU6 latents: non-negative, bounded.
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_f(0.0f, 6.0f);
  return t;
}

TEST(Codec, Fp32Lossless) {
  const Tensor t = random_latent(3);
  EXPECT_EQ(quant::round_trip_error(t, Precision::kFp32), 0.0);
}

class CodecPrecisions : public ::testing::TestWithParam<Precision> {};

TEST_P(CodecPrecisions, ShapePreservedAndErrorBounded) {
  const Tensor t = random_latent(4);
  const auto enc = quant::encode(t, GetParam());
  const Tensor back = quant::decode(enc);
  EXPECT_EQ(back.shape(), t.shape());
  // ReLU6 range: all formats must stay within a coarse absolute bound.
  EXPECT_LT(quant::round_trip_error(t, GetParam()), 0.06);
}

TEST_P(CodecPrecisions, StorageBytesMatchEncodedSize) {
  const Tensor t = random_latent(5);
  const auto enc = quant::encode(t, GetParam());
  EXPECT_EQ(enc.size_bytes(),
            quant::storage_bytes(GetParam(), t.numel()));
}

INSTANTIATE_TEST_SUITE_P(All, CodecPrecisions,
                         ::testing::Values(Precision::kFp32, Precision::kFp16,
                                           Precision::kBfp8,
                                           Precision::kInt8));

TEST(Codec, CompressionRatios) {
  const int64_t n = 512;
  EXPECT_EQ(quant::storage_bytes(Precision::kFp32, n), 2048);
  EXPECT_EQ(quant::storage_bytes(Precision::kFp16, n), 1024);
  EXPECT_LT(quant::storage_bytes(Precision::kBfp8, n), 600);
  EXPECT_LT(quant::storage_bytes(Precision::kInt8, n), 600);
}

TEST(Codec, PrecisionNames) {
  EXPECT_STREQ(quant::precision_name(Precision::kFp16), "fp16");
  EXPECT_STREQ(quant::precision_name(Precision::kBfp8), "bfp8");
}

}  // namespace
}  // namespace cham
