// Parameterized property sweep over MobileNetV1 configurations: forward
// shapes, MAC bookkeeping, split invariants and parameter counts must hold
// for every (width multiplier, input size) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "nn/mobilenet.h"
#include "tensor/ops.h"

namespace cham {
namespace {

class MobileNetGrid
    : public ::testing::TestWithParam<std::tuple<float, int64_t>> {};

TEST_P(MobileNetGrid, ForwardShapeAndMacs) {
  const auto [width, hw] = GetParam();
  nn::MobileNetConfig cfg;
  cfg.width_mult = width;
  cfg.input_hw = hw;
  cfg.num_classes = 11;
  Rng rng(uint64_t(width * 100) + static_cast<uint64_t>(hw));
  auto m = nn::build_mobilenet_v1(cfg, rng);

  EXPECT_EQ(m.conv_layer_count(), 27);
  Tensor x({1, 3, hw, hw});
  Rng xrng(5);
  ops::fill_normal(x, xrng, 0.0f, 1.0f);
  const Tensor y = m.net->forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{{1, 11}}));
  EXPECT_GT(m.net->macs_per_sample(), 0);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_TRUE(std::isfinite(y[i]));
}

TEST_P(MobileNetGrid, SplitInvariants) {
  const auto [width, hw] = GetParam();
  nn::MobileNetConfig cfg;
  cfg.width_mult = width;
  cfg.input_hw = hw;
  cfg.num_classes = 7;
  Rng rng(uint64_t(width * 1000) + static_cast<uint64_t>(hw) + 1);
  auto m = nn::build_mobilenet_v1(cfg, rng);
  const int64_t total_macs = m.net->macs_per_sample();
  const int64_t total_params = m.net->param_count();

  auto split = nn::split_at_conv_layer(std::move(m), 21);
  EXPECT_EQ(split.f->macs_per_sample() + split.g->macs_per_sample(),
            total_macs);
  EXPECT_EQ(split.f->param_count() + split.g->param_count(), total_params);
  EXPECT_EQ(split.latent_dim, split.latent_shape.numel());
  // The latent must be a valid input to g.
  Tensor z(Shape{{1, split.latent_shape[0], split.latent_shape[1],
                  split.latent_shape[2]}});
  const Tensor logits = split.g->forward(z, false);
  EXPECT_EQ(logits.dim(1), 7);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MobileNetGrid,
    ::testing::Values(std::make_tuple(0.25f, 32), std::make_tuple(0.5f, 32),
                      std::make_tuple(1.0f, 32), std::make_tuple(0.5f, 64),
                      std::make_tuple(0.25f, 48)));

class SplitPoints : public ::testing::TestWithParam<int64_t> {};

TEST_P(SplitPoints, EverySplitPreservesFunction) {
  const int64_t layer = GetParam();
  nn::MobileNetConfig cfg;
  cfg.width_mult = 0.25f;
  cfg.num_classes = 5;
  Rng rng(42);
  auto full = nn::build_mobilenet_v1(cfg, rng);
  Tensor x({1, 3, 32, 32});
  Rng xrng(6);
  ops::fill_normal(x, xrng, 0.0f, 1.0f);
  const Tensor y_ref = full.net->forward(x, false);

  Rng rng2(42);
  auto rebuilt = nn::build_mobilenet_v1(cfg, rng2);
  auto split = nn::split_at_conv_layer(std::move(rebuilt), layer);
  const Tensor y =
      split.g->forward(split.f->forward(x, false), false);
  EXPECT_LT(ops::max_abs_diff(y, y_ref), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Layers, SplitPoints,
                         ::testing::Values(1, 5, 13, 17, 21, 25, 26));

}  // namespace
}  // namespace cham
