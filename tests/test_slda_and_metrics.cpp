// SLDA statistics, the evaluator, RunningStat and the table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/evaluator.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace cham {
namespace {

TEST(RunningStat, MeanAndStd) {
  metrics::RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample std (n-1)
}

TEST(RunningStat, SingleSampleHasZeroStd) {
  metrics::RunningStat s;
  s.add(3.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(RunningStat, AggregateHelper) {
  auto s = metrics::aggregate({1.0, 2.0, 3.0});
  EXPECT_NEAR(s.mean(), 2.0, 1e-12);
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(metrics::TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(metrics::TablePrinter::mean_std(79.48, 0.99),
            "79.48 +/- 0.99");
}

TEST(TablePrinter, RowsAlign) {
  std::ostringstream os;
  metrics::TablePrinter t({"A", "B"}, {6, 4});
  t.print_header(os);
  t.print_row({"x", "y"}, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("A      | B    |"), std::string::npos);
  EXPECT_NE(out.find("x      | y    |"), std::string::npos);
}

// A fake learner with scripted predictions for evaluator tests.
class ScriptedLearner : public core::ContinualLearner {
 public:
  explicit ScriptedLearner(int64_t correct_upto_class)
      : cut_(correct_upto_class) {}
  void observe(const data::Batch&) override {}
  std::vector<int64_t> predict(
      const std::vector<data::ImageKey>& keys) override {
    std::vector<int64_t> out;
    for (const auto& k : keys) {
      // Classes below the cut are predicted correctly; others wrong.
      out.push_back(k.class_id < cut_ ? k.class_id : (k.class_id + 1) % 100);
    }
    return out;
  }
  std::string name() const override { return "Scripted"; }
  int64_t memory_overhead_bytes() const override { return 0; }

 private:
  int64_t cut_;
};

std::vector<data::ImageKey> grid_keys(int32_t classes, int32_t per_class) {
  std::vector<data::ImageKey> keys;
  for (int32_t c = 0; c < classes; ++c) {
    for (int32_t i = 0; i < per_class; ++i) keys.push_back({c, 0, i, true});
  }
  return keys;
}

TEST(Evaluator, AccAllCountsCorrectFraction) {
  ScriptedLearner half(5);  // 5 of 10 classes correct
  const auto keys = grid_keys(10, 3);
  const auto rep = metrics::evaluate(half, keys);
  EXPECT_NEAR(rep.acc_all, 50.0, 1e-9);
}

TEST(Evaluator, PerClassSlices) {
  ScriptedLearner half(5);
  const auto keys = grid_keys(10, 4);
  const auto rep = metrics::evaluate(half, keys);
  ASSERT_EQ(rep.per_class.size(), 10u);
  EXPECT_EQ(rep.per_class[0], 100.0);
  EXPECT_EQ(rep.per_class[9], 0.0);
}

TEST(Evaluator, PreferredSliceUsesGivenClasses) {
  ScriptedLearner half(5);
  const auto keys = grid_keys(10, 2);
  const std::vector<int64_t> preferred = {0, 1, 9};
  const auto rep = metrics::evaluate(half, keys, preferred);
  EXPECT_NEAR(rep.acc_preferred, 100.0 * 2 / 3, 1e-6);
}

TEST(Evaluator, EmptyKeysSafe) {
  ScriptedLearner l(1);
  const auto rep = metrics::evaluate(l, {});
  EXPECT_EQ(rep.acc_all, 0.0);
}

TEST(Evaluator, PerfectAndZero) {
  ScriptedLearner all(100);
  ScriptedLearner none(0);
  const auto keys = grid_keys(7, 2);
  EXPECT_EQ(metrics::evaluate(all, keys).acc_all, 100.0);
  EXPECT_EQ(metrics::evaluate(none, keys).acc_all, 0.0);
}

}  // namespace
}  // namespace cham
