// Adam, LR schedules, MaxPool2d, Dropout, and the forgetting tracker.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/forgetting.h"
#include "nn/adam.h"
#include "nn/extra_layers.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/lr_schedule.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

namespace cham {
namespace {

// ------------------------------------------------------------------ Adam

TEST(Adam, ConvergesOnLinearProblem) {
  Rng rng(1);
  nn::Sequential net;
  net.add(std::make_unique<nn::Linear>(4, 3, rng));
  nn::Adam opt(net.params(), 0.05f);

  Tensor x({9, 4});
  ops::fill_normal(x, rng, 0.0f, 1.0f);
  std::vector<int64_t> labels = {0, 1, 2, 0, 1, 2, 0, 1, 2};

  float first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    opt.zero_grad();
    Tensor logits = net.forward(x, true);
    auto loss = nn::softmax_cross_entropy(logits, labels);
    net.backward(loss.grad);
    opt.step();
    if (step == 0) first = loss.loss;
    last = loss.loss;
  }
  EXPECT_LT(last, first * 0.3f);
  EXPECT_EQ(opt.steps(), 60);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the very first update magnitude is ~lr regardless
  // of gradient scale — the signature property of Adam.
  nn::Param p(Shape{{1}});
  p.value[0] = 1.0f;
  nn::Adam opt({&p}, 0.1f);
  p.grad[0] = 1e-3f;  // tiny gradient
  opt.step();
  EXPECT_NEAR(1.0f - p.value[0], 0.1f, 0.01f);
}

TEST(Adam, DecoupledWeightDecayShrinks) {
  nn::Param p(Shape{{1}});
  p.value[0] = 1.0f;
  nn::Adam opt({&p}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  p.zero_grad();
  opt.step();
  EXPECT_LT(p.value[0], 1.0f);
}

// ------------------------------------------------------------- schedules

TEST(LrSchedule, ConstantIsConstant) {
  nn::ConstantLr s(0.01f);
  EXPECT_EQ(s.lr_at(0), 0.01f);
  EXPECT_EQ(s.lr_at(1000000), 0.01f);
}

TEST(LrSchedule, StepDecayHalves) {
  nn::StepDecayLr s(1.0f, 10, 0.5f);
  EXPECT_FLOAT_EQ(s.lr_at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.lr_at(9), 1.0f);
  EXPECT_FLOAT_EQ(s.lr_at(10), 0.5f);
  EXPECT_FLOAT_EQ(s.lr_at(25), 0.25f);
}

TEST(LrSchedule, CosineWarmupAndAnneal) {
  nn::CosineLr s(1.0f, /*total=*/100, /*warmup=*/10, /*min_lr=*/0.1f);
  EXPECT_LT(s.lr_at(0), 0.2f);                  // warming up
  EXPECT_NEAR(s.lr_at(9), 1.0f, 1e-5f);         // warmup complete
  EXPECT_NEAR(s.lr_at(100), 0.1f, 1e-4f);       // fully annealed
  EXPECT_NEAR(s.lr_at(100000), 0.1f, 1e-4f);    // clamped
  // Monotone decreasing after warmup.
  float prev = s.lr_at(10);
  for (int64_t t = 11; t <= 100; t += 10) {
    EXPECT_LE(s.lr_at(t), prev + 1e-6f);
    prev = s.lr_at(t);
  }
}

// --------------------------------------------------------------- MaxPool

TEST(MaxPool2d, SelectsWindowMaxima) {
  nn::MaxPool2d pool(2, 2);
  Tensor x({1, 1, 4, 4});
  for (int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{{1, 1, 2, 2}}));
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[3], 15.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  nn::MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 4;
  x[2] = 2;
  x[3] = 3;
  pool.forward(x, true);
  Tensor g({1, 1, 1, 1});
  g[0] = 7.0f;
  Tensor gi = pool.backward(g);
  EXPECT_EQ(gi[1], 7.0f);  // the max location
  EXPECT_EQ(gi[0], 0.0f);
  EXPECT_EQ(gi[3], 0.0f);
}

// --------------------------------------------------------------- Dropout

TEST(Dropout, IdentityAtEval) {
  nn::Dropout drop(0.5f, 3);
  Tensor x = Tensor::from({1, 2, 3, 4});
  Tensor y = drop.forward(x, false);
  EXPECT_EQ(ops::max_abs_diff(x, y), 0.0);
}

TEST(Dropout, PreservesExpectationAtTrain) {
  nn::Dropout drop(0.3f, 4);
  Tensor x = Tensor::full(Shape{{10000}}, 1.0f);
  Tensor y = drop.forward(x, true);
  EXPECT_NEAR(ops::mean(y), 1.0f, 0.05f);  // inverted dropout
  // Some elements zeroed, survivors scaled.
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) zeros += y[i] == 0.0f;
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.3, 0.03);
}

TEST(Dropout, BackwardMatchesMask) {
  nn::Dropout drop(0.5f, 5);
  Tensor x = Tensor::full(Shape{{100}}, 2.0f);
  Tensor y = drop.forward(x, true);
  Tensor g = Tensor::full(Shape{{100}}, 1.0f);
  Tensor gi = drop.backward(g);
  for (int64_t i = 0; i < 100; ++i) {
    if (y[i] == 0.0f) {
      EXPECT_EQ(gi[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(gi[i], 2.0f);  // 1/(1-0.5)
    }
  }
}

// ---------------------------------------------------- forgetting tracker

// Scripted learner whose per-domain accuracy is controlled by a table.
class DomainScripted : public core::ContinualLearner {
 public:
  // knows[d] = true -> perfect on domain d, else 0%.
  explicit DomainScripted(std::vector<bool> knows)
      : knows_(std::move(knows)) {}
  void observe(const data::Batch&) override {}
  std::vector<int64_t> predict(
      const std::vector<data::ImageKey>& keys) override {
    std::vector<int64_t> out;
    for (const auto& k : keys) {
      out.push_back(knows_[static_cast<size_t>(k.domain_id)]
                        ? k.class_id
                        : (k.class_id + 1) % 1000);
    }
    return out;
  }
  std::string name() const override { return "DomainScripted"; }
  int64_t memory_overhead_bytes() const override { return 0; }
  std::vector<bool> knows_;
};

data::DatasetConfig tiny_cfg() {
  auto cfg = data::core50_config();
  cfg.num_classes = 4;
  cfg.num_domains = 3;
  cfg.test_instances = 2;
  return cfg;
}

TEST(ForgettingTracker, MatrixRowsMatchScript) {
  metrics::ForgettingTracker tracker(tiny_cfg());
  DomainScripted learner({true, false, false});
  auto row = tracker.record_after_domain(learner, 0);
  EXPECT_EQ(row[0], 100.0);
  EXPECT_EQ(row[1], 0.0);
}

TEST(ForgettingTracker, BwtIsNegativeUnderForgetting) {
  metrics::ForgettingTracker tracker(tiny_cfg());
  // After each domain, only the current domain is known (total forgetting).
  DomainScripted learner({true, false, false});
  tracker.record_after_domain(learner, 0);
  learner.knows_ = {false, true, false};
  tracker.record_after_domain(learner, 1);
  learner.knows_ = {false, false, true};
  tracker.record_after_domain(learner, 2);
  EXPECT_DOUBLE_EQ(tracker.backward_transfer(), -100.0);
  EXPECT_DOUBLE_EQ(tracker.max_forgetting(), 100.0);
  EXPECT_NEAR(tracker.final_average(), 100.0 / 3.0, 1e-9);
}

TEST(ForgettingTracker, NoForgettingGivesZeroBwt) {
  metrics::ForgettingTracker tracker(tiny_cfg());
  DomainScripted learner({true, true, true});
  tracker.record_after_domain(learner, 0);
  tracker.record_after_domain(learner, 1);
  tracker.record_after_domain(learner, 2);
  EXPECT_DOUBLE_EQ(tracker.backward_transfer(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.max_forgetting(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.final_average(), 100.0);
}

}  // namespace
}  // namespace cham
