// Workspace memory subsystem: arena alignment / rewind / high-water
// accounting, pool freelist recycling and reset semantics, the bounded
// LatentCache's LRU eviction, and the end-to-end property the subsystem
// exists for — a steady-state ChameleonLearner::observe() that performs
// zero heap allocations (verified with a counting global operator new).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "core/chameleon.h"
#include "data/latent_cache.h"
#include "nn/layers.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "util/check.h"

// ---------------------------------------------------------------------------
// Counting global new/delete: every heap allocation in this binary (gtest's
// included) bumps the counter; tests snapshot around the region of interest.
// All overloads forward to malloc/aligned_alloc, so ASan still sees and
// checks every allocation and leak.
namespace {

std::atomic<long long> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = ((n ? n : 1) + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (!p) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace cham {
namespace {

// ------------------------------------------------------------------ Arena

TEST(Arena, Returns64ByteAlignedPointers) {
  ws::ArenaScope scope;
  for (std::size_t n : {1u, 3u, 17u, 100u, 4096u}) {
    const float* p = scope.floats(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u) << "n=" << n;
  }
}

TEST(Arena, RewindReusesTheSameMemory) {
  // Warm the arena so capacity exists and no growth happens mid-test.
  { ws::ArenaScope warm; (void)warm.floats(10000); }
  float* p1 = nullptr;
  float* p2 = nullptr;
  {
    ws::ArenaScope scope;
    p1 = scope.floats(1000);
    p1[0] = 1.0f;
  }
  {
    ws::ArenaScope scope;
    p2 = scope.floats(1000);
  }
  EXPECT_EQ(p1, p2);  // the scope rewound; the bump pointer came back
}

TEST(Arena, NestedScopesRewindInOrder) {
  { ws::ArenaScope warm; (void)warm.floats(10000); }
  ws::Arena& arena = ws::Arena::local();
  const std::size_t live0 = arena.live_bytes();
  {
    ws::ArenaScope outer;
    (void)outer.floats(100);
    const std::size_t live_outer = arena.live_bytes();
    EXPECT_GE(live_outer, live0 + 100 * sizeof(float));
    {
      ws::ArenaScope inner;
      (void)inner.floats(200);
      EXPECT_GE(arena.live_bytes(), live_outer + 200 * sizeof(float));
    }
    EXPECT_EQ(arena.live_bytes(), live_outer);  // inner rewound first
  }
  EXPECT_EQ(arena.live_bytes(), live0);
}

TEST(Arena, HighWaterTracksPeakLiveBytes) {
  ws::Arena& arena = ws::Arena::local();
  arena.rebase_high_water();
  const std::size_t base = arena.high_water_bytes();
  {
    ws::ArenaScope scope;
    (void)scope.floats(4096);
  }
  // The peak survives the rewind.
  EXPECT_GE(arena.high_water_bytes(), base + 4096 * sizeof(float));
  const std::size_t peak = arena.high_water_bytes();
  {
    ws::ArenaScope scope;
    (void)scope.floats(16);
  }
  EXPECT_EQ(arena.high_water_bytes(), peak);  // smaller use doesn't move it
}

// ------------------------------------------------------------------- Pool

TEST(Pool, FreelistRecyclesBlocksLifo) {
  void* p = ws::pool_acquire(4096);
  ASSERT_NE(p, nullptr);
  ws::pool_release(p, 4096);
  void* q = ws::pool_acquire(4096);
  EXPECT_EQ(q, p);  // most recently freed block of the class comes back
  ws::pool_release(q, 4096);
}

TEST(Pool, StatsCountHitsAndRefills) {
  // Drain any prior state for a deterministic window.
  ws::reset_stats();
  const ws::WorkspaceStats before = ws::stats();
  {
    Tensor t({2048});  // pooled storage
    Rng rng(3);
    ops::fill_normal(t, rng, 0.0f, 1.0f);
  }
  Tensor u({2048});  // same size class: must be a cache or freelist hit
  const ws::WorkspaceStats after = ws::stats();
  EXPECT_GT(after.pool_freelist_hits + after.pool_local_hits,
            before.pool_freelist_hits + before.pool_local_hits);
  EXPECT_GE(after.pool_high_water_bytes, after.pool_bytes_in_use);
}

TEST(Pool, ResetStatsRebasesCounters) {
  Tensor held({512});  // keep some capacity checked out across the reset
  ws::reset_stats();
  const ws::WorkspaceStats s = ws::stats();
  EXPECT_EQ(s.pool_heap_allocs, 0);
  EXPECT_EQ(s.pool_freelist_hits, 0);
  // High water re-bases to what is currently live, not to zero.
  EXPECT_GE(s.pool_high_water_bytes, s.pool_bytes_in_use);
  EXPECT_GT(s.pool_bytes_in_use, 0);
}

// ------------------------------------------------------- LatentCache LRU

struct TinyEnv {
  data::DatasetConfig data_cfg;
  std::unique_ptr<nn::Sequential> f;
  std::unique_ptr<data::LatentCache> latents;
  core::LearnerEnv env;

  explicit TinyEnv(int64_t max_cache_entries = 0) {
    data_cfg = data::core50_config();
    data_cfg.num_classes = 6;
    data_cfg.num_domains = 3;
    data_cfg.image_hw = 8;
    data_cfg.train_instances = 4;

    Rng rng(1);
    f = std::make_unique<nn::Sequential>();
    f->add(std::make_unique<nn::Conv2d>(3, 4, 8, 8, 3, 2, 1, false, rng));
    f->add(std::make_unique<nn::ReLU>());
    latents = std::make_unique<data::LatentCache>(data_cfg, *f,
                                                  max_cache_entries);

    env.data_cfg = &data_cfg;
    env.latents = latents.get();
    env.latent_shape = Shape{{4, 4, 4}};
    env.f_fwd_macs = f->macs_per_sample();
    env.lr = 0.01f;
    env.head_factory = [] {
      Rng hrng(2);
      auto g = std::make_unique<nn::Sequential>();
      g->add(std::make_unique<nn::GlobalAvgPool>());
      g->add(std::make_unique<nn::Linear>(4, 6, hrng));
      return g;
    };
  }

  static data::ImageKey key(int32_t cls, int32_t inst) {
    return {cls, 0, inst, false};
  }
};

TEST(LatentCacheLru, UnboundedCacheNeverEvicts) {
  TinyEnv env;  // max_entries = 0
  for (int32_t i = 0; i < 6; ++i) (void)env.latents->latent({i, 0, 0, false});
  EXPECT_EQ(env.latents->size(), 6);
  EXPECT_EQ(env.latents->evictions(), 0);
}

TEST(LatentCacheLru, EvictsLeastRecentlyUsedAtCapacity) {
  TinyEnv env(/*max_cache_entries=*/4);
  for (int32_t i = 0; i < 4; ++i) (void)env.latents->latent({i, 0, 0, false});
  EXPECT_EQ(env.latents->size(), 4);

  // Touch key 0 so key 1 becomes the LRU victim.
  (void)env.latents->latent({0, 0, 0, false});
  (void)env.latents->latent({4, 0, 0, false});  // evicts key 1
  EXPECT_EQ(env.latents->size(), 4);
  EXPECT_EQ(env.latents->evictions(), 1);

  // Key 0 must still be cached: requesting all keys but 1 causes no
  // further eviction-triggering misses.
  const int64_t ev = env.latents->evictions();
  (void)env.latents->latent({0, 0, 0, false});
  (void)env.latents->latent({4, 0, 0, false});
  EXPECT_EQ(env.latents->evictions(), ev);
}

TEST(LatentCacheLru, RecomputedLatentIsIdenticalAfterEviction) {
  TinyEnv bounded(/*max_cache_entries=*/2);
  TinyEnv unbounded;
  const data::ImageKey k0 = TinyEnv::key(0, 0);
  const Tensor first = bounded.latents->latent(k0);  // copy before eviction
  (void)bounded.latents->latent(TinyEnv::key(1, 0));
  (void)bounded.latents->latent(TinyEnv::key(2, 0));  // evicts k0
  EXPECT_GE(bounded.latents->evictions(), 1);
  const Tensor& recomputed = bounded.latents->latent(k0);  // miss -> forward
  EXPECT_EQ(ops::max_abs_diff(first, recomputed), 0.0);
  EXPECT_EQ(ops::max_abs_diff(unbounded.latents->latent(k0), recomputed),
            0.0);
}

TEST(LatentCacheLru, WarmRespectsTheBound) {
  TinyEnv env(/*max_cache_entries=*/3);
  std::vector<data::ImageKey> keys;
  for (int32_t i = 0; i < 6; ++i) keys.push_back(TinyEnv::key(i, 0));
  env.latents->warm(keys, /*batch=*/2);
  EXPECT_EQ(env.latents->size(), 3);
  EXPECT_EQ(env.latents->evictions(), 3);
}

// ------------------------------------------- steady-state zero allocation

// The whole point of the workspace subsystem: after warm-up, an off-cycle
// observe() step touches the heap zero times — Tensor storage recycles
// through the pool, kernel scratch bumps the arena, and every learner-side
// vector holds its capacity. LT maintenance steps (every h batches) may
// make bounded small allocations and are exempt here.
//
// The full-checks tier allocates audit strings inside observe(), so the
// strict assertion only runs below it.
TEST(SteadyState, ObserveAllocatesNothingOffCycle) {
#if CHAM_CHECKS_LEVEL >= 2
  GTEST_SKIP() << "full-checks tier audits allocate inside observe()";
#else
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 24;      // saturates within the warm-up window
  cc.learning_window = 40;  // several recalibrations during warm-up
  core::ChameleonLearner learner(env.env, cc, /*seed=*/7);

  auto make_batch = [](long long s) {
    data::Batch b;
    b.domain = 0;
    for (int i = 0; i < 4; ++i) {
      const long long j = s + i;
      b.keys.push_back({static_cast<int32_t>(j % 6), 0,
                        static_cast<int32_t>(j % 4), false});
      b.labels.push_back(j % 6);
    }
    return b;
  };

  long long step = 0;
  for (; step < 120; ++step) learner.observe(make_batch(step));

  long long worst = 0;
  long long measured = 0;
  for (long long i = 0; i < 40; ++i, ++step) {
    const data::Batch b = make_batch(step);
    const bool lt_cycle = ((step + 1) % cc.lt_period_h) == 0;
    const long long before = g_allocs.load(std::memory_order_relaxed);
    learner.observe(b);
    const long long d = g_allocs.load(std::memory_order_relaxed) - before;
    if (!lt_cycle) {
      ++measured;
      worst = std::max(worst, d);
    }
  }
  EXPECT_GT(measured, 30);
  EXPECT_EQ(worst, 0) << "steady-state observe() touched the heap";
#endif
}

// The chunked predict path rides the same gather machinery as training:
// latent rows are read in place out of the cache and the first layer packs
// GEMM panels straight from them, so a warm predict_batch makes no stacked
// batch copy and touches the heap only for its returned prediction vector.
TEST(SteadyState, ChunkedPredictStaysOffTheHeap) {
#if CHAM_CHECKS_LEVEL >= 2
  GTEST_SKIP() << "full-checks tier audits allocate inside the layers";
#else
  TinyEnv env;
  core::ChameleonConfig cc;
  core::ChameleonLearner learner(env.env, cc, /*seed=*/11);

  std::vector<data::ImageKey> keys;
  for (int32_t i = 0; i < 24; ++i) {
    keys.push_back(TinyEnv::key(i % 6, i % 4));
  }
  // Warm: latent cache filled, scratch vectors at capacity, pool classes
  // populated.
  (void)learner.predict(keys);
  (void)learner.predict(keys);

  long long worst = 0;
  for (int rep = 0; rep < 10; ++rep) {
    const long long before = g_allocs.load(std::memory_order_relaxed);
    const auto preds = learner.predict(keys);
    const long long d = g_allocs.load(std::memory_order_relaxed) - before;
    ASSERT_EQ(preds.size(), keys.size());
    worst = std::max(worst, d);
  }
  // The returned vector<int64_t> is the only permitted allocation.
  EXPECT_LE(worst, 1) << "chunked predict allocated beyond its result";
#endif
}

// The OpStats mirror: after any observe() the ledger carries the workspace
// gauges, and they merge by max across learners.
TEST(SteadyState, OpStatsCarriesWorkspaceGauges) {
  TinyEnv env;
  core::ChameleonConfig cc;
  core::ChameleonLearner learner(env.env, cc, /*seed=*/3);
  data::Batch b;
  b.domain = 0;
  for (int i = 0; i < 3; ++i) {
    b.keys.push_back({static_cast<int32_t>(i), 0, 0, false});
    b.labels.push_back(i);
  }
  learner.observe(b);
  const core::OpStats& s = learner.stats();
  EXPECT_GT(s.ws_pool_high_water_bytes, 0);
  EXPECT_GT(s.ws_arena_high_water_bytes, 0);

  core::OpStats merged;
  merged.ws_pool_high_water_bytes = 1;
  merged += s;
  EXPECT_EQ(merged.ws_pool_high_water_bytes, s.ws_pool_high_water_bytes);
}

}  // namespace
}  // namespace cham
