// Parameterized property tests for the paper's sampling equations:
// Eq. 2 monotonicity in rho and skew, Eq. 4 normalisation/limits across the
// alpha-beta grid, Eq. 6 score range, and buffer-policy invariants across
// capacities.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/long_term_memory.h"
#include "core/preference_tracker.h"
#include "core/short_term_memory.h"
#include "replay/buffer.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cham {
namespace {

// ------------------------------------------ uniform_int bias regression

// With n = 3 * 2^61 the old `next_u64() % n` maps 2^64 source values onto
// [0, n) unevenly: 2^64 = 2n + 2^62, so the bottom 2^62 outputs are hit
// three times and the rest twice — a 1.5x density step across the range
// that a six-bin chi-square detects instantly (chi2 ~ 900 at 30k draws).
// Lemire's rejection method is exactly uniform for every n.
TEST(RngUniformInt, LargeRangeChiSquareUniform) {
  const int64_t n = int64_t{3} << 61;
  constexpr int kBins = 6;
  constexpr int kDraws = 30000;
  const int64_t bin_width = n / kBins;  // 2^60, divides exactly
  Rng rng(0xB1A5);
  double counts[kBins] = {};
  for (int i = 0; i < kDraws; ++i) {
    const int64_t x = rng.uniform_int(n);
    ASSERT_GE(x, 0);
    ASSERT_LT(x, n);
    counts[x / bin_width] += 1;
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0;
  for (double c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 20.5);  // df = 5 critical value at p = 0.001
}

// Small ranges (the common buffer-eviction case) must also be uniform.
TEST(RngUniformInt, SmallRangeChiSquareUniform) {
  constexpr int64_t n = 37;
  constexpr int kDraws = 37000;
  Rng rng(0x5EED);
  std::vector<double> counts(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < kDraws; ++i) {
    counts[static_cast<size_t>(rng.uniform_int(n))] += 1;
  }
  const double expected = static_cast<double>(kDraws) / n;
  double chi2 = 0;
  for (double c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 68.0);  // df = 36 critical value at p = 0.001
}

// Pin the exact draw algorithm: uniform_int must match an independent
// implementation of Lemire's multiply-shift rejection on the same stream
// (both the values returned and the number of u64s consumed).
TEST(RngUniformInt, MatchesUnbiasedRejectionReference) {
  Rng rng(123);
  Rng ref_rng(123);  // identical state; advances in lockstep
  auto ref_draw = [&ref_rng](uint64_t n) {
    uint64_t x = ref_rng.next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < n) {
      const uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = ref_rng.next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<int64_t>(static_cast<uint64_t>(m >> 64));
  };
  for (int64_t n : {int64_t{2}, int64_t{3}, int64_t{10}, int64_t{1000},
                    (int64_t{1} << 62) + 12345}) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(rng.uniform_int(n), ref_draw(static_cast<uint64_t>(n)))
          << "n=" << n << " draw " << i;
    }
  }
}

// ------------------------------------------ Eq. 2 across the rho grid

class RhoGrid : public ::testing::TestWithParam<float> {};

TEST_P(RhoGrid, DeltaIsValidProbabilityWeight) {
  const float rho = GetParam();
  core::PreferenceTracker t(20, 4, 200, rho);
  Rng rng(uint64_t(rho * 1000) + 3);
  for (int i = 0; i < 600; ++i) {
    // Skewed stream: classes 0-3 dominate.
    t.update(rng.bernoulli(0.7) ? rng.uniform_int(4) : rng.uniform_int(20));
  }
  EXPECT_GE(t.delta_k(), 0.05);
  EXPECT_LE(t.delta_k(), 0.95);
  // Preferred weight must not be below the non-preferred weight for any
  // rho on a stream where preferred classes really dominate.
  EXPECT_GE(t.delta(0) + 1e-9, t.delta(10));
}

INSTANTIATE_TEST_SUITE_P(Rho, RhoGrid,
                         ::testing::Values(0.0f, 0.25f, 0.5f, 0.75f, 1.0f));

TEST(Eq2Property, DeltaMonotoneInRhoUnderSkew) {
  // With n_k > n_rest, Delta = (n_k / (n_k + n_rest))^rho... note Eq. 2 is
  // n_k^rho / (n_k + n_rest)^rho = (n_k/(n_k+n_rest))^rho, a ratio < 1, so
  // larger rho gives SMALLER Delta — rho trades affinity strength against
  // interference suppression (paper Sec. III-C.1).
  double prev = 1.0;
  for (float rho : {0.1f, 0.3f, 0.5f, 0.7f, 0.9f}) {
    core::PreferenceTracker t(10, 2, 100, rho);
    for (int i = 0; i < 80; ++i) t.update(i % 2);       // heavy on 0,1
    for (int i = 0; i < 20; ++i) t.update(2 + i % 8);   // light on rest
    EXPECT_LT(t.delta_k(), prev + 1e-9);
    prev = t.delta_k();
  }
}

// ------------------------------------------ Eq. 4 across the alpha/beta grid

class AlphaBetaGrid
    : public ::testing::TestWithParam<std::pair<float, float>> {};

TEST_P(AlphaBetaGrid, ProbabilitiesNormalisedAndNonNegative) {
  const auto [alpha, beta] = GetParam();
  core::ShortTermMemory st(5, {alpha, beta});
  core::PreferenceTracker prefs(10, 2, 50, 0.5f);
  Rng rng(uint64_t(alpha * 100 + beta * 10 + 1));
  for (int i = 0; i < 50; ++i) prefs.update(rng.uniform_int(10));

  std::vector<int64_t> labels = {0, 3, 7, 3, 9};
  std::vector<double> u = {0.01, 5.0, 0.5, 2.0, 0.1};
  const auto p = st.selection_probabilities(labels, u, prefs);
  double sum = 0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBeta, AlphaBetaGrid,
    ::testing::Values(std::pair{0.0f, 0.0f}, std::pair{1.0f, 0.0f},
                      std::pair{0.0f, 1.0f}, std::pair{1.0f, 1.0f},
                      std::pair{0.3f, 3.0f}, std::pair{3.0f, 0.3f}));

TEST(Eq4Property, BetaLimitRanksByInverseUncertainty) {
  core::ShortTermMemory st(5, {0.0f, 1.0f});
  core::PreferenceTracker prefs(5, 1, 1000, 0.5f);
  std::vector<int64_t> labels = {0, 0, 0, 0};
  std::vector<double> u = {4.0, 1.0, 0.25, 8.0};
  const auto p = st.selection_probabilities(labels, u, prefs);
  // p must be ordered inversely to u.
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[0], p[3]);
}

// ------------------------------------------ Eq. 6 score properties

TEST(Eq6Property, ScoreBoundedByTanh) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> p(10), q(10);
    double sp = 0, sq = 0;
    for (int i = 0; i < 10; ++i) {
      p[i] = rng.uniform_f(0.001f, 1.0f);
      q[i] = rng.uniform_f(0.001f, 1.0f);
      sp += p[i];
      sq += q[i];
    }
    for (int i = 0; i < 10; ++i) {
      p[i] /= static_cast<float>(sp);
      q[i] /= static_cast<float>(sq);
    }
    const double s = core::LongTermMemory::prototype_divergence(p, q);
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 1.0);  // tanh saturates below 1
  }
}

// ------------------------------------------ buffer invariants across sizes

class BufferCapacities : public ::testing::TestWithParam<int64_t> {};

TEST_P(BufferCapacities, NeverExceedsCapacity) {
  const int64_t cap = GetParam();
  replay::ReplayBuffer buf(cap);
  Rng rng(static_cast<uint64_t>(cap) + 11);
  for (int64_t i = 0; i < 4 * cap + 7; ++i) {
    replay::ReplaySample s;
    s.label = i;
    buf.reservoir_add(std::move(s), rng);
    EXPECT_LE(buf.size(), cap);
  }
  EXPECT_TRUE(buf.full());
}

TEST_P(BufferCapacities, LongTermQuotaHolds) {
  const int64_t cap = GetParam();
  const int64_t classes = 5;
  core::LongTermMemory lt(cap, classes);
  Rng rng(static_cast<uint64_t>(cap) + 13);
  for (int64_t i = 0; i < 6 * cap; ++i) {
    replay::ReplaySample s;
    s.label = i % classes;
    s.latent = Tensor({1, 2, 1, 1});
    lt.insert(s, rng);
    EXPECT_LE(lt.class_count(i % classes), lt.per_class_quota());
  }
  EXPECT_LE(lt.size(), std::max<int64_t>(cap, classes));
}

INSTANTIATE_TEST_SUITE_P(Caps, BufferCapacities,
                         ::testing::Values(1, 3, 10, 64, 257));

}  // namespace
}  // namespace cham
