// Finite-difference gradient checks for every trainable layer and loss.
// These are the strongest correctness tests in the suite: any error in a
// backward pass shows up as a relative-error blowup against the numerical
// gradient.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/mobilenet.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

namespace cham {
namespace {

// Scalar loss used to reduce a layer output: weighted sum with fixed
// pseudo-random weights (so every output element matters).
struct Reducer {
  Tensor weights;
  explicit Reducer(const Shape& shape, uint64_t seed) : weights(shape) {
    Rng rng(seed);
    ops::fill_uniform(weights, rng, -1.0f, 1.0f);
  }
  float loss(const Tensor& y) const {
    double acc = 0;
    for (int64_t i = 0; i < y.numel(); ++i) acc += double(y[i]) * weights[i];
    return static_cast<float>(acc);
  }
  Tensor grad() const { return weights; }
};

// Checks d(loss)/d(input) and d(loss)/d(params) of `layer` numerically.
void check_layer_gradients(nn::Layer& layer, Tensor input, double tol = 2e-2) {
  Reducer reducer(layer.forward(input, /*train=*/true).shape(), 99);

  // Analytic gradients.
  for (nn::Param* p : layer.params()) p->zero_grad();
  Tensor out = layer.forward(input, /*train=*/true);
  Tensor gin = layer.backward(reducer.grad());

  const float eps = 1e-2f;

  // Input gradient.
  for (int64_t i = 0; i < std::min<int64_t>(input.numel(), 40); ++i) {
    Tensor perturbed = input;
    perturbed[i] += eps;
    const float lp = reducer.loss(layer.forward(perturbed, true));
    perturbed[i] -= 2 * eps;
    const float lm = reducer.loss(layer.forward(perturbed, true));
    const double num = (double(lp) - double(lm)) / (2.0 * eps);
    EXPECT_NEAR(gin[i], num, tol * std::max(1.0, std::abs(num)))
        << layer.name() << " input grad at " << i;
  }

  // Restore caches for parameter perturbation (forward mutates them).
  for (nn::Param* p : layer.params()) {
    for (int64_t i = 0; i < std::min<int64_t>(p->numel(), 30); ++i) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float lp = reducer.loss(layer.forward(input, true));
      p->value[i] = orig - eps;
      const float lm = reducer.loss(layer.forward(input, true));
      p->value[i] = orig;
      const double num = (double(lp) - double(lm)) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * std::max(1.0, std::abs(num)))
          << layer.name() << " param grad at " << i;
    }
  }
}

Tensor random_input(Shape shape, uint64_t seed) {
  Tensor t(shape);
  Rng rng(seed);
  ops::fill_normal(t, rng, 0.0f, 1.0f);
  return t;
}

TEST(GradCheck, Conv2d) {
  Rng rng(1);
  nn::Conv2d conv(3, 4, 6, 6, 3, 1, 1, /*bias=*/true, rng);
  check_layer_gradients(conv, random_input({2, 3, 6, 6}, 11));
}

TEST(GradCheck, Conv2dStride2NoBias) {
  Rng rng(2);
  nn::Conv2d conv(2, 3, 8, 8, 3, 2, 1, /*bias=*/false, rng);
  check_layer_gradients(conv, random_input({1, 2, 8, 8}, 12));
}

TEST(GradCheck, Pointwise) {
  Rng rng(3);
  nn::Conv2d conv(4, 5, 4, 4, 1, 1, 0, /*bias=*/false, rng);
  check_layer_gradients(conv, random_input({2, 4, 4, 4}, 13));
}

TEST(GradCheck, DepthwiseConv2d) {
  Rng rng(4);
  nn::DepthwiseConv2d conv(3, 6, 6, 3, 1, 1, rng);
  check_layer_gradients(conv, random_input({2, 3, 6, 6}, 14));
}

TEST(GradCheck, DepthwiseStride2) {
  Rng rng(5);
  nn::DepthwiseConv2d conv(2, 8, 8, 3, 2, 1, rng);
  check_layer_gradients(conv, random_input({1, 2, 8, 8}, 15));
}

TEST(GradCheck, BatchNormTrainMode) {
  nn::BatchNorm2d bn(3);
  check_layer_gradients(bn, random_input({4, 3, 3, 3}, 16), /*tol=*/5e-2);
}

TEST(GradCheck, BatchNormFrozenStats) {
  nn::BatchNorm2d bn(3);
  bn.set_track_running_stats(false);
  check_layer_gradients(bn, random_input({2, 3, 4, 4}, 17));
}

TEST(GradCheck, ReLU6) {
  nn::ReLU relu(6.0f);
  // Keep inputs away from the kinks at 0 and 6.
  Tensor x = random_input({2, 3, 4, 4}, 18);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.05f) x[i] = 0.5f;
  }
  check_layer_gradients(relu, x);
}

TEST(GradCheck, GlobalAvgPool) {
  nn::GlobalAvgPool pool;
  check_layer_gradients(pool, random_input({2, 4, 3, 3}, 19));
}

TEST(GradCheck, Linear) {
  Rng rng(6);
  nn::Linear fc(8, 5, rng);
  check_layer_gradients(fc, random_input({3, 8}, 20));
}

TEST(GradCheck, SequentialBlock) {
  Rng rng(7);
  auto seq = nn::Sequential();
  seq.add(std::make_unique<nn::Conv2d>(2, 4, 5, 5, 3, 1, 1, false, rng));
  seq.add(std::make_unique<nn::BatchNorm2d>(4));
  seq.add(std::make_unique<nn::ReLU>(6.0f));
  seq.add(std::make_unique<nn::GlobalAvgPool>());
  seq.add(std::make_unique<nn::Linear>(4, 3, rng));
  check_layer_gradients(seq, random_input({2, 2, 5, 5}, 21), /*tol=*/5e-2);
}

TEST(GradCheck, SoftmaxCrossEntropyLoss) {
  Rng rng(8);
  Tensor logits({3, 5});
  ops::fill_normal(logits, rng, 0.0f, 1.0f);
  std::vector<int64_t> labels = {1, 4, 0};
  auto res = nn::softmax_cross_entropy(logits, labels);

  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    Tensor p = logits;
    p[i] += eps;
    const float lp = nn::softmax_cross_entropy(p, labels).loss;
    p[i] -= 2 * eps;
    const float lm = nn::softmax_cross_entropy(p, labels).loss;
    const double num = (double(lp) - double(lm)) / (2.0 * eps);
    EXPECT_NEAR(res.grad[i], num, 1e-3) << "CE grad at " << i;
  }
}

TEST(GradCheck, MseLoss) {
  Rng rng(9);
  Tensor logits({2, 4}), targets({2, 4});
  ops::fill_normal(logits, rng, 0.0f, 1.0f);
  ops::fill_normal(targets, rng, 0.0f, 1.0f);
  auto res = nn::mse(logits, targets);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    Tensor p = logits;
    p[i] += eps;
    const float lp = nn::mse(p, targets).loss;
    p[i] -= 2 * eps;
    const float lm = nn::mse(p, targets).loss;
    EXPECT_NEAR(res.grad[i], (double(lp) - double(lm)) / (2.0 * eps), 1e-3);
  }
}

TEST(GradCheck, KlDistillationLoss) {
  Rng rng(10);
  Tensor logits({2, 4}), teacher({2, 4});
  ops::fill_normal(logits, rng, 0.0f, 1.0f);
  ops::fill_normal(teacher, rng, 0.0f, 1.0f);
  auto res = nn::kl_distillation(logits, teacher, 2.0f);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    Tensor p = logits;
    p[i] += eps;
    const float lp = nn::kl_distillation(p, teacher, 2.0f).loss;
    p[i] -= 2 * eps;
    const float lm = nn::kl_distillation(p, teacher, 2.0f).loss;
    EXPECT_NEAR(res.grad[i], (double(lp) - double(lm)) / (2.0 * eps), 2e-3);
  }
}

}  // namespace
}  // namespace cham
