// Learner checkpointing: a power-cycled Chameleon resumes with identical
// predictions, buffers and accuracy.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "core/checkpoint.h"
#include "metrics/experiment.h"
#include "serve/session_store.h"

namespace cham {
namespace {

class CheckpointSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    metrics::ExperimentConfig cfg = metrics::core50_experiment();
    cfg.data.num_classes = 6;
    cfg.data.num_domains = 2;
    cfg.data.train_instances = 5;
    cfg.pretrain_num_classes = 12;
    cfg.pretrain_epochs = 4;
    cfg.learner_lr = 0.02f;
    exp_ = new metrics::Experiment(cfg);
    stream_ = new data::DomainIncrementalStream(cfg.data, cfg.stream);
    exp_->warm_latents(*stream_);
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete exp_;
  }

  static metrics::Experiment* exp_;
  static data::DomainIncrementalStream* stream_;
};

metrics::Experiment* CheckpointSuite::exp_ = nullptr;
data::DomainIncrementalStream* CheckpointSuite::stream_ = nullptr;

TEST_F(CheckpointSuite, RoundTripRestoresPredictionsAndBuffers) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  core::ChameleonLearner original(exp_->env(), cc, 1);
  exp_->run(original, *stream_);
  const auto test_keys = data::all_test_keys(exp_->config().data);
  const auto preds_before = original.predict(test_keys);

  const std::string path = "/tmp/cham_test_checkpoint.bin";
  ASSERT_TRUE(core::save_checkpoint(original, path));

  // "Reboot": a fresh learner with the same config and a different seed
  // (different classifier init) — restore must override all of it.
  core::ChameleonLearner restored(exp_->env(), cc, 99);
  ASSERT_TRUE(core::load_checkpoint(restored, path));

  EXPECT_EQ(restored.predict(test_keys), preds_before);
  EXPECT_EQ(restored.short_term().size(), original.short_term().size());
  EXPECT_EQ(restored.long_term().size(), original.long_term().size());
  for (int64_t c = 0; c < exp_->config().data.num_classes; ++c) {
    EXPECT_EQ(restored.long_term().class_count(c),
              original.long_term().class_count(c));
  }

  std::remove(path.c_str());
}

TEST_F(CheckpointSuite, RestoredLearnerKeepsLearning) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  core::ChameleonLearner original(exp_->env(), cc, 2);
  // Train on the first half, checkpoint, resume on the second half.
  const auto& batches = stream_->batches();
  const size_t half = batches.size() / 2;
  for (size_t i = 0; i < half; ++i) original.observe(batches[i]);

  const std::string path = "/tmp/cham_test_checkpoint2.bin";
  ASSERT_TRUE(core::save_checkpoint(original, path));
  core::ChameleonLearner resumed(exp_->env(), cc, 77);
  ASSERT_TRUE(core::load_checkpoint(resumed, path));
  for (size_t i = half; i < batches.size(); ++i) resumed.observe(batches[i]);

  const double acc = exp_->evaluate(resumed).acc_all;
  EXPECT_GT(acc, 100.0 / 6.0);  // above chance after the resumed half
  std::remove(path.c_str());
}

// The serving-runtime contract (src/serve/): a learner evicted mid-stream
// through the SessionStore and restored later continues the stream
// BIT-IDENTICALLY to a run that was never interrupted — including the
// mid-window preference counters and the staged LT burst cursor, whose loss
// would silently change every subsequent replay draw.
TEST_F(CheckpointSuite, MidStreamResumeViaSessionStoreIsBitIdentical) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  cc.lt_period_h = 4;  // short period so the 6-batch stream spans a burst
  const auto& batches = stream_->batches();
  // Cut INSIDE an LT period (not on a multiple of h) and inside a learning
  // window, so the staged burst cursor and window counters are mid-flight.
  const size_t cut = static_cast<size_t>(cc.lt_period_h) + 1;
  ASSERT_LT(cut, batches.size());

  core::ChameleonLearner uninterrupted(exp_->env(), cc, 5);
  for (const auto& b : batches) uninterrupted.observe(b);

  core::ChameleonLearner first_half(exp_->env(), cc, 5);
  for (size_t i = 0; i < cut; ++i) first_half.observe(batches[i]);
  EXPECT_GT(first_half.preferences().window_seen(), 0)
      << "cut point must land mid-window for this test to bite";

  serve::SessionStore store("/tmp/cham_test_midstream");
  store.clear();
  ASSERT_TRUE(store.save(/*session_id=*/1, first_half));

  core::ChameleonLearner resumed(exp_->env(), cc, 4242);  // different seed
  ASSERT_TRUE(store.load(1, resumed));
  EXPECT_EQ(resumed.steps_observed(), static_cast<int64_t>(cut));
  EXPECT_EQ(resumed.preferences().window_seen(),
            first_half.preferences().window_seen());
  EXPECT_EQ(resumed.preferences().samples_seen(),
            first_half.preferences().samples_seen());
  EXPECT_EQ(resumed.preferences().recalibrations(),
            first_half.preferences().recalibrations());
  for (size_t i = cut; i < batches.size(); ++i) resumed.observe(batches[i]);

  // Predictions, head weights, replay stores and the traffic ledger all
  // match the never-interrupted run exactly.
  const auto test_keys = data::all_test_keys(exp_->config().data);
  EXPECT_EQ(resumed.predict(test_keys), uninterrupted.predict(test_keys));
  auto pa = uninterrupted.head().params();
  auto pb = resumed.head().params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                          static_cast<size_t>(pa[i]->value.numel()) *
                              sizeof(float)),
              0)
        << "head param " << i << " diverged after resume";
  }
  ASSERT_EQ(resumed.short_term().size(), uninterrupted.short_term().size());
  for (int64_t i = 0; i < resumed.short_term().size(); ++i) {
    const auto& sa = uninterrupted.short_term().buffer().item(i);
    const auto& sb = resumed.short_term().buffer().item(i);
    EXPECT_EQ(sa.label, sb.label);
    EXPECT_EQ(std::memcmp(sa.latent.data(), sb.latent.data(),
                          static_cast<size_t>(sa.latent.numel()) *
                              sizeof(float)),
              0)
        << "ST slot " << i << " diverged after resume";
  }
  const auto la = uninterrupted.long_term().all_samples();
  const auto lb = resumed.long_term().all_samples();
  ASSERT_EQ(la.size(), lb.size());
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].label, lb[i].label);
    EXPECT_EQ(std::memcmp(la[i].latent.data(), lb[i].latent.data(),
                          static_cast<size_t>(la[i].latent.numel()) *
                              sizeof(float)),
              0)
        << "LT slot " << i << " diverged after resume";
  }
  EXPECT_EQ(resumed.preferences().delta_k(),
            uninterrupted.preferences().delta_k());
  EXPECT_EQ(resumed.preferences().window_seen(),
            uninterrupted.preferences().window_seen());
  EXPECT_EQ(resumed.stats().onchip_bytes, uninterrupted.stats().onchip_bytes);
  EXPECT_EQ(resumed.stats().offchip_bytes,
            uninterrupted.stats().offchip_bytes);
  store.clear();
}

TEST_F(CheckpointSuite, RejectsMissingOrCorrupt) {
  core::ChameleonConfig cc;
  core::ChameleonLearner learner(exp_->env(), cc, 3);
  EXPECT_FALSE(core::load_checkpoint(learner, "/tmp/nope_checkpoint.bin"));

  const std::string path = "/tmp/cham_test_checkpoint3.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_FALSE(core::load_checkpoint(learner, path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cham
