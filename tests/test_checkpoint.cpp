// Learner checkpointing: a power-cycled Chameleon resumes with identical
// predictions, buffers and accuracy.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/checkpoint.h"
#include "metrics/experiment.h"

namespace cham {
namespace {

class CheckpointSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    metrics::ExperimentConfig cfg = metrics::core50_experiment();
    cfg.data.num_classes = 6;
    cfg.data.num_domains = 2;
    cfg.data.train_instances = 5;
    cfg.pretrain_num_classes = 12;
    cfg.pretrain_epochs = 4;
    cfg.learner_lr = 0.02f;
    exp_ = new metrics::Experiment(cfg);
    stream_ = new data::DomainIncrementalStream(cfg.data, cfg.stream);
    exp_->warm_latents(*stream_);
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete exp_;
  }

  static metrics::Experiment* exp_;
  static data::DomainIncrementalStream* stream_;
};

metrics::Experiment* CheckpointSuite::exp_ = nullptr;
data::DomainIncrementalStream* CheckpointSuite::stream_ = nullptr;

TEST_F(CheckpointSuite, RoundTripRestoresPredictionsAndBuffers) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  core::ChameleonLearner original(exp_->env(), cc, 1);
  exp_->run(original, *stream_);
  const auto test_keys = data::all_test_keys(exp_->config().data);
  const auto preds_before = original.predict(test_keys);

  const std::string path = "/tmp/cham_test_checkpoint.bin";
  ASSERT_TRUE(core::save_checkpoint(original, path));

  // "Reboot": a fresh learner with the same config and a different seed
  // (different classifier init) — restore must override all of it.
  core::ChameleonLearner restored(exp_->env(), cc, 99);
  ASSERT_TRUE(core::load_checkpoint(restored, path));

  EXPECT_EQ(restored.predict(test_keys), preds_before);
  EXPECT_EQ(restored.short_term().size(), original.short_term().size());
  EXPECT_EQ(restored.long_term().size(), original.long_term().size());
  for (int64_t c = 0; c < exp_->config().data.num_classes; ++c) {
    EXPECT_EQ(restored.long_term().class_count(c),
              original.long_term().class_count(c));
  }

  std::remove(path.c_str());
  std::remove((path + ".head").c_str());
}

TEST_F(CheckpointSuite, RestoredLearnerKeepsLearning) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  core::ChameleonLearner original(exp_->env(), cc, 2);
  // Train on the first half, checkpoint, resume on the second half.
  const auto& batches = stream_->batches();
  const size_t half = batches.size() / 2;
  for (size_t i = 0; i < half; ++i) original.observe(batches[i]);

  const std::string path = "/tmp/cham_test_checkpoint2.bin";
  ASSERT_TRUE(core::save_checkpoint(original, path));
  core::ChameleonLearner resumed(exp_->env(), cc, 77);
  ASSERT_TRUE(core::load_checkpoint(resumed, path));
  for (size_t i = half; i < batches.size(); ++i) resumed.observe(batches[i]);

  const double acc = exp_->evaluate(resumed).acc_all;
  EXPECT_GT(acc, 100.0 / 6.0);  // above chance after the resumed half
  std::remove(path.c_str());
  std::remove((path + ".head").c_str());
}

TEST_F(CheckpointSuite, RejectsMissingOrCorrupt) {
  core::ChameleonConfig cc;
  core::ChameleonLearner learner(exp_->env(), cc, 3);
  EXPECT_FALSE(core::load_checkpoint(learner, "/tmp/nope_checkpoint.bin"));

  const std::string path = "/tmp/cham_test_checkpoint3.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_FALSE(core::load_checkpoint(learner, path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cham
