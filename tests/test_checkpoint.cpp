// Learner checkpointing: a power-cycled Chameleon resumes with identical
// predictions, buffers and accuracy.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "core/checkpoint.h"
#include "metrics/experiment.h"
#include "serve/session_store.h"

namespace cham {
namespace {

class CheckpointSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    metrics::ExperimentConfig cfg = metrics::core50_experiment();
    cfg.data.num_classes = 6;
    cfg.data.num_domains = 2;
    cfg.data.train_instances = 5;
    cfg.pretrain_num_classes = 12;
    cfg.pretrain_epochs = 4;
    cfg.learner_lr = 0.02f;
    exp_ = new metrics::Experiment(cfg);
    stream_ = new data::DomainIncrementalStream(cfg.data, cfg.stream);
    exp_->warm_latents(*stream_);
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete exp_;
  }

  static metrics::Experiment* exp_;
  static data::DomainIncrementalStream* stream_;
};

metrics::Experiment* CheckpointSuite::exp_ = nullptr;
data::DomainIncrementalStream* CheckpointSuite::stream_ = nullptr;

TEST_F(CheckpointSuite, RoundTripRestoresPredictionsAndBuffers) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  core::ChameleonLearner original(exp_->env(), cc, 1);
  exp_->run(original, *stream_);
  const auto test_keys = data::all_test_keys(exp_->config().data);
  const auto preds_before = original.predict(test_keys);

  const std::string path = "/tmp/cham_test_checkpoint.bin";
  ASSERT_TRUE(core::save_checkpoint(original, path));

  // "Reboot": a fresh learner with the same config and a different seed
  // (different classifier init) — restore must override all of it.
  core::ChameleonLearner restored(exp_->env(), cc, 99);
  ASSERT_TRUE(core::load_checkpoint(restored, path));

  EXPECT_EQ(restored.predict(test_keys), preds_before);
  EXPECT_EQ(restored.short_term().size(), original.short_term().size());
  EXPECT_EQ(restored.long_term().size(), original.long_term().size());
  for (int64_t c = 0; c < exp_->config().data.num_classes; ++c) {
    EXPECT_EQ(restored.long_term().class_count(c),
              original.long_term().class_count(c));
  }

  std::remove(path.c_str());
}

TEST_F(CheckpointSuite, RestoredLearnerKeepsLearning) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  core::ChameleonLearner original(exp_->env(), cc, 2);
  // Train on the first half, checkpoint, resume on the second half.
  const auto& batches = stream_->batches();
  const size_t half = batches.size() / 2;
  for (size_t i = 0; i < half; ++i) original.observe(batches[i]);

  const std::string path = "/tmp/cham_test_checkpoint2.bin";
  ASSERT_TRUE(core::save_checkpoint(original, path));
  core::ChameleonLearner resumed(exp_->env(), cc, 77);
  ASSERT_TRUE(core::load_checkpoint(resumed, path));
  for (size_t i = half; i < batches.size(); ++i) resumed.observe(batches[i]);

  const double acc = exp_->evaluate(resumed).acc_all;
  EXPECT_GT(acc, 100.0 / 6.0);  // above chance after the resumed half
  std::remove(path.c_str());
}

// The serving-runtime contract (src/serve/): a learner evicted mid-stream
// through the SessionStore and restored later continues the stream
// BIT-IDENTICALLY to a run that was never interrupted — including the
// mid-window preference counters and the staged LT burst cursor, whose loss
// would silently change every subsequent replay draw.
TEST_F(CheckpointSuite, MidStreamResumeViaSessionStoreIsBitIdentical) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  cc.lt_period_h = 4;  // short period so the 6-batch stream spans a burst
  const auto& batches = stream_->batches();
  // Cut INSIDE an LT period (not on a multiple of h) and inside a learning
  // window, so the staged burst cursor and window counters are mid-flight.
  const size_t cut = static_cast<size_t>(cc.lt_period_h) + 1;
  ASSERT_LT(cut, batches.size());

  core::ChameleonLearner uninterrupted(exp_->env(), cc, 5);
  for (const auto& b : batches) uninterrupted.observe(b);

  core::ChameleonLearner first_half(exp_->env(), cc, 5);
  for (size_t i = 0; i < cut; ++i) first_half.observe(batches[i]);
  EXPECT_GT(first_half.preferences().window_seen(), 0)
      << "cut point must land mid-window for this test to bite";

  serve::SessionStore store("/tmp/cham_test_midstream");
  store.clear();
  ASSERT_TRUE(store.save(/*session_id=*/1, first_half));

  core::ChameleonLearner resumed(exp_->env(), cc, 4242);  // different seed
  ASSERT_TRUE(store.load(1, resumed));
  EXPECT_EQ(resumed.steps_observed(), static_cast<int64_t>(cut));
  EXPECT_EQ(resumed.preferences().window_seen(),
            first_half.preferences().window_seen());
  EXPECT_EQ(resumed.preferences().samples_seen(),
            first_half.preferences().samples_seen());
  EXPECT_EQ(resumed.preferences().recalibrations(),
            first_half.preferences().recalibrations());
  for (size_t i = cut; i < batches.size(); ++i) resumed.observe(batches[i]);

  // Predictions, head weights, replay stores and the traffic ledger all
  // match the never-interrupted run exactly.
  const auto test_keys = data::all_test_keys(exp_->config().data);
  EXPECT_EQ(resumed.predict(test_keys), uninterrupted.predict(test_keys));
  auto pa = uninterrupted.head().params();
  auto pb = resumed.head().params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                          static_cast<size_t>(pa[i]->value.numel()) *
                              sizeof(float)),
              0)
        << "head param " << i << " diverged after resume";
  }
  ASSERT_EQ(resumed.short_term().size(), uninterrupted.short_term().size());
  for (int64_t i = 0; i < resumed.short_term().size(); ++i) {
    const auto& sta = uninterrupted.short_term().store();
    const auto& stb = resumed.short_term().store();
    EXPECT_EQ(sta.label(i), stb.label(i));
    EXPECT_EQ(std::memcmp(sta.row(i), stb.row(i),
                          static_cast<size_t>(sta.row_numel()) *
                              sizeof(float)),
              0)
        << "ST slot " << i << " diverged after resume";
  }
  const auto la = uninterrupted.long_term().all_samples();
  const auto lb = resumed.long_term().all_samples();
  ASSERT_EQ(la.size(), lb.size());
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].label, lb[i].label);
    EXPECT_EQ(std::memcmp(la[i].latent.data(), lb[i].latent.data(),
                          static_cast<size_t>(la[i].latent.numel()) *
                              sizeof(float)),
              0)
        << "LT slot " << i << " diverged after resume";
  }
  EXPECT_EQ(resumed.preferences().delta_k(),
            uninterrupted.preferences().delta_k());
  EXPECT_EQ(resumed.preferences().window_seen(),
            uninterrupted.preferences().window_seen());
  EXPECT_EQ(resumed.stats().onchip_bytes, uninterrupted.stats().onchip_bytes);
  EXPECT_EQ(resumed.stats().offchip_bytes,
            uninterrupted.stats().offchip_bytes);
  store.clear();
}

// Reduced-precision blobs: smaller, self-describing, and loadable. The
// bit-exact contract is fp32-only; int8 trades exactness for size, so here
// we check structure survives and the blob shrinks.
TEST_F(CheckpointSuite, QuantizedBlobIsSmallerAndLoads) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  core::ChameleonLearner learner(exp_->env(), cc, 6);
  for (const auto& b : stream_->batches()) learner.observe(b);

  core::ByteBuf fp32_blob, int8_blob;
  {
    core::ByteBufWriter os(fp32_blob);
    ASSERT_TRUE(learner.save_state(os, quant::Precision::kFp32));
  }
  {
    core::ByteBufWriter os(int8_blob);
    ASSERT_TRUE(learner.save_state(os, quant::Precision::kInt8));
  }
  EXPECT_LT(int8_blob.size(), fp32_blob.size());

  core::ChameleonLearner restored(exp_->env(), cc, 1234);
  core::ByteBufReader is(int8_blob.data(), int8_blob.size());
  ASSERT_TRUE(restored.load_state(is));
  EXPECT_EQ(restored.steps_observed(), learner.steps_observed());
  ASSERT_EQ(restored.short_term().size(), learner.short_term().size());
  for (int64_t i = 0; i < restored.short_term().size(); ++i) {
    EXPECT_EQ(restored.short_term().store().label(i),
              learner.short_term().store().label(i));
  }
  EXPECT_EQ(restored.long_term().size(), learner.long_term().size());
  // Head weights are fp32 always, quantization applies to latents only.
  auto pa = learner.head().params();
  auto pb = restored.head().params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                          static_cast<size_t>(pa[i]->value.numel()) *
                              sizeof(float)),
              0)
        << "head param " << i << " not preserved";
  }
  // The restored learner keeps serving.
  const auto test_keys = data::all_test_keys(exp_->config().data);
  EXPECT_EQ(restored.predict(test_keys).size(), test_keys.size());
}

TEST_F(CheckpointSuite, RejectsMissingOrCorrupt) {
  core::ChameleonConfig cc;
  core::ChameleonLearner learner(exp_->env(), cc, 3);
  EXPECT_FALSE(core::load_checkpoint(learner, "/tmp/nope_checkpoint.bin"));

  const std::string path = "/tmp/cham_test_checkpoint3.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_FALSE(core::load_checkpoint(learner, path));
  std::remove(path.c_str());
}

// ------------------------------------------------------------ CHS3 deltas
//
// The delta frames the write-behind eviction pipeline writes between full
// blobs (core/checkpoint.h). Pure byte-level tests; the end-to-end replay
// path is covered in tests/test_serve.cpp.

core::ByteBuf to_buf(const std::string& s) {
  return core::ByteBuf(s.begin(), s.end());
}

TEST(DeltaSuite, ChunkDeltaOfIdenticalBlobsIsNearEmpty) {
  const core::ByteBuf blob = to_buf(std::string(4096, 'x'));
  const core::ByteBuf frame = core::encode_chunk_delta(
      blob.data(), blob.size(), blob.data(), blob.size(), /*chunk_bytes=*/256);
  EXPECT_TRUE(core::is_delta_blob(frame.data(), frame.size()));
  // Header + chunk params only: no dirty chunks.
  EXPECT_LT(frame.size(), 64u);
  core::ByteBuf out;
  ASSERT_TRUE(core::apply_chunk_delta(blob.data(), blob.size(), frame.data(),
                                      frame.size(), out));
  EXPECT_EQ(std::string(out.begin(), out.end()),
            std::string(blob.begin(), blob.end()));
}

TEST(DeltaSuite, ChunkDeltaReconstructsScatteredMutationsAndGrowth) {
  std::string base_s(5000, 'a');
  std::string next_s = base_s;
  next_s[3] = 'B';       // chunk 0
  next_s[1290] = 'C';    // chunk 5
  next_s[4999] = 'D';    // last chunk
  next_s += std::string(700, 'E');  // length change dirties the tail
  const core::ByteBuf base = to_buf(base_s);
  const core::ByteBuf next = to_buf(next_s);

  const core::ByteBuf frame = core::encode_chunk_delta(
      base.data(), base.size(), next.data(), next.size(), 256);
  EXPECT_LT(frame.size(), next.size() / 2) << "delta should be much smaller";

  core::DeltaHeader h;
  ASSERT_TRUE(core::read_delta_header(frame.data(), frame.size(), h));
  EXPECT_EQ(h.kind, core::DeltaKind::kChunkDiff);
  EXPECT_EQ(h.base_len, base.size());
  EXPECT_EQ(h.next_len, next.size());
  EXPECT_EQ(h.base_hash, core::blob_hash(base.data(), base.size()));
  EXPECT_EQ(h.next_hash, core::blob_hash(next.data(), next.size()));

  core::ByteBuf out;
  ASSERT_TRUE(core::apply_chunk_delta(base.data(), base.size(), frame.data(),
                                      frame.size(), out));
  ASSERT_EQ(out.size(), next.size());
  EXPECT_EQ(std::memcmp(out.data(), next.data(), next.size()), 0);
}

TEST(DeltaSuite, ChunkDeltaRejectsWrongOrStaleBase) {
  const core::ByteBuf base = to_buf(std::string(2048, 'p'));
  core::ByteBuf next = base;
  next[100] = 'q';
  const core::ByteBuf frame = core::encode_chunk_delta(
      base.data(), base.size(), next.data(), next.size(), 256);

  // A different base (same length) must be refused, not silently patched.
  const core::ByteBuf wrong = to_buf(std::string(2048, 'z'));
  core::ByteBuf out;
  EXPECT_FALSE(core::apply_chunk_delta(wrong.data(), wrong.size(),
                                       frame.data(), frame.size(), out));
  // Truncated frames are malformed, not fatal.
  EXPECT_FALSE(core::apply_chunk_delta(base.data(), base.size(), frame.data(),
                                       frame.size() / 2, out));
  // The real base still applies.
  EXPECT_TRUE(core::apply_chunk_delta(base.data(), base.size(), frame.data(),
                                      frame.size(), out));
}

TEST(DeltaSuite, OpLogRoundTripAndHeader) {
  std::vector<data::ServeOp> ops(3);
  ops[0].predict = false;
  ops[0].batch.keys = {{1, 0, 2, false}, {3, 1, 4, false}};
  ops[0].batch.labels = {1, 3};
  ops[0].batch.domain = 1;
  ops[1].predict = true;
  ops[1].keys = {{2, 0, 0, true}, {5, 1, 1, true}, {0, 0, 3, true}};
  ops[2].predict = false;
  ops[2].batch.keys = {{4, 1, 0, false}};
  ops[2].batch.labels = {4};
  ops[2].batch.domain = 0;

  core::DeltaHeader h;
  h.kind = core::DeltaKind::kOpLog;
  h.base_hash = 0x1111;
  h.base_len = 22;
  h.next_hash = 0x2222;
  h.next_len = 33;
  const core::ByteBuf frame = core::encode_op_log(h, ops);
  EXPECT_TRUE(core::is_delta_blob(frame.data(), frame.size()));

  core::DeltaHeader g;
  ASSERT_TRUE(core::read_delta_header(frame.data(), frame.size(), g));
  EXPECT_EQ(g.kind, core::DeltaKind::kOpLog);
  EXPECT_EQ(g.base_hash, h.base_hash);
  EXPECT_EQ(g.next_len, h.next_len);

  std::vector<data::ServeOp> back;
  ASSERT_TRUE(core::read_op_log(frame.data(), frame.size(), back));
  ASSERT_EQ(back.size(), ops.size());
  EXPECT_FALSE(back[0].predict);
  EXPECT_EQ(back[0].batch.labels, ops[0].batch.labels);
  EXPECT_EQ(back[0].batch.domain, ops[0].batch.domain);
  ASSERT_EQ(back[0].batch.keys.size(), ops[0].batch.keys.size());
  EXPECT_EQ(back[0].batch.keys[1].class_id, ops[0].batch.keys[1].class_id);
  EXPECT_TRUE(back[1].predict);
  ASSERT_EQ(back[1].keys.size(), ops[1].keys.size());
  EXPECT_EQ(back[1].keys[2].instance_id, ops[1].keys[2].instance_id);
  EXPECT_EQ(back[1].keys[0].test, ops[1].keys[0].test);
  EXPECT_FALSE(back[2].predict);

  // Corrupt/truncated frames are rejected.
  std::vector<data::ServeOp> junk;
  EXPECT_FALSE(core::read_op_log(frame.data(), frame.size() - 3, junk));
  EXPECT_FALSE(core::read_op_log(frame.data(), 4, junk));
}

TEST(DeltaSuite, FullBlobIsNotMistakenForDelta) {
  const std::string not_delta = "CHS2 something something";
  EXPECT_FALSE(core::is_delta_blob(not_delta.data(), not_delta.size()));
  core::DeltaHeader h;
  EXPECT_FALSE(core::read_delta_header(not_delta.data(), not_delta.size(), h));
}

}  // namespace
}  // namespace cham
