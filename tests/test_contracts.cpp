// Contract-layer tests: CHAM_CHECK failures are catchable CheckErrors, the
// full-checks tier traps out-of-range tensor access, and the structural
// audits on the replay-path components (LT, ST, PreferenceTracker, OpStats)
// detect seeded corruption. Tests of tier-gated macros skip themselves when
// the tier compiles the macro out, so the suite stays green under
// -DCHAM_CHECKS=off|cheap|full alike.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "core/long_term_memory.h"
#include "core/op_stats.h"
#include "core/preference_tracker.h"
#include "core/short_term_memory.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "util/check.h"

namespace cham {
namespace {

replay::ReplaySample make_sample(int64_t label, float fill) {
  replay::ReplaySample s;
  s.label = label;
  s.latent = Tensor::full(Shape{{1, 2, 2, 2}}, fill);
  return s;
}

TEST(Contracts, CheckThrowsCatchableLogicError) {
#if CHAM_CHECKS_LEVEL >= 1
  EXPECT_THROW(CHAM_CHECK(false, "forced failure"), util::CheckError);
  // CheckError derives from std::logic_error and carries the message, the
  // condition text, and the source location.
  try {
    CHAM_CHECK(1 == 2, "ledger out of balance");
    FAIL() << "CHAM_CHECK(false) did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ledger out of balance"), std::string::npos) << what;
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
  }
#else
  GTEST_SKIP() << "checks compiled out (-DCHAM_CHECKS=off)";
#endif
}

TEST(Contracts, TensorConstructionAndShapeContracts) {
#if CHAM_CHECKS_LEVEL >= 1
  // Data size must match the shape's numel.
  EXPECT_THROW(Tensor(Shape{{2, 3}}, std::vector<float>(5, 0.0f)),
               util::CheckError);
  // In-place arithmetic rejects shape mismatches (CHAM_CHECK_SHAPE).
  Tensor a{{2, 2}};
  Tensor b{{2, 3}};
  EXPECT_THROW(a += b, util::CheckError);
  EXPECT_THROW(a -= b, util::CheckError);
  // reshaped() must preserve numel.
  EXPECT_THROW((void)a.reshaped(Shape{{5}}), util::CheckError);
#else
  GTEST_SKIP() << "checks compiled out (-DCHAM_CHECKS=off)";
#endif
}

TEST(Contracts, OutOfRangeAccessCaughtInFullMode) {
#if CHAM_CHECKS_LEVEL >= 2
  Tensor t{{2, 3}};
  EXPECT_THROW((void)t[6], util::CheckError);
  EXPECT_THROW((void)t[-1], util::CheckError);
  EXPECT_THROW((void)t.at(2, 0), util::CheckError);
  EXPECT_THROW((void)t.at(0, 3), util::CheckError);
  EXPECT_THROW((void)t.at(0, -1), util::CheckError);
  EXPECT_THROW((void)t.row(2), util::CheckError);
  const Tensor& ct = t;
  EXPECT_THROW((void)ct[100], util::CheckError);
  Tensor u{{1, 2, 2, 2}};
  EXPECT_THROW((void)u.at(0, 2, 0, 0), util::CheckError);
  EXPECT_THROW((void)u.at(0, 0, 0, 2), util::CheckError);
  // Rank contract: 2-D accessor on a 4-D tensor.
  EXPECT_THROW((void)u.at(0, 0), util::CheckError);
  // In-range access still works and is the same storage.
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
#else
  GTEST_SKIP() << "per-element bounds checks require -DCHAM_CHECKS=full";
#endif
}

TEST(Contracts, FiniteScanTrapsNanInFullMode) {
#if CHAM_CHECKS_LEVEL >= 2
  std::vector<float> v = {1.0f, 2.0f,
                          std::numeric_limits<float>::quiet_NaN(), 4.0f};
  try {
    CHAM_CHECK_FINITE(std::span<const float>(v), "unit-test gradient");
    FAIL() << "CHAM_CHECK_FINITE accepted a NaN";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit-test gradient"), std::string::npos) << what;
    EXPECT_NE(what.find("index 2"), std::string::npos) << what;
  }
  std::vector<float> clean = {0.0f, -1.0f, 1e30f};
  EXPECT_NO_THROW(
      CHAM_CHECK_FINITE(std::span<const float>(clean), "clean span"));
#else
  GTEST_SKIP() << "finite scans require -DCHAM_CHECKS=full";
#endif
}

// The audits are plain methods, independent of the check tier: corrupting
// the LT's redundant prototype sum (Eq. 5 numerator) and its cached
// per-class count must both be reported.
TEST(Contracts, LongTermAuditDetectsSeededCorruption) {
  Rng rng(7);
  core::LongTermMemory lt(/*capacity=*/8, /*num_classes=*/4);
  for (int i = 0; i < 6; ++i) {
    lt.insert(make_sample(i % 3, 0.5f + static_cast<float>(i)), rng);
  }
  ASSERT_TRUE(lt.check_invariants().ok())
      << lt.check_invariants().to_string();

  lt.mutable_prototype_sum_for_test(0)[0] += 1.0;  // damage Eq. 5 numerator
  lt.mutable_cached_count_for_test(1) += 2;        // damage occupancy count
  const util::AuditReport report = lt.check_invariants();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.mentions("prototype diverges")) << report.to_string();
  EXPECT_TRUE(report.mentions("cached count")) << report.to_string();
  EXPECT_GE(report.violations.size(), 2u) << report.to_string();
}

TEST(Contracts, LongTermInsertKeepsAuditStateThroughReplacement) {
  Rng rng(11);
  core::LongTermMemory lt(/*capacity=*/4, /*num_classes=*/2);
  // 2x the per-class quota of inserts exercises the replacement path, which
  // must subtract the victim from the running prototype sum.
  for (int i = 0; i < 8; ++i) {
    lt.insert(make_sample(i % 2, static_cast<float>(i)), rng);
  }
  EXPECT_EQ(lt.size(), 4);
  EXPECT_TRUE(lt.check_invariants().ok()) << lt.check_invariants().to_string();
}

TEST(Contracts, ShortTermAuditDetectsCorruptStore) {
  core::ShortTermMemory st(/*capacity=*/4, core::StSamplingConfig{});
  Rng rng(5);
  const auto s0 = make_sample(0, 1.0f);
  const auto s1 = make_sample(1, 2.0f);
  st.store().random_replace_add(s0.key, s0.label, s0.latent, rng);
  st.store().random_replace_add(s1.key, s1.label, s1.latent, rng);
  ASSERT_TRUE(st.check_invariants().ok())
      << st.check_invariants().to_string();

  // A stream counter below the occupancy means some path bypassed the
  // insert funnel (the slab design makes dangling per-slot latents
  // structurally impossible, so the counters and labels are the remaining
  // corruption surface).
  st.store().set_seen(1);
  const util::AuditReport seen_report = st.check_invariants();
  EXPECT_FALSE(seen_report.ok());
  EXPECT_TRUE(seen_report.mentions("below occupancy"))
      << seen_report.to_string();
  st.store().set_seen(2);

  const auto bad = make_sample(-3, 4.0f);
  st.store().random_replace_add(bad.key, bad.label, bad.latent, rng);
  const util::AuditReport label_report = st.check_invariants();
  EXPECT_FALSE(label_report.ok());
  EXPECT_TRUE(label_report.mentions("negative label"))
      << label_report.to_string();
}

TEST(Contracts, PreferenceTrackerAuditCleanOnDrivenStream) {
  core::PreferenceTracker pt(/*num_classes=*/6, /*top_k=*/3,
                             /*learning_window=*/50, /*rho=*/0.5f);
  Rng rng(3);
  // Mid-window sample count (337 = 6 windows + 37) checks the audit holds
  // both right after recalibration and with a partially filled window.
  for (int i = 0; i < 337; ++i) pt.update(rng.uniform_int(6));
  EXPECT_TRUE(pt.check_invariants().ok()) << pt.check_invariants().to_string();
  EXPECT_EQ(pt.samples_seen() >= 300, true);
}

TEST(Contracts, OpStatsLedgerAcceptsBalancedChargesRejectsImbalance) {
  core::OpStats s;
  s.charge_onchip_st_replay(128.0);
  s.charge_onchip_st_write(64.0);
  s.charge_onchip_st_promote(8.0);
  s.charge_offchip_lt_burst(256.0);
  s.charge_offchip_proto(32.0);
  s.charge_offchip_lt_write(16.0);
  EXPECT_TRUE(s.check_invariants().ok()) << s.check_invariants().to_string();
  EXPECT_EQ(s.onchip_component_sum(), s.onchip_bytes);
  EXPECT_EQ(s.offchip_component_sum(), s.offchip_bytes);

  // A component charged past its total is an audit violation...
  core::OpStats bad = s;
  bad.onchip_st_replay_bytes += 1000.0;
  EXPECT_TRUE(bad.check_invariants().mentions("exceed onchip_bytes"));
  // ...as is any negative counter.
  core::OpStats neg;
  neg.weight_bytes = -1.0;
  EXPECT_TRUE(neg.check_invariants().mentions("weight_bytes negative"));
  // Learners that never charge components (baselines) are still clean.
  core::OpStats baseline;
  baseline.onchip_bytes = 512.0;
  baseline.offchip_bytes = 1024.0;
  EXPECT_TRUE(baseline.check_invariants().ok());
}

}  // namespace
}  // namespace cham
