// Unit tests for the tensor substrate: shapes, arithmetic, reductions,
// softmax/log-softmax/KL, and the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cham {
namespace {

TEST(Shape, NumelAndEquality) {
  Shape s{{2, 3, 4}};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s, (Shape{{2, 3, 4}}));
  EXPECT_NE(s, (Shape{{2, 3, 5}}));
  EXPECT_EQ(Shape{}.numel(), 1);  // empty product convention
}

TEST(Tensor, ConstructionZeroInitialised) {
  Tensor t({2, 5});
  EXPECT_EQ(t.numel(), 10);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full(Shape{{3, 3}}, 2.5f);
  EXPECT_EQ(t[4], 2.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[8], -1.0f);
}

TEST(Tensor, IndexedAccess2d4d) {
  Tensor m({2, 3});
  m.at(1, 2) = 7.0f;
  EXPECT_EQ(m[5], 7.0f);
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, Reshape) {
  Tensor t({2, 6});
  t[7] = 3.0f;
  Tensor r = t.reshaped(Shape{{3, 4}});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r[7], 3.0f);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  a += b;
  EXPECT_EQ(a[0], 5.0f);
  a -= b;
  EXPECT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a[1], 4.0f);
}

TEST(Tensor, RowSpan) {
  Tensor m({2, 3});
  m.at(1, 0) = 5.0f;
  auto r = m.row(1);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 5.0f);
}

TEST(Ops, SumMeanMax) {
  Tensor t = Tensor::from({1, -2, 3, 8});
  EXPECT_FLOAT_EQ(ops::sum(t), 10.0f);
  EXPECT_FLOAT_EQ(ops::mean(t), 2.5f);
  EXPECT_FLOAT_EQ(ops::max(t), 8.0f);
}

TEST(Ops, ArgmaxAndDot) {
  Tensor t = Tensor::from({0.1f, 0.9f, 0.3f});
  EXPECT_EQ(ops::argmax(t.span()), 1);
  Tensor u = Tensor::from({1, 2, 3});
  EXPECT_FLOAT_EQ(ops::dot(t.span(), u.span()), 0.1f + 1.8f + 0.9f);
}

TEST(Ops, Norms) {
  Tensor t = Tensor::from({3, 4});
  EXPECT_FLOAT_EQ(ops::sq_norm(t), 25.0f);
  EXPECT_FLOAT_EQ(ops::l2_norm(t), 5.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Tensor logits({3, 5});
  Rng rng(3);
  ops::fill_normal(logits, rng, 0.0f, 3.0f);
  Tensor p = ops::softmax(logits);
  for (int64_t r = 0; r < 3; ++r) {
    double s = 0;
    for (int64_t c = 0; c < 5; ++c) s += p.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxNumericalStability) {
  Tensor logits = Tensor::from({1000.0f, 1000.0f, 999.0f});
  auto p = ops::softmax_row(logits.span());
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[0], p[2]);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-5);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor logits({2, 4});
  Rng rng(4);
  ops::fill_normal(logits, rng, 0.0f, 2.0f);
  Tensor ls = ops::log_softmax(logits);
  Tensor p = ops::softmax(logits);
  for (int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_NEAR(ls[i], std::log(p[i]), 1e-4);
  }
}

TEST(Ops, KlDivergenceProperties) {
  std::vector<float> p = {0.7f, 0.2f, 0.1f};
  std::vector<float> q = {0.1f, 0.2f, 0.7f};
  EXPECT_NEAR(ops::kl_divergence(p, p), 0.0, 1e-7);
  EXPECT_GT(ops::kl_divergence(p, q), 0.0);
  // Asymmetry.
  EXPECT_NE(ops::kl_divergence(p, q), ops::kl_divergence(q, p));
}

TEST(Ops, KlDivergenceHandlesZeros) {
  std::vector<float> p = {1.0f, 0.0f};
  std::vector<float> q = {0.5f, 0.5f};
  const double kl = ops::kl_divergence(p, q);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_NEAR(kl, std::log(2.0), 1e-5);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(8);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) ++seen[static_cast<size_t>(rng.uniform_int(10))];
  for (int c : seen) EXPECT_GT(c, 300);  // ~500 expected each
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SampleWeightedRespectsWeights) {
  Rng rng(10);
  std::vector<double> w = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.sample_weighted(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, SampleWeightedAllZeroReturnsMinusOne) {
  Rng rng(11);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.sample_weighted(w), -1);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(12);
  auto idx = rng.sample_without_replacement(20, 10);
  ASSERT_EQ(idx.size(), 10u);
  std::vector<bool> seen(20, false);
  for (int64_t i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 20);
    EXPECT_FALSE(seen[static_cast<size_t>(i)]);
    seen[static_cast<size_t>(i)] = true;
  }
}

TEST(Rng, SampleWithoutReplacementKGreaterThanN) {
  Rng rng(13);
  auto idx = rng.sample_without_replacement(5, 10);
  EXPECT_EQ(idx.size(), 5u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}


TEST(Ops, Concat0StacksLeadingDim) {
  Tensor a({2, 3}), b({1, 3});
  for (int64_t i = 0; i < 6; ++i) a[i] = float(i);
  for (int64_t i = 0; i < 3; ++i) b[i] = float(100 + i);
  Tensor c = ops::concat0({&a, &b});
  EXPECT_EQ(c.shape(), (Shape{{3, 3}}));
  EXPECT_EQ(c[5], 5.0f);
  EXPECT_EQ(c[6], 100.0f);
}

TEST(Ops, Slice0CopiesRows) {
  Tensor a({4, 2});
  for (int64_t i = 0; i < 8; ++i) a[i] = float(i);
  Tensor s = ops::slice0(a, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{{2, 2}}));
  EXPECT_EQ(s[0], 2.0f);
  EXPECT_EQ(s[3], 5.0f);
  EXPECT_EQ(ops::slice0(a, 2, 2).dim(0), 0);
}

TEST(Ops, Transpose2d) {
  Tensor a = Tensor::from({1, 2, 3, 4, 5, 6}).reshaped(Shape{{2, 3}});
  Tensor t = ops::transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{{3, 2}}));
  EXPECT_EQ(t.at(2, 0), 3.0f);
  EXPECT_EQ(t.at(0, 1), 4.0f);
}

TEST(Ops, TopkIndicesDescending) {
  std::vector<float> v = {0.1f, 5.0f, -2.0f, 3.0f};
  auto idx = ops::topk_indices(v, 2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 3);
  EXPECT_EQ(ops::topk_indices(v, 10).size(), 4u);
}

}  // namespace
}  // namespace cham
