// Integration tests: every learner runs end-to-end on a tiny Domain-IL
// stream, learns something, accounts memory, and records a hardware trace.
// One shared Experiment (built once per process) keeps the suite fast.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/regularization_methods.h"
#include "baselines/replay_methods.h"
#include "baselines/simple_methods.h"
#include "baselines/slda.h"
#include "core/chameleon.h"
#include "metrics/experiment.h"

namespace cham {
namespace {

class LearnerSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    metrics::ExperimentConfig cfg = metrics::core50_experiment();
    cfg.data.num_classes = 8;
    cfg.data.num_domains = 3;
    cfg.data.train_instances = 5;
    cfg.data.test_instances = 2;
    cfg.pretrain_num_classes = 16;
    cfg.pretrain_epochs = 5;
    cfg.stream.num_preferred = 3;
    // The integration stream is only ~12 batches; a gentler step size than
    // the benchmark default keeps every method in its stable regime.
    cfg.learner_lr = 0.02f;
    exp_ = new metrics::Experiment(cfg);
    stream_ = new data::DomainIncrementalStream(cfg.data, cfg.stream);
    exp_->warm_latents(*stream_);
    cfg_ = new metrics::ExperimentConfig(cfg);
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete exp_;
    delete cfg_;
  }

  // Runs a learner over the stream and returns final Acc_all.
  static double run(core::ContinualLearner& learner) {
    exp_->run(learner, *stream_);
    return exp_->evaluate(learner).acc_all;
  }

  static constexpr double kChance = 100.0 / 8.0;  // 12.5%

  static metrics::Experiment* exp_;
  static data::DomainIncrementalStream* stream_;
  static metrics::ExperimentConfig* cfg_;
};

metrics::Experiment* LearnerSuite::exp_ = nullptr;
data::DomainIncrementalStream* LearnerSuite::stream_ = nullptr;
metrics::ExperimentConfig* LearnerSuite::cfg_ = nullptr;

TEST_F(LearnerSuite, ChameleonLearnsAboveChance) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 40;
  cc.learning_window = 60;
  core::ChameleonLearner learner(exp_->env(), cc, 1);
  const double acc = run(learner);
  EXPECT_GT(acc, 2.5 * kChance);
  // Trace populated: on-chip ST traffic must dominate off-chip LT traffic.
  EXPECT_GT(learner.stats().onchip_bytes, learner.stats().offchip_bytes);
  EXPECT_GT(learner.stats().images, 0);
  // Dual stores behaved as configured.
  EXPECT_EQ(learner.short_term().capacity(), 10);
  EXPECT_LE(learner.long_term().size(), 40);
  EXPECT_GT(learner.long_term().size(), 0);
  // Preference tracker saw the whole stream.
  EXPECT_GT(learner.preferences().recalibrations(), 0);
}

TEST_F(LearnerSuite, ChameleonMemorySplitsOnChipOffChip) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 40;
  core::ChameleonLearner learner(exp_->env(), cc, 1);
  EXPECT_EQ(learner.memory_overhead_bytes(),
            learner.st_bytes() + learner.lt_bytes());
  EXPECT_EQ(learner.st_bytes(),
            10 * (exp_->latent_shape().numel() * 4 + 4));
  EXPECT_EQ(learner.lt_bytes(),
            40 * (exp_->latent_shape().numel() * 4 + 4));
}

TEST_F(LearnerSuite, LatentReplayLearnsAboveChance) {
  baselines::LatentReplayLearner learner(exp_->env(), 40, 1);
  EXPECT_GT(run(learner), 2.5 * kChance);
  EXPECT_EQ(learner.buffer().capacity(), 40);
  EXPECT_TRUE(learner.buffer().full());
  // All replay traffic off-chip.
  EXPECT_EQ(learner.stats().onchip_bytes, 0);
  EXPECT_GT(learner.stats().offchip_bytes, 0);
}

TEST_F(LearnerSuite, ErLearnsAndStoresRawImages) {
  baselines::ErLearner learner(exp_->env(), 40, 1);
  EXPECT_GT(run(learner), 2 * kChance);
  // ER's per-sample cost is a raw image, bigger than a latent sample here.
  const int64_t latent_bytes = exp_->latent_shape().numel() * 4 + 4;
  EXPECT_GT(learner.memory_overhead_bytes(), 40 * latent_bytes);
}

TEST_F(LearnerSuite, DerStoresLogitsOnTop) {
  baselines::DerLearner der(exp_->env(), 40, 1);
  baselines::ErLearner er(exp_->env(), 40, 2);
  EXPECT_GT(der.memory_overhead_bytes(), er.memory_overhead_bytes());
  EXPECT_GE(run(der), 1.5 * kChance);
}

TEST_F(LearnerSuite, GssPaysGradientMemoryAndLearns) {
  baselines::GssLearner gss(exp_->env(), 30, 1);
  baselines::ErLearner er(exp_->env(), 30, 2);
  // Paper: ~10x overhead at 50 classes; at this 8-class test scale the
  // gradient adds classes x feature_dim floats on top of every raw image.
  EXPECT_GT(gss.memory_overhead_bytes(), er.memory_overhead_bytes() * 4 / 3);
  EXPECT_GT(run(gss), 1.5 * kChance);
  EXPECT_LE(gss.buffer_size(), 30);
}

TEST_F(LearnerSuite, FinetuneForgetsMoreThanChameleon) {
  baselines::FinetuneLearner ft(exp_->env(), 1);
  core::ChameleonConfig cc;
  cc.lt_capacity = 40;
  core::ChameleonLearner cham(exp_->env(), cc, 1);
  const double ft_acc = run(ft);
  const double cham_acc = run(cham);
  EXPECT_GT(cham_acc, ft_acc);
  EXPECT_EQ(ft.memory_overhead_bytes(), 0);
}

TEST_F(LearnerSuite, JointIsTheUpperBoundRegime) {
  baselines::JointLearner joint(exp_->env(), 1, /*epochs=*/3);
  baselines::FinetuneLearner ft(exp_->env(), 2);
  const double j = run(joint);
  EXPECT_GT(j, run(ft));
  EXPECT_GT(j, 4 * kChance);
}

TEST_F(LearnerSuite, EwcTracksFisherAndLearns) {
  baselines::EwcPlusPlusLearner learner(exp_->env(), 1);
  EXPECT_GT(run(learner), 1.2 * kChance);
  // Parameter-sized overhead (Fisher + anchor).
  EXPECT_EQ(learner.memory_overhead_bytes(), 2 * learner.net_params() * 4);
}

TEST_F(LearnerSuite, LwfDistillsAndLearns) {
  baselines::LwfLearner learner(exp_->env(), 1);
  EXPECT_GT(run(learner), 1.2 * kChance);
  EXPECT_EQ(learner.memory_overhead_bytes(), learner.net_params() * 4);
}

TEST_F(LearnerSuite, SldaLearnsWithTinyMemory) {
  baselines::SldaLearner learner(exp_->env(), 1);
  const double acc = run(learner);
  EXPECT_GT(acc, 3 * kChance);
  // Class means populated for every class seen.
  for (int64_t c = 0; c < 8; ++c) EXPECT_GT(learner.class_count(c), 0);
  // O(d^3)-per-image cost recorded for the device models.
  EXPECT_GT(learner.stats().extra_flops, 0);
}

TEST_F(LearnerSuite, DeterministicAcrossIdenticalSeeds) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 40;
  core::ChameleonLearner a(exp_->env(), cc, 7);
  core::ChameleonLearner b(exp_->env(), cc, 7);
  EXPECT_EQ(run(a), run(b));
}

TEST_F(LearnerSuite, Fp16BufferHalvesMemoryWithoutBreakingLearning) {
  core::ChameleonConfig cc;
  cc.lt_capacity = 40;
  cc.buffer_precision = quant::Precision::kFp16;
  core::ChameleonLearner half(exp_->env(), cc, 1);
  cc.buffer_precision = quant::Precision::kFp32;
  core::ChameleonLearner full(exp_->env(), cc, 1);
  // Storage halves (modulo the 4-byte label per sample).
  EXPECT_LT(half.lt_bytes(), full.lt_bytes() * 6 / 10);
  // ReLU6 latents quantise benignly: accuracy stays in the same regime.
  const double acc_half = run(half);
  const double acc_full = run(full);
  EXPECT_GT(acc_half, acc_full - 15.0);
  EXPECT_GT(acc_half, 2 * kChance);
}

TEST_F(LearnerSuite, LatentMethodsBeatRawAtEqualSampleCount) {
  // The frozen backbone protects latent methods from feature drift; with
  // equal replay sample counts they should not lose to ER by much. (Weak
  // form of the paper's Table I ordering, robust to the tiny test scale.)
  baselines::LatentReplayLearner lr(exp_->env(), 40, 3);
  baselines::ErLearner er(exp_->env(), 40, 3);
  EXPECT_GT(run(lr) + 10.0, run(er));
}

TEST_F(LearnerSuite, ClassIncrementalScenarioRuns) {
  data::ClassIncrementalConfig cic;
  cic.classes_per_task = 4;
  data::ClassIncrementalStream stream(cfg_->data, cic);
  exp_->warm_latents(stream.batches());

  core::ChameleonConfig cc;
  cc.lt_capacity = 24;  // 3 per class at 8 classes
  core::ChameleonLearner learner(exp_->env(), cc, 1);
  exp_->run(learner, stream.batches());
  EXPECT_GT(exp_->evaluate(learner).acc_all, 1.5 * kChance);
  // Every task's classes must have reached the class-balanced LT.
  int64_t covered = 0;
  for (int64_t c = 0; c < 8; ++c) {
    covered += learner.long_term().class_count(c) > 0;
  }
  EXPECT_GE(covered, 6);
}

}  // namespace
}  // namespace cham
