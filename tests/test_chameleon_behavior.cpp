// Algorithm-level tests of ChameleonLearner against a hand-built tiny
// environment (no pretraining): LT burst staging, traffic accounting as a
// function of h, ST composition under preference skew, and the ablation
// switches. Complements the accuracy-level LearnerSuite.
#include <gtest/gtest.h>

#include <memory>

#include "core/chameleon.h"
#include "nn/layers.h"
#include "nn/sequential.h"

namespace cham {
namespace {

// A minimal environment: 3-channel 8x8 images, a 1-conv backbone and a
// pool+linear head over C classes.
struct TinyEnv {
  data::DatasetConfig data_cfg;
  std::unique_ptr<nn::Sequential> f;
  std::unique_ptr<data::LatentCache> latents;
  core::LearnerEnv env;

  explicit TinyEnv(int64_t classes = 6) {
    data_cfg = data::core50_config();
    data_cfg.num_classes = classes;
    data_cfg.num_domains = 3;
    data_cfg.image_hw = 8;
    data_cfg.train_instances = 4;

    Rng rng(1);
    f = std::make_unique<nn::Sequential>();
    f->add(std::make_unique<nn::Conv2d>(3, 4, 8, 8, 3, 2, 1, false, rng));
    f->add(std::make_unique<nn::ReLU>());
    latents = std::make_unique<data::LatentCache>(data_cfg, *f);

    env.data_cfg = &data_cfg;
    env.latents = latents.get();
    env.latent_shape = Shape{{4, 4, 4}};
    env.f_fwd_macs = f->macs_per_sample();
    env.lr = 0.01f;
    env.head_factory = [classes]() {
      Rng hrng(2);
      auto g = std::make_unique<nn::Sequential>();
      g->add(std::make_unique<nn::GlobalAvgPool>());
      g->add(std::make_unique<nn::Linear>(4, classes, hrng));
      return g;
    };
  }

  data::Batch make_batch(std::initializer_list<int64_t> labels,
                         int32_t domain = 0) {
    data::Batch b;
    b.domain = domain;
    int32_t inst = 0;
    for (int64_t y : labels) {
      b.keys.push_back({static_cast<int32_t>(y), domain, inst++ % 4, false});
      b.labels.push_back(y);
    }
    return b;
  }
};

TEST(ChameleonBehavior, StFillsThenSaturates) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.st_capacity = 3;
  cc.lt_capacity = 12;
  core::ChameleonLearner learner(env.env, cc, 1);
  for (int i = 0; i < 2; ++i) learner.observe(env.make_batch({0, 1, 2}));
  EXPECT_EQ(learner.short_term().size(), 2);  // one insert per batch
  for (int i = 0; i < 5; ++i) learner.observe(env.make_batch({3, 4, 5}));
  EXPECT_EQ(learner.short_term().size(), 3);  // saturated at capacity
}

TEST(ChameleonBehavior, LtOnlyUpdatesEveryHBatches) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_period_h = 4;
  cc.lt_capacity = 12;
  core::ChameleonLearner learner(env.env, cc, 1);
  for (int i = 0; i < 3; ++i) learner.observe(env.make_batch({0, 1}));
  EXPECT_EQ(learner.long_term().size(), 0);  // before the first h-cycle
  learner.observe(env.make_batch({2, 3}));   // 4th batch -> LT update
  EXPECT_GT(learner.long_term().size(), 0);
}

TEST(ChameleonBehavior, SmallerHMeansMoreOffchipTraffic) {
  auto traffic_for = [](int64_t h) {
    TinyEnv env;
    core::ChameleonConfig cc;
    cc.lt_period_h = h;
    cc.lt_capacity = 12;
    core::ChameleonLearner learner(env.env, cc, 1);
    for (int i = 0; i < 40; ++i) {
      learner.observe(env.make_batch({0, 1, 2, 3, 4, 5}));
    }
    return learner.stats().offchip_bytes;
  };
  EXPECT_GT(traffic_for(2), traffic_for(10));
}

TEST(ChameleonBehavior, OnchipTrafficScalesWithStCapacity) {
  auto traffic_for = [](int64_t ms) {
    TinyEnv env;
    core::ChameleonConfig cc;
    cc.st_capacity = ms;
    cc.lt_capacity = 12;
    core::ChameleonLearner learner(env.env, cc, 1);
    for (int i = 0; i < 30; ++i) {
      learner.observe(env.make_batch({0, 1, 2}));
    }
    return learner.stats().onchip_bytes;
  };
  EXPECT_GT(traffic_for(8), 2.0 * traffic_for(2));
}

TEST(ChameleonBehavior, LtStaysClassBalancedUnderSkew) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;  // quota 2 per class
  cc.lt_period_h = 2;
  core::ChameleonLearner learner(env.env, cc, 1);
  // Class 0 dominates 10:1; classes 1..5 appear rarely.
  Rng rng(3);
  for (int i = 0; i < 80; ++i) {
    const int64_t rare = 1 + rng.uniform_int(5);
    learner.observe(env.make_batch({0, 0, 0, 0, 0, rare}));
  }
  // The dominant class must not exceed its quota.
  EXPECT_LE(learner.long_term().class_count(0),
            learner.long_term().per_class_quota());
  // At least some rare classes earned slots.
  int64_t rare_covered = 0;
  for (int64_t c = 1; c < 6; ++c) {
    rare_covered += learner.long_term().class_count(c) > 0;
  }
  EXPECT_GE(rare_covered, 3);
}

TEST(ChameleonBehavior, PreferenceTrackerFollowsTheStream) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;
  cc.learning_window = 30;
  cc.top_k = 2;
  core::ChameleonLearner learner(env.env, cc, 1);
  for (int i = 0; i < 10; ++i) {
    learner.observe(env.make_batch({2, 2, 5, 2, 5, 0}));
  }
  EXPECT_TRUE(learner.preferences().is_preferred(2));
  EXPECT_TRUE(learner.preferences().is_preferred(5));
  EXPECT_FALSE(learner.preferences().is_preferred(1));
}

TEST(ChameleonBehavior, AblationSwitchesChangeSelection) {
  // With uncertainty off and affinity off the learner must still run and
  // fall back to uniform ST selection.
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;
  cc.use_user_affinity = false;
  cc.use_uncertainty = false;
  cc.use_prototype_selection = false;
  core::ChameleonLearner learner(env.env, cc, 1);
  for (int i = 0; i < 20; ++i) learner.observe(env.make_batch({0, 1, 2}));
  EXPECT_GT(learner.short_term().size(), 0);
  EXPECT_GT(learner.long_term().size(), 0);
}

TEST(ChameleonBehavior, StatsCountImagesExactly) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;
  core::ChameleonLearner learner(env.env, cc, 1);
  for (int i = 0; i < 7; ++i) learner.observe(env.make_batch({0, 1, 2, 3}));
  EXPECT_EQ(learner.stats().images, 28);
  EXPECT_GT(learner.stats().f_fwd_macs, 0);
  EXPECT_GT(learner.stats().weight_bytes, 0);
}

TEST(ChameleonBehavior, Fp16PrecisionRoundsBufferedLatents) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;
  cc.buffer_precision = quant::Precision::kFp16;
  core::ChameleonLearner learner(env.env, cc, 1);
  learner.observe(env.make_batch({0, 1, 2}));
  ASSERT_GT(learner.short_term().size(), 0);
  // Every buffered latent value must be exactly representable in fp16.
  const auto& s = learner.short_term().buffer().item(0);
  for (int64_t i = 0; i < s.latent.numel(); ++i) {
    EXPECT_EQ(s.latent[i], quant::fp16_round_trip(s.latent[i]));
  }
}

}  // namespace
}  // namespace cham
