// Algorithm-level tests of ChameleonLearner against a hand-built tiny
// environment (no pretraining): LT burst staging, traffic accounting as a
// function of h, ST composition under preference skew, and the ablation
// switches. Complements the accuracy-level LearnerSuite.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/chameleon.h"
#include "nn/layers.h"
#include "nn/sequential.h"
#include "tensor/thread_pool.h"

namespace cham {
namespace {

// A minimal environment: 3-channel 8x8 images, a 1-conv backbone and a
// pool+linear head over C classes.
struct TinyEnv {
  data::DatasetConfig data_cfg;
  std::unique_ptr<nn::Sequential> f;
  std::unique_ptr<data::LatentCache> latents;
  core::LearnerEnv env;

  explicit TinyEnv(int64_t classes = 6) {
    data_cfg = data::core50_config();
    data_cfg.num_classes = classes;
    data_cfg.num_domains = 3;
    data_cfg.image_hw = 8;
    data_cfg.train_instances = 4;

    Rng rng(1);
    f = std::make_unique<nn::Sequential>();
    f->add(std::make_unique<nn::Conv2d>(3, 4, 8, 8, 3, 2, 1, false, rng));
    f->add(std::make_unique<nn::ReLU>());
    latents = std::make_unique<data::LatentCache>(data_cfg, *f);

    env.data_cfg = &data_cfg;
    env.latents = latents.get();
    env.latent_shape = Shape{{4, 4, 4}};
    env.f_fwd_macs = f->macs_per_sample();
    env.lr = 0.01f;
    env.head_factory = [classes]() {
      Rng hrng(2);
      auto g = std::make_unique<nn::Sequential>();
      g->add(std::make_unique<nn::GlobalAvgPool>());
      g->add(std::make_unique<nn::Linear>(4, classes, hrng));
      return g;
    };
  }

  data::Batch make_batch(std::initializer_list<int64_t> labels,
                         int32_t domain = 0) {
    data::Batch b;
    b.domain = domain;
    int32_t inst = 0;
    for (int64_t y : labels) {
      b.keys.push_back({static_cast<int32_t>(y), domain, inst++ % 4, false});
      b.labels.push_back(y);
    }
    return b;
  }
};

TEST(ChameleonBehavior, StFillsThenSaturates) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.st_capacity = 3;
  cc.lt_capacity = 12;
  core::ChameleonLearner learner(env.env, cc, 1);
  for (int i = 0; i < 2; ++i) learner.observe(env.make_batch({0, 1, 2}));
  EXPECT_EQ(learner.short_term().size(), 2);  // one insert per batch
  for (int i = 0; i < 5; ++i) learner.observe(env.make_batch({3, 4, 5}));
  EXPECT_EQ(learner.short_term().size(), 3);  // saturated at capacity
}

TEST(ChameleonBehavior, LtOnlyUpdatesEveryHBatches) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_period_h = 4;
  cc.lt_capacity = 12;
  core::ChameleonLearner learner(env.env, cc, 1);
  for (int i = 0; i < 3; ++i) learner.observe(env.make_batch({0, 1}));
  EXPECT_EQ(learner.long_term().size(), 0);  // before the first h-cycle
  learner.observe(env.make_batch({2, 3}));   // 4th batch -> LT update
  EXPECT_GT(learner.long_term().size(), 0);
}

TEST(ChameleonBehavior, SmallerHMeansMoreOffchipTraffic) {
  auto traffic_for = [](int64_t h) {
    TinyEnv env;
    core::ChameleonConfig cc;
    cc.lt_period_h = h;
    cc.lt_capacity = 12;
    core::ChameleonLearner learner(env.env, cc, 1);
    for (int i = 0; i < 40; ++i) {
      learner.observe(env.make_batch({0, 1, 2, 3, 4, 5}));
    }
    return learner.stats().offchip_bytes;
  };
  EXPECT_GT(traffic_for(2), traffic_for(10));
}

TEST(ChameleonBehavior, OnchipTrafficScalesWithStCapacity) {
  auto traffic_for = [](int64_t ms) {
    TinyEnv env;
    core::ChameleonConfig cc;
    cc.st_capacity = ms;
    cc.lt_capacity = 12;
    core::ChameleonLearner learner(env.env, cc, 1);
    for (int i = 0; i < 30; ++i) {
      learner.observe(env.make_batch({0, 1, 2}));
    }
    return learner.stats().onchip_bytes;
  };
  EXPECT_GT(traffic_for(8), 2.0 * traffic_for(2));
}

TEST(ChameleonBehavior, LtStaysClassBalancedUnderSkew) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;  // quota 2 per class
  cc.lt_period_h = 2;
  core::ChameleonLearner learner(env.env, cc, 1);
  // Class 0 dominates 10:1; classes 1..5 appear rarely.
  Rng rng(3);
  for (int i = 0; i < 80; ++i) {
    const int64_t rare = 1 + rng.uniform_int(5);
    learner.observe(env.make_batch({0, 0, 0, 0, 0, rare}));
  }
  // The dominant class must not exceed its quota.
  EXPECT_LE(learner.long_term().class_count(0),
            learner.long_term().per_class_quota());
  // At least some rare classes earned slots.
  int64_t rare_covered = 0;
  for (int64_t c = 1; c < 6; ++c) {
    rare_covered += learner.long_term().class_count(c) > 0;
  }
  EXPECT_GE(rare_covered, 3);
}

// The staged LT burst: one off-chip fetch of h * lt_replay_per_batch
// samples per h-cycle, consumed lt_replay_per_batch per batch. Burst size,
// per-batch consumption (inferred from training MACs) and the
// charge-once-per-burst property are all pinned here.
TEST(ChameleonBehavior, StagedLtBurstChargedOnceAndConsumedPerBatch) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.st_capacity = 4;
  cc.lt_capacity = 12;  // quota 2 x 6 classes
  cc.lt_period_h = 3;
  cc.lt_replay_per_batch = 2;
  cc.use_prototype_selection = false;  // promotion charges 1 latent/class
  core::ChameleonLearner learner(env.env, cc, 1);
  const int64_t latent_sz =
      replay::latent_sample_bytes(env.env.latent_shape.numel());
  const double g_macs = static_cast<double>(learner.g_fwd_macs());

  // Warm-up: fill ST (capacity 4) and LT (full after two h-cycles).
  for (int i = 0; i < 12; ++i) {
    learner.observe(env.make_batch({0, 1, 2, 3, 4, 5}));
  }
  // At most 4 classes fit the ST at once, so the LT fills unevenly; the
  // burst only needs h * lt_replay_per_batch = 6 entries available.
  ASSERT_GE(learner.long_term().size(), 6);
  ASSERT_EQ(learner.short_term().size(), 4);

  // Steps 13..18: two full h-cycles at steady state.
  for (int step = 13; step <= 18; ++step) {
    const double off0 = learner.stats().offchip_bytes;
    const double bwd0 = learner.stats().g_bwd_macs;
    learner.observe(env.make_batch({0, 1, 2, 3, 4, 5}));
    const double off_delta = learner.stats().offchip_bytes - off0;
    const double rows = (learner.stats().g_bwd_macs - bwd0) / (2.0 * g_macs);

    // Every batch trains on batch (6) + full ST sweep (4) + exactly
    // lt_replay_per_batch (2) staged LT samples — iterative consumption,
    // not h * lt_replay_per_batch all at once.
    EXPECT_DOUBLE_EQ(rows, 12.0) << "step " << step;

    if (step % 3 == 0) {
      // One burst of min(h * lt_replay_per_batch, LT size) = 6 samples,
      // plus the promotion of one ST sample per class present in ST.
      std::set<int64_t> st_classes;
      for (int64_t i = 0; i < learner.short_term().size(); ++i) {
        st_classes.insert(learner.short_term().store().label(i));
      }
      const int64_t expected = (6 + static_cast<int64_t>(st_classes.size())) *
                               latent_sz;
      EXPECT_DOUBLE_EQ(off_delta, static_cast<double>(expected))
          << "step " << step;
    } else {
      // Consuming an already-fetched burst moves no off-chip bytes.
      EXPECT_DOUBLE_EQ(off_delta, 0.0) << "step " << step;
    }
  }
}

// Prototype formation must be charged for the LT entries actually streamed
// (class_count at formation time), never the full per-class quota, and a
// class with a single ST candidate skips the prototype read entirely.
TEST(ChameleonBehavior, PrototypeFormationChargesActualEntriesRead) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.st_capacity = 100;  // no eviction: ST contents stay predictable
  cc.lt_capacity = 12;   // quota 2 x 6 classes
  cc.lt_period_h = 4;
  cc.lt_replay_per_batch = 1;
  core::ChameleonLearner learner(env.env, cc, 1);
  const int64_t latent_sz =
      replay::latent_sample_bytes(env.env.latent_shape.numel());
  auto observe_delta = [&](std::initializer_list<int64_t> labels) {
    const double off0 = learner.stats().offchip_bytes;
    learner.observe(env.make_batch(labels));
    return learner.stats().offchip_bytes - off0;
  };

  // Cycle 1 (steps 1-4): at the LT update the ST holds {0,0,1,1}. Both
  // classes have two candidates but the LT is still empty, so no prototype
  // exists and nothing is streamed; only the two promotions are charged.
  observe_delta({0, 0});
  observe_delta({0, 0});
  observe_delta({1, 1});
  EXPECT_DOUBLE_EQ(observe_delta({1, 1}), static_cast<double>(2 * latent_sz));
  ASSERT_EQ(learner.long_term().class_count(0), 1);
  ASSERT_EQ(learner.long_term().class_count(1), 1);

  // Cycle 2 (steps 5-8): each class prototype now averages ONE stored
  // entry, below the quota of 2 — the quota-based accounting overcharged
  // exactly here. Burst min(h, LT size 2) = 2, prototype reads 1 + 1,
  // promotions 2.
  observe_delta({0, 0});
  observe_delta({0, 0});
  observe_delta({1, 1});
  EXPECT_DOUBLE_EQ(observe_delta({1, 1}), static_cast<double>(6 * latent_sz));

  // Cycle 3 (steps 9-12): four singleton classes join the ST; they promote
  // without forming a prototype. Burst min(4, LT size 4) = 4, prototype
  // reads 2 + 2 (classes 0 and 1 now hold 2 entries each), promotions 6.
  observe_delta({2, 2});
  observe_delta({3, 3});
  observe_delta({4, 4});
  EXPECT_DOUBLE_EQ(observe_delta({5, 5}), static_cast<double>(14 * latent_sz));
}

// End-to-end determinism of the parallel backend: a full training run
// (latent extraction, conv forward, gemm train steps, replay) must produce
// bit-identical head weights at any thread count.
TEST(ChameleonBehavior, ThreadCountDoesNotChangeTraining) {
  const int saved = cham::num_threads();
  auto run = [](int threads) {
    cham::set_num_threads(threads);
    TinyEnv env;
    core::ChameleonConfig cc;
    cc.lt_capacity = 12;
    core::ChameleonLearner learner(env.env, cc, 1);
    for (int i = 0; i < 10; ++i) {
      learner.observe(env.make_batch({0, 1, 2, 3, 4, 5}));
    }
    std::vector<float> params;
    for (nn::Param* p : learner.head().params()) {
      params.insert(params.end(), p->value.data(),
                    p->value.data() + p->value.numel());
    }
    return params;
  };
  const auto p1 = run(1);
  const auto p4 = run(4);
  cham::set_num_threads(saved);
  ASSERT_EQ(p1.size(), p4.size());
  int64_t mismatches = 0;
  for (size_t i = 0; i < p1.size(); ++i) mismatches += p1[i] != p4[i];
  EXPECT_EQ(mismatches, 0);
}

TEST(ChameleonBehavior, PreferenceTrackerFollowsTheStream) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;
  cc.learning_window = 30;
  cc.top_k = 2;
  core::ChameleonLearner learner(env.env, cc, 1);
  for (int i = 0; i < 10; ++i) {
    learner.observe(env.make_batch({2, 2, 5, 2, 5, 0}));
  }
  EXPECT_TRUE(learner.preferences().is_preferred(2));
  EXPECT_TRUE(learner.preferences().is_preferred(5));
  EXPECT_FALSE(learner.preferences().is_preferred(1));
}

TEST(ChameleonBehavior, AblationSwitchesChangeSelection) {
  // With uncertainty off and affinity off the learner must still run and
  // fall back to uniform ST selection.
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;
  cc.use_user_affinity = false;
  cc.use_uncertainty = false;
  cc.use_prototype_selection = false;
  core::ChameleonLearner learner(env.env, cc, 1);
  for (int i = 0; i < 20; ++i) learner.observe(env.make_batch({0, 1, 2}));
  EXPECT_GT(learner.short_term().size(), 0);
  EXPECT_GT(learner.long_term().size(), 0);
}

TEST(ChameleonBehavior, StatsCountImagesExactly) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;
  core::ChameleonLearner learner(env.env, cc, 1);
  for (int i = 0; i < 7; ++i) learner.observe(env.make_batch({0, 1, 2, 3}));
  EXPECT_EQ(learner.stats().images, 28);
  EXPECT_GT(learner.stats().f_fwd_macs, 0);
  EXPECT_GT(learner.stats().weight_bytes, 0);
}

TEST(ChameleonBehavior, Fp16PrecisionRoundsBufferedLatents) {
  TinyEnv env;
  core::ChameleonConfig cc;
  cc.lt_capacity = 12;
  cc.buffer_precision = quant::Precision::kFp16;
  core::ChameleonLearner learner(env.env, cc, 1);
  learner.observe(env.make_batch({0, 1, 2}));
  ASSERT_GT(learner.short_term().size(), 0);
  // Every buffered latent value must be exactly representable in fp16.
  const auto& store = learner.short_term().store();
  const float* row = store.row(0);
  for (int64_t i = 0; i < store.row_numel(); ++i) {
    EXPECT_EQ(row[i], quant::fp16_round_trip(row[i]));
  }
}

}  // namespace
}  // namespace cham
