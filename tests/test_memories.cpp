// Short-term and long-term memory: Eq. 3 uncertainty, Eq. 4 selection,
// Eq. 5 prototypes, Eq. 6 divergence scores, class balancing.
#include <gtest/gtest.h>

#include <cmath>

#include "core/long_term_memory.h"
#include "core/short_term_memory.h"
#include "tensor/ops.h"

namespace cham {
namespace {

Tensor latent_filled(float v) {
  Tensor t({1, 2, 2, 2});
  t.fill(v);
  return t;
}

replay::ReplaySample make_sample(int64_t label, float latent_value) {
  replay::ReplaySample s;
  s.label = label;
  s.key = {static_cast<int32_t>(label), 0, 0, false};
  s.latent = latent_filled(latent_value);
  return s;
}

// ------------------------------------------------------------- short-term

TEST(ShortTermMemory, UncertaintyIsTrueClassLogitMagnitude) {
  Tensor logits({2, 3});
  logits.at(0, 0) = -2.0f;
  logits.at(0, 1) = 5.0f;
  logits.at(1, 2) = 0.25f;
  std::vector<int64_t> labels = {1, 2};
  auto u = core::ShortTermMemory::uncertainty_scores(logits, labels);
  EXPECT_DOUBLE_EQ(u[0], 5.0);
  EXPECT_DOUBLE_EQ(u[1], 0.25);
}

TEST(ShortTermMemory, UncertainSamplesPreferred) {
  // All same class: selection should be driven by U^-1 (Eq. 4, beta term).
  core::ShortTermMemory st(4, {.alpha = 0.0f, .beta = 1.0f});
  core::PreferenceTracker prefs(5, 1, 1000, 0.5f);
  std::vector<int64_t> labels = {0, 0, 0};
  std::vector<double> u = {10.0, 0.1, 10.0};
  auto p = st.selection_probabilities(labels, u, prefs);
  EXPECT_GT(p[1], p[0] * 20);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-9);
}

TEST(ShortTermMemory, PreferredClassFavoredWhenAlphaDominates) {
  core::ShortTermMemory st(4, {.alpha = 1.0f, .beta = 0.0f});
  core::PreferenceTracker prefs(5, 1, 10, 1.0f);
  // Make class 2 strongly preferred.
  for (int i = 0; i < 9; ++i) prefs.update(2);
  prefs.update(0);
  ASSERT_TRUE(prefs.is_preferred(2));
  std::vector<int64_t> labels = {0, 2, 1};
  std::vector<double> u = {1.0, 1.0, 1.0};
  auto p = st.selection_probabilities(labels, u, prefs);
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[1], p[2]);
}

TEST(ShortTermMemory, UpdateReplacesExactlyOneSlot) {
  core::ShortTermMemory st(3, {});
  core::PreferenceTracker prefs(5, 1, 1000, 0.5f);
  Rng rng(1);
  Tensor logits({2, 5});
  logits.fill(1.0f);

  std::vector<replay::ReplaySample> batch = {make_sample(0, 1.0f),
                                             make_sample(1, 2.0f)};
  st.update(batch, logits, prefs, rng);
  EXPECT_EQ(st.size(), 1);
  st.update(batch, logits, prefs, rng);
  st.update(batch, logits, prefs, rng);
  EXPECT_EQ(st.size(), 3);
  st.update(batch, logits, prefs, rng);
  EXPECT_EQ(st.size(), 3);  // capacity reached: replacement, not growth
}

TEST(ShortTermMemory, ZeroWeightsFallBackToUniform) {
  core::ShortTermMemory st(2, {.alpha = 0.0f, .beta = 0.0f});
  core::PreferenceTracker prefs(3, 1, 1000, 0.5f);
  std::vector<int64_t> labels = {0, 1};
  std::vector<double> u = {1.0, 2.0};
  auto p = st.selection_probabilities(labels, u, prefs);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

// -------------------------------------------------------------- long-term

TEST(LongTermMemory, ClassQuotaEnforced) {
  core::LongTermMemory lt(10, 5);  // quota 2 per class
  EXPECT_EQ(lt.per_class_quota(), 2);
  Rng rng(2);
  for (int i = 0; i < 8; ++i) lt.insert(make_sample(1, float(i)), rng);
  EXPECT_EQ(lt.class_count(1), 2);
  EXPECT_EQ(lt.class_count(0), 0);
}

TEST(LongTermMemory, PrototypeIsMeanLatent) {
  core::LongTermMemory lt(10, 2);
  Rng rng(3);
  lt.insert(make_sample(0, 1.0f), rng);
  lt.insert(make_sample(0, 3.0f), rng);
  auto proto = lt.prototype(0);
  ASSERT_TRUE(proto.has_value());
  for (int64_t i = 0; i < proto->numel(); ++i) {
    EXPECT_FLOAT_EQ((*proto)[i], 2.0f);
  }
  EXPECT_FALSE(lt.prototype(1).has_value());
}

TEST(LongTermMemory, DivergenceScoreIsTanhKl) {
  std::vector<float> p = {0.9f, 0.1f};
  std::vector<float> q = {0.5f, 0.5f};
  const double expected = std::tanh(ops::kl_divergence(p, q));
  EXPECT_DOUBLE_EQ(core::LongTermMemory::prototype_divergence(p, q), expected);
  // Identical distributions: zero score.
  EXPECT_DOUBLE_EQ(core::LongTermMemory::prototype_divergence(p, p), 0.0);
}

TEST(LongTermMemory, UpdateSelectsMostDivergentCandidate) {
  core::LongTermMemory lt(4, 2);  // quota 2
  Rng rng(4);
  // Seed class 0 with a prototype whose "prediction" is index 0.
  lt.insert(make_sample(0, 0.0f), rng);
  lt.insert(make_sample(0, 0.0f), rng);

  // Predictor keyed on latent fill value: value 5 -> confident wrong class.
  auto predict = [](const Tensor& latent) {
    std::vector<float> probs(2);
    if (latent[0] > 2.0f) {
      probs = {0.05f, 0.95f};  // diverges from prototype
    } else {
      probs = {0.95f, 0.05f};
    }
    return probs;
  };

  std::vector<replay::ReplaySample> st = {make_sample(0, 1.0f),
                                          make_sample(0, 5.0f)};
  lt.update_from(st, predict, rng);
  // The divergent candidate (fill 5) must now be in class 0's slots.
  bool found = false;
  for (const auto& s : lt.class_slots(0)) {
    if (s.latent[0] == 5.0f) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LongTermMemory, UpdateCoversEveryStClass) {
  core::LongTermMemory lt(9, 3);
  Rng rng(5);
  auto predict = [](const Tensor&) {
    return std::vector<float>{0.34f, 0.33f, 0.33f};
  };
  std::vector<replay::ReplaySample> st = {
      make_sample(0, 1.0f), make_sample(1, 2.0f), make_sample(2, 3.0f),
      make_sample(1, 4.0f)};
  const int64_t updated = lt.update_from(st, predict, rng);
  EXPECT_EQ(updated, 3);
  EXPECT_EQ(lt.class_count(0), 1);
  EXPECT_EQ(lt.class_count(1), 1);
  EXPECT_EQ(lt.class_count(2), 1);
}

TEST(LongTermMemory, SampleReturnsDistinctEntries) {
  core::LongTermMemory lt(12, 3);
  Rng rng(6);
  for (int64_t c = 0; c < 3; ++c) {
    for (int i = 0; i < 4; ++i) {
      lt.insert(make_sample(c, float(c * 10 + i)), rng);
    }
  }
  auto picked = lt.sample(6, rng);
  EXPECT_EQ(picked.size(), 6u);
  std::set<const replay::ReplaySample*> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), picked.size());
}

TEST(LongTermMemory, SampleFromEmptyIsEmpty) {
  core::LongTermMemory lt(10, 5);
  Rng rng(7);
  EXPECT_TRUE(lt.sample(3, rng).empty());
}

}  // namespace
}  // namespace cham
