// ReplayBuffer policies and memory accounting.
#include <gtest/gtest.h>

#include <map>

#include "replay/buffer.h"
#include "replay/memory_accounting.h"

namespace cham {
namespace {

replay::ReplaySample sample_with_label(int64_t label) {
  replay::ReplaySample s;
  s.label = label;
  s.key = {static_cast<int32_t>(label), 0, 0, false};
  return s;
}

TEST(ReplayBuffer, FillsToCapacity) {
  replay::ReplayBuffer buf(5);
  Rng rng(1);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(buf.reservoir_add(sample_with_label(i), rng), i);
  }
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.size(), 5);
}

TEST(ReplayBuffer, ReservoirKeepsUniformSubsample) {
  // Insert a long stream; every element should survive with probability
  // capacity/N. Check the retained indices' mean is near the stream middle.
  const int64_t capacity = 50, stream_len = 5000;
  replay::ReplayBuffer buf(capacity);
  Rng rng(2);
  for (int64_t i = 0; i < stream_len; ++i) {
    buf.reservoir_add(sample_with_label(i), rng);
  }
  double mean = 0;
  for (int64_t i = 0; i < buf.size(); ++i) {
    mean += static_cast<double>(buf.item(i).label);
  }
  mean /= static_cast<double>(buf.size());
  // Uniform over [0, 5000): expectation 2500, std of mean ~ 204.
  EXPECT_NEAR(mean, 2500.0, 700.0);
}

TEST(ReplayBuffer, ReservoirSeenCountsEverything) {
  replay::ReplayBuffer buf(3);
  Rng rng(3);
  for (int64_t i = 0; i < 100; ++i) buf.reservoir_add(sample_with_label(i), rng);
  EXPECT_EQ(buf.seen(), 100);
  EXPECT_EQ(buf.size(), 3);
}

TEST(ReplayBuffer, RandomReplaceAlwaysInserts) {
  replay::ReplayBuffer buf(4);
  Rng rng(4);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_GE(buf.random_replace_add(sample_with_label(i), rng), 0);
  }
  // The newest element is always somewhere in the buffer.
  bool found = false;
  for (int64_t i = 0; i < buf.size(); ++i) {
    if (buf.item(i).label == 49) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ReplayBuffer, SampleIndicesDistinctAndBounded) {
  replay::ReplayBuffer buf(10);
  Rng rng(5);
  for (int64_t i = 0; i < 10; ++i) buf.random_replace_add(sample_with_label(i), rng);
  auto idx = buf.sample_indices(6, rng);
  EXPECT_EQ(idx.size(), 6u);
  std::map<int64_t, int> seen;
  for (int64_t i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 10);
    EXPECT_EQ(seen[i]++, 0);
  }
}

TEST(ReplayBuffer, SampleMoreThanSizeReturnsAll) {
  replay::ReplayBuffer buf(10);
  Rng rng(6);
  for (int64_t i = 0; i < 4; ++i) buf.random_replace_add(sample_with_label(i), rng);
  EXPECT_EQ(buf.sample_indices(10, rng).size(), 4u);
}

TEST(ReplayBuffer, ClearResets) {
  replay::ReplayBuffer buf(4);
  Rng rng(7);
  buf.reservoir_add(sample_with_label(1), rng);
  buf.clear();
  EXPECT_EQ(buf.size(), 0);
  EXPECT_EQ(buf.seen(), 0);
}

// ------------------------------------------------------ memory accounting

TEST(MemoryAccounting, RelativeOrderMatchesPaper) {
  // Per-sample bytes at the paper's operating point: GSS >> ER ~ DER >
  // latent methods (Table I discussion).
  const int64_t hw = 32, classes = 50, latent = 1024, grad_dim = 50 * 256;
  const int64_t er = replay::er_sample_bytes(3, hw);
  const int64_t der = replay::der_sample_bytes(3, hw, classes);
  const int64_t gss = replay::gss_sample_bytes(3, hw, grad_dim);
  const int64_t lat = replay::latent_sample_bytes(latent);
  EXPECT_GT(gss, 4 * er);
  EXPECT_GT(der, er);
  EXPECT_LT(lat, er);
}

TEST(MemoryAccounting, ExactValues) {
  EXPECT_EQ(replay::raw_image_bytes(3, 32), 3 * 32 * 32 * 4);
  EXPECT_EQ(replay::er_sample_bytes(3, 32), 3 * 32 * 32 * 4 + 4);
  EXPECT_EQ(replay::logits_bytes(50), 200);
  EXPECT_EQ(replay::latent_sample_bytes(1024), 4096 + 4);
  EXPECT_EQ(replay::ewc_overhead_bytes(1000), 8000);
  EXPECT_EQ(replay::lwf_overhead_bytes(1000), 4000);
  EXPECT_EQ(replay::slda_overhead_bytes(256, 50),
            (50 * 256 + 2 * 256 * 256) * 4);
}

TEST(MemoryAccounting, BytesToMb) {
  EXPECT_DOUBLE_EQ(replay::bytes_to_mb(1024 * 1024), 1.0);
}

}  // namespace
}  // namespace cham
