// Dense linear algebra: LU solve, inverse, ridge inverse, Cholesky.
#include <gtest/gtest.h>

#include "linalg/linalg.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cham {
namespace {

Tensor random_matrix(int64_t n, uint64_t seed) {
  Tensor m({n, n});
  Rng rng(seed);
  ops::fill_normal(m, rng, 0.0f, 1.0f);
  return m;
}

Tensor random_spd(int64_t n, uint64_t seed) {
  Tensor a = random_matrix(n, seed);
  Tensor at = linalg::transpose(a);
  Tensor spd = matmul(at, a);
  for (int64_t i = 0; i < n; ++i) spd.at(i, i) += 0.5f;
  return spd;
}

TEST(Linalg, IdentityAndTranspose) {
  Tensor eye = linalg::identity(3);
  EXPECT_FLOAT_EQ(eye.at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(eye.at(0, 2), 0.0f);
  Tensor a = Tensor::from({1, 2, 3, 4, 5, 6}).reshaped(Shape{{2, 3}});
  Tensor t = linalg::transpose(a);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
}

TEST(Linalg, LuSolveRecoversSolution) {
  const int64_t n = 8;
  Tensor a = random_spd(n, 1);
  Tensor x_true({n});
  Rng rng(2);
  ops::fill_normal(x_true, rng, 0.0f, 1.0f);
  // b = A x
  Tensor b({n});
  for (int64_t i = 0; i < n; ++i) {
    double acc = 0;
    for (int64_t j = 0; j < n; ++j) acc += double(a.at(i, j)) * x_true[j];
    b[i] = static_cast<float>(acc);
  }
  Tensor x;
  ASSERT_TRUE(linalg::lu_solve(a, b, x));
  EXPECT_LT(ops::max_abs_diff(x, x_true), 1e-3);
}

TEST(Linalg, LuSolveDetectsSingular) {
  Tensor a({2, 2});
  a.at(0, 0) = 1.0f;
  a.at(0, 1) = 2.0f;
  a.at(1, 0) = 2.0f;
  a.at(1, 1) = 4.0f;  // rank 1
  Tensor b = Tensor::from({1, 2});
  Tensor x;
  EXPECT_FALSE(linalg::lu_solve(a, b, x));
}

TEST(Linalg, InverseTimesSelfIsIdentity) {
  const int64_t n = 10;
  Tensor a = random_spd(n, 3);
  Tensor inv;
  ASSERT_TRUE(linalg::inverse(a, inv));
  Tensor prod = matmul(a, inv);
  EXPECT_LT(linalg::frobenius_diff(prod, linalg::identity(n)), 1e-2);
}

TEST(Linalg, InverseDetectsSingular) {
  Tensor a({3, 3});  // all zeros
  Tensor inv;
  EXPECT_FALSE(linalg::inverse(a, inv));
}

TEST(Linalg, RidgeInverseAlwaysSucceedsOnPsd) {
  // Singular PSD matrix: ridge makes it invertible.
  const int64_t n = 6;
  Tensor a({n, n});  // zero matrix is PSD
  Tensor inv = linalg::ridge_inverse(a, 0.1);
  // (0 + 0.1 I)^-1 = 10 I
  EXPECT_NEAR(inv.at(0, 0), 10.0f, 1e-3);
  EXPECT_NEAR(inv.at(1, 0), 0.0f, 1e-4);
}

TEST(Linalg, RidgeInverseMatchesDirectInverse) {
  const int64_t n = 8;
  Tensor a = random_spd(n, 4);
  Tensor reg = a;
  for (int64_t i = 0; i < n; ++i) reg.at(i, i) += 0.01f;
  Tensor direct;
  ASSERT_TRUE(linalg::inverse(reg, direct));
  Tensor ridge = linalg::ridge_inverse(a, 0.01);
  EXPECT_LT(linalg::frobenius_diff(direct, ridge), 1e-2);
}

TEST(Linalg, CholeskyReconstructs) {
  const int64_t n = 7;
  Tensor a = random_spd(n, 5);
  Tensor l;
  ASSERT_TRUE(linalg::cholesky(a, l));
  Tensor lt = linalg::transpose(l);
  Tensor rec = matmul(l, lt);
  EXPECT_LT(linalg::frobenius_diff(rec, a), 1e-2);
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  Tensor a({2, 2});
  a.at(0, 0) = 1.0f;
  a.at(1, 1) = -1.0f;
  Tensor l;
  EXPECT_FALSE(linalg::cholesky(a, l));
}

class RidgeSizes : public ::testing::TestWithParam<int64_t> {};

TEST_P(RidgeSizes, InverseQualityAcrossDims) {
  const int64_t n = GetParam();
  Tensor a = random_spd(n, 100 + static_cast<uint64_t>(n));
  Tensor inv = linalg::ridge_inverse(a, 1e-4);
  Tensor prod = matmul(a, inv);
  // Small ridge: product close to identity relative to dimension.
  EXPECT_LT(linalg::frobenius_diff(prod, linalg::identity(n)) /
                static_cast<double>(n),
            0.05);
}

INSTANTIATE_TEST_SUITE_P(Dims, RidgeSizes,
                         ::testing::Values(2, 4, 16, 32, 64, 128));

}  // namespace
}  // namespace cham
