// google-benchmark microbenchmarks for Chameleon's memory-management path:
// Eq. 4 short-term selection, Eq. 5 prototype formation, Eq. 6 divergence
// scoring, buffer policies, and the systolic/FPGA cost models. These are
// the operations that run once per batch on-device, so they must be cheap
// relative to the training step itself.
#include <benchmark/benchmark.h>

#include "core/long_term_memory.h"
#include "core/preference_tracker.h"
#include "core/short_term_memory.h"
#include "hw/device.h"
#include "hw/fpga_model.h"
#include "hw/systolic.h"
#include "replay/buffer.h"

namespace cham {
namespace {

replay::ReplaySample make_sample(int64_t label, Rng& rng) {
  replay::ReplaySample s;
  s.label = label;
  s.latent = Tensor({1, 128, 2, 2});
  for (int64_t i = 0; i < s.latent.numel(); ++i) {
    s.latent[i] = rng.uniform_f(0.0f, 1.0f);
  }
  return s;
}

void BM_PreferenceTrackerUpdate(benchmark::State& state) {
  core::PreferenceTracker prefs(50, 5, 1500, 0.5f);
  Rng rng(1);
  for (auto _ : state) {
    prefs.update(rng.uniform_int(50));
  }
}
BENCHMARK(BM_PreferenceTrackerUpdate);

void BM_ShortTermSelection(benchmark::State& state) {
  core::ShortTermMemory st(10, {});
  core::PreferenceTracker prefs(50, 5, 100, 0.5f);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) prefs.update(rng.uniform_int(50));
  std::vector<replay::ReplaySample> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(make_sample(i % 50, rng));
  Tensor logits({10, 50});
  for (int64_t i = 0; i < logits.numel(); ++i)
    logits[i] = rng.normal_f(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(st.update(batch, logits, prefs, rng));
  }
}
BENCHMARK(BM_ShortTermSelection);

void BM_PrototypeFormation(benchmark::State& state) {
  const int64_t per_class = state.range(0);
  core::LongTermMemory lt(per_class * 10, 10);
  Rng rng(3);
  for (int64_t c = 0; c < 10; ++c) {
    for (int64_t i = 0; i < per_class; ++i) lt.insert(make_sample(c, rng), rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lt.prototype(3));
  }
}
BENCHMARK(BM_PrototypeFormation)->Arg(2)->Arg(10)->Arg(30);

void BM_LongTermUpdate(benchmark::State& state) {
  core::LongTermMemory lt(100, 50);
  Rng rng(4);
  std::vector<replay::ReplaySample> st;
  for (int i = 0; i < 10; ++i) st.push_back(make_sample(i % 5, rng));
  for (const auto& s : st) lt.insert(s, rng);
  auto predict = [&](const Tensor&) {
    std::vector<float> p(50, 0.02f);
    return p;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(lt.update_from(st, predict, rng));
  }
}
BENCHMARK(BM_LongTermUpdate);

void BM_ReservoirInsert(benchmark::State& state) {
  replay::ReplayBuffer buf(500);
  Rng rng(5);
  int64_t label = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.reservoir_add(make_sample(label++ % 50, rng), rng));
  }
}
BENCHMARK(BM_ReservoirInsert);

void BM_SystolicGemmModel(benchmark::State& state) {
  hw::SystolicArraySim sim({64, 64, 400e6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.gemm(64, 256, 256));
  }
}
BENCHMARK(BM_SystolicGemmModel);

void BM_SystolicOutputStationary(benchmark::State& state) {
  hw::SystolicArraySim sim({64, 64, 400e6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.gemm_output_stationary(64, 256, 256));
  }
}
BENCHMARK(BM_SystolicOutputStationary);

void BM_CostModel(benchmark::State& state) {
  core::OpStats stats;
  stats.images = 1000;
  stats.f_fwd_macs = 2.5e9;
  stats.g_fwd_macs = 5e8;
  stats.g_bwd_macs = 1e9;
  stats.onchip_bytes = 1e7;
  stats.offchip_bytes = 1e6;
  const auto dev = hw::zcu102_fpga();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::estimate_cost(stats, dev, 0.2));
  }
}
BENCHMARK(BM_CostModel);

void BM_FpgaResourceEstimate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::estimate_fpga_resources({}));
  }
}
BENCHMARK(BM_FpgaResourceEstimate);

}  // namespace
}  // namespace cham

BENCHMARK_MAIN();
