// Shared plumbing for the table/figure reproduction binaries: learner
// construction by name, flag parsing, and run-cell aggregation.
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "baselines/regularization_methods.h"
#include "baselines/replay_methods.h"
#include "baselines/simple_methods.h"
#include "baselines/slda.h"
#include "core/chameleon.h"
#include "metrics/experiment.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace cham::bench {

struct Flags {
  int64_t runs = 2;       // seeds per cell (paper uses 10)
  bool quick = false;     // shrink datasets for smoke runs
  int64_t instances = 0;  // override train instances per (class, domain)

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) f.quick = true;
      if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc)
        f.runs = std::atol(argv[++i]);
      if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc)
        f.instances = std::atol(argv[++i]);
    }
    return f;
  }
};

// Applies --quick / --instances to an experiment configuration.
inline void apply_flags(metrics::ExperimentConfig& cfg, const Flags& f) {
  if (f.quick) {
    cfg.data.num_classes = std::min<int64_t>(cfg.data.num_classes, 10);
    cfg.data.num_domains = std::min<int64_t>(cfg.data.num_domains, 4);
    cfg.data.train_instances = 4;
    cfg.pretrain_epochs = 4;
    cfg.pretrain_num_classes = 20;
  }
  if (f.instances > 0) cfg.data.train_instances = f.instances;
  cfg.model.num_classes = cfg.data.num_classes;
}

// Builds one learner instance by row name; buffer_size is ignored by
// non-replay methods. Chameleon's buffer_size sets the long-term capacity
// (its short-term store stays at the paper's 10 samples).
inline std::unique_ptr<core::ContinualLearner> make_learner(
    const std::string& name, core::LearnerEnv env, int64_t buffer_size,
    uint64_t seed) {
  if (name == "Finetuning")
    return std::make_unique<baselines::FinetuneLearner>(env, seed);
  if (name == "JOINT")
    return std::make_unique<baselines::JointLearner>(env, seed);
  if (name == "EWC++")
    return std::make_unique<baselines::EwcPlusPlusLearner>(env, seed);
  if (name == "LwF")
    return std::make_unique<baselines::LwfLearner>(env, seed);
  if (name == "SLDA")
    return std::make_unique<baselines::SldaLearner>(env, seed);
  if (name == "GSS")
    return std::make_unique<baselines::GssLearner>(env, buffer_size, seed);
  if (name == "ER")
    return std::make_unique<baselines::ErLearner>(env, buffer_size, seed);
  if (name == "DER")
    return std::make_unique<baselines::DerLearner>(env, buffer_size, seed);
  if (name == "Latent Replay")
    return std::make_unique<baselines::LatentReplayLearner>(env, buffer_size,
                                                            seed);
  if (name == "Chameleon") {
    core::ChameleonConfig cc;
    cc.lt_capacity = buffer_size;
    return std::make_unique<core::ChameleonLearner>(env, cc, seed);
  }
  std::fprintf(stderr, "unknown learner: %s\n", name.c_str());
  std::abort();
}

// Runs one (method, buffer) cell for `runs` seeds; returns Acc_all stats.
inline metrics::RunningStat run_cell(
    metrics::Experiment& exp, const metrics::ExperimentConfig& cfg,
    const std::string& method, int64_t buffer_size, int64_t runs,
    core::OpStats* stats_out = nullptr) {
  metrics::RunningStat acc;
  for (int64_t run = 0; run < runs; ++run) {
    data::StreamConfig sc = cfg.stream;
    sc.seed = cfg.stream.seed + static_cast<uint64_t>(run) * 1000003;
    data::DomainIncrementalStream stream(cfg.data, sc);
    exp.warm_latents(stream);
    auto learner = make_learner(method, exp.env(), buffer_size,
                                static_cast<uint64_t>(run) + 1);
    exp.run(*learner, stream);
    acc.add(exp.evaluate(*learner).acc_all);
    if (stats_out && run == 0) *stats_out = learner->stats();
  }
  return acc;
}

}  // namespace cham::bench
