// Socket front-end report (writes BENCH_net.json): the wire protocol and
// NetServer measured end to end against the same SessionManager the
// in-process benches drive.
//
// Gates recorded in the JSON artefact:
//   * codec_zero_alloc — encode/decode round-trips of every data-path frame
//     type (OBSERVE, PREDICT, PREDICT_RESULT, PREDICT_BATCH, ERROR) through
//     warm caller-owned buffers perform ZERO heap allocations, measured by
//     the same counting global operator new bench_observe uses. This is the
//     protocol.h steady-state contract: capacity survives clear(), decoders
//     resize into existing storage.
//   * wire_bit_exact  — a Zipf observe/predict schedule submitted through a
//     NetClient over a Unix-domain socket produces bit-identical predictions
//     to the identical schedule submitted in-process (submit_observe /
//     submit_predict against a twin manager with the same seeds). The wire
//     layer is a request source, not an execution path: eviction pressure is
//     on (max_resident << sessions) so restores ride the comparison too.
//   * throughput_ok   — steady-state wire throughput (admitted events/s
//     through the socket, N concurrent client connections, threaded-mode
//     manager) stays above a conservative floor, best-of-3 like
//     bench_serve's wall-clock gates (retries only when the first run
//     misses; a shared box is noisy).
//
//   ./build/bench/bench_net [--events N] [--sessions N] [--out PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/chameleon.h"
#include "metrics/experiment.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "serve/session_store.h"

namespace {

std::atomic<long long> g_heap_allocs{0};
std::atomic<long long> g_heap_bytes{0};

struct HeapSnapshot {
  long long allocs = 0;
  long long bytes = 0;
};

HeapSnapshot heap_now() {
  return {g_heap_allocs.load(std::memory_order_relaxed),
          g_heap_bytes.load(std::memory_order_relaxed)};
}

HeapSnapshot heap_delta(const HeapSnapshot& from) {
  const HeapSnapshot now = heap_now();
  return {now.allocs - from.allocs, now.bytes - from.bytes};
}

void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(static_cast<long long>(n),
                         std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(static_cast<long long>(n),
                         std::memory_order_relaxed);
  const std::size_t rounded = ((n ? n : 1) + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (!p) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace cham;
using core::ChameleonConfig;
using core::ChameleonLearner;

ChameleonConfig learner_config() {
  ChameleonConfig cc;
  cc.lt_capacity = 18;
  return cc;
}

// --- Codec phase: zero steady-state allocations. ------------------------
// One "round" encodes every data-path frame type into a warm WireBuf and
// decodes each back into warm caller-owned outputs, CRC checks included —
// the exact per-frame work NetServer/NetClient do once their buffers have
// seen a frame of each shape.
struct CodecReport {
  long long rounds = 0;
  long long steady_allocs = 0;
  long long steady_bytes = 0;
  double ns_per_round = 0;
};

CodecReport run_codec_phase() {
  data::Batch batch;
  batch.domain = 1;
  for (int i = 0; i < 8; ++i) {
    batch.keys.push_back({static_cast<int32_t>(i % 6), 0,
                          static_cast<int32_t>(i % 4), false});
    batch.labels.push_back(i % 6);
  }
  std::vector<data::ImageKey> keys = batch.keys;
  std::vector<std::vector<data::ImageKey>> pages = {keys, keys};
  std::vector<int64_t> preds = {0, 1, 2, 3, 4, 5, 0, 1};

  net::WireBuf buf;
  data::Batch dec_batch;
  std::vector<data::ImageKey> dec_keys;
  std::vector<std::vector<data::ImageKey>> dec_pages;
  std::vector<int64_t> dec_preds;
  net::ErrorInfo dec_err;

  auto round = [&](uint64_t salt) {
    buf.clear();  // capacity survives: this is the contract under test
    net::encode_observe(buf, 7, salt, batch);
    net::encode_predict(buf, 7, salt + 1, keys);
    net::encode_predict_result(buf, 7, salt + 1, preds);
    net::encode_predict_batch(buf, 7, salt + 2, pages);
    // Short message: fits std::string's inline storage on decode, like the
    // fixed server-side backpressure/shutdown strings.
    net::encode_error(buf, 7, salt + 3, net::ErrCode::kBackpressure, 5,
                      "busy");
    std::size_t off = 0;
    bool ok = true;
    while (off + net::kHeaderBytes <= buf.size()) {
      net::FrameHeader h;
      ok = ok && net::read_header(buf.data() + off, buf.size() - off, h);
      ok = ok && net::header_error(h, net::kDefaultMaxPayload) ==
                     net::kHeaderOk;
      const uint8_t* payload = buf.data() + off + net::kHeaderBytes;
      ok = ok && net::crc32(payload, h.payload_len) == h.payload_crc;
      switch (h.type) {
        case net::MsgType::kObserve:
          ok = ok && net::decode_observe(payload, h.payload_len, dec_batch);
          break;
        case net::MsgType::kPredict:
          ok = ok && net::decode_predict(payload, h.payload_len, dec_keys);
          break;
        case net::MsgType::kPredictResult:
          ok = ok &&
               net::decode_predict_result(payload, h.payload_len, dec_preds);
          break;
        case net::MsgType::kPredictBatch:
          ok = ok &&
               net::decode_predict_batch(payload, h.payload_len, dec_pages);
          break;
        case net::MsgType::kError:
          ok = ok && net::decode_error(payload, h.payload_len, dec_err);
          break;
        default:
          ok = false;
      }
      off += net::kHeaderBytes + h.payload_len;
    }
    return ok && off == buf.size();
  };

  CodecReport r;
  for (uint64_t w = 0; w < 32; ++w) {
    if (!round(w * 16)) {
      r.steady_allocs = -1;  // decode failure: fail the gate loudly
      return r;
    }
  }
  constexpr long long kRounds = 4096;
  const HeapSnapshot before = heap_now();
  const auto t0 = std::chrono::steady_clock::now();
  for (long long i = 0; i < kRounds; ++i) {
    if (!round(static_cast<uint64_t>(1000 + i * 16))) {
      r.steady_allocs = -1;
      return r;
    }
  }
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  const HeapSnapshot d = heap_delta(before);
  r.rounds = kRounds;
  r.steady_allocs = d.allocs;
  r.steady_bytes = d.bytes;
  r.ns_per_round = ns / static_cast<double>(kRounds);
  return r;
}

// --- Shared schedule helpers. -------------------------------------------
const data::Batch& schedule_batch(
    const std::vector<std::vector<data::Batch>>& streams,
    const data::SessionEvent& ev) {
  const auto& pool = streams[static_cast<size_t>(ev.session)];
  return pool[static_cast<size_t>(ev.batch_index) % pool.size()];
}

// In-process reference: the identical retry-until-admitted policy the wire
// client uses, so admission ORDER (which fixes execution order per session)
// matches the wire run exactly. Predict futures collect after the final
// drain; results are order-insensitive to when the drain happens because
// each shard queue is FIFO per session.
std::vector<std::vector<int64_t>> run_in_process(
    serve::SessionManager& mgr,
    const std::vector<std::vector<data::Batch>>& streams,
    const std::vector<data::SessionEvent>& schedule,
    const std::vector<data::ImageKey>& predict_page) {
  std::vector<std::future<std::vector<int64_t>>> futures;
  for (const auto& ev : schedule) {
    const auto sid = static_cast<uint64_t>(ev.session);
    if (ev.predict) {
      std::future<std::vector<int64_t>> f;
      while (!mgr.submit_predict(sid, predict_page, &f).accepted) {
        mgr.drain();
      }
      futures.push_back(std::move(f));
    } else {
      while (!mgr.submit_observe(sid, schedule_batch(streams, ev)).accepted) {
        mgr.drain();
      }
    }
  }
  mgr.drain();
  std::vector<std::vector<int64_t>> preds;
  preds.reserve(futures.size());
  for (auto& f : futures) preds.push_back(f.get());
  return preds;
}

// Wire run: same schedule, blocking round-trips through one NetClient (the
// *_admitted helpers sleep the server's retry_after_ms hint and resubmit,
// mirroring the in-process retry loop above).
std::vector<std::vector<int64_t>> run_over_wire(
    net::NetClient& client,
    const std::vector<std::vector<data::Batch>>& streams,
    const std::vector<data::SessionEvent>& schedule,
    const std::vector<data::ImageKey>& predict_page, bool* ok) {
  std::vector<std::vector<int64_t>> preds;
  for (const auto& ev : schedule) {
    const auto sid = static_cast<uint64_t>(ev.session);
    if (ev.predict) {
      net::Reply r = client.predict_admitted(sid, predict_page);
      if (!r.ok()) *ok = false;
      preds.push_back(std::move(r.preds));
    } else if (!client.observe_admitted(sid, schedule_batch(streams, ev))
                    .ok()) {
      *ok = false;
    }
  }
  return preds;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t events = 160;
  int64_t sessions = 10;
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc)
      events = std::atoll(argv[++i]);
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc)
      sessions = std::atoll(argv[++i]);
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  // Codec phase first: single-threaded, before any server exists, so the
  // counting operator new sees only the codec's own traffic.
  const CodecReport codec = run_codec_phase();
  const bool codec_zero_alloc = codec.steady_allocs == 0;
  std::printf(
      "bench_net: codec %lld rounds (5 frames each), %.0f ns/round, "
      "steady-state allocs %lld (%lld B) -> %s\n",
      codec.rounds, codec.ns_per_round, codec.steady_allocs,
      codec.steady_bytes, codec_zero_alloc ? "PASS" : "FAIL");

  // Same small CORe50-shaped pool as bench_serve / the serve test fixtures
  // (shared pretrain cache).
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  cfg.data.num_classes = 6;
  cfg.data.num_domains = 2;
  cfg.data.train_instances = 5;
  cfg.pretrain_num_classes = 12;
  cfg.pretrain_epochs = 4;
  cfg.learner_lr = 0.02f;
  metrics::Experiment exp(cfg);

  std::vector<std::vector<data::Batch>> streams;
  for (int64_t s = 0; s < sessions; ++s) {
    data::StreamConfig sc = cfg.stream;
    sc.seed = 5000 + static_cast<uint64_t>(s) * 7919;
    data::DomainIncrementalStream stream(cfg.data, sc);
    exp.warm_latents(stream);
    streams.push_back(stream.batches());
  }
  auto factory = [&exp](uint64_t /*session_id*/, uint64_t seed) {
    return std::make_unique<ChameleonLearner>(exp.env(), learner_config(),
                                              seed);
  };
  const auto test_keys = data::all_test_keys(cfg.data);
  const std::vector<data::ImageKey> predict_page(
      test_keys.begin(), test_keys.begin() + test_keys.size() / 2);

  data::MultiUserConfig mc;
  mc.num_sessions = sessions;
  mc.events = events;
  mc.zipf_s = 1.1;
  mc.seed = 13;
  mc.predict_fraction = 0.25;
  const auto schedule = data::make_zipf_schedule(mc);

  serve::ServeConfig base_sc;
  base_sc.num_shards = 2;
  base_sc.max_resident = 4;  // << sessions: restores ride the comparison
  base_sc.queue_capacity = 16;
  base_sc.base_seed = 97;
  base_sc.mode = serve::ServeMode::kDeterministic;

  // --- Bit-exactness: in-process twin vs the wire. ----------------------
  std::printf("bench_net: %lld events over %lld sessions (25%% predicts), "
              "bit-exactness leg...\n",
              static_cast<long long>(events),
              static_cast<long long>(sessions));
  std::vector<std::vector<int64_t>> ref_preds;
  {
    serve::ServeConfig sc = base_sc;
    sc.store_dir = "/tmp/cham_bench_net_ref";
    serve::SessionStore(sc.store_dir).clear();
    serve::SessionManager mgr(sc, factory);
    ref_preds = run_in_process(mgr, streams, schedule, predict_page);
    mgr.flush();
  }
  std::vector<std::vector<int64_t>> wire_preds;
  bool wire_ok = true;
  double echo_rtt_p50_us = 0, echo_rtt_p99_us = 0;
  net::NetStats exact_ns;
  {
    serve::ServeConfig sc = base_sc;
    sc.store_dir = "/tmp/cham_bench_net_wire";
    serve::SessionStore(sc.store_dir).clear();
    serve::SessionManager mgr(sc, factory);
    net::NetConfig nc;
    nc.unix_path = "/tmp/cham_bench_net.sock";
    net::NetServer server(mgr, nc);
    net::NetClient client({net::Transport::kUnix, nc.unix_path, 0});
    wire_preds =
        run_over_wire(client, streams, schedule, predict_page, &wire_ok);
    if (!client.flush().ok()) wire_ok = false;
    // Loopback echo while the server is still up: STATS round-trips touch
    // no learner — encode, socket hop, decode, stats snapshot, reply — so
    // this is the pure per-frame overhead of the wire layer. Informational
    // (wall-clock on a shared box), not gated.
    for (int i = 0; i < 20; ++i) (void)client.stats_json();
    std::vector<double> rtt_us;
    for (int i = 0; i < 200; ++i) {
      const auto e0 = std::chrono::steady_clock::now();
      if (!client.stats_json().ok()) wire_ok = false;
      rtt_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - e0)
                           .count());
    }
    std::sort(rtt_us.begin(), rtt_us.end());
    echo_rtt_p50_us = rtt_us[rtt_us.size() / 2];
    echo_rtt_p99_us = rtt_us[rtt_us.size() * 99 / 100];
    exact_ns = server.stats();
    server.stop();
  }
  const bool wire_bit_exact =
      wire_ok && !ref_preds.empty() && ref_preds == wire_preds;
  std::printf("  wire vs in-process: %zu predict events compared -> %s\n"
              "  loopback echo (STATS round-trip): p50 %.0f us, p99 %.0f us\n",
              ref_preds.size(), wire_bit_exact ? "PASS" : "FAIL",
              echo_rtt_p50_us, echo_rtt_p99_us);

  // --- Throughput: concurrent clients against a threaded-mode manager. --
  // Conservative floor: the in-process serve path clears ~100 events/s on
  // this box (bench_serve); the wire adds framing + socket hops + the
  // blocking-ack observe sequencing, and the floor leaves headroom for a
  // shared-box scheduler. Best-of-3, retries only on a miss.
  constexpr double kThroughputFloor = 30.0;
  constexpr int kClients = 2;
  double best_throughput = 0.0;
  net::NetStats tp_ns;
  for (int attempt = 0;
       attempt < 3 && best_throughput < kThroughputFloor; ++attempt) {
    serve::ServeConfig sc = base_sc;
    sc.mode = serve::ServeMode::kThreaded;
    sc.store_dir = "/tmp/cham_bench_net_tp" + std::to_string(attempt);
    serve::SessionStore(sc.store_dir).clear();
    serve::SessionManager mgr(sc, factory);
    net::NetConfig nc;
    nc.unix_path = "/tmp/cham_bench_net_tp.sock";
    net::NetServer server(mgr, nc);

    std::atomic<long long> done_events{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        net::NetClient client({net::Transport::kUnix, nc.unix_path, 0});
        std::vector<uint64_t> inflight;
        for (size_t i = static_cast<size_t>(c); i < schedule.size();
             i += kClients) {
          const auto& ev = schedule[i];
          const auto sid = static_cast<uint64_t>(ev.session);
          if (ev.predict) {
            // Pipelined: lets the BatchPlanner merge across connections.
            inflight.push_back(client.send_predict(sid, predict_page));
            if (inflight.size() >= 8) {
              for (uint64_t id : inflight) {
                if (client.await_reply(id).ok()) {
                  done_events.fetch_add(1, std::memory_order_relaxed);
                }
              }
              inflight.clear();
            }
          } else if (client
                         .observe_admitted(sid, schedule_batch(streams, ev))
                         .ok()) {
            done_events.fetch_add(1, std::memory_order_relaxed);
          }
        }
        for (uint64_t id : inflight) {
          if (client.await_reply(id).ok()) {
            done_events.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const double tp =
        ms > 0 ? 1000.0 * static_cast<double>(done_events.load()) / ms : 0.0;
    std::printf("  throughput attempt %d: %lld events in %.1f ms "
                "(%.1f events/s)\n",
                attempt, done_events.load(), ms, tp);
    if (tp > best_throughput) {
      best_throughput = tp;
      tp_ns = server.stats();
    }
    server.stop();
    mgr.flush();
  }
  const bool throughput_ok = best_throughput >= kThroughputFloor;
  std::printf(
      "  gates: codec_zero_alloc %s, wire_bit_exact %s, "
      "throughput(>=%.0f/s) %s (best %.1f)\n",
      codec_zero_alloc ? "PASS" : "FAIL", wire_bit_exact ? "PASS" : "FAIL",
      kThroughputFloor, throughput_ok ? "PASS" : "FAIL", best_throughput);

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"bench_net\",\n"
               "  \"sessions\": %lld,\n  \"events\": %lld,\n"
               "  \"zipf_s\": %.2f,\n  \"predict_fraction\": %.2f,\n"
               "  \"clients\": %d,\n",
               static_cast<long long>(sessions),
               static_cast<long long>(events), mc.zipf_s,
               mc.predict_fraction, kClients);
  std::fprintf(json,
               "  \"codec_rounds\": %lld,\n"
               "  \"codec_frames_per_round\": 5,\n"
               "  \"codec_ns_per_round\": %.1f,\n"
               "  \"codec_steady_allocs\": %lld,\n"
               "  \"codec_steady_bytes\": %lld,\n"
               "  \"gate_codec_zero_alloc\": %s,\n",
               codec.rounds, codec.ns_per_round, codec.steady_allocs,
               codec.steady_bytes, codec_zero_alloc ? "true" : "false");
  std::fprintf(json,
               "  \"predict_events_compared\": %lld,\n"
               "  \"gate_wire_bit_exact\": %s,\n"
               "  \"echo_rtt_p50_us\": %.1f,\n"
               "  \"echo_rtt_p99_us\": %.1f,\n"
               "  \"exactness_net_stats\": %s,\n",
               static_cast<long long>(ref_preds.size()),
               wire_bit_exact ? "true" : "false", echo_rtt_p50_us,
               echo_rtt_p99_us, exact_ns.to_json().c_str());
  std::fprintf(json,
               "  \"throughput_floor_events_per_s\": %.1f,\n"
               "  \"throughput_best_events_per_s\": %.2f,\n"
               "  \"gate_throughput_ok\": %s,\n"
               "  \"throughput_net_stats\": %s\n}\n",
               kThroughputFloor, best_throughput,
               throughput_ok ? "true" : "false", tp_ns.to_json().c_str());
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return codec_zero_alloc && wire_bit_exact && throughput_ok ? 0 : 1;
}
