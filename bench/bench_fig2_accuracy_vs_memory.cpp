// Reproduces Figure 2: final accuracy vs replay-memory budget (MB) on the
// CORe50-like benchmark, one series per method. The x-axis is each method's
// actual memory overhead for a given sample count, so methods with heavier
// per-sample storage (GSS > ER/DER > latent methods) shift right — the
// paper's core memory-efficiency argument.
//
//   ./bench_fig2_accuracy_vs_memory [--runs N] [--quick]
#include <cstdio>

#include "bench/bench_common.h"
#include "metrics/ascii_chart.h"

using namespace cham;

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  bench::apply_flags(cfg, flags);

  std::printf("=== Figure 2: accuracy vs replay memory budget (CORe50) ===\n");
  metrics::Experiment exp(cfg);

  struct Series {
    std::string method;
    std::vector<int64_t> sizes;
    int64_t runs;
  };
  const std::vector<Series> series = {
      {"Finetuning", {0}, flags.runs},
      {"ER", {100, 200, 500, 1500}, std::min<int64_t>(2, flags.runs)},
      {"DER", {100, 200, 500, 1500}, std::min<int64_t>(2, flags.runs)},
      {"GSS", {100, 200, 500}, std::min<int64_t>(2, flags.runs)},
      {"Latent Replay", {100, 200, 500, 1500}, flags.runs},
      {"Chameleon", {100, 200, 500, 1500}, flags.runs},
  };

  metrics::TablePrinter table({"Method", "Samples", "Memory (MB)",
                               "Acc_all (%)"},
                              {16, 9, 12, 14});
  table.print_header();
  metrics::AsciiChart chart(60, 16, /*log_x=*/true);
  const char markers[] = {'f', 'E', 'D', 'G', 'L', 'C'};
  size_t series_idx = 0;
  for (const auto& s : series) {
    metrics::ChartSeries cs;
    cs.name = s.method;
    cs.marker = markers[series_idx++ % sizeof(markers)];
    for (int64_t size : s.sizes) {
      auto probe = bench::make_learner(s.method, exp.env(), size, 1);
      const double mb = replay::bytes_to_mb(probe->memory_overhead_bytes());
      probe.reset();
      auto acc = bench::run_cell(exp, cfg, s.method, size, s.runs);
      table.print_row({s.method, std::to_string(size),
                       metrics::TablePrinter::fmt(mb, 2),
                       metrics::TablePrinter::fmt(acc.mean(), 2)});
      cs.x.push_back(std::max(mb, 0.01));
      cs.y.push_back(acc.mean());
      std::fflush(stdout);
    }
    chart.add(std::move(cs));
  }
  std::printf("\n%s", chart.render("replay memory (MB)", "Acc_all (%)").c_str());
  std::printf(
      "\nPaper reference (Fig. 2): Chameleon reaches its plateau with ~0.3 MB"
      " on-chip memory\nwhile ER/DER need tens of MB to approach it and"
      " finetuning stays near chance.\n");
  return 0;
}
