// Kernel and allocation report for the replay hot loop.
//
// Three sections, one JSON artefact (BENCH_kernels.json):
//
//   gemm   The packed register-tiled kernels (gemm / gemm_at_b / gemm_a_bt)
//          against the serial scalar reference kernels in cham::ref on the
//          MobileNet-head shapes: single-thread GFLOP/s for both, the
//          speedup ratio, and a 1/2/4-thread scaling curve for the packed
//          kernel. The speedup on the m=256,k=256 head shapes is the
//          acceptance gate for the vectorized micro-kernels.
//
//   conv   The direct NHW-flattened fast path for 1x1 stride-1 convolutions
//          against the im2col lowering it replaced, on the head pointwise
//          shape (256 -> 256 channels over a 2x2 latent, batch 32).
//
//   alloc  Heap traffic of ChameleonLearner::observe() measured with a
//          counting global operator new: bytes/calls on the first (cold)
//          step versus the steady state after warm-up. Off-cycle steps must
//          allocate nothing — Tensor storage recycles through the workspace
//          pool and kernel scratch lives in the per-thread arenas; the
//          every-h LT maintenance step may make bounded small allocations
//          (reported separately). Workspace pool/arena gauges are included.
//
//   ./build/bench/bench_kernels [--reps N] [--out PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/chameleon.h"
#include "data/latent_cache.h"
#include "nn/layers.h"
#include "nn/sequential.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/thread_pool.h"
#include "tensor/workspace.h"

// ---------------------------------------------------------------------------
// Heap instrumentation. The point of the workspace arena is that the steady
// state replay loop stops calling the allocator, so this binary replaces the
// global new/delete pair with counting versions and snapshots the counters
// around observe(). Everything (including the workspace pool's own refills,
// which go through the aligned overload) is counted.
namespace {

std::atomic<long long> g_heap_allocs{0};
std::atomic<long long> g_heap_bytes{0};

struct HeapSnapshot {
  long long allocs = 0;
  long long bytes = 0;
};

HeapSnapshot heap_now() {
  return {g_heap_allocs.load(std::memory_order_relaxed),
          g_heap_bytes.load(std::memory_order_relaxed)};
}

HeapSnapshot heap_delta(const HeapSnapshot& from) {
  const HeapSnapshot now = heap_now();
  return {now.allocs - from.allocs, now.bytes - from.bytes};
}

void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(static_cast<long long>(n),
                         std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(static_cast<long long>(n),
                         std::memory_order_relaxed);
  const std::size_t rounded = ((n ? n : 1) + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (!p) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using cham::Tensor;

// ---------------------------------------------------------------------------
// Section 1: GEMM kernels.

enum class Kernel { kGemm, kGemmAtB, kGemmABt };

struct ShapeCase {
  const char* name;
  Kernel kernel;
  int64_t m, n, k;
};

// Same table as bench_threads: the trainable head works on 256-channel 2x2
// latents, so the pointwise conv is a (256 x 256) @ (256 x 4) gemm per
// sample; batching and the eval chunk widen N; backward runs A^T B / A B^T.
constexpr ShapeCase kCases[] = {
    {"head_pointwise_1x", Kernel::kGemm, 256, 4, 256},
    {"head_pointwise_b32", Kernel::kGemm, 256, 128, 256},
    {"head_eval_chunk", Kernel::kGemm, 256, 1024, 256},
    {"head_backward_dcol", Kernel::kGemmAtB, 256, 128, 256},
    {"head_backward_dw", Kernel::kGemmABt, 256, 256, 128},
};

constexpr int kThreadCounts[] = {1, 2, 4};

void run_kernel(const ShapeCase& sc, const float* a, const float* b, float* c,
                bool reference) {
  switch (sc.kernel) {
    case Kernel::kGemm:
      (reference ? cham::ref::gemm : cham::gemm)(sc.m, sc.n, sc.k, 1.0f, a, b,
                                                 0.0f, c);
      break;
    case Kernel::kGemmAtB:
      (reference ? cham::ref::gemm_at_b : cham::gemm_at_b)(
          sc.m, sc.n, sc.k, 1.0f, a, b, 0.0f, c);
      break;
    case Kernel::kGemmABt:
      (reference ? cham::ref::gemm_a_bt : cham::gemm_a_bt)(
          sc.m, sc.n, sc.k, 1.0f, a, b, 0.0f, c);
      break;
  }
}

template <typename Fn>
double best_of_ms(int reps, Fn&& fn) {
  fn();  // warmup (also spawns pool workers so they are not timed)
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

double gflops(int64_t m, int64_t n, int64_t k, double ms) {
  return ms > 0 ? 2.0 * static_cast<double>(m * n * k) / (ms * 1e6) : 0.0;
}

struct GemmResult {
  const ShapeCase* sc = nullptr;
  double packed_ms = 0, ref_ms = 0;
  double threads_ms[3] = {0, 0, 0};
  double speedup() const { return packed_ms > 0 ? ref_ms / packed_ms : 0; }
};

GemmResult bench_gemm_case(const ShapeCase& sc, int reps) {
  cham::Rng rng(0xC0FFEEull +
                static_cast<uint64_t>(sc.m * 31 + sc.n * 7 + sc.k));
  Tensor a({sc.m, sc.k}), b({sc.k, sc.n}), c({sc.m, sc.n});
  if (sc.kernel == Kernel::kGemmAtB) a = Tensor({sc.k, sc.m});
  if (sc.kernel == Kernel::kGemmABt) b = Tensor({sc.n, sc.k});
  cham::ops::fill_normal(a, rng, 0.0f, 1.0f);
  cham::ops::fill_normal(b, rng, 0.0f, 1.0f);

  GemmResult res;
  res.sc = &sc;
  cham::set_num_threads(1);
  res.packed_ms = best_of_ms(
      reps, [&] { run_kernel(sc, a.data(), b.data(), c.data(), false); });
  // The scalar baseline is slow on the big shapes; fewer reps suffice for a
  // stable best-of.
  res.ref_ms = best_of_ms(std::max(3, reps / 4), [&] {
    run_kernel(sc, a.data(), b.data(), c.data(), true);
  });
  for (size_t ti = 0; ti < 3; ++ti) {
    cham::set_num_threads(kThreadCounts[ti]);
    res.threads_ms[ti] = best_of_ms(
        reps, [&] { run_kernel(sc, a.data(), b.data(), c.data(), false); });
  }
  cham::set_num_threads(1);
  return res;
}

// ---------------------------------------------------------------------------
// Section 2: 1x1 pointwise conv — fast path vs the im2col lowering.

struct ConvResult {
  int64_t batch = 32, channels = 256, hw = 2;
  double fast_ms = 0, im2col_ms = 0;
  double speedup() const { return fast_ms > 0 ? im2col_ms / fast_ms : 0; }
};

ConvResult bench_conv_pointwise(int reps) {
  ConvResult res;
  cham::Rng rng(0x9D2Cull);
  cham::nn::Conv2d conv(res.channels, res.channels, res.hw, res.hw,
                        /*kernel=*/1, /*stride=*/1, /*pad=*/0, /*bias=*/false,
                        rng);
  Tensor x({res.batch, res.channels, res.hw, res.hw});
  cham::ops::fill_normal(x, rng, 0.0f, 1.0f);
  Tensor w({res.channels, res.channels});
  cham::ops::fill_normal(w, rng, 0.0f, 0.1f);

  cham::set_num_threads(1);
  res.fast_ms =
      best_of_ms(reps, [&] { (void)conv.forward(x, /*train=*/false); });

  // The lowering the fast path replaced: per-sample im2col into arena
  // scratch, then the same gemm. For a 1x1 stride-1 kernel the column
  // matrix is a copy of the input plane — pure overhead.
  cham::ConvGeometry g;
  g.in_c = res.channels;
  g.in_h = res.hw;
  g.in_w = res.hw;
  g.kernel = 1;
  g.stride = 1;
  g.pad = 0;
  const int64_t opix = g.col_cols();
  res.im2col_ms = best_of_ms(reps, [&] {
    Tensor out({res.batch, res.channels, res.hw, res.hw});
    cham::ws::ArenaScope scratch;
    float* col =
        scratch.floats(static_cast<size_t>(g.col_rows() * g.col_cols()));
    for (int64_t n = 0; n < res.batch; ++n) {
      cham::im2col(x.data() + n * res.channels * opix, g, col);
      cham::gemm(res.channels, opix, g.col_rows(), 1.0f, w.data(), col, 0.0f,
                 out.data() + n * res.channels * opix);
    }
  });
  return res;
}

// ---------------------------------------------------------------------------
// Section 3: observe() heap traffic before/after warm-up.

struct AllocResult {
  HeapSnapshot first_step;         // cold: pool fills, Adam state, caches
  long long plain_max_allocs = 0;  // steady off-cycle steps (must be 0)
  long long plain_max_bytes = 0;
  long long plain_steps = 0;
  double lt_step_avg_bytes = 0;  // every-h LT maintenance steps
  long long lt_steps = 0;
  cham::ws::WorkspaceStats ws;  // gauges over the measured window
};

AllocResult bench_observe_alloc() {
  using namespace cham;

  // The tiny environment from the behavior tests: 3x8x8 images, a 1-conv
  // frozen backbone producing 4x4x4 latents, a GAP+Linear head, 6 classes.
  data::DatasetConfig data_cfg = data::core50_config();
  data_cfg.num_classes = 6;
  data_cfg.num_domains = 3;
  data_cfg.image_hw = 8;
  data_cfg.train_instances = 4;

  Rng frng(1);
  nn::Sequential f;
  f.add(std::make_unique<nn::Conv2d>(3, 4, 8, 8, 3, 2, 1, false, frng));
  f.add(std::make_unique<nn::ReLU>());
  data::LatentCache latents(data_cfg, f);

  core::LearnerEnv env;
  env.data_cfg = &data_cfg;
  env.latents = &latents;
  env.latent_shape = Shape{{4, 4, 4}};
  env.f_fwd_macs = f.macs_per_sample();
  env.lr = 0.01f;
  env.head_factory = [] {
    Rng hrng(2);
    auto g = std::make_unique<nn::Sequential>();
    g->add(std::make_unique<nn::GlobalAvgPool>());
    g->add(std::make_unique<nn::Linear>(4, 6, hrng));
    return g;
  };

  core::ChameleonConfig cc;
  cc.lt_capacity = 24;      // fills within the warm-up window
  cc.learning_window = 40;  // several recalibrations during warm-up
  core::ChameleonLearner learner(env, cc, /*seed=*/7);

  // Deterministic stream cycling a fixed 24-key set (6 classes x 4
  // instances) so the latent cache saturates during warm-up.
  auto make_batch = [](long long s) {
    data::Batch b;
    b.domain = 0;
    for (int i = 0; i < 4; ++i) {
      const long long j = s + i;
      b.keys.push_back({static_cast<int32_t>(j % 6), 0,
                        static_cast<int32_t>(j % 4), false});
      b.labels.push_back(j % 6);
    }
    return b;
  };

  AllocResult res;
  long long step = 0;

  {
    const cham::data::Batch b = make_batch(step);
    const HeapSnapshot before = heap_now();
    learner.observe(b);
    res.first_step = heap_delta(before);
    ++step;
  }

  // Warm-up: saturates the latent cache, the LT store (and with it the
  // staged-burst capacity), the Adam state and every scratch vector. Spans
  // several LT cycles and preference recalibrations.
  constexpr long long kWarmup = 120;
  while (step < kWarmup) learner.observe(make_batch(step++));

  ws::reset_stats();
  constexpr long long kMeasure = 40;
  long long lt_bytes = 0;
  for (long long i = 0; i < kMeasure; ++i, ++step) {
    const cham::data::Batch b = make_batch(step);
    const HeapSnapshot before = heap_now();
    learner.observe(b);
    const HeapSnapshot d = heap_delta(before);
    // observe() numbers steps from 1; LT maintenance runs when that count
    // hits a multiple of h.
    const bool lt_cycle = ((step + 1) % cc.lt_period_h) == 0;
    if (lt_cycle) {
      ++res.lt_steps;
      lt_bytes += d.bytes;
    } else {
      ++res.plain_steps;
      res.plain_max_allocs = std::max(res.plain_max_allocs, d.allocs);
      res.plain_max_bytes = std::max(res.plain_max_bytes, d.bytes);
    }
  }
  if (res.lt_steps > 0) {
    res.lt_step_avg_bytes =
        static_cast<double>(lt_bytes) / static_cast<double>(res.lt_steps);
  }
  res.ws = ws::stats();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 20;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::max(1, std::atoi(argv[++i]));
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  std::printf("bench_kernels: simd=%s, %u hardware threads, %d reps\n\n",
              cham::gemm_simd_variant(), std::thread::hardware_concurrency(),
              reps);

  std::printf("%-22s %12s %12s %8s %10s %10s\n", "gemm shape", "packed GF/s",
              "ref GF/s", "speedup", "t=2 ms", "t=4 ms");
  GemmResult gemm_results[std::size(kCases)];
  double gate_min_speedup = 1e30;
  for (size_t i = 0; i < std::size(kCases); ++i) {
    gemm_results[i] = bench_gemm_case(kCases[i], reps);
    const GemmResult& r = gemm_results[i];
    std::printf("%-22s %12.2f %12.2f %7.2fx %10.4f %10.4f\n", r.sc->name,
                gflops(r.sc->m, r.sc->n, r.sc->k, r.packed_ms),
                gflops(r.sc->m, r.sc->n, r.sc->k, r.ref_ms), r.speedup(),
                r.threads_ms[1], r.threads_ms[2]);
    // The acceptance gate covers the forward head shapes (m=256, k=256).
    if (r.sc->kernel == Kernel::kGemm) {
      gate_min_speedup = std::min(gate_min_speedup, r.speedup());
    }
  }

  const ConvResult conv = bench_conv_pointwise(reps);
  std::printf(
      "\n1x1 conv (b=%lld, %lldch, %lldx%lld): fast %0.4f ms, im2col %0.4f "
      "ms, %0.2fx\n",
      static_cast<long long>(conv.batch),
      static_cast<long long>(conv.channels), static_cast<long long>(conv.hw),
      static_cast<long long>(conv.hw), conv.fast_ms, conv.im2col_ms,
      conv.speedup());

  const AllocResult alloc = bench_observe_alloc();
  std::printf(
      "\nobserve() heap traffic: first step %lld allocs / %lld bytes;\n"
      "  steady off-cycle max %lld allocs / %lld bytes over %lld steps;\n"
      "  LT-cycle avg %.0f bytes over %lld steps\n"
      "  workspace: pool refills %lld, pool high water %lld B, arena high "
      "water %lld B\n",
      alloc.first_step.allocs, alloc.first_step.bytes, alloc.plain_max_allocs,
      alloc.plain_max_bytes, alloc.plain_steps, alloc.lt_step_avg_bytes,
      alloc.lt_steps, static_cast<long long>(alloc.ws.pool_heap_allocs),
      static_cast<long long>(alloc.ws.pool_high_water_bytes),
      static_cast<long long>(alloc.ws.arena_high_water_bytes));

  const bool gate_2x = gate_min_speedup >= 2.0;
  const bool gate_zero_alloc = alloc.plain_max_allocs == 0;
  std::printf(
      "\ngate: head gemm speedup %.2fx (>=2x %s), steady-state allocs %s\n",
      gate_min_speedup, gate_2x ? "PASS" : "FAIL",
      gate_zero_alloc ? "zero PASS" : "nonzero FAIL");

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"bench_kernels\",\n  \"simd\": \"%s\",\n"
               "  \"hardware_concurrency\": %u,\n  \"reps\": %d,\n"
               "  \"gemm\": [\n",
               cham::gemm_simd_variant(),
               std::thread::hardware_concurrency(), reps);
  for (size_t i = 0; i < std::size(kCases); ++i) {
    const GemmResult& r = gemm_results[i];
    std::fprintf(
        json,
        "%s    {\"shape\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld,\n"
        "     \"packed_ms\": %.5f, \"packed_gflops\": %.3f,\n"
        "     \"ref_ms\": %.5f, \"ref_gflops\": %.3f, \"speedup_vs_ref\": "
        "%.3f,\n     \"threads_ms\": {\"1\": %.5f, \"2\": %.5f, \"4\": "
        "%.5f}}",
        i == 0 ? "" : ",\n", r.sc->name, static_cast<long long>(r.sc->m),
        static_cast<long long>(r.sc->n), static_cast<long long>(r.sc->k),
        r.packed_ms, gflops(r.sc->m, r.sc->n, r.sc->k, r.packed_ms), r.ref_ms,
        gflops(r.sc->m, r.sc->n, r.sc->k, r.ref_ms), r.speedup(),
        r.threads_ms[0], r.threads_ms[1], r.threads_ms[2]);
  }
  std::fprintf(
      json,
      "\n  ],\n  \"conv_pointwise\": {\"batch\": %lld, \"channels\": %lld, "
      "\"hw\": %lld,\n    \"fastpath_ms\": %.5f, \"im2col_ms\": %.5f, "
      "\"speedup\": %.3f},\n",
      static_cast<long long>(conv.batch),
      static_cast<long long>(conv.channels), static_cast<long long>(conv.hw),
      conv.fast_ms, conv.im2col_ms, conv.speedup());
  std::fprintf(
      json,
      "  \"alloc\": {\n"
      "    \"first_step_heap_allocs\": %lld, \"first_step_heap_bytes\": "
      "%lld,\n"
      "    \"steady_plain_step_max_allocs\": %lld, "
      "\"steady_plain_step_max_bytes\": %lld,\n"
      "    \"steady_plain_steps\": %lld,\n"
      "    \"lt_cycle_step_avg_bytes\": %.1f, \"lt_cycle_steps\": %lld,\n"
      "    \"ws_pool_heap_allocs\": %lld, \"ws_pool_high_water_bytes\": "
      "%lld,\n"
      "    \"ws_arena_high_water_bytes\": %lld\n  },\n",
      alloc.first_step.allocs, alloc.first_step.bytes, alloc.plain_max_allocs,
      alloc.plain_max_bytes, alloc.plain_steps, alloc.lt_step_avg_bytes,
      alloc.lt_steps, static_cast<long long>(alloc.ws.pool_heap_allocs),
      static_cast<long long>(alloc.ws.pool_high_water_bytes),
      static_cast<long long>(alloc.ws.arena_high_water_bytes));
  std::fprintf(json,
               "  \"gate_head_gemm_min_speedup\": %.3f,\n"
               "  \"gate_speedup_2x\": %s,\n"
               "  \"gate_steady_state_zero_alloc\": %s\n}\n",
               gate_min_speedup, gate_2x ? "true" : "false",
               gate_zero_alloc ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
