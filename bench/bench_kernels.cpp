// google-benchmark microbenchmarks for the compute kernels that dominate
// training time: GEMM, im2col convolution, depthwise convolution, softmax,
// and the Eq. 4/6 sampling math.
#include <benchmark/benchmark.h>

#include "nn/layers.h"
#include "quant/quantize.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cham {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  ops::fill_normal(a, rng, 0, 1);
  ops::fill_normal(b, rng, 0, 1);
  for (auto _ : state) {
    gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmHeadShapes(benchmark::State& state) {
  // The pointwise conv of the trainable head: (out_c x in_c) @ (in_c x pix).
  const int64_t out_c = 256, in_c = 256, pix = 4;
  Rng rng(2);
  Tensor w({out_c, in_c}), col({in_c, pix}), out({out_c, pix});
  ops::fill_normal(w, rng, 0, 1);
  ops::fill_normal(col, rng, 0, 1);
  for (auto _ : state) {
    gemm(out_c, pix, in_c, 1.0f, w.data(), col.data(), 0.0f, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * out_c * in_c * pix);
}
BENCHMARK(BM_GemmHeadShapes);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(16, 32, 16, 16, 3, 1, 1, false, rng);
  Tensor x({1, 16, 16, 16});
  ops::fill_normal(x, rng, 0, 1);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.macs_per_sample());
}
BENCHMARK(BM_Conv2dForward);

void BM_DepthwiseForward(benchmark::State& state) {
  Rng rng(4);
  nn::DepthwiseConv2d conv(64, 8, 8, 3, 1, 1, rng);
  Tensor x({1, 64, 8, 8});
  ops::fill_normal(x, rng, 0, 1);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.macs_per_sample());
}
BENCHMARK(BM_DepthwiseForward);

void BM_Im2col(benchmark::State& state) {
  ConvGeometry g{32, 16, 16, 3, 1, 1};
  Rng rng(5);
  Tensor img({32, 16, 16});
  ops::fill_normal(img, rng, 0, 1);
  Tensor col({g.col_rows(), g.col_cols()});
  for (auto _ : state) {
    im2col(img.data(), g, col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_Softmax(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(6);
  Tensor logits({rows, 50});
  ops::fill_normal(logits, rng, 0, 2);
  for (auto _ : state) {
    Tensor p = ops::softmax(logits);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(1)->Arg(32);

void BM_KlDivergence(benchmark::State& state) {
  Rng rng(7);
  std::vector<float> p(50), q(50);
  double sp = 0, sq = 0;
  for (int i = 0; i < 50; ++i) {
    p[i] = rng.uniform_f(0.01f, 1.0f);
    q[i] = rng.uniform_f(0.01f, 1.0f);
    sp += p[i];
    sq += q[i];
  }
  for (int i = 0; i < 50; ++i) {
    p[i] /= sp;
    q[i] /= sq;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::kl_divergence(p, q));
  }
}
BENCHMARK(BM_KlDivergence);

// Latent encode/decode throughput: runs once per buffered sample, so it
// must be negligible next to a training step.
void BM_QuantEncodeLatent(benchmark::State& state) {
  const auto precision = static_cast<quant::Precision>(state.range(0));
  Rng rng(8);
  Tensor latent({1, 256, 2, 2});
  ops::fill_uniform(latent, rng, 0.0f, 6.0f);
  for (auto _ : state) {
    auto enc = quant::encode(latent, precision);
    benchmark::DoNotOptimize(enc.bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * latent.numel() * 4);
}
BENCHMARK(BM_QuantEncodeLatent)
    ->Arg(int(quant::Precision::kFp16))
    ->Arg(int(quant::Precision::kBfp8))
    ->Arg(int(quant::Precision::kInt8));

void BM_QuantRoundTrip(benchmark::State& state) {
  Rng rng(9);
  Tensor latent({1, 256, 2, 2});
  ops::fill_uniform(latent, rng, 0.0f, 6.0f);
  for (auto _ : state) {
    Tensor back = quant::decode(quant::encode(latent, quant::Precision::kFp16));
    benchmark::DoNotOptimize(back.data());
  }
}
BENCHMARK(BM_QuantRoundTrip);

}  // namespace
}  // namespace cham

BENCHMARK_MAIN();
