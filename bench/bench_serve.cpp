// Serving-runtime report (writes BENCH_serve.json): a Zipf-skewed
// multi-user workload through the sharded SessionManager with a residency
// pool far smaller than the session count, so sessions continuously cycle
// through checkpoint-backed eviction.
//
// Two gates are recorded in the JSON artefact:
//   * fidelity_exact  — spot-checked sessions restored from the store have
//     bit-identical head weights and predictions to the same per-session
//     stream run in an isolated learner (the eviction round-trip contract).
//   * throughput_ok   — steady-state dispatch throughput stays above a
//     conservative floor (events/s), catching pathological regressions in
//     the admission/eviction path.
//
//   ./build/bench/bench_serve [--events N] [--sessions N] [--out PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/chameleon.h"
#include "metrics/experiment.h"
#include "serve/session_manager.h"
#include "serve/session_store.h"

namespace {

using cham::core::ChameleonConfig;
using cham::core::ChameleonLearner;

ChameleonConfig learner_config() {
  ChameleonConfig cc;
  cc.lt_capacity = 18;
  return cc;
}

bool params_bit_identical(ChameleonLearner& a, ChameleonLearner& b) {
  auto pa = a.head().params();
  auto pb = b.head().params();
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    if (pa[i]->value.numel() != pb[i]->value.numel()) return false;
    if (std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                    static_cast<size_t>(pa[i]->value.numel()) *
                        sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t events = 400;
  int64_t sessions = 50;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc)
      events = std::atoll(argv[++i]);
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc)
      sessions = std::atoll(argv[++i]);
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  // Small CORe50-shaped pool (shared with the checkpoint/serve test
  // fixtures, so the pretrain cache is reused).
  cham::metrics::ExperimentConfig cfg = cham::metrics::core50_experiment();
  cfg.data.num_classes = 6;
  cfg.data.num_domains = 2;
  cfg.data.train_instances = 5;
  cfg.pretrain_num_classes = 12;
  cfg.pretrain_epochs = 4;
  cfg.learner_lr = 0.02f;
  cham::metrics::Experiment exp(cfg);

  // Private per-session streams: distinct orderings over the shared pool.
  std::vector<std::vector<cham::data::Batch>> streams;
  for (int64_t s = 0; s < sessions; ++s) {
    cham::data::StreamConfig sc = cfg.stream;
    sc.seed = 5000 + static_cast<uint64_t>(s) * 7919;
    cham::data::DomainIncrementalStream stream(cfg.data, sc);
    exp.warm_latents(stream);
    streams.push_back(stream.batches());
  }

  cham::data::MultiUserConfig mc;
  mc.num_sessions = sessions;
  mc.events = events;
  mc.zipf_s = 1.1;
  mc.seed = 13;
  const auto schedule = cham::data::make_zipf_schedule(mc);

  cham::serve::ServeConfig sc;
  sc.num_shards = 4;
  sc.max_resident = 6;  // << sessions: continuous eviction pressure
  sc.queue_capacity = 16;
  sc.store_dir = "/tmp/cham_bench_serve";
  sc.base_seed = 97;
  sc.mode = cham::serve::ServeMode::kDeterministic;
  cham::serve::SessionStore(sc.store_dir).clear();

  auto factory = [&exp](uint64_t /*session_id*/, uint64_t seed) {
    return std::make_unique<ChameleonLearner>(exp.env(), learner_config(),
                                              seed);
  };
  cham::serve::SessionManager mgr(sc, factory);

  std::printf("bench_serve: %lld events over %lld sessions, shards=%lld, "
              "max_resident=%lld\n",
              static_cast<long long>(events),
              static_cast<long long>(sessions),
              static_cast<long long>(sc.num_shards),
              static_cast<long long>(sc.max_resident));

  std::vector<std::vector<const cham::data::Batch*>> submitted(
      static_cast<size_t>(sessions));
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& ev : schedule) {
    const auto& pool = streams[static_cast<size_t>(ev.session)];
    const auto& batch =
        pool[static_cast<size_t>(ev.batch_index) % pool.size()];
    submitted[static_cast<size_t>(ev.session)].push_back(&batch);
    while (!mgr.submit_observe(static_cast<uint64_t>(ev.session), batch)
                .accepted) {
      mgr.drain();
    }
  }
  mgr.drain();
  const double serve_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  mgr.flush();

  const cham::serve::ServeStats st = mgr.stats();
  const cham::core::OpStats ops = mgr.aggregate_op_stats();
  const double throughput =
      serve_ms > 0 ? 1000.0 * static_cast<double>(st.observes) / serve_ms
                   : 0.0;

  // Fidelity spot-check: hottest rank, two mid ranks, and the coldest rank
  // that actually received traffic.
  std::vector<int64_t> probes;
  probes.push_back(0);
  probes.push_back(sessions / 4);
  probes.push_back(sessions / 2);
  for (int64_t s = sessions - 1; s >= 0; --s) {
    if (!submitted[static_cast<size_t>(s)].empty()) {
      probes.push_back(s);
      break;
    }
  }
  const auto test_keys = cham::data::all_test_keys(cfg.data);
  cham::serve::SessionStore reader(sc.store_dir);
  bool fidelity_exact = true;
  int64_t probes_checked = 0;
  for (int64_t s : probes) {
    if (submitted[static_cast<size_t>(s)].empty()) continue;
    ChameleonLearner restored(exp.env(), learner_config(), 0xBEEF);
    if (!reader.load(static_cast<uint64_t>(s), restored)) {
      fidelity_exact = false;
      continue;
    }
    ChameleonLearner isolated(exp.env(), learner_config(),
                              mgr.session_seed(static_cast<uint64_t>(s)));
    for (const auto* b : submitted[static_cast<size_t>(s)]) {
      isolated.observe(*b);
    }
    const bool ok = params_bit_identical(restored, isolated) &&
                    restored.predict(test_keys) == isolated.predict(test_keys);
    if (!ok) {
      std::printf("  FIDELITY MISMATCH session %lld\n",
                  static_cast<long long>(s));
      fidelity_exact = false;
    }
    ++probes_checked;
  }

  constexpr double kThroughputFloor = 5.0;  // events/s, deliberately slack
  const bool throughput_ok = throughput >= kThroughputFloor;

  std::printf(
      "  served %lld observes in %.1f ms (%.1f events/s)\n"
      "  evictions %lld, restores %lld, save avg %.3f ms, restore avg %.3f "
      "ms\n"
      "  fidelity spot-check: %lld sessions, %s; throughput gate (>=%.0f/s) "
      "%s\n",
      static_cast<long long>(st.observes), serve_ms, throughput,
      static_cast<long long>(st.evictions),
      static_cast<long long>(st.restores), st.save_ms_avg(),
      st.restore_ms_avg(), static_cast<long long>(probes_checked),
      fidelity_exact ? "PASS" : "FAIL", kThroughputFloor,
      throughput_ok ? "PASS" : "FAIL");

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"bench_serve\",\n"
               "  \"sessions\": %lld,\n  \"events\": %lld,\n"
               "  \"zipf_s\": %.2f,\n"
               "  \"num_shards\": %lld,\n  \"max_resident\": %lld,\n"
               "  \"queue_capacity\": %lld,\n",
               static_cast<long long>(sessions),
               static_cast<long long>(events), mc.zipf_s,
               static_cast<long long>(sc.num_shards),
               static_cast<long long>(sc.max_resident),
               static_cast<long long>(sc.queue_capacity));
  std::fprintf(json,
               "  \"serve_ms\": %.2f,\n"
               "  \"throughput_events_per_s\": %.2f,\n"
               "  \"serve_stats\": %s,\n",
               serve_ms, throughput, st.to_json().c_str());
  std::fprintf(json,
               "  \"aggregate_op_stats\": {\"images\": %lld, "
               "\"g_fwd_macs\": %.0f, \"g_bwd_macs\": %.0f, "
               "\"onchip_bytes\": %.0f, \"offchip_bytes\": %.0f},\n",
               static_cast<long long>(ops.images), ops.g_fwd_macs,
               ops.g_bwd_macs, ops.onchip_bytes, ops.offchip_bytes);
  std::fprintf(json,
               "  \"fidelity_sessions_checked\": %lld,\n"
               "  \"gate_fidelity_exact\": %s,\n"
               "  \"throughput_floor_events_per_s\": %.1f,\n"
               "  \"gate_throughput_ok\": %s\n}\n",
               static_cast<long long>(probes_checked),
               fidelity_exact ? "true" : "false", kThroughputFloor,
               throughput_ok ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return fidelity_exact && throughput_ok ? 0 : 1;
}
