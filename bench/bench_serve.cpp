// Serving-runtime report (writes BENCH_serve.json): a Zipf-skewed
// multi-user workload (observe + predict mix) through the sharded
// SessionManager with a residency pool far smaller than the session count,
// so sessions continuously cycle through write-behind checkpoint eviction.
//
// Gates recorded in the JSON artefact:
//   * fidelity_exact   — spot-checked sessions restored from the store have
//     bit-identical head weights and predictions to the same per-session
//     stream run in an isolated learner (the eviction round-trip contract).
//   * throughput_ok    — steady-state dispatch throughput stays above a
//     conservative floor (events/s), best-of-3 (retries only when the first
//     run misses the floor; wall-clock on a shared box is noisy).
//   * evict_lock_ok    — the lock-held portion of eviction (victim select +
//     unlink, the part that stalls every shard) stays under 1ms at the max,
//     best-of-3 like the throughput floor (a preempted core charges the
//     lock section wall-time it never spent). Serialisation and disk I/O
//     run outside the lock (write-behind).
//   * delta_ratio_ok   — steady-state eviction writes are deltas: the
//     average delta frame is <= 1/5 of the average full blob.
//   * batched_bit_exact — the whole schedule re-run with max_batch=1
//     (batch planning disabled: every eval window is one request) returns
//     bit-identical predictions for every predict event. This is the
//     planner's correctness contract measured end to end: coalescing is a
//     pure throughput optimisation, invisible in the results.
//
// An int8 blob-precision ablation sub-run reports the bytes/accuracy trade:
// smaller checkpoints, predictions compared against the fp32 run of the
// same schedule. The blob_shrink ratio is dominated by a designed-in fp32
// floor — head weights, BN statistics and the optimiser-resume state stay
// fp32 (training must resume from exactly the values it left), so int8
// applies only to the replay latents (ST/LT/staged stores). The JSON's
// byte_breakdown field splits the blob so the ratio is interpretable:
// non-head bytes shrink ~4x while the head floor stays put.
//
//   ./build/bench/bench_serve [--events N] [--sessions N] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "core/chameleon.h"
#include "metrics/experiment.h"
#include "nn/model_io.h"
#include "serve/session_manager.h"
#include "serve/session_store.h"

namespace {

using cham::core::ChameleonConfig;
using cham::core::ChameleonLearner;

ChameleonConfig learner_config() {
  ChameleonConfig cc;
  cc.lt_capacity = 18;
  return cc;
}

bool params_bit_identical(ChameleonLearner& a, ChameleonLearner& b) {
  auto pa = a.head().params();
  auto pb = b.head().params();
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    if (pa[i]->value.numel() != pb[i]->value.numel()) return false;
    if (std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                    static_cast<size_t>(pa[i]->value.numel()) *
                        sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

// One small serve run at a given blob precision; returns per-session final
// predictions (restored from the store) and the average full-blob size.
struct AblationResult {
  std::vector<std::vector<int64_t>> preds;
  double avg_full_blob_bytes = 0;
  double avg_delta_bytes = 0;
  // Serialised size of the head alone (weights + BN statistics), the
  // always-fp32 floor every blob carries regardless of blob_precision.
  double head_bytes = 0;
};

AblationResult run_precision_ablation(
    cham::metrics::Experiment& exp,
    const std::vector<std::vector<cham::data::Batch>>& streams,
    const std::vector<cham::data::SessionEvent>& schedule,
    int64_t num_sessions, cham::quant::Precision precision,
    const std::string& dir,
    const std::vector<cham::data::ImageKey>& test_keys) {
  cham::serve::ServeConfig sc;
  sc.num_shards = 2;
  sc.max_resident = 3;  // constant eviction pressure
  sc.queue_capacity = 16;
  sc.store_dir = dir;
  sc.base_seed = 97;
  sc.blob_precision = precision;
  cham::serve::SessionStore(dir).clear();
  auto factory = [&exp](uint64_t /*session_id*/, uint64_t seed) {
    return std::make_unique<ChameleonLearner>(exp.env(), learner_config(),
                                              seed);
  };
  cham::serve::SessionManager mgr(sc, factory);
  for (const auto& ev : schedule) {
    const auto& pool = streams[static_cast<size_t>(ev.session)];
    const auto& batch =
        pool[static_cast<size_t>(ev.batch_index) % pool.size()];
    while (!mgr.submit_observe(static_cast<uint64_t>(ev.session), batch)
                .accepted) {
      mgr.drain();
    }
  }
  mgr.drain();
  mgr.flush();
  const cham::serve::ServeStats st = mgr.stats();

  AblationResult r;
  if (st.wb_full_saves > 0) {
    r.avg_full_blob_bytes = static_cast<double>(st.wb_full_bytes) /
                            static_cast<double>(st.wb_full_saves);
  }
  const int64_t delta_saves = st.wb_chunk_saves + st.wb_oplog_saves;
  if (delta_saves > 0) {
    r.avg_delta_bytes = static_cast<double>(st.wb_delta_bytes) /
                        static_cast<double>(delta_saves);
  }
  cham::serve::SessionStore reader(dir);
  for (int64_t s = 0; s < num_sessions; ++s) {
    ChameleonLearner restored(exp.env(), learner_config(), 0xAB1);
    if (reader.load(static_cast<uint64_t>(s), restored)) {
      if (r.head_bytes == 0) {
        std::ostringstream head_os;
        if (cham::nn::save_params(restored.head(), head_os)) {
          r.head_bytes = static_cast<double>(head_os.str().size());
        }
      }
      r.preds.push_back(restored.predict(test_keys));
    } else {
      r.preds.emplace_back();  // session got no traffic
    }
  }
  return r;
}

// The full Zipf schedule through a SessionManager with the given config:
// observes retried through backpressure, predicts submitted asynchronously
// and collected after the final drain. Each predict event pages the eval
// set as two back-to-back requests (halves of the key list) — the realistic
// paged-read shape, and a per-session run the planner can merge into one
// eval window (row independence makes the concatenation bit-identical to a
// single request; see core::HeadLearner::eval_batch). Returns one
// prediction vector per predict event, in schedule order — the payload the
// batched-vs-unbatched bit-exactness gate compares.
std::vector<std::vector<int64_t>> run_predict_schedule(
    cham::serve::SessionManager& mgr,
    const std::vector<std::vector<cham::data::Batch>>& streams,
    const std::vector<cham::data::SessionEvent>& schedule,
    const std::vector<cham::data::ImageKey>& test_keys,
    std::vector<std::vector<const cham::data::Batch*>>* submitted) {
  const std::vector<cham::data::ImageKey> first_page(
      test_keys.begin(), test_keys.begin() + test_keys.size() / 2);
  const std::vector<cham::data::ImageKey> second_page(
      test_keys.begin() + test_keys.size() / 2, test_keys.end());
  std::vector<std::future<std::vector<int64_t>>> futures;
  for (const auto& ev : schedule) {
    if (ev.predict) {
      for (const auto* page : {&first_page, &second_page}) {
        std::future<std::vector<int64_t>> f;
        while (!mgr.submit_predict(static_cast<uint64_t>(ev.session), *page,
                                   &f)
                    .accepted) {
          mgr.drain();
        }
        futures.push_back(std::move(f));
      }
      continue;
    }
    const auto& pool = streams[static_cast<size_t>(ev.session)];
    const auto& batch =
        pool[static_cast<size_t>(ev.batch_index) % pool.size()];
    if (submitted) {
      (*submitted)[static_cast<size_t>(ev.session)].push_back(&batch);
    }
    while (!mgr.submit_observe(static_cast<uint64_t>(ev.session), batch)
                .accepted) {
      mgr.drain();
    }
  }
  mgr.drain();
  // Re-join the pages: one prediction vector per predict event.
  std::vector<std::vector<int64_t>> preds;
  preds.reserve(futures.size() / 2);
  for (size_t i = 0; i + 1 < futures.size(); i += 2) {
    std::vector<int64_t> joined = futures[i].get();
    const std::vector<int64_t> tail = futures[i + 1].get();
    joined.insert(joined.end(), tail.begin(), tail.end());
    preds.push_back(std::move(joined));
  }
  return preds;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t events = 400;
  int64_t sessions = 50;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc)
      events = std::atoll(argv[++i]);
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc)
      sessions = std::atoll(argv[++i]);
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  // Small CORe50-shaped pool (shared with the checkpoint/serve test
  // fixtures, so the pretrain cache is reused).
  cham::metrics::ExperimentConfig cfg = cham::metrics::core50_experiment();
  cfg.data.num_classes = 6;
  cfg.data.num_domains = 2;
  cfg.data.train_instances = 5;
  cfg.pretrain_num_classes = 12;
  cfg.pretrain_epochs = 4;
  cfg.learner_lr = 0.02f;
  cham::metrics::Experiment exp(cfg);

  // Private per-session streams: distinct orderings over the shared pool.
  std::vector<std::vector<cham::data::Batch>> streams;
  for (int64_t s = 0; s < sessions; ++s) {
    cham::data::StreamConfig sc = cfg.stream;
    sc.seed = 5000 + static_cast<uint64_t>(s) * 7919;
    cham::data::DomainIncrementalStream stream(cfg.data, sc);
    exp.warm_latents(stream);
    streams.push_back(stream.batches());
  }

  cham::data::MultiUserConfig mc;
  mc.num_sessions = sessions;
  mc.events = events;
  mc.zipf_s = 1.1;
  mc.seed = 13;
  mc.predict_fraction = 0.15;  // realistic read mix in the serve path
  const auto schedule = cham::data::make_zipf_schedule(mc);

  cham::serve::ServeConfig sc;
  sc.num_shards = 4;
  sc.max_resident = 6;  // << sessions: continuous eviction pressure
  sc.queue_capacity = 16;
  sc.store_dir = "/tmp/cham_bench_serve";
  sc.base_seed = 97;
  sc.mode = cham::serve::ServeMode::kDeterministic;
  cham::serve::SessionStore(sc.store_dir).clear();

  auto factory = [&exp](uint64_t /*session_id*/, uint64_t seed) {
    return std::make_unique<ChameleonLearner>(exp.env(), learner_config(),
                                              seed);
  };
  cham::serve::SessionManager mgr(sc, factory);

  std::printf("bench_serve: %lld events over %lld sessions, shards=%lld, "
              "max_resident=%lld, predict mix %.0f%%\n",
              static_cast<long long>(events),
              static_cast<long long>(sessions),
              static_cast<long long>(sc.num_shards),
              static_cast<long long>(sc.max_resident),
              100.0 * mc.predict_fraction);

  const auto test_keys = cham::data::all_test_keys(cfg.data);
  std::vector<std::vector<const cham::data::Batch*>> submitted(
      static_cast<size_t>(sessions));
  const auto t0 = std::chrono::steady_clock::now();
  const auto batched_preds =
      run_predict_schedule(mgr, streams, schedule, test_keys, &submitted);
  const double serve_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  mgr.flush();

  const cham::serve::ServeStats st = mgr.stats();
  const cham::core::OpStats ops = mgr.aggregate_op_stats();
  const double throughput =
      serve_ms > 0
          ? 1000.0 * static_cast<double>(st.observes + st.predicts) / serve_ms
          : 0.0;

  // Fidelity spot-check: hottest rank, two mid ranks, and the coldest rank
  // that actually received traffic. Predicts are state-neutral, so the
  // isolated learner replays the observes only.
  std::vector<int64_t> probes;
  probes.push_back(0);
  probes.push_back(sessions / 4);
  probes.push_back(sessions / 2);
  for (int64_t s = sessions - 1; s >= 0; --s) {
    if (!submitted[static_cast<size_t>(s)].empty()) {
      probes.push_back(s);
      break;
    }
  }
  cham::serve::SessionStore reader(sc.store_dir);
  bool fidelity_exact = true;
  int64_t probes_checked = 0;
  for (int64_t s : probes) {
    if (submitted[static_cast<size_t>(s)].empty()) continue;
    ChameleonLearner restored(exp.env(), learner_config(), 0xBEEF);
    if (!reader.load(static_cast<uint64_t>(s), restored)) {
      fidelity_exact = false;
      continue;
    }
    ChameleonLearner isolated(exp.env(), learner_config(),
                              mgr.session_seed(static_cast<uint64_t>(s)));
    for (const auto* b : submitted[static_cast<size_t>(s)]) {
      isolated.observe(*b);
    }
    const bool ok = params_bit_identical(restored, isolated) &&
                    restored.predict(test_keys) == isolated.predict(test_keys);
    if (!ok) {
      std::printf("  FIDELITY MISMATCH session %lld\n",
                  static_cast<long long>(s));
      fidelity_exact = false;
    }
    ++probes_checked;
  }

  // Fidelity gate for the batch planner itself: the same schedule with
  // coalescing disabled (max_batch=1 executes every plan group as
  // single-request windows) must produce bit-identical predictions for
  // every predict event. Everything else about the run is unchanged.
  std::vector<std::vector<int64_t>> unbatched_preds;
  {
    cham::serve::ServeConfig sc1 = sc;
    sc1.max_batch = 1;
    sc1.store_dir = sc.store_dir + "_b1";
    cham::serve::SessionStore(sc1.store_dir).clear();
    cham::serve::SessionManager mgr1(sc1, factory);
    unbatched_preds =
        run_predict_schedule(mgr1, streams, schedule, test_keys, nullptr);
    mgr1.flush();
  }
  const bool batched_bit_exact = batched_preds == unbatched_preds;
  if (!batched_bit_exact) {
    std::printf("  BATCHED/UNBATCHED MISMATCH over %zu predict events\n",
                batched_preds.size());
  }

  // Throughput floor for the batched predict path (events/s at 15%
  // predicts): held up by plan coalescing + the GEMM thread-scaling work;
  // the pre-batching serve path cleared ~50 on this box. The evict-lock
  // ceiling guards the lock-held portion of eviction (victim select +
  // pointer moves; serialise-under-lock cost 63ms in the seed). Both are
  // wall-clock metrics and noisy on a shared box — a busy core can preempt
  // the shard thread mid-lock-section and charge it milliseconds it never
  // spent — so both gate best-of-3: retries only happen when the first run
  // misses, and a genuine regression fails all three attempts. Each retry
  // replays the identical schedule, so its predictions must be
  // bit-identical to the first run's — a cheap run-to-run determinism check.
  // Ratcheted 82 -> 100 with the zero-copy replay path (gather-fused GEMM
  // packing, stack_latents elimination, first-layer dInput elision).
  constexpr double kThroughputFloor = 100.0;
  constexpr double kEvictLockCeilingMs = 1.0;
  double best_throughput = throughput;
  double best_evict_lock_ms = st.evict_lock_ms_max;
  for (int attempt = 1;
       attempt < 3 && (best_throughput < kThroughputFloor ||
                       best_evict_lock_ms >= kEvictLockCeilingMs);
       ++attempt) {
    cham::serve::ServeConfig scr = sc;
    scr.store_dir = sc.store_dir + "_t" + std::to_string(attempt);
    cham::serve::SessionStore(scr.store_dir).clear();
    cham::serve::SessionManager mgr_r(scr, factory);
    const auto r0 = std::chrono::steady_clock::now();
    const auto preds_r =
        run_predict_schedule(mgr_r, streams, schedule, test_keys, nullptr);
    const double ms_r = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - r0)
                            .count();
    mgr_r.flush();
    const cham::serve::ServeStats st_r = mgr_r.stats();
    const double tp_r =
        ms_r > 0
            ? 1000.0 * static_cast<double>(st_r.observes + st_r.predicts) /
                  ms_r
            : 0.0;
    std::printf("  gate retry %d: %.1f events/s, evict lock max %.3f ms\n",
                attempt, tp_r, st_r.evict_lock_ms_max);
    if (preds_r != batched_preds) {
      std::printf("  RERUN NONDETERMINISM at gate retry %d\n", attempt);
      fidelity_exact = false;
    }
    if (tp_r > best_throughput) best_throughput = tp_r;
    if (st_r.evictions > 0 && st_r.evict_lock_ms_max < best_evict_lock_ms)
      best_evict_lock_ms = st_r.evict_lock_ms_max;
  }
  const bool throughput_ok = best_throughput >= kThroughputFloor;
  const bool evict_lock_ok =
      st.evictions > 0 && best_evict_lock_ms < kEvictLockCeilingMs;
  // Steady state must write deltas, and small ones: avg delta <= 1/5 of
  // the avg full blob.
  const int64_t delta_saves = st.wb_chunk_saves + st.wb_oplog_saves;
  const double avg_delta =
      delta_saves > 0 ? static_cast<double>(st.wb_delta_bytes) /
                            static_cast<double>(delta_saves)
                      : 0.0;
  const double avg_full =
      st.wb_full_saves > 0 ? static_cast<double>(st.wb_full_bytes) /
                                 static_cast<double>(st.wb_full_saves)
                           : 0.0;
  const bool delta_ratio_ok =
      delta_saves > 0 && avg_full > 0 && avg_delta * 5.0 <= avg_full;

  std::printf(
      "  served %lld observes + %lld predicts in %.1f ms (%.1f events/s)\n"
      "  evictions %lld, restores %lld (pending %lld / cache %lld / disk "
      "%lld), replayed ops %lld\n"
      "  snapshot serialise avg %.3f ms, evict lock max %.3f ms, flush max "
      "%.3f ms\n"
      "  flushes %lld: full %lld (avg %.0f B), chunk %lld, oplog %lld (avg "
      "delta %.0f B)\n"
      "  batching: %lld merged windows, %lld predicts batched, max window "
      "%lld; retry hints avg %.1f ms / max %.1f ms over %lld rejections\n"
      "  gates: fidelity %s, batched_bit_exact %s, throughput(>=%.0f/s) %s, "
      "evict_lock(<%.1fms) %s, delta_ratio(<=1/5) %s\n",
      static_cast<long long>(st.observes),
      static_cast<long long>(st.predicts), serve_ms, throughput,
      static_cast<long long>(st.evictions),
      static_cast<long long>(st.restores),
      static_cast<long long>(st.pending_restores),
      static_cast<long long>(st.cache_restores),
      static_cast<long long>(st.disk_restores),
      static_cast<long long>(st.replayed_ops), st.save_ms_avg(),
      st.evict_lock_ms_max, st.flush_ms_max,
      static_cast<long long>(st.wb_flushes),
      static_cast<long long>(st.wb_full_saves), avg_full,
      static_cast<long long>(st.wb_chunk_saves),
      static_cast<long long>(st.wb_oplog_saves), avg_delta,
      static_cast<long long>(st.predict_batches),
      static_cast<long long>(st.batched_predicts),
      static_cast<long long>(st.batch_size_max), st.retry_hint_ms_avg(),
      st.retry_hint_ms_max, static_cast<long long>(st.rejections),
      fidelity_exact ? "PASS" : "FAIL",
      batched_bit_exact ? "PASS" : "FAIL", kThroughputFloor,
      throughput_ok ? "PASS" : "FAIL", kEvictLockCeilingMs,
      evict_lock_ok ? "PASS" : "FAIL", delta_ratio_ok ? "PASS" : "FAIL");

  // --- int8 blob-precision ablation: same small schedule at fp32 and int8,
  // compare checkpoint size and restored-prediction agreement. ---
  const int64_t abl_sessions = std::min<int64_t>(12, sessions);
  cham::data::MultiUserConfig amc;
  amc.num_sessions = abl_sessions;
  amc.events = 80;
  amc.zipf_s = 1.1;
  amc.seed = 29;
  const auto abl_schedule = cham::data::make_zipf_schedule(amc);
  const AblationResult fp32 = run_precision_ablation(
      exp, streams, abl_schedule, abl_sessions,
      cham::quant::Precision::kFp32, "/tmp/cham_bench_abl_fp32", test_keys);
  const AblationResult int8 = run_precision_ablation(
      exp, streams, abl_schedule, abl_sessions,
      cham::quant::Precision::kInt8, "/tmp/cham_bench_abl_int8", test_keys);
  int64_t agree = 0, total = 0;
  for (int64_t s = 0; s < abl_sessions; ++s) {
    const auto& pa = fp32.preds[static_cast<size_t>(s)];
    const auto& pb = int8.preds[static_cast<size_t>(s)];
    if (pa.size() != pb.size()) continue;
    for (size_t i = 0; i < pa.size(); ++i) {
      agree += pa[i] == pb[i];
      ++total;
    }
  }
  const double agreement =
      total > 0 ? static_cast<double>(agree) / static_cast<double>(total)
                : 0.0;
  const double blob_shrink =
      int8.avg_full_blob_bytes > 0
          ? fp32.avg_full_blob_bytes / int8.avg_full_blob_bytes
          : 0.0;
  // Byte breakdown: the head (weights + BN stats + the state training must
  // resume from exactly) is fp32 by design in BOTH runs — int8 encoding
  // applies to the replay latents only. Splitting out that floor shows the
  // encoder doing its job even when the whole-blob ratio looks flat.
  const double non_head_fp32 =
      std::max(0.0, fp32.avg_full_blob_bytes - fp32.head_bytes);
  const double non_head_int8 =
      std::max(0.0, int8.avg_full_blob_bytes - int8.head_bytes);
  const double replay_shrink =
      non_head_int8 > 0 ? non_head_fp32 / non_head_int8 : 0.0;
  const double head_floor_fraction =
      int8.avg_full_blob_bytes > 0
          ? int8.head_bytes / int8.avg_full_blob_bytes
          : 0.0;
  std::printf(
      "  int8 ablation: full blob %.0f B vs %.0f B fp32 (%.2fx), "
      "prediction agreement %.4f\n"
      "    breakdown: fp32 head floor %.0f B (%.0f%% of the int8 blob); "
      "non-head %.0f B -> %.0f B (%.2fx)\n",
      int8.avg_full_blob_bytes, fp32.avg_full_blob_bytes, blob_shrink,
      agreement, fp32.head_bytes, 100.0 * head_floor_fraction, non_head_fp32,
      non_head_int8, replay_shrink);

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"bench_serve\",\n"
               "  \"sessions\": %lld,\n  \"events\": %lld,\n"
               "  \"zipf_s\": %.2f,\n  \"predict_fraction\": %.2f,\n"
               "  \"num_shards\": %lld,\n  \"max_resident\": %lld,\n"
               "  \"queue_capacity\": %lld,\n",
               static_cast<long long>(sessions),
               static_cast<long long>(events), mc.zipf_s, mc.predict_fraction,
               static_cast<long long>(sc.num_shards),
               static_cast<long long>(sc.max_resident),
               static_cast<long long>(sc.queue_capacity));
  std::fprintf(json,
               "  \"serve_ms\": %.2f,\n"
               "  \"throughput_events_per_s\": %.2f,\n"
               "  \"throughput_best_events_per_s\": %.2f,\n"
               "  \"serve_stats\": %s,\n",
               serve_ms, throughput, best_throughput, st.to_json().c_str());
  std::fprintf(json,
               "  \"aggregate_op_stats\": {\"images\": %lld, "
               "\"g_fwd_macs\": %.0f, \"g_bwd_macs\": %.0f, "
               "\"onchip_bytes\": %.0f, \"offchip_bytes\": %.0f},\n",
               static_cast<long long>(ops.images), ops.g_fwd_macs,
               ops.g_bwd_macs, ops.onchip_bytes, ops.offchip_bytes);
  std::fprintf(json,
               "  \"avg_full_blob_bytes\": %.0f,\n"
               "  \"avg_delta_bytes\": %.0f,\n"
               "  \"ablation_int8\": {\"avg_full_blob_bytes_fp32\": %.0f, "
               "\"avg_full_blob_bytes_int8\": %.0f, \"blob_shrink\": %.2f, "
               "\"prediction_agreement\": %.4f, \"keys_compared\": %lld,\n"
               "    \"byte_breakdown\": {\"head_fp32_bytes\": %.0f, "
               "\"non_head_fp32_bytes\": %.0f, \"non_head_int8_bytes\": "
               "%.0f, \"replay_shrink\": %.2f, \"head_floor_fraction\": "
               "%.3f,\n     \"note\": \"head weights, BN stats and "
               "optimiser-resume state stay fp32 by design; int8 encodes "
               "the replay latents only\"}},\n",
               avg_full, avg_delta, fp32.avg_full_blob_bytes,
               int8.avg_full_blob_bytes, blob_shrink, agreement,
               static_cast<long long>(total), fp32.head_bytes, non_head_fp32,
               non_head_int8, replay_shrink, head_floor_fraction);
  std::fprintf(json,
               "  \"fidelity_sessions_checked\": %lld,\n"
               "  \"gate_fidelity_exact\": %s,\n"
               "  \"predict_events_compared\": %lld,\n"
               "  \"gate_batched_bit_exact\": %s,\n"
               "  \"throughput_floor_events_per_s\": %.1f,\n"
               "  \"gate_throughput_ok\": %s,\n"
               "  \"evict_lock_ceiling_ms\": %.1f,\n"
               "  \"evict_lock_ms_best\": %.3f,\n"
               "  \"gate_evict_lock_ok\": %s,\n"
               "  \"gate_delta_ratio_ok\": %s\n}\n",
               static_cast<long long>(probes_checked),
               fidelity_exact ? "true" : "false",
               static_cast<long long>(batched_preds.size()),
               batched_bit_exact ? "true" : "false", kThroughputFloor,
               throughput_ok ? "true" : "false", kEvictLockCeilingMs,
               best_evict_lock_ms, evict_lock_ok ? "true" : "false",
               delta_ratio_ok ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return fidelity_exact && batched_bit_exact && throughput_ok &&
                 evict_lock_ok && delta_ratio_ok
             ? 0
             : 1;
}
