// Short-term store capacity ablation: accuracy vs the on-chip budget.
//
// Table III shows the ZCU102 fits at most ~10 paper-scale latents of ST
// next to the weight/activation buffers; this bench asks what accuracy that
// constraint costs by sweeping M_s — connecting the accuracy story (Table
// I) to the resource story (Table III) through one knob.
//
//   ./bench_ablation_st_capacity [--quick] [--runs N]
#include <cstdio>

#include "bench/bench_common.h"
#include "hw/fpga_model.h"

using namespace cham;

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  bench::apply_flags(cfg, flags);
  metrics::Experiment exp(cfg);

  std::printf("=== ST capacity ablation (Chameleon, Ml=100) ===\n");
  metrics::TablePrinter t({"Ms", "ST KiB", "BRAM % (32KiB lat.)",
                           "Acc_all (%)"},
                          {5, 8, 20, 18});
  t.print_header();

  for (int64_t ms : {2, 5, 10, 20, 40}) {
    core::ChameleonConfig cc;
    cc.st_capacity = ms;
    cc.lt_capacity = 100;

    metrics::RunningStat acc;
    double st_kib = 0;
    for (int64_t run = 0; run < flags.runs; ++run) {
      data::StreamConfig sc = cfg.stream;
      sc.seed = cfg.stream.seed + static_cast<uint64_t>(run) * 1000003;
      data::DomainIncrementalStream stream(cfg.data, sc);
      exp.warm_latents(stream);
      core::ChameleonLearner learner(exp.env(), cc,
                                     static_cast<uint64_t>(run) + 1);
      exp.run(learner, stream);
      acc.add(exp.evaluate(learner).acc_all);
      st_kib = learner.st_bytes() / 1024.0;
    }
    // FPGA feasibility at paper-scale latents (32 KiB each).
    hw::FpgaAcceleratorConfig fc;
    fc.st_replay_buffer_kib = ms * 32;
    const auto res = hw::estimate_fpga_resources(fc);
    t.print_row({std::to_string(ms), metrics::TablePrinter::fmt(st_kib, 1),
                 metrics::TablePrinter::fmt(res.bram_pct, 1) +
                     (res.fits ? "" : " (!)"),
                 metrics::TablePrinter::mean_std(acc.mean(), acc.stddev())});
    std::fflush(stdout);
  }
  std::printf("\n(!) = exceeds the ZCU102's BRAM at paper-scale latents: the"
              " paper's Ms=10 is the\nlargest deployable short-term store,"
              " and the accuracy column shows the penalty of\ngoing"
              " smaller.\n");
  return 0;
}
