// Thread-scaling report for the parallel tensor backend.
//
// Times the MobileNet-head GEMM shapes (forward pointwise conv over the
// 256-channel latent, its batched variant, the eval-chunk shape, and the two
// backward kernels) at 1/2/4/8 threads, verifies the outputs are
// bit-identical across thread counts, and writes BENCH_threads.json so the
// scaling trajectory is tracked from PR to PR.
//
// Gates recorded in the JSON artefact:
//   * bit_identical        — every shape's output matches t=1 byte-for-byte
//     at every thread count (the repo-wide determinism contract).
//   * speedup_ok           — the large eval-chunk GEMM reaches a modest
//     4-thread speedup floor. Only enforced when the machine can scale:
//     on a single-core box `scaling_meaningful` is false and the gate is
//     skipped (thread counts > cores measure oversubscription, not scaling).
//   * no_subgrain_wakeup   — the sub-half-MFLOP head forward (256x4x256,
//     exactly at the flop-aware grain) must run inline on the calling
//     thread: zero pool dispatches at any thread count. Regression guard
//     for the wakeup-skip path (tensor/thread_pool.cpp fast path + the
//     flop-aware gemm_grain), which is what keeps per-request serve
//     latency flat when the pool is sized for batch work.
//
//   ./build/bench/bench_threads [--reps N] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/thread_pool.h"

namespace {

using cham::Tensor;

enum class Kernel { kGemm, kGemmAtB, kGemmABt };

struct ShapeCase {
  const char* name;
  Kernel kernel;
  int64_t m, n, k;
};

// The trainable head works on 256-channel 2x2 latents: the pointwise conv is
// a (256 x 256) @ (256 x 4) gemm per sample; training batches and the
// 256-sample eval chunk widen N; the backward pass runs the A^T B / A B^T
// kernels on the same operands.
constexpr ShapeCase kCases[] = {
    {"head_pointwise_1x", Kernel::kGemm, 256, 4, 256},
    {"head_pointwise_b32", Kernel::kGemm, 256, 128, 256},
    {"head_eval_chunk", Kernel::kGemm, 256, 1024, 256},
    {"head_backward_dcol", Kernel::kGemmAtB, 256, 128, 256},
    {"head_backward_dw", Kernel::kGemmABt, 256, 256, 128},
};

constexpr int kThreadCounts[] = {1, 2, 4, 8};

void run_kernel(const ShapeCase& sc, const float* a, const float* b,
                float* c) {
  switch (sc.kernel) {
    case Kernel::kGemm:
      cham::gemm(sc.m, sc.n, sc.k, 1.0f, a, b, 0.0f, c);
      break;
    case Kernel::kGemmAtB:
      cham::gemm_at_b(sc.m, sc.n, sc.k, 1.0f, a, b, 0.0f, c);
      break;
    case Kernel::kGemmABt:
      cham::gemm_a_bt(sc.m, sc.n, sc.k, 1.0f, a, b, 0.0f, c);
      break;
  }
}

double time_case_ms(const ShapeCase& sc, const float* a, const float* b,
                    float* c, int reps) {
  // Warmup (also spawns pool workers so they are not timed).
  run_kernel(sc, a, b, c);
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run_kernel(sc, a, b, c);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 30;
  std::string out_path = "BENCH_threads.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::max(1, std::atoi(argv[++i]));
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  std::printf("bench_threads: %u hardware threads, %d reps (best-of)\n\n",
              std::thread::hardware_concurrency(), reps);
  std::printf("%-22s %10s %10s %10s %10s %8s %8s\n", "shape", "t=1 ms",
              "t=2 ms", "t=4 ms", "t=8 ms", "4v1", "bitsame");

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json) {
    std::fprintf(json,
                 "{\n  \"bench\": \"bench_threads\",\n"
                 "  \"hardware_concurrency\": %u,\n  \"reps\": %d,\n"
                 "  \"results\": [\n",
                 std::thread::hardware_concurrency(), reps);
  }

  bool first_case = true;
  bool all_bit_identical = true;
  double eval_chunk_speedup = 0.0;
  for (const ShapeCase& sc : kCases) {
    cham::Rng rng(0xB35Cull + sc.m * 31 + sc.n * 7 + sc.k);
    Tensor a({sc.m, sc.k}), b({sc.k, sc.n}), c({sc.m, sc.n});
    if (sc.kernel == Kernel::kGemmAtB) a = Tensor({sc.k, sc.m});
    if (sc.kernel == Kernel::kGemmABt) b = Tensor({sc.n, sc.k});
    cham::ops::fill_normal(a, rng, 0.0f, 1.0f);
    cham::ops::fill_normal(b, rng, 0.0f, 1.0f);

    double ms[4] = {0, 0, 0, 0};
    Tensor ref;
    bool bit_identical = true;
    for (size_t ti = 0; ti < 4; ++ti) {
      cham::set_num_threads(kThreadCounts[ti]);
      ms[ti] = time_case_ms(sc, a.data(), b.data(), c.data(), reps);
      if (ti == 0) {
        ref = c;
      } else if (cham::ops::max_abs_diff(c, ref) != 0.0) {
        bit_identical = false;
      }
    }
    const double speedup = ms[2] > 0 ? ms[0] / ms[2] : 0.0;
    all_bit_identical = all_bit_identical && bit_identical;
    if (std::strcmp(sc.name, "head_eval_chunk") == 0) {
      eval_chunk_speedup = speedup;
    }
    std::printf("%-22s %10.4f %10.4f %10.4f %10.4f %7.2fx %8s\n", sc.name,
                ms[0], ms[1], ms[2], ms[3], speedup,
                bit_identical ? "yes" : "NO");

    if (json) {
      std::fprintf(json,
                   "%s    {\"shape\": \"%s\", \"m\": %lld, \"n\": %lld, "
                   "\"k\": %lld,\n     \"ms\": {\"1\": %.5f, \"2\": %.5f, "
                   "\"4\": %.5f, \"8\": %.5f},\n     \"speedup_4_vs_1\": "
                   "%.3f, \"bit_identical\": %s}",
                   first_case ? "" : ",\n", sc.name,
                   static_cast<long long>(sc.m), static_cast<long long>(sc.n),
                   static_cast<long long>(sc.k), ms[0], ms[1], ms[2], ms[3],
                   speedup, bit_identical ? "true" : "false");
      first_case = false;
    }
  }
  // Wakeup regression check: the 1-sample head forward (2*256*4*256 flops,
  // exactly the flop-aware grain) must stay on the inline fast path even
  // with a wide pool — a dispatch would cost more than the ~20us of
  // arithmetic it hides, and the serve path issues this shape per request.
  cham::set_num_threads(4);
  const ShapeCase& sub = kCases[0];  // head_pointwise_1x
  cham::Rng wrng(0x5AB6);
  Tensor wa({sub.m, sub.k}), wb({sub.k, sub.n}), wc({sub.m, sub.n});
  cham::ops::fill_normal(wa, wrng, 0.0f, 1.0f);
  cham::ops::fill_normal(wb, wrng, 0.0f, 1.0f);
  run_kernel(sub, wa.data(), wb.data(), wc.data());  // warm the pool
  const uint64_t d0 = cham::detail::pool_dispatches();
  for (int r = 0; r < 16; ++r) {
    run_kernel(sub, wa.data(), wb.data(), wc.data());
  }
  const uint64_t subgrain_dispatches = cham::detail::pool_dispatches() - d0;
  cham::set_num_threads(static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency())));

  // Gates. Thread counts beyond the core count only measure contention, so
  // the speedup floor is enforced only where 4 threads can actually run in
  // parallel; the determinism and wakeup gates hold everywhere.
  const bool scaling_meaningful = std::thread::hardware_concurrency() > 1;
  constexpr double kSpeedupFloor = 1.25;  // 4 threads on head_eval_chunk
  const bool speedup_ok =
      !scaling_meaningful || eval_chunk_speedup >= kSpeedupFloor;
  const bool no_subgrain_wakeup = subgrain_dispatches == 0;
  std::printf(
      "\n  gates: bit_identical %s, speedup(>=%.2fx @4t) %s%s, "
      "subgrain_wakeups(=0) %s (%llu dispatches)\n",
      all_bit_identical ? "PASS" : "FAIL", kSpeedupFloor,
      speedup_ok ? "PASS" : "FAIL",
      scaling_meaningful ? "" : " [skipped: 1 core]",
      no_subgrain_wakeup ? "PASS" : "FAIL",
      static_cast<unsigned long long>(subgrain_dispatches));

  if (json) {
    std::fprintf(json,
                 "\n  ],\n"
                 "  \"scaling_meaningful\": %s,\n"
                 "  \"speedup_floor_4_vs_1\": %.2f,\n"
                 "  \"gate_speedup_ok\": %s,\n"
                 "  \"speedup_gate_skipped\": %s,\n"
                 "  \"gate_bit_identical\": %s,\n"
                 "  \"subgrain_pool_dispatches\": %llu,\n"
                 "  \"gate_no_subgrain_wakeup\": %s\n}\n",
                 scaling_meaningful ? "true" : "false", kSpeedupFloor,
                 speedup_ok ? "true" : "false",
                 scaling_meaningful ? "false" : "true",
                 all_bit_identical ? "true" : "false",
                 static_cast<unsigned long long>(subgrain_dispatches),
                 no_subgrain_wakeup ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return all_bit_identical && speedup_ok && no_subgrain_wakeup ? 0 : 1;
}
