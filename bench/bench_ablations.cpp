// Ablation suite for the design choices DESIGN.md calls out (one section
// per ablation so a single binary regenerates them all):
//   A. dual ST+LT hierarchy vs a single buffer of equal total size
//   B. ST sampling: full Eq. 4 vs uncertainty-only vs affinity-only vs random
//   C. LT acquisition: prototype-KL (Eq. 6) vs random promotion
//   D. rho sweep (Eq. 2 allocation exponent)
//   E. LT access period h (accuracy vs off-chip traffic trade-off)
//
//   ./bench_ablations [--quick] [--runs N]
#include <cstdio>

#include "bench/bench_common.h"

using namespace cham;

namespace {

metrics::RunningStat run_chameleon(metrics::Experiment& exp,
                                   const metrics::ExperimentConfig& cfg,
                                   const core::ChameleonConfig& cc,
                                   int64_t runs, double* offchip_mb = nullptr) {
  metrics::RunningStat acc;
  for (int64_t run = 0; run < runs; ++run) {
    data::StreamConfig sc = cfg.stream;
    sc.seed = cfg.stream.seed + static_cast<uint64_t>(run) * 1000003;
    data::DomainIncrementalStream stream(cfg.data, sc);
    exp.warm_latents(stream);
    core::ChameleonLearner learner(exp.env(), cc,
                                   static_cast<uint64_t>(run) + 1);
    exp.run(learner, stream);
    acc.add(exp.evaluate(learner).acc_all);
    if (offchip_mb && run == 0) {
      *offchip_mb = learner.stats().per_image(learner.stats().offchip_bytes) /
                    1024.0;  // KiB per image
    }
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  bench::apply_flags(cfg, flags);
  metrics::Experiment exp(cfg);

  const int64_t runs = flags.runs;
  core::ChameleonConfig base;
  base.lt_capacity = 100;

  // ---------------------------------------------------------- A: dual vs
  std::printf("=== Ablation A: dual-buffer hierarchy vs single buffer ===\n");
  {
    metrics::TablePrinter t({"Configuration", "Acc_all (%)"}, {38, 18});
    t.print_header();
    auto dual = run_chameleon(exp, cfg, base, runs);
    t.print_row({"Chameleon ST=10 + LT=100 (dual)",
                 metrics::TablePrinter::mean_std(dual.mean(), dual.stddev())});
    // Single unified buffer of the same total size = Latent Replay(110).
    auto single = bench::run_cell(exp, cfg, "Latent Replay", 110, runs);
    t.print_row({"Single buffer of 110 (Latent Replay)",
                 metrics::TablePrinter::mean_std(single.mean(),
                                                 single.stddev())});
    // ST-only and LT-only degenerate variants.
    core::ChameleonConfig st_only = base;
    st_only.lt_capacity = 1;  // effectively no LT
    auto st_acc = run_chameleon(exp, cfg, st_only, runs);
    t.print_row({"ST-only (LT disabled)",
                 metrics::TablePrinter::mean_std(st_acc.mean(),
                                                 st_acc.stddev())});
  }

  // ------------------------------------------------------- B: ST sampling
  std::printf("\n=== Ablation B: short-term sampling strategy (Eq. 4) ===\n");
  {
    metrics::TablePrinter t({"ST policy", "Acc_all (%)"}, {34, 18});
    t.print_header();
    struct Variant {
      const char* name;
      bool affinity, uncertainty;
    };
    for (const Variant v :
         {Variant{"user-aware + uncertainty (full)", true, true},
          Variant{"uncertainty only (alpha=0)", false, true},
          Variant{"user-affinity only (beta=0)", true, false},
          Variant{"random (both off)", false, false}}) {
      core::ChameleonConfig cc = base;
      cc.use_user_affinity = v.affinity;
      cc.use_uncertainty = v.uncertainty;
      auto acc = run_chameleon(exp, cfg, cc, runs);
      t.print_row({v.name, metrics::TablePrinter::mean_std(acc.mean(),
                                                           acc.stddev())});
      std::fflush(stdout);
    }
  }

  // ----------------------------------------------------- C: LT acquisition
  std::printf("\n=== Ablation C: long-term acquisition (Eq. 5-6) ===\n");
  {
    metrics::TablePrinter t({"LT policy", "Acc_all (%)"}, {34, 18});
    t.print_header();
    for (bool proto : {true, false}) {
      core::ChameleonConfig cc = base;
      cc.use_prototype_selection = proto;
      auto acc = run_chameleon(exp, cfg, cc, runs);
      t.print_row({proto ? "prototype-KL selection (Eq. 6)"
                         : "random class-balanced promotion",
                   metrics::TablePrinter::mean_std(acc.mean(), acc.stddev())});
      std::fflush(stdout);
    }
  }

  // -------------------------------------------------------------- D: rho
  std::printf("\n=== Ablation D: allocation exponent rho (Eq. 2) ===\n");
  {
    metrics::TablePrinter t({"rho", "Acc_all (%)"}, {6, 18});
    t.print_header();
    for (float rho : {0.0f, 0.25f, 0.5f, 0.75f, 1.0f}) {
      core::ChameleonConfig cc = base;
      cc.rho = rho;
      auto acc = run_chameleon(exp, cfg, cc, runs);
      t.print_row({metrics::TablePrinter::fmt(rho, 2),
                   metrics::TablePrinter::mean_std(acc.mean(), acc.stddev())});
      std::fflush(stdout);
    }
  }

  // ---------------------------------------------------------------- E: h
  std::printf("\n=== Ablation E: LT access period h (accuracy vs off-chip"
              " traffic) ===\n");
  {
    metrics::TablePrinter t({"h", "Acc_all (%)", "Off-chip KiB/img"},
                            {4, 18, 16});
    t.print_header();
    for (int64_t h : {1, 5, 10, 20, 50}) {
      core::ChameleonConfig cc = base;
      cc.lt_period_h = h;
      double kib = 0;
      auto acc = run_chameleon(exp, cfg, cc, runs, &kib);
      t.print_row({std::to_string(h),
                   metrics::TablePrinter::mean_std(acc.mean(), acc.stddev()),
                   metrics::TablePrinter::fmt(kib, 2)});
      std::fflush(stdout);
    }
    std::printf("Paper setting h = 10: near-peak accuracy at ~10x less"
                " off-chip replay traffic than h = 1.\n");
  }
  return 0;
}
