// User-preference skew ablation: how much of Chameleon's edge over a
// unified reservoir buffer comes from the user-centric stream?
//
// Sweeps the stream's preference weight (1 = uniform user, higher = the
// paper's personalised regime where 5 classes dominate) and reports both
// learners' Acc_all plus Chameleon's accuracy on the preferred slice. The
// class-balanced long-term store is exactly the mechanism that should
// separate the two as skew grows.
//
//   ./bench_ablation_user_skew [--quick] [--runs N]
#include <cstdio>

#include "bench/bench_common.h"

using namespace cham;

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  metrics::ExperimentConfig base = metrics::core50_experiment();
  bench::apply_flags(base, flags);
  metrics::Experiment exp(base);

  std::printf("=== User-skew ablation (buffer 100 each) ===\n");
  metrics::TablePrinter t({"Pref weight", "Chameleon", "Latent Replay",
                           "Cham preferred-slice"},
                          {12, 16, 16, 20});
  t.print_header();

  for (float w : {1.0f, 4.0f, 8.0f, 12.0f, 20.0f}) {
    metrics::ExperimentConfig cfg = base;
    cfg.stream.preference_weight = w;

    metrics::RunningStat cham_acc, lr_acc, pref_acc;
    for (int64_t run = 0; run < flags.runs; ++run) {
      data::StreamConfig sc = cfg.stream;
      sc.seed = cfg.stream.seed + static_cast<uint64_t>(run) * 1000003;
      data::DomainIncrementalStream stream(cfg.data, sc);
      exp.warm_latents(stream);

      core::ChameleonConfig cc;
      cc.lt_capacity = 100;
      core::ChameleonLearner cham(exp.env(), cc,
                                  static_cast<uint64_t>(run) + 1);
      exp.run(cham, stream);
      const auto keys = data::all_test_keys(cfg.data);
      const auto rep = metrics::evaluate(
          cham, keys, stream.preferred_by_domain().back());
      cham_acc.add(rep.acc_all);
      pref_acc.add(rep.acc_preferred);

      baselines::LatentReplayLearner lr(exp.env(), 100,
                                        static_cast<uint64_t>(run) + 1);
      exp.run(lr, stream);
      lr_acc.add(exp.evaluate(lr).acc_all);
    }
    t.print_row({metrics::TablePrinter::fmt(w, 0),
                 metrics::TablePrinter::fmt(cham_acc.mean(), 2),
                 metrics::TablePrinter::fmt(lr_acc.mean(), 2),
                 metrics::TablePrinter::fmt(pref_acc.mean(), 2)});
    std::fflush(stdout);
  }
  std::printf("\nAs skew grows, the reservoir buffer fills with preferred-"
              "class duplicates while the\nclass-balanced LT protects the"
              " tail — Chameleon's Acc_all margin should widen.\n");
  return 0;
}
