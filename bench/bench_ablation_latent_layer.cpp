// Latent-layer ablation: where to split MobileNetV1 (the paper picks conv
// layer 21 of 27). Earlier splits give bigger latents (more replay memory,
// more trainable compute); later splits shrink the buffer but leave the head
// too small to adapt. Prints accuracy, per-sample latent size and head
// training MACs per split point.
//
//   ./bench_ablation_latent_layer [--quick] [--runs N]
#include <cstdio>

#include "bench/bench_common.h"

using namespace cham;

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);

  metrics::TablePrinter t({"Latent layer", "Latent KiB", "Head MMACs",
                           "Acc_all (%)"},
                          {13, 11, 11, 18});
  std::printf("=== Latent-layer split ablation (CORe50, Chameleon Ml=100)"
              " ===\n");
  t.print_header();

  for (int64_t layer : {13, 17, 21, 25}) {
    metrics::ExperimentConfig cfg = metrics::core50_experiment();
    bench::apply_flags(cfg, flags);
    cfg.model.latent_conv_layer = layer;

    metrics::Experiment exp(cfg);
    core::ChameleonConfig cc;
    cc.lt_capacity = 100;

    metrics::RunningStat acc;
    int64_t head_macs = 0;
    for (int64_t run = 0; run < flags.runs; ++run) {
      data::StreamConfig sc = cfg.stream;
      sc.seed = cfg.stream.seed + static_cast<uint64_t>(run) * 1000003;
      data::DomainIncrementalStream stream(cfg.data, sc);
      exp.warm_latents(stream);
      core::ChameleonLearner learner(exp.env(), cc,
                                     static_cast<uint64_t>(run) + 1);
      exp.run(learner, stream);
      acc.add(exp.evaluate(learner).acc_all);
      head_macs = learner.g_fwd_macs();
    }
    t.print_row({std::to_string(layer) + "/27",
                 metrics::TablePrinter::fmt(
                     exp.latent_shape().numel() * 4.0 / 1024.0, 1),
                 metrics::TablePrinter::fmt(head_macs / 1e6, 2),
                 metrics::TablePrinter::mean_std(acc.mean(), acc.stddev())});
    std::fflush(stdout);
  }
  std::printf("\nPaper Sec. IV-A: layer 21 balances accuracy against replay"
              " size and training cost.\n");
  return 0;
}
