// Reproduces Table II: per-image training latency and energy for
// Latent Replay, SLDA and Chameleon on the three edge-device models
// (Jetson Nano, ZCU102 FPGA, EdgeTPU systolic simulator).
//
// Each method runs functionally over a batch-size-1 stream (the paper's
// FPGA operating point: "batch size of one and ten replay elements per
// incoming input"); its OpStats trace (MACs, on-/off-chip replay bytes,
// dense-linalg FLOPs) is then costed on every device profile.
//
//   ./bench_table2_edge_devices [--quick]
#include <cstdio>

#include "bench/bench_common.h"
#include "hw/device.h"
#include "hw/fpga_model.h"

using namespace cham;

namespace {

// Off-chip DMA transactions per image: per-sample random access for the
// unified Latent Replay buffer, one burst every h batches for Chameleon's
// long-term store, one covariance-row update for SLDA.
double transactions_per_image(const std::string& method) {
  if (method == "Latent Replay") return 11.0;  // 10 loads + 1 store
  if (method == "Chameleon") return 0.2;       // burst LT access every h=10
  if (method == "SLDA") return 1.0;
  return 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  bench::apply_flags(cfg, flags);
  if (!flags.quick) {
    // Cost profiling does not need the full pool: a shorter, representative
    // stream keeps the bench fast while the per-image averages converge.
    cfg.data.train_instances = 2;
  }
  cfg.stream.batch_size = 1;  // Table II operating point
  cfg.model.num_classes = cfg.data.num_classes;

  metrics::Experiment exp(cfg);

  const std::vector<hw::DeviceProfile> devices = {
      hw::jetson_nano(), hw::zcu102_fpga(), hw::edgetpu()};
  const std::vector<std::string> methods = {"Latent Replay", "SLDA",
                                            "Chameleon"};

  std::printf("=== Table II: latency / energy per image on edge devices ===\n");
  std::printf("(Latent Replay buffer 1500 — the paper's 48 MB row; Chameleon"
              " Ms=10, Ml=100)\n\n");

  metrics::TablePrinter table(
      {"Method", "Memory (MB)", "Device", "Latency (ms)", "Energy (J)",
       "Mem share"},
      {16, 12, 14, 13, 12, 9});
  table.print_header();

  std::vector<std::vector<double>> latencies(methods.size());
  std::vector<core::OpStats> traces(methods.size());
  for (size_t mi = 0; mi < methods.size(); ++mi) {
    const std::string& method = methods[mi];
    const int64_t buffer = method == "Latent Replay" ? 1500 : 100;
    core::OpStats stats;
    bench::run_cell(exp, cfg, method, buffer, /*runs=*/1, &stats);
    traces[mi] = stats;

    auto probe = bench::make_learner(method, exp.env(), buffer, 1);
    const double mb = replay::bytes_to_mb(probe->memory_overhead_bytes());

    for (const auto& dev : devices) {
      const auto cost =
          hw::estimate_cost(stats, dev, transactions_per_image(method));
      latencies[mi].push_back(cost.latency_ms);
      table.print_row(
          {method, metrics::TablePrinter::fmt(mb, 2), dev.name,
           metrics::TablePrinter::fmt(cost.latency_ms, 3),
           metrics::TablePrinter::fmt(cost.energy_j, 4),
           metrics::TablePrinter::fmt(cost.mem_fraction * 100, 0) + "%"});
    }
    std::fflush(stdout);
  }

  std::printf("\nSpeedups of Chameleon (paper: 3.5x/2.1x Jetson, 6.75x FPGA,"
              " 11.7x EdgeTPU):\n");
  const char* dev_names[] = {"Jetson Nano", "ZCU102 FPGA", "EdgeTPU"};
  for (size_t d = 0; d < 3; ++d) {
    std::printf("  %-12s vs Latent Replay: %5.2fx   vs SLDA: %5.2fx\n",
                dev_names[d], latencies[0][d] / latencies[2][d],
                latencies[1][d] / latencies[2][d]);
  }

  // Paper-scale projection: the paper's MobileNetV1 (width 1.0, 128x128
  // input) produces 32 KiB latents, 16x ours, so the data-movement share of
  // every replay method grows accordingly. Rescale the replay traffic of
  // each trace and re-cost the FPGA rows — this is the operating point of
  // the paper's 6.75x claim.
  {
    const double scale =
        32.0 * 1024.0 /
        static_cast<double>(exp.latent_shape().numel() * 4 + 4);
    std::vector<double> fpga_ms;
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      core::OpStats s = traces[mi];
      s.onchip_bytes *= scale;
      s.offchip_bytes *= scale;
      fpga_ms.push_back(hw::estimate_cost(s, hw::zcu102_fpga(),
                                          transactions_per_image(methods[mi]))
                            .latency_ms);
    }
    std::printf("\nZCU102 projected to paper-scale 32 KiB latents:"
                " Chameleon %.2fx vs Latent Replay, %.2fx vs SLDA\n",
                fpga_ms[0] / fpga_ms[2], fpga_ms[1] / fpga_ms[2]);
  }

  // FPGA context for the latency rows: the accelerator design point.
  const auto res = hw::estimate_fpga_resources({});
  std::printf("\nZCU102 accelerator: %lldx%lld fp16 array @ %.0f MHz, "
              "%lld DSP / %lld BRAM / %lld LUT\n",
              (long long)hw::FpgaAcceleratorConfig{}.pe_rows,
              (long long)hw::FpgaAcceleratorConfig{}.pe_cols,
              hw::FpgaAcceleratorConfig{}.freq_mhz, (long long)res.dsp,
              (long long)res.bram, (long long)res.luts);
  return 0;
}
