// Reproduces Table I: Acc_all (mean ± std) and memory overhead for every
// method on the OpenLORIS-like and CORe50-like benchmarks, across replay
// buffer sizes {100, 200, 500, 1500} (Chameleon: M_s = 10 fixed, M_l swept).
//
//   ./bench_table1_accuracy [--runs N] [--quick] [--instances K]
//
// Defaults are sized for a single core; the paper's protocol (10 runs, full
// CORe50/OpenLORIS) is the same code with bigger knobs.
#include <cstdio>

#include "bench/bench_common.h"
#include "metrics/csv.h"

using namespace cham;

namespace {

struct Row {
  std::string method;
  std::vector<int64_t> buffer_sizes;  // empty = no buffer column
  int64_t runs_override = 0;          // 0 = use global
};

void run_dataset(const char* title, metrics::ExperimentConfig cfg,
                 const bench::Flags& flags) {
  bench::apply_flags(cfg, flags);
  std::printf("\n=== Table I (%s): %lld classes x %lld domains, %lld runs "
              "per cell ===\n",
              title, (long long)cfg.data.num_classes,
              (long long)cfg.data.num_domains, (long long)flags.runs);

  metrics::Experiment exp(cfg);

  const std::vector<Row> rows = {
      {"JOINT", {}, 1},
      {"Finetuning", {}, 0},
      {"EWC++", {}, 0},
      {"LwF", {}, 0},
      {"SLDA", {}, 0},
      {"GSS", {100, 200, 500, 1500}, 1},
      {"ER", {100, 200, 500, 1500}, 1},
      {"DER", {100, 200, 500, 1500}, 1},
      {"Latent Replay", {100, 200, 500, 1500}, 0},
      {"Chameleon", {100, 200, 500, 1500}, 0},
  };

  metrics::TablePrinter table({"Method", "Buffer", "Memory (MB)",
                               "Acc_all (%)"},
                              {22, 10, 14, 20});
  table.print_header();
  metrics::CsvWriter csv(
      {"method", "buffer", "memory_mb", "acc_mean", "acc_std", "runs"});

  for (const Row& row : rows) {
    const int64_t runs =
        row.runs_override > 0 ? std::min(row.runs_override, flags.runs)
                              : flags.runs;
    const std::vector<int64_t> sizes =
        row.buffer_sizes.empty() ? std::vector<int64_t>{0} : row.buffer_sizes;
    for (int64_t size : sizes) {
      // Probe memory overhead from a fresh instance (independent of run).
      auto probe = bench::make_learner(row.method, exp.env(), size, 1);
      const double mb =
          replay::bytes_to_mb(probe->memory_overhead_bytes());
      probe.reset();

      auto acc = bench::run_cell(exp, cfg, row.method, size, runs);
      std::string label = row.method;
      if (row.method == "Chameleon") {
        label += " (Ms=10)";
      }
      table.print_row({label, size > 0 ? std::to_string(size) : "-",
                       size > 0 || mb > 0 ? metrics::TablePrinter::fmt(mb, 2)
                                          : "-",
                       metrics::TablePrinter::mean_std(acc.mean(),
                                                       acc.stddev())});
      csv.append_row({row.method, std::to_string(size),
                      metrics::TablePrinter::fmt(mb, 3),
                      metrics::TablePrinter::fmt(acc.mean(), 3),
                      metrics::TablePrinter::fmt(acc.stddev(), 3),
                      std::to_string(runs)});
      std::fflush(stdout);
    }
  }
  const std::string csv_path =
      std::string("table1_") + cfg.data.name + ".csv";
  if (csv.write(csv_path)) {
    std::printf("(machine-readable copy: %s)\n", csv_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);
  run_dataset("OpenLORIS", metrics::openloris_experiment(), flags);
  run_dataset("CORe50", metrics::core50_experiment(), flags);
  std::printf(
      "\nPaper reference (Table I): Chameleon matches/beats Latent Replay at"
      " every buffer size\nwith only 0.3 MB on-chip, and approaches JOINT;"
      " ER/DER degrade at small buffers;\nGSS pays ~10x memory; EWC++/LwF"
      " collapse under domain shift.\n");
  return 0;
}
