// Replay-buffer storage-precision ablation (extension implied by the
// paper's hardware: the ZCU102 design computes in fp16 and the EdgeTPU
// study in BFP). Measures Chameleon's Acc_all when buffered latents are
// stored at fp32 / fp16 / bfp8 / int8, and the resulting on-chip (ST) and
// off-chip (LT) buffer footprints — reduced precision fits 2x-4x the
// samples in the same SRAM budget at (ideally) no accuracy cost.
//
//   ./bench_ablation_precision [--quick] [--runs N]
#include <cstdio>

#include "bench/bench_common.h"
#include "quant/quantize.h"

using namespace cham;

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  bench::apply_flags(cfg, flags);
  metrics::Experiment exp(cfg);

  std::printf("=== Replay storage precision ablation (Chameleon, Ml=100)"
              " ===\n");
  metrics::TablePrinter t({"Precision", "ST KiB", "LT KiB", "Acc_all (%)"},
                          {10, 8, 8, 18});
  t.print_header();

  for (quant::Precision p :
       {quant::Precision::kFp32, quant::Precision::kFp16,
        quant::Precision::kBfp8, quant::Precision::kInt8}) {
    core::ChameleonConfig cc;
    cc.lt_capacity = 100;
    cc.buffer_precision = p;

    metrics::RunningStat acc;
    double st_kib = 0, lt_kib = 0;
    for (int64_t run = 0; run < flags.runs; ++run) {
      data::StreamConfig sc = cfg.stream;
      sc.seed = cfg.stream.seed + static_cast<uint64_t>(run) * 1000003;
      data::DomainIncrementalStream stream(cfg.data, sc);
      exp.warm_latents(stream);
      core::ChameleonLearner learner(exp.env(), cc,
                                     static_cast<uint64_t>(run) + 1);
      exp.run(learner, stream);
      acc.add(exp.evaluate(learner).acc_all);
      st_kib = learner.st_bytes() / 1024.0;
      lt_kib = learner.lt_bytes() / 1024.0;
    }
    t.print_row({quant::precision_name(p),
                 metrics::TablePrinter::fmt(st_kib, 1),
                 metrics::TablePrinter::fmt(lt_kib, 1),
                 metrics::TablePrinter::mean_std(acc.mean(), acc.stddev())});
    std::fflush(stdout);
  }
  std::printf("\nfp16 halves both stores; bfp8/int8 reach ~4x density."
              " The accuracy column shows what that compression costs.\n");
  return 0;
}
