// Observe-path report for the zero-copy replay pipeline (BENCH_observe.json).
//
// Measures the ChameleonLearner::observe() hot loop after the gather-fused
// GEMM packing rework:
//
//   latency   p50 / p99 of observe() wall time in the steady state (latent
//             cache warm, ST/LT full, Adam state allocated).
//
//   alloc     Heap traffic via a counting global operator new, split into
//             off-cycle steps (gate: ZERO allocations — the gather path
//             packs panels straight from cache/slab/LT rows, so nothing is
//             stacked, staged or copied on the steady path) and the every-h
//             LT maintenance steps (bounded, reported separately).
//
//   stacking  data::stack_latents_calls() across the measured window.
//             Gate: zero — the batched-copy entry point must be dead on
//             both the train path and the chunked predict path.
//
//   macs      The backward MAC model before/after first-layer dInput
//             elision: the old ledger charged a blanket 2x forward; the
//             head's first trainable layer no longer produces dX, so the
//             exact model must come in strictly below 2x. Cross-checked
//             against the live ledger (stats().g_bwd_macs delta per step).
//
//   ./build/bench/bench_observe [--steps N] [--out PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "core/chameleon.h"
#include "data/latent_cache.h"
#include "nn/layers.h"
#include "nn/sequential.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

// ---------------------------------------------------------------------------
// Counting global new/delete (same idiom as bench_kernels): every heap
// allocation in the process, including aligned workspace refills, bumps the
// counters.
namespace {

std::atomic<long long> g_heap_allocs{0};
std::atomic<long long> g_heap_bytes{0};

struct HeapSnapshot {
  long long allocs = 0;
  long long bytes = 0;
};

HeapSnapshot heap_now() {
  return {g_heap_allocs.load(std::memory_order_relaxed),
          g_heap_bytes.load(std::memory_order_relaxed)};
}

HeapSnapshot heap_delta(const HeapSnapshot& from) {
  const HeapSnapshot now = heap_now();
  return {now.allocs - from.allocs, now.bytes - from.bytes};
}

void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(static_cast<long long>(n),
                         std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(static_cast<long long>(n),
                         std::memory_order_relaxed);
  const std::size_t rounded = ((n ? n : 1) + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (!p) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace cham;

// Tiny deterministic environment (behavior-test scale: 3x8x8 images, one
// frozen conv producing 4x4x4 latents) with a head whose FIRST layer is a
// real conv — the dInput elision has to save a measurable MAC share, which
// a GAP-first head would hide.
struct BenchEnv {
  data::DatasetConfig data_cfg;
  std::unique_ptr<nn::Sequential> f;
  std::unique_ptr<data::LatentCache> latents;
  core::LearnerEnv env;

  BenchEnv() {
    data_cfg = data::core50_config();
    data_cfg.num_classes = 6;
    data_cfg.num_domains = 3;
    data_cfg.image_hw = 8;
    data_cfg.train_instances = 4;

    Rng frng(1);
    f = std::make_unique<nn::Sequential>();
    f->add(std::make_unique<nn::Conv2d>(3, 4, 8, 8, 3, 2, 1, false, frng));
    f->add(std::make_unique<nn::ReLU>());
    latents = std::make_unique<data::LatentCache>(data_cfg, *f);

    env.data_cfg = &data_cfg;
    env.latents = latents.get();
    env.latent_shape = Shape{{4, 4, 4}};
    env.f_fwd_macs = f->macs_per_sample();
    env.lr = 0.01f;
    env.head_factory = [] {
      Rng hrng(2);
      auto g = std::make_unique<nn::Sequential>();
      g->add(std::make_unique<nn::Conv2d>(4, 8, 4, 4, 3, 1, 1, false, hrng));
      g->add(std::make_unique<nn::ReLU>());
      g->add(std::make_unique<nn::GlobalAvgPool>());
      g->add(std::make_unique<nn::Linear>(8, 6, hrng));
      return g;
    };
  }

  data::Batch batch(long long s) const {
    data::Batch b;
    b.domain = 0;
    for (int i = 0; i < 4; ++i) {
      const long long j = s + i;
      b.keys.push_back({static_cast<int32_t>(j % 6), 0,
                        static_cast<int32_t>(j % 4), false});
      b.labels.push_back(j % 6);
    }
    return b;
  }
};

struct Report {
  double p50_ms = 0, p99_ms = 0;
  long long plain_max_allocs = 0;
  long long plain_max_bytes = 0;
  long long plain_steps = 0;
  double lt_step_avg_bytes = 0;
  long long lt_steps = 0;
  long long stack_calls_steady = 0;   // measured window (observe + predict)
  long long stack_calls_process = 0;  // whole process, for context
  double fwd_macs = 0;                // head forward MACs per sample
  double bwd_macs_before = 0;         // old blanket 2x model
  double bwd_macs_after = 0;          // exact post-elision model
  bool ledger_consistent = false;     // ledger delta == model * samples
};

Report run(long long measure_steps) {
  BenchEnv be;
  core::ChameleonConfig cc;
  cc.lt_capacity = 24;
  cc.learning_window = 40;
  core::ChameleonLearner learner(be.env, cc, /*seed=*/7);

  Report rep;
  rep.fwd_macs = static_cast<double>(learner.head().macs_per_sample());
  rep.bwd_macs_before = 2.0 * rep.fwd_macs;
  rep.bwd_macs_after = static_cast<double>(learner.g_bwd_macs());

  // Warm-up: saturate the latent cache, ST slab, LT store, staged-burst
  // capacity, Adam state and all row-pointer scratch; spans several LT
  // cycles and preference recalibrations.
  constexpr long long kWarmup = 120;
  long long step = 0;
  while (step < kWarmup) learner.observe(be.batch(step++));
  // Warm the chunked predict path's scratch too (it shares the gate).
  std::vector<data::ImageKey> eval_keys;
  for (int i = 0; i < 24; ++i) {
    eval_keys.push_back({static_cast<int32_t>(i % 6), 0,
                         static_cast<int32_t>(i % 4), false});
  }
  (void)learner.predict(eval_keys);

  std::vector<double> lat_ms;
  lat_ms.reserve(static_cast<size_t>(measure_steps));
  long long lt_bytes = 0;
  const long long stack_before = data::stack_latents_calls();
  const double ledger_bwd_before = learner.stats().g_bwd_macs;
  long long train_samples = 0;

  for (long long i = 0; i < measure_steps; ++i, ++step) {
    const data::Batch b = be.batch(step);
    const long long st_rows = learner.short_term().size();  // full ST replays
    const HeapSnapshot before = heap_now();
    const auto t0 = std::chrono::steady_clock::now();
    learner.observe(b);
    const auto t1 = std::chrono::steady_clock::now();
    const HeapSnapshot d = heap_delta(before);
    lat_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    // The gather batch = incoming + ST replay + (on cycle steps) the staged
    // LT burst; reconstruct the sample count for the ledger cross-check.
    train_samples += static_cast<long long>(b.keys.size()) + st_rows;
    const bool lt_cycle = ((step + 1) % cc.lt_period_h) == 0;
    if (lt_cycle) {
      ++rep.lt_steps;
      lt_bytes += d.bytes;
    } else {
      ++rep.plain_steps;
      rep.plain_max_allocs = std::max(rep.plain_max_allocs, d.allocs);
      rep.plain_max_bytes = std::max(rep.plain_max_bytes, d.bytes);
    }
    // LT rows consumed from the staged burst also train each step; their
    // count comes out of the ledger cross-check below rather than
    // re-deriving the staging schedule here.
    (void)learner.predict(eval_keys);  // keep the predict path in the window
  }

  rep.stack_calls_steady = data::stack_latents_calls() - stack_before;
  rep.stack_calls_process = data::stack_latents_calls();
  if (rep.lt_steps > 0) {
    rep.lt_step_avg_bytes =
        static_cast<double>(lt_bytes) / static_cast<double>(rep.lt_steps);
  }

  // Ledger cross-check: every trained sample must have been charged the
  // exact post-elision backward model. The LT replay rows consumed from the
  // staged burst are included in the ledger; derive their count from the
  // charged total instead of re-deriving the schedule.
  const double ledger_delta = learner.stats().g_bwd_macs - ledger_bwd_before;
  const double charged_samples = ledger_delta / rep.bwd_macs_after;
  const double frac =
      charged_samples - static_cast<double>(static_cast<long long>(
                            charged_samples + 0.5));
  // Integral sample count and at least the directly-observed samples.
  rep.ledger_consistent =
      std::abs(frac) < 1e-6 &&
      charged_samples >= static_cast<double>(train_samples) - 0.5;

  std::sort(lat_ms.begin(), lat_ms.end());
  auto pct = [&](double q) {
    if (lat_ms.empty()) return 0.0;
    const size_t idx = std::min(
        lat_ms.size() - 1,
        static_cast<size_t>(q * static_cast<double>(lat_ms.size() - 1)));
    return lat_ms[idx];
  };
  rep.p50_ms = pct(0.50);
  rep.p99_ms = pct(0.99);
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  long long steps = 400;
  std::string out_path = "BENCH_observe.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc)
      steps = std::max(50LL, static_cast<long long>(std::atol(argv[++i])));
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  std::printf("bench_observe: %lld measured steps\n\n", steps);
  const Report r = run(steps);

  const double ratio =
      r.fwd_macs > 0 ? r.bwd_macs_after / r.fwd_macs : 0.0;
  std::printf("observe latency: p50 %.4f ms, p99 %.4f ms\n", r.p50_ms,
              r.p99_ms);
  std::printf(
      "heap: off-cycle max %lld allocs / %lld bytes over %lld steps; "
      "LT-cycle avg %.0f bytes over %lld steps\n",
      r.plain_max_allocs, r.plain_max_bytes, r.plain_steps,
      r.lt_step_avg_bytes, r.lt_steps);
  std::printf("stack_latents calls: steady window %lld (process total "
              "%lld)\n",
              r.stack_calls_steady, r.stack_calls_process);
  std::printf(
      "backward MAC model: fwd %.0f, bwd before elision %.0f (2.00x), bwd "
      "after %.0f (%.2fx), ledger %s\n",
      r.fwd_macs, r.bwd_macs_before, r.bwd_macs_after, ratio,
      r.ledger_consistent ? "consistent" : "INCONSISTENT");

  const bool gate_zero_alloc = r.plain_max_allocs == 0;
  const bool gate_zero_stack = r.stack_calls_steady == 0;
  const bool gate_bwd = r.bwd_macs_after < r.bwd_macs_before && ratio < 2.0;
  const bool gate_ledger = r.ledger_consistent;
  std::printf(
      "\ngates: steady zero-alloc %s, zero stacking copies %s, bwd < 2x fwd "
      "%s, ledger exact %s\n",
      gate_zero_alloc ? "PASS" : "FAIL", gate_zero_stack ? "PASS" : "FAIL",
      gate_bwd ? "PASS" : "FAIL", gate_ledger ? "PASS" : "FAIL");

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      json,
      "{\n  \"bench\": \"bench_observe\",\n  \"steps\": %lld,\n"
      "  \"observe_p50_ms\": %.5f,\n  \"observe_p99_ms\": %.5f,\n"
      "  \"steady_plain_step_max_allocs\": %lld,\n"
      "  \"steady_plain_step_max_bytes\": %lld,\n"
      "  \"steady_plain_steps\": %lld,\n"
      "  \"lt_cycle_step_avg_bytes\": %.1f,\n  \"lt_cycle_steps\": %lld,\n"
      "  \"stack_latents_calls_steady\": %lld,\n"
      "  \"stack_latents_calls_process\": %lld,\n"
      "  \"head_fwd_macs_per_sample\": %.0f,\n"
      "  \"head_bwd_macs_before_elision\": %.0f,\n"
      "  \"head_bwd_macs_after_elision\": %.0f,\n"
      "  \"bwd_over_fwd_ratio\": %.4f,\n"
      "  \"gate_steady_state_zero_alloc\": %s,\n"
      "  \"gate_zero_stacking_copies\": %s,\n"
      "  \"gate_bwd_below_2x_fwd\": %s,\n"
      "  \"gate_ledger_matches_model\": %s\n}\n",
      steps, r.p50_ms, r.p99_ms, r.plain_max_allocs, r.plain_max_bytes,
      r.plain_steps, r.lt_step_avg_bytes, r.lt_steps, r.stack_calls_steady,
      r.stack_calls_process, r.fwd_macs, r.bwd_macs_before, r.bwd_macs_after,
      ratio, gate_zero_alloc ? "true" : "false",
      gate_zero_stack ? "true" : "false", gate_bwd ? "true" : "false",
      gate_ledger ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());

  return (gate_zero_alloc && gate_zero_stack && gate_bwd && gate_ledger) ? 0
                                                                         : 1;
}
