// Reproduces Table III: ZCU102 resource utilisation of the Chameleon
// training accelerator (DSP / BRAM / LUT, absolute and percent), plus a
// small design-space sweep showing why the chosen configuration is the one
// that fits: the short-term replay store must share BRAM with the weight
// and activation buffers, so BRAM — not DSP — is the binding constraint
// (96% in the paper).
//
//   ./bench_table3_fpga_resources
#include <cstdio>

#include "hw/fpga_model.h"
#include "metrics/table.h"

using namespace cham;

int main() {
  std::printf("=== Table III: ZCU102 resource utilisation (Chameleon) ===\n\n");

  const hw::FpgaAcceleratorConfig cfg;  // the paper's design point
  const hw::FpgaDevice dev;
  const auto res = hw::estimate_fpga_resources(cfg, dev);

  metrics::TablePrinter table({"", "DSP", "BRAM", "LUTs"}, {15, 10, 10, 10});
  table.print_header();
  table.print_row({"Available", std::to_string(dev.dsp_available),
                   std::to_string(dev.bram_available),
                   std::to_string(dev.lut_available)});
  table.print_row({"Utilized", std::to_string(res.dsp),
                   std::to_string(res.bram), std::to_string(res.luts)});
  table.print_row({"Percentage (%)", metrics::TablePrinter::fmt(res.dsp_pct, 2),
                   metrics::TablePrinter::fmt(res.bram_pct, 2),
                   metrics::TablePrinter::fmt(res.lut_pct, 2)});
  std::printf("\nPaper Table III: DSP 1164 (46.19%%), BRAM 632 (96.34%%), "
              "LUT 169428 (72.50%%)\n");

  // Design-space sweep: PE array size vs fit.
  std::printf("\n--- Design sweep: PE array vs resources (ST buffer fixed at"
              " %lld KiB) ---\n",
              (long long)cfg.st_replay_buffer_kib);
  metrics::TablePrinter sweep({"Array", "DSP %", "BRAM %", "LUT %", "Fits"},
                              {8, 8, 8, 8, 6});
  sweep.print_header();
  for (int64_t dim : {8, 16, 24, 32, 40}) {
    hw::FpgaAcceleratorConfig c = cfg;
    c.pe_rows = c.pe_cols = dim;
    const auto r = hw::estimate_fpga_resources(c, dev);
    sweep.print_row({std::to_string(dim) + "x" + std::to_string(dim),
                     metrics::TablePrinter::fmt(r.dsp_pct, 1),
                     metrics::TablePrinter::fmt(r.bram_pct, 1),
                     metrics::TablePrinter::fmt(r.lut_pct, 1),
                     r.fits ? "yes" : "NO"});
  }

  // ST buffer sweep: how much on-chip replay can the device afford?
  std::printf("\n--- ST replay store size vs BRAM (24x24 array) ---\n");
  metrics::TablePrinter st({"ST store (KiB)", "ST samples", "BRAM %", "Fits"},
                           {15, 11, 8, 6});
  st.print_header();
  constexpr int64_t kLatentKib = 32;  // paper-scale latent (32 KB/sample)
  for (int64_t kib : {160, 320, 640, 960, 1280}) {
    hw::FpgaAcceleratorConfig c = cfg;
    c.st_replay_buffer_kib = kib;
    const auto r = hw::estimate_fpga_resources(c, dev);
    st.print_row({std::to_string(kib), std::to_string(kib / kLatentKib),
                  metrics::TablePrinter::fmt(r.bram_pct, 1),
                  r.fits ? "yes" : "NO"});
  }
  std::printf("\nThe paper's Ms = 10 samples (320 KiB at 32 KiB/latent) is"
              " the largest ST store\nthat leaves the weight/activation"
              " buffers intact — larger stores stop fitting.\n");
  return 0;
}
