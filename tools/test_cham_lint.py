#!/usr/bin/env python3
"""Self-tests for cham_lint.py — one positive and one negative case per
behaviour of the thread-safety rules (raw-mutex, naked-cv-wait,
unguarded-shared-member), plus regression cases for the trickier matching
(suppressions, comments/strings, wait_for, nested regions, sibling-header
guarded declarations).

Run directly (python3 tools/test_cham_lint.py) or via run_static.sh.
Exit status: 0 all pass, 1 failures.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cham_lint  # noqa: E402

FAILURES = []


def check(name, cond):
    if cond:
        print(f"  ok   {name}")
    else:
        print(f"  FAIL {name}")
        FAILURES.append(name)


def rules_of(violations):
    return [rule for (_path, _line, rule, _desc) in violations]


def lint_src(source, path="src/serve/fake.cpp"):
    """Lint a source snippet as if it lived at `path` (no file needed)."""
    return cham_lint.lint_file(path, source)


def main():
    print("rule: raw-mutex")
    check("flags std::mutex member",
          rules_of(lint_src("std::mutex mu_;")) == ["raw-mutex"])
    check("flags std::lock_guard",
          "raw-mutex" in rules_of(
              lint_src("std::lock_guard<std::mutex> l(mu_);")))
    check("flags unqualified lock_guard (using-declaration dodge)",
          "raw-mutex" in rules_of(lint_src("lock_guard<mutex> l(mu_);")))
    check("flags std::condition_variable_any",
          "raw-mutex" in rules_of(lint_src("std::condition_variable_any cv;")))
    check("ignores util::Mutex wrapper",
          rules_of(lint_src("util::MutexLock lock(mu_);\n"
                            "mutable util::Mutex mu_;")) == [])
    check("ignores members whose NAME contains mutex",
          rules_of(lint_src("util::Mutex api_mutex_;\n"
                            "int job_mutex_count = 0;")) == [])
    check("exempt in util/sync.h",
          rules_of(lint_src("std::mutex mu_;", path="src/util/sync.h")) == [])
    check("not applied outside src/",
          rules_of(lint_src("std::mutex mu_;", path="tests/t.cpp")) == [])
    check("ignores mutex in comments and strings",
          rules_of(lint_src('// a std::mutex here\n'
                            'const char* s = "std::mutex";')) == [])
    check("suppressed by allow()",
          rules_of(lint_src(
              "std::mutex mu_;  // cham-lint: allow(raw-mutex)")) == [])

    print("rule: naked-cv-wait")
    check("flags one-argument wait(lock)",
          rules_of(lint_src("cv_.wait(lock);")) == ["naked-cv-wait"])
    check("allows predicate wait(lock, pred)",
          rules_of(lint_src(
              "cv_.wait(lock, [this]() CHAM_REQUIRES(mu_) {\n"
              "  return stop_ || !queue_.empty();\n"
              "});")) == [])
    check("allows zero-argument future.wait()",
          rules_of(lint_src("result.wait();")) == [])
    check("wait_for / wait_until unmatched",
          rules_of(lint_src(
              "cv_.wait_for(lock, 1s);\ncv_.wait_until(lock, tp);")) == [])
    check("comma inside lambda body is not an argument separator",
          rules_of(lint_src(
              "cv_.wait(lock, [&] { return f(a, b) || g(); });")) == [])
    check("multi-line single-argument wait still flagged",
          "naked-cv-wait" in rules_of(lint_src("cv_.wait(\n    lock);")))
    check("flags arrow-call wait",
          "naked-cv-wait" in rules_of(lint_src("cv->wait(lk);")))

    print("rule: unguarded-shared-member")
    guarded_hdr = "int64_t resident_ CHAM_GUARDED_BY(mu_) = 0;\n"
    region = ("// cham-lint: begin(sessions_mu)\n"
              "++resident_;\n"
              "// cham-lint: end(sessions_mu)\n")
    check("guarded member written in region is clean",
          rules_of(lint_src(guarded_hdr + region)) == [])
    check("unguarded write in region flagged",
          rules_of(lint_src(region)) == ["unguarded-shared-member"])
    check("write outside any region not flagged",
          rules_of(lint_src("++resident_;")) == [])
    check("assignment and compound forms flagged",
          rules_of(lint_src(
              "// cham-lint: begin(x)\n"
              "tick_ = 0;\n"
              "count_ += 2;\n"
              "// cham-lint: end(x)\n")) == ["unguarded-shared-member"] * 2)
    check("subscripted map write flagged",
          "unguarded-shared-member" in rules_of(lint_src(
              "// cham-lint: begin(x)\n"
              "op_stats_[id] = s;\n"
              "// cham-lint: end(x)\n")))
    check("comparison is not a write",
          rules_of(lint_src(
              "// cham-lint: begin(x)\n"
              "if (resident_ == 0 && tick_ <= 4) {}\n"
              "// cham-lint: end(x)\n")) == [])
    check("locals without trailing underscore ignored",
          rules_of(lint_src(
              "// cham-lint: begin(x)\n"
              "depth = 3;\nsession.in_use = true;\n"
              "// cham-lint: end(x)\n")) == [])
    check("any region tag participates (not just sessions_mu)",
          "unguarded-shared-member" in rules_of(lint_src(
              "// cham-lint: begin(dispatch)\n"
              "++in_flight_;\n"
              "// cham-lint: end(dispatch)\n")))

    # Sibling-header resolution needs real files on disk.
    with tempfile.TemporaryDirectory() as tmp:
        src_dir = os.path.join(tmp, "src")
        os.makedirs(src_dir)
        hdr = os.path.join(src_dir, "widget.h")
        cpp = os.path.join(src_dir, "widget.cpp")
        with open(hdr, "w") as fh:
            fh.write("int64_t resident_ CHAM_GUARDED_BY(mu_) = 0;\n")
        body = ("// cham-lint: begin(mu)\n"
                "++resident_;\n++other_;\n"
                "// cham-lint: end(mu)\n")
        with open(cpp, "w") as fh:
            fh.write(body)
        got = rules_of(cham_lint.lint_file(cpp, body))
        check("guarded declaration found in sibling header",
              got == ["unguarded-shared-member"])  # other_ only

    print("rule: blocking-in-batch-plan")
    check("flags learner dispatch inside batch_plan region",
          "blocking-in-batch-plan" in rules_of(lint_src(
              "// cham-lint: begin(batch_plan)\n"
              "learner->predict_batch(keys);\n"
              "// cham-lint: end(batch_plan)\n")))
    check("flags session acquisition inside batch_plan region",
          "blocking-in-batch-plan" in rules_of(lint_src(
              "// cham-lint: begin(batch_plan)\n"
              "auto* l = acquire_session(sid);\n"
              "// cham-lint: end(batch_plan)\n")))
    check("flags serialisation inside batch_plan region",
          "blocking-in-batch-plan" in rules_of(lint_src(
              "// cham-lint: begin(batch_plan)\n"
              "learner->save_state(os);\n"
              "// cham-lint: end(batch_plan)\n")))
    check("flags make_shared inside batch_plan region",
          "blocking-in-batch-plan" in rules_of(lint_src(
              "// cham-lint: begin(batch_plan)\n"
              "auto b = std::make_shared<core::ByteBuf>();\n"
              "// cham-lint: end(batch_plan)\n")))
    check("request moves between containers are clean",
          rules_of(lint_src(
              "// cham-lint: begin(batch_plan)\n"
              "planner_.take_eligible(shard.queue, eligible);\n"
              "eligible.push_back(std::move(r));\n"
              "// cham-lint: end(batch_plan)\n")) == [])
    check("dispatch outside the region is clean",
          rules_of(lint_src(
              "// cham-lint: begin(batch_plan)\n"
              "planner_.take_eligible(shard.queue, eligible);\n"
              "// cham-lint: end(batch_plan)\n"
              "dispatch_plan(planner_.finalize(std::move(eligible)), &s);\n"
              )) == [])
    check("suppressed by allow()",
          rules_of(lint_src(
              "// cham-lint: begin(batch_plan)\n"
              "l->predict(k);  // cham-lint: allow(blocking-in-batch-plan)\n"
              "// cham-lint: end(batch_plan)\n")) == [])

    print("rule: hot-path-stacking")
    check("flags stack_latents inside hot_path region",
          "hot-path-stacking" in rules_of(lint_src(
              "// cham-lint: begin(hot_path)\n"
              "const Tensor x = data::stack_latents(rows);\n"
              "// cham-lint: end(hot_path)\n")))
    check("flags unqualified stack_latents call",
          "hot-path-stacking" in rules_of(lint_src(
              "// cham-lint: begin(hot_path)\n"
              "auto x = stack_latents(rows);\n"
              "// cham-lint: end(hot_path)\n")))
    check("stack_latents outside the region is clean",
          rules_of(lint_src(
              "const Tensor x = data::stack_latents(rows);\n"
              "// cham-lint: begin(hot_path)\n"
              "g_->forward_gather(gb, true);\n"
              "// cham-lint: end(hot_path)\n")) == [])
    check("identifier suffix does not match (my_stack_latents)",
          rules_of(lint_src(
              "// cham-lint: begin(hot_path)\n"
              "auto x = my_stack_latents(rows);\n"
              "// cham-lint: end(hot_path)\n")) == [])
    check("mention in a comment is clean",
          rules_of(lint_src(
              "// cham-lint: begin(hot_path)\n"
              "// replaced stack_latents(rows) with a GatherBatch\n"
              "// cham-lint: end(hot_path)\n")) == [])
    check("suppressed by allow()",
          rules_of(lint_src(
              "// cham-lint: begin(hot_path)\n"
              "auto x = stack_latents(r);  // cham-lint: allow(hot-path-stacking)\n"
              "// cham-lint: end(hot_path)\n")) == [])
    check("hot_path is not a lock region (member writes need no guard)",
          rules_of(lint_src(
              "// cham-lint: begin(hot_path)\n"
              "step_ += 1;\n"
              "staged_pos_ = 0;\n"
              "// cham-lint: end(hot_path)\n")) == [])

    print("rule: syscall-in-net-lock")
    check("flags write() inside net_mu region",
          "syscall-in-net-lock" in rules_of(lint_src(
              "// cham-lint: begin(net_mu)\n"
              "ssize_t n = write(c.fd, buf, len);\n"
              "// cham-lint: end(net_mu)\n")))
    check("flags ::-qualified recv inside net_mu region",
          "syscall-in-net-lock" in rules_of(lint_src(
              "// cham-lint: begin(net_mu)\n"
              "ssize_t n = ::recv(fd, p, n, 0);\n"
              "// cham-lint: end(net_mu)\n")))
    check("flags poll / accept inside net_mu region",
          rules_of(lint_src(
              "// cham-lint: begin(net_mu)\n"
              "poll(fds.data(), fds.size(), -1);\n"
              "int cfd = accept(listen_fd_, nullptr, nullptr);\n"
              "// cham-lint: end(net_mu)\n")) ==
          ["syscall-in-net-lock"] * 2)
    check("flags sleep_for inside net_mu region (BLOCKING_RE reuse)",
          "syscall-in-net-lock" in rules_of(lint_src(
              "// cham-lint: begin(net_mu)\n"
              "std::this_thread::sleep_for(1ms);\n"
              "// cham-lint: end(net_mu)\n")))
    check("queue moves inside the region are clean",
          rules_of(lint_src(
              "// cham-lint: begin(net_mu)\n"
              "c.outbox.push_back(std::move(frame));\n"
              "c.outbox_bytes += sz;\n"
              "// cham-lint: end(net_mu)\n")) == [])
    check("derived identifiers do not match (read_header, fwrite_count)",
          rules_of(lint_src(
              "// cham-lint: begin(net_mu)\n"
              "bool ok = read_header(p, n, h);\n"
              "fwrite_count += 1;\n"
              "// cham-lint: end(net_mu)\n")) == [])
    check("syscall outside the region is clean",
          rules_of(lint_src(
              "// cham-lint: begin(net_mu)\n"
              "c.outbox.pop_front();\n"
              "// cham-lint: end(net_mu)\n"
              "ssize_t n = write(c.fd, buf, len);\n")) == [])
    check("cv wait with predicate inside the region is clean",
          rules_of(lint_src(
              "// cham-lint: begin(net_mu)\n"
              "c.cv_space.wait(lock, [&]() CHAM_REQUIRES(c.mu) {\n"
              "  return c.closed || c.outbox_bytes + sz <= limit;\n"
              "});\n"
              "// cham-lint: end(net_mu)\n")) == [])
    check("suppressed by allow()",
          rules_of(lint_src(
              "// cham-lint: begin(net_mu)\n"
              "poll(f, 1, 0);  // cham-lint: allow(syscall-in-net-lock)\n"
              "// cham-lint: end(net_mu)\n")) == [])

    print("pre-existing rules still fire (no regression)")
    check("io-in-sessions-mu",
          "io-in-sessions-mu" in rules_of(lint_src(
              "// cham-lint: begin(sessions_mu)\n"
              "learner->save_state(os);\n"
              "// cham-lint: end(sessions_mu)\n")))
    check("modulo-sampling",
          "modulo-sampling" in rules_of(lint_src("x = rng.next_u64() % n;")))
    check("naked-new",
          "naked-new" in rules_of(lint_src("auto* p = new Foo();")))

    print("repo tree is clean under all rules")
    repo_src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    tree = []
    for f in cham_lint.iter_files([repo_src]):
        with open(f, encoding="utf-8", errors="replace") as fh:
            tree.extend(cham_lint.lint_file(f, fh.read()))
    for v in tree:
        print(f"    {v[0]}:{v[1]}: [{v[2]}]")
    check("src/ has zero violations", tree == [])

    if FAILURES:
        print(f"test_cham_lint: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("test_cham_lint: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
