#!/usr/bin/env python3
"""Repo-specific lint rules for the Chameleon C++ tree.

These rules encode invariants that clang-tidy cannot express because they
are about *this* codebase's contracts:

  modulo-sampling     `next_u64() % n` is modulo-biased for non-power-of-two
                      n; use Rng::uniform_int (Lemire rejection) instead.
  raw-assert          `assert(` outside src/util/check.h. Plain assert is
                      compiled out in Release, so contract violations pass
                      silently exactly where they matter; use CHAM_CHECK /
                      CHAM_DCHECK (static_assert is fine).
  naked-new           `new` / `delete` expressions in src/. Storage is
                      std::vector / std::unique_ptr everywhere; a naked new
                      is either a leak or a double-free waiting to happen.
  std-rand            std::rand / srand / rand(). Non-deterministic across
                      libcs; every random draw must flow through cham::Rng
                      so seeded runs stay bit-identical.
  rng-in-parallel-for Calls into Rng from a parallel_for body. Worker
                      execution order is nondeterministic, so any Rng use
                      inside the body breaks the bit-identity contract
                      (CHAM_THREADS=1 vs N must match byte-for-byte). Draw
                      before the loop, index into the draws inside it.
  alloc-in-parallel-for
                      Tensor construction or std::vector declaration/growth
                      (push_back, resize, ...) inside a parallel_for body.
                      Per-iteration allocation on the hot path serialises
                      workers on the allocator lock and defeats the
                      steady-state zero-alloc contract; take scratch from
                      the per-thread arena (ws::ArenaScope) or hoist the
                      buffer out of the loop.
  blocking-in-dispatch
                      Blocking I/O (file streams, fopen, std::filesystem,
                      sleep) or heap allocation inside a scheduler dispatch
                      critical section — the code between
                      `// cham-lint: begin(dispatch)` and
                      `// cham-lint: end(dispatch)` markers. These regions
                      run under a shard queue mutex in the serving runtime
                      (src/serve/session_manager.cpp); anything slow there
                      stalls admission for every session on the shard.
                      Checkpoint I/O belongs outside the markers, after the
                      request has been popped and the lock released.
  io-in-sessions-mu   Filesystem/stream calls or checkpoint (de)serialisation
                      inside a sessions_mu_ critical section — the code
                      between `// cham-lint: begin(sessions_mu)` and
                      `// cham-lint: end(sessions_mu)` markers. sessions_mu_
                      is the serving runtime's GLOBAL residency lock; a
                      save_state or disk write held under it stalls
                      admission, restore and eviction on EVERY shard (the
                      seed's 63ms save_ms_max was exactly this bug).
                      Eviction must unlink under the lock and serialise /
                      flush with it released (see serve/write_behind.h).
  blocking-in-batch-plan
                      Blocking I/O, checkpoint (de)serialisation, heap
                      allocation via make_unique/make_shared, or any learner
                      dispatch / eviction call inside a batch-plan critical
                      section — between `// cham-lint: begin(batch_plan)`
                      and `// cham-lint: end(batch_plan)` markers. Plan
                      formation (BatchPlanner::take_eligible) runs under a
                      shard queue mutex and may only MOVE queued requests
                      between vectors; evaluating a head, acquiring or
                      materialising a session, or serialising state there
                      stalls admission for every session on the shard. Plan
                      execution (dispatch_plan) belongs outside the markers
                      with the queue lock released.
  raw-mutex           Bare std::mutex / lock_guard / unique_lock /
                      condition_variable (and friends) in src/ outside
                      util/sync.h. Concurrency goes through the annotated
                      cham::util wrappers (Mutex / MutexLock / CondVar) so
                      Clang's thread-safety analysis sees every lock; a raw
                      std primitive is invisible to it.
  naked-cv-wait       A condition-variable wait(lock) with no predicate.
                      Spurious wakeups and lost-notify races make a naked
                      wait return without its condition holding; every wait
                      must be the predicate form wait(lock, pred)
                      (zero-argument waits, e.g. std::future::wait(), are
                      fine; so are wait_for / wait_until).
  syscall-in-net-lock Blocking syscalls (read/write/poll/accept/send/recv
                      and friends) or other blocking calls inside a
                      connection-mutex critical section — the code between
                      `// cham-lint: begin(net_mu)` and
                      `// cham-lint: end(net_mu)` markers. The socket
                      front-end (src/net/server.cpp) holds a connection's
                      mutex only to move frames between queues; a syscall
                      held under it stalls the responder (or the whole I/O
                      thread) behind a peer's socket buffer. Syscalls belong
                      outside the markers, on buffers the lock no longer
                      protects.
  unguarded-shared-member
                      A write to a `name_` member inside a
                      `// cham-lint: begin(...)` / `end(...)` marker region
                      whose declaration (this file or the sibling header)
                      does not carry CHAM_GUARDED_BY. Marker regions are
                      lock-held critical sections; a member mutated there is
                      shared state and must be declared guarded, or the
                      thread-safety analysis cannot check its other uses.

Suppression: append `// cham-lint: allow(<rule>)` to the offending line.

Usage: cham_lint.py [--list-rules] [paths...]   (default path: src/)
Exit status: 0 clean, 1 violations found, 2 usage error.
"""

import os
import re
import sys

RULES = {
    "modulo-sampling": "next_u64() % n is modulo-biased; use Rng::uniform_int",
    "raw-assert": "assert() outside util/check.h; use CHAM_CHECK / CHAM_DCHECK",
    "naked-new": "naked new/delete in src/; use std::vector / std::unique_ptr",
    "std-rand": "std::rand is non-deterministic; use the seeded cham::Rng",
    "rng-in-parallel-for": "Rng call inside a parallel_for body breaks "
    "bit-identity across thread counts",
    "alloc-in-parallel-for": "allocation inside a parallel_for body; use "
    "ws::ArenaScope scratch or hoist the buffer",
    "blocking-in-dispatch": "blocking I/O or heap allocation inside a "
    "dispatch critical section (runs under a shard queue mutex)",
    "io-in-sessions-mu": "filesystem/stream or checkpoint serialisation call "
    "inside a sessions_mu_ critical section (stalls every shard); unlink "
    "under the lock, serialise/flush with it released",
    "blocking-in-batch-plan": "blocking I/O, serialisation, heap allocation "
    "or learner dispatch inside a batch-plan critical section (runs under a "
    "shard queue mutex; plan formation may only move queued requests)",
    "raw-mutex": "bare std synchronisation primitive in src/; use the "
    "annotated cham::util::Mutex / MutexLock / CondVar (util/sync.h)",
    "naked-cv-wait": "condition-variable wait without a predicate; use "
    "wait(lock, pred) so spurious wakeups re-check the condition",
    "syscall-in-net-lock": "blocking syscall inside a net_mu critical "
    "section (the socket front-end holds connection mutexes only to move "
    "frames between queues); do socket I/O with the lock released",
    "unguarded-shared-member": "member written inside a lock-held marker "
    "region but not declared CHAM_GUARDED_BY; annotate the declaration so "
    "the thread-safety analysis can check it",
    "hot-path-stacking": "stack_latents() inside a hot_path marker region; "
    "the replay hot loop is zero-copy — pack a GatherBatch of row pointers "
    "and use forward_gather / the gather GEMM kernels instead of stacking "
    "latents into a batch tensor",
}

CXX_EXTENSIONS = (".cc", ".cpp", ".cxx", ".h", ".hpp")

ALLOW_RE = re.compile(r"cham-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

MODULO_RE = re.compile(r"next_u64\s*\(\s*\)\s*%")
ASSERT_RE = re.compile(r"(?<![_A-Za-z0-9])assert\s*\(")
NEW_RE = re.compile(r"(?<![_A-Za-z0-9])new\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"(?<![_A-Za-z0-9])delete\s*(\[\s*\])?\s*[A-Za-z_(*]")
RAND_RE = re.compile(r"(?:std\s*::\s*)?(?<![_A-Za-z0-9.])s?rand\s*\(")
RNG_USE_RE = re.compile(
    r"(?<![_A-Za-z0-9])(Rng|rng_?|next_u64|next_float|next_double|"
    r"uniform_int|sample_weighted)(?![A-Za-z0-9])"
)
PARALLEL_FOR_RE = re.compile(r"(?<![_A-Za-z0-9])parallel_for\s*\(")
# Tensor temporaries / declarations with ctor args, vector declarations, and
# the growing vector member calls. `const Tensor&` parameters don't match
# (no paren/brace follows the name).
ALLOC_RE = re.compile(
    r"(?<![_A-Za-z0-9])Tensor\s*[({]"
    r"|(?<![_A-Za-z0-9])Tensor\s+[A-Za-z_]\w*\s*[({]"
    r"|(?:std\s*::\s*)?vector\s*<"
    r"|(?:\.|->)\s*(?:push_back|emplace_back|resize|reserve|assign)\s*\("
)
# Marked regions are delimited by marker comments; markers live in
# comments so they are matched on the raw source, while the rules below run
# on the stripped code. Region kinds: `dispatch` (shard queue mutex),
# `sessions_mu` (global residency lock), `batch_plan` (shard queue mutex
# during plan formation) and `hot_path` (zero-copy replay loops).
DISPATCH_BEGIN_RE = re.compile(r"cham-lint:\s*begin\(dispatch\)")
DISPATCH_END_RE = re.compile(r"cham-lint:\s*end\(dispatch\)")
SESSIONS_BEGIN_RE = re.compile(r"cham-lint:\s*begin\(sessions_mu\)")
SESSIONS_END_RE = re.compile(r"cham-lint:\s*end\(sessions_mu\)")
BATCH_PLAN_BEGIN_RE = re.compile(r"cham-lint:\s*begin\(batch_plan\)")
BATCH_PLAN_END_RE = re.compile(r"cham-lint:\s*end\(batch_plan\)")
HOT_PATH_BEGIN_RE = re.compile(r"cham-lint:\s*begin\(hot_path\)")
HOT_PATH_END_RE = re.compile(r"cham-lint:\s*end\(hot_path\)")
NET_MU_BEGIN_RE = re.compile(r"cham-lint:\s*begin\(net_mu\)")
NET_MU_END_RE = re.compile(r"cham-lint:\s*end\(net_mu\)")
# Blocking I/O syscalls (optionally `::`-qualified). Derived names like
# read_header / fwrite do not match (identifier-char guards on both sides).
SYSCALL_RE = re.compile(
    r"(?<![_A-Za-z0-9:])(?:::\s*)?"
    r"(?:read|write|pread|pwrite|readv|writev|recv|recvmsg|recvfrom|"
    r"send|sendmsg|sendto|poll|ppoll|epoll_wait|epoll_pwait|select|pselect|"
    r"accept4?|connect|fsync|fdatasync)\s*\("
)
# Batched-copy entry point banned from hot paths (the steady-state replay
# loop packs GEMM panels straight from latent/slab/LT row pointers).
STACK_LATENTS_RE = re.compile(r"(?<![_A-Za-z0-9])stack_latents\s*\(")
# Learner dispatch / residency calls: a batch-plan region may only move
# queued requests, never evaluate, admit, or evict.
PLAN_DISPATCH_RE = re.compile(
    r"(?<![_A-Za-z0-9])(?:acquire_session|materialize_session|dispatch_plan|"
    r"dispatch_timed|snapshot_and_submit|unlink_victim)\s*\("
    r"|(?:\.|->)\s*(?:predict|predict_batch|observe|eval_batch)\s*\("
)
BLOCKING_RE = re.compile(
    r"(?<![_A-Za-z0-9])(?:i|o)?fstream(?![A-Za-z0-9])"
    r"|(?<![_A-Za-z0-9])f(?:open|close|read|write|printf|flush)\s*\("
    r"|(?:std\s*::\s*)?filesystem\s*::"
    r"|(?<![_A-Za-z0-9])sleep_(?:for|until)\s*\("
    r"|(?<![_A-Za-z0-9])system\s*\("
)
DISPATCH_ALLOC_RE = re.compile(
    r"(?<![_A-Za-z0-9])make_(?:unique|shared)\s*<"
)
# Checkpoint (de)serialisation entry points: slow whole-state walks that
# must never run under the global residency lock.
SERIALIZE_RE = re.compile(
    r"(?:\.|->)\s*(?:save_state|load_state|save|load)\s*\("
    r"|(?<![_A-Za-z0-9])(?:save|load)_checkpoint\s*\("
    r"|(?:\.|->)\s*(?:put_full|put_delta|get_blob|get_delta)\s*\("
    r"|(?<![_A-Za-z0-9])(?:encode_chunk_delta|apply_chunk_delta|"
    r"encode_op_log|read_op_log)\s*\("
)
# Raw std synchronisation primitives (with or without the std:: prefix —
# `using std::mutex` would otherwise dodge the rule). The annotated wrappers
# in util/sync.h are the only sanctioned spelling in src/.
RAW_MUTEX_RE = re.compile(
    r"(?<![_A-Za-z0-9])(?:std\s*::\s*)?"
    r"(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)"
    r"(?![_A-Za-z0-9])"
)
# `.wait(` / `->wait(` — wait_for / wait_until do not match (the char after
# `wait` must be `(`). The argument count decides the verdict.
CV_WAIT_RE = re.compile(r"(?:\.|->)\s*wait\s*\(")
# Any marker region, regardless of tag: `// cham-lint: begin(<tag>)`.
REGION_BEGIN_RE = re.compile(r"cham-lint:\s*begin\(([A-Za-z_][\w]*)\)")
REGION_END_RE = re.compile(r"cham-lint:\s*end\(([A-Za-z_][\w]*)\)")
# Declarations annotated guarded: `Type name_ CHAM_GUARDED_BY(mu)`.
GUARDED_DECL_RE = re.compile(r"(\w+_)\s+CHAM_GUARDED_BY\s*\(")
# Writes to trailing-underscore members: prefix/postfix ++/--, compound
# assignment, plain assignment (also through one [subscript]). Comparison
# operators (==, <=, !=, ...) do not match.
MEMBER_WRITE_RES = (
    re.compile(r"(?:\+\+|--)\s*(\w+_)(?![\w])"),
    re.compile(r"(?<![\w])(\w+_)\s*(?:\+\+|--)"),
    re.compile(r"(?<![\w])(\w+_)\s*(?:\[[^\]]*\]\s*)?"
               r"(?:[+\-*/%&|^]=(?!=)|<<=|>>=|=(?!=))"),
)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line structure.

    Replaces stripped characters with spaces so offsets and line numbers of
    the surviving code are unchanged. Good enough for lint purposes; raw
    string literals are treated as plain strings (no R"()" parsing).
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = " "
                    if text[i + 1] != "\n":
                        out[i + 1] = " "
                    i += 2
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def call_extent(code, open_paren):
    """Return the index one past the `)` matching code[open_paren] == '('."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def lint_file(path, raw):
    code = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    code_lines = code.splitlines()
    allowed = {}  # line number -> set of suppressed rules
    for lineno, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            allowed[lineno] = {r.strip() for r in m.group(1).split(",")}

    in_src = "src" + os.sep in path or path.startswith("src/")
    is_check_header = path.replace(os.sep, "/").endswith("util/check.h")
    is_sync_header = path.replace(os.sep, "/").endswith("util/sync.h")

    violations = []

    def report(lineno, rule):
        if rule in allowed.get(lineno, ()):
            return
        violations.append((path, lineno, rule, RULES[rule]))

    for lineno, line in enumerate(code_lines, start=1):
        if MODULO_RE.search(line):
            report(lineno, "modulo-sampling")
        if RAND_RE.search(line):
            report(lineno, "std-rand")
        if in_src and not is_check_header and ASSERT_RE.search(line):
            report(lineno, "raw-assert")
        if in_src and (NEW_RE.search(line) or DELETE_RE.search(line)):
            report(lineno, "naked-new")
        if in_src and not is_sync_header and RAW_MUTEX_RE.search(line):
            report(lineno, "raw-mutex")

    # Rule checks inside marked critical sections. An unmatched begin(...)
    # extends to end of file (better to over-flag a malformed region than to
    # silently skip it).
    def check_region(begin_re, end_re, rule, bad):
        inside = False
        for lineno, raw_line in enumerate(raw_lines, start=1):
            if begin_re.search(raw_line):
                inside = True
                continue
            if end_re.search(raw_line):
                inside = False
                continue
            if not inside or lineno > len(code_lines):
                continue
            if bad(code_lines[lineno - 1]):
                report(lineno, rule)

    # Dispatch sections run under a shard queue mutex: no blocking I/O, no
    # heap allocation.
    check_region(
        DISPATCH_BEGIN_RE, DISPATCH_END_RE, "blocking-in-dispatch",
        lambda line: bool(BLOCKING_RE.search(line) or ALLOC_RE.search(line) or
                          DISPATCH_ALLOC_RE.search(line) or
                          NEW_RE.search(line)))
    # sessions_mu_ sections hold the global residency lock: no filesystem /
    # stream traffic and no whole-state (de)serialisation. (Container growth
    # is fine here — these regions bookkeep the session map.)
    check_region(
        SESSIONS_BEGIN_RE, SESSIONS_END_RE, "io-in-sessions-mu",
        lambda line: bool(BLOCKING_RE.search(line) or
                          SERIALIZE_RE.search(line)))
    # batch_plan sections run under a shard queue mutex while the planner
    # selects coalescible predicts: no blocking I/O, no (de)serialisation,
    # no make_unique/make_shared, and no learner dispatch of any kind.
    # (Container moves are fine — selecting IS moving requests.)
    check_region(
        BATCH_PLAN_BEGIN_RE, BATCH_PLAN_END_RE, "blocking-in-batch-plan",
        lambda line: bool(BLOCKING_RE.search(line) or
                          SERIALIZE_RE.search(line) or
                          DISPATCH_ALLOC_RE.search(line) or
                          PLAN_DISPATCH_RE.search(line)))
    # net_mu sections hold a connection's mutex purely to move frames
    # between queues: no socket syscalls, no file/stream I/O, no sleeps.
    # (cv waits are the sanctioned blocking — flow control needs them.)
    check_region(
        NET_MU_BEGIN_RE, NET_MU_END_RE, "syscall-in-net-lock",
        lambda line: bool(SYSCALL_RE.search(line) or
                          BLOCKING_RE.search(line)))
    # hot_path sections are the zero-copy replay loops (observe training,
    # chunked predict): latents must be gathered by pointer, never stacked
    # into a batch tensor.
    check_region(
        HOT_PATH_BEGIN_RE, HOT_PATH_END_RE, "hot-path-stacking",
        lambda line: bool(STACK_LATENTS_RE.search(line)))

    # Condition-variable waits must pass a predicate: exactly one top-level
    # argument (just the lock) is the lost-wakeup-prone form. Zero arguments
    # (std::future::wait()) and two (lock + predicate) are fine.
    for m in CV_WAIT_RE.finditer(code):
        open_paren = code.index("(", m.end() - 1)
        end = call_extent(code, open_paren)
        inner = code[open_paren + 1:end - 1]
        depth, commas = 0, 0
        for ch in inner:
            if ch in "([{":
                depth += 1
            elif ch in ")]}":
                depth -= 1
            elif ch == "," and depth == 0:
                commas += 1
        if inner.strip() and commas == 0:
            report(code.count("\n", 0, m.start()) + 1, "naked-cv-wait")

    # Writes to `name_` members inside ANY marker region must be declared
    # CHAM_GUARDED_BY — in this file or the sibling header (members of a
    # .cpp's class are declared in its .h).
    guarded = set(GUARDED_DECL_RE.findall(code))
    root, ext = os.path.splitext(path)
    if ext in (".cc", ".cpp", ".cxx"):
        for hext in (".h", ".hpp"):
            sibling = root + hext
            if os.path.isfile(sibling):
                with open(sibling, encoding="utf-8",
                          errors="replace") as fh:
                    guarded |= set(GUARDED_DECL_RE.findall(
                        strip_comments_and_strings(fh.read())))
    region_depth = 0
    for lineno, raw_line in enumerate(raw_lines, start=1):
        # hot_path marks a zero-copy loop, not a lock-held section; member
        # writes there are single-owner and carry no guard obligation.
        m = REGION_BEGIN_RE.search(raw_line)
        if m and m.group(1) != "hot_path":
            region_depth += 1
            continue
        m = REGION_END_RE.search(raw_line)
        if m and m.group(1) != "hot_path":
            region_depth = max(0, region_depth - 1)
            continue
        if region_depth == 0 or lineno > len(code_lines):
            continue
        for write_re in MEMBER_WRITE_RES:
            for w in write_re.finditer(code_lines[lineno - 1]):
                if w.group(1) not in guarded:
                    report(lineno, "unguarded-shared-member")

    # Rng use inside the lexical extent of a parallel_for(...) call. The body
    # is a lambda argument, so the balanced-paren extent of the call covers it.
    for m in PARALLEL_FOR_RE.finditer(code):
        open_paren = code.index("(", m.start())
        end = call_extent(code, open_paren)
        extent = code[open_paren:end]
        base_line = code.count("\n", 0, open_paren) + 1
        for use in RNG_USE_RE.finditer(extent):
            lineno = base_line + extent.count("\n", 0, use.start())
            report(lineno, "rng-in-parallel-for")
        for use in ALLOC_RE.finditer(extent):
            lineno = base_line + extent.count("\n", 0, use.start())
            report(lineno, "alloc-in-parallel-for")

    return violations


def iter_files(paths):
    for p in paths:
        if os.path.isfile(p):
            yield p
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs if not d.startswith("."))
                for f in sorted(files):
                    if f.endswith(CXX_EXTENSIONS):
                        yield os.path.join(root, f)
        else:
            print(f"cham_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)


def main(argv):
    args = argv[1:]
    if "--list-rules" in args:
        for name, desc in RULES.items():
            print(f"{name:20s} {desc}")
        return 0
    paths = args or ["src"]
    violations = []
    nfiles = 0
    for path in iter_files(paths):
        nfiles += 1
        with open(path, encoding="utf-8", errors="replace") as fh:
            violations.extend(lint_file(path, fh.read()))
    for path, lineno, rule, desc in violations:
        print(f"{path}:{lineno}: [{rule}] {desc}")
    if violations:
        print(f"cham_lint: {len(violations)} violation(s) in {nfiles} files",
              file=sys.stderr)
        return 1
    print(f"cham_lint: {nfiles} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
