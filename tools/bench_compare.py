#!/usr/bin/env python3
"""Compare fresh BENCH_*.json artefacts against the committed baselines.

run_all.sh regenerates BENCH_kernels.json / BENCH_serve.json /
BENCH_observe.json / BENCH_threads.json in the repo root on every full run;
this script diffs them against the snapshots committed under
bench/baselines/ and fails (exit 1) when any GATED metric regresses by more
than the threshold (default 25%). Non-gated metrics are printed in the same
trend table for context but never fail the run — wall-clock numbers on a
shared box are noisy, so only the metrics with stable headroom gate.

A missing baseline (new bench, first run after adding a metric) is reported
and passes: commit the fresh artefact to bench/baselines/ to arm the gate.

    python3 tools/bench_compare.py [--threshold 0.25]
        [--current-dir .] [--baseline-dir bench/baselines]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# (file, dotted path, direction, gated). Direction "higher" means larger is
# better (regression = drop); "lower" means smaller is better (regression =
# rise). Paths index dicts by key and lists by `name=value` selectors.
METRICS = [
    # Packed-GEMM throughput per head shape: the kernel acceptance surface.
    ("BENCH_kernels.json", "gemm[shape=head_pointwise_1x].packed_gflops",
     "higher", True),
    ("BENCH_kernels.json", "gemm[shape=head_pointwise_b32].packed_gflops",
     "higher", True),
    ("BENCH_kernels.json", "gemm[shape=head_eval_chunk].packed_gflops",
     "higher", True),
    ("BENCH_kernels.json", "gemm[shape=head_backward_dcol].packed_gflops",
     "higher", True),
    ("BENCH_kernels.json", "gemm[shape=head_backward_dw].packed_gflops",
     "higher", True),
    ("BENCH_kernels.json", "conv_pointwise.speedup", "higher", False),
    # Serving throughput: best-of-N is the gated number (single-run
    # throughput_events_per_s is informational).
    ("BENCH_serve.json", "throughput_best_events_per_s", "higher", True),
    ("BENCH_serve.json", "throughput_events_per_s", "higher", False),
    ("BENCH_serve.json", "evict_lock_ms_best", "lower", False),
    # Observe-path latency: p50 is the gated steady-state number; p99 is
    # tail-noise on a shared box.
    ("BENCH_observe.json", "observe_p50_ms", "lower", True),
    ("BENCH_observe.json", "observe_p99_ms", "lower", False),
    ("BENCH_observe.json", "bwd_over_fwd_ratio", "lower", False),
    # Socket front-end: wire throughput gates (best-of-N); the codec
    # nanoseconds are wall-clock noise on a shared box, informational only.
    ("BENCH_net.json", "throughput_best_events_per_s", "higher", True),
    ("BENCH_net.json", "codec_ns_per_round", "lower", False),
    ("BENCH_net.json", "echo_rtt_p50_us", "lower", False),
    # Thread scaling: informational (gated natively by bench_threads).
    ("BENCH_threads.json", "speedup_floor_4_vs_1", "higher", False),
]


def lookup(doc, path):
    """Resolves `a.b[c=d].e` style paths; returns None when absent."""
    node = doc
    for part in path.split("."):
        selector = None
        if "[" in part:
            part, rest = part.split("[", 1)
            selector = rest.rstrip("]")
        if part:
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        if selector is not None:
            key, _, want = selector.partition("=")
            if not isinstance(node, list):
                return None
            node = next(
                (e for e in node
                 if isinstance(e, dict) and str(e.get(key)) == want), None)
            if node is None:
                return None
    return node


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="gated regression threshold (fraction, default .25)")
    ap.add_argument("--current-dir", default=".")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    args = ap.parse_args()

    current_docs, baseline_docs = {}, {}
    rows = []
    failures = []
    missing_baselines = set()

    for fname, path, direction, gated in METRICS:
        if fname not in current_docs:
            current_docs[fname] = load(os.path.join(args.current_dir, fname))
            baseline_docs[fname] = load(os.path.join(args.baseline_dir, fname))
        cur_doc, base_doc = current_docs[fname], baseline_docs[fname]
        if cur_doc is None:
            failures.append(f"{fname}: fresh artefact missing or unreadable")
            continue
        cur = lookup(cur_doc, path)
        if not isinstance(cur, (int, float)):
            failures.append(f"{fname}: metric {path} missing from fresh run")
            continue
        if base_doc is None:
            missing_baselines.add(fname)
            rows.append((fname, path, None, cur, None, direction, gated, "NEW"))
            continue
        base = lookup(base_doc, path)
        if not isinstance(base, (int, float)):
            rows.append((fname, path, None, cur, None, direction, gated, "NEW"))
            continue
        if base == 0:
            change = 0.0
        elif direction == "higher":
            change = (cur - base) / abs(base)  # negative = regression
        else:
            change = (base - cur) / abs(base)  # negative = regression
        status = "ok"
        if change < -args.threshold:
            status = "REGRESSED" if gated else "regressed (ungated)"
            if gated:
                failures.append(
                    f"{fname} {path}: {base:.4g} -> {cur:.4g} "
                    f"({change * 100:+.1f}%, gated limit "
                    f"-{args.threshold * 100:.0f}%)")
        rows.append(
            (fname, path, base, cur, change, direction, gated, status))

    print(f"bench_compare: threshold -{args.threshold * 100:.0f}% "
          f"on gated metrics\n")
    hdr = (f"{'metric':58} {'baseline':>12} {'current':>12} "
           f"{'change':>9} {'gate':>6}  status")
    print(hdr)
    print("-" * len(hdr))
    for fname, path, base, cur, change, direction, gated, status in rows:
        name = f"{fname.removeprefix('BENCH_').removesuffix('.json')}:{path}"
        base_s = f"{base:.4g}" if base is not None else "-"
        change_s = f"{change * 100:+.1f}%" if change is not None else "-"
        arrow = "^" if direction == "higher" else "v"
        print(f"{name:58} {base_s:>12} {cur:>12.4g} {change_s:>9} "
              f"{arrow:>4}{'G' if gated else ' ':>2}  {status}")

    for fname in sorted(missing_baselines):
        print(f"\nnote: no baseline for {fname} — commit the fresh artefact "
              f"to {args.baseline_dir}/ to arm its gates")

    if failures:
        print("\nbench_compare: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench_compare: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
