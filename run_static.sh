#!/bin/bash
# Static-analysis gate for the Chameleon tree. Runs, in order:
#
#   1. tools/test_cham_lint.py  self-tests of the lint rules themselves (a
#                               broken regex must fail the gate, not silently
#                               stop catching violations)
#   2. tools/cham_lint.py       repo-specific contract rules (src/bench/tests)
#   3. clang-tidy               bugprone/concurrency/performance checks over
#                               src/, if clang-tidy is installed (skipped with
#                               a notice otherwise -- the container ships only
#                               gcc; the lint + -Werror + UBSan stages still
#                               gate every commit)
#   4. thread-safety analysis   clang -Werror=thread-safety build of the
#                               concurrent components (capability annotations
#                               in util/sync.h), if clang++ is installed
#                               (skipped with a notice otherwise; the
#                               annotations are no-ops under gcc)
#   5. -Werror build            full tree (default CHAM_CHECKS=cheap tier)
#                               with warnings promoted to errors
#   6. UBSan test pass          -fsanitize=undefined -fno-sanitize-recover,
#                               whole suite must pass with zero UB reports
#
# Exits non-zero on the first failing stage. run_all.sh invokes this before
# regenerating any outputs; set CHAM_SKIP_STATIC=1 there to bypass during
# quick local iteration (CI must never set it).
set -u
cd "$(dirname "$0")"

fail() { echo "run_static.sh: FAILED at stage: $1" >&2; exit 1; }

echo "=== [1/6] cham_lint self-tests ==="
python3 tools/test_cham_lint.py || fail "cham_lint self-tests"

echo "=== [2/6] cham_lint ==="
python3 tools/cham_lint.py src bench tests || fail "cham_lint"

echo "=== [3/6] clang-tidy ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # clang-tidy needs a compilation database; any configured build dir has one
  # (CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt).
  TIDY_DIR=build
  [ -f "$TIDY_DIR/compile_commands.json" ] || \
    cmake -B "$TIDY_DIR" -S . >/dev/null || fail "clang-tidy (cmake configure)"
  mapfile -t TIDY_SOURCES < <(find src -name '*.cpp' | sort)
  clang-tidy -p "$TIDY_DIR" --quiet "${TIDY_SOURCES[@]}" || fail "clang-tidy"
else
  echo "clang-tidy not installed; skipping (gcc-only container)."
fi

echo "=== [4/6] clang thread-safety analysis ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCHAM_THREAD_SAFETY=ON >/dev/null \
    || fail "thread-safety (cmake configure)"
  cmake --build build-tsa -j"$(nproc)" || fail "thread-safety analysis"
else
  echo "clang++ not installed; skipping (annotations are no-ops under gcc)."
fi

echo "=== [5/6] -Werror build ==="
cmake -B build-werror -S . -DCHAM_WERROR=ON >/dev/null \
  || fail "-Werror (cmake configure)"
cmake --build build-werror -j"$(nproc)" || fail "-Werror build"

echo "=== [6/6] UBSan test pass ==="
cmake -B build-ubsan -S . -DCHAM_SANITIZE=undefined >/dev/null \
  || fail "UBSan (cmake configure)"
cmake --build build-ubsan -j"$(nproc)" || fail "UBSan build"
ctest --test-dir build-ubsan --output-on-failure || fail "UBSan test suite"

echo "run_static.sh: all stages passed"
