// Quickstart: train Chameleon online on a small CORe50-like Domain-IL
// stream and compare against naive finetuning.
//
//   cmake --build build && ./build/examples/quickstart
//
// Demonstrates the complete public API: experiment setup (pretrained frozen
// backbone + latent cache), stream construction, the ChameleonLearner, and
// Acc_all evaluation.
#include <cstdio>

#include "baselines/simple_methods.h"
#include "core/chameleon.h"
#include "metrics/experiment.h"
#include "nn/summary.h"

using namespace cham;

int main() {
  // A reduced CORe50-like setup so the example runs in seconds.
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  cfg.data.num_classes = 10;
  cfg.data.num_domains = 5;
  cfg.data.train_instances = 6;
  cfg.pretrain_epochs = 2;

  std::printf("Setting up experiment (pretraining backbone if uncached)...\n");
  metrics::Experiment exp(cfg);
  std::printf("Backbone: %lld MACs/image, latent %s (%lld floats)\n",
              static_cast<long long>(exp.f_macs()),
              exp.latent_shape().to_string().c_str(),
              static_cast<long long>(exp.latent_shape().numel()));
  std::printf(
      "%s\n",
      nn::summarize(const_cast<nn::Sequential&>(exp.head_template()),
                    "Trainable head g (conv 22-27 + classifier)")
          .c_str());

  data::DomainIncrementalStream stream(cfg.data, cfg.stream);
  std::printf("Stream: %lld batches over %lld domains\n",
              static_cast<long long>(stream.num_batches()),
              static_cast<long long>(cfg.data.num_domains));
  exp.warm_latents(stream);

  // Chameleon: ST=10 on-chip samples, LT=60 off-chip samples.
  core::ChameleonConfig ccfg;
  ccfg.lt_capacity = 60;
  ccfg.learning_window = 100;
  core::ChameleonLearner chameleon(exp.env(), ccfg, /*seed=*/1);
  exp.run(chameleon, stream);
  const auto cham_acc = exp.evaluate(chameleon);

  baselines::FinetuneLearner finetune(exp.env(), /*seed=*/1);
  exp.run(finetune, stream);
  const auto ft_acc = exp.evaluate(finetune);

  std::printf("\nFinal Acc_all over all domains:\n");
  std::printf("  Chameleon  : %.2f%%  (replay memory %.2f MB)\n",
              cham_acc.acc_all,
              static_cast<double>(chameleon.memory_overhead_bytes()) / 1e6);
  std::printf("  Finetuning : %.2f%%  (no replay)\n", ft_acc.acc_all);
  std::printf("\nPreferred classes tracked by Chameleon:");
  for (int64_t c : chameleon.preferences().preferred_classes()) {
    std::printf(" %lld", static_cast<long long>(c));
  }
  std::printf("\n");
  return 0;
}
