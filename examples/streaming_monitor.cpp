// Streaming monitor: watch forgetting happen, domain by domain.
//
// Trains Chameleon and naive finetuning side by side, evaluating every
// domain's test split after each training domain, then prints the accuracy
// matrix, Backward Transfer (BWT) and worst-case forgetting for both — the
// per-domain view behind the paper's single Acc_all number.
//
//   ./build/examples/streaming_monitor
#include <cstdio>

#include "baselines/simple_methods.h"
#include "core/chameleon.h"
#include "metrics/experiment.h"
#include "metrics/forgetting.h"

using namespace cham;

namespace {

void print_matrix(const char* name,
                  const metrics::ForgettingTracker& tracker) {
  std::printf("\n%s accuracy matrix (rows: after domain i; cols: domain j"
              " test split):\n      ",
              name);
  const auto& m = tracker.matrix();
  for (size_t j = 0; j < m.front().size(); ++j) {
    std::printf("  D%-3zu", j);
  }
  std::printf("\n");
  for (size_t i = 0; i < m.size(); ++i) {
    std::printf("  T%-3zu", i);
    for (double v : m[i]) std::printf(" %5.1f", v);
    std::printf("\n");
  }
  std::printf("  final avg %.2f%%   BWT %+.2f   max forgetting %.2f\n",
              tracker.final_average(), tracker.backward_transfer(),
              tracker.max_forgetting());
}

}  // namespace

int main() {
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  cfg.data.num_classes = 10;
  cfg.data.num_domains = 5;
  cfg.data.train_instances = 6;
  cfg.pretrain_num_classes = 20;
  cfg.pretrain_epochs = 5;
  // Short demo stream: a gentler step size keeps the full-network
  // finetuning baseline in its learn-then-forget regime instead of
  // diverging outright.
  cfg.learner_lr = 0.025f;

  std::printf("Setting up (pretraining backbone if uncached)...\n");
  metrics::Experiment exp(cfg);
  data::DomainIncrementalStream stream(cfg.data, cfg.stream);
  exp.warm_latents(stream);

  core::ChameleonConfig cc;
  cc.lt_capacity = 50;
  cc.learning_window = 100;
  core::ChameleonLearner cham(exp.env(), cc, 1);
  baselines::FinetuneLearner finetune(exp.env(), 1);

  metrics::ForgettingTracker cham_track(cfg.data);
  metrics::ForgettingTracker ft_track(cfg.data);

  int64_t current_domain = 0;
  for (int64_t i = 0; i < stream.num_batches(); ++i) {
    const auto& batch = stream.batch(i);
    if (batch.domain != current_domain) {
      cham_track.record_after_domain(cham, current_domain);
      ft_track.record_after_domain(finetune, current_domain);
      std::printf("  finished domain %lld\n", (long long)current_domain);
      current_domain = batch.domain;
    }
    cham.observe(batch);
    finetune.observe(batch);
  }
  cham_track.record_after_domain(cham, current_domain);
  ft_track.record_after_domain(finetune, current_domain);

  print_matrix("Chameleon", cham_track);
  print_matrix("Finetuning", ft_track);
  std::printf("\nThe diagonal is always strong (just-trained); Chameleon's"
              " columns stay high after\nthe stream moves on, finetuning's"
              " decay — that difference is the BWT gap.\n");
  return 0;
}
