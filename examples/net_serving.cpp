// Network serving scenario: the multi_user_serving gateway split across
// process boundaries — one serving process, several client connections.
//
// A NetServer (src/net/) fronts the same sharded SessionManager with a
// length-prefixed binary protocol over a Unix-domain socket. Each client
// thread here stands in for a separate gateway process or device
// connection: it opens its own NetClient, trains its share of a Zipf-skewed
// user population with sequenced OBSERVE frames, and pipelines PREDICT
// frames so the server's BatchPlanner can merge eval windows ACROSS
// connections — the cross-connection coalescing an in-process caller gets
// for free.
//
// Backpressure crosses the wire typed: when a shard queue is full the
// server answers a BACKPRESSURE error carrying the admission layer's EWMA
// retry_after_ms hint, and the client sleeps exactly that long before
// resubmitting (the *_admitted helpers). At the end one client asks for a
// STATS frame — the combined ServeStats + NetStats JSON snapshot — and a
// SHUTDOWN frame stops the server gracefully: every in-flight request
// completes and flushes before the sockets close.
//
//   ./build/examples/net_serving
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/chameleon.h"
#include "metrics/experiment.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "serve/session_store.h"

using namespace cham;

int main() {
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  cfg.data.num_classes = 6;
  cfg.data.num_domains = 2;
  cfg.data.train_instances = 5;
  cfg.pretrain_num_classes = 12;
  cfg.pretrain_epochs = 4;
  cfg.learner_lr = 0.02f;

  std::printf("Setting up (pretraining backbone if uncached)...\n");
  metrics::Experiment exp(cfg);

  data::MultiUserConfig mc;
  mc.num_sessions = 24;
  mc.events = 240;
  mc.zipf_s = 1.1;
  mc.seed = 19;
  mc.predict_fraction = 0.2;
  const auto schedule = data::make_zipf_schedule(mc);

  std::vector<std::vector<data::Batch>> streams;
  for (int64_t u = 0; u < mc.num_sessions; ++u) {
    data::StreamConfig sc = cfg.stream;
    sc.seed = 9000 + static_cast<uint64_t>(u) * 7919;
    data::DomainIncrementalStream stream(cfg.data, sc);
    exp.warm_latents(stream);
    streams.push_back(stream.batches());
  }

  serve::ServeConfig sc;
  sc.num_shards = 4;
  sc.max_resident = 6;  // << users: eviction churn behind the socket
  sc.queue_capacity = 16;
  sc.store_dir = "/tmp/cham_example_net";
  sc.base_seed = 2024;
  sc.mode = serve::ServeMode::kThreaded;  // shard workers dispatch
  serve::SessionStore(sc.store_dir).clear();

  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  serve::SessionManager mgr(
      sc, [&exp, cc](uint64_t /*user*/, uint64_t seed) {
        return std::make_unique<core::ChameleonLearner>(exp.env(), cc, seed);
      });

  net::NetConfig nc;
  nc.unix_path = "/tmp/cham_example_net.sock";
  net::NetServer server(mgr, nc);

  constexpr int kClients = 3;
  std::printf("Serving %lld Zipf(%.1f) events from %lld users over %s "
              "(%d client connections, pool: %lld resident / %lld shards)\n",
              (long long)mc.events, mc.zipf_s, (long long)mc.num_sessions,
              nc.unix_path.c_str(), kClients, (long long)sc.max_resident,
              (long long)sc.num_shards);

  std::atomic<long long> observes_ok{0};
  std::atomic<long long> predicts_ok{0};
  std::atomic<long long> backpressure_sleeps{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::NetClient client({net::Transport::kUnix, nc.unix_path, 0});
      const auto test_keys = data::all_test_keys(cfg.data);
      const std::vector<data::ImageKey> page(
          test_keys.begin(), test_keys.begin() + test_keys.size() / 2);
      std::vector<uint64_t> inflight;
      auto harvest = [&] {
        for (uint64_t id : inflight) {
          if (client.await_reply(id).ok()) {
            predicts_ok.fetch_add(1, std::memory_order_relaxed);
          }
        }
        inflight.clear();
      };
      // Round-robin split of the schedule: three gateways, one population.
      for (size_t i = static_cast<size_t>(c); i < schedule.size();
           i += kClients) {
        const auto& ev = schedule[i];
        const auto sid = static_cast<uint64_t>(ev.session);
        if (ev.predict) {
          // Pipelined: replies come back in request_id order; several
          // in-flight predicts are the planner's cross-connection fuel.
          inflight.push_back(client.send_predict(sid, page));
          if (inflight.size() >= 8) harvest();
          continue;
        }
        const auto& pool = streams[static_cast<size_t>(ev.session)];
        const auto& batch =
            pool[static_cast<size_t>(ev.batch_index) % pool.size()];
        // Sequenced observe: ack awaited before the next send, retried
        // after sleeping the server's retry_after_ms hint on rejection.
        net::Reply r = client.observe(sid, batch);
        while (r.backpressured()) {
          backpressure_sleeps.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(std::max<int64_t>(
                  1, r.error.retry_after_ms)));
          r = client.observe(sid, batch);
        }
        if (r.ok()) observes_ok.fetch_add(1, std::memory_order_relaxed);
      }
      harvest();
    });
  }
  for (auto& t : clients) t.join();

  // One more connection for the control plane: a combined stats snapshot,
  // then a graceful remote shutdown.
  net::NetClient control({net::Transport::kUnix, nc.unix_path, 0});
  const net::Reply stats = control.stats_json();
  const net::Reply bye = control.shutdown_server();
  while (server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();  // joins the already-drained threads; idempotent

  const serve::ServeStats st = mgr.stats();
  const net::NetStats ns = server.stats();
  std::printf("\n  %-30s %lld\n  %-30s %lld\n  %-30s %lld\n  %-30s %lld\n"
              "  %-30s %lld\n  %-30s %lld frames in / %lld out\n"
              "  %-30s %lld (slept the EWMA hint %lld times)\n"
              "  %-30s %lld merged windows, widest %lld\n",
              "observes trained", (long long)observes_ok.load(),
              "predict replies", (long long)predicts_ok.load(),
              "connections served", (long long)ns.connections_accepted,
              "evictions to store", (long long)st.evictions,
              "restores from store", (long long)st.restores,
              "wire traffic", (long long)ns.frames_in,
              (long long)ns.frames_out,
              "backpressure errors", (long long)ns.err_backpressure,
              (long long)backpressure_sleeps.load(),
              "cross-connection batching", (long long)st.predict_batches,
              (long long)st.batch_size_max);
  if (stats.ok()) {
    std::printf("\n  STATS frame (ServeStats + NetStats, one JSON):\n    %s\n",
                stats.json.substr(0, 160).c_str());
  }
  std::printf("\n  shutdown: %s (drained in-flight work before closing)\n",
              bye.ok() ? "acknowledged" : "failed");
  mgr.flush();
  return observes_ok.load() > 0 && bye.ok() ? 0 : 1;
}
