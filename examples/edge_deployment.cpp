// Edge-deployment planning: estimate, before deploying, what a continual-
// learning configuration costs on each target device.
//
// Runs Chameleon briefly to collect its operation trace, then sweeps the
// long-term buffer size and prints per-image latency/energy on the Jetson
// Nano, ZCU102 FPGA and EdgeTPU device models, plus whether the short-term
// store still fits the FPGA's BRAM. This is the workflow a system designer
// would use to size the dual buffers for a new device.
//
//   ./build/examples/edge_deployment
#include <cstdio>

#include "core/chameleon.h"
#include "hw/device.h"
#include "hw/fpga_model.h"
#include "metrics/experiment.h"

using namespace cham;

int main() {
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  cfg.data.num_classes = 10;
  cfg.data.num_domains = 3;
  cfg.data.train_instances = 4;
  cfg.pretrain_num_classes = 20;
  cfg.pretrain_epochs = 4;
  cfg.stream.batch_size = 1;  // the on-device operating point

  std::printf("Profiling Chameleon trace (pretraining if uncached)...\n\n");
  metrics::Experiment exp(cfg);
  data::DomainIncrementalStream stream(cfg.data, cfg.stream);
  exp.warm_latents(stream);

  const std::vector<hw::DeviceProfile> devices = {
      hw::jetson_nano(), hw::zcu102_fpga(), hw::edgetpu()};

  std::printf("%-8s %-10s | %-22s | %-22s | %-22s\n", "LT size", "ST KiB",
              "Jetson ms / J", "ZCU102 ms / J", "EdgeTPU ms / J");
  for (int64_t lt : {50, 100, 500}) {
    core::ChameleonConfig cc;
    cc.lt_capacity = lt;
    core::ChameleonLearner learner(exp.env(), cc, 1);
    exp.run(learner, stream);

    const double st_kib = learner.st_bytes() / 1024.0;
    std::printf("%-8lld %-10.1f |", (long long)lt, st_kib);
    for (const auto& dev : devices) {
      const auto cost = hw::estimate_cost(learner.stats(), dev, 0.2);
      std::printf(" %8.3f / %-11.4f |", cost.latency_ms, cost.energy_j);
    }
    std::printf("\n");
  }

  // FPGA feasibility of the on-chip short-term store at paper-scale latents.
  std::printf("\nFPGA BRAM feasibility (paper-scale 32 KiB latents):\n");
  for (int64_t st_samples : {5, 10, 20}) {
    hw::FpgaAcceleratorConfig fc;
    fc.st_replay_buffer_kib = st_samples * 32;
    const auto res = hw::estimate_fpga_resources(fc);
    std::printf("  Ms = %-3lld -> BRAM %5.1f%%  %s\n", (long long)st_samples,
                res.bram_pct, res.fits ? "fits" : "DOES NOT FIT");
  }
  std::printf("\nTakeaway: LT size moves only off-chip DRAM traffic (rare"
              " bursts), so latency is\nflat in LT; the ST store is the"
              " on-chip resource that must be sized to the device.\n");
  return 0;
}
