// Figure 1 analogue: renders one object class across domains to PGM files
// and prints a coarse ASCII preview, showing the domain-shift structure
// (lighting, colour cast, background texture, translation) the benchmarks
// train against.
//
//   ./build/examples/domain_gallery [out_dir]
#include <cstdio>
#include <fstream>
#include <string>

#include "data/dataset.h"

using namespace cham;

namespace {

// Writes an RGB image as a binary PPM.
void write_ppm(const Tensor& img, const std::string& path) {
  const int64_t hw = img.dim(1);
  std::ofstream f(path, std::ios::binary);
  f << "P6\n" << hw << " " << hw << "\n255\n";
  for (int64_t y = 0; y < hw; ++y) {
    for (int64_t x = 0; x < hw; ++x) {
      for (int64_t c = 0; c < 3; ++c) {
        const float v = img[(c * hw + y) * hw + x];
        f.put(static_cast<char>(v * 255.0f));
      }
    }
  }
}

void ascii_preview(const Tensor& img) {
  static const char* kRamp = " .:-=+*#%@";
  const int64_t hw = img.dim(1);
  const int64_t step = hw / 16;
  for (int64_t y = 0; y < hw; y += step * 2) {  // terminal cells are tall
    for (int64_t x = 0; x < hw; x += step) {
      const float lum = (img[(0 * hw + y) * hw + x] +
                         img[(1 * hw + y) * hw + x] +
                         img[(2 * hw + y) * hw + x]) /
                        3.0f;
      std::putchar(kRamp[static_cast<int>(lum * 9.99f)]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";
  const auto cfg = data::core50_config();
  const int32_t cls = 7;

  std::printf("Class %d of the CORe50-like dataset under 4 of its %lld"
              " domains\n(same object, different lighting / background /"
              " viewpoint — the paper's Fig. 1):\n\n",
              cls, (long long)cfg.num_domains);
  for (int32_t d = 0; d < 4; ++d) {
    const Tensor img =
        data::synthesize_image(cfg, {cls, d, /*instance=*/0, false});
    const std::string path =
        out_dir + "/chameleon_class" + std::to_string(cls) + "_domain" +
        std::to_string(d) + ".ppm";
    write_ppm(img, path);
    std::printf("--- domain %d  (saved %s)\n", d, path.c_str());
    ascii_preview(img);
  }
  std::printf("\nAnd two DIFFERENT classes in the same domain, for contrast:\n");
  for (int32_t c : {12, 31}) {
    std::printf("--- class %d, domain 0\n", c);
    ascii_preview(data::synthesize_image(cfg, {c, 0, 0, false}));
  }
  return 0;
}
