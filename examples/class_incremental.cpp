// Class-Incremental Learning scenario (extension): classes arrive in
// disjoint tasks rather than all-at-once under shifting domains. This is
// the setting where Chameleon's class-balanced long-term store matters
// most — a reservoir buffer keeps over-representing early tasks' classes
// by recency-weighted chance, while the per-class quota guarantees every
// discovered class a persistent foothold.
//
//   ./build/examples/class_incremental
#include <cstdio>

#include "baselines/replay_methods.h"
#include "baselines/simple_methods.h"
#include "core/chameleon.h"
#include "metrics/experiment.h"

using namespace cham;

int main() {
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  cfg.data.num_classes = 20;
  cfg.data.num_domains = 4;
  cfg.data.train_instances = 5;
  cfg.pretrain_num_classes = 40;
  cfg.pretrain_epochs = 6;
  cfg.learner_lr = 0.03f;

  std::printf("Setting up (pretraining backbone if uncached)...\n");
  metrics::Experiment exp(cfg);

  data::ClassIncrementalConfig cic;
  cic.classes_per_task = 5;
  data::ClassIncrementalStream stream(cfg.data, cic);
  exp.warm_latents(stream.batches());
  std::printf("Class-IL stream: %lld tasks x %lld classes, %lld batches\n\n",
              (long long)stream.num_tasks(), (long long)cic.classes_per_task,
              (long long)stream.num_batches());

  core::ChameleonConfig cc;
  cc.lt_capacity = 60;  // 3 slots per class once all 20 classes are seen
  core::ChameleonLearner cham(exp.env(), cc, 1);
  baselines::LatentReplayLearner lr(exp.env(), 70, 1);
  baselines::FinetuneLearner ft(exp.env(), 1);

  exp.run(cham, stream.batches());
  exp.run(lr, stream.batches());
  exp.run(ft, stream.batches());

  const auto cham_acc = exp.evaluate(cham);
  const auto lr_acc = exp.evaluate(lr);
  const auto ft_acc = exp.evaluate(ft);
  std::printf("Final Acc_all after all tasks:\n");
  std::printf("  %-22s %6.2f%%\n", "Chameleon", cham_acc.acc_all);
  std::printf("  %-22s %6.2f%%\n", "Latent Replay", lr_acc.acc_all);
  std::printf("  %-22s %6.2f%%\n", "Finetuning", ft_acc.acc_all);

  // Per-class coverage of the long-term store at stream end.
  int64_t covered = 0;
  for (int64_t c = 0; c < cfg.data.num_classes; ++c) {
    covered += cham.long_term().class_count(c) > 0;
  }
  std::printf("\nChameleon LT covers %lld / %lld classes (quota %lld each)\n",
              (long long)covered, (long long)cfg.data.num_classes,
              (long long)cham.long_term().per_class_quota());
  return 0;
}
