// Personalization scenario: a user whose interests DRIFT mid-stream.
//
// The stream over-samples 5 "preferred" classes (8x) and switches the
// preferred set halfway through the domains. The example shows how
// Chameleon's learning-window recalibration (paper Sec. III-B step 1)
// tracks the drift, and compares accuracy on the preferred classes against
// a preference-agnostic Latent Replay baseline.
//
//   ./build/examples/personalization
#include <cstdio>
#include <set>

#include "baselines/replay_methods.h"
#include "core/chameleon.h"
#include "metrics/experiment.h"

using namespace cham;

int main() {
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  cfg.data.num_classes = 20;
  cfg.data.num_domains = 6;
  cfg.data.train_instances = 6;
  cfg.pretrain_num_classes = 40;
  cfg.pretrain_epochs = 6;
  cfg.stream.preference_weight = 8.0f;
  cfg.stream.drift_preferences = true;

  std::printf("Setting up (pretraining backbone if uncached)...\n");
  metrics::Experiment exp(cfg);
  data::DomainIncrementalStream stream(cfg.data, cfg.stream);
  exp.warm_latents(stream);

  const auto& early_pref = stream.preferred_by_domain().front();
  const auto& late_pref = stream.preferred_by_domain().back();
  auto show = [](const char* tag, const std::vector<int64_t>& v) {
    std::printf("%s", tag);
    for (int64_t c : v) std::printf(" %lld", (long long)c);
    std::printf("\n");
  };
  show("User preferences, first half :", early_pref);
  show("User preferences, second half:", late_pref);

  core::ChameleonConfig cc;
  cc.lt_capacity = 60;
  cc.learning_window = 120;
  core::ChameleonLearner cham(exp.env(), cc, 1);
  exp.run(cham, stream);

  baselines::LatentReplayLearner lr(exp.env(), 70, 1);  // same total budget
  exp.run(lr, stream);

  show("Chameleon's tracked preferences at stream end:",
       cham.preferences().preferred_classes());
  const std::set<int64_t> tracked(
      cham.preferences().preferred_classes().begin(),
      cham.preferences().preferred_classes().end());
  int64_t overlap = 0;
  for (int64_t c : late_pref) overlap += tracked.count(c);
  std::printf("Overlap with the drifted (current) preference set: "
              "%lld / %zu\n\n",
              (long long)overlap, late_pref.size());

  const auto test_keys = data::all_test_keys(cfg.data);
  const auto cham_acc = metrics::evaluate(cham, test_keys, late_pref);
  const auto lr_acc = metrics::evaluate(lr, test_keys, late_pref);
  std::printf("%-22s %-12s %-12s\n", "", "Acc_all", "Acc_preferred");
  std::printf("%-22s %-12.2f %-12.2f\n", "Chameleon", cham_acc.acc_all,
              cham_acc.acc_preferred);
  std::printf("%-22s %-12.2f %-12.2f\n", "Latent Replay", lr_acc.acc_all,
              lr_acc.acc_preferred);
  std::printf("\nChameleon's user-aware short-term store should lift the"
              " preferred-class slice\nwhile the class-balanced long-term"
              " store protects Acc_all.\n");
  return 0;
}
