// Multi-user serving scenario: 50 concurrent personalization sessions
// multiplexed over a pool of 8 resident learners.
//
// Each user runs their own Chameleon learner — private head weights, replay
// stores and preference statistics — but an edge gateway cannot keep 50
// learners in memory. The SessionManager (src/serve/) keeps the hot users
// resident and pages cold users' full learner state to disk through the
// checkpoint layer; traffic is Zipf-skewed, so the hottest handful of users
// dominate arrivals while the long tail cycles through eviction.
//
// At the end, each spot-checked user's served model is compared against the
// same stream run in a dedicated learner: the predictions match exactly,
// which is the point — eviction is invisible to the user.
//
//   ./build/examples/multi_user_serving
#include <cstdio>
#include <memory>
#include <vector>

#include "core/chameleon.h"
#include "metrics/experiment.h"
#include "serve/session_manager.h"
#include "serve/session_store.h"

using namespace cham;

int main() {
  metrics::ExperimentConfig cfg = metrics::core50_experiment();
  cfg.data.num_classes = 6;
  cfg.data.num_domains = 2;
  cfg.data.train_instances = 5;
  cfg.pretrain_num_classes = 12;
  cfg.pretrain_epochs = 4;
  cfg.learner_lr = 0.02f;

  std::printf("Setting up (pretraining backbone if uncached)...\n");
  metrics::Experiment exp(cfg);

  // 50 users, each with a private stream ordering over the shared pool.
  data::MultiUserConfig mc;
  mc.num_sessions = 50;
  mc.events = 500;
  mc.zipf_s = 1.1;
  mc.seed = 19;
  const auto schedule = data::make_zipf_schedule(mc);

  std::vector<std::vector<data::Batch>> streams;
  for (int64_t u = 0; u < mc.num_sessions; ++u) {
    data::StreamConfig sc = cfg.stream;
    sc.seed = 9000 + static_cast<uint64_t>(u) * 7919;
    data::DomainIncrementalStream stream(cfg.data, sc);
    exp.warm_latents(stream);
    streams.push_back(stream.batches());
  }

  serve::ServeConfig sc;
  sc.num_shards = 4;
  sc.max_resident = 8;
  sc.queue_capacity = 16;
  sc.store_dir = "/tmp/cham_example_serving";
  sc.base_seed = 2024;
  serve::SessionStore(sc.store_dir).clear();

  core::ChameleonConfig cc;
  cc.lt_capacity = 18;
  serve::SessionManager mgr(
      sc, [&exp, cc](uint64_t /*user*/, uint64_t seed) {
        return std::make_unique<core::ChameleonLearner>(exp.env(), cc, seed);
      });

  std::printf("Serving %lld Zipf(%.1f) events from %lld users "
              "(pool: %lld resident / %lld shards)...\n",
              (long long)mc.events, mc.zipf_s, (long long)mc.num_sessions,
              (long long)sc.max_resident, (long long)sc.num_shards);

  std::vector<std::vector<const data::Batch*>> seen(
      static_cast<size_t>(mc.num_sessions));
  for (const auto& ev : schedule) {
    const auto& pool = streams[static_cast<size_t>(ev.session)];
    const auto& batch =
        pool[static_cast<size_t>(ev.batch_index) % pool.size()];
    seen[static_cast<size_t>(ev.session)].push_back(&batch);
    // Bounded queues: on rejection, drain and retry (a real gateway would
    // sleep adm.retry_after_ms and re-submit).
    while (!mgr.submit_observe(static_cast<uint64_t>(ev.session), batch)
                .accepted) {
      mgr.drain();
    }
  }
  mgr.flush();

  const serve::ServeStats st = mgr.stats();
  std::printf("\n  %-28s %lld\n  %-28s %lld\n  %-28s %lld\n  %-28s %lld\n"
              "  %-28s %lld\n  %-28s %.2f ms avg / %.2f ms max\n"
              "  %-28s %.2f ms avg / %.2f ms max\n",
              "observes dispatched", (long long)st.observes,
              "admission rejections", (long long)st.rejections,
              "sessions created", (long long)st.creates,
              "evictions to store", (long long)st.evictions,
              "restores from store", (long long)st.restores,
              "eviction (save)", st.save_ms_avg(), st.save_ms_max,
              "restore (load)", st.restore_ms_avg(), st.restore_ms_max);

  // The user-visible contract: serving through the shared pool produced
  // exactly the model each user would have gotten on dedicated hardware.
  const auto test_keys = data::all_test_keys(cfg.data);
  serve::SessionStore reader(sc.store_dir);
  const int64_t probes[] = {0, 12, 25, 49};
  std::printf("\n  %-8s %-8s %-14s %s\n", "user", "events", "predictions",
              "matches isolated run");
  for (int64_t u : probes) {
    if (seen[static_cast<size_t>(u)].empty()) {
      std::printf("  %-8lld %-8d %-14s (no traffic)\n", (long long)u, 0, "-");
      continue;
    }
    core::ChameleonLearner served(exp.env(), cc, 0x5E54);
    if (!reader.load(static_cast<uint64_t>(u), served)) {
      std::printf("  %-8lld restore FAILED\n", (long long)u);
      return 1;
    }
    core::ChameleonLearner dedicated(exp.env(), cc,
                                     mgr.session_seed(static_cast<uint64_t>(u)));
    for (const auto* b : seen[static_cast<size_t>(u)]) dedicated.observe(*b);
    const bool match = served.predict(test_keys) == dedicated.predict(test_keys);
    std::printf("  %-8lld %-8lld %-14lld %s\n", (long long)u,
                (long long)seen[static_cast<size_t>(u)].size(),
                (long long)test_keys.size(), match ? "yes" : "NO");
    if (!match) return 1;
  }
  std::printf("\nEviction round-trips were invisible to every probed user.\n");
  return 0;
}
