#!/bin/bash
# Appends the extension ablations to bench_output.txt and regenerates
# test_output.txt with the full (grown) test suite.
cd /root/repo
{
  echo "===== build/bench/bench_ablation_precision ====="
  ./build/bench/bench_ablation_precision
  echo "===== build/bench/bench_ablation_st_capacity ====="
  ./build/bench/bench_ablation_st_capacity
  echo "===== build/bench/bench_ablation_user_skew ====="
  ./build/bench/bench_ablation_user_skew
} >> bench_output.txt 2>&1
ctest --test-dir build 2>&1 | tee test_output.txt > /dev/null
echo FINALIZE_DONE >> bench_output.txt
