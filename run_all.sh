#!/bin/bash
# Regenerates test_output.txt and bench_output.txt (every table/figure).
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b ====="
    "$b"
  fi
done 2>&1 | tee /root/repo/bench_output.txt
echo ALL_DONE >> /root/repo/bench_output.txt
