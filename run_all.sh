#!/bin/bash
# Regenerates test_output.txt and bench_output.txt (every table/figure).
#
# Static-analysis gate: run_static.sh (cham_lint + clang-tidy when present +
# -Werror build + UBSan test pass) must exit 0 before any output is
# regenerated. CHAM_SKIP_STATIC=1 bypasses it for quick local iteration.
#
# Sanitizer hook: CHAM_SANITIZE=thread|address runs the test suite in a
# dedicated sanitizer build first (build-tsan/ or build-asan/) and aborts on
# any sanitizer-reported failure before touching the regular outputs.
# CHAM_RUN_TSAN=1 is shorthand for the thread leg: it builds build-tsan/
# (which also registers the TSan-gated serve race stress test,
# tests/test_serve_race.cpp) and runs the suite under TSan.
cd /root/repo
if [ -z "${CHAM_SKIP_STATIC:-}" ]; then
  ./run_static.sh || { echo "run_all.sh: static analysis failed" >&2; exit 1; }
fi
if [ -n "${CHAM_RUN_TSAN:-}" ] && [ -z "${CHAM_SANITIZE:-}" ]; then
  CHAM_SANITIZE=thread
fi
if [ -n "${CHAM_SANITIZE:-}" ]; then
  case "$CHAM_SANITIZE" in
    thread) SAN_DIR=build-tsan ;;
    address) SAN_DIR=build-asan ;;
    *) echo "CHAM_SANITIZE must be 'thread' or 'address'" >&2; exit 1 ;;
  esac
  cmake -B "$SAN_DIR" -S . -DCHAM_SANITIZE="$CHAM_SANITIZE" || exit 1
  cmake --build "$SAN_DIR" -j || exit 1
  ctest --test-dir "$SAN_DIR" --output-on-failure || exit 1
  echo "sanitizer ($CHAM_SANITIZE) suite passed"
fi
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
# Gated benches (bench_serve: fidelity/batched-bit-exact/throughput/
# evict-lock/delta-ratio; bench_threads: bit-identity/speedup-or-skip/
# no-subgrain-wakeup; bench_net: codec-zero-alloc/wire-bit-exact/
# throughput-floor) exit non-zero when a gate fails; record the failure
# in the archive and fail the whole regeneration at the end.
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b ====="
    "$b" || echo "GATE_FAILURE $b"
  fi
done 2>&1 | tee /root/repo/bench_output.txt
# bench_threads, bench_kernels, bench_observe and bench_serve emit JSON perf
# artefacts into the repo root (they run with cwd = /root/repo); record them
# next to the text outputs so the kernel/scaling/observe/serving trajectory
# is versioned per PR.
for j in BENCH_threads.json BENCH_kernels.json BENCH_observe.json BENCH_serve.json BENCH_net.json; do
  if [ -f "/root/repo/$j" ]; then
    echo "archived $j" >> /root/repo/bench_output.txt
  else
    echo "run_all.sh: expected $j was not produced" >&2
    echo "MISSING $j" >> /root/repo/bench_output.txt
  fi
done
if grep -q "^GATE_FAILURE" /root/repo/bench_output.txt; then
  echo "run_all.sh: bench gate failure (see bench_output.txt)" >&2
  echo BENCH_GATE_FAILED >> /root/repo/bench_output.txt
  exit 1
fi
# Trend gate: fresh artefacts vs the committed bench/baselines/ snapshots.
# Fails the regeneration on a >25% regression in any gated metric (see
# tools/bench_compare.py for the metric list and directions).
python3 tools/bench_compare.py 2>&1 | tee -a /root/repo/bench_output.txt
if [ "${PIPESTATUS[0]}" -ne 0 ]; then
  echo "run_all.sh: bench_compare regression (see bench_output.txt)" >&2
  echo BENCH_COMPARE_FAILED >> /root/repo/bench_output.txt
  exit 1
fi
echo ALL_DONE >> /root/repo/bench_output.txt
