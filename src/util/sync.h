// Compiler-checked lock discipline: Clang capability annotations plus the
// annotated synchronisation primitives every concurrent component uses.
//
// PRs 4-5 made the runtime genuinely concurrent (sharded session queues, a
// write-behind IO thread, a pending-flush map raced by restores). The
// locking rules used to live in comments and two regex lint rules; this
// header moves them into the type system, where Clang's thread-safety
// analysis (-Wthread-safety, promoted to an error by the CHAM_THREAD_SAFETY
// build mode) re-proves them on every build:
//
//   * every mutex-protected member is declared CHAM_GUARDED_BY(mu) — an
//     unlocked read or write is a compile error, not a heisenbug;
//   * private helpers that assume the lock carry CHAM_REQUIRES(mu) — a
//     call path that forgets to lock is a compile error;
//   * functions that take a lock internally carry CHAM_EXCLUDES(mu) — a
//     re-entrant self-deadlock is a compile error.
//
// On GCC/MSVC the macros expand to nothing, so the annotations cost nothing
// outside clang builds. The wrappers (Mutex / MutexLock / CondVar) are thin
// shims over the std primitives — same codegen, plus the capability types
// the analysis needs. cham_lint's `raw-mutex` rule keeps new code on the
// wrappers: bare std::mutex / std::lock_guard / std::unique_lock /
// std::condition_variable are rejected everywhere in src/ except this file.
//
// ---------------------------------------------------------------------------
// MEMORY-ORDERING POLICY (the repo-wide std::atomic audit, PR 7)
//
// Atomics are used in exactly three patterns; anything new must cite one of
// them (or extend this block):
//
//   1. Mutex-published flag, relaxed.  A flag written before taking a mutex
//      that every reader holds while loading it (SessionManager::stop_).
//      The mutex hand-off supplies the happens-before edge, so both the
//      store and the loads are std::memory_order_relaxed. The atomic only
//      exists because one writer races the *lock acquisition* of readers,
//      not their reads.
//   2. Completion-count hand-off, acquire/release.  A countdown that
//      transfers written data from workers to a waiter
//      (thread_pool.cpp pending_): workers fetch_sub(acq_rel) after their
//      writes, the waiter loads acquire and observes all of them. This is
//      the ONE place seq_cst-free release/acquire ordering carries data.
//   3. Monitoring counters, relaxed.  Single-writer gauges polled by other
//      threads for statistics only (ws::Arena high-water / reserved
//      counters), or multi-writer tallies summed after a join barrier that
//      itself synchronises (metrics/evaluator.cpp per-class counters).
//      Values never gate control flow on the reader side, so
//      std::memory_order_relaxed everywhere; the surrounding barrier or
//      mutex provides whatever visibility the consumer needs.
//
// Default seq_cst is reserved for code that has not yet been audited; none
// remains in src/ as of PR 7.
// ---------------------------------------------------------------------------
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

// Capability-annotation macros, after the scheme in the Clang thread-safety
// docs (and abseil's thread_annotations.h). GNU attribute spelling so the
// same macros apply to classes, members, functions and lambdas.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CHAM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CHAM_THREAD_ANNOTATION
#define CHAM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Types that act as capabilities (mutexes) / RAII scopes that manage them.
#define CHAM_CAPABILITY(x) CHAM_THREAD_ANNOTATION(capability(x))
#define CHAM_SCOPED_CAPABILITY CHAM_THREAD_ANNOTATION(scoped_lockable)

// Data members: may only be read/written while holding the capability.
#define CHAM_GUARDED_BY(x) CHAM_THREAD_ANNOTATION(guarded_by(x))
#define CHAM_PT_GUARDED_BY(x) CHAM_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: capability state they require, acquire, release or refuse.
#define CHAM_REQUIRES(...) \
  CHAM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CHAM_ACQUIRE(...) \
  CHAM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CHAM_RELEASE(...) \
  CHAM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CHAM_TRY_ACQUIRE(...) \
  CHAM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CHAM_EXCLUDES(...) CHAM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CHAM_RETURN_CAPABILITY(x) CHAM_THREAD_ANNOTATION(lock_returned(x))
#define CHAM_ASSERT_CAPABILITY(x) \
  CHAM_THREAD_ANNOTATION(assert_capability(x))

// Lock-hierarchy documentation (checked only under -Wthread-safety-beta;
// always valuable as a machine-readable statement of the order).
#define CHAM_ACQUIRED_BEFORE(...) \
  CHAM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CHAM_ACQUIRED_AFTER(...) \
  CHAM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Escape hatch for protocols the analysis cannot express (e.g. ownership
// hand-offs proven by an atomic countdown). Every use must carry a comment
// stating the protocol that replaces the lock.
#define CHAM_NO_THREAD_SAFETY_ANALYSIS \
  CHAM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cham::util {

class CondVar;

// Annotated std::mutex. Prefer MutexLock over manual lock()/unlock(); the
// manual form exists for the rare protocol (pool worker hand-off) where a
// scope cannot own the lock.
class CHAM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CHAM_ACQUIRE() { mu_.lock(); }
  void unlock() CHAM_RELEASE() { mu_.unlock(); }
  bool try_lock() CHAM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock over a util::Mutex, relockable so eviction-style code can drop
// the lock for a slow section and re-take it before returning:
//
//   MutexLock lock(sessions_mu_);
//   ... victim selection (guarded state OK) ...
//   lock.unlock();
//   ... serialise with no locks held ...
//   lock.lock();
//   ... guarded state OK again ...
//
// The analysis tracks the unlock()/lock() pairs, so guarded accesses in the
// unlocked window are still compile errors. If an exception unwinds through
// the unlocked window, the destructor correctly does nothing.
class CHAM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CHAM_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() CHAM_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Mid-scope release / reacquire (see class comment).
  void unlock() CHAM_RELEASE() { lock_.unlock(); }
  void lock() CHAM_ACQUIRE() { lock_.lock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Annotated condition variable. The ONLY wait is the predicate-checked
// form — a naked wait() (no predicate) is lost-wakeup- and spurious-wakeup-
// prone, and cham_lint's `naked-cv-wait` rule rejects it. The predicate
// runs with the lock held; when it reads CHAM_GUARDED_BY state (it almost
// always does), annotate the lambda so the analysis knows:
//
//   cv_.wait(lock, [this]() CHAM_REQUIRES(mu_) { return stop_ || !q_.empty(); });
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  // Blocks until pred() holds; re-checks after every wakeup. The lock is
  // released while blocked and held whenever pred runs. That release/
  // reacquire cycle is invisible to the analysis, which is why this one
  // function opts out; callers still need (and the annotated call sites
  // still prove) the lock held around the wait.
  template <typename Pred>
  void wait(MutexLock& lock, Pred pred) CHAM_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(lock.lock_, std::move(pred));
  }

  // Timed variant: blocks until pred() holds or `timeout` elapses. Returns
  // pred()'s final value. Same predicate-only discipline as wait() (the
  // bounded batch-coalescing wait in the serve worker is the archetype:
  // the timeout bounds added latency, the predicate handles wakeups).
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(MutexLock& lock, std::chrono::duration<Rep, Period> timeout,
                Pred pred) CHAM_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(lock.lock_, timeout, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace cham::util
