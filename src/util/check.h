// CHAM_CHECK contract layer: machine-checked invariants for the replay and
// tensor stack.
//
// The compiler never sees Chameleon's correctness conditions — class-balanced
// LT quotas, prototype/LT consistency (Eq. 5-6), Delta_k allocation weights
// (Eq. 2-4), conservation of the DRAM-traffic ledger — and `assert()` is
// compiled out of the default -O3 -DNDEBUG Release build, so a violated
// invariant corrupts accuracy silently instead of crashing. These macros stay
// on in Release and report through a catchable exception so both production
// code and gtest contract tests observe failures.
//
// Three check tiers, selected at configure time with -DCHAM_CHECKS=off|cheap|full
// (mapped to the CHAM_CHECKS_LEVEL preprocessor constant, default cheap):
//
//   CHAM_CHECK(cond, msg)        cheap+full   O(1) preconditions: shapes,
//                                             ranks, capacities, label ranges.
//                                             Per-call, never per-element.
//   CHAM_CHECK_SHAPE(a, b)       cheap+full   Shape equality with both shapes
//                                             in the failure message.
//   CHAM_DCHECK(cond, msg)       full only    Hot-path checks (per-element
//                                             bounds); free in Release.
//   CHAM_CHECK_FINITE(span, nm)  full only    O(n) NaN/Inf scan over a float
//                                             span (layer outputs, gradients).
//   CHAM_AUDIT(stmt)             full only    Runs stmt (structural
//                                             check_invariants() sweeps).
//
// The message expression is only evaluated on failure, so call sites may
// build strings freely. Failures throw cham::util::CheckError; a check that
// trips inside a multi-threaded parallel_for region terminates instead
// (kernels must not throw across the pool boundary), which is still a loud
// stop — full-checks verification runs are expected to use CHAM_THREADS=1
// when a catchable failure is required.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

// 0 = off, 1 = cheap (default), 2 = full. Set by CMake from CHAM_CHECKS.
#ifndef CHAM_CHECKS_LEVEL
#define CHAM_CHECKS_LEVEL 1
#endif

namespace cham::util {

// Thrown on any failed contract. Derives from std::logic_error: a tripped
// check is a programming error, not an environmental condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* cond,
                                      const std::string& msg) {
  std::string what = "CHAM_CHECK failed at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  what += ": (";
  what += cond;
  what += ")";
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  throw CheckError(what);
}

// True iff every element is neither NaN nor +/-Inf.
inline bool all_finite(std::span<const float> v) {
  for (float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// Index of the first non-finite element (call only when !all_finite).
inline int64_t first_nonfinite(std::span<const float> v) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) return static_cast<int64_t>(i);
  }
  return -1;
}

// Collects structural-audit violations; used by the check_invariants()
// methods on the replay-path components so tests can inspect individual
// findings (status-object style) while production code throws via
// throw_if_violations.
struct AuditReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  void fail(std::string what) { violations.push_back(std::move(what)); }
  // True if any recorded violation mentions `needle` (test convenience).
  bool mentions(const std::string& needle) const {
    for (const auto& v : violations) {
      if (v.find(needle) != std::string::npos) return true;
    }
    return false;
  }
  std::string to_string() const {
    std::string out;
    for (const auto& v : violations) {
      if (!out.empty()) out += "; ";
      out += v;
    }
    return out;
  }
};

[[noreturn]] inline void audit_failed(const char* component,
                                      const AuditReport& report) {
  throw CheckError(std::string("CHAM_AUDIT failed [") + component + "]: " +
                   report.to_string());
}

inline void throw_if_violations(const char* component,
                                const AuditReport& report) {
  if (!report.ok()) audit_failed(component, report);
}

}  // namespace cham::util

#if CHAM_CHECKS_LEVEL >= 1
#define CHAM_CHECK(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::cham::util::check_failed(__FILE__, __LINE__, #cond, (msg));    \
    }                                                                  \
  } while (0)
// Shape equality with both shapes rendered in the failure message. `a` and
// `b` must be cham::Shape expressions (check.h itself stays tensor-free).
#define CHAM_CHECK_SHAPE(a, b)                                         \
  do {                                                                 \
    if (!((a) == (b))) {                                               \
      ::cham::util::check_failed(__FILE__, __LINE__, #a " == " #b,     \
                                 (a).to_string() + " vs " +            \
                                     (b).to_string());                 \
    }                                                                  \
  } while (0)
#else
#define CHAM_CHECK(cond, msg) ((void)0)
#define CHAM_CHECK_SHAPE(a, b) ((void)0)
#endif

#if CHAM_CHECKS_LEVEL >= 2
#define CHAM_DCHECK(cond, msg) CHAM_CHECK(cond, msg)
// `span_expr` is any expression convertible to std::span<const float>.
#define CHAM_CHECK_FINITE(span_expr, name)                                \
  do {                                                                    \
    const std::span<const float> cham_cf_span_ = (span_expr);             \
    if (!::cham::util::all_finite(cham_cf_span_)) {                       \
      ::cham::util::check_failed(                                         \
          __FILE__, __LINE__, "all_finite(" #span_expr ")",               \
          std::string(name) + ": non-finite value at index " +            \
              std::to_string(::cham::util::first_nonfinite(cham_cf_span_))); \
    }                                                                     \
  } while (0)
#define CHAM_AUDIT(stmt) \
  do {                   \
    stmt;                \
  } while (0)
#else
#define CHAM_DCHECK(cond, msg) ((void)0)
#define CHAM_CHECK_FINITE(span_expr, name) ((void)0)
#define CHAM_AUDIT(stmt) ((void)0)
#endif
