// Minimal JSON emission, shared by every stats block that prints itself.
//
// ServeStats, NetStats and the bench artefact writers all emit flat-ish JSON
// objects; before this header each hand-rolled its own quoting and number
// formatting, which is exactly how a stray `"` in a message field or a
// locale-dependent %f turns a machine-parsed artefact into a parse error.
// JsonWriter centralises the three things that can go wrong:
//
//   * string escaping — the full JSON set (quote, backslash, control chars
//     as \u00XX) so any message text is safe to embed;
//   * number formatting — integers verbatim, doubles with %.4f (the format
//     the bench trend gate has always parsed), never inf/nan (emitted as 0,
//     JSON has no spelling for them);
//   * structure — fields are comma-separated exactly once, objects nest via
//     raw() with a pre-rendered sub-object.
//
// Header-only and allocation-light (one growing string); not a JSON parser —
// tests that need to re-read emitted JSON carry their own tiny reader.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <string>
#include <string_view>

namespace cham::util {

// Escapes `s` for embedding inside a JSON string literal (no surrounding
// quotes added).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Builds one JSON object, field by field, in insertion order.
//
//   JsonWriter j;
//   j.field("observes", observes);
//   j.field("retry_hint_ms_avg", hint_avg);
//   j.raw("net", net_stats.to_json());   // nested, pre-rendered
//   return j.str();
class JsonWriter {
 public:
  JsonWriter() = default;

  void field(std::string_view key, int64_t v) {
    emit_key(key);
    body_ += std::to_string(v);
  }
  void field(std::string_view key, bool v) {
    emit_key(key);
    body_ += v ? "true" : "false";
  }
  // Doubles use the fixed %.4f the bench artefacts have always carried;
  // non-finite values (which JSON cannot represent) emit as 0.
  void field(std::string_view key, double v) {
    emit_key(key);
    if (!std::isfinite(v)) {
      body_ += "0";
      return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    body_ += buf;
  }
  void field(std::string_view key, std::string_view s) {
    emit_key(key);
    body_ += '"';
    body_ += json_escape(s);
    body_ += '"';
  }
  void field(std::string_view key, const char* s) {
    field(key, std::string_view(s));
  }
  // Pre-rendered JSON value (nested object / array), inserted verbatim.
  void raw(std::string_view key, std::string_view rendered) {
    emit_key(key);
    body_ += rendered;
  }

  std::string str() const { return "{" + body_ + "}"; }

 private:
  void emit_key(std::string_view key) {
    if (!body_.empty()) body_ += ", ";
    body_ += '"';
    body_ += json_escape(key);
    body_ += "\": ";
  }

  std::string body_;
};

}  // namespace cham::util
