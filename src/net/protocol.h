// Binary wire protocol for the serving runtime's socket front-end.
//
// The serving runtime batches observe/predict traffic across sessions
// in-process (serve/batch_planner.h); this protocol is how that traffic
// arrives from OUTSIDE the process — an edge gateway's client devices, or
// the distributed-learner actor pattern (one learner process, many actor
// connections), each speaking length-prefixed binary frames over a
// Unix-domain or TCP socket.
//
// Frame layout (little-endian, 32-byte header + payload):
//
//   offset  size  field
//        0     4  magic        0x4D414843 ("CHAM")
//        4     2  version      kWireVersion (1)
//        6     2  type         MsgType
//        8     8  session_id   which per-user learner this frame targets
//       16     8  request_id   caller-chosen; echoed verbatim in the reply
//       24     4  payload_len  bytes following the header
//       28     4  payload_crc  CRC-32 of the payload (0 when empty)
//
// Request types carry the serving API: OBSERVE (one training batch),
// PREDICT (one key list), PREDICT_BATCH (several key lists submitted as
// pipelined predicts — the shape the BatchPlanner merges into one eval
// window), FLUSH (drain + evict everything to the store), STATS (JSON
// snapshot of ServeStats + NetStats), SHUTDOWN (graceful server stop).
// Every request gets exactly one reply frame echoing session_id/request_id:
// the matching *_OK / *_RESULT type, or ERROR with a typed code — including
// BACKPRESSURE, which carries the admission layer's retry_after_ms hint so
// remote callers back off exactly like in-process ones.
//
// Delivery contract: replies to PREDICT/PREDICT_BATCH arrive in request_id
// submission order per connection (the completion scatter in
// net/server.cpp); admission acks and errors may overtake them, so clients
// match on request_id, never on arrival order.
//
// The codec is allocation-free in steady state: encoders append to a
// caller-owned buffer that keeps its capacity across frames, decoders fill
// caller-owned structures whose vectors are resized, not reallocated, once
// warm. bench_net gates this (zero heap allocations per encode/decode
// round-trip after warm-up).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/stream.h"

namespace cham::net {

// Shared by NetServer and NetClient: which socket family the endpoint uses.
// Both transports speak the identical framing; kUnix is the edge-device
// default (co-located gateway), kTcp the cross-host option.
enum class Transport {
  kUnix,  // AF_UNIX stream socket at a filesystem path
  kTcp,   // 127.0.0.1:<port> (port 0 = ephemeral server-side)
};

inline constexpr uint32_t kWireMagic = 0x4D414843u;  // "CHAM"
inline constexpr uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 32;
// Server-side default ceiling on payload_len; anything larger is rejected
// with ErrCode::kOversized before any payload is buffered.
inline constexpr uint32_t kDefaultMaxPayload = 1u << 20;

enum class MsgType : uint16_t {
  // Requests.
  kObserve = 1,
  kPredict = 2,
  kPredictBatch = 3,
  kFlush = 4,
  kStats = 5,
  kShutdown = 6,
  // Replies.
  kObserveOk = 17,
  kPredictResult = 18,
  kPredictBatchResult = 19,
  kFlushOk = 20,
  kStatsResult = 21,
  kShutdownOk = 22,
  kError = 31,
};

// Typed error codes carried by kError frames.
enum class ErrCode : uint16_t {
  kBackpressure = 1,   // shard queue full; retry_after_ms is the EWMA hint
  kMalformed = 2,      // payload failed to decode
  kOversized = 3,      // payload_len above the server's ceiling
  kShuttingDown = 4,   // server is draining; connection closes after this
  kDispatchFailed = 5, // learner threw during execution
  kBadVersion = 6,     // header version != kWireVersion
  kBadCrc = 7,         // payload CRC mismatch
  kUnknownType = 8,    // request type the server does not speak
};

struct FrameHeader {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
  MsgType type = MsgType::kError;
  uint64_t session_id = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

// Decoded kError payload.
struct ErrorInfo {
  ErrCode code = ErrCode::kMalformed;
  int64_t retry_after_ms = 0;
  std::string message;
};

// Reusable frame buffer: encoders append whole frames, the I/O layer writes
// and clears it. Capacity survives clear(), which is what makes the codec
// allocation-free once warm.
using WireBuf = std::vector<uint8_t>;

// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `n` bytes.
uint32_t crc32(const uint8_t* p, std::size_t n);

// --- Encoders: append one complete frame (header + payload) to `out`. ----
void encode_observe(WireBuf& out, uint64_t session_id, uint64_t request_id,
                    const data::Batch& batch);
void encode_observe_ok(WireBuf& out, uint64_t session_id, uint64_t request_id,
                       int64_t queue_depth);
void encode_predict(WireBuf& out, uint64_t session_id, uint64_t request_id,
                    const std::vector<data::ImageKey>& keys);
void encode_predict_result(WireBuf& out, uint64_t session_id,
                           uint64_t request_id,
                           const std::vector<int64_t>& preds);
void encode_predict_batch(WireBuf& out, uint64_t session_id,
                          uint64_t request_id,
                          const std::vector<std::vector<data::ImageKey>>& pages);
void encode_predict_batch_result(
    WireBuf& out, uint64_t session_id, uint64_t request_id,
    const std::vector<std::vector<int64_t>>& pages);
// Empty-payload control frames (FLUSH / STATS / SHUTDOWN and their acks).
void encode_control(WireBuf& out, MsgType type, uint64_t session_id,
                    uint64_t request_id);
// kStatsResult: payload is the JSON snapshot verbatim.
void encode_stats_result(WireBuf& out, uint64_t request_id,
                         const std::string& json);
void encode_error(WireBuf& out, uint64_t session_id, uint64_t request_id,
                  ErrCode code, int64_t retry_after_ms,
                  const std::string& message);

// --- Decoders. -----------------------------------------------------------
// Reads a header from `p` (needs n >= kHeaderBytes; returns false
// otherwise). Does NOT validate magic/version — header_error does, so the
// server can answer a bad-version frame instead of dropping it.
bool read_header(const uint8_t* p, std::size_t n, FrameHeader& h);

// Structural validation of a parsed header against a payload ceiling.
// Returns 0 when acceptable, else the ErrCode to reply with. A bad magic is
// unrecoverable (the stream cannot be re-synchronised) and maps to
// kMalformed; callers should close the connection after replying.
ErrCode header_error(const FrameHeader& h, uint32_t max_payload);
inline constexpr ErrCode kHeaderOk = static_cast<ErrCode>(0);

// Payload decoders: `p/n` is the payload only (header already consumed).
// Return false on malformed input; outputs are resized, reusing capacity.
bool decode_observe(const uint8_t* p, std::size_t n, data::Batch& out);
bool decode_observe_ok(const uint8_t* p, std::size_t n, int64_t& queue_depth);
bool decode_predict(const uint8_t* p, std::size_t n,
                    std::vector<data::ImageKey>& out);
bool decode_predict_result(const uint8_t* p, std::size_t n,
                           std::vector<int64_t>& out);
bool decode_predict_batch(const uint8_t* p, std::size_t n,
                          std::vector<std::vector<data::ImageKey>>& pages);
bool decode_predict_batch_result(const uint8_t* p, std::size_t n,
                                 std::vector<std::vector<int64_t>>& pages);
bool decode_error(const uint8_t* p, std::size_t n, ErrorInfo& out);

const char* msg_type_name(MsgType t);
const char* err_code_name(ErrCode c);

}  // namespace cham::net
