// Socket front-end for the serving runtime.
//
// NetServer turns the in-process SessionManager into a network service: it
// listens on a Unix-domain socket (or TCP behind the same abstraction),
// decodes protocol frames (net/protocol.h) on a poll-driven I/O thread, and
// stages each request into the EXISTING serving pipeline — submit_observe /
// submit_predict — so predicts arriving on different connections coalesce
// in the same BatchPlanner plans as in-process traffic. Nothing about the
// execution path is network-specific: the wire layer is a request source
// and a completion sink, and every result bit matches the same schedule
// submitted in-process (bench_net gates this end to end).
//
// Threading model (three kinds of threads, one lock each):
//
//   I/O thread      Owns every socket. poll()-driven: accepts connections,
//                   reads and parses frames, submits decoded requests to
//                   the SessionManager (admission is non-blocking by
//                   design: a full shard queue REJECTS, and the typed
//                   BACKPRESSURE error relays retry_after_ms to the remote
//                   caller), writes queued reply frames. Never blocks on
//                   anything but poll(); all sockets are non-blocking.
//
//   Responders      One per connection. The completion scatter: pops that
//                   connection's pending predicts in submission order,
//                   blocks on each future, encodes the reply and hands it
//                   to the connection's bounded outbox. Per-connection
//                   ordering therefore holds by construction: predict
//                   replies leave in request_id submission order (acks and
//                   errors may overtake them — clients match on
//                   request_id). FLUSH rides the same queue so it is
//                   ordered behind the predicts that precede it.
//
//   Pump            Only when the manager runs ServeMode::kDeterministic
//                   (no shard workers): a thread that calls mgr.drain()
//                   whenever the I/O thread has submitted work, standing in
//                   for the caller-driven dispatch the deterministic mode
//                   expects. In kThreaded mode the shard workers dispatch
//                   and the pump is not started. The pump may race a
//                   responder's mgr.flush() (whose first step is drain()):
//                   the SessionManager serialises deterministic-mode
//                   dispatch internally (det_dispatch_mu_), so the two
//                   drains take turns rather than interleaving pops of one
//                   session's queue.
//
// Locks: each connection has one mutex guarding its outbox + pending queue
// (critical sections are pointer moves only — the syscall-in-net-lock lint
// rule rejects any blocking syscall inside the begin/end(net_mu) marker
// regions); stats_mu_ guards the NetStats block. Neither is ever held
// across a syscall or a future wait.
//
// Backpressure, both directions:
//   inbound   admission rejections become BACKPRESSURE error frames
//             carrying the manager's EWMA retry_after_ms hint;
//   outbound  each connection's outbox is byte-bounded. A responder with a
//             full outbox waits (flow control, not failure); the I/O thread
//             PAUSES READING from a connection whose outbox crosses half
//             the bound — a client that stops reading replies stops being
//             served, instead of growing the server without bound.
//
// Shutdown (stop(), the destructor, or a SHUTDOWN frame) is graceful:
// accept stops, every already-admitted request completes and its reply is
// flushed, then sockets close. Requests arriving DURING the drain get
// SHUTTING_DOWN errors. A connection that will not read its replies is
// force-closed after drain_timeout_ms.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/net_stats.h"
#include "net/protocol.h"
#include "serve/session_manager.h"
#include "util/sync.h"

namespace cham::net {

struct NetConfig {
  Transport transport = Transport::kUnix;
  std::string unix_path = "/tmp/cham_net.sock";
  uint16_t tcp_port = 0;
  // Reject any frame whose payload_len exceeds this (typed OVERSIZED error;
  // the payload is discarded from the stream, the connection survives).
  uint32_t max_payload_bytes = kDefaultMaxPayload;
  // Per-connection outbox bound, in bytes. Responders block for space;
  // reading from the connection pauses above half of this.
  int64_t outbox_limit_bytes = int64_t{1} << 20;
  int listen_backlog = 64;
  // Graceful-shutdown deadline: connections whose replies cannot be flushed
  // (client stopped reading) are force-closed after this many ms.
  int64_t drain_timeout_ms = 5000;
  // Test hook: when > 0, SO_SNDBUF is shrunk to this on accepted sockets so
  // reply writes go partial (exercises the short-write resume path).
  int sndbuf_bytes = 0;
};

class NetServer {
 public:
  // Binds, listens and starts the I/O (and, for deterministic managers,
  // pump) threads. Throws util::CheckError when the socket cannot be set
  // up. The manager must outlive the server.
  NetServer(serve::SessionManager& mgr, NetConfig cfg);
  ~NetServer();  // stop()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Graceful shutdown: stop accepting, drain every admitted request, flush
  // replies, close sockets, join all threads. Idempotent; safe to call
  // while a remote SHUTDOWN frame is doing the same thing.
  void stop();

  // False once the server has shut down (stop() or a SHUTDOWN frame).
  bool running() const;

  // Resolved TCP port (ephemeral binds resolve at construction); 0 for
  // Unix-domain servers.
  uint16_t port() const { return port_; }
  const NetConfig& config() const { return cfg_; }

  NetStats stats() const CHAM_EXCLUDES(stats_mu_);

 private:
  // One predict (or ordered control) awaiting completion: the unit of the
  // responder queue. PREDICT carries one future; PREDICT_BATCH one per
  // page; FLUSH carries none and executes mgr_.flush() in queue order.
  struct Pending {
    MsgType type = MsgType::kPredict;
    uint64_t session_id = 0;
    uint64_t request_id = 0;
    std::vector<std::future<std::vector<int64_t>>> futures;
    // A partially-admitted PREDICT_BATCH: the I/O thread already replied
    // BACKPRESSURE for the whole request, but the pages that WERE admitted
    // will execute — their futures must still be consumed, silently.
    bool discard = false;
  };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;

    // --- I/O-thread-owned (no lock): read/write cursors. ---
    std::vector<uint8_t> rdbuf;     // accumulated unparsed bytes
    std::size_t rd_off = 0;         // parse cursor into rdbuf
    std::size_t discard_left = 0;   // oversized payload being skipped
    WireBuf wire;                   // frame bytes mid-write to the socket
    std::size_t wire_off = 0;
    bool paused = false;            // POLLIN suppressed (outbox pressure)
    bool want_close = false;        // close once outbox + wire are flushed

    // --- Shared with the responder (guarded by mu). ---
    util::Mutex mu;
    util::CondVar cv_space;  // outbox has room again / closed
    util::CondVar cv_work;   // pending non-empty / stopping
    std::deque<WireBuf> outbox CHAM_GUARDED_BY(mu);
    int64_t outbox_bytes CHAM_GUARDED_BY(mu) = 0;
    std::deque<Pending> pending CHAM_GUARDED_BY(mu);
    bool closed CHAM_GUARDED_BY(mu) = false;          // fd is gone
    bool stop_responder CHAM_GUARDED_BY(mu) = false;  // finish queue, exit
    bool busy CHAM_GUARDED_BY(mu) = false;  // responder mid-item (drain gate)

    std::thread responder;
    std::atomic<bool> responder_done{false};  // last store before exit
  };

  void io_loop();
  void pump_loop();
  void responder_loop(std::shared_ptr<Connection> conn);

  void accept_ready();
  // Reads and parses; returns false when the connection must close.
  bool read_ready(Connection& c);
  // Parses every complete frame in c.rdbuf; false => close connection.
  bool parse_frames(Connection& c);
  // Dispatches one decoded frame. False => close connection (unsyncable).
  bool handle_frame(Connection& c, const FrameHeader& h, const uint8_t* payload);
  // Moves outbox frames into the wire buffer and writes; false => close.
  bool flush_writes(Connection& c);
  // Queues an encoded frame from the I/O thread (never blocks; engages
  // read-pause flow control instead).
  void enqueue_from_io(Connection& c, WireBuf frame);
  // Queues from a responder: waits for outbox space; false if closed.
  bool enqueue_from_responder(Connection& c, WireBuf frame);
  void close_connection(Connection& c);
  void wake_io();
  void signal_pump();
  std::string build_stats_json();

  serve::SessionManager& mgr_;
  NetConfig cfg_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int wake_rd_ = -1;  // self-pipe: anyone -> I/O thread
  int wake_wr_ = -1;

  // I/O-thread-owned decode scratch: capacity reused across frames so the
  // steady-state parse path allocates nothing.
  data::Batch obs_batch_;
  std::vector<data::ImageKey> keys_;
  std::vector<std::vector<data::ImageKey>> pages_;

  std::vector<std::shared_ptr<Connection>> conns_;  // I/O thread only
  std::vector<std::shared_ptr<Connection>> dead_;   // awaiting responder join
  uint64_t next_conn_id_ = 1;

  std::thread io_thread_;
  std::thread pump_thread_;

  // Pump hand-off (deterministic managers only).
  util::Mutex pump_mu_;
  util::CondVar pump_cv_;
  bool pump_work_ CHAM_GUARDED_BY(pump_mu_) = false;
  bool pump_stop_ CHAM_GUARDED_BY(pump_mu_) = false;

  // stop() may be called concurrently with a remote SHUTDOWN frame and from
  // the destructor; joins happen exactly once under this mutex.
  util::Mutex lifecycle_mu_;
  bool joined_ CHAM_GUARDED_BY(lifecycle_mu_) = false;

  // Shutdown request flag. Relaxed: every consumer re-checks under a mutex
  // or via the self-pipe wakeup that follows the store (memory-ordering
  // policy case 1, util/sync.h).
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> io_exited_{false};

  mutable util::Mutex stats_mu_;
  NetStats stats_ CHAM_GUARDED_BY(stats_mu_);
};

}  // namespace cham::net
