// Socket front-end counters, emitted beside ServeStats.
//
// ServeStats describes what the serving runtime does with admitted work;
// NetStats describes the wire in front of it — connections, frame and byte
// traffic by direction, protocol errors answered with typed frames, and the
// flow-control behaviour of the bounded per-connection write queues.
//
// Deliberately plain (non-atomic) fields, same policy as ServeStats: every
// instance is either a returned snapshot (thread-local) or lives behind
// NetServer's stats mutex (CHAM_GUARDED_BY(stats_mu_)); counters behind a
// mutex need no atomics (memory-ordering policy, util/sync.h).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/json.h"

namespace cham::net {

struct NetStats {
  // Connections.
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t connections_high_water = 0;

  // Frame traffic (counts complete protocol frames, both directions).
  int64_t frames_in = 0;
  int64_t frames_out = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;

  // Requests decoded and handed to the serving runtime.
  int64_t observes_in = 0;
  int64_t predicts_in = 0;       // PREDICT frames + PREDICT_BATCH pages
  int64_t predict_batches_in = 0;
  int64_t flushes_in = 0;
  int64_t stats_in = 0;
  int64_t shutdowns_in = 0;

  // Replies.
  int64_t predict_replies = 0;
  int64_t observe_acks = 0;

  // Typed error replies, by cause.
  int64_t err_backpressure = 0;  // admission rejected; retry_after_ms relayed
  int64_t err_malformed = 0;     // bad magic or undecodable payload
  int64_t err_bad_version = 0;
  int64_t err_bad_crc = 0;
  int64_t err_oversized = 0;
  int64_t err_dispatch = 0;      // learner threw; exception relayed as ERROR
  int64_t err_shutting_down = 0;
  int64_t err_unknown_type = 0;  // well-framed request with an unknown type

  // Flow control on the bounded write queues: how often a connection's
  // reader was paused because its outbox hit the byte bound, and the
  // fullest any outbox ever got.
  int64_t write_stalls = 0;
  int64_t outbox_high_water_bytes = 0;

  void note_outbox_bytes(int64_t bytes) {
    outbox_high_water_bytes = std::max(outbox_high_water_bytes, bytes);
  }

  std::string to_json() const {
    util::JsonWriter j;
    j.field("connections_accepted", connections_accepted);
    j.field("connections_closed", connections_closed);
    j.field("connections_high_water", connections_high_water);
    j.field("frames_in", frames_in);
    j.field("frames_out", frames_out);
    j.field("bytes_in", bytes_in);
    j.field("bytes_out", bytes_out);
    j.field("observes_in", observes_in);
    j.field("predicts_in", predicts_in);
    j.field("predict_batches_in", predict_batches_in);
    j.field("flushes_in", flushes_in);
    j.field("stats_in", stats_in);
    j.field("shutdowns_in", shutdowns_in);
    j.field("predict_replies", predict_replies);
    j.field("observe_acks", observe_acks);
    j.field("err_backpressure", err_backpressure);
    j.field("err_malformed", err_malformed);
    j.field("err_bad_version", err_bad_version);
    j.field("err_bad_crc", err_bad_crc);
    j.field("err_oversized", err_oversized);
    j.field("err_dispatch", err_dispatch);
    j.field("err_shutting_down", err_shutting_down);
    j.field("err_unknown_type", err_unknown_type);
    j.field("write_stalls", write_stalls);
    j.field("outbox_high_water_bytes", outbox_high_water_bytes);
    return j.str();
  }
};

}  // namespace cham::net
