#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <utility>

#include "util/check.h"
#include "util/json.h"

namespace cham::net {
namespace {

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  CHAM_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  CHAM_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "fcntl(F_SETFL, O_NONBLOCK) failed");
}

}  // namespace

NetServer::NetServer(serve::SessionManager& mgr, NetConfig cfg)
    : mgr_(mgr), cfg_(std::move(cfg)) {
  if (cfg_.transport == Transport::kUnix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CHAM_CHECK(listen_fd_ >= 0, "socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CHAM_CHECK(cfg_.unix_path.size() < sizeof(addr.sun_path),
               "unix socket path too long: " + cfg_.unix_path);
    ::strncpy(addr.sun_path, cfg_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(cfg_.unix_path.c_str());
    CHAM_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind(" + cfg_.unix_path + ") failed: " + ::strerror(errno));
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    CHAM_CHECK(listen_fd_ >= 0, "socket(AF_INET) failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.tcp_port);
    CHAM_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind(127.0.0.1:" + std::to_string(cfg_.tcp_port) +
                   ") failed: " + ::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    CHAM_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                             &len) == 0,
               "getsockname failed");
    port_ = ntohs(bound.sin_port);
  }
  CHAM_CHECK(::listen(listen_fd_, cfg_.listen_backlog) == 0,
             std::string("listen failed: ") + ::strerror(errno));
  set_nonblocking(listen_fd_);

  int pipefd[2];
  CHAM_CHECK(::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) == 0, "pipe2 failed");
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];

  io_thread_ = std::thread([this] { io_loop(); });
  if (mgr_.config().mode == serve::ServeMode::kDeterministic) {
    pump_thread_ = std::thread([this] { pump_loop(); });
  }
}

NetServer::~NetServer() { stop(); }

void NetServer::stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  wake_io();
  util::MutexLock lock(lifecycle_mu_);
  if (joined_) return;
  joined_ = true;
  // Join order matters: the I/O thread's drain waits on responders, which
  // wait on futures the pump fulfils — the pump must outlive the I/O join.
  if (io_thread_.joinable()) io_thread_.join();
  if (pump_thread_.joinable()) {
    {
      util::MutexLock plock(pump_mu_);
      pump_stop_ = true;
    }
    pump_cv_.notify_all();
    pump_thread_.join();
  }
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
  if (cfg_.transport == Transport::kUnix) ::unlink(cfg_.unix_path.c_str());
}

bool NetServer::running() const {
  return !io_exited_.load(std::memory_order_relaxed);
}

NetStats NetServer::stats() const {
  util::MutexLock lock(stats_mu_);
  return stats_;
}

void NetServer::wake_io() {
  if (wake_wr_ < 0) return;
  uint8_t b = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &b, 1);
}

void NetServer::signal_pump() {
  if (!pump_thread_.joinable()) return;
  {
    util::MutexLock lock(pump_mu_);
    pump_work_ = true;
  }
  pump_cv_.notify_all();
}

void NetServer::pump_loop() {
  for (;;) {
    {
      util::MutexLock lock(pump_mu_);
      pump_cv_.wait(lock, [this]() CHAM_REQUIRES(pump_mu_) {
        return pump_work_ || pump_stop_;
      });
      if (pump_stop_ && !pump_work_) return;
      pump_work_ = false;
    }
    mgr_.drain();
  }
}

// ---------------------------------------------------------------------------
// Outbound queueing.

void NetServer::enqueue_from_io(Connection& c, WireBuf frame) {
  const int64_t sz = static_cast<int64_t>(frame.size());
  int64_t depth = 0;
  {
    util::MutexLock lock(c.mu);
    // cham-lint: begin(net_mu)
    if (c.closed) return;
    c.outbox.push_back(std::move(frame));
    c.outbox_bytes += sz;
    depth = c.outbox_bytes;
    // cham-lint: end(net_mu)
  }
  {
    util::MutexLock slock(stats_mu_);
    stats_.frames_out += 1;
    stats_.note_outbox_bytes(depth);
  }
  // No wake_io(): only the I/O thread calls this, and it flushes writable
  // connections on the same iteration.
}

bool NetServer::enqueue_from_responder(Connection& c, WireBuf frame) {
  const int64_t sz = static_cast<int64_t>(frame.size());
  const int64_t limit = cfg_.outbox_limit_bytes;
  int64_t depth = 0;
  {
    util::MutexLock lock(c.mu);
    // cham-lint: begin(net_mu)
    c.cv_space.wait(lock, [&c, sz, limit]() CHAM_REQUIRES(c.mu) {
      return c.closed || c.outbox_bytes + sz <= limit || c.outbox.empty();
    });
    if (c.closed) return false;
    c.outbox.push_back(std::move(frame));
    c.outbox_bytes += sz;
    depth = c.outbox_bytes;
    // cham-lint: end(net_mu)
  }
  {
    util::MutexLock slock(stats_mu_);
    stats_.frames_out += 1;
    stats_.note_outbox_bytes(depth);
  }
  wake_io();
  return true;
}

bool NetServer::flush_writes(Connection& c) {
  for (;;) {
    if (c.wire_off >= c.wire.size()) {
      c.wire.clear();
      c.wire_off = 0;
      bool freed = false;
      {
        util::MutexLock lock(c.mu);
        // cham-lint: begin(net_mu)
        while (!c.outbox.empty() &&
               c.wire.size() < (std::size_t{256} << 10)) {
          WireBuf& f = c.outbox.front();
          c.wire.insert(c.wire.end(), f.begin(), f.end());
          c.outbox_bytes -= static_cast<int64_t>(f.size());
          c.outbox.pop_front();
          freed = true;
        }
        // cham-lint: end(net_mu)
      }
      if (freed) c.cv_space.notify_all();
      if (c.wire.empty()) return true;  // nothing left to write
    }
    while (c.wire_off < c.wire.size()) {
      ssize_t n = ::write(c.fd, c.wire.data() + c.wire_off,
                          c.wire.size() - c.wire_off);
      if (n > 0) {
        c.wire_off += static_cast<std::size_t>(n);
        util::MutexLock slock(stats_mu_);
        stats_.bytes_out += n;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // peer gone
    }
  }
}

// ---------------------------------------------------------------------------
// Inbound parsing + dispatch.

bool NetServer::read_ready(Connection& c) {
  for (;;) {
    // A connection marked for close (unsyncable stream) answers exactly
    // once: stop consuming input, even on a POLLHUP-driven call — the
    // flush path closes once the error reply drains.
    if (c.want_close) return true;
    uint8_t chunk[64 << 10];
    ssize_t n = ::read(c.fd, chunk, sizeof(chunk));
    if (n > 0) {
      {
        util::MutexLock slock(stats_mu_);
        stats_.bytes_in += n;
      }
      c.rdbuf.insert(c.rdbuf.end(), chunk, chunk + n);
      if (!parse_frames(c)) return false;
      if (c.want_close) return true;  // error replied; drop trailing bytes
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return true;
      continue;  // more may be buffered in the kernel
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

bool NetServer::parse_frames(Connection& c) {
  if (c.want_close) return true;  // error reply already queued; one only
  for (;;) {
    // Finish skipping an oversized payload already rejected.
    if (c.discard_left > 0) {
      std::size_t avail = c.rdbuf.size() - c.rd_off;
      std::size_t take = std::min(avail, c.discard_left);
      c.rd_off += take;
      c.discard_left -= take;
      if (c.discard_left > 0) break;  // need more bytes
    }
    std::size_t avail = c.rdbuf.size() - c.rd_off;
    if (avail < kHeaderBytes) break;
    FrameHeader h;
    read_header(c.rdbuf.data() + c.rd_off, avail, h);
    ErrCode err = header_error(h, cfg_.max_payload_bytes);
    if (err == ErrCode::kMalformed || err == ErrCode::kBadVersion) {
      // The stream cannot be re-synchronised (bad magic) or the header
      // layout itself is suspect (unknown version): reply, then close once
      // the reply drains.
      WireBuf reply;
      encode_error(reply, h.session_id, h.request_id, err, 0,
                   err == ErrCode::kBadVersion ? "unsupported wire version"
                                               : "bad frame magic");
      enqueue_from_io(c, std::move(reply));
      {
        util::MutexLock slock(stats_mu_);
        if (err == ErrCode::kBadVersion) {
          stats_.err_bad_version += 1;
        } else {
          stats_.err_malformed += 1;
        }
      }
      c.want_close = true;
      return true;  // stop parsing; flush path closes after the reply
    }
    if (err == ErrCode::kOversized) {
      WireBuf reply;
      encode_error(reply, h.session_id, h.request_id, err, 0,
                   "payload exceeds server limit");
      enqueue_from_io(c, std::move(reply));
      {
        util::MutexLock slock(stats_mu_);
        stats_.err_oversized += 1;
      }
      c.rd_off += kHeaderBytes;
      c.discard_left = h.payload_len;  // skip without buffering
      continue;
    }
    if (avail < kHeaderBytes + h.payload_len) break;  // partial frame
    const uint8_t* payload = c.rdbuf.data() + c.rd_off + kHeaderBytes;
    c.rd_off += kHeaderBytes + h.payload_len;
    {
      util::MutexLock slock(stats_mu_);
      stats_.frames_in += 1;
    }
    if (h.payload_len > 0 && crc32(payload, h.payload_len) != h.payload_crc) {
      WireBuf reply;
      encode_error(reply, h.session_id, h.request_id, ErrCode::kBadCrc, 0,
                   "payload crc mismatch");
      enqueue_from_io(c, std::move(reply));
      util::MutexLock slock(stats_mu_);
      stats_.err_bad_crc += 1;
      continue;  // framing is intact; skip just this frame
    }
    if (!handle_frame(c, h, payload)) return false;
    if (c.want_close) return true;
  }
  // Compact the consumed prefix once it dominates the buffer.
  if (c.rd_off == c.rdbuf.size()) {
    c.rdbuf.clear();
    c.rd_off = 0;
  } else if (c.rd_off > (std::size_t{1} << 20)) {
    c.rdbuf.erase(c.rdbuf.begin(),
                  c.rdbuf.begin() + static_cast<std::ptrdiff_t>(c.rd_off));
    c.rd_off = 0;
  }
  return true;
}

bool NetServer::handle_frame(Connection& c, const FrameHeader& h,
                             const uint8_t* payload) {
  const bool draining = stop_requested_.load(std::memory_order_relaxed);
  WireBuf reply;

  if (h.type == MsgType::kShutdown) {
    {
      util::MutexLock slock(stats_mu_);
      stats_.shutdowns_in += 1;
    }
    encode_control(reply, MsgType::kShutdownOk, h.session_id, h.request_id);
    enqueue_from_io(c, std::move(reply));
    stop_requested_.store(true, std::memory_order_relaxed);
    return true;  // the I/O loop notices and begins the drain
  }
  if (draining) {
    encode_error(reply, h.session_id, h.request_id, ErrCode::kShuttingDown, 0,
                 "server is draining");
    enqueue_from_io(c, std::move(reply));
    util::MutexLock slock(stats_mu_);
    stats_.err_shutting_down += 1;
    return true;
  }

  switch (h.type) {
    case MsgType::kObserve: {
      if (!decode_observe(payload, h.payload_len, obs_batch_)) {
        encode_error(reply, h.session_id, h.request_id, ErrCode::kMalformed, 0,
                     "undecodable OBSERVE payload");
        enqueue_from_io(c, std::move(reply));
        util::MutexLock slock(stats_mu_);
        stats_.err_malformed += 1;
        return true;
      }
      serve::Admission adm = mgr_.submit_observe(h.session_id, obs_batch_);
      if (adm.accepted) {
        encode_observe_ok(reply, h.session_id, h.request_id, adm.queue_depth);
        enqueue_from_io(c, std::move(reply));
        signal_pump();
        util::MutexLock slock(stats_mu_);
        stats_.observes_in += 1;
        stats_.observe_acks += 1;
      } else {
        encode_error(reply, h.session_id, h.request_id, ErrCode::kBackpressure,
                     adm.retry_after_ms, "observe queue full");
        enqueue_from_io(c, std::move(reply));
        util::MutexLock slock(stats_mu_);
        stats_.observes_in += 1;
        stats_.err_backpressure += 1;
      }
      return true;
    }
    case MsgType::kPredict: {
      if (!decode_predict(payload, h.payload_len, keys_)) {
        encode_error(reply, h.session_id, h.request_id, ErrCode::kMalformed, 0,
                     "undecodable PREDICT payload");
        enqueue_from_io(c, std::move(reply));
        util::MutexLock slock(stats_mu_);
        stats_.err_malformed += 1;
        return true;
      }
      Pending item;
      item.type = MsgType::kPredict;
      item.session_id = h.session_id;
      item.request_id = h.request_id;
      item.futures.resize(1);
      serve::Admission adm =
          mgr_.submit_predict(h.session_id, keys_, &item.futures[0]);
      if (!adm.accepted) {
        encode_error(reply, h.session_id, h.request_id, ErrCode::kBackpressure,
                     adm.retry_after_ms, "predict queue full");
        enqueue_from_io(c, std::move(reply));
        util::MutexLock slock(stats_mu_);
        stats_.predicts_in += 1;
        stats_.err_backpressure += 1;
        return true;
      }
      {
        util::MutexLock lock(c.mu);
        // cham-lint: begin(net_mu)
        c.pending.push_back(std::move(item));
        // cham-lint: end(net_mu)
      }
      c.cv_work.notify_all();
      signal_pump();
      util::MutexLock slock(stats_mu_);
      stats_.predicts_in += 1;
      return true;
    }
    case MsgType::kPredictBatch: {
      if (!decode_predict_batch(payload, h.payload_len, pages_) ||
          pages_.empty()) {
        encode_error(reply, h.session_id, h.request_id, ErrCode::kMalformed, 0,
                     "undecodable PREDICT_BATCH payload");
        enqueue_from_io(c, std::move(reply));
        util::MutexLock slock(stats_mu_);
        stats_.err_malformed += 1;
        return true;
      }
      // Pages submit as pipelined predicts so the BatchPlanner can merge
      // them (with other connections' traffic) into one eval window.
      Pending item;
      item.type = MsgType::kPredictBatch;
      item.session_id = h.session_id;
      item.request_id = h.request_id;
      item.futures.resize(pages_.size());
      serve::Admission adm;
      std::size_t admitted = 0;
      for (; admitted < pages_.size(); ++admitted) {
        adm = mgr_.submit_predict(h.session_id, pages_[admitted],
                                  &item.futures[admitted]);
        if (!adm.accepted) break;
      }
      if (admitted < pages_.size()) {
        // Not atomic under backpressure: the admitted prefix executes (its
        // results are discarded — predicts are read-only w.r.t. model
        // state), the client retries the whole request.
        encode_error(reply, h.session_id, h.request_id, ErrCode::kBackpressure,
                     adm.retry_after_ms, "predict queue full (partial batch)");
        enqueue_from_io(c, std::move(reply));
        item.futures.resize(admitted);
        item.discard = true;
        {
          util::MutexLock slock(stats_mu_);
          stats_.predict_batches_in += 1;
          stats_.predicts_in += static_cast<int64_t>(admitted);
          stats_.err_backpressure += 1;
        }
        if (admitted == 0) return true;  // nothing to consume
      } else {
        util::MutexLock slock(stats_mu_);
        stats_.predict_batches_in += 1;
        stats_.predicts_in += static_cast<int64_t>(pages_.size());
      }
      {
        util::MutexLock lock(c.mu);
        // cham-lint: begin(net_mu)
        c.pending.push_back(std::move(item));
        // cham-lint: end(net_mu)
      }
      c.cv_work.notify_all();
      signal_pump();
      return true;
    }
    case MsgType::kFlush: {
      // Rides the responder queue: ordered behind this connection's
      // already-pending predicts, and mgr_.flush() blocks — never run it on
      // the I/O thread. Safe next to the pump: the manager serialises
      // deterministic-mode dispatch, so the flush's drain and the pump's
      // never interleave.
      Pending item;
      item.type = MsgType::kFlush;
      item.session_id = h.session_id;
      item.request_id = h.request_id;
      {
        util::MutexLock lock(c.mu);
        // cham-lint: begin(net_mu)
        c.pending.push_back(std::move(item));
        // cham-lint: end(net_mu)
      }
      c.cv_work.notify_all();
      util::MutexLock slock(stats_mu_);
      stats_.flushes_in += 1;
      return true;
    }
    case MsgType::kStats: {
      {
        util::MutexLock slock(stats_mu_);
        stats_.stats_in += 1;
      }
      encode_stats_result(reply, h.request_id, build_stats_json());
      enqueue_from_io(c, std::move(reply));
      return true;
    }
    default: {
      encode_error(reply, h.session_id, h.request_id, ErrCode::kUnknownType, 0,
                   "unknown request type");
      enqueue_from_io(c, std::move(reply));
      util::MutexLock slock(stats_mu_);
      stats_.err_unknown_type += 1;
      return true;
    }
  }
}

std::string NetServer::build_stats_json() {
  serve::ServeStats serve_stats = mgr_.stats();
  NetStats net_stats = stats();
  util::JsonWriter j;
  j.raw("serve", serve_stats.to_json());
  j.raw("net", net_stats.to_json());
  return j.str();
}

// ---------------------------------------------------------------------------
// Completion scatter: one responder per connection.

void NetServer::responder_loop(std::shared_ptr<Connection> conn) {
  Connection& c = *conn;
  WireBuf frame;
  std::vector<std::vector<int64_t>> results;
  for (;;) {
    Pending item;
    {
      util::MutexLock lock(c.mu);
      // cham-lint: begin(net_mu)
      c.cv_work.wait(lock, [&c]() CHAM_REQUIRES(c.mu) {
        return c.stop_responder || !c.pending.empty();
      });
      if (c.pending.empty()) break;  // stop_responder && drained
      item = std::move(c.pending.front());
      c.pending.pop_front();
      c.busy = true;
      // cham-lint: end(net_mu)
    }

    frame.clear();
    if (item.type == MsgType::kFlush) {
      mgr_.flush();
      encode_control(frame, MsgType::kFlushOk, item.session_id,
                     item.request_id);
      enqueue_from_responder(c, std::move(frame));
      frame = WireBuf();
    } else {
      // Wait the pages in submission order; per-connection request_id
      // ordering of predict replies falls out of the queue being FIFO.
      results.resize(item.futures.size());
      bool failed = false;
      std::string what;
      for (std::size_t i = 0; i < item.futures.size(); ++i) {
        try {
          results[i] = item.futures[i].get();
        } catch (const std::exception& e) {
          failed = true;
          what = e.what();
        }
      }
      if (item.discard) {
        // Reply (a BACKPRESSURE error) already went out on admission.
      } else if (failed) {
        encode_error(frame, item.session_id, item.request_id,
                     ErrCode::kDispatchFailed, 0, what);
        if (enqueue_from_responder(c, std::move(frame))) {
          util::MutexLock slock(stats_mu_);
          stats_.err_dispatch += 1;
        }
        frame = WireBuf();
      } else {
        if (item.type == MsgType::kPredict) {
          encode_predict_result(frame, item.session_id, item.request_id,
                                results[0]);
        } else {
          encode_predict_batch_result(frame, item.session_id, item.request_id,
                                      results);
        }
        if (enqueue_from_responder(c, std::move(frame))) {
          util::MutexLock slock(stats_mu_);
          stats_.predict_replies += 1;
        }
        frame = WireBuf();
      }
    }

    {
      util::MutexLock lock(c.mu);
      c.busy = false;
    }
  }
  c.responder_done.store(true, std::memory_order_release);
  wake_io();  // the drain gate in io_loop() may be waiting on this
}

// ---------------------------------------------------------------------------
// The I/O loop.

void NetServer::accept_ready() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient failure; poll retries
    }
    set_nonblocking(fd);
    if (cfg_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &cfg_.sndbuf_bytes,
                   sizeof(cfg_.sndbuf_bytes));
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->responder = std::thread(
        [this, conn] { responder_loop(conn); });
    conns_.push_back(conn);
    util::MutexLock slock(stats_mu_);
    stats_.connections_accepted += 1;
    stats_.connections_high_water =
        std::max(stats_.connections_high_water,
                 static_cast<int64_t>(conns_.size()));
  }
}

void NetServer::close_connection(Connection& c) {
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
  }
  {
    util::MutexLock lock(c.mu);
    c.closed = true;
    c.stop_responder = true;
  }
  c.cv_space.notify_all();
  c.cv_work.notify_all();
  util::MutexLock slock(stats_mu_);
  stats_.connections_closed += 1;
}

void NetServer::io_loop() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Connection>> active;
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};

  for (;;) {
    if (!draining && stop_requested_.load(std::memory_order_relaxed)) {
      draining = true;
      ::close(listen_fd_);
      listen_fd_ = -1;
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(cfg_.drain_timeout_ms);
    }

    // Reap connections whose responder has exited (join is instant then).
    for (std::size_t i = 0; i < dead_.size();) {
      if (dead_[i]->responder_done.load(std::memory_order_acquire)) {
        if (dead_[i]->responder.joinable()) dead_[i]->responder.join();
        dead_.erase(dead_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    if (draining) {
      // Graceful drain: a connection closes once its responder queue is
      // empty AND every queued reply byte reached the socket. Past the
      // deadline, close regardless (the peer stopped reading).
      const bool expired = std::chrono::steady_clock::now() >= drain_deadline;
      for (std::size_t i = 0; i < conns_.size();) {
        Connection& c = *conns_[i];
        bool idle;
        {
          util::MutexLock lock(c.mu);
          // cham-lint: begin(net_mu)
          idle = c.pending.empty() && !c.busy && c.outbox.empty();
          // cham-lint: end(net_mu)
        }
        idle = idle && c.wire_off >= c.wire.size();
        if (idle || expired) {
          close_connection(c);
          dead_.push_back(conns_[i]);
          conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      if (conns_.empty() && dead_.empty()) break;  // fully drained
    }

    // Build the poll set.
    pfds.clear();
    active.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    if (!draining && listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
    }
    for (auto& conn : conns_) {
      Connection& c = *conn;
      bool has_out;
      int64_t depth;
      {
        util::MutexLock lock(c.mu);
        // cham-lint: begin(net_mu)
        has_out = !c.outbox.empty();
        depth = c.outbox_bytes;
        // cham-lint: end(net_mu)
      }
      has_out = has_out || c.wire_off < c.wire.size();
      // Flow control: stop reading from a connection whose replies are not
      // being consumed; resume below half the bound.
      const bool over = depth > cfg_.outbox_limit_bytes / 2;
      if (over && !c.paused) {
        c.paused = true;
        util::MutexLock slock(stats_mu_);
        stats_.write_stalls += 1;
      } else if (!over && c.paused) {
        c.paused = false;
      }
      short events = 0;
      if (!c.paused && !c.want_close) events |= POLLIN;
      if (has_out) events |= POLLOUT;
      if (c.want_close && !has_out) {
        // Error reply flushed; nothing more to say.
        close_connection(c);
        continue;
      }
      pfds.push_back({c.fd, events, 0});
      active.push_back(conn);
    }
    // Connections closed above (want_close) must leave conns_.
    if (active.size() != conns_.size()) {
      for (std::size_t i = 0; i < conns_.size();) {
        if (conns_[i]->fd < 0) {
          dead_.push_back(conns_[i]);
          conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }

    const int timeout_ms = (draining || !dead_.empty()) ? 20 : -1;
    int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) break;  // unrecoverable
    if (rc <= 0) continue;

    std::size_t idx = 0;
    if (pfds[idx].revents & POLLIN) {
      uint8_t buf[256];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    ++idx;
    if (!draining && listen_fd_ >= 0) {
      if (pfds[idx].revents & POLLIN) accept_ready();
      ++idx;
    }
    for (std::size_t i = 0; i < active.size(); ++i, ++idx) {
      Connection& c = *active[i];
      if (c.fd < 0) continue;
      const short rev = pfds[idx].revents;
      bool ok = true;
      if (rev & (POLLIN | POLLHUP | POLLERR)) ok = read_ready(c);
      if (ok && (rev & POLLOUT)) ok = flush_writes(c);
      if (!ok) {
        // Abrupt disconnect (possibly with requests in flight): close now;
        // the responder consumes the remaining futures and exits.
        close_connection(c);
        for (std::size_t k = 0; k < conns_.size(); ++k) {
          if (conns_[k].get() == &c) {
            dead_.push_back(conns_[k]);
            conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(k));
            break;
          }
        }
      }
    }
  }

  // Exit: anything still open closes un-gracefully (drain deadline passed
  // or poll failed), then every responder joins.
  for (auto& conn : conns_) {
    close_connection(*conn);
    dead_.push_back(conn);
  }
  conns_.clear();
  for (auto& conn : dead_) {
    if (conn->responder.joinable()) conn->responder.join();
  }
  dead_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  io_exited_.store(true, std::memory_order_relaxed);
}

}  // namespace cham::net
