// Client side of the wire protocol (net/protocol.h).
//
// One NetClient owns one connection. Two usage styles over the same socket:
//
//   blocking     observe()/predict()/predict_batch()/flush()/stats_json()
//                send one request and wait for its reply;
//   pipelined    send_*() returns immediately with the request_id, await_reply()
//                collects replies — any number of requests may be in flight,
//                which is what lets the server's BatchPlanner merge one
//                client's predicts (and several clients') into shared eval
//                windows.
//
// Replies arrive in whatever order the server emits them (predict results
// in submission order, acks and errors possibly earlier); await_reply(request_id)
// demultiplexes by id, stashing replies to other outstanding requests until
// their own await_reply() asks.
//
// Backpressure is surfaced, not hidden: a rejected request returns a Reply
// whose error carries the server's retry_after_ms hint. The *_admitted
// variants implement the standard loop (sleep the hinted interval, retry) —
// the remote equivalent of the submit-retry-drain loop in-process callers
// write. Observes MUST be sequenced through ack-before-next-send (which the
// blocking variants do) when order matters: a rejected-and-retried observe
// racing a pipelined later one would reorder the session's training stream.
//
// NOT thread-safe: one NetClient per thread (connections are cheap; the
// cross-connection batching lives server-side).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace cham::net {

// A decoded reply frame. Exactly one of the payload members is meaningful,
// chosen by `type`; ok() is false iff the server answered kError.
struct Reply {
  MsgType type = MsgType::kError;
  uint64_t session_id = 0;
  uint64_t request_id = 0;
  ErrorInfo error;                          // kError
  int64_t queue_depth = 0;                  // kObserveOk
  std::vector<int64_t> preds;               // kPredictResult
  std::vector<std::vector<int64_t>> pages;  // kPredictBatchResult
  std::string json;                         // kStatsResult

  bool ok() const { return type != MsgType::kError; }
  bool backpressured() const {
    return type == MsgType::kError && error.code == ErrCode::kBackpressure;
  }
};

struct ClientOptions {
  Transport transport = Transport::kUnix;
  std::string unix_path = "/tmp/cham_net.sock";
  uint16_t tcp_port = 0;  // kTcp: connect to 127.0.0.1:tcp_port
  // Reply frames announcing a larger payload_len are treated as a protocol
  // violation (util::CheckError) BEFORE any buffer is sized to them — the
  // header field alone must not be able to make the client allocate ~4 GiB.
  // Mirrors the server's default inbound bound.
  uint32_t max_payload_bytes = kDefaultMaxPayload;
};

class NetClient {
 public:
  // Connects (blocking socket). Throws util::CheckError on failure.
  explicit NetClient(ClientOptions opts);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // --- Pipelined async: send now, collect later. -------------------------
  uint64_t send_observe(uint64_t session_id, const data::Batch& batch);
  uint64_t send_predict(uint64_t session_id,
                        const std::vector<data::ImageKey>& keys);
  uint64_t send_predict_batch(
      uint64_t session_id,
      const std::vector<std::vector<data::ImageKey>>& pages);
  // FLUSH / STATS / SHUTDOWN (empty-payload requests).
  uint64_t send_control(MsgType type, uint64_t session_id = 0);

  // Blocks until the reply for `request_id` has been read. Throws
  // util::CheckError if the server closes the connection or breaks protocol
  // first (a server ERROR frame is a normal Reply, not an exception).
  Reply await_reply(uint64_t request_id);

  // --- Blocking convenience. ---------------------------------------------
  Reply observe(uint64_t session_id, const data::Batch& batch) {
    return await_reply(send_observe(session_id, batch));
  }
  Reply predict(uint64_t session_id, const std::vector<data::ImageKey>& keys) {
    return await_reply(send_predict(session_id, keys));
  }
  Reply predict_batch(uint64_t session_id,
                      const std::vector<std::vector<data::ImageKey>>& pages) {
    return await_reply(send_predict_batch(session_id, pages));
  }
  Reply flush() { return await_reply(send_control(MsgType::kFlush)); }
  Reply stats_json() { return await_reply(send_control(MsgType::kStats)); }
  Reply shutdown_server() { return await_reply(send_control(MsgType::kShutdown)); }

  // --- Retry-on-backpressure loops (sleep the hinted interval). ----------
  // Give up (returning the last backpressure Reply) after max_tries.
  Reply observe_admitted(uint64_t session_id, const data::Batch& batch,
                         int max_tries = 1000);
  Reply predict_admitted(uint64_t session_id,
                         const std::vector<data::ImageKey>& keys,
                         int max_tries = 1000);
  Reply predict_batch_admitted(
      uint64_t session_id,
      const std::vector<std::vector<data::ImageKey>>& pages,
      int max_tries = 1000);

  // Test hook: write arbitrary bytes to the socket (malformed-frame and
  // split-write robustness tests drive the server through this).
  void send_raw(const uint8_t* p, std::size_t n);

  int fd() const { return fd_; }

 private:
  uint64_t next_id() { return next_req_++; }
  void flush_send_buf();
  void write_all(const uint8_t* p, std::size_t n);
  // False on orderly EOF before the first header byte (throws on protocol
  // violations or EOF mid-frame).
  bool read_reply(Reply& out);

  int fd_ = -1;
  uint32_t max_payload_bytes_ = kDefaultMaxPayload;
  uint64_t next_req_ = 1;
  WireBuf send_buf_;
  std::vector<uint8_t> recv_buf_;
  std::map<uint64_t, Reply> stash_;  // replies read while waiting for others
};

}  // namespace cham::net
