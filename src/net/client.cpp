#include "net/client.h"

#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "util/check.h"

namespace cham::net {

NetClient::NetClient(ClientOptions opts)
    : max_payload_bytes_(opts.max_payload_bytes) {
  if (opts.transport == Transport::kUnix) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CHAM_CHECK(fd_ >= 0, "socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CHAM_CHECK(opts.unix_path.size() < sizeof(addr.sun_path),
               "unix socket path too long: " + opts.unix_path);
    ::strncpy(addr.sun_path, opts.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    CHAM_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
               "connect(" + opts.unix_path + ") failed: " + ::strerror(errno));
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    CHAM_CHECK(fd_ >= 0, "socket(AF_INET) failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts.tcp_port);
    CHAM_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
               "connect(127.0.0.1:" + std::to_string(opts.tcp_port) +
                   ") failed: " + ::strerror(errno));
  }
}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

void NetClient::write_all(const uint8_t* p, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd_, p + off, n - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    CHAM_CHECK(false, std::string("client write failed: ") + ::strerror(errno));
  }
}

void NetClient::send_raw(const uint8_t* p, std::size_t n) { write_all(p, n); }

void NetClient::flush_send_buf() {
  write_all(send_buf_.data(), send_buf_.size());
  send_buf_.clear();
}

uint64_t NetClient::send_observe(uint64_t session_id, const data::Batch& batch) {
  const uint64_t id = next_id();
  encode_observe(send_buf_, session_id, id, batch);
  flush_send_buf();
  return id;
}

uint64_t NetClient::send_predict(uint64_t session_id,
                                 const std::vector<data::ImageKey>& keys) {
  const uint64_t id = next_id();
  encode_predict(send_buf_, session_id, id, keys);
  flush_send_buf();
  return id;
}

uint64_t NetClient::send_predict_batch(
    uint64_t session_id,
    const std::vector<std::vector<data::ImageKey>>& pages) {
  const uint64_t id = next_id();
  encode_predict_batch(send_buf_, session_id, id, pages);
  flush_send_buf();
  return id;
}

uint64_t NetClient::send_control(MsgType type, uint64_t session_id) {
  const uint64_t id = next_id();
  encode_control(send_buf_, type, session_id, id);
  flush_send_buf();
  return id;
}

bool NetClient::read_reply(Reply& out) {
  uint8_t hdr[kHeaderBytes];
  std::size_t off = 0;
  while (off < kHeaderBytes) {
    ssize_t r = ::read(fd_, hdr + off, kHeaderBytes - off);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0 && off == 0) return false;  // clean EOF between frames
    CHAM_CHECK(false, std::string("connection lost mid-reply (") +
                          (r == 0 ? "eof" : ::strerror(errno)) + ")");
  }
  FrameHeader h;
  CHAM_CHECK(read_header(hdr, kHeaderBytes, h), "short reply header");
  CHAM_CHECK(h.magic == kWireMagic && h.version == kWireVersion,
             "reply frame failed validation (magic/version)");
  // Bound the allocation the header can demand before trusting payload_len.
  CHAM_CHECK(h.payload_len <= max_payload_bytes_,
             "reply payload_len " + std::to_string(h.payload_len) +
                 " exceeds client limit " + std::to_string(max_payload_bytes_));
  recv_buf_.resize(h.payload_len);
  off = 0;
  while (off < h.payload_len) {
    ssize_t r = ::read(fd_, recv_buf_.data() + off, h.payload_len - off);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    CHAM_CHECK(false, "connection lost mid-reply payload");
  }
  if (h.payload_len > 0) {
    CHAM_CHECK(crc32(recv_buf_.data(), h.payload_len) == h.payload_crc,
               "reply payload crc mismatch");
  }

  out.type = h.type;
  out.session_id = h.session_id;
  out.request_id = h.request_id;
  out.queue_depth = 0;
  out.preds.clear();
  out.pages.clear();
  out.json.clear();
  switch (h.type) {
    case MsgType::kObserveOk:
      CHAM_CHECK(
          decode_observe_ok(recv_buf_.data(), h.payload_len, out.queue_depth),
          "bad OBSERVE_OK payload");
      break;
    case MsgType::kPredictResult:
      CHAM_CHECK(
          decode_predict_result(recv_buf_.data(), h.payload_len, out.preds),
          "bad PREDICT_RESULT payload");
      break;
    case MsgType::kPredictBatchResult:
      CHAM_CHECK(decode_predict_batch_result(recv_buf_.data(), h.payload_len,
                                             out.pages),
                 "bad PREDICT_BATCH_RESULT payload");
      break;
    case MsgType::kError:
      CHAM_CHECK(decode_error(recv_buf_.data(), h.payload_len, out.error),
                 "bad ERROR payload");
      break;
    case MsgType::kStatsResult:
      out.json.assign(reinterpret_cast<const char*>(recv_buf_.data()),
                      h.payload_len);
      break;
    case MsgType::kFlushOk:
    case MsgType::kShutdownOk:
      break;  // empty payloads
    default:
      CHAM_CHECK(false, "unexpected reply type " +
                     std::to_string(static_cast<int>(h.type)) + " (" +
                     msg_type_name(h.type) + ")");
  }
  return true;
}

Reply NetClient::await_reply(uint64_t request_id) {
  auto it = stash_.find(request_id);
  if (it != stash_.end()) {
    Reply r = std::move(it->second);
    stash_.erase(it);
    return r;
  }
  for (;;) {
    Reply r;
    CHAM_CHECK(read_reply(r),
               "server closed connection while waiting for request " +
                   std::to_string(request_id));
    if (r.request_id == request_id) return r;
    stash_[r.request_id] = std::move(r);
  }
}

namespace {
void backoff(const Reply& r) {
  const int64_t ms = std::max<int64_t>(1, r.error.retry_after_ms);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}
}  // namespace

Reply NetClient::observe_admitted(uint64_t session_id, const data::Batch& batch,
                                  int max_tries) {
  Reply r;
  for (int t = 0; t < max_tries; ++t) {
    r = observe(session_id, batch);
    if (!r.backpressured()) return r;
    backoff(r);
  }
  return r;
}

Reply NetClient::predict_admitted(uint64_t session_id,
                                  const std::vector<data::ImageKey>& keys,
                                  int max_tries) {
  Reply r;
  for (int t = 0; t < max_tries; ++t) {
    r = predict(session_id, keys);
    if (!r.backpressured()) return r;
    backoff(r);
  }
  return r;
}

Reply NetClient::predict_batch_admitted(
    uint64_t session_id, const std::vector<std::vector<data::ImageKey>>& pages,
    int max_tries) {
  Reply r;
  for (int t = 0; t < max_tries; ++t) {
    r = predict_batch(session_id, pages);
    if (!r.backpressured()) return r;
    backoff(r);
  }
  return r;
}

}  // namespace cham::net
