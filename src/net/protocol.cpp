#include "net/protocol.h"

#include <array>
#include <cstring>

namespace cham::net {
namespace {

// Reflected CRC-32 table (polynomial 0xEDB88320), built once at static
// init; the codec itself is then pure table lookups.
constexpr std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}
constexpr std::array<uint32_t, 256> kCrcTable = make_crc_table();

// --- Little-endian primitive append/read. --------------------------------
void put_u16(WireBuf& b, uint16_t v) {
  b.push_back(static_cast<uint8_t>(v));
  b.push_back(static_cast<uint8_t>(v >> 8));
}
void put_u32(WireBuf& b, uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_u64(WireBuf& b, uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_i32(WireBuf& b, int32_t v) { put_u32(b, static_cast<uint32_t>(v)); }
void put_i64(WireBuf& b, int64_t v) { put_u64(b, static_cast<uint64_t>(v)); }

// Bounds-checked sequential reader over a payload span. All get_* return 0
// past the end and latch fail_; callers check ok() once at the end (and at
// the few points where a length prefix gates a loop).
struct Reader {
  const uint8_t* p;
  std::size_t n;
  std::size_t off = 0;
  bool fail = false;

  bool ok() const { return !fail; }
  bool take(std::size_t k) {
    if (n - off < k) {
      fail = true;
      off = n;
      return false;
    }
    return true;
  }
  uint16_t u16() {
    if (!take(2)) return 0;
    uint16_t v = static_cast<uint16_t>(p[off] | (p[off + 1] << 8));
    off += 2;
    return v;
  }
  uint32_t u32() {
    if (!take(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[off + i]) << (8 * i);
    off += 4;
    return v;
  }
  uint64_t u64() {
    if (!take(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[off + i]) << (8 * i);
    off += 8;
    return v;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
};

// Per-element wire sizes, used to sanity-bound length prefixes before any
// resize: a hostile 0xFFFFFFFF count must fail cleanly, not allocate 64GB.
constexpr std::size_t kKeyBytes = 13;   // 3x i32 + test u8
constexpr std::size_t kLabelBytes = 8;  // i64

// Opens a frame: appends the header with payload_len/crc zeroed, returns
// the header's offset in `out` for close_frame to patch.
std::size_t open_frame(WireBuf& out, MsgType type, uint64_t session_id,
                       uint64_t request_id) {
  const std::size_t header_off = out.size();
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u16(out, static_cast<uint16_t>(type));
  put_u64(out, session_id);
  put_u64(out, request_id);
  put_u32(out, 0);  // payload_len, patched by close_frame
  put_u32(out, 0);  // payload_crc, patched by close_frame
  return header_off;
}

// Closes a frame: computes payload length + CRC over everything appended
// since open_frame and patches them into the header in place.
void close_frame(WireBuf& out, std::size_t header_off) {
  const std::size_t payload_off = header_off + kHeaderBytes;
  const uint32_t len = static_cast<uint32_t>(out.size() - payload_off);
  const uint32_t crc = len > 0 ? crc32(out.data() + payload_off, len) : 0;
  for (int i = 0; i < 4; ++i) {
    out[header_off + 24 + static_cast<std::size_t>(i)] =
        static_cast<uint8_t>(len >> (8 * i));
    out[header_off + 28 + static_cast<std::size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
}

void put_keys(WireBuf& out, const std::vector<data::ImageKey>& keys) {
  put_u32(out, static_cast<uint32_t>(keys.size()));
  for (const auto& k : keys) {
    put_i32(out, k.class_id);
    put_i32(out, k.domain_id);
    put_i32(out, k.instance_id);
    out.push_back(k.test ? 1 : 0);
  }
}

bool get_keys(Reader& r, std::vector<data::ImageKey>& out) {
  const uint32_t n = r.u32();
  if (!r.ok() || (r.n - r.off) < static_cast<std::size_t>(n) * kKeyBytes) {
    return false;
  }
  out.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    data::ImageKey& k = out[i];
    k.class_id = r.i32();
    k.domain_id = r.i32();
    k.instance_id = r.i32();
    if (!r.take(1)) return false;
    k.test = r.p[r.off++] != 0;
  }
  return r.ok();
}

}  // namespace

uint32_t crc32(const uint8_t* p, std::size_t n) {
  uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void encode_observe(WireBuf& out, uint64_t session_id, uint64_t request_id,
                    const data::Batch& batch) {
  const std::size_t h = open_frame(out, MsgType::kObserve, session_id,
                                   request_id);
  put_i64(out, batch.domain);
  put_keys(out, batch.keys);
  put_u32(out, static_cast<uint32_t>(batch.labels.size()));
  for (const int64_t l : batch.labels) put_i64(out, l);
  close_frame(out, h);
}

void encode_observe_ok(WireBuf& out, uint64_t session_id, uint64_t request_id,
                       int64_t queue_depth) {
  const std::size_t h = open_frame(out, MsgType::kObserveOk, session_id,
                                   request_id);
  put_i64(out, queue_depth);
  close_frame(out, h);
}

void encode_predict(WireBuf& out, uint64_t session_id, uint64_t request_id,
                    const std::vector<data::ImageKey>& keys) {
  const std::size_t h = open_frame(out, MsgType::kPredict, session_id,
                                   request_id);
  put_keys(out, keys);
  close_frame(out, h);
}

void encode_predict_result(WireBuf& out, uint64_t session_id,
                           uint64_t request_id,
                           const std::vector<int64_t>& preds) {
  const std::size_t h = open_frame(out, MsgType::kPredictResult, session_id,
                                   request_id);
  put_u32(out, static_cast<uint32_t>(preds.size()));
  for (const int64_t v : preds) put_i64(out, v);
  close_frame(out, h);
}

void encode_predict_batch(
    WireBuf& out, uint64_t session_id, uint64_t request_id,
    const std::vector<std::vector<data::ImageKey>>& pages) {
  const std::size_t h = open_frame(out, MsgType::kPredictBatch, session_id,
                                   request_id);
  put_u32(out, static_cast<uint32_t>(pages.size()));
  for (const auto& page : pages) put_keys(out, page);
  close_frame(out, h);
}

void encode_predict_batch_result(
    WireBuf& out, uint64_t session_id, uint64_t request_id,
    const std::vector<std::vector<int64_t>>& pages) {
  const std::size_t h = open_frame(out, MsgType::kPredictBatchResult,
                                   session_id, request_id);
  put_u32(out, static_cast<uint32_t>(pages.size()));
  for (const auto& page : pages) {
    put_u32(out, static_cast<uint32_t>(page.size()));
    for (const int64_t v : page) put_i64(out, v);
  }
  close_frame(out, h);
}

void encode_control(WireBuf& out, MsgType type, uint64_t session_id,
                    uint64_t request_id) {
  close_frame(out, open_frame(out, type, session_id, request_id));
}

void encode_stats_result(WireBuf& out, uint64_t request_id,
                         const std::string& json) {
  const std::size_t h = open_frame(out, MsgType::kStatsResult, 0, request_id);
  out.insert(out.end(), json.begin(), json.end());
  close_frame(out, h);
}

void encode_error(WireBuf& out, uint64_t session_id, uint64_t request_id,
                  ErrCode code, int64_t retry_after_ms,
                  const std::string& message) {
  const std::size_t h = open_frame(out, MsgType::kError, session_id,
                                   request_id);
  put_u16(out, static_cast<uint16_t>(code));
  put_i64(out, retry_after_ms);
  out.insert(out.end(), message.begin(), message.end());
  close_frame(out, h);
}

bool read_header(const uint8_t* p, std::size_t n, FrameHeader& h) {
  if (n < kHeaderBytes) return false;
  Reader r{p, kHeaderBytes};
  h.magic = r.u32();
  h.version = r.u16();
  h.type = static_cast<MsgType>(r.u16());
  h.session_id = r.u64();
  h.request_id = r.u64();
  h.payload_len = r.u32();
  h.payload_crc = r.u32();
  return r.ok();
}

ErrCode header_error(const FrameHeader& h, uint32_t max_payload) {
  if (h.magic != kWireMagic) return ErrCode::kMalformed;
  if (h.version != kWireVersion) return ErrCode::kBadVersion;
  if (h.payload_len > max_payload) return ErrCode::kOversized;
  return kHeaderOk;
}

bool decode_observe(const uint8_t* p, std::size_t n, data::Batch& out) {
  Reader r{p, n};
  out.domain = r.i64();
  if (!get_keys(r, out.keys)) return false;
  const uint32_t nl = r.u32();
  if (!r.ok() || (r.n - r.off) < static_cast<std::size_t>(nl) * kLabelBytes) {
    return false;
  }
  out.labels.resize(nl);
  for (uint32_t i = 0; i < nl; ++i) out.labels[i] = r.i64();
  return r.ok() && r.off == n;
}

bool decode_observe_ok(const uint8_t* p, std::size_t n, int64_t& queue_depth) {
  Reader r{p, n};
  queue_depth = r.i64();
  return r.ok() && r.off == n;
}

bool decode_predict(const uint8_t* p, std::size_t n,
                    std::vector<data::ImageKey>& out) {
  Reader r{p, n};
  return get_keys(r, out) && r.off == n;
}

bool decode_predict_result(const uint8_t* p, std::size_t n,
                           std::vector<int64_t>& out) {
  Reader r{p, n};
  const uint32_t k = r.u32();
  if (!r.ok() || (r.n - r.off) < static_cast<std::size_t>(k) * kLabelBytes) {
    return false;
  }
  out.resize(k);
  for (uint32_t i = 0; i < k; ++i) out[i] = r.i64();
  return r.ok() && r.off == n;
}

bool decode_predict_batch(const uint8_t* p, std::size_t n,
                          std::vector<std::vector<data::ImageKey>>& pages) {
  Reader r{p, n};
  const uint32_t np = r.u32();
  // A page is at least its 4-byte count; bound before resizing.
  if (!r.ok() || (r.n - r.off) < static_cast<std::size_t>(np) * 4) {
    return false;
  }
  pages.resize(np);
  for (uint32_t i = 0; i < np; ++i) {
    if (!get_keys(r, pages[i])) return false;
  }
  return r.ok() && r.off == n;
}

bool decode_predict_batch_result(const uint8_t* p, std::size_t n,
                                 std::vector<std::vector<int64_t>>& pages) {
  Reader r{p, n};
  const uint32_t np = r.u32();
  if (!r.ok() || (r.n - r.off) < static_cast<std::size_t>(np) * 4) {
    return false;
  }
  pages.resize(np);
  for (uint32_t i = 0; i < np; ++i) {
    const uint32_t k = r.u32();
    if (!r.ok() || (r.n - r.off) < static_cast<std::size_t>(k) * kLabelBytes) {
      return false;
    }
    pages[i].resize(k);
    for (uint32_t j = 0; j < k; ++j) pages[i][j] = r.i64();
  }
  return r.ok() && r.off == n;
}

bool decode_error(const uint8_t* p, std::size_t n, ErrorInfo& out) {
  Reader r{p, n};
  out.code = static_cast<ErrCode>(r.u16());
  out.retry_after_ms = r.i64();
  if (!r.ok()) return false;
  out.message.assign(reinterpret_cast<const char*>(p) + r.off, n - r.off);
  return true;
}

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kObserve: return "OBSERVE";
    case MsgType::kPredict: return "PREDICT";
    case MsgType::kPredictBatch: return "PREDICT_BATCH";
    case MsgType::kFlush: return "FLUSH";
    case MsgType::kStats: return "STATS";
    case MsgType::kShutdown: return "SHUTDOWN";
    case MsgType::kObserveOk: return "OBSERVE_OK";
    case MsgType::kPredictResult: return "PREDICT_RESULT";
    case MsgType::kPredictBatchResult: return "PREDICT_BATCH_RESULT";
    case MsgType::kFlushOk: return "FLUSH_OK";
    case MsgType::kStatsResult: return "STATS_RESULT";
    case MsgType::kShutdownOk: return "SHUTDOWN_OK";
    case MsgType::kError: return "ERROR";
  }
  return "UNKNOWN";
}

const char* err_code_name(ErrCode c) {
  switch (c) {
    case ErrCode::kBackpressure: return "BACKPRESSURE";
    case ErrCode::kMalformed: return "MALFORMED";
    case ErrCode::kOversized: return "OVERSIZED";
    case ErrCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrCode::kDispatchFailed: return "DISPATCH_FAILED";
    case ErrCode::kBadVersion: return "BAD_VERSION";
    case ErrCode::kBadCrc: return "BAD_CRC";
    case ErrCode::kUnknownType: return "UNKNOWN_TYPE";
  }
  return "UNKNOWN";
}

}  // namespace cham::net
