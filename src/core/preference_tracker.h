// User-preference estimation (paper Sec. III-B step 1 and Eq. 2).
//
// Tracks running per-class sample counts n_c. Every `learning_window`
// samples the top-k most frequent classes of the window become the preferred
// set and the allocation factor
//     Delta_k = n_k^rho / (n_k + n_{N-k})^rho            (Eq. 2)
// is recomputed, where n_k is the average window frequency of the preferred
// classes and n_{N-k} the average over the rest. rho in (0, 1] controls how
// aggressively acquisition favours preferred classes; rho = 0 treats all
// classes equally.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/check.h"

namespace cham::core {

class PreferenceTracker {
 public:
  PreferenceTracker(int64_t num_classes, int64_t top_k,
                    int64_t learning_window, float rho)
      : num_classes_(num_classes),
        top_k_(std::min(top_k, num_classes)),
        learning_window_(learning_window),
        rho_(rho),
        window_counts_(static_cast<size_t>(num_classes), 0),
        total_counts_(static_cast<size_t>(num_classes), 0),
        preferred_(static_cast<size_t>(num_classes), false) {}

  // Record one observed label; recalibrates when the window fills.
  void update(int64_t label) {
    ++window_counts_[static_cast<size_t>(label)];
    ++total_counts_[static_cast<size_t>(label)];
    if (++window_seen_ >= learning_window_) recalibrate();
  }

  bool is_preferred(int64_t cls) const {
    return preferred_[static_cast<size_t>(cls)];
  }
  double delta_k() const { return delta_k_; }
  // Per-class allocation weight used in Eq. 4: Delta_k for preferred
  // classes, (1 - Delta_k) for the rest.
  double delta(int64_t cls) const {
    return is_preferred(cls) ? delta_k_ : 1.0 - delta_k_;
  }

  std::vector<int64_t> preferred_classes() const {
    std::vector<int64_t> out;
    for (int64_t c = 0; c < num_classes_; ++c) {
      if (preferred_[static_cast<size_t>(c)]) out.push_back(c);
    }
    return out;
  }

  int64_t recalibrations() const { return recalibrations_; }
  int64_t samples_seen() const { return samples_seen_total_; }
  // Samples recorded in the current (incomplete) learning window. Exposed so
  // the checkpoint round-trip tests can assert mid-window counters survive a
  // save/restore cycle exactly.
  int64_t window_seen() const { return window_seen_; }

  // Full observable-state serialisation (checkpoint / session eviction).
  // Everything that influences future behaviour is included: the mid-window
  // counters matter because an evicted-and-restored session must recalibrate
  // at exactly the same stream position as an uninterrupted one.
  bool save(std::ostream& os) const {
    auto put = [&os](const auto& v) {
      os.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    put(num_classes_);
    put(top_k_);
    put(learning_window_);
    put(rho_);
    for (int64_t c = 0; c < num_classes_; ++c) {
      const auto ci = static_cast<size_t>(c);
      put(window_counts_[ci]);
      put(total_counts_[ci]);
      const uint8_t pref = preferred_[ci] ? 1 : 0;
      put(pref);
    }
    put(window_seen_);
    put(samples_seen_total_);
    put(recalibrations_);
    put(delta_k_);
    return os.good();
  }

  // Restores into a tracker constructed with the SAME configuration; returns
  // false (tracker unspecified) on config mismatch or short read.
  bool load(std::istream& is) {
    auto get = [&is](auto& v) {
      is.read(reinterpret_cast<char*>(&v), sizeof(v));
      return is.good();
    };
    int64_t num_classes = 0, top_k = 0, learning_window = 0;
    float rho = 0;
    if (!get(num_classes) || !get(top_k) || !get(learning_window) ||
        !get(rho)) {
      return false;
    }
    if (num_classes != num_classes_ || top_k != top_k_ ||
        learning_window != learning_window_ || rho != rho_) {
      return false;
    }
    for (int64_t c = 0; c < num_classes_; ++c) {
      const auto ci = static_cast<size_t>(c);
      uint8_t pref = 0;
      if (!get(window_counts_[ci]) || !get(total_counts_[ci]) || !get(pref)) {
        return false;
      }
      preferred_[ci] = pref != 0;
    }
    return get(window_seen_) && get(samples_seen_total_) &&
           get(recalibrations_) && get(delta_k_);
  }

  // Structural audit (Eq. 2 bookkeeping): the Delta_k weight stays a usable
  // probability (clamped to [0.05, 0.95]), the preferred set never contains
  // a class the stream has not revealed, never exceeds top_k, and the
  // window/total counters reconcile with the number of updates recorded.
  util::AuditReport check_invariants() const {
    util::AuditReport report;
    if (!(delta_k_ >= 0.05 && delta_k_ <= 0.95)) {
      report.fail("PreferenceTracker: delta_k " + std::to_string(delta_k_) +
                  " outside [0.05, 0.95]");
    }
    int64_t n_pref = 0, window_sum = 0, total_sum = 0;
    for (int64_t c = 0; c < num_classes_; ++c) {
      const auto ci = static_cast<size_t>(c);
      if (window_counts_[ci] < 0 || total_counts_[ci] < 0) {
        report.fail("PreferenceTracker: negative count for class " +
                    std::to_string(c));
      }
      window_sum += window_counts_[ci];
      total_sum += total_counts_[ci];
      if (preferred_[ci]) {
        ++n_pref;
        if (total_counts_[ci] == 0) {
          report.fail("PreferenceTracker: never-seen class " +
                      std::to_string(c) + " marked preferred");
        }
      }
    }
    if (n_pref > top_k_) {
      report.fail("PreferenceTracker: " + std::to_string(n_pref) +
                  " preferred classes exceed top_k " + std::to_string(top_k_));
    }
    if (window_sum != window_seen_) {
      report.fail("PreferenceTracker: window counts sum " +
                  std::to_string(window_sum) + " != window_seen " +
                  std::to_string(window_seen_));
    }
    if (window_seen_ >= learning_window_) {
      report.fail("PreferenceTracker: window_seen " +
                  std::to_string(window_seen_) +
                  " not reset at learning_window " +
                  std::to_string(learning_window_));
    }
    if (total_sum != samples_seen_total_ + window_seen_) {
      report.fail("PreferenceTracker: total counts sum " +
                  std::to_string(total_sum) +
                  " != recalibrated + in-window samples " +
                  std::to_string(samples_seen_total_ + window_seen_));
    }
    return report;
  }

 private:
  void recalibrate() {
    samples_seen_total_ += window_seen_;
    ++recalibrations_;
    // Rank classes by window frequency; ties broken by class id for
    // determinism. The explicit tie-break makes plain (in-place) sort give
    // the stable-sort order without its temporary buffer: recalibration
    // runs inside the steady-state replay loop and must not allocate.
    order_.resize(static_cast<size_t>(num_classes_));
    for (int64_t c = 0; c < num_classes_; ++c)
      order_[static_cast<size_t>(c)] = c;
    std::sort(order_.begin(), order_.end(), [&](int64_t a, int64_t b) {
      const int64_t wa = window_counts_[static_cast<size_t>(a)];
      const int64_t wb = window_counts_[static_cast<size_t>(b)];
      if (wa != wb) return wa > wb;
      return a < b;
    });
    std::fill(preferred_.begin(), preferred_.end(), false);
    // Only classes actually seen in the window are eligible: a stream that
    // has revealed fewer than top_k classes must not grant never-seen
    // classes the Delta_k allocation weight, and n_k averages over the
    // actually-preferred set, not a padded top_k.
    double pref_sum = 0, other_sum = 0;
    int64_t n_pref = 0;
    for (int64_t i = 0; i < num_classes_; ++i) {
      const int64_t c = order_[static_cast<size_t>(i)];
      const double n = window_counts_[static_cast<size_t>(c)];
      if (i < top_k_ && n > 0) {
        preferred_[static_cast<size_t>(c)] = true;
        pref_sum += n;
        ++n_pref;
      } else {
        other_sum += n;
      }
    }
    const double n_k =
        n_pref > 0 ? pref_sum / static_cast<double>(n_pref) : 0.0;
    const double n_rest =
        num_classes_ > n_pref
            ? other_sum / static_cast<double>(num_classes_ - n_pref)
            : 0.0;
    // Eq. 2. With rho = 0 this is exactly 1 (all classes equally favoured,
    // delta(c) == 1 - delta(c) only when delta_k == 0.5, so clamp below).
    const double denom = n_k + n_rest;
    delta_k_ = denom > 0 ? std::pow(n_k, rho_) / std::pow(denom, rho_) : 0.5;
    // Keep the factor a usable probability weight.
    delta_k_ = std::clamp(delta_k_, 0.05, 0.95);
    std::fill(window_counts_.begin(), window_counts_.end(), int64_t{0});
    window_seen_ = 0;
  }

  int64_t num_classes_, top_k_, learning_window_;
  float rho_;
  std::vector<int64_t> window_counts_, total_counts_;
  std::vector<int64_t> order_;  // recalibrate() ranking scratch
  std::vector<bool> preferred_;
  int64_t window_seen_ = 0;
  int64_t samples_seen_total_ = 0;
  int64_t recalibrations_ = 0;
  double delta_k_ = 0.5;  // neutral until the first window completes
};

}  // namespace cham::core
