#include "core/chameleon.h"

#include "tensor/workspace.h"

namespace cham::core {
namespace {

StSamplingConfig effective_sampling(const ChameleonConfig& cfg) {
  StSamplingConfig s = cfg.st_sampling;
  if (!cfg.use_user_affinity) s.alpha = 0.0f;
  if (!cfg.use_uncertainty) s.beta = 0.0f;
  // Both terms disabled degenerates to uniform selection; Eq. 4 handles the
  // all-zero case by falling back to uniform in ShortTermMemory::update.
  return s;
}

}  // namespace

ChameleonLearner::ChameleonLearner(const LearnerEnv& env,
                                   const ChameleonConfig& cfg, uint64_t seed)
    : HeadLearner(env, seed),
      cfg_(cfg),
      prefs_(env.data_cfg->num_classes, cfg.top_k, cfg.learning_window,
             cfg.rho),
      st_(cfg.st_capacity, effective_sampling(cfg)),
      lt_(cfg.lt_capacity, env.data_cfg->num_classes) {}

// cham-lint: begin(hot_path)
void ChameleonLearner::observe(const data::Batch& batch) {
  ++step_;
  const int64_t bsz = static_cast<int64_t>(batch.keys.size());
  const int64_t latent_sz =
      replay::latent_sample_bytes(env_.latent_shape.numel());

  // [line 3] running per-class statistics.
  for (int64_t label : batch.labels) prefs_.update(label);

  // [line 4] latent extraction for the incoming batch. The cache hands out
  // stable references; the training gather reads the rows in place.
  std::vector<const float*>& train_rows = train_rows_scratch_;
  train_rows.clear();
  for (const auto& key : batch.keys) {
    train_rows.push_back(env_.latents->latent(key).data());
  }
  charge_f(bsz);

  // [lines 5-7] training set: every update "sweeps through the complete
  // short-term memory" — the incoming batch is concatenated with the full
  // ST store, plus an LT minibatch every h batches (iterative mini-batch
  // concatenation scheme). One weight update per batch (Algorithm 1 line 7).
  // ST reads come from on-chip SRAM, LT reads from off-chip DRAM. No row is
  // copied: the batch is a list of row pointers into the latent cache, the
  // ST slab and the LT slots, and the head's first layer packs its GEMM
  // panels straight from those rows (nn::GatherBatch).
  std::vector<int64_t>& train_labels = train_labels_scratch_;
  train_labels.assign(batch.labels.begin(), batch.labels.end());
  for (int64_t i = 0; i < st_.size(); ++i) {
    train_rows.push_back(st_.store().row(i));
    train_labels.push_back(st_.store().label(i));
  }
  stats_.charge_onchip_st_replay(static_cast<double>(st_.size() * latent_sz));

  const bool lt_cycle = (step_ % cfg_.lt_period_h) == 0;
  if (lt_cycle && lt_.size() > 0) {
    // One off-chip burst: h batches' worth of LT replay fetched at once.
    // Staged as slot refs — the ledger still charges the full burst here
    // (the hardware model DMAs the samples once), but the host keeps
    // coordinates, not copies, and re-gathers rows at consume time.
    staged_pos_ = 0;
    staged_refs_ = lt_.sample_refs(
        cfg_.lt_period_h * cfg_.lt_replay_per_batch, rng_);
    stats_.charge_offchip_lt_burst(static_cast<double>(
        static_cast<int64_t>(staged_refs_.size()) * latent_sz));
  }
  // Consume the staged burst iteratively, lt_replay_per_batch per batch.
  const size_t take = std::min(
      staged_refs_.size() - staged_pos_,
      static_cast<size_t>(cfg_.lt_replay_per_batch));
  for (size_t i = 0; i < take; ++i) {
    const auto& s = lt_.entry(staged_refs_[staged_pos_ + i]);
    train_rows.push_back(s.latent.data());
    train_labels.push_back(s.label);
  }
  staged_pos_ += take;

  nn::GatherBatch gb;
  gb.rows = train_rows.data();
  gb.n = static_cast<int64_t>(train_rows.size());
  gb.sample_shape = env_.latent_shape;
  const Tensor logits = train_step(gb, train_labels);
  charge_weight_traffic();

  // [lines 8-10] ST selection. The incoming samples' logits are the first
  // bsz rows of the training logits; Eq. 3 reads them in place (the label
  // span bounds the scoring to those rows — no logits copy). The Eq. 4
  // winner passes through the configured storage precision on its way into
  // the slab (identity for fp32).
  st_.update(std::span<const data::ImageKey>(batch.keys),
             std::span<const int64_t>(batch.labels),
             std::span<const float* const>(train_rows.data(),
                                           static_cast<size_t>(bsz)),
             Shape{1, env_.latent_shape[0], env_.latent_shape[1],
                   env_.latent_shape[2]},
             logits, prefs_, rng_, cfg_.buffer_precision);
  stats_.charge_onchip_st_write(static_cast<double>(latent_sz));

  // [lines 12-14] LT update from ST every h batches.
  if (lt_cycle && st_.size() > 0) {
    std::vector<replay::ReplaySample>& st_samples = st_promote_scratch_;
    st_samples.clear();
    st_samples.reserve(static_cast<size_t>(st_.size()));
    for (int64_t i = 0; i < st_.size(); ++i) {
      replay::ReplaySample s;
      s.key = st_.store().key(i);
      s.label = st_.store().label(i);
      s.latent = st_.store().latent_copy(i);  // off the steady path
      st_samples.push_back(std::move(s));
    }
    stats_.charge_onchip_st_promote(
        static_cast<double>(st_.size() * latent_sz));  // ST reads

    if (cfg_.use_prototype_selection) {
      auto predict = [this](const Tensor& latent) {
        const Tensor lg = eval_logits(latent);
        return cham::ops::softmax_row(lg.row(0));
      };
      // Prototype formation reads each involved class's actual LT entries
      // (class_count, not the full quota — early in a stream classes hold
      // fewer entries than per_class_quota()).
      int64_t proto_entries = 0;
      const int64_t updated =
          lt_.update_from(st_samples, predict, rng_, &proto_entries);
      stats_.charge_offchip_proto(
          static_cast<double>(proto_entries * latent_sz));
      stats_.charge_offchip_lt_write(static_cast<double>(updated * latent_sz));
    } else {
      // Ablation: promote one random ST sample per present class.
      std::unordered_map<int64_t, std::vector<const replay::ReplaySample*>>
          by_class;
      for (const auto& s : st_samples) by_class[s.label].push_back(&s);
      for (auto& [cls, cands] : by_class) {
        (void)cls;
        const auto* pick = cands[static_cast<size_t>(
            rng_.uniform_int(static_cast<int64_t>(cands.size())))];
        lt_.insert(*pick, rng_);
        stats_.charge_offchip_lt_write(static_cast<double>(latent_sz));
      }
    }
  }

  stats_.images += bsz;

  // Mirror the workspace gauges so the perf trajectory records allocation
  // behaviour next to MACs and traffic: pool/arena high water is the host
  // working set, and heap_allocs going flat is the observable for the
  // "steady state allocates nothing" property.
  const ws::WorkspaceStats wstats = ws::stats();
  stats_.ws_pool_heap_allocs = wstats.pool_heap_allocs;
  stats_.ws_pool_high_water_bytes = wstats.pool_high_water_bytes;
  stats_.ws_arena_high_water_bytes = wstats.arena_high_water_bytes;

  // Full-checks tier: structural audit of every replay component plus ledger
  // monotonicity, once per processed batch. Compiled out below
  // -DCHAM_CHECKS=full.
  CHAM_AUDIT(audit_step());
}
// cham-lint: end(hot_path)

util::AuditReport ChameleonLearner::check_invariants() const {
  util::AuditReport report;
  for (auto& sub : {st_.check_invariants(), lt_.check_invariants(),
                    prefs_.check_invariants(), stats_.check_invariants()}) {
    for (const auto& v : sub.violations) report.fail(v);
  }
  return report;
}

void ChameleonLearner::audit_step() {
  util::AuditReport report = check_invariants();
  if (stats_.onchip_bytes < audited_onchip_ ||
      stats_.offchip_bytes < audited_offchip_ ||
      stats_.weight_bytes < audited_weight_) {
    report.fail("OpStats: traffic ledger decreased between steps");
  }
  audited_onchip_ = stats_.onchip_bytes;
  audited_offchip_ = stats_.offchip_bytes;
  audited_weight_ = stats_.weight_bytes;
  util::throw_if_violations("ChameleonLearner", report);
}

int64_t ChameleonLearner::st_bytes() const {
  return st_.capacity() *
         (quant::storage_bytes(cfg_.buffer_precision,
                               env_.latent_shape.numel()) +
          replay::kBytesPerLabel);
}

int64_t ChameleonLearner::lt_bytes() const {
  return lt_.capacity() *
         (quant::storage_bytes(cfg_.buffer_precision,
                               env_.latent_shape.numel()) +
          replay::kBytesPerLabel);
}

int64_t ChameleonLearner::memory_overhead_bytes() const {
  return st_bytes() + lt_bytes();
}

}  // namespace cham::core
