// ChameleonLearner: the paper's Algorithm 1.
//
// Per incoming batch B_t:
//   1. update running class statistics (PreferenceTracker)       [line 3]
//   2. Z_t = f(X_t) latent extraction (shared frozen backbone)   [line 4]
//   3. every h batches sample a minibatch m̂_l from LT            [line 5]
//      train g on  Z_t ∪ M_s ∪ m̂_l                              [lines 6-7]
//   4. select one element of B_t by Eq. 4 and replace a random
//      ST slot                                                   [lines 8-10]
//   5. every h batches, per class: max-S_j ST sample (Eq. 6)
//      replaces a random same-class LT entry                     [lines 12-14]
//
// The ST store is charged to on-chip SRAM traffic and the LT store to
// off-chip DRAM traffic, mirroring the paper's hardware mapping.
#pragma once

#include <iosfwd>

#include "core/head_learner.h"
#include "core/long_term_memory.h"
#include "core/preference_tracker.h"
#include "core/short_term_memory.h"
#include "quant/quantize.h"
#include "replay/memory_accounting.h"

namespace cham::core {

struct ChameleonConfig {
  int64_t st_capacity = 10;    // paper: M_s = 10 samples
  int64_t lt_capacity = 100;   // paper: M_l in {100, 200, 500, 1500}
  int64_t lt_period_h = 10;    // LT accessed every h = 10 batches
  int64_t lt_replay_per_batch = 10;  // LT samples concatenated per batch
  int64_t top_k = 5;           // user-preferred classes tracked
  int64_t learning_window = 300;  // samples per recalibration window
  float rho = 0.5f;            // Eq. 2 exponent, in (0, 1)
  StSamplingConfig st_sampling;  // alpha / beta of Eq. 4

  // Storage precision of buffered latents. The FPGA design stores fp16 and
  // the EdgeTPU study uses BFP; reduced precision fits 2x-4x the samples in
  // the same on-chip budget (bench_ablation_precision measures the accuracy
  // cost). Latents are encoded on insertion and decoded on replay.
  quant::Precision buffer_precision = quant::Precision::kFp32;

  // Ablation switches (all `true` = the full method; see DESIGN.md).
  bool use_user_affinity = true;     // off: alpha = 0 (uncertainty only)
  bool use_uncertainty = true;       // off: beta = 0 (affinity only)
  bool use_prototype_selection = true;  // off: random ST->LT promotion
};

class ChameleonLearner : public HeadLearner {
 public:
  ChameleonLearner(const LearnerEnv& env, const ChameleonConfig& cfg,
                   uint64_t seed);

  void observe(const data::Batch& batch) override;
  std::string name() const override { return "Chameleon"; }
  int64_t memory_overhead_bytes() const override;

  // On-chip / off-chip split for the Table I & II reporting.
  int64_t st_bytes() const;
  int64_t lt_bytes() const;

  const PreferenceTracker& preferences() const { return prefs_; }
  const ShortTermMemory& short_term() const { return st_; }
  const LongTermMemory& long_term() const { return lt_; }
  // Mutable access for checkpoint restore (core/checkpoint.h).
  ShortTermMemory& mutable_short_term() { return st_; }
  LongTermMemory& mutable_long_term() { return lt_; }
  const ChameleonConfig& config() const { return cfg_; }

  // Aggregated structural audit over every replay-path component (ST, LT,
  // PreferenceTracker, OpStats ledger). Run automatically after every
  // observe() under -DCHAM_CHECKS=full; callable any time from tests.
  util::AuditReport check_invariants() const;

  // Full mid-stream state serialisation: head weights, ST and LT contents,
  // preference statistics (including mid-window counters), the staged LT
  // burst and its cursor, the RNG state, the step counter and the traffic
  // ledger. load_state() into a learner constructed with the same config and
  // environment resumes the stream bit-identically — the contract the
  // serving runtime's checkpoint-backed session eviction (src/serve/) is
  // built on. Implemented in core/checkpoint.cpp.
  //
  // `blob_precision` selects the storage precision of the ST/LT/staged
  // latent payloads inside the blob (head weights and everything else stay
  // fp32). kFp32 is lossless — the bit-identical resume contract holds only
  // there; reduced precisions trade restore exactness for 2x-4x smaller
  // blobs (the latents dominate the payload after the head).
  bool save_state(std::ostream& os, quant::Precision blob_precision =
                                        quant::Precision::kFp32) const;
  bool load_state(std::istream& is);
  int64_t steps_observed() const { return step_; }

 private:
  // Throws CheckError on any audit violation, including a non-monotone
  // traffic ledger (totals must never decrease across steps).
  void audit_step();
  ChameleonConfig cfg_;
  PreferenceTracker prefs_;
  ShortTermMemory st_;
  LongTermMemory lt_;
  int64_t step_ = 0;
  // LT burst staging: every h batches one DMA burst fetches
  // h * lt_replay_per_batch samples; they are consumed iteratively,
  // lt_replay_per_batch per subsequent batch ("iterative mini-batch
  // concatenation", paper Sec. IV-A). One off-chip transaction per burst.
  // Staged as slot refs, not deep copies: LT slots are stable between
  // update_from calls (insert only appends or overwrites in place), so the
  // consume path re-gathers the entry's latent row fresh each step instead
  // of snapshotting h * lt_replay_per_batch tensors per burst.
  std::vector<LongTermMemory::SlotRef> staged_refs_;
  size_t staged_pos_ = 0;
  // observe() scratch, reused across steps. After warm-up the steady-state
  // path allocates nothing from the heap: these vectors keep their
  // capacity, Tensor storage recycles through the workspace pool, and
  // kernel scratch lives in the per-thread arenas (test_workspace pins
  // this down with a global allocation counter).
  std::vector<const float*> train_rows_scratch_;
  std::vector<int64_t> train_labels_scratch_;
  std::vector<replay::ReplaySample> st_promote_scratch_;
  // Ledger snapshot from the previous full-checks audit (monotonicity:
  // traffic totals only ever grow).
  double audited_onchip_ = 0;
  double audited_offchip_ = 0;
  double audited_weight_ = 0;
};

}  // namespace cham::core
