// Full learner-state checkpointing for on-device deployment.
//
// A power-cycled edge device must resume continual learning without losing
// what its replay stores protect. A Chameleon checkpoint is small: the head
// parameters (the backbone is a fixed artifact of the firmware image), the
// short-term and long-term store contents, and the preference statistics'
// observable state (the preferred set re-forms within one learning window,
// so only the buffers and weights need persisting).
#pragma once

#include <string>

#include "core/chameleon.h"

namespace cham::core {

// Saves head parameters + both replay stores. Returns false on I/O error.
bool save_checkpoint(const ChameleonLearner& learner,
                     const std::string& path);

// Restores into a learner constructed with the SAME configuration and
// environment. Returns false on mismatch or I/O error (learner untouched
// on magic/version mismatch, best-effort on payload mismatch).
bool load_checkpoint(ChameleonLearner& learner, const std::string& path);

}  // namespace cham::core
