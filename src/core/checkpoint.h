// Full learner-state checkpointing for on-device deployment and serving.
//
// A power-cycled edge device must resume continual learning without losing
// what its replay stores protect, and the multi-session serving runtime
// (src/serve/) evicts cold sessions to disk and restores them on the next
// request. Both paths need the SAME property: a restored learner continues
// the stream bit-identically to one that was never interrupted. A checkpoint
// therefore carries everything that influences future behaviour: the head
// parameters (the backbone is a fixed artifact of the firmware image), the
// short-term and long-term store contents, the preference statistics
// including mid-window counters, the staged LT replay burst and its cursor,
// the RNG state, the step counter and the traffic ledger.
//
// Two wire formats live here:
//
//   CHS2 v3 (full blob)   The complete state, as ChameleonLearner::
//                         save_state / load_state. v3 adds a latent-storage
//                         precision tag: ST/LT/staged latents can be stored
//                         int8/fp16/bfp8 (quant/quantize.h) for denser
//                         blobs; kFp32 is the default and round-trips
//                         bit-exactly.
//   CHS3 (delta frame)    A delta against a previously flushed full blob,
//                         in one of two kinds:
//                           kChunkDiff   dirty fixed-size chunks of the new
//                                        blob vs the base blob. Wins when
//                                        little state changed (predict-only
//                                        or idle evictions; LT edits are
//                                        in-place at capacity, so they stay
//                                        local).
//                           kOpLog       the observe/predict requests the
//                                        session served since the base blob
//                                        was captured. Restore replays them
//                                        through the learner; the repo-wide
//                                        bit-determinism contract makes the
//                                        result byte-identical to the state
//                                        that was evicted, and the frame's
//                                        hash of that state verifies it.
//                                        Wins after training steps, where a
//                                        single SGD step dirties ~85% of
//                                        the head chunks (measured; the
//                                        head is ~94% of the blob).
//                         Both kinds carry FNV-1a hashes of the base and
//                         reconstructed blobs, so a mismatched or stale
//                         delta is detected, never silently applied.
//
// The serialisation itself lives on the learner (core/chameleon.h); the
// file helpers below wrap it for the single-device reboot use case. The
// serving runtime's SessionStore/WriteBehind use the in-memory forms.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "core/chameleon.h"
#include "data/stream.h"
#include "tensor/workspace.h"

namespace cham::core {

// Checkpoint bytes live in pool-backed buffers: eviction snapshots are the
// same size every cycle, so after warm-up the serving runtime's snapshot
// path never touches the heap (the pool freelist recycles the blob class).
using ByteBuf = std::vector<char, ws::PoolAllocator<char>>;

// std::ostream writing into a growing ByteBuf (for serialising a learner to
// memory instead of a file).
class ByteBufWriter : private std::streambuf, public std::ostream {
 public:
  explicit ByteBufWriter(ByteBuf& out) : std::ostream(this), out_(out) {}

 protected:
  std::streambuf::int_type overflow(std::streambuf::int_type ch) override {
    if (ch != std::streambuf::traits_type::eof()) {
      out_.push_back(static_cast<char>(ch));
    }
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    out_.insert(out_.end(), s, s + n);
    return n;
  }

 private:
  ByteBuf& out_;
};

// std::istream reading a borrowed byte span (no copy; the span must outlive
// the reader).
class ByteBufReader : private std::streambuf, public std::istream {
 public:
  ByteBufReader(const char* data, std::size_t n) : std::istream(this) {
    // std::streambuf wants mutable pointers; we only ever read.
    char* p = const_cast<char*>(data);
    setg(p, p, p + n);
  }
};

// Saves the complete learner state to one file. Returns false on I/O error.
bool save_checkpoint(const ChameleonLearner& learner,
                     const std::string& path);

// Restores into a learner constructed with the SAME configuration and
// environment. Returns false on mismatch or I/O error (learner untouched
// on magic/version mismatch, best-effort on payload mismatch).
bool load_checkpoint(ChameleonLearner& learner, const std::string& path);

// --------------------------------------------------------- CHS3 deltas

enum class DeltaKind : uint8_t {
  kChunkDiff = 0,  // dirty fixed-size chunks of next vs base
  kOpLog = 1,      // serve requests to replay on top of base
};

struct DeltaHeader {
  DeltaKind kind = DeltaKind::kChunkDiff;
  uint64_t base_hash = 0;  // FNV-1a of the full base blob
  uint64_t base_len = 0;
  uint64_t next_hash = 0;  // FNV-1a of the full blob this delta reconstructs
  uint64_t next_len = 0;
};

// FNV-1a 64 over a byte range (the hash used by the delta frames).
uint64_t blob_hash(const char* data, std::size_t n);

// True if the bytes start with the CHS3 delta magic (vs a full CHS2 blob).
bool is_delta_blob(const char* data, std::size_t n);

// Reads the frame header; false on malformed input.
bool read_delta_header(const char* data, std::size_t n, DeltaHeader& out);

// kChunkDiff: encodes `next` as the chunks that differ from `base`
// (chunk_bytes granularity; a length change marks the tail dirty).
ByteBuf encode_chunk_delta(const char* base, std::size_t base_n,
                           const char* next, std::size_t next_n,
                           int64_t chunk_bytes);

// Same, with caller-supplied blob hashes (the write-behind path already
// tracks the base hash and hashes the next blob once per flush; rehashing
// multi-MB blobs inside the encode dominated eviction cost). The hashes
// MUST be blob_hash() of exactly (base, base_n) / (next, next_n) — they are
// written into the frame header that apply_chunk_delta verifies against.
ByteBuf encode_chunk_delta(const char* base, std::size_t base_n,
                           const char* next, std::size_t next_n,
                           int64_t chunk_bytes, uint64_t base_hash,
                           uint64_t next_hash);

// Applies a kChunkDiff frame to `base`; verifies both hashes. False on
// malformed frame, base mismatch, or reconstruction hash mismatch.
bool apply_chunk_delta(const char* base, std::size_t base_n,
                       const char* delta, std::size_t delta_n, ByteBuf& out);

// kOpLog: frames the serve requests executed between the base blob and the
// state described by (next_hash, next_len). Replay + verification is the
// caller's job (the SessionManager owns learners; see read_op_log).
ByteBuf encode_op_log(const DeltaHeader& header,
                      const std::vector<data::ServeOp>& ops);

// Extracts the replay ops from a kOpLog frame. False on malformed input.
bool read_op_log(const char* delta, std::size_t delta_n,
                 std::vector<data::ServeOp>& out);

}  // namespace cham::core
