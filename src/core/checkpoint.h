// Full learner-state checkpointing for on-device deployment and serving.
//
// A power-cycled edge device must resume continual learning without losing
// what its replay stores protect, and the multi-session serving runtime
// (src/serve/) evicts cold sessions to disk and restores them on the next
// request. Both paths need the SAME property: a restored learner continues
// the stream bit-identically to one that was never interrupted. A checkpoint
// therefore carries everything that influences future behaviour: the head
// parameters (the backbone is a fixed artifact of the firmware image), the
// short-term and long-term store contents, the preference statistics
// including mid-window counters, the staged LT replay burst and its cursor,
// the RNG state, the step counter and the traffic ledger.
//
// The serialisation itself lives on the learner
// (ChameleonLearner::save_state / load_state, implemented in this
// translation unit); these file helpers wrap it for the single-device
// reboot use case. The serving runtime's SessionStore uses the stream form
// directly.
#pragma once

#include <string>

#include "core/chameleon.h"

namespace cham::core {

// Saves the complete learner state to one file. Returns false on I/O error.
bool save_checkpoint(const ChameleonLearner& learner,
                     const std::string& path);

// Restores into a learner constructed with the SAME configuration and
// environment. Returns false on mismatch or I/O error (learner untouched
// on magic/version mismatch, best-effort on payload mismatch).
bool load_checkpoint(ChameleonLearner& learner, const std::string& path);

}  // namespace cham::core
