// Base class for baselines that train the ENTIRE network online — the
// protocol of the original ER/DER/GSS/EWC++/LwF papers (and the reason their
// Table I memory overheads are parameter- or image-sized). Unlike
// HeadLearner these methods cannot share the frozen-backbone latent cache:
// their backbone drifts, so every forward runs the full pipeline on raw
// images.
#pragma once

#include "core/learner.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/mobilenet.h"
#include "nn/sgd.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cham::core {

class FullNetLearner : public ContinualLearner {
 public:
  FullNetLearner(const LearnerEnv& env, uint64_t seed)
      : env_(env),
        rng_(seed),
        net_(env.full_net_factory()),
        opt_(net_->params(), env.lr),
        net_fwd_macs_(net_->macs_per_sample()),
        param_count_(count_params()) {
    // Fresh task classifier, seeded by the learner seed so identical seeds
    // give bit-identical runs.
    Rng head_rng(seed * 0x9E3779B97F4A7C15ull + 0xC1A55);
    nn::reinit_classifier(*net_, head_rng);
  }

  std::vector<int64_t> predict(
      const std::vector<data::ImageKey>& keys) override {
    std::vector<int64_t> out;
    out.reserve(keys.size());
    constexpr int64_t kEvalBatch = 32;
    for (size_t start = 0; start < keys.size();
         start += static_cast<size_t>(kEvalBatch)) {
      const size_t end =
          std::min(keys.size(), start + static_cast<size_t>(kEvalBatch));
      std::vector<data::ImageKey> chunk(keys.begin() + static_cast<int64_t>(start),
                                        keys.begin() + static_cast<int64_t>(end));
      const Tensor x = data::synthesize_batch(*env_.data_cfg, chunk);
      const Tensor logits = net_->forward(x, /*train=*/false);
      for (int64_t i = 0; i < logits.dim(0); ++i) {
        out.push_back(cham::ops::argmax(logits.row(i)));
      }
    }
    return out;
  }

  nn::Sequential& net() { return *net_; }
  int64_t net_params() const { return param_count_; }

 protected:
  // One SGD step of cross-entropy on a raw-image batch; returns the logits.
  Tensor train_step(const Tensor& images, std::span<const int64_t> labels) {
    opt_.zero_grad();
    Tensor logits = net_->forward(images, /*train=*/true);
    auto loss = nn::softmax_cross_entropy(logits, labels);
    net_->backward(loss.grad);
    opt_.step();
    charge_net(images.dim(0));
    return logits;
  }

  Tensor eval_logits(const Tensor& images) {
    stats_.f_fwd_macs +=
        static_cast<double>(net_fwd_macs_ * images.dim(0));
    return net_->forward(images, /*train=*/false);
  }

  void charge_net(int64_t samples) {
    // Forward booked against the backbone counter (it includes the head),
    // backward against the training counter; the device cost models only
    // consume the totals.
    stats_.f_fwd_macs += static_cast<double>(net_fwd_macs_ * samples);
    stats_.g_bwd_macs += static_cast<double>(2 * net_fwd_macs_ * samples);
  }
  void charge_weight_traffic() {
    stats_.weight_bytes += static_cast<double>(param_count_) * 4.0;
  }

  LearnerEnv env_;
  Rng rng_;
  std::unique_ptr<nn::Sequential> net_;
  nn::Sgd opt_;
  int64_t net_fwd_macs_;
  int64_t param_count_;

 private:
  int64_t count_params() {
    int64_t n = 0;
    for (nn::Param* p : net_->params()) n += p->numel();
    return n;
  }
};

}  // namespace cham::core
