// Hardware-relevant operation counters accumulated by every learner.
//
// The learners run functionally on the host; these counters record what the
// same algorithm would do on a device per processed image — MACs through the
// backbone f and head g, bytes moved to/from the on-chip replay store vs the
// off-chip DRAM, and any extra dense-linear-algebra FLOPs (SLDA's
// pseudo-inverse). The hardware cost models (src/hw) turn an OpStats into
// per-image latency and energy for each device profile.
//
// The byte totals are a ledger: the paper's latency/energy claims (Table II)
// rest on them, so the totals carry per-component subtotals that must
// reconcile — every byte charged to `onchip_bytes` / `offchip_bytes` by the
// Chameleon path is simultaneously charged to exactly one component, and
// check_invariants() verifies the decomposition. Learners that predate the
// component split (baselines) leave the components at zero, which the audit
// accepts (components sum to at most the total, never more).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/check.h"

namespace cham::core {

struct OpStats {
  int64_t images = 0;  // stream images processed

  // Multiply-accumulates.
  double f_fwd_macs = 0;   // frozen backbone forward
  double g_fwd_macs = 0;   // head forward
  double g_bwd_macs = 0;   // head backward (weight + input grads)
  double extra_flops = 0;  // e.g. SLDA covariance update + pseudo-inverse

  // Replay-buffer traffic in bytes (reads + writes).
  double onchip_bytes = 0;   // short-term store (SRAM-resident)
  double offchip_bytes = 0;  // long-term store / unified buffer (DRAM)

  // On-chip components (Chameleon): the full-ST training sweep (Alg. 1
  // lines 5-7), the Eq. 4 winner written into ST (lines 8-10), and the ST
  // reads that feed the every-h LT promotion (lines 12-14).
  double onchip_st_replay_bytes = 0;
  double onchip_st_write_bytes = 0;
  double onchip_st_promote_bytes = 0;

  // Off-chip components (Chameleon): staged LT replay bursts (one DMA burst
  // per h batches), the LT entries streamed to form class prototypes
  // (Eq. 5), and LT insertions.
  double offchip_lt_burst_bytes = 0;
  double offchip_proto_bytes = 0;
  double offchip_lt_write_bytes = 0;

  // Weight traffic per step is identical across methods (paper Sec. IV-C);
  // modelled as off-chip reads of the head parameters once per training step.
  double weight_bytes = 0;

  // Host workspace gauges (tensor/workspace.h), mirrored by the Chameleon
  // learner at the end of each observe(). Not part of the traffic ledger:
  // they describe the working-set memory of the host implementation (the
  // quantity the paper's edge-device SRAM budget constrains), not modelled
  // replay traffic, so they are merged by max and exempt from the
  // decomposition audit. pool high water covers Tensor storage (activation
  // caches included); arena high water covers transient kernel scratch;
  // heap allocs should stop growing once the replay loop reaches steady
  // state.
  int64_t ws_pool_heap_allocs = 0;
  int64_t ws_pool_high_water_bytes = 0;
  int64_t ws_arena_high_water_bytes = 0;

  OpStats& operator+=(const OpStats& o) {
    images += o.images;
    f_fwd_macs += o.f_fwd_macs;
    g_fwd_macs += o.g_fwd_macs;
    g_bwd_macs += o.g_bwd_macs;
    extra_flops += o.extra_flops;
    onchip_bytes += o.onchip_bytes;
    offchip_bytes += o.offchip_bytes;
    onchip_st_replay_bytes += o.onchip_st_replay_bytes;
    onchip_st_write_bytes += o.onchip_st_write_bytes;
    onchip_st_promote_bytes += o.onchip_st_promote_bytes;
    offchip_lt_burst_bytes += o.offchip_lt_burst_bytes;
    offchip_proto_bytes += o.offchip_proto_bytes;
    offchip_lt_write_bytes += o.offchip_lt_write_bytes;
    weight_bytes += o.weight_bytes;
    ws_pool_heap_allocs = std::max(ws_pool_heap_allocs, o.ws_pool_heap_allocs);
    ws_pool_high_water_bytes =
        std::max(ws_pool_high_water_bytes, o.ws_pool_high_water_bytes);
    ws_arena_high_water_bytes =
        std::max(ws_arena_high_water_bytes, o.ws_arena_high_water_bytes);
    return *this;
  }

  // Charging helpers that keep the ledger balanced by construction: the same
  // addend lands in the total and in its component, so the decomposition is
  // exact in floating point (identical addends in identical order).
  void charge_onchip_st_replay(double bytes) {
    onchip_bytes += bytes;
    onchip_st_replay_bytes += bytes;
  }
  void charge_onchip_st_write(double bytes) {
    onchip_bytes += bytes;
    onchip_st_write_bytes += bytes;
  }
  void charge_onchip_st_promote(double bytes) {
    onchip_bytes += bytes;
    onchip_st_promote_bytes += bytes;
  }
  void charge_offchip_lt_burst(double bytes) {
    offchip_bytes += bytes;
    offchip_lt_burst_bytes += bytes;
  }
  void charge_offchip_proto(double bytes) {
    offchip_bytes += bytes;
    offchip_proto_bytes += bytes;
  }
  void charge_offchip_lt_write(double bytes) {
    offchip_bytes += bytes;
    offchip_lt_write_bytes += bytes;
  }

  double onchip_component_sum() const {
    return onchip_st_replay_bytes + onchip_st_write_bytes +
           onchip_st_promote_bytes;
  }
  double offchip_component_sum() const {
    return offchip_lt_burst_bytes + offchip_proto_bytes +
           offchip_lt_write_bytes;
  }

  // Per-image averages (guarding empty runs).
  double per_image(double total) const {
    return images > 0 ? total / static_cast<double>(images) : 0.0;
  }

  // Structural audit of the traffic ledger: every counter non-negative and
  // the component subtotals within the totals they decompose (learners that
  // charge through the charge_* helpers reconcile exactly; mixed charging
  // may legitimately leave unattributed traffic, never the reverse).
  util::AuditReport check_invariants() const {
    util::AuditReport report;
    const auto nonneg = [&report](double v, const char* name) {
      if (v < 0) {
        report.fail(std::string("OpStats: ") + name + " negative (" +
                    std::to_string(v) + ")");
      }
    };
    if (images < 0) report.fail("OpStats: images negative");
    nonneg(f_fwd_macs, "f_fwd_macs");
    nonneg(g_fwd_macs, "g_fwd_macs");
    nonneg(g_bwd_macs, "g_bwd_macs");
    nonneg(extra_flops, "extra_flops");
    nonneg(onchip_bytes, "onchip_bytes");
    nonneg(offchip_bytes, "offchip_bytes");
    nonneg(onchip_st_replay_bytes, "onchip_st_replay_bytes");
    nonneg(onchip_st_write_bytes, "onchip_st_write_bytes");
    nonneg(onchip_st_promote_bytes, "onchip_st_promote_bytes");
    nonneg(offchip_lt_burst_bytes, "offchip_lt_burst_bytes");
    nonneg(offchip_proto_bytes, "offchip_proto_bytes");
    nonneg(offchip_lt_write_bytes, "offchip_lt_write_bytes");
    nonneg(weight_bytes, "weight_bytes");
    // Tolerance covers double rounding if a learner charged components and
    // totals through independent accumulation orders.
    const double tol_on = 1e-6 * (onchip_bytes + 1.0);
    const double tol_off = 1e-6 * (offchip_bytes + 1.0);
    if (onchip_component_sum() > onchip_bytes + tol_on) {
      report.fail("OpStats: on-chip components (" +
                  std::to_string(onchip_component_sum()) +
                  ") exceed onchip_bytes (" + std::to_string(onchip_bytes) +
                  ")");
    }
    if (offchip_component_sum() > offchip_bytes + tol_off) {
      report.fail("OpStats: off-chip components (" +
                  std::to_string(offchip_component_sum()) +
                  ") exceed offchip_bytes (" + std::to_string(offchip_bytes) +
                  ")");
    }
    return report;
  }
};

}  // namespace cham::core
