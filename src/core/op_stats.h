// Hardware-relevant operation counters accumulated by every learner.
//
// The learners run functionally on the host; these counters record what the
// same algorithm would do on a device per processed image — MACs through the
// backbone f and head g, bytes moved to/from the on-chip replay store vs the
// off-chip DRAM, and any extra dense-linear-algebra FLOPs (SLDA's
// pseudo-inverse). The hardware cost models (src/hw) turn an OpStats into
// per-image latency and energy for each device profile.
#pragma once

#include <cstdint>

namespace cham::core {

struct OpStats {
  int64_t images = 0;  // stream images processed

  // Multiply-accumulates.
  double f_fwd_macs = 0;   // frozen backbone forward
  double g_fwd_macs = 0;   // head forward
  double g_bwd_macs = 0;   // head backward (weight + input grads)
  double extra_flops = 0;  // e.g. SLDA covariance update + pseudo-inverse

  // Replay-buffer traffic in bytes (reads + writes).
  double onchip_bytes = 0;   // short-term store (SRAM-resident)
  double offchip_bytes = 0;  // long-term store / unified buffer (DRAM)

  // Weight traffic per step is identical across methods (paper Sec. IV-C);
  // modelled as off-chip reads of the head parameters once per training step.
  double weight_bytes = 0;

  OpStats& operator+=(const OpStats& o) {
    images += o.images;
    f_fwd_macs += o.f_fwd_macs;
    g_fwd_macs += o.g_fwd_macs;
    g_bwd_macs += o.g_bwd_macs;
    extra_flops += o.extra_flops;
    onchip_bytes += o.onchip_bytes;
    offchip_bytes += o.offchip_bytes;
    weight_bytes += o.weight_bytes;
    return *this;
  }

  // Per-image averages (guarding empty runs).
  double per_image(double total) const {
    return images > 0 ? total / static_cast<double>(images) : 0.0;
  }
};

}  // namespace cham::core
