// Base class for learners that train a MobileNet head g over frozen latents.
// Owns the head, the optimiser, prediction, and the MAC/byte accounting
// helpers shared by Chameleon and the replay baselines.
#pragma once

#include <span>

#include "core/learner.h"
#include "nn/loss.h"
#include "nn/mobilenet.h"
#include "nn/sgd.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cham::core {

class HeadLearner : public ContinualLearner {
 public:
  HeadLearner(const LearnerEnv& env, uint64_t seed)
      : env_(env),
        rng_(seed),
        g_(env.head_factory()),
        opt_(g_->params(), env.lr),
        g_fwd_macs_(g_->macs_per_sample()),
        head_param_count_(count_params()) {
    // Fresh task classifier, seeded by the learner seed so identical seeds
    // give bit-identical runs.
    Rng head_rng(seed * 0x9E3779B97F4A7C15ull + 0xC1A55);
    nn::reinit_classifier(*g_, head_rng);
    // The head trains on frozen latents: nothing consumes dL/dInput at the
    // network boundary, so the first layer's input-gradient GEMM is pure
    // waste. Elide it and account backward MACs per layer (weight grads
    // everywhere + input grads only where a predecessor needs them) instead
    // of the old blanket 2x-forward estimate.
    g_->set_needs_input_grad(false);
    g_bwd_macs_ = g_->backward_macs_per_sample();
  }

  std::vector<int64_t> predict(
      const std::vector<data::ImageKey>& keys) override {
    return predict_batch(std::span<const data::ImageKey>(keys));
  }

  // One eval-mode forward of the head over an already-stacked latent batch
  // (NxCxHxW), returning the NxK logits. State- and stats-pure: eval mode
  // touches no weights, BN running stats are frozen, and no MACs are
  // charged (the serve path logs predicts as replayable no-ops). Every
  // layer treats batch rows independently in eval mode, so ANY regrouping
  // of rows across eval_batch calls — merging several requests, splitting
  // one — yields bit-identical logits per row. That row-independence is
  // the correctness basis of the serve-path batch planner.
  Tensor eval_batch(const Tensor& latent_batch) {
    return g_->forward(latent_batch, /*train=*/false);
  }

  // Argmax predictions for `keys`, evaluated in gathered chunks: the
  // first head layer packs its GEMM panels straight from the cached latent
  // rows (LatentCache hands out stable references), so no stacked copy of
  // the chunk is ever materialised. Bit-identical to stacking + eval_batch
  // — the gather kernels pack the same panels from the same values (see
  // tensor/gemm.h) — and bit-identical to a per-key loop (see eval_batch).
  // Virtual because this is the single funnel every predict path (plain
  // predict(), serve batch plans) flows through — fault-injecting
  // subclasses override here to intercept both.
  // cham-lint: begin(hot_path)
  virtual std::vector<int64_t> predict_batch(
      std::span<const data::ImageKey> keys) {
    constexpr int64_t kEvalChunk = 256;
    const int64_t total = static_cast<int64_t>(keys.size());
    std::vector<int64_t> out;
    out.reserve(keys.size());
    std::vector<const float*>& rows = eval_rows_scratch_;
    for (int64_t begin = 0; begin < total; begin += kEvalChunk) {
      const int64_t end = std::min(total, begin + kEvalChunk);
      rows.clear();
      for (int64_t i = begin; i < end; ++i) {
        rows.push_back(
            env_.latents->latent(keys[static_cast<size_t>(i)]).data());
      }
      nn::GatherBatch gb;
      gb.rows = rows.data();
      gb.n = end - begin;
      gb.sample_shape = env_.latent_shape;
      const Tensor logits = g_->forward_gather(gb, /*train=*/false);
      for (int64_t i = 0; i < end - begin; ++i) {
        out.push_back(cham::ops::argmax(logits.row(i)));
      }
    }
    return out;
  }
  // cham-lint: end(hot_path)

  nn::Sequential& head() { return *g_; }
  int64_t head_params() const { return head_param_count_; }
  int64_t g_fwd_macs() const { return g_fwd_macs_; }
  // Exact per-sample backward MACs after first-layer dInput elision (set in
  // the constructor; always < 2x forward for a multi-layer head).
  int64_t g_bwd_macs() const { return g_bwd_macs_; }

 protected:
  // One SGD step of cross-entropy on a latent batch; returns the logits
  // computed during the forward pass (train mode). Also charges g MACs.
  Tensor train_step(const Tensor& latent_batch,
                    std::span<const int64_t> labels) {
    opt_.zero_grad();
    Tensor logits = g_->forward(latent_batch, /*train=*/true);
    // Full-checks tier: scan the layer output and loss gradient at the
    // train-step boundary (Eq. 3 consumes these logits; a NaN here corrupts
    // both the weights and the ST sampling probabilities downstream).
    CHAM_CHECK_FINITE(logits.span(), "head logits");
    auto loss = nn::softmax_cross_entropy(logits, labels);
    CHAM_CHECK_FINITE(loss.grad.span(), "loss gradient");
    g_->backward(loss.grad);
    opt_.step();
    charge_g(latent_batch.dim(0));
    return logits;
  }

  // Gathered train step: the batch is the rows named by `gb` (replay slab
  // rows, cached incoming latents, staged LT rows) — never stacked into a
  // dense batch tensor. Bit-identical to stacking + train_step: the first
  // layer packs its GEMM panels from the same values in the same order.
  // The caller keeps gb.rows and the rows themselves valid until this
  // returns (the train forward caches the row pointers for backward).
  Tensor train_step(const nn::GatherBatch& gb,
                    std::span<const int64_t> labels) {
    opt_.zero_grad();
    Tensor logits = g_->forward_gather(gb, /*train=*/true);
    CHAM_CHECK_FINITE(logits.span(), "head logits");
    auto loss = nn::softmax_cross_entropy(logits, labels);
    CHAM_CHECK_FINITE(loss.grad.span(), "loss gradient");
    g_->backward(loss.grad);
    opt_.step();
    charge_g(gb.n);
    return logits;
  }

  // Eval-mode logits for a single latent (1xCxHxW), charging forward MACs.
  Tensor eval_logits(const Tensor& latent) {
    stats_.g_fwd_macs += static_cast<double>(g_fwd_macs_);
    return g_->forward(latent, /*train=*/false);
  }

  // Accounting helpers -----------------------------------------------------
  void charge_g(int64_t samples) {
    stats_.g_fwd_macs += static_cast<double>(g_fwd_macs_ * samples);
    // Exact backward model: weight gradients everywhere, input gradients
    // only for layers whose predecessor consumes them — the first layer's
    // dInput GEMM is elided (set_needs_input_grad(false) in the ctor), so
    // this is strictly below the old 2x-forward estimate.
    stats_.g_bwd_macs += static_cast<double>(g_bwd_macs_ * samples);
  }
  void charge_f(int64_t samples) {
    stats_.f_fwd_macs += static_cast<double>(env_.f_fwd_macs * samples);
  }
  void charge_weight_traffic() {
    // One read of the head parameters per optimisation step.
    stats_.weight_bytes += static_cast<double>(head_param_count_) * 4.0;
  }

  LearnerEnv env_;
  Rng rng_;
  std::unique_ptr<nn::Sequential> g_;
  nn::Sgd opt_;
  int64_t g_fwd_macs_;
  int64_t g_bwd_macs_ = 0;
  int64_t head_param_count_;
  // predict_batch row-pointer scratch (capacity reused across calls).
  std::vector<const float*> eval_rows_scratch_;

 private:
  int64_t count_params() {
    int64_t n = 0;
    for (nn::Param* p : g_->params()) n += p->numel();
    return n;
  }
};

}  // namespace cham::core
