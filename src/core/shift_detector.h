// Task-free domain-shift detector (extension; the paper's streams never
// announce domain boundaries, so methods like EWC++/LwF that conceptually
// want boundaries must guess — this detector provides a principled guess).
//
// Tracks an exponential moving average and variance of a per-batch signal
// (typically the mean uncertainty U_i of Eq. 3, or the training loss). A
// boundary is flagged when the short-window mean deviates from the
// long-window mean by more than `threshold_sigmas` standard deviations, with
// a refractory period to avoid re-triggering inside one transition.
#pragma once

#include <cmath>
#include <cstdint>

namespace cham::core {

class ShiftDetector {
 public:
  struct Config {
    double fast_alpha = 0.3;    // short-window EMA coefficient
    double slow_alpha = 0.02;   // long-window EMA coefficient
    double threshold_sigmas = 3.0;
    int64_t warmup = 10;        // batches before detection can fire
    int64_t refractory = 10;    // batches to stay silent after a detection
  };

  ShiftDetector() : cfg_() {}
  explicit ShiftDetector(const Config& cfg) : cfg_(cfg) {}

  // Feeds one per-batch signal value; returns true when a domain boundary
  // is detected at this step.
  bool update(double signal) {
    ++step_;
    if (step_ == 1) {
      fast_ = slow_ = signal;
      var_ = 0;
      return false;
    }
    // Noise is estimated from the residual against the FAST mean: the fast
    // window re-adapts within a few steps of a shift, so the variance spikes
    // only briefly while |fast - slow| stays elevated for ~1/slow_alpha
    // steps — that separation is what makes the test fire.
    const double residual = signal - fast_;
    fast_ += cfg_.fast_alpha * residual;
    slow_ += cfg_.slow_alpha * (signal - slow_);
    var_ = (1 - cfg_.slow_alpha) * var_ +
           cfg_.slow_alpha * residual * residual;

    if (step_ <= cfg_.warmup || step_ - last_detection_ <= cfg_.refractory) {
      return false;
    }
    const double sigma = std::sqrt(std::max(var_, 1e-12));
    if (std::abs(fast_ - slow_) > cfg_.threshold_sigmas * sigma) {
      last_detection_ = step_;
      ++detections_;
      // Re-anchor the long-term statistics on the new regime.
      slow_ = fast_;
      var_ = 0;
      return true;
    }
    return false;
  }

  int64_t detections() const { return detections_; }
  double fast_mean() const { return fast_; }
  double slow_mean() const { return slow_; }

 private:
  Config cfg_;
  double fast_ = 0, slow_ = 0, var_ = 0;
  int64_t step_ = 0;
  int64_t last_detection_ = -1000000;
  int64_t detections_ = 0;
};

}  // namespace cham::core
