#include "core/checkpoint.h"

#include <fstream>

#include "nn/model_io.h"
#include "replay/serialize.h"

namespace cham::core {
namespace {

constexpr uint32_t kMagic = 0x4348434B;  // "CHCK"
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return is.good();
}

}  // namespace

bool save_checkpoint(const ChameleonLearner& learner,
                     const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_pod(os, kMagic);
  write_pod(os, kVersion);

  // Head parameters via a temporary side file would double I/O; reuse the
  // model_io layout inline by serialising to the same stream.
  auto& mutable_learner = const_cast<ChameleonLearner&>(learner);
  {
    // model_io works on files; write the head to <path>.head alongside.
    if (!nn::save_params(mutable_learner.head(), path + ".head")) {
      return false;
    }
  }

  // Short-term store.
  if (!replay::save_buffer(learner.short_term().buffer(), os)) return false;

  // Long-term store: flat sample list (class ids are inside the samples).
  const auto lt = learner.long_term().all_samples();
  write_pod(os, static_cast<int64_t>(lt.size()));
  for (const auto& s : lt) {
    if (!replay::save_sample(s, os)) return false;
  }
  return os.good();
}

bool load_checkpoint(ChameleonLearner& learner, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  uint32_t magic = 0, version = 0;
  if (!read_pod(is, magic) || magic != kMagic) return false;
  if (!read_pod(is, version) || version != kVersion) return false;

  if (!nn::load_params(learner.head(), path + ".head")) return false;

  if (!replay::load_buffer(learner.mutable_short_term().buffer(), is)) {
    return false;
  }

  int64_t lt_count = 0;
  if (!read_pod(is, lt_count) || lt_count < 0) return false;
  auto& lt = learner.mutable_long_term();
  lt.clear();
  Rng restore_rng(0xC0FFEE);  // below-quota inserts never hit the rng path
  for (int64_t i = 0; i < lt_count; ++i) {
    replay::ReplaySample s;
    if (!replay::load_sample(s, is)) return false;
    lt.insert(s, restore_rng);
  }
  return true;
}

}  // namespace cham::core
