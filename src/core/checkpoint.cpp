#include "core/checkpoint.h"

#include <array>
#include <fstream>
#include <type_traits>
#include <vector>

#include "nn/model_io.h"
#include "replay/serialize.h"

namespace cham::core {
namespace {

constexpr uint32_t kMagic = 0x43485332;  // "CHS2"
// Version 2: single-blob full state (v1 stored only head-by-side-file,
// buffers, and no preference/RNG/staging state, so a restored learner
// diverged from an uninterrupted run at the next stochastic decision).
constexpr uint32_t kVersion = 2;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& is, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return is.good();
}

}  // namespace

bool ChameleonLearner::save_state(std::ostream& os) const {
  write_pod(os, kMagic);
  write_pod(os, kVersion);

  // Head parameters (values + BatchNorm running statistics), inline.
  if (!nn::save_params(*g_, os)) return false;

  // RNG state: every stochastic decision after restore (ST slot choice,
  // LT sampling, eviction victims) must continue the exact draw sequence.
  const auto rs = rng_.state();
  for (uint64_t word : rs) write_pod(os, word);

  write_pod(os, step_);

  // Short-term store (contents + reservoir counter).
  if (!replay::save_buffer(st_.buffer(), os)) return false;

  // Long-term store: flat sample list in (class, slot) order; re-inserting
  // in this order rebuilds the per-class slot arrays identically.
  if (!replay::save_samples(lt_.all_samples(), os)) return false;

  // Staged LT burst and its consumption cursor: a learner evicted mid-burst
  // must keep consuming the same staged samples on restore.
  if (!replay::save_samples(staged_lt_, os)) return false;
  write_pod(os, static_cast<int64_t>(staged_pos_));

  // Preference statistics, including mid-window counters.
  if (!prefs_.save(os)) return false;

  // Traffic ledger and the full-checks monotonicity snapshot, so restored
  // sessions keep accumulating the same hardware cost model.
  static_assert(std::is_trivially_copyable_v<OpStats>);
  write_pod(os, stats_);
  write_pod(os, audited_onchip_);
  write_pod(os, audited_offchip_);
  write_pod(os, audited_weight_);
  return os.good();
}

bool ChameleonLearner::load_state(std::istream& is) {
  uint32_t magic = 0, version = 0;
  if (!read_pod(is, magic) || magic != kMagic) return false;
  if (!read_pod(is, version) || version != kVersion) return false;

  if (!nn::load_params(*g_, is)) return false;

  std::array<uint64_t, 4> rs{};
  for (auto& word : rs) {
    if (!read_pod(is, word)) return false;
  }
  rng_.set_state(rs);

  if (!read_pod(is, step_) || step_ < 0) return false;

  if (!replay::load_buffer(st_.buffer(), is)) return false;

  std::vector<replay::ReplaySample> lt_samples;
  if (!replay::load_samples(lt_samples, is)) return false;
  lt_.clear();
  Rng restore_rng(0xC0FFEE);  // below-quota inserts never hit the rng path
  for (const auto& s : lt_samples) {
    // Validate before insert: LongTermMemory contracts on the label range,
    // and a corrupt file must fail the load, not trip a CHAM_CHECK.
    if (s.label < 0 || s.label >= env_.data_cfg->num_classes) return false;
    lt_.insert(s, restore_rng);
  }

  if (!replay::load_samples(staged_lt_, is)) return false;
  int64_t staged_pos = 0;
  if (!read_pod(is, staged_pos) || staged_pos < 0 ||
      staged_pos > static_cast<int64_t>(staged_lt_.size())) {
    return false;
  }
  staged_pos_ = static_cast<size_t>(staged_pos);

  if (!prefs_.load(is)) return false;

  if (!read_pod(is, stats_)) return false;
  return read_pod(is, audited_onchip_) && read_pod(is, audited_offchip_) &&
         read_pod(is, audited_weight_);
}

bool save_checkpoint(const ChameleonLearner& learner,
                     const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  return os && learner.save_state(os);
}

bool load_checkpoint(ChameleonLearner& learner, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return is && learner.load_state(is);
}

}  // namespace cham::core
