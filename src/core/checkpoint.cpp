#include "core/checkpoint.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <vector>

#include "nn/model_io.h"
#include "replay/serialize.h"
#include "util/check.h"

namespace cham::core {
namespace {

constexpr uint32_t kMagic = 0x43485332;  // "CHS2"
// Version 2: single-blob full state (v1 stored only head-by-side-file,
// buffers, and no preference/RNG/staging state, so a restored learner
// diverged from an uninterrupted run at the next stochastic decision).
// Version 3: a quant::Precision byte follows the version; ST/LT/staged
// latent payloads are precision-tagged (replay::*_q framing), so blobs can
// store latents at int8/fp16/bfp8 density. kFp32 stays lossless.
// Version 4: the ST store is a contiguous slab (replay::save_slot_store_q,
// one range write of the latent payload) and the staged LT burst is a list
// of (class, slot) refs into the LT store instead of deep-copied samples —
// the burst payload shrinks from h * lt_replay_per_batch latents to 8
// bytes per staged sample.
constexpr uint32_t kVersion = 4;

constexpr uint32_t kDeltaMagic = 0x43485333;  // "CHS3"
constexpr uint32_t kDeltaVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& is, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return is.good();
}

// Raw-buffer cursor for the delta frames (they are always encoded into and
// decoded from complete in-memory blobs, so stream machinery is overhead).
struct Cursor {
  const char* p;
  size_t left;

  template <typename T>
  bool read(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (left < sizeof(T)) return false;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return true;
  }
};

template <typename T>
void append_pod(ByteBuf& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

void append_delta_header(ByteBuf& out, const DeltaHeader& h) {
  append_pod(out, kDeltaMagic);
  append_pod(out, kDeltaVersion);
  append_pod(out, static_cast<uint8_t>(h.kind));
  append_pod(out, h.base_hash);
  append_pod(out, h.base_len);
  append_pod(out, h.next_hash);
  append_pod(out, h.next_len);
}

bool read_delta_header(Cursor& c, DeltaHeader& out) {
  uint32_t magic = 0, version = 0;
  uint8_t kind = 0;
  if (!c.read(magic) || magic != kDeltaMagic) return false;
  if (!c.read(version) || version != kDeltaVersion) return false;
  if (!c.read(kind) || kind > static_cast<uint8_t>(DeltaKind::kOpLog)) {
    return false;
  }
  out.kind = static_cast<DeltaKind>(kind);
  return c.read(out.base_hash) && c.read(out.base_len) &&
         c.read(out.next_hash) && c.read(out.next_len);
}

}  // namespace

bool ChameleonLearner::save_state(std::ostream& os,
                                  quant::Precision blob_precision) const {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint8_t>(blob_precision));

  // Head parameters (values + BatchNorm running statistics), inline.
  // Always fp32: this is live training state (weights + BN statistics), and
  // the optimizer must resume from exactly the values it left.
  if (!nn::save_params(*g_, os)) return false;

  // RNG state: every stochastic decision after restore (ST slot choice,
  // LT sampling, eviction victims) must continue the exact draw sequence.
  const auto rs = rng_.state();
  for (uint64_t word : rs) write_pod(os, word);

  write_pod(os, step_);

  // Short-term store (contents + reservoir counter). The slab is
  // contiguous, so the fp32 latent payload is one range write.
  if (!replay::save_slot_store_q(st_.store(), os, blob_precision)) {
    return false;
  }

  // Long-term store: flat sample list in (class, slot) order; re-inserting
  // in this order rebuilds the per-class slot arrays identically.
  if (!replay::save_samples_q(lt_.all_samples(), os, blob_precision)) {
    return false;
  }

  // Staged LT burst and its consumption cursor: a learner evicted mid-burst
  // must keep consuming the same staged samples on restore. The burst is
  // (class, slot) refs into the LT store serialised just above — the LT
  // rebuild on load recreates the slots in the same order, so the refs stay
  // valid.
  write_pod(os, static_cast<int64_t>(staged_refs_.size()));
  for (const auto& ref : staged_refs_) {
    write_pod(os, ref.cls);
    write_pod(os, ref.slot);
  }
  write_pod(os, static_cast<int64_t>(staged_pos_));

  // Preference statistics, including mid-window counters.
  if (!prefs_.save(os)) return false;

  // Traffic ledger and the full-checks monotonicity snapshot, so restored
  // sessions keep accumulating the same hardware cost model. The host
  // workspace gauges (ws_*) are process-global introspection, not logical
  // learner state — they vary with allocator history, so they are
  // canonicalised to zero to keep serialisation a pure function of the
  // stream (the op-log delta restore hash-verifies exactly this). The next
  // observe() after restore re-mirrors the live gauges.
  static_assert(std::is_trivially_copyable_v<OpStats>);
  OpStats canonical = stats_;
  canonical.ws_pool_heap_allocs = 0;
  canonical.ws_pool_high_water_bytes = 0;
  canonical.ws_arena_high_water_bytes = 0;
  write_pod(os, canonical);
  write_pod(os, audited_onchip_);
  write_pod(os, audited_offchip_);
  write_pod(os, audited_weight_);
  return os.good();
}

bool ChameleonLearner::load_state(std::istream& is) {
  uint32_t magic = 0, version = 0;
  if (!read_pod(is, magic) || magic != kMagic) return false;
  if (!read_pod(is, version) || version != kVersion) return false;
  uint8_t precision = 0;
  if (!read_pod(is, precision) ||
      precision > static_cast<uint8_t>(quant::Precision::kInt8)) {
    return false;
  }

  if (!nn::load_params(*g_, is)) return false;

  std::array<uint64_t, 4> rs{};
  for (auto& word : rs) {
    if (!read_pod(is, word)) return false;
  }
  rng_.set_state(rs);

  if (!read_pod(is, step_) || step_ < 0) return false;

  if (!replay::load_slot_store_q(st_.store(), is)) return false;

  std::vector<replay::ReplaySample> lt_samples;
  if (!replay::load_samples_q(lt_samples, is)) return false;
  lt_.clear();
  Rng restore_rng(0xC0FFEE);  // below-quota inserts never hit the rng path
  for (const auto& s : lt_samples) {
    // Validate before insert: LongTermMemory contracts on the label range,
    // and a corrupt file must fail the load, not trip a CHAM_CHECK.
    if (s.label < 0 || s.label >= env_.data_cfg->num_classes) return false;
    lt_.insert(s, restore_rng);
  }

  int64_t staged_count = 0;
  if (!read_pod(is, staged_count) || staged_count < 0 ||
      staged_count > (int64_t{1} << 32)) {
    return false;
  }
  staged_refs_.clear();
  staged_refs_.resize(static_cast<size_t>(staged_count));
  for (auto& ref : staged_refs_) {
    if (!read_pod(is, ref.cls) || !read_pod(is, ref.slot)) return false;
    // Refs must land inside the LT store rebuilt above; a corrupt file must
    // fail the load, not produce an out-of-range gather later.
    if (ref.cls < 0 || ref.cls >= env_.data_cfg->num_classes ||
        ref.slot < 0 || ref.slot >= lt_.class_count(ref.cls)) {
      return false;
    }
  }
  int64_t staged_pos = 0;
  if (!read_pod(is, staged_pos) || staged_pos < 0 ||
      staged_pos > staged_count) {
    return false;
  }
  staged_pos_ = static_cast<size_t>(staged_pos);

  if (!prefs_.load(is)) return false;

  if (!read_pod(is, stats_)) return false;
  return read_pod(is, audited_onchip_) && read_pod(is, audited_offchip_) &&
         read_pod(is, audited_weight_);
}

bool save_checkpoint(const ChameleonLearner& learner,
                     const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  return os && learner.save_state(os);
}

bool load_checkpoint(ChameleonLearner& learner, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return is && learner.load_state(is);
}

// --------------------------------------------------------- CHS3 deltas

uint64_t blob_hash(const char* data, std::size_t n) {
  // Four interleaved FNV-1a-style lanes over 8-byte words, folded at the
  // end. The byte-serial FNV loop this replaces is a 3-cycle multiply
  // dependency chain PER BYTE (~1 GB/s) and showed up as ~14% of serve
  // wall time — each eviction hashes multi-MB blobs several times. Lanes
  // break the chain (4 independent multiplies in flight) and words cut the
  // iteration count 8x. Values differ from classic FNV-1a; that is fine —
  // the hash only cross-checks delta frames against blobs written by the
  // same store, and a frame hashed under the old scheme simply reads as
  // "stale delta", for which every consumer serves the base blob. Word
  // loads are raw memcpy (no byte-order normalisation): frames never leave
  // the host that wrote them, and every supported target is little-endian.
  constexpr uint64_t kPrime = 0x100000001B3ull;
  uint64_t h0 = 0xCBF29CE484222325ull;
  uint64_t h1 = 0x84222325CBF29CE4ull;
  uint64_t h2 = 0x9E3779B97F4A7C15ull;
  uint64_t h3 = 0xC2B2AE3D27D4EB4Full;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, data + i, 8);
    std::memcpy(&w1, data + i + 8, 8);
    std::memcpy(&w2, data + i + 16, 8);
    std::memcpy(&w3, data + i + 24, 8);
    h0 = (h0 ^ w0) * kPrime;
    h1 = (h1 ^ w1) * kPrime;
    h2 = (h2 ^ w2) * kPrime;
    h3 = (h3 ^ w3) * kPrime;
  }
  uint64_t h = ((h0 * kPrime ^ h1) * kPrime ^ h2) * kPrime ^ h3;
  for (; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kPrime;
  }
  // Final avalanche so short tails still affect the high bits.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

bool is_delta_blob(const char* data, std::size_t n) {
  uint32_t magic = 0;
  if (n < sizeof(magic)) return false;
  std::memcpy(&magic, data, sizeof(magic));
  return magic == kDeltaMagic;
}

bool read_delta_header(const char* data, std::size_t n, DeltaHeader& out) {
  Cursor c{data, n};
  return read_delta_header(c, out);
}

ByteBuf encode_chunk_delta(const char* base, std::size_t base_n,
                           const char* next, std::size_t next_n,
                           int64_t chunk_bytes) {
  return encode_chunk_delta(base, base_n, next, next_n, chunk_bytes,
                            blob_hash(base, base_n), blob_hash(next, next_n));
}

ByteBuf encode_chunk_delta(const char* base, std::size_t base_n,
                           const char* next, std::size_t next_n,
                           int64_t chunk_bytes, uint64_t base_hash,
                           uint64_t next_hash) {
  CHAM_CHECK(chunk_bytes > 0, "encode_chunk_delta: chunk_bytes must be > 0");
  const auto chunk = static_cast<std::size_t>(chunk_bytes);

  DeltaHeader h;
  h.kind = DeltaKind::kChunkDiff;
  h.base_hash = base_hash;
  h.base_len = base_n;
  h.next_hash = next_hash;
  h.next_len = next_n;

  ByteBuf out;
  // Worst case every chunk is dirty; reserving the ceiling keeps the encode
  // single-allocation (pool-recycled, same size class every eviction).
  const std::size_t nchunks = next_n == 0 ? 0 : (next_n - 1) / chunk + 1;
  out.reserve(64 + next_n + nchunks * sizeof(uint32_t));
  append_delta_header(out, h);
  append_pod(out, static_cast<uint32_t>(chunk));

  // Dirty-count placeholder, patched after the scan.
  const std::size_t count_pos = out.size();
  append_pod(out, uint32_t{0});

  uint32_t ndirty = 0;
  for (std::size_t i = 0; i < nchunks; ++i) {
    const std::size_t off = i * chunk;
    const std::size_t len = std::min(chunk, next_n - off);
    const bool clean = off + len <= base_n &&
                       std::memcmp(base + off, next + off, len) == 0;
    if (clean) continue;
    append_pod(out, static_cast<uint32_t>(i));
    out.insert(out.end(), next + off, next + off + len);
    ++ndirty;
  }
  std::memcpy(out.data() + count_pos, &ndirty, sizeof(ndirty));
  return out;
}

bool apply_chunk_delta(const char* base, std::size_t base_n,
                       const char* delta, std::size_t delta_n, ByteBuf& out) {
  Cursor c{delta, delta_n};
  DeltaHeader h;
  if (!read_delta_header(c, h) || h.kind != DeltaKind::kChunkDiff) {
    return false;
  }
  if (h.base_len != base_n || h.base_hash != blob_hash(base, base_n)) {
    return false;  // stale delta: it diffs against some other base blob
  }
  uint32_t chunk = 0, ndirty = 0;
  if (!c.read(chunk) || chunk == 0 || !c.read(ndirty)) return false;

  const auto next_n = static_cast<std::size_t>(h.next_len);
  out.assign(next_n, 0);
  // Start from the base (truncated/extended to the new length); dirty
  // chunks then overwrite their ranges.
  std::memcpy(out.data(), base, std::min(base_n, next_n));

  const std::size_t nchunks = next_n == 0 ? 0 : (next_n - 1) / chunk + 1;
  for (uint32_t k = 0; k < ndirty; ++k) {
    uint32_t idx = 0;
    if (!c.read(idx) || idx >= nchunks) return false;
    const std::size_t off = static_cast<std::size_t>(idx) * chunk;
    const std::size_t len = std::min<std::size_t>(chunk, next_n - off);
    if (c.left < len) return false;
    std::memcpy(out.data() + off, c.p, len);
    c.p += len;
    c.left -= len;
  }
  return blob_hash(out.data(), out.size()) == h.next_hash;
}

ByteBuf encode_op_log(const DeltaHeader& header,
                      const std::vector<data::ServeOp>& ops) {
  DeltaHeader h = header;
  h.kind = DeltaKind::kOpLog;
  ByteBuf out;
  append_delta_header(out, h);
  ByteBufWriter os(out);
  const bool ok = data::save_ops(ops, os);
  CHAM_CHECK(ok, "encode_op_log: op serialisation failed");
  return out;
}

bool read_op_log(const char* delta, std::size_t delta_n,
                 std::vector<data::ServeOp>& out) {
  Cursor c{delta, delta_n};
  DeltaHeader h;
  if (!read_delta_header(c, h) || h.kind != DeltaKind::kOpLog) return false;
  ByteBufReader is(c.p, c.left);
  return data::load_ops(out, is);
}

}  // namespace cham::core
