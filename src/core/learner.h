// Common interface for every continual learner (Chameleon and all baselines)
// plus the shared context they train in.
//
// All learners share one frozen backbone f through the LatentCache and own a
// private trainable head g. Accuracy (Table I), replay-memory bytes (Table I)
// and hardware cost (Table II) all derive from this one interface.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/op_stats.h"
#include "data/latent_cache.h"
#include "data/stream.h"
#include "nn/sequential.h"

namespace cham::core {

// Everything a learner needs from the environment. The head_factory builds a
// fresh trainable head g initialised with the pretrained weights; each
// learner owns its own copy so methods never interfere.
struct LearnerEnv {
  const data::DatasetConfig* data_cfg = nullptr;
  data::LatentCache* latents = nullptr;
  std::function<std::unique_ptr<nn::Sequential>()> head_factory;
  // Full pretrained network (f and g concatenated) for methods that train
  // every layer (ER, DER, GSS, EWC++, LwF, Finetune, Joint — as published).
  std::function<std::unique_ptr<nn::Sequential>()> full_net_factory;
  Shape latent_shape;          // C,H,W per sample
  int64_t f_fwd_macs = 0;      // backbone MACs per image
  int64_t net_fwd_macs = 0;    // full network MACs per image
  float lr = 0.001f;           // paper setting (SGD)
};

class ContinualLearner {
 public:
  virtual ~ContinualLearner() = default;

  // One online step on an incoming mini-batch (paper: batch size 10,
  // single pass).
  virtual void observe(const data::Batch& batch) = 0;

  // Predicted class for each key (evaluation path; uses the shared frozen
  // backbone via the latent cache).
  virtual std::vector<int64_t> predict(
      const std::vector<data::ImageKey>& keys) = 0;

  virtual std::string name() const = 0;

  // Replay / method-state overhead in bytes (Table I column).
  virtual int64_t memory_overhead_bytes() const = 0;

  const OpStats& stats() const { return stats_; }

 protected:
  OpStats stats_;
};

}  // namespace cham::core
