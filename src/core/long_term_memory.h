// Long-term (off-chip) replay store with class-prototype-based acquisition
// (paper Sec. III-D, Eqs. 5-6).
//
// The store is class-balanced: each class owns capacity/num_classes slots.
// Every h batches, for each class c present in the short-term store, the
// class prototype P_c (Eq. 5: mean latent of c's LT entries) is formed and
// the ST sample with the largest
//     S_j = tanh( KL( p(y|st_j) || p(y|P_c) ) )                    (Eq. 6)
// — the sample whose predictive distribution disagrees most with its class
// prototype, i.e. the most diverse/contrastive one — replaces a uniformly
// random same-class LT entry (Algorithm 1, lines 12-14).
#pragma once

#include <cmath>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "replay/sample.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "util/check.h"

namespace cham::core {

class LongTermMemory {
 public:
  // `predict_probs` maps a latent (1xCxHxW) to softmax probabilities under
  // the current head; supplied by the learner that owns g.
  using PredictFn = std::function<std::vector<float>(const Tensor&)>;

  LongTermMemory(int64_t capacity, int64_t num_classes)
      : capacity_(capacity),
        num_classes_(num_classes),
        per_class_quota_(std::max<int64_t>(1, capacity / num_classes)),
        slots_(static_cast<size_t>(num_classes)),
        cached_counts_(static_cast<size_t>(num_classes), 0),
        proto_sums_(static_cast<size_t>(num_classes)) {}

  int64_t capacity() const { return capacity_; }
  int64_t per_class_quota() const { return per_class_quota_; }
  int64_t size() const {
    int64_t n = 0;
    for (const auto& v : slots_) n += static_cast<int64_t>(v.size());
    return n;
  }
  int64_t class_count(int64_t c) const {
    return static_cast<int64_t>(slots_[static_cast<size_t>(c)].size());
  }
  const std::vector<replay::ReplaySample>& class_slots(int64_t c) const {
    return slots_[static_cast<size_t>(c)];
  }

  // Eq. 5: mean latent of class c's stored entries. Empty optional if the
  // class has no entries yet.
  std::optional<Tensor> prototype(int64_t c) const {
    const auto& v = slots_[static_cast<size_t>(c)];
    if (v.empty()) return std::nullopt;
    Tensor proto(v.front().latent.shape());
    for (const auto& s : v) proto += s.latent;
    proto *= 1.0f / static_cast<float>(v.size());
    return proto;
  }

  // Eq. 6 score for one candidate against its class prototype.
  static double prototype_divergence(std::span<const float> cand_probs,
                                     std::span<const float> proto_probs) {
    return std::tanh(cham::ops::kl_divergence(cand_probs, proto_probs));
  }

  // One LT update from the short-term store contents: greedily pick the
  // max-S_j ST sample per class and insert it (Algorithm 1 lines 12-14).
  // Returns the number of classes updated. If `proto_entries_read` is
  // non-null it receives the number of stored LT entries actually streamed
  // to form prototypes (Eq. 5 reads class_count(c) entries, which is below
  // per_class_quota() until the class slot fills) — the number the memory
  // traffic model must charge, not the quota.
  int64_t update_from(const std::vector<replay::ReplaySample>& st_samples,
                      const PredictFn& predict_probs, Rng& rng,
                      int64_t* proto_entries_read = nullptr) {
    // Group ST candidates by class.
    std::unordered_map<int64_t, std::vector<const replay::ReplaySample*>>
        by_class;
    for (const auto& s : st_samples) by_class[s.label].push_back(&s);

    int64_t updated = 0;
    if (proto_entries_read) *proto_entries_read = 0;
    for (auto& [cls, candidates] : by_class) {
      const replay::ReplaySample* best = candidates.front();
      // With a single candidate the prototype cannot change the choice, so
      // its entries are not read at all.
      if (candidates.size() > 1) {
        if (auto proto = prototype(cls)) {
          if (proto_entries_read) *proto_entries_read += class_count(cls);
          const auto proto_probs = predict_probs(*proto);
          double best_s = -1;
          for (const auto* cand : candidates) {
            const auto cand_probs = predict_probs(cand->latent);
            const double s = prototype_divergence(cand_probs, proto_probs);
            if (s > best_s) {
              best_s = s;
              best = cand;
            }
          }
        } else {
          // No prototype yet: any candidate is equally informative.
          best = candidates[static_cast<size_t>(
              rng.uniform_int(static_cast<int64_t>(candidates.size())))];
        }
      }
      insert(*best, rng);
      ++updated;
    }
    return updated;
  }

  // Class-balanced insertion: fill the class quota first, then replace a
  // uniformly random same-class entry. Maintains the redundant audit state
  // (cached count + running prototype sum) that check_invariants() verifies
  // against the stored entries.
  void insert(const replay::ReplaySample& sample, Rng& rng) {
    CHAM_CHECK(sample.label >= 0 && sample.label < num_classes_,
               "LT insert label " + std::to_string(sample.label) +
                   " out of " + std::to_string(num_classes_) + " classes");
    const auto cls = static_cast<size_t>(sample.label);
    auto& v = slots_[cls];
    auto& sum = proto_sums_[cls];
    if (sum.size() != static_cast<size_t>(sample.latent.numel())) {
      sum.assign(static_cast<size_t>(sample.latent.numel()), 0.0);
    }
    if (static_cast<int64_t>(v.size()) < per_class_quota_) {
      v.push_back(sample);
      ++cached_counts_[cls];
    } else {
      auto& victim = v[static_cast<size_t>(
          rng.uniform_int(static_cast<int64_t>(v.size())))];
      for (int64_t i = 0; i < victim.latent.numel(); ++i) {
        sum[static_cast<size_t>(i)] -= victim.latent[i];
      }
      victim = sample;
    }
    for (int64_t i = 0; i < sample.latent.numel(); ++i) {
      sum[static_cast<size_t>(i)] += sample.latent[i];
    }
  }

  // All stored entries (checkpointing; order: by class, then slot).
  std::vector<replay::ReplaySample> all_samples() const {
    std::vector<replay::ReplaySample> out;
    out.reserve(static_cast<size_t>(size()));
    for (const auto& v : slots_) {
      for (const auto& s : v) out.push_back(s);
    }
    return out;
  }

  void clear() {
    for (auto& v : slots_) v.clear();
    for (auto& c : cached_counts_) c = 0;
    for (auto& s : proto_sums_) s.clear();
  }

  // Stable coordinate of a stored entry: (class, slot index within the
  // class). Valid across later update_from calls — insert() only appends to
  // a class vector or overwrites a slot in place, never reorders or erases,
  // so a ref taken at staging time still names a live same-class entry at
  // consume time (possibly refreshed contents; the staged burst deliberately
  // re-reads whatever the slot holds now instead of a deep-copied snapshot).
  struct SlotRef {
    int32_t cls = 0;
    int32_t slot = 0;
  };

  const replay::ReplaySample& entry(SlotRef ref) const {
    CHAM_DCHECK(ref.cls >= 0 && ref.cls < num_classes_ &&
                    ref.slot >= 0 && ref.slot < class_count(ref.cls),
                "LT entry ref out of range");
    return slots_[static_cast<size_t>(ref.cls)][static_cast<size_t>(ref.slot)];
  }

  // Uniformly random minibatch of slot refs — the zero-copy counterpart of
  // sample(). Enumerates entries in the SAME class-major order and consumes
  // the SAME single sample_without_replacement draw, so switching a caller
  // between the two leaves the RNG stream bit-identical.
  std::vector<SlotRef> sample_refs(int64_t k, Rng& rng) const {
    std::vector<SlotRef> all;
    all.reserve(static_cast<size_t>(size()));
    for (size_t c = 0; c < slots_.size(); ++c) {
      for (size_t j = 0; j < slots_[c].size(); ++j) {
        all.push_back(SlotRef{static_cast<int32_t>(c),
                              static_cast<int32_t>(j)});
      }
    }
    if (all.empty()) return {};
    const auto idx = rng.sample_without_replacement(
        static_cast<int64_t>(all.size()),
        std::min<int64_t>(k, static_cast<int64_t>(all.size())));
    std::vector<SlotRef> out;
    out.reserve(idx.size());
    for (int64_t i : idx) out.push_back(all[static_cast<size_t>(i)]);
    return out;
  }

  // Uniformly random minibatch across all stored entries.
  std::vector<const replay::ReplaySample*> sample(int64_t k, Rng& rng) const {
    std::vector<const replay::ReplaySample*> all;
    all.reserve(static_cast<size_t>(size()));
    for (const auto& v : slots_) {
      for (const auto& s : v) all.push_back(&s);
    }
    if (all.empty()) return {};
    const auto idx = rng.sample_without_replacement(
        static_cast<int64_t>(all.size()),
        std::min<int64_t>(k, static_cast<int64_t>(all.size())));
    std::vector<const replay::ReplaySample*> out;
    out.reserve(idx.size());
    for (int64_t i : idx) out.push_back(all[static_cast<size_t>(i)]);
    return out;
  }

  // Structural audit (paper Sec. III-D): per-class occupancy within the
  // balanced quota, every entry filed under its own label with a live latent,
  // and the redundant state maintained by insert() — cached counts and
  // running prototype sums (Eq. 5 numerators) — consistent with the entries
  // actually stored. A divergence means some path mutated the store without
  // going through insert()/clear(), exactly the class of silent
  // buffer-management bug that corrupts accuracy without crashing.
  util::AuditReport check_invariants() const {
    util::AuditReport report;
    for (int64_t c = 0; c < num_classes_; ++c) {
      const auto ci = static_cast<size_t>(c);
      const auto& v = slots_[ci];
      const auto n = static_cast<int64_t>(v.size());
      if (n > per_class_quota_) {
        report.fail("LongTermMemory: class " + std::to_string(c) + " holds " +
                    std::to_string(n) + " entries over quota " +
                    std::to_string(per_class_quota_));
      }
      if (cached_counts_[ci] != n) {
        report.fail("LongTermMemory: class " + std::to_string(c) +
                    " cached count " + std::to_string(cached_counts_[ci]) +
                    " != stored " + std::to_string(n));
      }
      std::vector<double> sum;
      for (const auto& s : v) {
        if (s.label != c) {
          report.fail("LongTermMemory: entry labelled " +
                      std::to_string(s.label) + " filed under class " +
                      std::to_string(c));
        }
        if (s.latent.empty()) {
          report.fail("LongTermMemory: dangling latent under class " +
                      std::to_string(c));
          continue;
        }
        if (sum.empty()) sum.resize(static_cast<size_t>(s.latent.numel()), 0.0);
        if (static_cast<int64_t>(sum.size()) != s.latent.numel()) {
          report.fail("LongTermMemory: latent shape mismatch under class " +
                      std::to_string(c));
          continue;
        }
        for (int64_t i = 0; i < s.latent.numel(); ++i) {
          sum[static_cast<size_t>(i)] += s.latent[i];
        }
      }
      // Prototype consistency: cached sum / count == mean of live entries
      // within tolerance (incremental double accumulation drifts by far less).
      if (!v.empty()) {
        const auto& cached = proto_sums_[ci];
        if (cached.size() != sum.size()) {
          report.fail("LongTermMemory: class " + std::to_string(c) +
                      " prototype sum has wrong length");
        } else {
          for (size_t i = 0; i < sum.size(); ++i) {
            const double diff = std::abs(cached[i] - sum[i]);
            if (diff > 1e-3 * (1.0 + std::abs(sum[i]))) {
              report.fail(
                  "LongTermMemory: class " + std::to_string(c) +
                  " prototype diverges from mean of live entries at index " +
                  std::to_string(i) + " (cached " + std::to_string(cached[i]) +
                  " vs recomputed " + std::to_string(sum[i]) + ")");
              break;
            }
          }
        }
      }
    }
    return report;
  }

  // Test-only corruption hooks: give contract tests a way to damage the
  // redundant audit state without routing through insert(), proving the
  // audit actually detects prototype / count divergence.
  std::vector<double>& mutable_prototype_sum_for_test(int64_t c) {
    return proto_sums_[static_cast<size_t>(c)];
  }
  int64_t& mutable_cached_count_for_test(int64_t c) {
    return cached_counts_[static_cast<size_t>(c)];
  }

 private:
  int64_t capacity_, num_classes_, per_class_quota_;
  std::vector<std::vector<replay::ReplaySample>> slots_;  // per class
  // Redundant audit state maintained by insert()/clear(): per-class entry
  // counts and running latent sums (Eq. 5 prototype numerators).
  std::vector<int64_t> cached_counts_;
  std::vector<std::vector<double>> proto_sums_;
};

}  // namespace cham::core
