// Short-term (on-chip) replay store with user-aware uncertainty sampling
// (paper Sec. III-C, Eqs. 3-4).
//
// Once per incoming batch, ONE element is selected with probability
//   p_i  ∝  alpha * Delta_i / Z_batch  +  beta * U_i^{-1}          (Eq. 4)
// where Delta_i is the preference allocation weight (Eq. 2), Z_batch the
// batch normaliser of those weights, and U_i = |o(x_i)_{y_i}| the true-class
// logit magnitude (Eq. 3 with one-hot y): low |logit| means the sample sits
// near the decision boundary and should be rehearsed, hence the inverse.
// The selected element replaces a uniformly random ST slot (Algorithm 1,
// lines 8-10).
#pragma once

#include <span>
#include <string>

#include "core/preference_tracker.h"
#include "quant/quantize.h"
#include "replay/buffer.h"
#include "util/check.h"

namespace cham::core {

struct StSamplingConfig {
  float alpha = 1.0f;  // weight of the user-affinity term
  float beta = 1.0f;   // weight of the uncertainty term
};

class ShortTermMemory {
 public:
  ShortTermMemory(int64_t capacity, StSamplingConfig cfg)
      : store_(capacity), cfg_(cfg) {}

  // Eq. 3: per-sample uncertainty scores from logits (N x C) and labels,
  // written into caller-owned storage (resized to labels.size()). The
  // steady-state update() path routes through this so repeat batches reuse
  // scratch capacity instead of allocating.
  static void uncertainty_scores_into(const Tensor& logits,
                                      std::span<const int64_t> labels,
                                      std::vector<double>& u) {
    u.resize(labels.size());
    for (size_t i = 0; i < labels.size(); ++i) {
      u[i] = std::abs(
          logits.at(static_cast<int64_t>(i), labels[i]));
    }
  }
  static std::vector<double> uncertainty_scores(
      const Tensor& logits, std::span<const int64_t> labels) {
    std::vector<double> u;
    uncertainty_scores_into(logits, labels, u);
    return u;
  }

  // Eq. 4 selection probabilities over the incoming batch.
  void selection_probabilities_into(std::span<const int64_t> labels,
                                    std::span<const double> uncertainty,
                                    const PreferenceTracker& prefs,
                                    std::vector<double>& p) const {
    const size_t n = labels.size();
    double z_batch = 0;
    for (size_t i = 0; i < n; ++i) z_batch += prefs.delta(labels[i]);
    if (z_batch <= 0) z_batch = 1.0;

    constexpr double kEps = 1e-6;
    p.resize(n);
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      const double affinity = prefs.delta(labels[i]) / z_batch;
      const double inv_u = 1.0 / (uncertainty[i] + kEps);
      p[i] = cfg_.alpha * affinity + cfg_.beta * inv_u;
      total += p[i];
    }
    if (total > 0) {
      for (double& v : p) v /= total;
    } else {
      std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n));
    }
  }
  std::vector<double> selection_probabilities(
      std::span<const int64_t> labels, std::span<const double> uncertainty,
      const PreferenceTracker& prefs) const {
    std::vector<double> p;
    selection_probabilities_into(labels, uncertainty, prefs, p);
    return p;
  }

  // Full update for one incoming batch: select one element by Eq. 4 and
  // replace a random ST slot. Returns the index selected from the batch.
  //
  // Zero-copy entry: the incoming batch arrives as parallel spans (keys,
  // labels, per-sample latent row pointers of `latent_shape` elements each)
  // and `logits` may be the FULL training logits — Eq. 3 reads only the
  // first labels.size() rows, so no per-step row copy is needed. The Eq. 4
  // winner (and only the winner) passes through `precision` on its way into
  // the store, which stores the same bits as quantising every candidate
  // up front — selection depends on logits alone.
  int64_t update(std::span<const data::ImageKey> keys,
                 std::span<const int64_t> labels,
                 std::span<const float* const> latents,
                 const Shape& latent_shape, const Tensor& logits,
                 const PreferenceTracker& prefs, Rng& rng,
                 quant::Precision precision = quant::Precision::kFp32) {
    CHAM_CHECK(keys.size() == labels.size() && keys.size() == latents.size(),
               "ShortTermMemory::update: span length mismatch");
    CHAM_CHECK(!keys.empty(), "ShortTermMemory::update: empty batch");
    uncertainty_scores_into(logits, labels, u_scratch_);
    selection_probabilities_into(labels, u_scratch_, prefs, p_scratch_);
    int64_t pick = rng.sample_weighted(p_scratch_);
    if (pick < 0) pick = rng.uniform_int(static_cast<int64_t>(keys.size()));
    const auto pi = static_cast<size_t>(pick);
    if (precision == quant::Precision::kFp32) {
      store_.random_replace_add(keys[pi], labels[pi], latent_shape,
                                latents[pi], rng);
    } else {
      quant_scratch_ = Tensor(latent_shape);
      std::memcpy(quant_scratch_.data(), latents[pi],
                  static_cast<size_t>(latent_shape.numel()) * sizeof(float));
      const Tensor q = quant::decode(quant::encode(quant_scratch_, precision));
      store_.random_replace_add(keys[pi], labels[pi], latent_shape, q.data(),
                                rng);
    }
    return pick;
  }

  // Compatibility wrapper over materialised samples (tests/bench). Same
  // scoring, selection, and RNG draw order as the span entry.
  int64_t update(const std::vector<replay::ReplaySample>& batch,
                 const Tensor& logits, const PreferenceTracker& prefs,
                 Rng& rng) {
    labels_scratch_.resize(batch.size());
    rows_scratch_.resize(batch.size());
    keys_scratch_.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      labels_scratch_[i] = batch[i].label;
      rows_scratch_[i] = batch[i].latent.data();
      keys_scratch_[i] = batch[i].key;
    }
    return update(keys_scratch_, labels_scratch_, rows_scratch_,
                  batch.front().latent.shape(), logits, prefs, rng);
  }

  const replay::SlotStore& store() const { return store_; }
  replay::SlotStore& store() { return store_; }
  int64_t size() const { return store_.size(); }
  int64_t capacity() const { return store_.capacity(); }

  // Structural audit: occupancy within capacity, the stream counter at
  // least as large as the occupancy, and no dangling slots — an occupied
  // store must have configured row geometry (Chameleon is a latent-replay
  // method; an unconfigured slab here would train the head on garbage) and
  // non-negative labels. Shape consistency per slot is structural now: all
  // rows share the slab geometry by construction.
  util::AuditReport check_invariants() const {
    util::AuditReport report;
    if (size() > capacity()) {
      report.fail("ShortTermMemory: size " + std::to_string(size()) +
                  " exceeds capacity " + std::to_string(capacity()));
    }
    if (store_.seen() < size()) {
      report.fail("ShortTermMemory: seen " + std::to_string(store_.seen()) +
                  " below occupancy " + std::to_string(size()));
    }
    if (size() > 0 && !store_.configured()) {
      report.fail("ShortTermMemory: occupied store has no row geometry");
    }
    for (int64_t i = 0; i < size(); ++i) {
      if (store_.label(i) < 0) {
        report.fail("ShortTermMemory: negative label in slot " +
                    std::to_string(i));
      }
    }
    return report;
  }

 private:
  replay::SlotStore store_;
  StSamplingConfig cfg_;
  // update() scratch, reused across batches (steady-state allocation-free).
  std::vector<int64_t> labels_scratch_;
  std::vector<double> u_scratch_, p_scratch_;
  std::vector<const float*> rows_scratch_;
  std::vector<data::ImageKey> keys_scratch_;
  Tensor quant_scratch_;
};

}  // namespace cham::core
