// Human-readable pipeline summary: one row per layer with parameter count
// and per-sample MACs — the torchsummary-style view users expect when
// sizing a model for a device.
#pragma once

#include <sstream>
#include <string>

#include "nn/sequential.h"

namespace cham::nn {

inline std::string summarize(Sequential& net, const std::string& title) {
  std::ostringstream os;
  os << title << "\n";
  os << "  #   layer              params      MACs/sample\n";
  int64_t total_params = 0, total_macs = 0;
  for (int64_t i = 0; i < net.size(); ++i) {
    Layer& l = net.layer(i);
    const int64_t params = l.param_count();
    const int64_t macs = l.macs_per_sample();
    total_params += params;
    total_macs += macs;
    char row[96];
    std::snprintf(row, sizeof(row), "  %-3lld %-18s %-11lld %lld\n",
                  static_cast<long long>(i), l.name().c_str(),
                  static_cast<long long>(params),
                  static_cast<long long>(macs));
    os << row;
  }
  char footer[96];
  std::snprintf(footer, sizeof(footer),
                "  total: %lld params, %.2f MMACs/sample\n",
                static_cast<long long>(total_params),
                static_cast<double>(total_macs) / 1e6);
  os << footer;
  return os.str();
}

}  // namespace cham::nn
