// MobileNetV1 builder (Howard et al., 2017) with width multiplier, plus the
// latent split used by Latent Replay and Chameleon.
//
// The paper counts 27 "layers": the initial full convolution, 13 depthwise /
// pointwise pairs (26), and chooses conv layer 21 (the pointwise convolution
// of block 10) as the latent layer. We reproduce that numbering exactly:
// conv-like layer k (1-based) maps to a (conv, bn, relu) unit in the
// Sequential, and split_at_conv_layer(21) returns the frozen feature
// extractor f (units 1..21) and trainable head g (units 22..27 + pool + FC).
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/sequential.h"

namespace cham::nn {

struct MobileNetConfig {
  int64_t input_hw = 32;       // square input resolution
  int64_t input_channels = 3;
  float width_mult = 0.5f;     // alpha
  int64_t num_classes = 50;
  float bn_momentum = 0.1f;

  // Paper setting: layer 21 of 27.
  int64_t latent_conv_layer = 21;
};

// A built network plus the bookkeeping needed to split it at a conv layer.
struct MobileNetV1 {
  MobileNetConfig config;
  std::unique_ptr<Sequential> net;
  // unit_end[k] = index (exclusive) in `net` of the last sub-layer of
  // conv-like layer k+1; unit_end.size() == 27 for the standard net.
  std::vector<int64_t> unit_end;
  // Output activation shape (C, H, W) after each conv-like unit.
  std::vector<Shape> unit_out_shape;

  int64_t conv_layer_count() const {
    return static_cast<int64_t>(unit_end.size());
  }
  // Latent activation shape (C,H,W) after conv layer `k` (1-based).
  const Shape& shape_after(int64_t k) const {
    return unit_out_shape[static_cast<size_t>(k - 1)];
  }
};

// `init_weights=false` skips every He weight draw (weights left zero): the
// right mode when the caller immediately overwrites all parameters via
// copy_params/load_params. The serving runtime materialises a head per
// session create/restore, and the normal-draw loop dominated that path.
MobileNetV1 build_mobilenet_v1(const MobileNetConfig& cfg, Rng& rng,
                               bool init_weights = true);

// Destructively splits `model.net` after conv-like layer `conv_layer`.
struct SplitModel {
  std::unique_ptr<Sequential> f;  // frozen feature extractor
  std::unique_ptr<Sequential> g;  // trainable head (ends in the classifier)
  Shape latent_shape;             // C,H,W of f's output per sample
  int64_t latent_dim = 0;         // flattened size
};
SplitModel split_at_conv_layer(MobileNetV1&& model, int64_t conv_layer);

// Freezes BatchNorm running statistics in a pipeline (on-device CL practice:
// normalisation statistics stay at their pretrained values; affine params
// still train).
void freeze_batchnorm_stats(Sequential& net);

// Deep-copies parameter values from `src` into `dst` (same architecture).
void copy_params(const Sequential& src, Sequential& dst);

// Same, but skips the final Linear classifier — used to transfer a backbone
// pretrained with a different class count (the ImageNet-to-task swap).
void copy_params_except_classifier(const Sequential& src, Sequential& dst);

// He-reinitialises the final Linear classifier (weights) and zeroes its
// bias — the "swap the pretrained classifier for the task head" step.
void reinit_classifier(Sequential& net, Rng& rng);

}  // namespace cham::nn
