// Concrete layers for MobileNetV1-style CNNs: standard and depthwise
// convolutions, batch normalisation, activations, pooling, linear.
// All convolutions are square-kernel, NCHW, zero-padded.
#pragma once

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace cham::nn {

// Standard convolution lowered to GEMM via im2col (per sample).
class Conv2d : public Layer {
 public:
  // `init=false` skips the He weight draw (leaves weights zero) for nets
  // whose parameters are about to be overwritten by copy_params — the
  // normal-draw loop dominates network construction cost otherwise.
  Conv2d(int64_t in_c, int64_t out_c, int64_t in_h, int64_t in_w,
         int64_t kernel, int64_t stride, int64_t pad, bool bias, Rng& rng,
         bool init = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_gather(const GatherBatch& gb, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Conv2d"; }
  int64_t macs_per_sample() const override;
  bool is_conv_like() const override { return true; }

  const ConvGeometry& geometry() const { return geo_; }
  int64_t out_channels() const { return out_c_; }

 private:
  // Base pointer of cached sample n for the backward pass: a row pointer
  // after a gathered train forward, a slice of the cached tensor otherwise.
  const float* cached_sample(int64_t n) const;
  int64_t cached_batch() const;

  ConvGeometry geo_;
  int64_t out_c_;
  bool has_bias_;
  Param weight_;  // out_c x (in_c*k*k)
  Param bias_;    // out_c
  Tensor cached_input_;
  // Train-mode forward_gather caches the caller's row pointers instead of
  // deep-copying the batch; the caller keeps rows valid through backward.
  std::vector<const float*> cached_rows_;
  bool cached_gather_ = false;
  // Column-pointer scratch of the gathered pointwise forward (capacity is
  // reused across steps, so the steady state allocates nothing).
  std::vector<const float*> colptr_scratch_;
};

// Depthwise convolution: one k x k filter per channel.
class DepthwiseConv2d : public Layer {
 public:
  DepthwiseConv2d(int64_t channels, int64_t in_h, int64_t in_w, int64_t kernel,
                  int64_t stride, int64_t pad, Rng& rng, bool init = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_gather(const GatherBatch& gb, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_}; }
  std::string name() const override { return "DepthwiseConv2d"; }
  int64_t macs_per_sample() const override;
  bool is_conv_like() const override { return true; }

  const ConvGeometry& geometry() const { return geo_; }

 private:
  const float* cached_sample(int64_t n) const;
  int64_t cached_batch() const;

  ConvGeometry geo_;  // in_c == channels
  Param weight_;      // channels x k x k (stored flat channels x k*k)
  Tensor cached_input_;
  std::vector<const float*> cached_rows_;
  bool cached_gather_ = false;
};

// Batch normalisation over channels of an NCHW tensor.
//
// During continual learning the framework runs BN in eval mode (running
// statistics frozen after pretraining, affine gamma/beta still trainable) —
// standard practice for batch-size-1 on-device training. Train mode computes
// full batch statistics with the exact batch backward.
class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(int64_t channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::string name() const override { return "BatchNorm2d"; }

  // Freeze running statistics (used when the backbone is frozen).
  void set_track_running_stats(bool track) { track_stats_ = track; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Tensor& mutable_running_mean() { return running_mean_; }
  Tensor& mutable_running_var() { return running_var_; }

 private:
  int64_t channels_;
  float momentum_, eps_;
  bool track_stats_ = true;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // Cached for backward.
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // per-channel
  bool cached_train_mode_ = false;
};

class ReLU : public Layer {
 public:
  explicit ReLU(float clip = 0.0f) : clip_(clip) {}  // clip>0 => ReLU-N
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return clip_ > 0 ? "ReLU6" : "ReLU"; }

 private:
  float clip_;
  // One byte per element recording whether the gradient passes — all the
  // backward needs. Replaces a full deep copy of the input (4x the bytes
  // and a second traversal), recorded during the forward pass itself.
  std::vector<uint8_t, ws::PoolAllocator<uint8_t>> mask_;
};

// Global average pooling: NCHW -> NxC.
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_gather(const GatherBatch& gb, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_in_shape_;
};

// Fully connected layer on NxD inputs.
class Linear : public Layer {
 public:
  Linear(int64_t in_dim, int64_t out_dim, Rng& rng, bool init = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_gather(const GatherBatch& gb, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }
  int64_t macs_per_sample() const override { return in_dim_ * out_dim_; }
  bool is_conv_like() const override { return true; }  // counts as FC "layer"

  int64_t in_dim() const { return in_dim_; }
  int64_t out_dim() const { return out_dim_; }

 private:
  int64_t in_dim_, out_dim_;
  Param weight_;  // out x in
  Param bias_;    // out
  Tensor cached_input_;
  std::vector<const float*> cached_rows_;
  bool cached_gather_ = false;
};

}  // namespace cham::nn
