#include "nn/model_io.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "nn/layers.h"

namespace cham::nn {
namespace {

constexpr uint64_t kMagic = 0x4348414D4E4E3031ull;  // "CHAMNN01"

// Collects every tensor that must round-trip: parameter values plus BN
// running statistics, in pipeline order.
std::vector<Tensor*> state_tensors(Sequential& net) {
  std::vector<Tensor*> out;
  for (int64_t i = 0; i < net.size(); ++i) {
    Layer& l = net.layer(i);
    for (Param* p : l.params()) out.push_back(&p->value);
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) {
      out.push_back(&bn->mutable_running_mean());
      out.push_back(&bn->mutable_running_var());
    }
  }
  return out;
}

}  // namespace

bool save_params(const Sequential& net, std::ostream& os) {
  auto tensors = state_tensors(const_cast<Sequential&>(net));
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const uint64_t count = tensors.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (Tensor* t : tensors) {
    const uint64_t n = static_cast<uint64_t>(t->numel());
    os.write(reinterpret_cast<const char*>(&n), sizeof(n));
    os.write(reinterpret_cast<const char*>(t->data()),
             static_cast<std::streamsize>(n * sizeof(float)));
  }
  return os.good();
}

bool load_params(Sequential& net, std::istream& is) {
  auto tensors = state_tensors(net);
  uint64_t magic = 0, count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is.good() || magic != kMagic || count != tensors.size()) return false;
  for (Tensor* t : tensors) {
    uint64_t n = 0;
    is.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!is.good() || n != static_cast<uint64_t>(t->numel())) return false;
    is.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(n * sizeof(float)));
  }
  return is.good();
}

bool save_params(const Sequential& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  return f && save_params(net, f);
}

bool load_params(Sequential& net, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return f && load_params(net, f);
}

}  // namespace cham::nn
