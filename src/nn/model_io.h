// Binary parameter serialisation. Used to cache the pretrained backbone so
// every benchmark does not repeat pretraining. The format stores Param
// tensors in pipeline order plus BatchNorm running statistics.
#pragma once

#include <string>

#include "nn/sequential.h"

namespace cham::nn {

// Returns false on I/O failure or architecture mismatch.
bool save_params(const Sequential& net, const std::string& path);
bool load_params(Sequential& net, const std::string& path);

}  // namespace cham::nn
