// Binary parameter serialisation. Used to cache the pretrained backbone so
// every benchmark does not repeat pretraining. The format stores Param
// tensors in pipeline order plus BatchNorm running statistics.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "nn/sequential.h"

namespace cham::nn {

// Returns false on I/O failure or architecture mismatch.
bool save_params(const Sequential& net, const std::string& path);
bool load_params(Sequential& net, const std::string& path);

// Stream variants, for embedding the parameter block inside a larger
// artefact (the learner-state checkpoints in core/checkpoint.h store head
// weights inline so a session is a single blob). Same format as the file
// variants, which delegate here.
bool save_params(const Sequential& net, std::ostream& os);
bool load_params(Sequential& net, std::istream& is);

}  // namespace cham::nn
