#include "nn/layers.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/thread_pool.h"
#include "tensor/workspace.h"

#include "util/check.h"

namespace cham::nn {
namespace {

// He-normal initialisation for convolution / linear weights.
void he_init(Tensor& w, int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal_f(0.0f, stddev);
}

// A 1x1 stride-1 unpadded convolution is a plain channel-mixing GEMM: the
// im2col column matrix of such a conv IS the input plane (in_c x pixels),
// so both forward and backward skip the expansion and the scratch matrix.
// MobileNet spends most of its MACs in these pointwise convs.
bool is_pointwise(const ConvGeometry& g) {
  return g.kernel == 1 && g.stride == 1 && g.pad == 0;
}

constexpr int64_t kElemGrain = 16384;

}  // namespace

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(int64_t in_c, int64_t out_c, int64_t in_h, int64_t in_w,
               int64_t kernel, int64_t stride, int64_t pad, bool bias,
               Rng& rng, bool init)
    : geo_{in_c, in_h, in_w, kernel, stride, pad},
      out_c_(out_c),
      has_bias_(bias),
      weight_(Shape{{out_c, in_c * kernel * kernel}}),
      bias_(Shape{{out_c}}) {
  if (init) he_init(weight_.value, in_c * kernel * kernel, rng);
}

int64_t Conv2d::macs_per_sample() const {
  return out_c_ * geo_.col_rows() * geo_.col_cols();
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  CHAM_CHECK(x.rank() == 4 && x.dim(1) == geo_.in_c && x.dim(2) == geo_.in_h &&
                 x.dim(3) == geo_.in_w,
             "Conv2d input " + x.shape().to_string());
  if (train) {
    cached_input_ = x;
    cached_gather_ = false;
  }
  const int64_t batch = x.dim(0);
  const int64_t oh = geo_.out_h(), ow = geo_.out_w();
  const int64_t opix = oh * ow;
  const int64_t ipix = geo_.in_h * geo_.in_w;
  Tensor out({batch, out_c_, oh, ow});
  const auto add_bias = [&](int64_t n) {
    for (int64_t c = 0; c < out_c_; ++c) {
      float* plane = out.data() + (n * out_c_ + c) * opix;
      const float b = bias_.value[c];
      for (int64_t i = 0; i < opix; ++i) plane[i] += b;
    }
  };
  // Pointwise convs merge the whole batch into ONE gemm along the column
  // dimension: column (n, p) of the concatenated operand is pixel p of
  // sample n, so C[c][(n,p)] accumulates the same k-ascending fma chain as
  // the per-sample call — bit-identical output, but the weight panel is
  // packed once per row chunk instead of once per sample, and the kernel
  // sees n = batch*opix wide tiles instead of the n = opix (often 1..4)
  // slivers that defeat the SIMD path.
  if (is_pointwise(geo_)) {
    if (batch == 1) {
      // Plane layout already matches the merged operand: zero-copy.
      gemm(out_c_, opix, geo_.in_c, 1.0f, weight_.value.data(), x.data(),
           0.0f, out.data());
      if (has_bias_) add_bias(0);
      return out;
    }
    const int64_t cols = batch * opix;
    ws::ArenaScope scratch;
    float* xcat = scratch.floats(static_cast<size_t>(geo_.in_c * cols));
    float* ocat = scratch.floats(static_cast<size_t>(out_c_ * cols));
    const int64_t row_grain = (kElemGrain + cols - 1) / cols;
    // Gather x[n][c][:] -> xcat[c][n*opix..]: disjoint rows per chunk.
    parallel_for(
        0, geo_.in_c,
        [&](int64_t c0, int64_t c1) {
          for (int64_t c = c0; c < c1; ++c) {
            for (int64_t n = 0; n < batch; ++n) {
              std::memcpy(xcat + c * cols + n * opix,
                          x.data() + (n * geo_.in_c + c) * ipix,
                          static_cast<size_t>(opix) * sizeof(float));
            }
          }
        },
        row_grain);
    gemm(out_c_, cols, geo_.in_c, 1.0f, weight_.value.data(), xcat, 0.0f,
         ocat);
    // Scatter ocat[c][n*opix..] -> out[n][c][:], folding the bias add.
    parallel_for(
        0, out_c_,
        [&](int64_t c0, int64_t c1) {
          for (int64_t c = c0; c < c1; ++c) {
            const float b = has_bias_ ? bias_.value[c] : 0.0f;
            for (int64_t n = 0; n < batch; ++n) {
              const float* src = ocat + c * cols + n * opix;
              float* dst = out.data() + (n * out_c_ + c) * opix;
              if (has_bias_) {
                for (int64_t i = 0; i < opix; ++i) dst[i] = src[i] + b;
              } else {
                std::memcpy(dst, src,
                            static_cast<size_t>(opix) * sizeof(float));
              }
            }
          }
        },
        row_grain);
    return out;
  }
  const auto body = [&](int64_t n0, int64_t n1) {
    ws::ArenaScope scratch;
    float* col =
        scratch.floats(static_cast<size_t>(geo_.col_rows() * geo_.col_cols()));
    for (int64_t n = n0; n < n1; ++n) {
      im2col(x.data() + n * geo_.in_c * ipix, geo_, col);
      gemm(out_c_, geo_.col_cols(), geo_.col_rows(), 1.0f,
           weight_.value.data(), col, 0.0f, out.data() + n * out_c_ * opix);
      if (has_bias_) add_bias(n);
    }
  };
  if (batch == 1) {
    body(0, 1);
  } else {
    parallel_for(0, batch, body);
  }
  return out;
}

Tensor Conv2d::forward_gather(const GatherBatch& gb, bool train) {
  const int64_t ipix = geo_.in_h * geo_.in_w;
  CHAM_CHECK(gb.sample_numel() == geo_.in_c * ipix,
             "Conv2d gathered sample " + gb.sample_shape.to_string());
  if (train) {
    cached_rows_.assign(gb.rows, gb.rows + gb.n);
    cached_gather_ = true;
    cached_input_ = Tensor();
  }
  const int64_t batch = gb.n;
  const int64_t oh = geo_.out_h(), ow = geo_.out_w();
  const int64_t opix = oh * ow;
  Tensor out({batch, out_c_, oh, ow});
  const auto add_bias = [&](int64_t n) {
    for (int64_t c = 0; c < out_c_; ++c) {
      float* plane = out.data() + (n * out_c_ + c) * opix;
      const float b = bias_.value[c];
      for (int64_t i = 0; i < opix; ++i) plane[i] += b;
    }
  };
  if (is_pointwise(geo_)) {
    if (batch == 1) {
      // A single gathered sample is already one contiguous plane.
      gemm(out_c_, opix, geo_.in_c, 1.0f, weight_.value.data(), gb.rows[0],
           0.0f, out.data());
      if (has_bias_) add_bias(0);
      return out;
    }
    // Same merged single-GEMM as the dense path, but the concatenated
    // operand is never materialised: column (n, p) of the logical xcat
    // reads sample n's plane in place through the column-gather pack.
    // Values and accumulation order match the dense path exactly.
    const int64_t cols = batch * opix;
    colptr_scratch_.resize(static_cast<size_t>(cols));
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t p = 0; p < opix; ++p) {
        colptr_scratch_[static_cast<size_t>(n * opix + p)] = gb.rows[n] + p;
      }
    }
    ws::ArenaScope scratch;
    float* ocat = scratch.floats(static_cast<size_t>(out_c_ * cols));
    gemm_gather_cols(out_c_, cols, geo_.in_c, 1.0f, weight_.value.data(),
                     colptr_scratch_.data(), ipix, 0.0f, ocat);
    const int64_t row_grain = (kElemGrain + cols - 1) / cols;
    parallel_for(
        0, out_c_,
        [&](int64_t c0, int64_t c1) {
          for (int64_t c = c0; c < c1; ++c) {
            const float b = has_bias_ ? bias_.value[c] : 0.0f;
            for (int64_t n = 0; n < batch; ++n) {
              const float* src = ocat + c * cols + n * opix;
              float* dst = out.data() + (n * out_c_ + c) * opix;
              if (has_bias_) {
                for (int64_t i = 0; i < opix; ++i) dst[i] = src[i] + b;
              } else {
                std::memcpy(dst, src,
                            static_cast<size_t>(opix) * sizeof(float));
              }
            }
          }
        },
        row_grain);
    return out;
  }
  // General path: per-sample im2col reads the gathered plane in place.
  const auto body = [&](int64_t n0, int64_t n1) {
    ws::ArenaScope scratch;
    float* col =
        scratch.floats(static_cast<size_t>(geo_.col_rows() * geo_.col_cols()));
    for (int64_t n = n0; n < n1; ++n) {
      im2col(gb.rows[n], geo_, col);
      gemm(out_c_, geo_.col_cols(), geo_.col_rows(), 1.0f,
           weight_.value.data(), col, 0.0f, out.data() + n * out_c_ * opix);
      if (has_bias_) add_bias(n);
    }
  };
  if (batch == 1) {
    body(0, 1);
  } else {
    parallel_for(0, batch, body);
  }
  return out;
}

const float* Conv2d::cached_sample(int64_t n) const {
  return cached_gather_
             ? cached_rows_[static_cast<size_t>(n)]
             : cached_input_.data() + n * geo_.in_c * geo_.in_h * geo_.in_w;
}

int64_t Conv2d::cached_batch() const {
  return cached_gather_ ? static_cast<int64_t>(cached_rows_.size())
                        : cached_input_.dim(0);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  CHAM_CHECK(!cached_input_.empty() || cached_gather_,
             "backward without train-mode forward");
  const int64_t batch = cached_batch();
  const int64_t oh = geo_.out_h(), ow = geo_.out_w();
  const int64_t opix = oh * ow;
  CHAM_CHECK(grad_out.rank() == 4 && grad_out.dim(1) == out_c_,
             "Conv2d grad " + grad_out.shape().to_string());

  Tensor grad_in;
  if (needs_input_grad_) {
    grad_in = Tensor({batch, geo_.in_c, geo_.in_h, geo_.in_w});
  }
  const int64_t ipix = geo_.in_h * geo_.in_w;
  const auto add_bias_grad = [&](const float* go) {
    for (int64_t c = 0; c < out_c_; ++c) {
      double acc = 0;
      for (int64_t i = 0; i < opix; ++i) acc += go[c * opix + i];
      bias_.grad[c] += static_cast<float>(acc);
    }
  };
  // The batch loop stays serial: dW accumulates across samples and its
  // per-element summation order must not depend on the thread count. The
  // parallelism lives inside the gemms (and col2im), which split rows.
  if (is_pointwise(geo_)) {
    // The column matrix is the input plane, so dW and dX come straight
    // from the operands: no im2col, no gcol, no col2im scatter. The batch
    // is merged into single gemms along the contraction (dW) and column
    // (dX) dimensions: the merged k axis of dW runs n-major/pixel-minor,
    // which is exactly the order the per-sample accumulation chained
    // through the C slot, so gradients are bit-identical to the sample
    // loop (and to the im2col path). Eliding the input gradient drops the
    // dX gemm and its scatter without touching the dW accumulation.
    const int64_t cols = batch * opix;
    if (batch == 1) {
      const float* go = grad_out.data();
      gemm_a_bt(out_c_, geo_.in_c, opix, 1.0f, go, cached_sample(0), 1.0f,
                weight_.grad.data());
      if (needs_input_grad_) {
        gemm_at_b(geo_.in_c, opix, out_c_, 1.0f, weight_.value.data(), go,
                  0.0f, grad_in.data());
      }
      if (has_bias_) add_bias_grad(go);
      return grad_in;
    }
    ws::ArenaScope scratch;
    float* gocat = scratch.floats(static_cast<size_t>(out_c_ * cols));
    float* xcat = scratch.floats(static_cast<size_t>(geo_.in_c * cols));
    const int64_t row_grain = (kElemGrain + cols - 1) / cols;
    parallel_for(
        0, out_c_,
        [&](int64_t c0, int64_t c1) {
          for (int64_t c = c0; c < c1; ++c) {
            for (int64_t n = 0; n < batch; ++n) {
              std::memcpy(gocat + c * cols + n * opix,
                          grad_out.data() + (n * out_c_ + c) * opix,
                          static_cast<size_t>(opix) * sizeof(float));
            }
          }
        },
        row_grain);
    parallel_for(
        0, geo_.in_c,
        [&](int64_t c0, int64_t c1) {
          for (int64_t c = c0; c < c1; ++c) {
            for (int64_t n = 0; n < batch; ++n) {
              std::memcpy(xcat + c * cols + n * opix,
                          cached_sample(n) + c * ipix,
                          static_cast<size_t>(opix) * sizeof(float));
            }
          }
        },
        row_grain);
    // dW += dYcat @ Xcat^T  (out_c x cols) @ (cols x in_c)
    gemm_a_bt(out_c_, geo_.in_c, cols, 1.0f, gocat, xcat, 1.0f,
              weight_.grad.data());
    if (needs_input_grad_) {
      float* gicat = scratch.floats(static_cast<size_t>(geo_.in_c * cols));
      // dXcat = W^T @ dYcat  (in_c x out_c) @ (out_c x cols)
      gemm_at_b(geo_.in_c, cols, out_c_, 1.0f, weight_.value.data(), gocat,
                0.0f, gicat);
      parallel_for(
          0, geo_.in_c,
          [&](int64_t c0, int64_t c1) {
            for (int64_t c = c0; c < c1; ++c) {
              for (int64_t n = 0; n < batch; ++n) {
                std::memcpy(grad_in.data() + (n * geo_.in_c + c) * ipix,
                            gicat + c * cols + n * opix,
                            static_cast<size_t>(opix) * sizeof(float));
              }
            }
          },
          row_grain);
    }
    // Bias gradient keeps the serial per-sample order (double accumulator
    // per channel, sample-major) so its bits match the previous loop.
    if (has_bias_) {
      for (int64_t n = 0; n < batch; ++n) {
        add_bias_grad(grad_out.data() + n * out_c_ * opix);
      }
    }
    return grad_in;
  }
  ws::ArenaScope scratch;
  const size_t col_elems =
      static_cast<size_t>(geo_.col_rows() * geo_.col_cols());
  float* col = scratch.floats(col_elems);
  float* gcol = needs_input_grad_ ? scratch.floats(col_elems) : nullptr;
  for (int64_t n = 0; n < batch; ++n) {
    const float* go = grad_out.data() + n * out_c_ * opix;
    // dW += dY @ col^T  (out_c x opix) @ (opix x col_rows)
    im2col(cached_sample(n), geo_, col);
    gemm_a_bt(out_c_, geo_.col_rows(), opix, 1.0f, go, col, 1.0f,
              weight_.grad.data());
    if (needs_input_grad_) {
      // dcol = W^T @ dY  (col_rows x out_c) @ (out_c x opix)
      gemm_at_b(geo_.col_rows(), opix, out_c_, 1.0f, weight_.value.data(), go,
                0.0f, gcol);
      col2im(gcol, geo_, grad_in.data() + n * geo_.in_c * ipix);
    }
    if (has_bias_) add_bias_grad(go);
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

// ------------------------------------------------------- DepthwiseConv2d

DepthwiseConv2d::DepthwiseConv2d(int64_t channels, int64_t in_h, int64_t in_w,
                                 int64_t kernel, int64_t stride, int64_t pad,
                                 Rng& rng, bool init)
    : geo_{channels, in_h, in_w, kernel, stride, pad},
      weight_(Shape{{channels, kernel * kernel}}) {
  if (init) he_init(weight_.value, kernel * kernel, rng);
}

int64_t DepthwiseConv2d::macs_per_sample() const {
  return geo_.in_c * geo_.kernel * geo_.kernel * geo_.col_cols();
}

Tensor DepthwiseConv2d::forward(const Tensor& x, bool train) {
  CHAM_CHECK(x.rank() == 4 && x.dim(1) == geo_.in_c,
             "DepthwiseConv2d input " + x.shape().to_string());
  if (train) {
    cached_input_ = x;
    cached_gather_ = false;
  }
  const int64_t batch = x.dim(0);
  const int64_t oh = geo_.out_h(), ow = geo_.out_w();
  Tensor out({batch, geo_.in_c, oh, ow});
  const int64_t k = geo_.kernel;
  const int64_t ipix = geo_.in_h * geo_.in_w;
  // Every (sample, channel) plane is independent: parallel over the
  // flattened plane index.
  parallel_for(0, batch * geo_.in_c, [&](int64_t p0, int64_t p1) {
    for (int64_t pi = p0; pi < p1; ++pi) {
      const int64_t c = pi % geo_.in_c;
      const float* plane = x.data() + pi * ipix;
      const float* w = weight_.value.data() + c * k * k;
      float* o = out.data() + pi * oh * ow;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t xo = 0; xo < ow; ++xo) {
          double acc = 0;
          for (int64_t kh = 0; kh < k; ++kh) {
            const int64_t iy = y * geo_.stride + kh - geo_.pad;
            if (iy < 0 || iy >= geo_.in_h) continue;
            for (int64_t kw = 0; kw < k; ++kw) {
              const int64_t ix = xo * geo_.stride + kw - geo_.pad;
              if (ix < 0 || ix >= geo_.in_w) continue;
              acc += double(plane[iy * geo_.in_w + ix]) *
                     double(w[kh * k + kw]);
            }
          }
          o[y * ow + xo] = static_cast<float>(acc);
        }
      }
    }
  });
  return out;
}

Tensor DepthwiseConv2d::forward_gather(const GatherBatch& gb, bool train) {
  const int64_t ipix = geo_.in_h * geo_.in_w;
  CHAM_CHECK(gb.sample_numel() == geo_.in_c * ipix,
             "DepthwiseConv2d gathered sample " + gb.sample_shape.to_string());
  if (train) {
    cached_rows_.assign(gb.rows, gb.rows + gb.n);
    cached_gather_ = true;
    cached_input_ = Tensor();
  }
  const int64_t batch = gb.n;
  const int64_t oh = geo_.out_h(), ow = geo_.out_w();
  Tensor out({batch, geo_.in_c, oh, ow});
  const int64_t k = geo_.kernel;
  // Identical arithmetic to forward(); the plane base is gathered per
  // sample instead of read from one contiguous batch.
  parallel_for(0, batch * geo_.in_c, [&](int64_t p0, int64_t p1) {
    for (int64_t pi = p0; pi < p1; ++pi) {
      const int64_t n = pi / geo_.in_c;
      const int64_t c = pi % geo_.in_c;
      const float* plane = gb.rows[n] + c * ipix;
      const float* w = weight_.value.data() + c * k * k;
      float* o = out.data() + pi * oh * ow;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t xo = 0; xo < ow; ++xo) {
          double acc = 0;
          for (int64_t kh = 0; kh < k; ++kh) {
            const int64_t iy = y * geo_.stride + kh - geo_.pad;
            if (iy < 0 || iy >= geo_.in_h) continue;
            for (int64_t kw = 0; kw < k; ++kw) {
              const int64_t ix = xo * geo_.stride + kw - geo_.pad;
              if (ix < 0 || ix >= geo_.in_w) continue;
              acc += double(plane[iy * geo_.in_w + ix]) *
                     double(w[kh * k + kw]);
            }
          }
          o[y * ow + xo] = static_cast<float>(acc);
        }
      }
    }
  });
  return out;
}

const float* DepthwiseConv2d::cached_sample(int64_t n) const {
  return cached_gather_
             ? cached_rows_[static_cast<size_t>(n)]
             : cached_input_.data() + n * geo_.in_c * geo_.in_h * geo_.in_w;
}

int64_t DepthwiseConv2d::cached_batch() const {
  return cached_gather_ ? static_cast<int64_t>(cached_rows_.size())
                        : cached_input_.dim(0);
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_out) {
  CHAM_CHECK(!cached_input_.empty() || cached_gather_,
             "backward without train-mode forward");
  const int64_t batch = cached_batch();
  const int64_t oh = geo_.out_h(), ow = geo_.out_w();
  const int64_t k = geo_.kernel;
  const int64_t ipix = geo_.in_h * geo_.in_w;
  Tensor grad_in;
  if (needs_input_grad_) {
    grad_in = Tensor({batch, geo_.in_c, geo_.in_h, geo_.in_w});
  }
  // Channel-outer so each chunk owns its channels' weight grads outright;
  // the batch loop runs inside, preserving the per-element accumulation
  // order of the serial kernel (n ascending, then y, x). Elision drops the
  // gi accumulation lines only; the gw chain is untouched.
  parallel_for(0, geo_.in_c, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const float* w = weight_.value.data() + c * k * k;
      float* gw = weight_.grad.data() + c * k * k;
      for (int64_t n = 0; n < batch; ++n) {
        const float* plane = cached_sample(n) + c * ipix;
        const float* go = grad_out.data() + (n * geo_.in_c + c) * oh * ow;
        float* gi = needs_input_grad_
                        ? grad_in.data() + (n * geo_.in_c + c) * ipix
                        : nullptr;
        for (int64_t y = 0; y < oh; ++y) {
          for (int64_t xo = 0; xo < ow; ++xo) {
            const float g = go[y * ow + xo];
            if (g == 0.0f) continue;
            for (int64_t kh = 0; kh < k; ++kh) {
              const int64_t iy = y * geo_.stride + kh - geo_.pad;
              if (iy < 0 || iy >= geo_.in_h) continue;
              for (int64_t kw = 0; kw < k; ++kw) {
                const int64_t ix = xo * geo_.stride + kw - geo_.pad;
                if (ix < 0 || ix >= geo_.in_w) continue;
                gw[kh * k + kw] += g * plane[iy * geo_.in_w + ix];
                if (gi) gi[iy * geo_.in_w + ix] += g * w[kh * k + kw];
              }
            }
          }
        }
      }
    }
  });
  return grad_in;
}

// ----------------------------------------------------------- BatchNorm2d

BatchNorm2d::BatchNorm2d(int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Shape{{channels}}),
      beta_(Shape{{channels}}),
      running_mean_({channels}),
      running_var_({channels}) {
  gamma_.value.fill(1.0f);
  running_var_.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  CHAM_CHECK(x.rank() == 4 && x.dim(1) == channels_,
             "BatchNorm2d input " + x.shape().to_string());
  const int64_t batch = x.dim(0), hw = x.dim(2) * x.dim(3);
  const int64_t count = batch * hw;
  cached_train_mode_ = train && track_stats_ && count > 1;

  Tensor mean({channels_}), var({channels_});
  if (cached_train_mode_) {
    // Channels are independent; each chunk owns its channels' stats and
    // running-average slots.
    parallel_for(0, channels_, [&](int64_t c0, int64_t c1) {
      for (int64_t c = c0; c < c1; ++c) {
        double m = 0;
        for (int64_t n = 0; n < batch; ++n) {
          const float* p = x.data() + (n * channels_ + c) * hw;
          for (int64_t i = 0; i < hw; ++i) m += p[i];
        }
        m /= count;
        double v = 0;
        for (int64_t n = 0; n < batch; ++n) {
          const float* p = x.data() + (n * channels_ + c) * hw;
          for (int64_t i = 0; i < hw; ++i) {
            const double d = p[i] - m;
            v += d * d;
          }
        }
        v /= count;
        mean[c] = static_cast<float>(m);
        var[c] = static_cast<float>(v);
        running_mean_[c] =
            (1 - momentum_) * running_mean_[c] + momentum_ * mean[c];
        running_var_[c] =
            (1 - momentum_) * running_var_[c] + momentum_ * var[c];
      }
    });
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  Tensor out(x.shape());
  cached_inv_std_ = Tensor({channels_});
  if (train) cached_xhat_ = Tensor(x.shape());
  parallel_for(0, channels_, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const float inv_std = 1.0f / std::sqrt(var[c] + eps_);
      cached_inv_std_[c] = inv_std;
      const float g = gamma_.value[c], b = beta_.value[c], mu = mean[c];
      for (int64_t n = 0; n < batch; ++n) {
        const float* p = x.data() + (n * channels_ + c) * hw;
        float* o = out.data() + (n * channels_ + c) * hw;
        float* xh = train ? cached_xhat_.data() + (n * channels_ + c) * hw
                          : nullptr;
        for (int64_t i = 0; i < hw; ++i) {
          const float xhat = (p[i] - mu) * inv_std;
          if (xh) xh[i] = xhat;
          o[i] = g * xhat + b;
        }
      }
    }
  });
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  CHAM_CHECK(!cached_xhat_.empty(), "backward without train-mode forward");
  const int64_t batch = grad_out.dim(0), hw = grad_out.dim(2) * grad_out.dim(3);
  const int64_t count = batch * hw;
  Tensor grad_in(grad_out.shape());

  parallel_for(0, channels_, [&](int64_t cb, int64_t ce) {
  for (int64_t c = cb; c < ce; ++c) {
    double sum_g = 0, sum_gx = 0;
    for (int64_t n = 0; n < batch; ++n) {
      const float* go = grad_out.data() + (n * channels_ + c) * hw;
      const float* xh = cached_xhat_.data() + (n * channels_ + c) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        sum_g += go[i];
        sum_gx += double(go[i]) * double(xh[i]);
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_gx);
    beta_.grad[c] += static_cast<float>(sum_g);

    const float g = gamma_.value[c];
    const float inv_std = cached_inv_std_[c];
    if (cached_train_mode_) {
      // Full batch-stat backward.
      const float mean_g = static_cast<float>(sum_g / count);
      const float mean_gx = static_cast<float>(sum_gx / count);
      for (int64_t n = 0; n < batch; ++n) {
        const float* go = grad_out.data() + (n * channels_ + c) * hw;
        const float* xh = cached_xhat_.data() + (n * channels_ + c) * hw;
        float* gi = grad_in.data() + (n * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          gi[i] = g * inv_std * (go[i] - mean_g - xh[i] * mean_gx);
        }
      }
    } else {
      // Eval-mode normalisation is an affine map: exact gradient.
      const float scale = g * inv_std;
      for (int64_t n = 0; n < batch; ++n) {
        const float* go = grad_out.data() + (n * channels_ + c) * hw;
        float* gi = grad_in.data() + (n * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) gi[i] = scale * go[i];
      }
    }
  }
  });
  return grad_in;
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor out = x;
  if (train) mask_.resize(static_cast<size_t>(x.numel()));
  uint8_t* mask = train ? mask_.data() : nullptr;
  parallel_for(
      0, out.numel(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float xi = out[i];
          float v = xi > 0.0f ? xi : 0.0f;
          if (clip_ > 0.0f && v > clip_) v = clip_;
          out[i] = v;
          if (mask) {
            mask[i] = xi > 0.0f && (clip_ <= 0.0f || xi < clip_);
          }
        }
      },
      kElemGrain);
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  CHAM_CHECK(!mask_.empty() || grad_out.numel() == 0,
             "backward without train-mode forward");
  CHAM_CHECK(static_cast<int64_t>(mask_.size()) == grad_out.numel(),
             "ReLU grad " + grad_out.shape().to_string() +
                 " does not match forward activation count " +
                 std::to_string(mask_.size()));
  Tensor grad_in = grad_out;
  parallel_for(
      0, grad_in.numel(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          if (!mask_[static_cast<size_t>(i)]) grad_in[i] = 0.0f;
        }
      },
      kElemGrain);
  return grad_in;
}

// -------------------------------------------------------- GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  CHAM_CHECK(x.rank() == 4, "GlobalAvgPool input " + x.shape().to_string());
  if (train) cached_in_shape_ = x.shape();
  const int64_t batch = x.dim(0), ch = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor out({batch, ch});
  parallel_for(
      0, batch * ch,
      [&](int64_t p0, int64_t p1) {
        for (int64_t pi = p0; pi < p1; ++pi) {
          const float* p = x.data() + pi * hw;
          double acc = 0;
          for (int64_t i = 0; i < hw; ++i) acc += p[i];
          out[pi] = static_cast<float>(acc / hw);
        }
      },
      /*grain=*/8);
  return out;
}

Tensor GlobalAvgPool::forward_gather(const GatherBatch& gb, bool train) {
  CHAM_CHECK(gb.sample_shape.rank() == 3,
             "GlobalAvgPool gathered sample " + gb.sample_shape.to_string());
  const int64_t ch = gb.sample_shape[0];
  const int64_t hw = gb.sample_shape[1] * gb.sample_shape[2];
  if (train) {
    cached_in_shape_ =
        Shape{gb.n, ch, gb.sample_shape[1], gb.sample_shape[2]};
  }
  Tensor out({gb.n, ch});
  parallel_for(
      0, gb.n * ch,
      [&](int64_t p0, int64_t p1) {
        for (int64_t pi = p0; pi < p1; ++pi) {
          const float* p = gb.rows[pi / ch] + (pi % ch) * hw;
          double acc = 0;
          for (int64_t i = 0; i < hw; ++i) acc += p[i];
          out[pi] = static_cast<float>(acc / hw);
        }
      },
      /*grain=*/8);
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  CHAM_CHECK(cached_in_shape_.rank() == 4,
             "backward without train-mode forward");
  const int64_t batch = cached_in_shape_[0], ch = cached_in_shape_[1],
                hw = cached_in_shape_[2] * cached_in_shape_[3];
  Tensor grad_in(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < ch; ++c) {
      const float g = grad_out.at(n, c) * inv;
      float* p = grad_in.data() + (n * ch + c) * hw;
      for (int64_t i = 0; i < hw; ++i) p[i] = g;
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------- Linear

Linear::Linear(int64_t in_dim, int64_t out_dim, Rng& rng, bool init)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(Shape{{out_dim, in_dim}}),
      bias_(Shape{{out_dim}}) {
  if (init) he_init(weight_.value, in_dim, rng);
}

Tensor Linear::forward(const Tensor& x, bool train) {
  CHAM_CHECK(x.rank() == 2 && x.dim(1) == in_dim_,
             "Linear input " + x.shape().to_string() + ", expected cols " +
                 std::to_string(in_dim_));
  if (train) {
    cached_input_ = x;
    cached_gather_ = false;
  }
  const int64_t batch = x.dim(0);
  Tensor out({batch, out_dim_});
  // out = x @ W^T + b
  gemm_a_bt(batch, out_dim_, in_dim_, 1.0f, x.data(), weight_.value.data(),
            0.0f, out.data());
  for (int64_t n = 0; n < batch; ++n) {
    float* o = out.data() + n * out_dim_;
    for (int64_t j = 0; j < out_dim_; ++j) o[j] += bias_.value[j];
  }
  return out;
}

Tensor Linear::forward_gather(const GatherBatch& gb, bool train) {
  CHAM_CHECK(gb.sample_numel() == in_dim_,
             "Linear gathered sample " + gb.sample_shape.to_string() +
                 ", expected " + std::to_string(in_dim_) + " elements");
  if (train) {
    cached_rows_.assign(gb.rows, gb.rows + gb.n);
    cached_gather_ = true;
    cached_input_ = Tensor();
  }
  Tensor out({gb.n, out_dim_});
  // Same GEMM as forward(); row i of the A operand is gathered in place.
  gemm_gather_a_bt(gb.n, out_dim_, in_dim_, 1.0f, gb.rows,
                   weight_.value.data(), 0.0f, out.data());
  for (int64_t n = 0; n < gb.n; ++n) {
    float* o = out.data() + n * out_dim_;
    for (int64_t j = 0; j < out_dim_; ++j) o[j] += bias_.value[j];
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  CHAM_CHECK(!cached_input_.empty() || cached_gather_,
             "backward without train-mode forward");
  const int64_t batch = cached_gather_
                            ? static_cast<int64_t>(cached_rows_.size())
                            : cached_input_.dim(0);
  // dW += dY^T @ X  (out x batch) @ (batch x in)
  if (cached_gather_) {
    gemm_at_b_gather_b(out_dim_, in_dim_, batch, 1.0f, grad_out.data(),
                       cached_rows_.data(), 1.0f, weight_.grad.data());
  } else {
    gemm_at_b(out_dim_, in_dim_, batch, 1.0f, grad_out.data(),
              cached_input_.data(), 1.0f, weight_.grad.data());
  }
  for (int64_t n = 0; n < batch; ++n) {
    const float* go = grad_out.data() + n * out_dim_;
    for (int64_t j = 0; j < out_dim_; ++j) bias_.grad[j] += go[j];
  }
  if (!needs_input_grad_) return Tensor();
  // dX = dY @ W
  Tensor grad_in({batch, in_dim_});
  gemm(batch, in_dim_, out_dim_, 1.0f, grad_out.data(), weight_.value.data(),
       0.0f, grad_in.data());
  return grad_in;
}

}  // namespace cham::nn
