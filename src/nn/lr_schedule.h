// Learning-rate schedules for the pretraining path: constant, step decay,
// cosine annealing with warmup. Schedules are pure functions of the step
// index, composable with either optimiser via set_lr().
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace cham::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float lr_at(int64_t step) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float lr_at(int64_t) const override { return lr_; }

 private:
  float lr_;
};

// Multiplies the rate by `gamma` every `period` steps.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float base, int64_t period, float gamma)
      : base_(base), period_(period), gamma_(gamma) {}
  float lr_at(int64_t step) const override {
    return base_ * std::pow(gamma_, static_cast<float>(step / period_));
  }

 private:
  float base_;
  int64_t period_;
  float gamma_;
};

// Linear warmup to `base` over `warmup` steps, then cosine anneal to
// `min_lr` at `total` steps (clamped beyond).
class CosineLr : public LrSchedule {
 public:
  CosineLr(float base, int64_t total, int64_t warmup = 0, float min_lr = 0.0f)
      : base_(base), total_(total), warmup_(warmup), min_lr_(min_lr) {}

  float lr_at(int64_t step) const override {
    if (warmup_ > 0 && step < warmup_) {
      return base_ * static_cast<float>(step + 1) /
             static_cast<float>(warmup_);
    }
    const int64_t s = std::min(step, total_);
    const float progress =
        total_ > warmup_
            ? static_cast<float>(s - warmup_) /
                  static_cast<float>(total_ - warmup_)
            : 1.0f;
    return min_lr_ + 0.5f * (base_ - min_lr_) *
                         (1.0f + std::cos(3.14159265358979f * progress));
  }

 private:
  float base_;
  int64_t total_, warmup_;
  float min_lr_;
};

}  // namespace cham::nn
