// Additional layers beyond the MobileNetV1 minimum: windowed max pooling
// and inverted dropout. Available for custom heads built on the public API.
#pragma once

#include "nn/layer.h"
#include "tensor/rng.h"

#include "util/check.h"

namespace cham::nn {

// Max pooling over square windows, NCHW.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(int64_t kernel, int64_t stride)
      : kernel_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& x, bool train) override {
    CHAM_CHECK(x.rank() == 4, "MaxPool input " + x.shape().to_string());
    const int64_t batch = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
    const int64_t oh = (h - kernel_) / stride_ + 1;
    const int64_t ow = (w - kernel_) / stride_ + 1;
    Tensor out({batch, ch, oh, ow});
    if (train) {
      cached_in_shape_ = x.shape();
      argmax_.assign(static_cast<size_t>(out.numel()), 0);
    }
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t c = 0; c < ch; ++c) {
        const float* plane = x.data() + (n * ch + c) * h * w;
        float* o = out.data() + (n * ch + c) * oh * ow;
        for (int64_t y = 0; y < oh; ++y) {
          for (int64_t xo = 0; xo < ow; ++xo) {
            float best = plane[(y * stride_) * w + xo * stride_];
            int64_t best_idx = (y * stride_) * w + xo * stride_;
            for (int64_t kh = 0; kh < kernel_; ++kh) {
              for (int64_t kw = 0; kw < kernel_; ++kw) {
                const int64_t idx =
                    (y * stride_ + kh) * w + xo * stride_ + kw;
                if (plane[idx] > best) {
                  best = plane[idx];
                  best_idx = idx;
                }
              }
            }
            o[y * ow + xo] = best;
            if (train) {
              argmax_[static_cast<size_t>(
                  ((n * ch + c) * oh + y) * ow + xo)] =
                  (n * ch + c) * h * w + best_idx;
            }
          }
        }
      }
    }
    return out;
  }

  Tensor backward(const Tensor& grad_out) override {
    CHAM_CHECK(cached_in_shape_.rank() == 4,
               "backward without train-mode forward");
    Tensor grad_in(cached_in_shape_);
    for (int64_t i = 0; i < grad_out.numel(); ++i) {
      grad_in[argmax_[static_cast<size_t>(i)]] += grad_out[i];
    }
    return grad_in;
  }

  std::string name() const override { return "MaxPool2d"; }

 private:
  int64_t kernel_, stride_;
  Shape cached_in_shape_;
  std::vector<int64_t> argmax_;
};

// Inverted dropout: scales surviving activations by 1/(1-p) at train time,
// identity at eval time.
class Dropout : public Layer {
 public:
  Dropout(float p, uint64_t seed) : p_(p), rng_(seed) {
    CHAM_CHECK(p >= 0.0f && p < 1.0f,
               "dropout p = " + std::to_string(p) + " outside [0, 1)");
  }

  Tensor forward(const Tensor& x, bool train) override {
    if (!train || p_ == 0.0f) {
      training_mask_valid_ = false;
      return x;
    }
    mask_.assign(static_cast<size_t>(x.numel()), 0.0f);
    const float keep_scale = 1.0f / (1.0f - p_);
    Tensor out = x;
    for (int64_t i = 0; i < x.numel(); ++i) {
      if (!rng_.bernoulli(p_)) {
        mask_[static_cast<size_t>(i)] = keep_scale;
        out[i] *= keep_scale;
      } else {
        out[i] = 0.0f;
      }
    }
    training_mask_valid_ = true;
    return out;
  }

  Tensor backward(const Tensor& grad_out) override {
    if (!training_mask_valid_) return grad_out;
    Tensor grad_in = grad_out;
    for (int64_t i = 0; i < grad_in.numel(); ++i) {
      grad_in[i] *= mask_[static_cast<size_t>(i)];
    }
    return grad_in;
  }

  std::string name() const override { return "Dropout"; }

 private:
  float p_;
  Rng rng_;
  std::vector<float> mask_;
  bool training_mask_valid_ = false;
};

}  // namespace cham::nn
