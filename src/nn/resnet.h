// A compact residual CNN (ResNet-style) as a second backbone, demonstrating
// that the continual-learning stack is not MobileNetV1-specific.
//
// The graph-free Sequential pipeline handles skip connections through a
// composite ResidualBlock layer: it owns the two-conv main path and an
// optional 1x1 projection shortcut, sums them, and routes gradients through
// both paths in backward().
#pragma once

#include <memory>

#include "nn/layers.h"
#include "nn/sequential.h"

namespace cham::nn {

// y = relu( main(x) + shortcut(x) ); main = conv-bn-relu-conv-bn,
// shortcut = identity or 1x1 stride-matched projection conv-bn.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(int64_t in_c, int64_t out_c, int64_t in_h, int64_t in_w,
                int64_t stride, Rng& rng)
      : projected_(stride != 1 || in_c != out_c) {
    main_.add(std::make_unique<Conv2d>(in_c, out_c, in_h, in_w, 3, stride, 1,
                                       false, rng));
    const int64_t oh = (in_h + 2 - 3) / stride + 1;
    main_.add(std::make_unique<BatchNorm2d>(out_c));
    main_.add(std::make_unique<ReLU>());
    main_.add(std::make_unique<Conv2d>(out_c, out_c, oh, oh, 3, 1, 1, false,
                                       rng));
    main_.add(std::make_unique<BatchNorm2d>(out_c));
    if (projected_) {
      shortcut_.add(std::make_unique<Conv2d>(in_c, out_c, in_h, in_w, 1,
                                             stride, 0, false, rng));
      shortcut_.add(std::make_unique<BatchNorm2d>(out_c));
    }
  }

  Tensor forward(const Tensor& x, bool train) override {
    Tensor main_out = main_.forward(x, train);
    Tensor shortcut_out = projected_ ? shortcut_.forward(x, train) : x;
    main_out += shortcut_out;
    return relu_.forward(main_out, train);
  }

  Tensor backward(const Tensor& grad_out) override {
    const Tensor g = relu_.backward(grad_out);
    Tensor grad_in = main_.backward(g);
    if (projected_) {
      grad_in += shortcut_.backward(g);
    } else {
      grad_in += g;  // identity shortcut passes the gradient through
    }
    return grad_in;
  }

  std::vector<Param*> params() override {
    std::vector<Param*> out = main_.params();
    for (Param* p : shortcut_.params()) out.push_back(p);
    return out;
  }

  std::string name() const override { return "ResidualBlock"; }
  int64_t macs_per_sample() const override {
    return main_.macs_per_sample() + shortcut_.macs_per_sample();
  }
  bool is_conv_like() const override { return true; }

 private:
  bool projected_;
  Sequential main_;
  Sequential shortcut_;
  ReLU relu_;
};

struct ResNetConfig {
  int64_t input_hw = 32;
  int64_t base_channels = 16;
  int64_t blocks_per_stage = 2;  // 3 stages (16, 32, 64 ch): ResNet-(6n+2)
  int64_t num_classes = 10;
};

// Builds stem + 3 residual stages + pool + classifier.
inline std::unique_ptr<Sequential> build_resnet(const ResNetConfig& cfg,
                                                Rng& rng) {
  auto net = std::make_unique<Sequential>();
  int64_t hw = cfg.input_hw;
  int64_t ch = cfg.base_channels;
  net->add(std::make_unique<Conv2d>(3, ch, hw, hw, 3, 1, 1, false, rng));
  net->add(std::make_unique<BatchNorm2d>(ch));
  net->add(std::make_unique<ReLU>());
  for (int64_t stage = 0; stage < 3; ++stage) {
    const int64_t out_c = cfg.base_channels << stage;
    for (int64_t b = 0; b < cfg.blocks_per_stage; ++b) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      net->add(std::make_unique<ResidualBlock>(ch, out_c, hw, hw, stride,
                                               rng));
      if (stride == 2) hw = (hw + 2 - 3) / 2 + 1;
      ch = out_c;
    }
  }
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(ch, cfg.num_classes, rng));
  return net;
}

}  // namespace cham::nn
