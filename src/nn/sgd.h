// SGD with momentum and weight decay, matching the paper's optimiser
// (SGD, lr = 0.001).
#pragma once

#include <vector>

#include "nn/layer.h"
#include "util/check.h"

namespace cham::nn {

class Sgd {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f)
      : params_(std::move(params)),
        lr_(lr),
        momentum_(momentum),
        weight_decay_(weight_decay) {
    if (momentum_ > 0.0f) {
      velocities_.reserve(params_.size());
      for (Param* p : params_) velocities_.emplace_back(p->value.shape());
    }
  }

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  void zero_grad() {
    for (Param* p : params_) p->zero_grad();
  }

  void step() {
    for (size_t i = 0; i < params_.size(); ++i) {
      Param* p = params_[i];
      // Full-checks tier: reject non-finite gradients before they reach the
      // weights (a NaN here corrupts the head silently, not loudly).
      CHAM_CHECK_FINITE(p->grad.span(), "SGD gradient");
      for (int64_t j = 0; j < p->numel(); ++j) {
        float g = p->grad[j];
        if (weight_decay_ > 0.0f) g += weight_decay_ * p->value[j];
        if (momentum_ > 0.0f) {
          float& v = velocities_[i][j];
          v = momentum_ * v + g;
          g = v;
        }
        p->value[j] -= lr_ * g;
      }
    }
  }

 private:
  std::vector<Param*> params_;
  float lr_, momentum_, weight_decay_;
  std::vector<Tensor> velocities_;
};

}  // namespace cham::nn
