#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"

#include "util/check.h"

namespace cham::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int64_t> labels) {
  // Empty weights mean unit weight per sample (multiplying by exactly 1.0f
  // is bitwise neutral, so this matches an explicit all-ones vector without
  // materialising one per call).
  return softmax_cross_entropy_weighted(logits, labels, {});
}

LossResult softmax_cross_entropy_weighted(const Tensor& logits,
                                          std::span<const int64_t> labels,
                                          std::span<const float> weights) {
  CHAM_CHECK(logits.rank() == 2,
             "cross-entropy logits " + logits.shape().to_string());
  const int64_t batch = logits.dim(0), classes = logits.dim(1);
  CHAM_CHECK(static_cast<int64_t>(labels.size()) == batch,
             "labels size " + std::to_string(labels.size()) + " vs batch " +
                 std::to_string(batch));
  CHAM_CHECK(weights.empty() || weights.size() == labels.size(),
             "weights/labels size mismatch");
  const bool unit_weights = weights.empty();

  LossResult res;
  res.grad = ops::softmax(logits);
  double loss = 0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int64_t n = 0; n < batch; ++n) {
    const int64_t y = labels[static_cast<size_t>(n)];
    CHAM_CHECK(y >= 0 && y < classes,
               "label " + std::to_string(y) + " out of " +
                   std::to_string(classes) + " classes");
    const float w = unit_weights ? 1.0f : weights[static_cast<size_t>(n)];
    float* g = res.grad.data() + n * classes;
    const double p = std::max(double(g[y]), 1e-12);
    loss += -w * std::log(p);
    g[y] -= 1.0f;
    const float s = w * inv_batch;
    for (int64_t c = 0; c < classes; ++c) g[c] *= s;
  }
  res.loss = static_cast<float>(loss / batch);
  return res;
}

LossResult mse(const Tensor& logits, const Tensor& targets) {
  CHAM_CHECK_SHAPE(logits.shape(), targets.shape());
  const int64_t n = logits.numel();
  LossResult res;
  res.grad = Tensor(logits.shape());
  double loss = 0;
  const float inv = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float d = logits[i] - targets[i];
    loss += 0.5 * double(d) * double(d);
    res.grad[i] = d * inv;
  }
  res.loss = static_cast<float>(loss / n);
  return res;
}

LossResult kl_distillation(const Tensor& logits, const Tensor& teacher_logits,
                           float temperature) {
  CHAM_CHECK_SHAPE(logits.shape(), teacher_logits.shape());
  CHAM_CHECK(logits.rank() == 2,
             "distillation logits " + logits.shape().to_string());
  const int64_t batch = logits.dim(0), classes = logits.dim(1);
  const float t = temperature;

  Tensor scaled_s = ops::scale(logits, 1.0f / t);
  Tensor scaled_t = ops::scale(teacher_logits, 1.0f / t);
  Tensor ps = ops::softmax(scaled_s);
  Tensor pt = ops::softmax(scaled_t);
  Tensor log_ps = ops::log_softmax(scaled_s);
  Tensor log_pt = ops::log_softmax(scaled_t);

  LossResult res;
  res.grad = Tensor(logits.shape());
  double loss = 0;
  // d/ds_j of KL(pt || ps) with s scaled by 1/T is (ps_j - pt_j)/T; the
  // conventional T^2 factor restores gradient magnitude.
  const float gscale = t / static_cast<float>(batch);  // T^2 * (1/T) / batch
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < classes; ++c) {
      const int64_t i = n * classes + c;
      loss += double(pt[i]) * (double(log_pt[i]) - double(log_ps[i]));
      res.grad[i] = gscale * (ps[i] - pt[i]);
    }
  }
  res.loss = static_cast<float>(loss * t * t / batch);
  return res;
}

}  // namespace cham::nn
