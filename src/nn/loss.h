// Losses used by the paper's methods: softmax cross-entropy (all learners),
// MSE on logits (DER's dark-knowledge term), and KL distillation (LwF).
// Each returns the scalar loss and the gradient w.r.t. the logits, averaged
// over the batch, so callers can feed the gradient straight into backward().
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace cham::nn {

struct LossResult {
  float loss = 0.0f;
  Tensor grad;  // dLoss/dlogits, same shape as logits
};

// logits: NxC, labels: N entries in [0, C).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int64_t> labels);

// Per-sample weighted variant: weight[i] scales sample i's contribution
// (weights are normalised by batch size, matching the unweighted form when
// all weights are 1).
LossResult softmax_cross_entropy_weighted(const Tensor& logits,
                                          std::span<const int64_t> labels,
                                          std::span<const float> weights);

// 0.5 * mean squared error between logits and targets (same shape).
LossResult mse(const Tensor& logits, const Tensor& targets);

// Distillation: KL(softmax(targets/T) || softmax(logits/T)) * T^2, averaged
// over the batch. Gradient w.r.t. logits.
LossResult kl_distillation(const Tensor& logits, const Tensor& teacher_logits,
                           float temperature);

}  // namespace cham::nn
