// Adam optimiser (Kingma & Ba, 2015) with decoupled weight decay (AdamW).
//
// The paper trains with SGD; Adam is provided for the pretraining path and
// for downstream users who want faster head adaptation at small batch
// sizes. Bias correction follows the original formulation.
#pragma once

#include <cmath>
#include <vector>

#include "nn/layer.h"
#include "util/check.h"

namespace cham::nn {

class Adam {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f)
      : params_(std::move(params)),
        lr_(lr),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps),
        weight_decay_(weight_decay) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Param* p : params_) {
      m_.emplace_back(p->value.shape());
      v_.emplace_back(p->value.shape());
    }
  }

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t steps() const { return t_; }

  void zero_grad() {
    for (Param* p : params_) p->zero_grad();
  }

  void step() {
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
      Param* p = params_[i];
      // Full-checks tier: a single NaN gradient silently poisons the moment
      // estimates for every later step, so catch it at the boundary.
      CHAM_CHECK_FINITE(p->grad.span(), "Adam gradient");
      for (int64_t j = 0; j < p->numel(); ++j) {
        const float g = p->grad[j];
        float& m = m_[i][j];
        float& v = v_[i][j];
        m = beta1_ * m + (1.0f - beta1_) * g;
        v = beta2_ * v + (1.0f - beta2_) * g * g;
        const float mhat = m / bc1;
        const float vhat = v / bc2;
        float update = mhat / (std::sqrt(vhat) + eps_);
        if (weight_decay_ > 0.0f) update += weight_decay_ * p->value[j];
        p->value[j] -= lr_ * update;
      }
    }
  }

 private:
  std::vector<Param*> params_;
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace cham::nn
