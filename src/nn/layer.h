// Layer abstraction: explicit forward/backward with cached activations.
//
// The framework is deliberately graph-free: MobileNetV1 is a straight
// pipeline, so a Sequential of Layers with manual backward is simpler and
// faster than tape-based autograd, and makes per-layer MAC/byte accounting
// (needed by the hardware cost models) exact.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cham::nn {

// A trainable parameter: value plus accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Shape shape) : value(shape), grad(shape) {}
  void zero_grad() { grad.fill(0.0f); }
  int64_t numel() const { return value.numel(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  // x is NCHW (rank 4) or NxD (rank 2) depending on the layer.
  // `train` selects batch-statistics / caching behaviour.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  // grad_out has the shape of the last forward output; returns gradient with
  // respect to the last forward input and accumulates parameter grads.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<Param*> params() { return {}; }
  virtual std::string name() const = 0;

  // Multiply-accumulate operations per sample (forward pass); 0 for
  // activations/reshapes. Known statically because geometry is fixed at
  // construction time.
  virtual int64_t macs_per_sample() const { return 0; }

  // Number of scalar parameters.
  int64_t param_count() {
    int64_t n = 0;
    for (Param* p : params()) n += p->numel();
    return n;
  }

  // True for layers that count toward MobileNetV1's "27 conv layers"
  // numbering used by the paper's latent-layer index.
  virtual bool is_conv_like() const { return false; }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace cham::nn
