// Layer abstraction: explicit forward/backward with cached activations.
//
// The framework is deliberately graph-free: MobileNetV1 is a straight
// pipeline, so a Sequential of Layers with manual backward is simpler and
// faster than tape-based autograd, and makes per-layer MAC/byte accounting
// (needed by the hardware cost models) exact.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cham::nn {

// A trainable parameter: value plus accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Shape shape) : value(shape), grad(shape) {}
  void zero_grad() { grad.fill(0.0f); }
  int64_t numel() const { return value.numel(); }
};

// A batch whose samples are gathered through per-sample base pointers
// instead of living in one contiguous tensor: sample i is the
// sample_shape.numel() contiguous floats at rows[i]. This is the zero-copy
// replay interface — rows point straight into ST slab slots, LT entries,
// and incoming latent-cache storage; nothing is stacked.
//
// Ownership: the caller owns both the pointer array and the gathered
// storage, and must keep every row valid until the consuming call returns —
// and, for a train-mode forward, until the matching backward() completes
// (layers cache the row pointers, not a copy of the data).
struct GatherBatch {
  const float* const* rows = nullptr;
  int64_t n = 0;
  Shape sample_shape;  // per-sample shape, e.g. (C,H,W) or (D)

  int64_t sample_numel() const { return sample_shape.numel(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  // x is NCHW (rank 4) or NxD (rank 2) depending on the layer.
  // `train` selects batch-statistics / caching behaviour.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  // grad_out has the shape of the last forward output; returns gradient with
  // respect to the last forward input and accumulates parameter grads.
  // When needs_input_grad() is false the input-gradient computation is
  // skipped and an empty Tensor is returned (parameter grads are still
  // accumulated, in the same order — bit-identical to the unelided pass).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  // Forward over a gathered batch. The default materialises the batch into
  // a contiguous tensor and calls forward() — layers with a zero-copy path
  // (convolutions, linear) override it to pack GEMM panels directly from
  // the gathered rows. Both paths are bit-identical by construction.
  virtual Tensor forward_gather(const GatherBatch& gb, bool train) {
    std::vector<int64_t> dims;
    dims.reserve(static_cast<size_t>(gb.sample_shape.rank()) + 1);
    dims.push_back(gb.n);
    for (int64_t d : gb.sample_shape.dims()) dims.push_back(d);
    Tensor x{Shape(dims)};
    const int64_t numel = gb.sample_numel();
    for (int64_t i = 0; i < gb.n; ++i) {
      std::memcpy(x.data() + i * numel, gb.rows[i],
                  static_cast<size_t>(numel) * sizeof(float));
    }
    return forward(x, train);
  }

  virtual std::vector<Param*> params() { return {}; }
  virtual std::string name() const = 0;

  // Multiply-accumulate operations per sample (forward pass); 0 for
  // activations/reshapes. Known statically because geometry is fixed at
  // construction time.
  virtual int64_t macs_per_sample() const { return 0; }

  // MACs per sample of the backward pass under the current
  // needs_input_grad setting: dW plus dInput each mirror the forward
  // contraction, so a MAC-bearing layer costs 2x forward — 1x once the
  // input gradient is elided. This is the exact model charge_g bills
  // against the OpStats ledger.
  virtual int64_t backward_macs_per_sample() const {
    return macs_per_sample() * (needs_input_grad_ ? 2 : 1);
  }

  // First-layer dInput elision: when the layer's input is frozen (backbone
  // latents in the replay path), its input gradient is dead compute.
  // Containers forward the setting to their first layer.
  virtual void set_needs_input_grad(bool v) { needs_input_grad_ = v; }
  bool needs_input_grad() const { return needs_input_grad_; }

  // Number of scalar parameters.
  int64_t param_count() {
    int64_t n = 0;
    for (Param* p : params()) n += p->numel();
    return n;
  }

  // True for layers that count toward MobileNetV1's "27 conv layers"
  // numbering used by the paper's latent-layer index.
  virtual bool is_conv_like() const { return false; }

 protected:
  bool needs_input_grad_ = true;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace cham::nn
