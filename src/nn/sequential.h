// Sequential container: the whole network (and each half after the latent
// split) is a straight pipeline of layers.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace cham::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  void add(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& x, bool train) override {
    if (layers_.empty()) return x;
    // The first layer reads the caller's tensor in place; copying x into a
    // local first was a full batch deep copy per forward.
    Tensor cur = layers_.front()->forward(x, train);
    for (size_t i = 1; i < layers_.size(); ++i) {
      cur = layers_[i]->forward(cur, train);
    }
    return cur;
  }

  // Gathered entry: the first layer packs directly from the gathered rows,
  // the rest of the pipeline runs on its dense output as usual.
  Tensor forward_gather(const GatherBatch& gb, bool train) override {
    if (layers_.empty()) return Layer::forward_gather(gb, train);
    Tensor cur = layers_.front()->forward_gather(gb, train);
    for (size_t i = 1; i < layers_.size(); ++i) {
      cur = layers_[i]->forward(cur, train);
    }
    return cur;
  }

  Tensor backward(const Tensor& grad_out) override {
    Tensor cur = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      cur = (*it)->backward(cur);
    }
    // When the first layer elides its input gradient, `cur` is empty here;
    // the pipeline's own caller sees the same contract as a single layer.
    return cur;
  }

  std::vector<Param*> params() override {
    std::vector<Param*> out;
    for (auto& l : layers_) {
      for (Param* p : l->params()) out.push_back(p);
    }
    return out;
  }

  std::string name() const override { return "Sequential"; }

  int64_t macs_per_sample() const override {
    int64_t total = 0;
    for (const auto& l : layers_) total += l->macs_per_sample();
    return total;
  }

  int64_t backward_macs_per_sample() const override {
    int64_t total = 0;
    for (const auto& l : layers_) total += l->backward_macs_per_sample();
    return total;
  }

  // Applies to the pipeline's own input, i.e. the first layer (which may
  // itself be a Sequential — the setting recurses to the real leaf).
  void set_needs_input_grad(bool v) override {
    needs_input_grad_ = v;
    if (!layers_.empty()) layers_.front()->set_needs_input_grad(v);
  }

  int64_t size() const { return static_cast<int64_t>(layers_.size()); }
  Layer& layer(int64_t i) { return *layers_[static_cast<size_t>(i)]; }
  const Layer& layer(int64_t i) const { return *layers_[static_cast<size_t>(i)]; }

  // Moves all layers of `other` to the end of this pipeline (used to
  // re-join a split network).
  void append(Sequential&& other) {
    for (auto& l : other.layers_) layers_.push_back(std::move(l));
    other.layers_.clear();
  }

  // Moves layers [begin, end) into a new Sequential; this container keeps
  // the rest. Used to split a network at the latent layer.
  std::unique_ptr<Sequential> slice(int64_t begin, int64_t end) {
    auto out = std::make_unique<Sequential>();
    for (int64_t i = begin; i < end; ++i) {
      out->add(std::move(layers_[static_cast<size_t>(i)]));
    }
    layers_.erase(layers_.begin() + begin, layers_.begin() + end);
    return out;
  }

  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
  }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace cham::nn
