#include "nn/mobilenet.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cham::nn {
namespace {

int64_t scaled(int64_t channels, float width_mult) {
  return std::max<int64_t>(
      8, static_cast<int64_t>(std::round(channels * width_mult)));
}

struct BlockSpec {
  int64_t out_channels;
  int64_t stride;
};

// The 13 depthwise-separable blocks of MobileNetV1 (base channel counts).
constexpr BlockSpec kBlocks[] = {
    {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},
    {512, 2}, {512, 1}, {512, 1}, {512, 1},  {512, 1},
    {512, 1}, {1024, 2}, {1024, 1},
};

}  // namespace

MobileNetV1 build_mobilenet_v1(const MobileNetConfig& cfg, Rng& rng,
                               bool init_weights) {
  MobileNetV1 m;
  m.config = cfg;
  m.net = std::make_unique<Sequential>();
  auto& net = *m.net;

  int64_t h = cfg.input_hw, w = cfg.input_hw;
  int64_t in_c = cfg.input_channels;

  auto end_unit = [&](int64_t out_c) {
    m.unit_end.push_back(net.size());
    m.unit_out_shape.push_back(Shape{{out_c, h, w}});
  };

  // Conv layer 1: standard 3x3 stride-2 convolution.
  const int64_t c1 = scaled(32, cfg.width_mult);
  net.add(std::make_unique<Conv2d>(in_c, c1, h, w, 3, 2, 1, /*bias=*/false,
                                   rng, init_weights));
  h = (h + 2 * 1 - 3) / 2 + 1;
  w = h;
  net.add(std::make_unique<BatchNorm2d>(c1, cfg.bn_momentum));
  net.add(std::make_unique<ReLU>(6.0f));
  end_unit(c1);
  in_c = c1;

  // Conv layers 2..27: 13 (depthwise, pointwise) pairs.
  for (const BlockSpec& b : kBlocks) {
    // Depthwise.
    net.add(std::make_unique<DepthwiseConv2d>(in_c, h, w, 3, b.stride, 1, rng,
                                              init_weights));
    h = (h + 2 * 1 - 3) / b.stride + 1;
    w = h;
    net.add(std::make_unique<BatchNorm2d>(in_c, cfg.bn_momentum));
    net.add(std::make_unique<ReLU>(6.0f));
    end_unit(in_c);
    // Pointwise.
    const int64_t out_c = scaled(b.out_channels, cfg.width_mult);
    net.add(std::make_unique<Conv2d>(in_c, out_c, h, w, 1, 1, 0,
                                     /*bias=*/false, rng, init_weights));
    net.add(std::make_unique<BatchNorm2d>(out_c, cfg.bn_momentum));
    net.add(std::make_unique<ReLU>(6.0f));
    end_unit(out_c);
    in_c = out_c;
  }

  // Classifier.
  net.add(std::make_unique<GlobalAvgPool>());
  net.add(std::make_unique<Linear>(in_c, cfg.num_classes, rng, init_weights));

  return m;
}

SplitModel split_at_conv_layer(MobileNetV1&& model, int64_t conv_layer) {
  CHAM_CHECK(conv_layer >= 1 && conv_layer < model.conv_layer_count(),
             "split layer " + std::to_string(conv_layer) + " outside [1, " +
                 std::to_string(model.conv_layer_count()) + ")");
  SplitModel out;
  const int64_t cut =
      model.unit_end[static_cast<size_t>(conv_layer - 1)];
  const int64_t total = model.net->size();
  out.g = model.net->slice(cut, total);
  out.f = std::move(model.net);
  out.latent_shape = model.shape_after(conv_layer);
  out.latent_dim = out.latent_shape.numel();
  return out;
}

void freeze_batchnorm_stats(Sequential& net) {
  for (int64_t i = 0; i < net.size(); ++i) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&net.layer(i))) {
      bn->set_track_running_stats(false);
    }
  }
}

namespace {

void copy_params_impl(const Sequential& src, Sequential& dst,
                      bool skip_classifier) {
  auto& src_mut = const_cast<Sequential&>(src);
  auto sp = src_mut.params();
  auto dp = dst.params();
  CHAM_CHECK(sp.size() == dp.size(), "param-list size mismatch");
  for (size_t i = 0; i < sp.size(); ++i) {
    if (sp[i]->value.shape() != dp[i]->value.shape()) {
      CHAM_CHECK(skip_classifier,
                 "architecture mismatch outside classifier: " +
                     sp[i]->value.shape().to_string() + " vs " +
                     dp[i]->value.shape().to_string());
      continue;
    }
    (void)skip_classifier;
    dp[i]->value = sp[i]->value;
  }
  // Running BN statistics are not Params; copy them explicitly.
  int64_t si = 0, di = 0;
  while (si < src_mut.size() && di < dst.size()) {
    auto* sbn = dynamic_cast<BatchNorm2d*>(&src_mut.layer(si));
    auto* dbn = dynamic_cast<BatchNorm2d*>(&dst.layer(di));
    if (sbn && dbn) {
      dbn->mutable_running_mean() = sbn->running_mean();
      dbn->mutable_running_var() = sbn->running_var();
      ++si;
      ++di;
    } else if (!sbn) {
      ++si;
    } else {
      ++di;
    }
  }
}

}  // namespace

void copy_params(const Sequential& src, Sequential& dst) {
  copy_params_impl(src, dst, /*skip_classifier=*/false);
}

void copy_params_except_classifier(const Sequential& src, Sequential& dst) {
  copy_params_impl(src, dst, /*skip_classifier=*/true);
}

void reinit_classifier(Sequential& net, Rng& rng) {
  for (int64_t i = net.size() - 1; i >= 0; --i) {
    if (auto* fc = dynamic_cast<Linear*>(&net.layer(i))) {
      for (Param* p : fc->params()) {
        if (p->value.rank() == 2) {
          const float stddev =
              std::sqrt(2.0f / static_cast<float>(fc->in_dim()));
          for (int64_t j = 0; j < p->numel(); ++j) {
            p->value[j] = rng.normal_f(0.0f, stddev);
          }
        } else {
          p->value.fill(0.0f);
        }
      }
      return;
    }
  }
}

}  // namespace cham::nn
