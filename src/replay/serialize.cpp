#include "replay/serialize.h"

#include <fstream>
#include <vector>

namespace cham::replay {
namespace {

constexpr uint32_t kMagic = 0x43524250;  // "CRBP"
constexpr uint32_t kVersion = 1;
// Precision-tagged buffer framing (save_buffer_q / load_buffer_q): every
// tensor payload carries a quant::Precision byte.
constexpr uint32_t kVersionQ = 2;
// Slab-backed slot-store framing (save_slot_store_q / load_slot_store_q):
// one shared row shape, keys/labels table, then the latent payload — a
// single fp32 range or per-row quant payloads.
constexpr uint32_t kVersionSlab = 3;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return is.good();
}

void write_tensor(std::ostream& os, const Tensor& t) {
  const uint32_t rank = static_cast<uint32_t>(t.rank());
  write_pod(os, rank);
  for (int64_t d = 0; d < t.rank(); ++d) {
    write_pod(os, static_cast<int64_t>(t.dim(d)));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

bool read_tensor(std::istream& is, Tensor& t) {
  uint32_t rank = 0;
  if (!read_pod(is, rank) || rank > 8) return false;
  std::vector<int64_t> dims(rank);
  int64_t numel = 1;
  for (auto& d : dims) {
    if (!read_pod(is, d) || d < 0 || d > (int64_t{1} << 32)) return false;
    numel *= d;
  }
  if (numel < 0 || numel > (int64_t{1} << 32)) return false;
  t = Tensor(Shape(std::move(dims)));
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(numel * sizeof(float)));
  return is.good();
}

// Precision-tagged tensor payload: u8 precision, rank + dims, then the
// quant-encoded bytes (length-prefixed; int8 carries its affine params at
// the front of the byte stream, BFP its shared exponents, so the payload is
// self-contained).
void write_tensor_q(std::ostream& os, const Tensor& t,
                    quant::Precision precision) {
  write_pod(os, static_cast<uint8_t>(precision));
  const uint32_t rank = static_cast<uint32_t>(t.rank());
  write_pod(os, rank);
  for (int64_t d = 0; d < t.rank(); ++d) {
    write_pod(os, static_cast<int64_t>(t.dim(d)));
  }
  if (precision == quant::Precision::kFp32) {
    // Skip the encode round-trip: identical bytes, no temporary copy.
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
    return;
  }
  const quant::EncodedTensor enc = quant::encode(t, precision);
  write_pod(os, static_cast<int64_t>(enc.bytes.size()));
  os.write(reinterpret_cast<const char*>(enc.bytes.data()),
           static_cast<std::streamsize>(enc.bytes.size()));
}

bool read_tensor_q(std::istream& is, Tensor& t) {
  uint8_t precision_byte = 0;
  if (!read_pod(is, precision_byte) ||
      precision_byte > static_cast<uint8_t>(quant::Precision::kInt8)) {
    return false;
  }
  const auto precision = static_cast<quant::Precision>(precision_byte);
  uint32_t rank = 0;
  if (!read_pod(is, rank) || rank > 8) return false;
  std::vector<int64_t> dims(rank);
  int64_t numel = 1;
  for (auto& d : dims) {
    if (!read_pod(is, d) || d < 0 || d > (int64_t{1} << 32)) return false;
    numel *= d;
  }
  if (numel < 0 || numel > (int64_t{1} << 32)) return false;
  if (precision == quant::Precision::kFp32) {
    t = Tensor(Shape(std::move(dims)));
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    return is.good();
  }
  int64_t nbytes = 0;
  if (!read_pod(is, nbytes) ||
      nbytes != quant::storage_bytes(precision, numel)) {
    return false;  // corrupt payload must fail the load, not trip a check
  }
  quant::EncodedTensor enc;
  enc.precision = precision;
  enc.shape = Shape(std::move(dims));
  enc.bytes.resize(static_cast<size_t>(nbytes));
  is.read(reinterpret_cast<char*>(enc.bytes.data()),
          static_cast<std::streamsize>(nbytes));
  if (!is.good()) return false;
  t = quant::decode(enc);
  return true;
}

}  // namespace

bool save_sample(const ReplaySample& sample, std::ostream& os) {
  write_pod(os, sample.key.class_id);
  write_pod(os, sample.key.domain_id);
  write_pod(os, sample.key.instance_id);
  write_pod(os, static_cast<uint8_t>(sample.key.test));
  write_pod(os, sample.label);
  // Note: a default Tensor has rank-0 shape with numel() == 1 (empty
  // product) but no storage — empty() is the authoritative check.
  const uint8_t has_latent = !sample.latent.empty();
  const uint8_t has_logits = !sample.logits.empty();
  write_pod(os, has_latent);
  write_pod(os, has_logits);
  if (has_latent) write_tensor(os, sample.latent);
  if (has_logits) write_tensor(os, sample.logits);
  return os.good();
}

bool load_sample(ReplaySample& sample, std::istream& is) {
  uint8_t test = 0, has_latent = 0, has_logits = 0;
  if (!read_pod(is, sample.key.class_id)) return false;
  if (!read_pod(is, sample.key.domain_id)) return false;
  if (!read_pod(is, sample.key.instance_id)) return false;
  if (!read_pod(is, test)) return false;
  sample.key.test = test != 0;
  if (!read_pod(is, sample.label)) return false;
  if (!read_pod(is, has_latent)) return false;
  if (!read_pod(is, has_logits)) return false;
  if (has_latent && !read_tensor(is, sample.latent)) return false;
  if (has_logits && !read_tensor(is, sample.logits)) return false;
  return true;
}

bool save_samples(const std::vector<ReplaySample>& samples, std::ostream& os) {
  write_pod(os, static_cast<int64_t>(samples.size()));
  for (const auto& s : samples) {
    if (!save_sample(s, os)) return false;
  }
  return os.good();
}

bool load_samples(std::vector<ReplaySample>& samples, std::istream& is) {
  int64_t count = 0;
  if (!read_pod(is, count) || count < 0 || count > (int64_t{1} << 32)) {
    return false;
  }
  samples.clear();
  samples.resize(static_cast<size_t>(count));
  for (auto& s : samples) {
    if (!load_sample(s, is)) return false;
  }
  return true;
}

bool save_buffer(const ReplayBuffer& buffer, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<int64_t>(buffer.capacity()));
  write_pod(os, static_cast<int64_t>(buffer.seen()));
  write_pod(os, static_cast<int64_t>(buffer.size()));
  for (int64_t i = 0; i < buffer.size(); ++i) {
    if (!save_sample(buffer.item(i), os)) return false;
  }
  return os.good();
}

bool load_buffer(ReplayBuffer& buffer, std::istream& is) {
  uint32_t magic = 0, version = 0;
  int64_t capacity = 0, seen = 0, count = 0;
  if (!read_pod(is, magic) || magic != kMagic) return false;
  if (!read_pod(is, version) || version != kVersion) return false;
  if (!read_pod(is, capacity) || capacity <= 0) return false;
  if (!read_pod(is, seen) || seen < 0) return false;
  if (!read_pod(is, count) || count < 0 || count > capacity) return false;

  ReplayBuffer loaded(capacity);
  Rng fill_rng(0);  // buffer below capacity: appends, rng unused
  for (int64_t i = 0; i < count; ++i) {
    ReplaySample s;
    if (!load_sample(s, is)) return false;
    loaded.random_replace_add(std::move(s), fill_rng);
  }
  // Restore the reservoir counter so future insertion probabilities are
  // correct: replay the seen count.
  buffer = std::move(loaded);
  buffer.set_seen(seen);
  return true;
}

bool save_sample_q(const ReplaySample& sample, std::ostream& os,
                   quant::Precision precision) {
  write_pod(os, sample.key.class_id);
  write_pod(os, sample.key.domain_id);
  write_pod(os, sample.key.instance_id);
  write_pod(os, static_cast<uint8_t>(sample.key.test));
  write_pod(os, sample.label);
  const uint8_t has_latent = !sample.latent.empty();
  const uint8_t has_logits = !sample.logits.empty();
  write_pod(os, has_latent);
  write_pod(os, has_logits);
  if (has_latent) write_tensor_q(os, sample.latent, precision);
  if (has_logits) write_tensor_q(os, sample.logits, precision);
  return os.good();
}

bool load_sample_q(ReplaySample& sample, std::istream& is) {
  uint8_t test = 0, has_latent = 0, has_logits = 0;
  if (!read_pod(is, sample.key.class_id)) return false;
  if (!read_pod(is, sample.key.domain_id)) return false;
  if (!read_pod(is, sample.key.instance_id)) return false;
  if (!read_pod(is, test)) return false;
  sample.key.test = test != 0;
  if (!read_pod(is, sample.label)) return false;
  if (!read_pod(is, has_latent)) return false;
  if (!read_pod(is, has_logits)) return false;
  if (has_latent && !read_tensor_q(is, sample.latent)) return false;
  if (has_logits && !read_tensor_q(is, sample.logits)) return false;
  return true;
}

bool save_samples_q(const std::vector<ReplaySample>& samples,
                    std::ostream& os, quant::Precision precision) {
  write_pod(os, static_cast<int64_t>(samples.size()));
  for (const auto& s : samples) {
    if (!save_sample_q(s, os, precision)) return false;
  }
  return os.good();
}

bool load_samples_q(std::vector<ReplaySample>& samples, std::istream& is) {
  int64_t count = 0;
  if (!read_pod(is, count) || count < 0 || count > (int64_t{1} << 32)) {
    return false;
  }
  samples.clear();
  samples.resize(static_cast<size_t>(count));
  for (auto& s : samples) {
    if (!load_sample_q(s, is)) return false;
  }
  return true;
}

bool save_buffer_q(const ReplayBuffer& buffer, std::ostream& os,
                   quant::Precision precision) {
  write_pod(os, kMagic);
  write_pod(os, kVersionQ);
  write_pod(os, static_cast<int64_t>(buffer.capacity()));
  write_pod(os, static_cast<int64_t>(buffer.seen()));
  write_pod(os, static_cast<int64_t>(buffer.size()));
  for (int64_t i = 0; i < buffer.size(); ++i) {
    if (!save_sample_q(buffer.item(i), os, precision)) return false;
  }
  return os.good();
}

bool load_buffer_q(ReplayBuffer& buffer, std::istream& is) {
  uint32_t magic = 0, version = 0;
  int64_t capacity = 0, seen = 0, count = 0;
  if (!read_pod(is, magic) || magic != kMagic) return false;
  if (!read_pod(is, version) || version != kVersionQ) return false;
  if (!read_pod(is, capacity) || capacity <= 0) return false;
  if (!read_pod(is, seen) || seen < 0) return false;
  if (!read_pod(is, count) || count < 0 || count > capacity) return false;

  ReplayBuffer loaded(capacity);
  Rng fill_rng(0);  // buffer below capacity: appends, rng unused
  for (int64_t i = 0; i < count; ++i) {
    ReplaySample s;
    if (!load_sample_q(s, is)) return false;
    loaded.random_replace_add(std::move(s), fill_rng);
  }
  buffer = std::move(loaded);
  buffer.set_seen(seen);
  return true;
}

bool save_slot_store_q(const SlotStore& store, std::ostream& os,
                       quant::Precision precision) {
  write_pod(os, kMagic);
  write_pod(os, kVersionSlab);
  write_pod(os, static_cast<int64_t>(store.capacity()));
  write_pod(os, static_cast<int64_t>(store.seen()));
  write_pod(os, static_cast<int64_t>(store.size()));
  const uint32_t rank =
      store.configured() ? static_cast<uint32_t>(store.row_shape().rank()) : 0;
  write_pod(os, rank);
  for (uint32_t d = 0; d < rank; ++d) {
    write_pod(os, static_cast<int64_t>(store.row_shape()[d]));
  }
  for (int64_t i = 0; i < store.size(); ++i) {
    const auto& k = store.key(i);
    write_pod(os, k.class_id);
    write_pod(os, k.domain_id);
    write_pod(os, k.instance_id);
    write_pod(os, static_cast<uint8_t>(k.test));
    write_pod(os, static_cast<int64_t>(store.label(i)));
  }
  write_pod(os, static_cast<uint8_t>(precision));
  if (store.size() == 0) return os.good();
  if (precision == quant::Precision::kFp32) {
    // The whole occupied range in one write — the slab is contiguous.
    os.write(reinterpret_cast<const char*>(store.rows()),
             static_cast<std::streamsize>(store.size() * store.row_numel() *
                                          sizeof(float)));
    return os.good();
  }
  Tensor row_scratch(store.row_shape());
  for (int64_t i = 0; i < store.size(); ++i) {
    std::memcpy(row_scratch.data(), store.row(i),
                static_cast<size_t>(store.row_numel()) * sizeof(float));
    const quant::EncodedTensor enc = quant::encode(row_scratch, precision);
    write_pod(os, static_cast<int64_t>(enc.bytes.size()));
    os.write(reinterpret_cast<const char*>(enc.bytes.data()),
             static_cast<std::streamsize>(enc.bytes.size()));
  }
  return os.good();
}

bool load_slot_store_q(SlotStore& store, std::istream& is) {
  uint32_t magic = 0, version = 0, rank = 0;
  int64_t capacity = 0, seen = 0, count = 0;
  if (!read_pod(is, magic) || magic != kMagic) return false;
  if (!read_pod(is, version) || version != kVersionSlab) return false;
  if (!read_pod(is, capacity) || capacity <= 0) return false;
  if (!read_pod(is, seen) || seen < 0) return false;
  if (!read_pod(is, count) || count < 0 || count > capacity) return false;
  if (!read_pod(is, rank) || rank > 8) return false;
  if (count > 0 && rank == 0) return false;
  std::vector<int64_t> dims(rank);
  int64_t row_numel = 1;
  for (auto& d : dims) {
    if (!read_pod(is, d) || d <= 0 || d > (int64_t{1} << 32)) return false;
    row_numel *= d;
  }
  if (row_numel > (int64_t{1} << 32)) return false;

  SlotStore loaded(capacity);
  struct KeyRow {
    data::ImageKey key;
    int64_t label;
  };
  std::vector<KeyRow> table(static_cast<size_t>(count));
  for (auto& r : table) {
    uint8_t test = 0;
    if (!read_pod(is, r.key.class_id)) return false;
    if (!read_pod(is, r.key.domain_id)) return false;
    if (!read_pod(is, r.key.instance_id)) return false;
    if (!read_pod(is, test)) return false;
    r.key.test = test != 0;
    if (!read_pod(is, r.label) || r.label < 0) return false;
  }
  uint8_t precision_byte = 0;
  if (!read_pod(is, precision_byte) ||
      precision_byte > static_cast<uint8_t>(quant::Precision::kInt8)) {
    return false;
  }
  const auto precision = static_cast<quant::Precision>(precision_byte);
  if (count > 0) {
    const Shape row_shape{std::span<const int64_t>(dims)};
    Rng fill_rng(0);  // store below capacity: appends, rng unused
    if (precision == quant::Precision::kFp32) {
      Tensor row_scratch(row_shape);
      for (int64_t i = 0; i < count; ++i) {
        is.read(reinterpret_cast<char*>(row_scratch.data()),
                static_cast<std::streamsize>(row_numel * sizeof(float)));
        if (!is.good()) return false;
        const auto& r = table[static_cast<size_t>(i)];
        loaded.random_replace_add(r.key, r.label, row_scratch, fill_rng);
      }
    } else {
      const int64_t expect_bytes = quant::storage_bytes(precision, row_numel);
      for (int64_t i = 0; i < count; ++i) {
        int64_t nbytes = 0;
        if (!read_pod(is, nbytes) || nbytes != expect_bytes) return false;
        quant::EncodedTensor enc;
        enc.precision = precision;
        enc.shape = row_shape;
        enc.bytes.resize(static_cast<size_t>(nbytes));
        is.read(reinterpret_cast<char*>(enc.bytes.data()),
                static_cast<std::streamsize>(nbytes));
        if (!is.good()) return false;
        const Tensor row = quant::decode(enc);
        const auto& r = table[static_cast<size_t>(i)];
        loaded.random_replace_add(r.key, r.label, row, fill_rng);
      }
    }
  }
  store = std::move(loaded);
  store.set_seen(seen);
  return true;
}

bool save_buffer_file(const ReplayBuffer& buffer, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  return f && save_buffer(buffer, f);
}

bool load_buffer_file(ReplayBuffer& buffer, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return f && load_buffer(buffer, f);
}

}  // namespace cham::replay
