// Replay-state serialisation: persist the dual memories across device
// reboots. An edge deployment that loses its replay buffers on power-cycle
// re-forgets everything the buffers protected, so checkpointing the stores
// (tiny: KBs to a few MB) is part of making the paper's system practical.
//
// Binary format: magic/version header, sample count, then per sample the
// key, label, latent shape + payload and optional logits payload.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "quant/quantize.h"
#include "replay/buffer.h"

namespace cham::replay {

// Streams. Return false on malformed input or I/O failure; on failure the
// buffer is left in a valid (possibly partially loaded, then cleared)
// state.
bool save_buffer(const ReplayBuffer& buffer, std::ostream& os);
bool load_buffer(ReplayBuffer& buffer, std::istream& is);

// File convenience wrappers.
bool save_buffer_file(const ReplayBuffer& buffer, const std::string& path);
bool load_buffer_file(ReplayBuffer& buffer, const std::string& path);

// Single samples (shared by the buffer functions; exposed for the
// long-term store, which manages its own per-class slots).
bool save_sample(const ReplaySample& sample, std::ostream& os);
bool load_sample(ReplaySample& sample, std::istream& is);

// Flat sample lists (count-prefixed). Used for the long-term store contents
// and the staged LT burst inside learner-state checkpoints; order is
// preserved exactly, which the bit-identical session-restore contract in
// src/serve/ depends on.
bool save_samples(const std::vector<ReplaySample>& samples, std::ostream& os);
bool load_samples(std::vector<ReplaySample>& samples, std::istream& is);

// Precision-tagged variants: latent/logits payloads are stored through
// quant::encode at the given precision (each tensor carries its own
// precision byte, so the loaders need no out-of-band information).
// kFp32 round-trips bit-exactly and writes the same payload bytes as the
// untagged functions plus the tags; the reduced precisions shrink the
// dominant checkpoint payload 2x-4x at the usual quantisation error
// (bench_serve's ablation measures the accuracy cost). Used by CHS2 v3
// learner blobs (core/checkpoint.cpp).
bool save_sample_q(const ReplaySample& sample, std::ostream& os,
                   quant::Precision precision);
bool load_sample_q(ReplaySample& sample, std::istream& is);
bool save_samples_q(const std::vector<ReplaySample>& samples,
                    std::ostream& os, quant::Precision precision);
bool load_samples_q(std::vector<ReplaySample>& samples, std::istream& is);
bool save_buffer_q(const ReplayBuffer& buffer, std::ostream& os,
                   quant::Precision precision);
bool load_buffer_q(ReplayBuffer& buffer, std::istream& is);

// Slab-backed slot stores (version-3 framing). The ST latents live in one
// contiguous slab with a single shared row shape, so the fp32 payload is
// ONE range write of count * row_numel floats straight out of the slab —
// no per-slot tensor walk. Reduced precisions store one length-prefixed
// quant payload per row. kFp32 round-trips bit-exactly; the store's slot
// order, keys, labels, capacity and stream counter are all preserved.
bool save_slot_store_q(const SlotStore& store, std::ostream& os,
                       quant::Precision precision);
bool load_slot_store_q(SlotStore& store, std::istream& is);

}  // namespace cham::replay
