// Fixed-capacity replay buffer with the two insertion policies used across
// the baselines: reservoir sampling (ER/DER) and random replacement.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "replay/sample.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/check.h"

namespace cham::replay {

class ReplayBuffer {
 public:
  explicit ReplayBuffer(int64_t capacity) : capacity_(capacity) {}

  int64_t capacity() const { return capacity_; }
  int64_t size() const { return static_cast<int64_t>(items_.size()); }
  bool full() const { return size() >= capacity_; }
  int64_t seen() const { return seen_; }

  const ReplaySample& item(int64_t i) const {
    return items_[static_cast<size_t>(i)];
  }
  ReplaySample& item(int64_t i) { return items_[static_cast<size_t>(i)]; }
  const std::vector<ReplaySample>& items() const { return items_; }

  // Classic reservoir sampling: keeps a uniform subsample of the stream.
  // Returns the slot written, or -1 if the sample was dropped.
  int64_t reservoir_add(ReplaySample sample, Rng& rng) {
    ++seen_;
    if (!full()) {
      items_.push_back(std::move(sample));
      return size() - 1;
    }
    const int64_t j = rng.uniform_int(seen_);
    if (j < capacity_) {
      items_[static_cast<size_t>(j)] = std::move(sample);
      return j;
    }
    return -1;
  }

  // Appends while not full, then overwrites a uniformly random slot.
  int64_t random_replace_add(ReplaySample sample, Rng& rng) {
    ++seen_;
    if (!full()) {
      items_.push_back(std::move(sample));
      return size() - 1;
    }
    const int64_t j = rng.uniform_int(capacity_);
    items_[static_cast<size_t>(j)] = std::move(sample);
    return j;
  }

  // Indices of up to k distinct samples drawn uniformly at random.
  std::vector<int64_t> sample_indices(int64_t k, Rng& rng) const {
    return rng.sample_without_replacement(size(), std::min(k, size()));
  }

  void clear() {
    items_.clear();
    seen_ = 0;
  }

  // Restores the reservoir counter after deserialisation so future
  // insertion probabilities continue from the checkpointed stream position.
  void set_seen(int64_t seen) { seen_ = seen; }

 private:
  int64_t capacity_;
  int64_t seen_ = 0;
  std::vector<ReplaySample> items_;
};

// Slot-stable short-term store backed by ONE contiguous slab: slot i's
// latent is the row_numel() floats at row(i), at a fixed offset for the
// store's whole lifetime. This is what makes the replay path zero-copy —
// the training gather packs GEMM panels straight out of the slab (rows are
// unit-stride), and checkpointing range-copies [row(0), row(size())) in a
// single memcpy instead of walking per-slot tensors.
//
// Insertion follows ReplayBuffer::random_replace_add exactly (append while
// below capacity, then overwrite a uniformly random slot) with the same
// RNG draw sequence, so a SlotStore-backed ShortTermMemory is bit-identical
// to the per-tensor buffer it replaces.
//
// Row geometry is configured by the first insertion and fixed thereafter
// (every ST latent shares the backbone's latent shape); the slab is
// allocated once at configure time through the workspace pool.
class SlotStore {
 public:
  explicit SlotStore(int64_t capacity) : capacity_(capacity) {}

  int64_t capacity() const { return capacity_; }
  int64_t size() const { return size_; }
  bool full() const { return size_ >= capacity_; }
  int64_t seen() const { return seen_; }
  bool configured() const { return row_numel_ > 0; }
  const Shape& row_shape() const { return row_shape_; }
  int64_t row_numel() const { return row_numel_; }

  const data::ImageKey& key(int64_t i) const {
    return keys_[static_cast<size_t>(i)];
  }
  int64_t label(int64_t i) const { return labels_[static_cast<size_t>(i)]; }
  const float* row(int64_t i) const {
    CHAM_DCHECK(i >= 0 && i < size_, "SlotStore row " + std::to_string(i) +
                                         " of " + std::to_string(size_));
    return slab_.data() + i * row_numel_;
  }
  float* mutable_row(int64_t i) {
    return const_cast<float*>(static_cast<const SlotStore*>(this)->row(i));
  }
  // Base of the contiguous occupied range [rows(), rows() + size() *
  // row_numel()); what checkpointing serialises with one range write.
  const float* rows() const { return slab_.data(); }

  // Materialises slot i as a Tensor (row_shape()); off the steady path —
  // used by the LT promotion block and tests.
  Tensor latent_copy(int64_t i) const {
    Tensor t(row_shape_);
    std::memcpy(t.data(), row(i),
                static_cast<size_t>(row_numel_) * sizeof(float));
    return t;
  }

  // Fixes the row geometry and allocates the slab (idempotent; the shape
  // must match once set).
  void configure(const Shape& shape) {
    if (configured()) {
      CHAM_CHECK(shape == row_shape_,
                 "SlotStore row shape " + shape.to_string() +
                     " differs from configured " + row_shape_.to_string());
      return;
    }
    CHAM_CHECK(shape.numel() > 0, "SlotStore: empty row shape");
    row_shape_ = shape;
    row_numel_ = shape.numel();
    slab_.resize(static_cast<size_t>(capacity_ * row_numel_));
    keys_.resize(static_cast<size_t>(capacity_));
    labels_.resize(static_cast<size_t>(capacity_));
  }

  // Appends while not full, then overwrites a uniformly random slot. Same
  // policy and RNG consumption as ReplayBuffer::random_replace_add: one
  // uniform_int(capacity) draw if and only if the store is full.
  int64_t random_replace_add(const data::ImageKey& key, int64_t label,
                             const Shape& shape, const float* src, Rng& rng) {
    configure(shape);
    ++seen_;
    int64_t slot;
    if (!full()) {
      slot = size_++;
    } else {
      slot = rng.uniform_int(capacity_);
    }
    std::memcpy(slab_.data() + slot * row_numel_, src,
                static_cast<size_t>(row_numel_) * sizeof(float));
    keys_[static_cast<size_t>(slot)] = key;
    labels_[static_cast<size_t>(slot)] = label;
    return slot;
  }
  int64_t random_replace_add(const data::ImageKey& key, int64_t label,
                             const Tensor& latent, Rng& rng) {
    return random_replace_add(key, label, latent.shape(), latent.data(), rng);
  }

  void clear() {
    size_ = 0;
    seen_ = 0;
  }

  // Restores the stream counter after deserialisation so future insertion
  // probabilities continue from the checkpointed position.
  void set_seen(int64_t seen) { seen_ = seen; }

 private:
  int64_t capacity_;
  int64_t seen_ = 0;
  int64_t size_ = 0;
  Shape row_shape_;
  int64_t row_numel_ = 0;
  ws::FloatBuffer slab_;
  std::vector<data::ImageKey> keys_;
  std::vector<int64_t> labels_;
};

}  // namespace cham::replay
