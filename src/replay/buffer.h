// Fixed-capacity replay buffer with the two insertion policies used across
// the baselines: reservoir sampling (ER/DER) and random replacement.
#pragma once

#include <cstdint>
#include <vector>

#include "replay/sample.h"
#include "tensor/rng.h"

namespace cham::replay {

class ReplayBuffer {
 public:
  explicit ReplayBuffer(int64_t capacity) : capacity_(capacity) {}

  int64_t capacity() const { return capacity_; }
  int64_t size() const { return static_cast<int64_t>(items_.size()); }
  bool full() const { return size() >= capacity_; }
  int64_t seen() const { return seen_; }

  const ReplaySample& item(int64_t i) const {
    return items_[static_cast<size_t>(i)];
  }
  ReplaySample& item(int64_t i) { return items_[static_cast<size_t>(i)]; }
  const std::vector<ReplaySample>& items() const { return items_; }

  // Classic reservoir sampling: keeps a uniform subsample of the stream.
  // Returns the slot written, or -1 if the sample was dropped.
  int64_t reservoir_add(ReplaySample sample, Rng& rng) {
    ++seen_;
    if (!full()) {
      items_.push_back(std::move(sample));
      return size() - 1;
    }
    const int64_t j = rng.uniform_int(seen_);
    if (j < capacity_) {
      items_[static_cast<size_t>(j)] = std::move(sample);
      return j;
    }
    return -1;
  }

  // Appends while not full, then overwrites a uniformly random slot.
  int64_t random_replace_add(ReplaySample sample, Rng& rng) {
    ++seen_;
    if (!full()) {
      items_.push_back(std::move(sample));
      return size() - 1;
    }
    const int64_t j = rng.uniform_int(capacity_);
    items_[static_cast<size_t>(j)] = std::move(sample);
    return j;
  }

  // Indices of up to k distinct samples drawn uniformly at random.
  std::vector<int64_t> sample_indices(int64_t k, Rng& rng) const {
    return rng.sample_without_replacement(size(), std::min(k, size()));
  }

  void clear() {
    items_.clear();
    seen_ = 0;
  }

  // Restores the reservoir counter after deserialisation so future
  // insertion probabilities continue from the checkpointed stream position.
  void set_seen(int64_t seen) { seen_ = seen; }

 private:
  int64_t capacity_;
  int64_t seen_ = 0;
  std::vector<ReplaySample> items_;
};

}  // namespace cham::replay
