// Replay-memory accounting (Table I "Memory Overhead" column).
//
// Different methods pay different bytes for the *same* number of replay
// samples — the core observation behind Figure 2 and Table I:
//   ER  : raw image + label
//   DER : raw image + label + stored logits
//   GSS : raw image + label + gradient vector (~10x, paper Sec. IV-B)
//   Latent Replay / Chameleon : latent activation + label
//   EWC++ : two extra parameter-sized tensors (Fisher diag + anchor)
//   LwF  : one frozen teacher copy of the trainable head
//   SLDA : class means + shared covariance over the pooled latent dim
#pragma once

#include <cstdint>

namespace cham::replay {

constexpr int64_t kBytesPerFloat = 4;
constexpr int64_t kBytesPerLabel = 4;

inline int64_t raw_image_bytes(int64_t channels, int64_t hw) {
  return channels * hw * hw * kBytesPerFloat;
}

inline int64_t latent_bytes(int64_t latent_numel) {
  return latent_numel * kBytesPerFloat;
}

inline int64_t logits_bytes(int64_t num_classes) {
  return num_classes * kBytesPerFloat;
}

inline int64_t er_sample_bytes(int64_t channels, int64_t hw) {
  return raw_image_bytes(channels, hw) + kBytesPerLabel;
}

inline int64_t der_sample_bytes(int64_t channels, int64_t hw,
                                int64_t num_classes) {
  return er_sample_bytes(channels, hw) + logits_bytes(num_classes);
}

inline int64_t gss_sample_bytes(int64_t channels, int64_t hw,
                                int64_t grad_dim) {
  return er_sample_bytes(channels, hw) + grad_dim * kBytesPerFloat;
}

inline int64_t latent_sample_bytes(int64_t latent_numel) {
  return latent_bytes(latent_numel) + kBytesPerLabel;
}

inline int64_t ewc_overhead_bytes(int64_t param_count) {
  return 2 * param_count * kBytesPerFloat;  // Fisher diagonal + anchor
}

inline int64_t lwf_overhead_bytes(int64_t param_count) {
  return param_count * kBytesPerFloat;  // frozen teacher head
}

inline int64_t slda_overhead_bytes(int64_t feature_dim, int64_t num_classes) {
  // class means + shared covariance + cached precision matrix
  return (num_classes * feature_dim + 2 * feature_dim * feature_dim) *
         kBytesPerFloat;
}

inline double bytes_to_mb(int64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace cham::replay
