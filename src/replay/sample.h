// The unit stored in every replay buffer.
//
// Latent-storing methods (Latent Replay, Chameleon) keep the latent tensor;
// raw-image methods (ER, DER, GSS) keep only the ImageKey — the image is
// deterministic from the key, and the hardware cost model charges them the
// raw-image bytes and the backbone recompute that a real device would pay.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace cham::replay {

struct ReplaySample {
  data::ImageKey key;
  int64_t label = 0;
  Tensor latent;  // 1 x C x H x W; empty for raw-image methods
  Tensor logits;  // stored network response (DER); empty otherwise
};

}  // namespace cham::replay
