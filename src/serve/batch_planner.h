// Cross-session predict coalescing for the serving runtime.
//
// Predict requests are state-pure (core::HeadLearner::eval_batch) and every
// head layer treats batch rows independently in eval mode, so queued
// predicts can be pulled ahead of OTHER sessions' work and merged into
// larger stacked evaluations without changing any per-session result bit.
// The BatchPlanner encodes exactly when that reordering is legal and in
// what order the merged work runs:
//
//   Eligibility   A queued predict may join a plan iff no EARLIER request
//                 of the SAME session is still ahead of it in the queue
//                 (per-session FIFO / read-your-writes is preserved; only
//                 cross-session order — which has no contract — changes).
//                 Equivalently: each session contributes its leading run of
//                 predicts, nothing behind an observe.
//
//   Determinism   The eligible set is a per-session property, so it does
//                 not depend on how sessions' submissions interleaved.
//                 finalize() stable-sorts items by session_id (same-session
//                 items keep submission order), making the plan — order,
//                 grouping, and therefore every downstream bit — a pure
//                 function of {per-session request sequences}, not of
//                 arrival interleaving or shard count.
//
//   Bounding      max_batch bounds how many requests one eval pass merges
//                 (the gather buffer stays small); max_wait_us bounds how
//                 long a threaded shard worker may hold an undersized plan
//                 open to admit stragglers. Neither affects results, only
//                 latency/throughput shape.
//
// Lifecycle (see DESIGN.md "Batch-plan lifecycle"): take_eligible() runs
// under the owning shard's mutex and only moves queue entries (no blocking
// calls, no allocation beyond vector moves — cham_lint enforces this over
// the begin/end(batch_plan) markers); finalize() and execution run with no
// shard lock held.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "data/stream.h"

namespace cham::serve {

// One queued serving request: the shard queue element, shared by the
// SessionManager queues and the planner.
struct Request {
  enum class Kind { kObserve, kPredict };
  Kind kind = Kind::kObserve;
  uint64_t session_id = 0;
  data::Batch batch;                 // kObserve payload
  std::vector<data::ImageKey> keys;  // kPredict payload (owned: a queued
                                     // request must not dangle if the
                                     // submitting frame unwinds early)
  std::shared_ptr<std::promise<std::vector<int64_t>>> reply;  // kPredict
};

struct BatchPlannerConfig {
  // Max predict requests merged into one stacked eval pass. 1 disables
  // cross-request merging (every predict evaluates alone — the fidelity
  // reference the bit-exactness bench gate compares against).
  int64_t max_batch = 8;
  // Threaded shards only: how long a worker holding an undersized plan
  // waits for more predicts before executing. 0 = execute immediately.
  int64_t max_wait_us = 0;
};

// A contiguous run of plan items belonging to one session.
struct PlanGroup {
  uint64_t session_id = 0;
  std::size_t begin = 0;  // [begin, end) into BatchPlan::items
  std::size_t end = 0;
  int64_t rows = 0;  // total keys across the run (stacked gather rows)
};

// An executable plan: eligible predicts in deterministic order, grouped by
// session. Execution contract: groups run in items order (ascending
// session_id); within a group the executor merges requests into eval
// windows of at most max_batch requests.
struct BatchPlan {
  std::vector<Request> items;
  std::vector<PlanGroup> groups;

  bool empty() const { return items.empty(); }
  int64_t size() const { return static_cast<int64_t>(items.size()); }
};

class BatchPlanner {
 public:
  explicit BatchPlanner(const BatchPlannerConfig& cfg) : cfg_(cfg) {}

  const BatchPlannerConfig& config() const { return cfg_; }

  // Phase 1 — extraction. Removes every eligible predict from `queue`
  // (appending to `out` in queue order) and leaves everything else in
  // place. The caller MUST hold the mutex guarding `queue`; the body is
  // straight pointer/vector moves so the critical section stays flat.
  // Appending to `out` lets the deterministic drain pool one extraction
  // pass per shard into a single cross-shard plan.
  void take_eligible(std::deque<Request>& queue,
                     std::vector<Request>& out) const;

  // Phase 2 — ordering. Stable-sorts the extracted items by session_id and
  // builds the per-session groups. Runs with no locks held.
  BatchPlan finalize(std::vector<Request> items) const;

 private:
  BatchPlannerConfig cfg_;
};

}  // namespace cham::serve
