// Serving-runtime counters, exported alongside the per-learner OpStats.
//
// OpStats describes what one learner's algorithm costs per image; ServeStats
// describes what the multi-session runtime around the learners does —
// admission control, queue pressure, and the checkpoint traffic of moving
// session state across the residency hierarchy (resident learners are the
// paper's on-chip tier, the disk-backed SessionStore the off-chip tier; see
// DESIGN.md "Serving runtime").
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

namespace cham::serve {

struct ServeStats {
  // Admission control.
  int64_t submitted = 0;   // observe + predict submissions
  int64_t admissions = 0;  // accepted into a shard queue
  int64_t rejections = 0;  // bounded queue full: rejected with a retry hint

  // Dispatch.
  int64_t observes = 0;  // observe requests executed
  int64_t predicts = 0;  // predict requests executed

  // Residency / eviction.
  int64_t creates = 0;    // sessions constructed fresh (first contact)
  int64_t evictions = 0;  // resident learner serialised to the store
  int64_t restores = 0;   // store blob deserialised back to residency
  int64_t resident_high_water = 0;
  int64_t queue_depth_high_water = 0;  // max depth over all shards

  // Store round-trip latency (wall milliseconds).
  double save_ms_total = 0;
  double save_ms_max = 0;
  double restore_ms_total = 0;
  double restore_ms_max = 0;

  double save_ms_avg() const {
    return evictions > 0 ? save_ms_total / static_cast<double>(evictions)
                         : 0.0;
  }
  double restore_ms_avg() const {
    return restores > 0 ? restore_ms_total / static_cast<double>(restores)
                        : 0.0;
  }

  void record_save_ms(double ms) {
    save_ms_total += ms;
    save_ms_max = std::max(save_ms_max, ms);
  }
  void record_restore_ms(double ms) {
    restore_ms_total += ms;
    restore_ms_max = std::max(restore_ms_max, ms);
  }

  std::string to_json() const {
    auto num = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", v);
      return std::string(buf);
    };
    std::string j = "{";
    j += "\"submitted\": " + std::to_string(submitted);
    j += ", \"admissions\": " + std::to_string(admissions);
    j += ", \"rejections\": " + std::to_string(rejections);
    j += ", \"observes\": " + std::to_string(observes);
    j += ", \"predicts\": " + std::to_string(predicts);
    j += ", \"creates\": " + std::to_string(creates);
    j += ", \"evictions\": " + std::to_string(evictions);
    j += ", \"restores\": " + std::to_string(restores);
    j += ", \"resident_high_water\": " + std::to_string(resident_high_water);
    j += ", \"queue_depth_high_water\": " +
         std::to_string(queue_depth_high_water);
    j += ", \"save_ms_avg\": " + num(save_ms_avg());
    j += ", \"save_ms_max\": " + num(save_ms_max);
    j += ", \"restore_ms_avg\": " + num(restore_ms_avg());
    j += ", \"restore_ms_max\": " + num(restore_ms_max);
    j += "}";
    return j;
  }
};

}  // namespace cham::serve
