// Serving-runtime counters, exported alongside the per-learner OpStats.
//
// OpStats describes what one learner's algorithm costs per image; ServeStats
// describes what the multi-session runtime around the learners does —
// admission control, queue pressure, and the checkpoint traffic of moving
// session state across the residency hierarchy (resident learners are the
// paper's on-chip tier, the disk-backed SessionStore the off-chip tier; see
// DESIGN.md "Serving runtime").
//
// Deliberately plain (non-atomic) fields: every instance is either local to
// one thread (returned snapshots) or CHAM_GUARDED_BY a stats mutex
// (SessionManager::stats_, WriteBehind::stats_). Per the memory-ordering
// policy in util/sync.h, counters behind a mutex need no atomics at all —
// atomics here would only hide a missing-lock bug from TSan and the
// thread-safety analysis.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/json.h"

namespace cham::serve {

struct ServeStats {
  // Admission control.
  int64_t submitted = 0;   // observe + predict submissions
  int64_t admissions = 0;  // accepted into a shard queue
  int64_t rejections = 0;  // bounded queue full: rejected with a retry hint

  // Dispatch.
  int64_t observes = 0;  // observe requests executed
  int64_t predicts = 0;  // predict requests executed
  int64_t dispatch_errors = 0;  // requests whose execution threw

  // Batched predict dispatch (serve/batch_planner.h).
  int64_t predict_batches = 0;   // merged eval windows executed (>= 2 reqs)
  int64_t batched_predicts = 0;  // predict requests served inside those
  int64_t batch_size_max = 0;    // largest window, in requests

  // Backpressure retry hints actually returned on rejection (ms). The avg
  // tracks how hard admission control is pushing callers back; scales with
  // observed queue drain rate, so it grows under sustained overload.
  double retry_hint_ms_sum = 0;
  double retry_hint_ms_max = 0;

  // Residency / eviction.
  int64_t creates = 0;    // sessions constructed fresh (first contact)
  int64_t evictions = 0;  // resident learner snapshotted out of residency
  int64_t restores = 0;   // sessions rematerialised (any source)
  int64_t pending_restores = 0;  // served from an in-flight write-behind blob
  int64_t cache_restores = 0;    // served from the flushed-snapshot cache
  int64_t disk_restores = 0;     // served from the SessionStore
  int64_t replayed_ops = 0;      // ops replayed applying op-log deltas
  int64_t resident_high_water = 0;
  int64_t queue_depth_high_water = 0;  // max depth over all shards

  // Eviction latency split (wall milliseconds). save_ms is the in-memory
  // snapshot serialisation on the dispatch thread (unpinned, no locks
  // held); evict_lock_ms is the portion under sessions_mu_ — victim
  // selection and unlink only, the number the <1ms bench gate watches.
  double save_ms_total = 0;
  double save_ms_max = 0;
  double evict_lock_ms_total = 0;
  double evict_lock_ms_max = 0;
  double restore_ms_total = 0;
  double restore_ms_max = 0;

  // Write-behind pipeline (mirrored from WriteBehindStats by the manager).
  int64_t wb_flushes = 0;
  int64_t wb_flush_errors = 0;
  int64_t wb_full_saves = 0;
  int64_t wb_chunk_saves = 0;
  int64_t wb_oplog_saves = 0;
  int64_t wb_full_bytes = 0;
  int64_t wb_delta_bytes = 0;
  int64_t wb_compactions = 0;
  int64_t wb_queue_depth_high_water = 0;
  int64_t wb_cache_bytes_high_water = 0;
  double flush_ms_total = 0;  // background IO per flush (encode + write)
  double flush_ms_max = 0;

  double save_ms_avg() const {
    return evictions > 0 ? save_ms_total / static_cast<double>(evictions)
                         : 0.0;
  }
  double restore_ms_avg() const {
    return restores > 0 ? restore_ms_total / static_cast<double>(restores)
                        : 0.0;
  }

  void record_save_ms(double ms) {
    save_ms_total += ms;
    save_ms_max = std::max(save_ms_max, ms);
  }
  void record_evict_lock_ms(double ms) {
    evict_lock_ms_total += ms;
    evict_lock_ms_max = std::max(evict_lock_ms_max, ms);
  }
  void record_restore_ms(double ms) {
    restore_ms_total += ms;
    restore_ms_max = std::max(restore_ms_max, ms);
  }
  void record_retry_hint_ms(double ms) {
    retry_hint_ms_sum += ms;
    retry_hint_ms_max = std::max(retry_hint_ms_max, ms);
  }
  double retry_hint_ms_avg() const {
    return rejections > 0 ? retry_hint_ms_sum / static_cast<double>(rejections)
                          : 0.0;
  }

  std::string to_json() const {
    util::JsonWriter j;
    j.field("submitted", submitted);
    j.field("admissions", admissions);
    j.field("rejections", rejections);
    j.field("observes", observes);
    j.field("predicts", predicts);
    j.field("dispatch_errors", dispatch_errors);
    j.field("predict_batches", predict_batches);
    j.field("batched_predicts", batched_predicts);
    j.field("batch_size_max", batch_size_max);
    j.field("retry_hint_ms_avg", retry_hint_ms_avg());
    j.field("retry_hint_ms_max", retry_hint_ms_max);
    j.field("creates", creates);
    j.field("evictions", evictions);
    j.field("restores", restores);
    j.field("pending_restores", pending_restores);
    j.field("cache_restores", cache_restores);
    j.field("disk_restores", disk_restores);
    j.field("replayed_ops", replayed_ops);
    j.field("resident_high_water", resident_high_water);
    j.field("queue_depth_high_water", queue_depth_high_water);
    j.field("save_ms_avg", save_ms_avg());
    j.field("save_ms_max", save_ms_max);
    j.field("evict_lock_ms_avg",
            evictions > 0 ? evict_lock_ms_total / static_cast<double>(evictions)
                          : 0.0);
    j.field("evict_lock_ms_max", evict_lock_ms_max);
    j.field("restore_ms_avg", restore_ms_avg());
    j.field("restore_ms_max", restore_ms_max);
    j.field("wb_flushes", wb_flushes);
    j.field("wb_flush_errors", wb_flush_errors);
    j.field("wb_full_saves", wb_full_saves);
    j.field("wb_chunk_saves", wb_chunk_saves);
    j.field("wb_oplog_saves", wb_oplog_saves);
    j.field("wb_full_bytes", wb_full_bytes);
    j.field("wb_delta_bytes", wb_delta_bytes);
    j.field("wb_compactions", wb_compactions);
    j.field("wb_queue_depth_high_water", wb_queue_depth_high_water);
    j.field("wb_cache_bytes_high_water", wb_cache_bytes_high_water);
    j.field("flush_ms_max", flush_ms_max);
    return j.str();
  }
};

}  // namespace cham::serve
