// Serving-runtime counters, exported alongside the per-learner OpStats.
//
// OpStats describes what one learner's algorithm costs per image; ServeStats
// describes what the multi-session runtime around the learners does —
// admission control, queue pressure, and the checkpoint traffic of moving
// session state across the residency hierarchy (resident learners are the
// paper's on-chip tier, the disk-backed SessionStore the off-chip tier; see
// DESIGN.md "Serving runtime").
//
// Deliberately plain (non-atomic) fields: every instance is either local to
// one thread (returned snapshots) or CHAM_GUARDED_BY a stats mutex
// (SessionManager::stats_, WriteBehind::stats_). Per the memory-ordering
// policy in util/sync.h, counters behind a mutex need no atomics at all —
// atomics here would only hide a missing-lock bug from TSan and the
// thread-safety analysis.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

namespace cham::serve {

struct ServeStats {
  // Admission control.
  int64_t submitted = 0;   // observe + predict submissions
  int64_t admissions = 0;  // accepted into a shard queue
  int64_t rejections = 0;  // bounded queue full: rejected with a retry hint

  // Dispatch.
  int64_t observes = 0;  // observe requests executed
  int64_t predicts = 0;  // predict requests executed
  int64_t dispatch_errors = 0;  // requests whose execution threw

  // Batched predict dispatch (serve/batch_planner.h).
  int64_t predict_batches = 0;   // merged eval windows executed (>= 2 reqs)
  int64_t batched_predicts = 0;  // predict requests served inside those
  int64_t batch_size_max = 0;    // largest window, in requests

  // Backpressure retry hints actually returned on rejection (ms). The avg
  // tracks how hard admission control is pushing callers back; scales with
  // observed queue drain rate, so it grows under sustained overload.
  double retry_hint_ms_sum = 0;
  double retry_hint_ms_max = 0;

  // Residency / eviction.
  int64_t creates = 0;    // sessions constructed fresh (first contact)
  int64_t evictions = 0;  // resident learner snapshotted out of residency
  int64_t restores = 0;   // sessions rematerialised (any source)
  int64_t pending_restores = 0;  // served from an in-flight write-behind blob
  int64_t cache_restores = 0;    // served from the flushed-snapshot cache
  int64_t disk_restores = 0;     // served from the SessionStore
  int64_t replayed_ops = 0;      // ops replayed applying op-log deltas
  int64_t resident_high_water = 0;
  int64_t queue_depth_high_water = 0;  // max depth over all shards

  // Eviction latency split (wall milliseconds). save_ms is the in-memory
  // snapshot serialisation on the dispatch thread (unpinned, no locks
  // held); evict_lock_ms is the portion under sessions_mu_ — victim
  // selection and unlink only, the number the <1ms bench gate watches.
  double save_ms_total = 0;
  double save_ms_max = 0;
  double evict_lock_ms_total = 0;
  double evict_lock_ms_max = 0;
  double restore_ms_total = 0;
  double restore_ms_max = 0;

  // Write-behind pipeline (mirrored from WriteBehindStats by the manager).
  int64_t wb_flushes = 0;
  int64_t wb_flush_errors = 0;
  int64_t wb_full_saves = 0;
  int64_t wb_chunk_saves = 0;
  int64_t wb_oplog_saves = 0;
  int64_t wb_full_bytes = 0;
  int64_t wb_delta_bytes = 0;
  int64_t wb_compactions = 0;
  int64_t wb_queue_depth_high_water = 0;
  int64_t wb_cache_bytes_high_water = 0;
  double flush_ms_total = 0;  // background IO per flush (encode + write)
  double flush_ms_max = 0;

  double save_ms_avg() const {
    return evictions > 0 ? save_ms_total / static_cast<double>(evictions)
                         : 0.0;
  }
  double restore_ms_avg() const {
    return restores > 0 ? restore_ms_total / static_cast<double>(restores)
                        : 0.0;
  }

  void record_save_ms(double ms) {
    save_ms_total += ms;
    save_ms_max = std::max(save_ms_max, ms);
  }
  void record_evict_lock_ms(double ms) {
    evict_lock_ms_total += ms;
    evict_lock_ms_max = std::max(evict_lock_ms_max, ms);
  }
  void record_restore_ms(double ms) {
    restore_ms_total += ms;
    restore_ms_max = std::max(restore_ms_max, ms);
  }
  void record_retry_hint_ms(double ms) {
    retry_hint_ms_sum += ms;
    retry_hint_ms_max = std::max(retry_hint_ms_max, ms);
  }
  double retry_hint_ms_avg() const {
    return rejections > 0 ? retry_hint_ms_sum / static_cast<double>(rejections)
                          : 0.0;
  }

  std::string to_json() const {
    auto num = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", v);
      return std::string(buf);
    };
    std::string j = "{";
    j += "\"submitted\": " + std::to_string(submitted);
    j += ", \"admissions\": " + std::to_string(admissions);
    j += ", \"rejections\": " + std::to_string(rejections);
    j += ", \"observes\": " + std::to_string(observes);
    j += ", \"predicts\": " + std::to_string(predicts);
    j += ", \"dispatch_errors\": " + std::to_string(dispatch_errors);
    j += ", \"predict_batches\": " + std::to_string(predict_batches);
    j += ", \"batched_predicts\": " + std::to_string(batched_predicts);
    j += ", \"batch_size_max\": " + std::to_string(batch_size_max);
    j += ", \"retry_hint_ms_avg\": " + num(retry_hint_ms_avg());
    j += ", \"retry_hint_ms_max\": " + num(retry_hint_ms_max);
    j += ", \"creates\": " + std::to_string(creates);
    j += ", \"evictions\": " + std::to_string(evictions);
    j += ", \"restores\": " + std::to_string(restores);
    j += ", \"pending_restores\": " + std::to_string(pending_restores);
    j += ", \"cache_restores\": " + std::to_string(cache_restores);
    j += ", \"disk_restores\": " + std::to_string(disk_restores);
    j += ", \"replayed_ops\": " + std::to_string(replayed_ops);
    j += ", \"resident_high_water\": " + std::to_string(resident_high_water);
    j += ", \"queue_depth_high_water\": " +
         std::to_string(queue_depth_high_water);
    j += ", \"save_ms_avg\": " + num(save_ms_avg());
    j += ", \"save_ms_max\": " + num(save_ms_max);
    j += ", \"evict_lock_ms_avg\": " +
         num(evictions > 0
                 ? evict_lock_ms_total / static_cast<double>(evictions)
                 : 0.0);
    j += ", \"evict_lock_ms_max\": " + num(evict_lock_ms_max);
    j += ", \"restore_ms_avg\": " + num(restore_ms_avg());
    j += ", \"restore_ms_max\": " + num(restore_ms_max);
    j += ", \"wb_flushes\": " + std::to_string(wb_flushes);
    j += ", \"wb_flush_errors\": " + std::to_string(wb_flush_errors);
    j += ", \"wb_full_saves\": " + std::to_string(wb_full_saves);
    j += ", \"wb_chunk_saves\": " + std::to_string(wb_chunk_saves);
    j += ", \"wb_oplog_saves\": " + std::to_string(wb_oplog_saves);
    j += ", \"wb_full_bytes\": " + std::to_string(wb_full_bytes);
    j += ", \"wb_delta_bytes\": " + std::to_string(wb_delta_bytes);
    j += ", \"wb_compactions\": " + std::to_string(wb_compactions);
    j += ", \"wb_queue_depth_high_water\": " +
         std::to_string(wb_queue_depth_high_water);
    j += ", \"wb_cache_bytes_high_water\": " +
         std::to_string(wb_cache_bytes_high_water);
    j += ", \"flush_ms_max\": " + num(flush_ms_max);
    j += "}";
    return j;
  }
};

}  // namespace cham::serve
