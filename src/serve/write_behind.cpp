#include "serve/write_behind.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/check.h"

namespace cham::serve {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int64_t blob_bytes(const std::shared_ptr<const core::ByteBuf>& b) {
  return b ? static_cast<int64_t>(b->size()) : 0;
}

}  // namespace

WriteBehind::WriteBehind(SessionStore& store, WriteBehindConfig cfg)
    : store_(store), cfg_(cfg) {
  CHAM_CHECK(cfg_.chunk_bytes > 0, "WriteBehind: chunk_bytes must be > 0");
  CHAM_CHECK(cfg_.compact_every > 0,
             "WriteBehind: compact_every must be > 0");
  CHAM_CHECK(cfg_.compact_ratio > 0.0 && cfg_.compact_ratio <= 1.0,
             "WriteBehind: compact_ratio outside (0, 1]");
  if (cfg_.enabled) {
    io_thread_ = std::thread([this] { io_loop(); });
  }
}

WriteBehind::~WriteBehind() {
  if (cfg_.enabled) {
    {
      util::MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (io_thread_.joinable()) io_thread_.join();  // flushes the queue first
  }
}

void WriteBehind::submit(Snapshot snap) {
  CHAM_CHECK(snap.blob != nullptr, "WriteBehind: snapshot without a blob");
  if (!cfg_.enabled) {
    flush_one(std::move(snap));
    return;
  }
  {
    util::MutexLock lock(mu_);
    auto it = pending_.find(snap.session_id);
    if (it != pending_.end()) {
      // Coalesce: only the newest state matters; the op logs concatenate
      // (the queued snapshot's ops span previous-flushed -> its blob, the
      // new ops span its blob -> the new blob).
      Snapshot& p = it->second;
      p.blob = std::move(snap.blob);
      p.ops_valid = p.ops_valid && snap.ops_valid;
      if (p.ops_valid) {
        p.ops.insert(p.ops.end(),
                     std::make_move_iterator(snap.ops.begin()),
                     std::make_move_iterator(snap.ops.end()));
      } else {
        p.ops.clear();
      }
      p.force_full = p.force_full || snap.force_full;
    } else {
      queue_.push_back(snap.session_id);
      pending_.emplace(snap.session_id, std::move(snap));
      stats_.queue_depth_high_water =
          std::max(stats_.queue_depth_high_water,
                   static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.notify_one();
}

std::shared_ptr<const core::ByteBuf> WriteBehind::newest_blob(
    uint64_t session_id, bool* pending) {
  util::MutexLock lock(mu_);
  if (pending) *pending = false;
  if (auto it = pending_.find(session_id); it != pending_.end()) {
    if (pending) *pending = true;
    return it->second.blob;
  }
  if (auto it = inflight_.find(session_id); it != inflight_.end()) {
    if (pending) *pending = true;
    return it->second;
  }
  if (auto it = meta_.find(session_id);
      it != meta_.end() && it->second.latest) {
    it->second.lru_tick = ++lru_tick_;
    return it->second.latest;
  }
  return nullptr;
}

void WriteBehind::drain() {
  if (!cfg_.enabled) return;
  util::MutexLock lock(mu_);
  cv_idle_.wait(lock, [this]() CHAM_REQUIRES(mu_) {
    return queue_.empty() && inflight_.empty();
  });
}

void WriteBehind::io_loop() {
  for (;;) {
    Snapshot snap;
    {
      util::MutexLock lock(mu_);
      // Pause is a test hook and yields to stop: shutdown always drains.
      cv_.wait(lock, [this]() CHAM_REQUIRES(mu_) {
        return stop_ || (!queue_.empty() && !paused_);
      });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      const uint64_t id = queue_.front();
      queue_.pop_front();
      auto it = pending_.find(id);
      CHAM_CHECK(it != pending_.end(),
                 "WriteBehind: queued session has no pending snapshot");
      snap = std::move(it->second);
      pending_.erase(it);
      // Keep the blob visible to restores while it is being written.
      inflight_[id] = snap.blob;
    }
    flush_one(std::move(snap));
    {
      util::MutexLock lock(mu_);
      if (queue_.empty() && inflight_.empty()) cv_idle_.notify_all();
    }
  }
}

void WriteBehind::flush_one(Snapshot snap) {
  // Serialises synchronous-mode callers (threaded-mode evictors may race);
  // the IO thread is single, so this is uncontended there.
  util::MutexLock io_lock(io_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t id = snap.session_id;
  const core::ByteBuf& blob = *snap.blob;

  // Copy what the encoder needs out of the session's meta.
  std::shared_ptr<const core::ByteBuf> base;
  uint64_t base_hash = 0, base_len = 0;
  bool has_base = false;
  int64_t deltas = 0;
  std::vector<data::ServeOp> ops;
  bool ops_ok = false;
  {
    util::MutexLock lock(mu_);
    if (auto it = meta_.find(id); it != meta_.end()) {
      const Meta& m = it->second;
      base = m.base;
      base_hash = m.base_hash;
      base_len = m.base_len;
      has_base = m.has_base;
      deltas = m.deltas_since_full;
      ops_ok = cfg_.lossless && m.ops_valid && snap.ops_valid;
      if (ops_ok) {
        ops = m.ops_since_base;  // spans base -> last flushed
        ops.insert(ops.end(), std::make_move_iterator(snap.ops.begin()),
                   std::make_move_iterator(snap.ops.end()));
      }
    } else {
      ops_ok = cfg_.lossless && snap.ops_valid;
      if (ops_ok) ops = std::move(snap.ops);
    }
  }

  // Pick the encoding: smallest of {chunk diff, op log} if a delta is
  // allowed and beats the compaction ratio, else a full blob.
  enum class Form { kFull, kChunk, kOpLog };
  Form form = Form::kFull;
  core::ByteBuf frame;
  uint64_t next_hash = 0;  // hash of `blob`, computed at most once
  bool have_next_hash = false;
  if (cfg_.delta && !snap.force_full && has_base &&
      deltas < cfg_.compact_every) {
    next_hash = core::blob_hash(blob.data(), blob.size());
    have_next_hash = true;
    core::ByteBuf chunk_frame;
    if (base) {  // base bytes may have been dropped under cache pressure
      // base_hash/base_len in meta are blob_hash() of exactly these base
      // bytes (both are set together on every full save), so the encode
      // does not need to rehash either blob.
      chunk_frame = core::encode_chunk_delta(base->data(), base->size(),
                                             blob.data(), blob.size(),
                                             cfg_.chunk_bytes, base_hash,
                                             next_hash);
    }
    core::ByteBuf oplog_frame;
    if (ops_ok && static_cast<int64_t>(ops.size()) <= cfg_.max_replay_ops) {
      core::DeltaHeader h;
      h.base_hash = base_hash;
      h.base_len = base_len;
      h.next_hash = next_hash;
      h.next_len = blob.size();
      oplog_frame = core::encode_op_log(h, ops);
    }
    const auto cap = static_cast<std::size_t>(
        cfg_.compact_ratio * static_cast<double>(blob.size()));
    const bool chunk_fits = !chunk_frame.empty() && chunk_frame.size() <= cap;
    const bool oplog_fits = !oplog_frame.empty() && oplog_frame.size() <= cap;
    if (oplog_fits && (!chunk_fits || oplog_frame.size() <= chunk_frame.size())) {
      form = Form::kOpLog;
      frame = std::move(oplog_frame);
    } else if (chunk_fits) {
      form = Form::kChunk;
      frame = std::move(chunk_frame);
    }
  }

  const bool disk_ok =
      form == Form::kFull
          ? store_.put_full(id, blob.data(), blob.size())
          : store_.put_delta(id, frame.data(), frame.size());

  const double flush_ms = ms_since(t0);
  {
    util::MutexLock lock(mu_);
    Meta& m = meta_[id];
    m.lru_tick = ++lru_tick_;
    m.latest = snap.blob;
    m.durable = disk_ok;
    if (disk_ok) {
      ++stats_.flushes;
      stats_.flush_ms_total += flush_ms;
      stats_.flush_ms_max = std::max(stats_.flush_ms_max, flush_ms);
      if (form == Form::kFull) {
        m.base = snap.blob;
        m.base_hash = have_next_hash
                          ? next_hash
                          : core::blob_hash(blob.data(), blob.size());
        m.base_len = blob.size();
        m.has_base = true;
        m.deltas_since_full = 0;
        m.ops_since_base.clear();
        m.ops_valid = true;
        ++stats_.full_saves;
        stats_.full_bytes += static_cast<int64_t>(blob.size());
      } else {
        ++m.deltas_since_full;
        m.ops_valid = ops_ok;
        m.ops_since_base = ops_ok ? std::move(ops)
                                  : std::vector<data::ServeOp>{};
        if (form == Form::kChunk) ++stats_.chunk_saves;
        if (form == Form::kOpLog) ++stats_.oplog_saves;
        stats_.delta_bytes += static_cast<int64_t>(frame.size());
      }
    } else {
      // Disk kept its previous (intact) state; the cache keeps serving
      // this newest blob. Ops still span the on-disk base -> this blob, so
      // a later flush can still encode an op-log delta.
      ++stats_.flush_errors;
      m.ops_valid = ops_ok;
      m.ops_since_base =
          ops_ok ? std::move(ops) : std::vector<data::ServeOp>{};
    }
    inflight_.erase(id);
    enforce_cache_budget_locked();
  }
}

int64_t WriteBehind::cached_bytes_locked() const {
  int64_t bytes = 0;
  for (const auto& [id, m] : meta_) {
    (void)id;
    bytes += blob_bytes(m.latest);
    if (m.base && m.base != m.latest) bytes += blob_bytes(m.base);
  }
  return bytes;
}

void WriteBehind::enforce_cache_budget_locked() {
  int64_t bytes = cached_bytes_locked();
  stats_.cache_bytes_high_water =
      std::max(stats_.cache_bytes_high_water, bytes);
  if (bytes <= cfg_.snapshot_cache_bytes) return;

  std::vector<std::pair<uint64_t, uint64_t>> order;  // (lru_tick, id)
  order.reserve(meta_.size());
  for (const auto& [id, m] : meta_) {
    if (m.latest || m.base) order.emplace_back(m.lru_tick, id);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [tick, id] : order) {
    (void)tick;
    if (bytes <= cfg_.snapshot_cache_bytes) return;
    Meta& m = meta_[id];
    // Cheapest first: drop the separate base copy. Chunk diffs stop for
    // this session until its next full flush; op logs only need the hash.
    if (m.base && m.base != m.latest) {
      bytes -= blob_bytes(m.base);
      m.base.reset();
    }
    if (bytes <= cfg_.snapshot_cache_bytes) return;
    if (!m.latest) continue;
    const bool pinned = !m.durable || m.deltas_since_full > 0;
    if (pinned) {
      // The latest blob is the only complete copy of state that is newer
      // than (or missing from) disk. Turn cache pressure into compaction:
      // land it as a full blob, then the pin drops.
      if (!store_.put_full(id, m.latest->data(), m.latest->size())) {
        ++stats_.flush_errors;
        continue;  // cannot safely drop; try the next victim
      }
      ++stats_.compactions;
      ++stats_.flushes;
      ++stats_.full_saves;
      stats_.full_bytes += blob_bytes(m.latest);
      m.base.reset();  // hash survives; the bytes go with `latest` below
      m.base_hash = core::blob_hash(m.latest->data(), m.latest->size());
      m.base_len = m.latest->size();
      m.has_base = true;
      m.deltas_since_full = 0;
      m.ops_since_base.clear();
      m.ops_valid = true;
      m.durable = true;
    }
    bytes -= blob_bytes(m.latest);
    if (m.base == m.latest) m.base.reset();
    m.latest.reset();
  }
}

void WriteBehind::compact_all() {
  util::MutexLock io_lock(io_mu_);
  util::MutexLock lock(mu_);
  CHAM_CHECK(queue_.empty() && inflight_.empty(),
             "WriteBehind: compact_all before drain");
  for (auto& [id, m] : meta_) {
    if (m.durable && m.deltas_since_full == 0) continue;
    CHAM_CHECK(m.latest != nullptr,
               "WriteBehind: non-compacted session lost its cached blob");
    if (!store_.put_full(id, m.latest->data(), m.latest->size())) {
      ++stats_.flush_errors;
      continue;
    }
    ++stats_.compactions;
    ++stats_.flushes;
    ++stats_.full_saves;
    stats_.full_bytes += blob_bytes(m.latest);
    m.base = m.latest;
    m.base_hash = core::blob_hash(m.latest->data(), m.latest->size());
    m.base_len = m.latest->size();
    m.has_base = true;
    m.deltas_since_full = 0;
    m.ops_since_base.clear();
    m.ops_valid = true;
    m.durable = true;
  }
}

WriteBehindStats WriteBehind::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

void WriteBehind::pause_for_test() {
  util::MutexLock lock(mu_);
  paused_ = true;
}

void WriteBehind::resume_for_test() {
  {
    util::MutexLock lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

}  // namespace cham::serve
