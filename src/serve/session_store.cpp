#include "serve/session_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace cham::serve {
namespace fs = std::filesystem;

namespace {

// session_<id>.chk — the id is rendered in decimal so `ls` output sorts
// usefully and the name parses back without ambiguity.
constexpr const char* kPrefix = "session_";
constexpr const char* kSuffix = ".chk";

}  // namespace

SessionStore::SessionStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  CHAM_CHECK(!ec, "SessionStore: cannot create directory " + dir_ + ": " +
                      ec.message());
}

std::string SessionStore::path_for(uint64_t session_id) const {
  return dir_ + "/" + kPrefix + std::to_string(session_id) + kSuffix;
}

bool SessionStore::save(uint64_t session_id,
                        const core::ChameleonLearner& learner) {
  std::lock_guard<std::mutex> lock(mu_);
  // Write to a temp name then rename: a crash mid-write must not leave a
  // truncated blob where a valid (older) one used to be.
  const std::string final_path = path_for(session_id);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os || !learner.save_state(os)) {
      std::error_code ec;
      fs::remove(tmp_path, ec);
      return false;
    }
  }
  std::error_code ec;
  const auto blob_bytes = fs::file_size(tmp_path, ec);
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return false;
  }
  bytes_written_ += static_cast<int64_t>(blob_bytes);
  return true;
}

bool SessionStore::load(uint64_t session_id,
                        core::ChameleonLearner& learner) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = path_for(session_id);
  std::ifstream is(path, std::ios::binary);
  if (!is || !learner.load_state(is)) return false;
  std::error_code ec;
  const auto blob_bytes = fs::file_size(path, ec);
  if (!ec) bytes_read_ += static_cast<int64_t>(blob_bytes);
  return true;
}

bool SessionStore::contains(uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  return fs::exists(path_for(session_id), ec);
}

bool SessionStore::erase(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  return fs::remove(path_for(session_id), ec);
}

void SessionStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kPrefix, 0) == 0 &&
        name.size() > std::string(kSuffix).size() &&
        name.compare(name.size() - std::string(kSuffix).size(),
                     std::string::npos, kSuffix) == 0) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

std::vector<uint64_t> SessionStore::session_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  std::error_code ec;
  const std::string suffix = kSuffix;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kPrefix, 0) != 0 || name.size() <= suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), std::string::npos,
                     suffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        std::string(kPrefix).size(),
        name.size() - std::string(kPrefix).size() - suffix.size());
    uint64_t id = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      id = id * 10 + static_cast<uint64_t>(c - '0');
    }
    if (numeric) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

int64_t SessionStore::size() const {
  return static_cast<int64_t>(session_ids().size());
}

int64_t SessionStore::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

int64_t SessionStore::bytes_read() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_read_;
}

}  // namespace cham::serve
