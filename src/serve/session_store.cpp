#include "serve/session_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace cham::serve {
namespace fs = std::filesystem;

namespace {

// session_<id>.chk — the id is rendered in decimal so `ls` output sorts
// usefully and the name parses back without ambiguity.
constexpr const char* kPrefix = "session_";
constexpr const char* kSuffix = ".chk";
constexpr const char* kDeltaSuffix = ".delta";

bool has_suffix(const std::string& name, const std::string& suffix) {
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), std::string::npos,
                      suffix) == 0;
}

}  // namespace

SessionStore::SessionStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  CHAM_CHECK(!ec, "SessionStore: cannot create directory " + dir_ + ": " +
                      ec.message());
}

std::string SessionStore::path_for(uint64_t session_id) const {
  return dir_ + "/" + kPrefix + std::to_string(session_id) + kSuffix;
}

std::string SessionStore::delta_path_for(uint64_t session_id) const {
  return dir_ + "/" + kPrefix + std::to_string(session_id) + kDeltaSuffix;
}

bool SessionStore::write_atomic(const std::string& path, const char* data,
                                std::size_t n) {
  // Write to a temp name then rename: a crash (or a failed write) mid-blob
  // must never leave a truncated file where a valid (older) one used to
  // be. The write path is raw fds, not ofstream: buffered streams surface
  // a disk-full error only at close(), after this function would already
  // have decided the write looked fine.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return false;
  bool ok = true;
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    off += static_cast<std::size_t>(w);
  }
  // fsync before the rename: the bytes must be durable before the name
  // flips, or a crash can install a well-named but empty blob.
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Best-effort directory fsync so the rename itself survives a crash.
  const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

bool SessionStore::read_file(const std::string& path,
                             core::ByteBuf& out) const {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) return false;
  const std::streamsize n = is.tellg();
  if (n < 0) return false;
  is.seekg(0);
  out.resize(static_cast<std::size_t>(n));
  is.read(out.data(), n);
  return is.good() || n == 0;
}

bool SessionStore::put_full(uint64_t session_id, const char* data,
                            std::size_t n) {
  util::MutexLock lock(mu_);
  if (!write_atomic(path_for(session_id), data, n)) return false;
  // Unlink the delta AFTER the new full blob is installed: a crash in
  // between leaves a stale delta whose base hash mismatches, which load()
  // detects and ignores. The reverse order could lose the newest state.
  std::error_code ec;
  fs::remove(delta_path_for(session_id), ec);
  bytes_written_ += static_cast<int64_t>(n);
  return true;
}

bool SessionStore::put_delta(uint64_t session_id, const char* data,
                             std::size_t n) {
  util::MutexLock lock(mu_);
  std::error_code ec;
  if (!fs::exists(path_for(session_id), ec)) return false;  // no base blob
  if (!write_atomic(delta_path_for(session_id), data, n)) return false;
  bytes_written_ += static_cast<int64_t>(n);
  return true;
}

bool SessionStore::get_blob(uint64_t session_id, core::ByteBuf& out) const {
  util::MutexLock lock(mu_);
  return read_file(path_for(session_id), out);
}

bool SessionStore::get_delta(uint64_t session_id, core::ByteBuf& out) const {
  util::MutexLock lock(mu_);
  return read_file(delta_path_for(session_id), out);
}

bool SessionStore::has_delta(uint64_t session_id) const {
  util::MutexLock lock(mu_);
  std::error_code ec;
  return fs::exists(delta_path_for(session_id), ec);
}

bool SessionStore::save(uint64_t session_id,
                        const core::ChameleonLearner& learner,
                        quant::Precision precision) {
  core::ByteBuf blob;
  {
    core::ByteBufWriter os(blob);
    if (!learner.save_state(os, precision)) return false;
  }
  return put_full(session_id, blob.data(), blob.size());
}

bool SessionStore::load(uint64_t session_id,
                        core::ChameleonLearner& learner) {
  core::ByteBuf base, delta, next;
  const char* state = nullptr;
  std::size_t state_n = 0;
  {
    util::MutexLock lock(mu_);
    if (!read_file(path_for(session_id), base)) return false;
    state = base.data();
    state_n = base.size();
    if (read_file(delta_path_for(session_id), delta)) {
      core::DeltaHeader h;
      if (!core::read_delta_header(delta.data(), delta.size(), h)) {
        return false;  // delta present but unparseable: refuse to guess
      }
      const bool stale =
          h.base_len != base.size() ||
          h.base_hash != core::blob_hash(base.data(), base.size());
      if (!stale) {
        if (h.kind == core::DeltaKind::kOpLog) {
          // The newest state needs op replay through a dispatcher; plain
          // readers must only see compacted stores.
          return false;
        }
        if (!core::apply_chunk_delta(base.data(), base.size(), delta.data(),
                                     delta.size(), next)) {
          return false;  // base matched but reconstruction failed: corrupt
        }
        state = next.data();
        state_n = next.size();
      }
      // Stale delta (base hash mismatch): a crash between a full-blob
      // rename and the delta unlink. The base is the newer state; serve it.
    }
    bytes_read_ += static_cast<int64_t>(state_n);
  }
  core::ByteBufReader is(state, state_n);
  return learner.load_state(is);
}

bool SessionStore::contains(uint64_t session_id) const {
  util::MutexLock lock(mu_);
  std::error_code ec;
  return fs::exists(path_for(session_id), ec);
}

bool SessionStore::erase(uint64_t session_id) {
  util::MutexLock lock(mu_);
  std::error_code ec;
  fs::remove(delta_path_for(session_id), ec);
  return fs::remove(path_for(session_id), ec);
}

void SessionStore::clear() {
  util::MutexLock lock(mu_);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kPrefix, 0) == 0 &&
        (has_suffix(name, kSuffix) || has_suffix(name, kDeltaSuffix))) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

std::vector<uint64_t> SessionStore::session_ids() const {
  util::MutexLock lock(mu_);
  std::vector<uint64_t> ids;
  std::error_code ec;
  const std::string suffix = kSuffix;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kPrefix, 0) != 0 || !has_suffix(name, suffix)) continue;
    const std::string digits = name.substr(
        std::string(kPrefix).size(),
        name.size() - std::string(kPrefix).size() - suffix.size());
    uint64_t id = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      id = id * 10 + static_cast<uint64_t>(c - '0');
    }
    if (numeric) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

int64_t SessionStore::size() const {
  return static_cast<int64_t>(session_ids().size());
}

int64_t SessionStore::bytes_written() const {
  util::MutexLock lock(mu_);
  return bytes_written_;
}

int64_t SessionStore::bytes_read() const {
  util::MutexLock lock(mu_);
  return bytes_read_;
}

}  // namespace cham::serve
