// Write-behind, delta-compressed checkpoint flushing for session eviction.
//
// Eviction used to serialise the full CHS2 blob to disk while holding the
// manager's global sessions_mu_, so one shard's eviction stalled admission,
// restore and dispatch on every shard (save_ms_max 63ms in the seed
// BENCH_serve.json). The pipeline here splits that work in three:
//
//   1. SNAPSHOT (dispatch thread, lock NOT held): the SessionManager
//      serialises the victim into a pool-backed in-memory buffer after
//      unlinking it under the lock — the lock-held portion is pointer
//      moves only.
//   2. QUEUE: the snapshot is handed to this class. One background IO
//      thread owns all disk traffic; snapshots for the same session
//      coalesce in the pending map (only the newest state matters).
//   3. FLUSH (IO thread): the blob is written to the SessionStore as
//      either a full blob or a CHS3 delta against the session's last full
//      blob — whichever is smaller:
//        * chunk diff  — dirty chunks of the new blob vs the base. Wins
//          when little changed (predict-only / idle evictions).
//        * op log      — the observe/predict requests served since the
//          base was flushed. A restore replays them; the repo's
//          bit-determinism contract makes the result byte-identical, and
//          the frame's hash of the target blob verifies it. Wins after
//          training steps, where one SGD step dirties ~85% of the head
//          chunks (~94% of the blob), making chunk diffs useless.
//      Every `compact_every` deltas (or when a delta would exceed
//      `compact_ratio` of the full size) the blob is written full —
//      compaction that bounds both restore amplification and disk state.
//
// RESTORE CORRECTNESS: newest_blob() returns the most recent state the
// pipeline holds for a session — the pending (not yet flushed) snapshot,
// the one mid-flush, or the cached last-flushed blob — so a restore racing
// its own flush reads the exact bytes eviction produced, bit-identically,
// no matter where the IO thread is. Only when the pipeline holds nothing
// (cache evicted, process restart) does the manager fall back to disk.
//
// FLUSH FAILURE (disk full): the error is counted, the on-disk state keeps
// its previous (intact, older) blob, and the in-memory cache keeps serving
// the newest state — sessions stay correct; only crash-durability of the
// latest delta is lost until a later flush succeeds.
//
// The snapshot cache is byte-bounded (LRU). A session whose newest flushed
// state is a delta keeps its `latest` blob pinned in the cache so
// compact_all() can always land a full blob without replay; when the cache
// is over budget, the LRU pinned session is compacted to disk on the spot
// (write a full blob, drop the pin) — cache pressure turns into compaction,
// never into lost state.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/checkpoint.h"
#include "data/stream.h"
#include "serve/session_store.h"
#include "util/sync.h"

namespace cham::serve {

struct WriteBehindConfig {
  bool enabled = true;   // false: flush synchronously inside submit()
  bool delta = true;     // false: every flush writes a full blob
  int64_t chunk_bytes = 256;      // chunk-diff granularity
  double compact_ratio = 0.5;     // delta bigger than this fraction of the
                                  // full blob -> write full instead
  int64_t compact_every = 8;      // force a full blob after this many deltas
  int64_t max_replay_ops = 64;    // op-log deltas longer than this are not
                                  // encoded (bounds restore replay cost)
  int64_t snapshot_cache_bytes = int64_t{128} << 20;
  // Op-log restore is exact only when blobs are lossless (fp32); the
  // manager clears this when a reduced blob precision is configured.
  bool lossless = true;
};

struct WriteBehindStats {
  int64_t flushes = 0;        // snapshots written to disk (any form)
  int64_t flush_errors = 0;   // disk writes that failed (state kept in RAM)
  int64_t full_saves = 0;
  int64_t chunk_saves = 0;
  int64_t oplog_saves = 0;
  int64_t full_bytes = 0;     // disk bytes written as full blobs
  int64_t delta_bytes = 0;    // disk bytes written as deltas (both kinds)
  int64_t compactions = 0;    // cache-pressure compactions (pin drops)
  int64_t queue_depth_high_water = 0;
  int64_t cache_bytes_high_water = 0;
  double flush_ms_total = 0;  // IO-thread time per flush (encode + write)
  double flush_ms_max = 0;
};

class WriteBehind {
 public:
  // One eviction's snapshot: the full serialised state plus the requests
  // the session served since its previous snapshot (for op-log deltas).
  struct Snapshot {
    uint64_t session_id = 0;
    std::shared_ptr<const core::ByteBuf> blob;
    std::vector<data::ServeOp> ops;
    bool ops_valid = true;   // false: op log overflowed or a dispatch failed
    bool force_full = false; // flush/shutdown: external readers need fulls
  };

  WriteBehind(SessionStore& store, WriteBehindConfig cfg);
  ~WriteBehind();  // drains the queue, then stops the IO thread

  WriteBehind(const WriteBehind&) = delete;
  WriteBehind& operator=(const WriteBehind&) = delete;

  // Hands a snapshot to the pipeline. Never blocks on disk when enabled
  // (synchronous mode flushes inline). Snapshots for a session already
  // queued coalesce: blobs replace, op logs concatenate.
  void submit(Snapshot snap) CHAM_EXCLUDES(io_mu_, mu_);

  // The newest state bytes the pipeline holds for the session (pending,
  // mid-flush, or cached last-flushed), or null if it holds none and the
  // caller must go to the SessionStore. The buffer is immutable. When
  // `pending` is given, it is set to true iff the blob had not finished
  // flushing yet (pending or mid-flush) — i.e. the restore raced its own
  // write-behind.
  std::shared_ptr<const core::ByteBuf> newest_blob(uint64_t session_id,
                                                   bool* pending = nullptr)
      CHAM_EXCLUDES(mu_);

  // Blocks until every queued snapshot has been flushed (or failed).
  void drain() CHAM_EXCLUDES(mu_);

  // Writes a full blob for every session whose newest flushed state is a
  // delta, so plain SessionStore readers see complete state. Call after
  // drain().
  void compact_all() CHAM_EXCLUDES(io_mu_, mu_);

  WriteBehindStats stats() const CHAM_EXCLUDES(mu_);

  // Test hooks: freeze/unfreeze the IO thread so restore-during-flush
  // interleavings can be produced deterministically, without sleeps.
  void pause_for_test() CHAM_EXCLUDES(mu_);
  void resume_for_test() CHAM_EXCLUDES(mu_);

 private:
  struct Meta {
    // Last blob flushed as a FULL blob (the delta base). The bytes may be
    // dropped under cache pressure (chunk diffs then stop; op logs only
    // need the hash), but hash/len survive.
    std::shared_ptr<const core::ByteBuf> base;
    uint64_t base_hash = 0;
    uint64_t base_len = 0;
    bool has_base = false;
    // Last flushed blob in any form = the session's newest state. Pinned
    // in the cache while deltas_since_full > 0 or while a failed flush
    // left disk behind it (see file comment).
    std::shared_ptr<const core::ByteBuf> latest;
    bool durable = false;  // disk holds exactly `latest` (possibly as delta)
    // Ops spanning base -> latest (for op-log encoding of the next delta).
    std::vector<data::ServeOp> ops_since_base;
    bool ops_valid = true;
    int64_t deltas_since_full = 0;
    uint64_t lru_tick = 0;
  };

  void io_loop() CHAM_EXCLUDES(io_mu_, mu_);
  // Encodes + writes one snapshot. Takes mu_ internally; never holds it
  // across the encode. `mu_` must NOT be held by the caller.
  void flush_one(Snapshot snap) CHAM_EXCLUDES(io_mu_, mu_);
  // Under mu_: recompute cached bytes and evict/compact down to budget.
  void enforce_cache_budget_locked() CHAM_REQUIRES(mu_);
  int64_t cached_bytes_locked() const CHAM_REQUIRES(mu_);

  SessionStore& store_;
  WriteBehindConfig cfg_;

  // Lock order: io_mu_ before mu_ (flush_one holds io_mu_ across the encode
  // and takes mu_ twice inside; compact_all takes both). Never the reverse.
  mutable util::Mutex mu_;
  util::CondVar cv_;       // IO thread: work available / stop
  util::CondVar cv_idle_;  // drain(): queue empty, nothing mid-flush
  std::deque<uint64_t> queue_ CHAM_GUARDED_BY(mu_);  // flush order
  std::unordered_map<uint64_t, Snapshot> pending_
      CHAM_GUARDED_BY(mu_);  // newest unflushed state
  std::unordered_map<uint64_t, std::shared_ptr<const core::ByteBuf>>
      inflight_ CHAM_GUARDED_BY(mu_);  // blob currently being written
  std::unordered_map<uint64_t, Meta> meta_ CHAM_GUARDED_BY(mu_);
  WriteBehindStats stats_ CHAM_GUARDED_BY(mu_);
  uint64_t lru_tick_ CHAM_GUARDED_BY(mu_) = 0;
  bool paused_ CHAM_GUARDED_BY(mu_) = false;
  bool stop_ CHAM_GUARDED_BY(mu_) = false;

  // Serialises flush_one in synchronous mode.
  util::Mutex io_mu_ CHAM_ACQUIRED_BEFORE(mu_);
  std::thread io_thread_;
};

}  // namespace cham::serve
