// Multi-session serving runtime: a sharded pool of resident per-user
// learners with checkpoint-backed eviction.
//
// The paper trains one Chameleon learner on one user's stream; a production
// deployment serves many users at once, each with private head weights,
// replay stores and preference statistics. The SessionManager multiplexes
// those per-user learners over a bounded residency pool:
//
//   * Requests (observe / predict) enter per-shard bounded FIFO queues.
//     Sessions are hashed to shards, so one session's requests are always
//     dispatched in submission order by a single dispatcher — the property
//     that makes any cross-session interleaving produce per-session results
//     identical to N isolated learners.
//   * Admission is explicit backpressure: a full shard queue REJECTS the
//     request with a retry hint instead of growing without bound. Callers
//     re-submit after the hint; nothing is silently dropped or buffered.
//   * At most `max_resident` learners are in memory. Admitting a request
//     for a non-resident session evicts the least-recently-used idle
//     session first. Eviction is write-behind: the victim is unlinked
//     under the session lock (pointer moves only), serialised to an
//     in-memory snapshot with no locks held, and handed to the WriteBehind
//     pipeline, whose background IO thread flushes it to the SessionStore
//     as a full blob or a CHS3 delta (see serve/write_behind.h). The next
//     request for that session restores it bit-identically — from the
//     pipeline's pending/cached copy if its flush has not landed yet, from
//     disk otherwise (replaying op-log deltas through the learner, hash
//     verified).
//   * Each session's learner is seeded with split_seed(base_seed, id), so
//     per-session randomness is independent of admission order.
//
// Two scheduler modes:
//
//   kDeterministic  No threads. submit_observe() enqueues; drain() (or a
//                   synchronous predict()) dispatches queued requests in
//                   round-robin shard order on the calling thread. Tests use
//                   this to replay any interleaving reproducibly.
//   kThreaded       One worker thread per shard. The manager forces the
//                   tensor pool to 1 thread for its lifetime (shard-level
//                   parallelism replaces intra-op parallelism; kernels are
//                   bit-identical at any thread count, so per-session
//                   results do not change). The shared LatentCache must be
//                   unbounded (see data/latent_cache.h).
//
// Hierarchy mapping (DESIGN.md "Serving runtime"): resident learners are
// the on-chip tier (fast, capacity-bounded), the SessionStore the off-chip
// tier (large, paid for per eviction/restore round-trip) — the same
// two-tier cost structure the paper's ST/LT split reasons about, one level
// up.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/chameleon.h"
#include "data/stream.h"
#include "quant/quantize.h"
#include "serve/batch_planner.h"
#include "serve/serve_stats.h"
#include "serve/session_store.h"
#include "serve/write_behind.h"
#include "util/sync.h"

namespace cham::serve {

enum class ServeMode {
  kDeterministic,  // caller-driven dispatch, no threads
  kThreaded,       // one worker per shard
};

struct ServeConfig {
  int64_t num_shards = 4;
  // Resident learner bound. Must be >= num_shards: each shard dispatcher
  // pins at most one session while executing, and eviction only considers
  // unpinned sessions, so num_shards residents must always be spare.
  int64_t max_resident = 8;
  int64_t queue_capacity = 32;  // pending requests per shard
  // Floor of the backpressure hint returned on rejection. The actual hint
  // scales with the observed per-shard drain rate: depth x the shard's
  // EWMA dispatch time, clamped to [retry_hint_ms, retry_hint_max_ms] — a
  // loaded shard tells callers to back off for roughly one queue-drain.
  int64_t retry_hint_ms = 5;
  int64_t retry_hint_max_ms = 1000;
  // Batched predict dispatch (serve/batch_planner.h): max predict requests
  // coalesced into one stacked head evaluation, and how long a threaded
  // shard worker may wait to fill an undersized plan. max_batch = 1
  // disables cross-request merging; results are bit-identical either way.
  int64_t max_batch = 8;
  int64_t max_wait_us = 0;
  ServeMode mode = ServeMode::kDeterministic;
  std::string store_dir = "/tmp/cham_sessions";
  uint64_t base_seed = 42;

  // Eviction pipeline (serve/write_behind.h). write_behind=false flushes
  // synchronously on the evicting thread (still outside sessions_mu_);
  // delta_checkpoints=false writes every flush as a full blob.
  bool write_behind = true;
  bool delta_checkpoints = true;
  int64_t delta_chunk_bytes = 256;
  double delta_compact_ratio = 0.5;
  int64_t delta_compact_every = 8;
  int64_t max_replay_ops = 64;
  int64_t snapshot_cache_bytes = int64_t{128} << 20;
  // Storage precision of ST/LT latents inside checkpoint blobs. kFp32 is
  // the lossless default (bit-identical restore); reduced precisions trade
  // restore exactness for smaller blobs and disable op-log deltas (replay
  // over a lossy base cannot be hash-verified).
  quant::Precision blob_precision = quant::Precision::kFp32;
};

struct Admission {
  bool accepted = false;
  int64_t retry_after_ms = 0;  // when rejected: back off at least this long
  int64_t queue_depth = 0;     // shard queue depth after the decision
};

// Builds a fresh learner for a session. `seed` is the session's derived
// seed (split_seed(base_seed, session_id)); the factory must pass it to the
// ChameleonLearner constructor unchanged, or restores lose bit-identity
// with an isolated run of the same session.
using LearnerFactory = std::function<std::unique_ptr<core::ChameleonLearner>(
    uint64_t session_id, uint64_t seed)>;

class SessionManager {
 public:
  SessionManager(ServeConfig cfg, LearnerFactory factory);
  // Drains every queue, then evicts all resident sessions to the store.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Enqueues one online-learning step for the session. Never blocks: a full
  // shard queue rejects with a retry hint.
  Admission submit_observe(uint64_t session_id, const data::Batch& batch);

  // Synchronous prediction, FIFO-ordered after the session's pending
  // observes (read-your-writes). Subject to the same admission control;
  // returns nullopt on rejection (admission, if given, carries the hint).
  std::optional<std::vector<int64_t>> predict(
      uint64_t session_id, const std::vector<data::ImageKey>& keys,
      Admission* admission = nullptr);

  // Asynchronous prediction: enqueues and, when admitted, stores the result
  // future in *result. Queued predicts from different sessions coalesce
  // into batch plans — by the shard worker (threaded) or at the next
  // drain()/predict() (deterministic). Per-session results are bit-exact
  // vs the synchronous path.
  Admission submit_predict(uint64_t session_id,
                           const std::vector<data::ImageKey>& keys,
                           std::future<std::vector<int64_t>>* result);

  // Deterministic mode: dispatches every queued request, round-robin across
  // shards, on the calling thread. Threaded mode: blocks until all queues
  // are empty and in-flight requests have finished.
  //
  // Safe to call from several threads in either mode: deterministic-mode
  // dispatch is serialised on det_dispatch_mu_, so concurrent drain()/
  // flush()/predict() callers (e.g. a net pump thread racing a responder's
  // FLUSH) take turns instead of popping and dispatching the same session's
  // requests in parallel.
  void drain() CHAM_EXCLUDES(det_dispatch_mu_);

  // Drains, then evicts every resident session to the store.
  void flush() CHAM_EXCLUDES(sessions_mu_);

  // The seed a session's learner is constructed with.
  uint64_t session_seed(uint64_t session_id) const;

  ServeStats stats() const CHAM_EXCLUDES(stats_mu_);
  // Sum of OpStats over every session this manager has served (resident
  // learners live, evicted sessions from their last dispatch snapshot).
  core::OpStats aggregate_op_stats() const CHAM_EXCLUDES(sessions_mu_);
  int64_t resident_count() const CHAM_EXCLUDES(sessions_mu_);
  const SessionStore& store() const { return store_; }
  const ServeConfig& config() const { return cfg_; }
  // The eviction pipeline (always constructed; synchronous when
  // cfg.write_behind is false). Exposed for tests that need to freeze the
  // IO thread to pin down restore-during-flush interleavings.
  WriteBehind& write_behind() { return *write_behind_; }

 private:
  // The queue element type (serve/batch_planner.h): shared with the
  // planner so plan extraction can move requests straight out of a queue.
  struct Shard {
    util::Mutex mu;
    util::CondVar cv;       // work available / stop
    util::CondVar cv_idle;  // queue empty and nothing in flight
    std::deque<Request> queue CHAM_GUARDED_BY(mu);
    int64_t in_flight CHAM_GUARDED_BY(mu) = 0;
    // EWMA of per-request dispatch wall time, fed into backpressure retry
    // hints (depth x drain rate). 0 until the first dispatch completes.
    double ewma_dispatch_ms CHAM_GUARDED_BY(mu) = 0;
    std::thread worker;
  };

  struct Session {
    std::unique_ptr<core::ChameleonLearner> learner;  // null when evicted
    uint64_t last_used = 0;  // residency LRU tick
    bool in_use = false;     // pinned by a dispatcher (or being materialised)
    // Requests served since the last snapshot/restore, for op-log delta
    // encoding. Dropped (ops_valid=false) past max_replay_ops or after a
    // failed dispatch left the learner state unlogged.
    std::vector<data::ServeOp> ops;
    bool ops_valid = true;
    // True between unlink_victim() moving the learner out and
    // snapshot_and_submit() handing the snapshot to the write-behind
    // pipeline. Materialising in that window would restore stale bytes
    // (the pipeline has no copy yet), so acquire_session waits it out.
    bool evicting = false;
  };

  // One eviction victim, unlinked from the residency pool but not yet
  // serialised. Moves between the locked unlink and the unlocked
  // serialise/hand-off phases of an eviction.
  struct EvictedVictim {
    uint64_t session_id = 0;
    std::unique_ptr<core::ChameleonLearner> learner;
    std::vector<data::ServeOp> ops;
    bool ops_valid = true;
    double lock_ms = 0;  // time spent under sessions_mu_ (bench-gated < 1ms)
  };

  int64_t shard_of(uint64_t session_id) const;
  Admission enqueue(int64_t shard_idx, Request r);
  // Pops and dispatches until the shard queue is empty (deterministic mode).
  void drain_shard(int64_t shard_idx) CHAM_EXCLUDES(det_dispatch_mu_);
  void worker_loop(Shard& shard);
  void dispatch(Request& r);
  // Dispatches `r` and folds its wall time into the shard's drain-rate
  // EWMA (retry-hint scaling).
  void dispatch_timed(Shard& shard, Request& r);
  // Folds `total_ms` over `items` dispatched requests into the shard's
  // per-request drain-rate EWMA.
  void note_dispatch_ms(Shard& shard, double total_ms, int64_t items);
  // Executes a batch plan: one group at a time — acquire the session,
  // run its merged stacked evaluations in max_batch-request windows,
  // scatter results to the per-request promises, release. Lazy per-group
  // acquisition keeps this dispatcher at its one-pin budget (the
  // max_resident >= num_shards spare-victim invariant), so any group's
  // acquire may evict — including a later group's session, which then
  // simply restores bit-exactly when its turn comes.
  void dispatch_plan(BatchPlan plan, Shard* timing_shard)
      CHAM_EXCLUDES(sessions_mu_);
  // Makes the session resident (evicting/restoring as needed), pins it, and
  // returns its learner. Takes sessions_mu_ internally; eviction
  // serialisation and restore I/O both run with the lock released.
  core::ChameleonLearner* acquire_session(uint64_t session_id)
      CHAM_EXCLUDES(sessions_mu_);
  // Restores/creates the learner for a reserved slot (no locks held).
  std::unique_ptr<core::ChameleonLearner> materialize_session(
      uint64_t session_id) CHAM_EXCLUDES(sessions_mu_);
  // Records op stats, appends the request to the session's op log, and —
  // when `release_pin` — releases the pin. `ok=false` marks the log invalid
  // (state mutated without a completed op). Batch plans finish a group's
  // requests with release_pin=false until the LAST one: the moment the pin
  // drops, another shard may evict and free the learner, so no call after
  // the release may touch it.
  void finish_dispatch(Request& r, core::ChameleonLearner* learner, bool ok,
                       bool release_pin = true) CHAM_EXCLUDES(sessions_mu_);
  // Eviction, split so the analysis can prove the lock discipline: the
  // LRU unpinned victim is selected and unlinked under sessions_mu_
  // (pointer moves only — the <1ms bench gate watches this), then
  // serialised and handed to the write-behind pipeline with NO locks held.
  // Callers sandwich: unlink_victim(); lock.unlock();
  // snapshot_and_submit(...); lock.lock();
  EvictedVictim unlink_victim() CHAM_REQUIRES(sessions_mu_);
  void snapshot_and_submit(EvictedVictim victim, bool force_full)
      CHAM_EXCLUDES(sessions_mu_, stats_mu_);
  void note_dispatch_error() CHAM_EXCLUDES(stats_mu_);

  ServeConfig cfg_;
  LearnerFactory factory_;
  BatchPlanner planner_;
  SessionStore store_;
  std::unique_ptr<WriteBehind> write_behind_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Deterministic-mode dispatch token: drain() and drain_shard() pop and
  // dispatch on the CALLING thread, so without serialisation two callers
  // could dequeue consecutive requests of one session and run them
  // concurrently (an observe mutating the learner while a predict reads
  // it) — the per-session FIFO guarantee threaded mode gets from its
  // one-worker-per-shard structure. Held across whole drain passes
  // (dispatch included), ahead of every other serve-layer lock. Threaded
  // mode never takes it.
  util::Mutex det_dispatch_mu_ CHAM_ACQUIRED_BEFORE(sessions_mu_);

  mutable util::Mutex sessions_mu_;
  std::unordered_map<uint64_t, Session> sessions_ CHAM_GUARDED_BY(sessions_mu_);
  // Signalled when an eviction's snapshot reaches the write-behind pipeline
  // (Session::evicting cleared); acquire_session waits on it.
  util::CondVar evict_cv_;
  std::unordered_map<uint64_t, core::OpStats> session_op_stats_
      CHAM_GUARDED_BY(sessions_mu_);
  int64_t resident_ CHAM_GUARDED_BY(sessions_mu_) = 0;
  uint64_t tick_ CHAM_GUARDED_BY(sessions_mu_) = 0;

  // Leaf lock: may be taken under sessions_mu_ or a Shard::mu, never the
  // reverse (DESIGN.md "Lock hierarchy").
  mutable util::Mutex stats_mu_ CHAM_ACQUIRED_AFTER(sessions_mu_);
  ServeStats stats_ CHAM_GUARDED_BY(stats_mu_);

  // Shutdown flag. Relaxed ordering on both sides (memory-ordering policy
  // case 1, util/sync.h): every reader holds a Shard::mu while loading, and
  // the writer locks that same mutex (to notify) after the store, so the
  // mutex hand-off publishes the flag.
  std::atomic<bool> stop_{false};
  int prev_num_threads_ = 0;  // tensor pool size to restore (threaded mode)
};

}  // namespace cham::serve
