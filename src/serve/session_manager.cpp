#include "serve/session_manager.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <span>
#include <utility>

#include "tensor/rng.h"
#include "tensor/thread_pool.h"
#include "util/check.h"

namespace cham::serve {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SessionManager::SessionManager(ServeConfig cfg, LearnerFactory factory)
    : cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      planner_(BatchPlannerConfig{cfg_.max_batch, cfg_.max_wait_us}),
      store_(cfg_.store_dir) {
  CHAM_CHECK(cfg_.num_shards >= 1, "SessionManager: need at least one shard");
  CHAM_CHECK(cfg_.queue_capacity >= 1,
             "SessionManager: queue capacity must be positive");
  CHAM_CHECK(cfg_.max_batch >= 1,
             "SessionManager: max_batch must be positive");
  CHAM_CHECK(cfg_.max_resident >= cfg_.num_shards,
             "SessionManager: max_resident " +
                 std::to_string(cfg_.max_resident) + " below num_shards " +
                 std::to_string(cfg_.num_shards) +
                 " (each shard dispatcher may pin one session)");
  CHAM_CHECK(static_cast<bool>(factory_),
             "SessionManager: learner factory is empty");
  WriteBehindConfig wb;
  wb.enabled = cfg_.write_behind;
  wb.delta = cfg_.delta_checkpoints;
  wb.chunk_bytes = cfg_.delta_chunk_bytes;
  wb.compact_ratio = cfg_.delta_compact_ratio;
  wb.compact_every = cfg_.delta_compact_every;
  wb.max_replay_ops = cfg_.max_replay_ops;
  wb.snapshot_cache_bytes = cfg_.snapshot_cache_bytes;
  // Op-log replay is verified against a hash of the exact target blob;
  // that only holds when blobs round-trip losslessly.
  wb.lossless = cfg_.blob_precision == quant::Precision::kFp32;
  write_behind_ = std::make_unique<WriteBehind>(store_, wb);
  shards_.reserve(static_cast<size_t>(cfg_.num_shards));
  for (int64_t i = 0; i < cfg_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (cfg_.mode == ServeMode::kThreaded) {
    // Shard-level parallelism replaces intra-op parallelism: with the pool
    // at 1 thread, parallel_for short-circuits to an inline call, which is
    // safe from any number of shard workers and bit-identical to every
    // other thread count.
    prev_num_threads_ = num_threads();
    set_num_threads(1);
    for (auto& shard : shards_) {
      shard->worker = std::thread([this, &shard] { worker_loop(*shard); });
    }
  }
}

SessionManager::~SessionManager() {
  flush();
  if (cfg_.mode == ServeMode::kThreaded) {
    // Relaxed store: every worker loads stop_ while holding its shard mutex,
    // which this thread locks (below) after the store — the mutex hand-off
    // publishes the flag (memory-ordering policy case 1, util/sync.h).
    stop_.store(true, std::memory_order_relaxed);
    for (auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      shard->cv.notify_all();
    }
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
    set_num_threads(prev_num_threads_);
  }
}

int64_t SessionManager::shard_of(uint64_t session_id) const {
  // splitmix64 spreads adjacent ids across shards uniformly.
  return static_cast<int64_t>(splitmix64(session_id) %
                              static_cast<uint64_t>(cfg_.num_shards));
}

uint64_t SessionManager::session_seed(uint64_t session_id) const {
  return split_seed(cfg_.base_seed, session_id);
}

Admission SessionManager::enqueue(int64_t shard_idx, Request r) {
  Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
  int64_t depth = 0;
  bool accepted = false;
  double hint_ms = 0;
  {
    util::MutexLock lock(shard.mu);
    depth = static_cast<int64_t>(shard.queue.size());
    if (depth < cfg_.queue_capacity) {
      shard.queue.push_back(std::move(r));
      ++depth;
      accepted = true;
    } else {
      // Backpressure hint scaled to the observed drain rate: roughly one
      // full queue-drain at this shard's EWMA per-request dispatch time,
      // floored at the configured hint and capped so a stalled shard never
      // tells callers to go away for minutes.
      hint_ms = std::clamp(static_cast<double>(depth) * shard.ewma_dispatch_ms,
                           static_cast<double>(cfg_.retry_hint_ms),
                           static_cast<double>(cfg_.retry_hint_max_ms));
    }
  }
  // Stats are recorded with shard.mu released: the rejection path used to
  // take stats_mu_ while still holding the queue mutex, stretching the
  // admission critical section over an unrelated lock. stats_mu_ is a leaf
  // that never needs to nest under a Shard::mu.
  {
    util::MutexLock slock(stats_mu_);
    ++stats_.submitted;
    if (accepted) {
      ++stats_.admissions;
      stats_.queue_depth_high_water =
          std::max(stats_.queue_depth_high_water, depth);
    } else {
      ++stats_.rejections;
      stats_.record_retry_hint_ms(hint_ms);
    }
  }
  if (!accepted) {
    return {false, static_cast<int64_t>(std::ceil(hint_ms)), depth};
  }
  if (cfg_.mode == ServeMode::kThreaded) shard.cv.notify_one();
  return {true, 0, depth};
}

Admission SessionManager::submit_observe(uint64_t session_id,
                                         const data::Batch& batch) {
  Request r;
  r.kind = Request::Kind::kObserve;
  r.session_id = session_id;
  r.batch = batch;
  return enqueue(shard_of(session_id), std::move(r));
}

Admission SessionManager::submit_predict(
    uint64_t session_id, const std::vector<data::ImageKey>& keys,
    std::future<std::vector<int64_t>>* result) {
  // The promise is shared with the queued request: if dispatch throws (or
  // the submitting frame unwinds), neither side holds a dangling pointer,
  // and an exception set by the dispatcher re-surfaces from result.get().
  auto reply = std::make_shared<std::promise<std::vector<int64_t>>>();
  std::future<std::vector<int64_t>> future = reply->get_future();
  Request r;
  r.kind = Request::Kind::kPredict;
  r.session_id = session_id;
  r.keys = keys;
  r.reply = std::move(reply);
  const Admission adm = enqueue(shard_of(session_id), std::move(r));
  if (adm.accepted && result) *result = std::move(future);
  return adm;
}

std::optional<std::vector<int64_t>> SessionManager::predict(
    uint64_t session_id, const std::vector<data::ImageKey>& keys,
    Admission* admission) {
  std::future<std::vector<int64_t>> result;
  const Admission adm = submit_predict(session_id, keys, &result);
  if (admission) *admission = adm;
  if (!adm.accepted) return std::nullopt;
  // FIFO ordering: the request must be dispatched before returning —
  // deterministically by draining the shard here, or by blocking on the
  // worker in threaded mode.
  if (cfg_.mode == ServeMode::kDeterministic) {
    drain_shard(shard_of(session_id));
  }
  return result.get();
}

void SessionManager::drain() {
  if (cfg_.mode == ServeMode::kDeterministic) {
    // Serialise caller-driven dispatch: concurrent drainers (a net pump
    // thread racing a FLUSH responder, say) must not interleave pops of
    // the same session's queue.
    util::MutexLock det(det_dispatch_mu_);
    bool any = true;
    while (any) {
      any = false;
      // Cross-shard steal pass: pool every shard's eligible predicts into
      // ONE global plan. Single-threaded dispatch makes cross-shard
      // coalescing safe (a session never spans shards, so per-session FIFO
      // is untouched), and the planner's session_id ordering makes the
      // plan independent of both shard count and arrival interleaving.
      std::vector<Request> eligible;
      for (auto& shard : shards_) {
        util::MutexLock lock(shard->mu);
        // cham-lint: begin(batch_plan)
        planner_.take_eligible(shard->queue, eligible);
        // cham-lint: end(batch_plan)
      }
      if (!eligible.empty()) {
        dispatch_plan(planner_.finalize(std::move(eligible)), nullptr);
        any = true;
      }
      // Round-robin one remaining request per shard per pass: a
      // deterministic interleaving that exercises cross-session switching
      // (and therefore eviction) harder than draining shard-by-shard would.
      for (auto& shard : shards_) {
        Request r;
        {
          util::MutexLock lock(shard->mu);
          // cham-lint: begin(dispatch)
          if (shard->queue.empty()) continue;
          r = std::move(shard->queue.front());
          shard->queue.pop_front();
          // cham-lint: end(dispatch)
        }
        dispatch_timed(*shard, r);
        any = true;
      }
    }
    return;
  }
  for (auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    // Stop-aware: a worker that exited on shutdown can no longer drain its
    // queue, so waiting for emptiness would hang forever.
    shard->cv_idle.wait(lock, [this, &shard]() CHAM_REQUIRES(shard->mu) {
      return stop_.load(std::memory_order_relaxed) ||
             (shard->queue.empty() && shard->in_flight == 0);
    });
  }
}

void SessionManager::drain_shard(int64_t shard_idx) {
  util::MutexLock det(det_dispatch_mu_);
  Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
  for (;;) {
    std::vector<Request> eligible;
    Request r;
    bool have_single = false;
    {
      util::MutexLock lock(shard.mu);
      // cham-lint: begin(batch_plan)
      planner_.take_eligible(shard.queue, eligible);
      // cham-lint: end(batch_plan)
      if (eligible.empty()) {
        // cham-lint: begin(dispatch)
        if (shard.queue.empty()) return;
        r = std::move(shard.queue.front());
        shard.queue.pop_front();
        // cham-lint: end(dispatch)
        have_single = true;
      }
    }
    if (have_single) {
      dispatch_timed(shard, r);
    } else {
      dispatch_plan(planner_.finalize(std::move(eligible)), &shard);
    }
  }
}

void SessionManager::worker_loop(Shard& shard) {
  for (;;) {
    std::vector<Request> eligible;
    Request r;
    bool have_single = false;
    int64_t work_items = 0;
    {
      util::MutexLock lock(shard.mu);
      shard.cv.wait(lock, [this, &shard]() CHAM_REQUIRES(shard.mu) {
        return stop_.load(std::memory_order_relaxed) || !shard.queue.empty();
      });
      // cham-lint: begin(batch_plan)
      planner_.take_eligible(shard.queue, eligible);
      // cham-lint: end(batch_plan)
      if (!eligible.empty() &&
          static_cast<int64_t>(eligible.size()) < cfg_.max_batch &&
          cfg_.max_wait_us > 0) {
        // Bounded coalescing: hold the undersized plan open for at most
        // max_wait_us to admit straggler predicts. Purely a latency/
        // throughput trade — merged or not, results are bit-identical.
        const int64_t want = cfg_.max_batch -
                             static_cast<int64_t>(eligible.size());
        shard.cv.wait_for(
            lock, std::chrono::microseconds(cfg_.max_wait_us),
            [this, &shard, want]() CHAM_REQUIRES(shard.mu) {
              return stop_.load(std::memory_order_relaxed) ||
                     static_cast<int64_t>(shard.queue.size()) >= want;
            });
        // cham-lint: begin(batch_plan)
        planner_.take_eligible(shard.queue, eligible);
        // cham-lint: end(batch_plan)
      }
      if (eligible.empty()) {
        // cham-lint: begin(dispatch)
        if (shard.queue.empty()) {
          // stop_ set and no work left. Wake any drain() racing shutdown:
          // nobody will notify cv_idle after this thread exits.
          shard.cv_idle.notify_all();
          return;
        }
        r = std::move(shard.queue.front());
        shard.queue.pop_front();
        ++shard.in_flight;
        // cham-lint: end(dispatch)
        have_single = true;
        work_items = 1;
      } else {
        work_items = static_cast<int64_t>(eligible.size());
        shard.in_flight += work_items;
      }
    }
    if (have_single) {
      dispatch_timed(shard, r);
    } else {
      dispatch_plan(planner_.finalize(std::move(eligible)), &shard);
    }
    {
      util::MutexLock lock(shard.mu);
      shard.in_flight -= work_items;
      if (shard.queue.empty() && shard.in_flight == 0) {
        shard.cv_idle.notify_all();
      }
    }
  }
}

void SessionManager::note_dispatch_error() {
  util::MutexLock slock(stats_mu_);
  ++stats_.dispatch_errors;
}

void SessionManager::note_dispatch_ms(Shard& shard, double total_ms,
                                      int64_t items) {
  if (items <= 0) return;
  const double per_item = total_ms / static_cast<double>(items);
  util::MutexLock lock(shard.mu);
  shard.ewma_dispatch_ms = shard.ewma_dispatch_ms == 0
                               ? per_item
                               : 0.8 * shard.ewma_dispatch_ms + 0.2 * per_item;
}

void SessionManager::dispatch_timed(Shard& shard, Request& r) {
  const auto t0 = std::chrono::steady_clock::now();
  // May throw (deterministic-mode observe): that sample simply goes
  // unrecorded — the EWMA is a hint, not an invariant.
  dispatch(r);
  note_dispatch_ms(shard, ms_since(t0), 1);
}

void SessionManager::dispatch_plan(BatchPlan plan, Shard* timing_shard) {
  if (plan.items.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();

  // Groups run strictly one at a time: acquire, evaluate, release. Lazy
  // acquisition means this dispatcher never holds more than one pin — the
  // budget the max_resident >= num_shards spare-victim invariant allots it
  // — so every acquire is free to evict (possibly a session a LATER group
  // of this very plan needs; the restore is bit-exact, so that only costs
  // a round-trip, never a result bit).
  int64_t served = 0, windows = 0, merged = 0, max_window = 0;
  for (const PlanGroup& g : plan.groups) {
    core::ChameleonLearner* learner = nullptr;
    try {
      learner = acquire_session(g.session_id);
    } catch (...) {
      // Nothing is pinned (acquire un-reserves on its way out). Fail just
      // this group; the rest of the plan still runs.
      for (size_t i = g.begin; i < g.end; ++i) {
        plan.items[i].reply->set_exception(std::current_exception());
        note_dispatch_error();
      }
      continue;
    }
    const size_t n_reqs = g.end - g.begin;
    // All results are computed before any finish_dispatch: finishing moves
    // a request's keys into the session op log.
    std::vector<std::vector<int64_t>> results(n_reqs);
    bool ok = true;
    try {
      // Merged evaluation in windows of <= max_batch requests. Splitting a
      // stacked eval is row-exact (eval-mode layers are row-independent),
      // so the window size never changes any request's result.
      for (size_t w0 = g.begin; w0 < g.end;) {
        const size_t w1 =
            std::min(g.end, w0 + static_cast<size_t>(cfg_.max_batch));
        if (w1 - w0 == 1) {
          results[w0 - g.begin] = learner->predict_batch(
              std::span<const data::ImageKey>(plan.items[w0].keys));
        } else {
          std::vector<data::ImageKey> keys;
          size_t rows = 0;
          for (size_t i = w0; i < w1; ++i) rows += plan.items[i].keys.size();
          keys.reserve(rows);
          for (size_t i = w0; i < w1; ++i) {
            keys.insert(keys.end(), plan.items[i].keys.begin(),
                        plan.items[i].keys.end());
          }
          const std::vector<int64_t> out = learner->predict_batch(
              std::span<const data::ImageKey>(keys));
          // Scatter: each request owns a contiguous run of rows.
          size_t off = 0;
          for (size_t i = w0; i < w1; ++i) {
            const size_t len = plan.items[i].keys.size();
            results[i - g.begin].assign(out.begin() + static_cast<ptrdiff_t>(off),
                                        out.begin() +
                                            static_cast<ptrdiff_t>(off + len));
            off += len;
          }
          ++windows;
          merged += static_cast<int64_t>(w1 - w0);
          max_window = std::max(max_window, static_cast<int64_t>(w1 - w0));
        }
        w0 = w1;
      }
    } catch (...) {
      ok = false;
      for (size_t i = g.begin; i < g.end; ++i) {
        finish_dispatch(plan.items[i], learner, /*ok=*/false,
                        /*release_pin=*/i + 1 == g.end);
        plan.items[i].reply->set_exception(std::current_exception());
        note_dispatch_error();
      }
    }
    if (!ok) continue;
    for (size_t i = g.begin; i < g.end; ++i) {
      // The pin drops only with the LAST request of the group; after that
      // another shard may evict and free the learner.
      finish_dispatch(plan.items[i], learner, /*ok=*/true,
                      /*release_pin=*/i + 1 == g.end);
      plan.items[i].reply->set_value(std::move(results[i - g.begin]));
      ++served;
    }
  }

  {
    util::MutexLock slock(stats_mu_);
    stats_.predicts += served;
    stats_.predict_batches += windows;
    stats_.batched_predicts += merged;
    stats_.batch_size_max = std::max(stats_.batch_size_max, max_window);
  }
  if (timing_shard != nullptr) {
    note_dispatch_ms(*timing_shard, ms_since(t0),
                     static_cast<int64_t>(plan.items.size()));
  }
}

void SessionManager::dispatch(Request& r) {
  core::ChameleonLearner* learner = nullptr;
  try {
    learner = acquire_session(r.session_id);
  } catch (...) {
    // acquire_session un-reserves on its way out; nothing is pinned here.
    note_dispatch_error();
    if (r.reply) {
      r.reply->set_exception(std::current_exception());
      return;  // the predict() caller rethrows from result.get()
    }
    if (cfg_.mode == ServeMode::kDeterministic) throw;
    return;  // threaded observe: counted; the worker must survive
  }
  // Execute unpinned from sessions_mu_: other shards keep admitting and
  // evicting while this session trains (it is protected by its in_use pin).
  std::vector<int64_t> out;
  try {
    if (r.kind == Request::Kind::kObserve) {
      learner->observe(r.batch);
    } else {
      out = learner->predict(r.keys);
    }
  } catch (...) {
    // Release the pin FIRST (a permanently pinned session deadlocks
    // eviction and flush), then surface the error: through the promise for
    // predicts, to the caller in deterministic mode, counted in threaded
    // mode (the worker thread must not die).
    finish_dispatch(r, learner, /*ok=*/false);
    note_dispatch_error();
    if (r.reply) {
      r.reply->set_exception(std::current_exception());
      return;
    }
    if (cfg_.mode == ServeMode::kDeterministic) throw;
    return;
  }
  finish_dispatch(r, learner, /*ok=*/true);
  if (r.reply) r.reply->set_value(std::move(out));
  util::MutexLock slock(stats_mu_);
  if (r.kind == Request::Kind::kObserve) {
    ++stats_.observes;
  } else {
    ++stats_.predicts;
  }
}

void SessionManager::finish_dispatch(Request& r,
                                     core::ChameleonLearner* learner,
                                     bool ok, bool release_pin) {
  util::MutexLock lock(sessions_mu_);
  // cham-lint: begin(sessions_mu)
  auto it = sessions_.find(r.session_id);
  CHAM_CHECK(it != sessions_.end(),
             "SessionManager: releasing unknown session");
  Session& session = it->second;
  session_op_stats_[r.session_id] = learner->stats();
  if (!ok) {
    // The op may have mutated state without completing; an op-log replay
    // would diverge. Force the next snapshot to chunk/full form.
    session.ops_valid = false;
    session.ops.clear();
  } else if (session.ops_valid) {
    if (static_cast<int64_t>(session.ops.size()) >= cfg_.max_replay_ops) {
      // Bounded log: past the replay cap an op-log delta would never be
      // encoded anyway; stop accumulating (chunk/full still available).
      session.ops_valid = false;
      session.ops.clear();
    } else {
      data::ServeOp op;
      op.predict = r.kind == Request::Kind::kPredict;
      if (op.predict) {
        op.keys = std::move(r.keys);
      } else {
        op.batch = std::move(r.batch);
      }
      session.ops.push_back(std::move(op));
    }
  }
  if (release_pin) session.in_use = false;
  // cham-lint: end(sessions_mu)
}

core::ChameleonLearner* SessionManager::acquire_session(uint64_t session_id) {
  util::MutexLock lock(sessions_mu_);
  // cham-lint: begin(sessions_mu)
  for (;;) {
    // Re-look-up every iteration: eviction releases the lock mid-loop and
    // the map may rehash under concurrent admissions.
    Session& session = sessions_[session_id];
    if (session.evicting) {
      // This session's learner was just unlinked by an eviction whose
      // snapshot has not reached the write-behind pipeline yet. Restoring
      // now would read the PREVIOUS flush's bytes — silently stale state.
      // Wait for snapshot_and_submit to publish, then re-look-up.
      evict_cv_.wait(lock, [this, session_id]() CHAM_REQUIRES(sessions_mu_) {
        auto it = sessions_.find(session_id);
        return it == sessions_.end() || !it->second.evicting;
      });
      continue;
    }
    if (session.learner) {
      CHAM_CHECK(!session.in_use,
                 "SessionManager: session " + std::to_string(session_id) +
                     " dispatched concurrently (shard routing broken)");
      session.in_use = true;
      session.last_used = ++tick_;
      return session.learner.get();
    }
    if (resident_ < cfg_.max_resident) break;
    // Evict before reserving: this dispatcher must hold no pin while
    // evicting, or the max_resident >= num_shards spare-victim invariant
    // breaks. Unlink under the lock (pointer moves only), serialise and
    // hand off with it released.
    EvictedVictim victim = unlink_victim();
    // cham-lint: end(sessions_mu)
    lock.unlock();
    snapshot_and_submit(std::move(victim), /*force_full=*/false);
    lock.lock();
    // cham-lint: begin(sessions_mu)
  }
  // Reserve the residency slot and pin it before dropping the lock: other
  // dispatchers must neither evict this slot (no learner yet -> eviction
  // scans skip it) nor overfill the pool while this one materialises.
  {
    Session& session = sessions_[session_id];
    session.in_use = true;
    session.last_used = ++tick_;
  }
  ++resident_;
  {
    util::MutexLock slock(stats_mu_);
    stats_.resident_high_water =
        std::max(stats_.resident_high_water, resident_);
  }
  // cham-lint: end(sessions_mu)
  lock.unlock();

  // Materialise with no locks held: factory construction, restore I/O and
  // op-log replay are the slow path.
  std::unique_ptr<core::ChameleonLearner> fresh;
  try {
    fresh = materialize_session(session_id);
  } catch (...) {
    // Un-reserve so the slot does not leak (the session stays evicted /
    // absent; a later request may retry).
    lock.lock();
    Session& session = sessions_[session_id];
    session.in_use = false;
    --resident_;
    throw;
  }

  lock.lock();
  // cham-lint: begin(sessions_mu)
  Session& session = sessions_[session_id];
  session.learner = std::move(fresh);
  session.ops.clear();
  session.ops_valid = true;
  session.last_used = ++tick_;
  return session.learner.get();
  // cham-lint: end(sessions_mu)
}

std::unique_ptr<core::ChameleonLearner> SessionManager::materialize_session(
    uint64_t session_id) {
  auto fresh = factory_(session_id, session_seed(session_id));
  CHAM_CHECK(fresh != nullptr, "SessionManager: factory returned null");

  // Restore priority: the write-behind pipeline's newest copy (pending,
  // mid-flush, or cached) is authoritative — a restore racing its own
  // flush must read the exact bytes eviction produced.
  bool pending = false;
  if (auto blob = write_behind_->newest_blob(session_id, &pending)) {
    const auto t0 = std::chrono::steady_clock::now();
    core::ByteBufReader is(blob->data(), blob->size());
    const bool ok = fresh->load_state(is);
    CHAM_CHECK(ok, "SessionManager: corrupt in-memory snapshot for id " +
                       std::to_string(session_id));
    util::MutexLock slock(stats_mu_);
    ++stats_.restores;
    ++(pending ? stats_.pending_restores : stats_.cache_restores);
    stats_.record_restore_ms(ms_since(t0));
    return fresh;
  }

  if (!store_.contains(session_id)) {
    util::MutexLock slock(stats_mu_);
    ++stats_.creates;
    return fresh;
  }

  const auto t0 = std::chrono::steady_clock::now();
  int64_t replayed = 0;
  core::ByteBuf delta;
  core::DeltaHeader h;
  const bool oplog_delta =
      store_.get_delta(session_id, delta) &&
      core::read_delta_header(delta.data(), delta.size(), h) &&
      h.kind == core::DeltaKind::kOpLog;
  if (!oplog_delta) {
    // Full blob, possibly with a chunk delta (applied inside the store).
    const bool ok = store_.load(session_id, *fresh);
    CHAM_CHECK(ok, "SessionManager: corrupt session blob for id " +
                       std::to_string(session_id));
  } else {
    core::ByteBuf base;
    const bool have_base = store_.get_blob(session_id, base);
    CHAM_CHECK(have_base, "SessionManager: op-log delta without base blob "
                          "for id " +
                              std::to_string(session_id));
    const bool stale =
        h.base_len != base.size() ||
        h.base_hash != core::blob_hash(base.data(), base.size());
    core::ByteBufReader is(base.data(), base.size());
    const bool ok = fresh->load_state(is);
    CHAM_CHECK(ok, "SessionManager: corrupt session blob for id " +
                       std::to_string(session_id));
    if (!stale) {
      // Replay the logged requests on top of the base state. The repo-wide
      // determinism contract makes this reproduce the evicted state
      // byte-for-byte; the frame's hash of that state proves it.
      std::vector<data::ServeOp> ops;
      const bool parsed = core::read_op_log(delta.data(), delta.size(), ops);
      CHAM_CHECK(parsed, "SessionManager: malformed op-log delta for id " +
                             std::to_string(session_id));
      for (const auto& op : ops) {
        if (op.predict) {
          (void)fresh->predict(op.keys);
        } else {
          fresh->observe(op.batch);
        }
      }
      replayed = static_cast<int64_t>(ops.size());
      core::ByteBuf replayed_blob;
      {
        core::ByteBufWriter os(replayed_blob);
        const bool saved = fresh->save_state(os, cfg_.blob_precision);
        CHAM_CHECK(saved, "SessionManager: reserialize after replay failed");
      }
      CHAM_CHECK(
          replayed_blob.size() == h.next_len &&
              core::blob_hash(replayed_blob.data(), replayed_blob.size()) ==
                  h.next_hash,
          "SessionManager: op-log replay hash mismatch for id " +
              std::to_string(session_id) +
              " (determinism contract violated or delta corrupt)");
    }
    // Stale op-log (crash between a full flush and the delta unlink): the
    // base IS the newest state; nothing to replay.
  }
  util::MutexLock slock(stats_mu_);
  ++stats_.restores;
  ++stats_.disk_restores;
  stats_.replayed_ops += replayed;
  stats_.record_restore_ms(ms_since(t0));
  return fresh;
}

SessionManager::EvictedVictim SessionManager::unlink_victim() {
  // Lock-held portion of an eviction: victim selection and unlink. Pointer
  // moves only; the <1ms bench gate watches lock_ms. The caller releases
  // sessions_mu_ before serialising the returned victim.
  const auto t_lock = std::chrono::steady_clock::now();
  uint64_t victim_id = 0;
  Session* victim = nullptr;
  for (auto& [id, session] : sessions_) {
    if (!session.learner || session.in_use) continue;
    if (!victim || session.last_used < victim->last_used) {
      victim = &session;
      victim_id = id;
    }
  }
  // max_resident >= num_shards guarantees a spare: at most num_shards - 1
  // other sessions are pinned while one dispatcher is admitting.
  CHAM_CHECK(victim != nullptr,
             "SessionManager: no evictable session (all pinned)");
  EvictedVictim out;
  out.session_id = victim_id;
  out.learner = std::move(victim->learner);
  out.ops = std::move(victim->ops);
  out.ops_valid = victim->ops_valid;
  victim->ops.clear();
  victim->ops_valid = true;
  victim->evicting = true;
  --resident_;
  out.lock_ms = ms_since(t_lock);
  return out;
}

void SessionManager::snapshot_and_submit(EvictedVictim victim,
                                         bool force_full) {
  // Unlocked portion of an eviction: serialise into a pool-backed snapshot
  // and hand it to the write-behind pipeline. Other shards admit/evict/
  // dispatch freely during this.
  const auto t0 = std::chrono::steady_clock::now();
  auto blob = std::make_shared<core::ByteBuf>();
  {
    core::ByteBufWriter os(*blob);
    const bool ok = victim.learner->save_state(os, cfg_.blob_precision);
    CHAM_CHECK(ok, "SessionManager: failed to serialise session " +
                       std::to_string(victim.session_id));
  }
  victim.learner.reset();  // destroy outside the lock too
  const double save_ms = ms_since(t0);

  WriteBehind::Snapshot snap;
  snap.session_id = victim.session_id;
  snap.blob = std::move(blob);
  snap.ops = std::move(victim.ops);
  snap.ops_valid = victim.ops_valid;
  snap.force_full = force_full;
  write_behind_->submit(std::move(snap));

  // The pipeline now owns the newest bytes; unblock any dispatcher that
  // queued up to rematerialise this session.
  {
    util::MutexLock lock(sessions_mu_);
    sessions_[victim.session_id].evicting = false;
  }
  evict_cv_.notify_all();

  util::MutexLock slock(stats_mu_);
  ++stats_.evictions;
  stats_.record_save_ms(save_ms);
  stats_.record_evict_lock_ms(victim.lock_ms);
}

void SessionManager::flush() {
  drain();
  {
    util::MutexLock lock(sessions_mu_);
    // cham-lint: begin(sessions_mu)
    while (resident_ > 0) {
      EvictedVictim victim = unlink_victim();
      // cham-lint: end(sessions_mu)
      lock.unlock();
      snapshot_and_submit(std::move(victim), /*force_full=*/true);
      lock.lock();
      // cham-lint: begin(sessions_mu)
    }
    // cham-lint: end(sessions_mu)
  }
  // Settle the pipeline and compact any outstanding deltas so external
  // SessionStore readers see complete, current blobs.
  write_behind_->drain();
  write_behind_->compact_all();
}

ServeStats SessionManager::stats() const {
  ServeStats snapshot;
  {
    util::MutexLock lock(stats_mu_);
    snapshot = stats_;
  }
  const WriteBehindStats wb = write_behind_->stats();
  snapshot.wb_flushes = wb.flushes;
  snapshot.wb_flush_errors = wb.flush_errors;
  snapshot.wb_full_saves = wb.full_saves;
  snapshot.wb_chunk_saves = wb.chunk_saves;
  snapshot.wb_oplog_saves = wb.oplog_saves;
  snapshot.wb_full_bytes = wb.full_bytes;
  snapshot.wb_delta_bytes = wb.delta_bytes;
  snapshot.wb_compactions = wb.compactions;
  snapshot.wb_queue_depth_high_water = wb.queue_depth_high_water;
  snapshot.wb_cache_bytes_high_water = wb.cache_bytes_high_water;
  snapshot.flush_ms_total = wb.flush_ms_total;
  snapshot.flush_ms_max = wb.flush_ms_max;
  return snapshot;
}

core::OpStats SessionManager::aggregate_op_stats() const {
  util::MutexLock lock(sessions_mu_);
  core::OpStats total;
  for (const auto& [id, ops] : session_op_stats_) {
    (void)id;
    total += ops;
  }
  return total;
}

int64_t SessionManager::resident_count() const {
  util::MutexLock lock(sessions_mu_);
  return resident_;
}

}  // namespace cham::serve
