#include "serve/session_manager.h"

#include <chrono>

#include "tensor/rng.h"
#include "tensor/thread_pool.h"
#include "util/check.h"

namespace cham::serve {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SessionManager::SessionManager(ServeConfig cfg, LearnerFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)), store_(cfg_.store_dir) {
  CHAM_CHECK(cfg_.num_shards >= 1, "SessionManager: need at least one shard");
  CHAM_CHECK(cfg_.queue_capacity >= 1,
             "SessionManager: queue capacity must be positive");
  CHAM_CHECK(cfg_.max_resident >= cfg_.num_shards,
             "SessionManager: max_resident " +
                 std::to_string(cfg_.max_resident) + " below num_shards " +
                 std::to_string(cfg_.num_shards) +
                 " (each shard dispatcher may pin one session)");
  CHAM_CHECK(static_cast<bool>(factory_),
             "SessionManager: learner factory is empty");
  shards_.reserve(static_cast<size_t>(cfg_.num_shards));
  for (int64_t i = 0; i < cfg_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (cfg_.mode == ServeMode::kThreaded) {
    // Shard-level parallelism replaces intra-op parallelism: with the pool
    // at 1 thread, parallel_for short-circuits to an inline call, which is
    // safe from any number of shard workers and bit-identical to every
    // other thread count.
    prev_num_threads_ = num_threads();
    set_num_threads(1);
    for (auto& shard : shards_) {
      shard->worker = std::thread([this, &shard] { worker_loop(*shard); });
    }
  }
}

SessionManager::~SessionManager() {
  flush();
  if (cfg_.mode == ServeMode::kThreaded) {
    stop_.store(true);
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->cv.notify_all();
    }
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
    set_num_threads(prev_num_threads_);
  }
}

int64_t SessionManager::shard_of(uint64_t session_id) const {
  // splitmix64 spreads adjacent ids across shards uniformly.
  return static_cast<int64_t>(splitmix64(session_id) %
                              static_cast<uint64_t>(cfg_.num_shards));
}

uint64_t SessionManager::session_seed(uint64_t session_id) const {
  return split_seed(cfg_.base_seed, session_id);
}

Admission SessionManager::enqueue(int64_t shard_idx, Request r) {
  Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
  int64_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    depth = static_cast<int64_t>(shard.queue.size());
    if (depth >= cfg_.queue_capacity) {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.submitted;
      ++stats_.rejections;
      return {false, cfg_.retry_hint_ms, depth};
    }
    shard.queue.push_back(std::move(r));
    ++depth;
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.submitted;
    ++stats_.admissions;
    stats_.queue_depth_high_water =
        std::max(stats_.queue_depth_high_water, depth);
  }
  if (cfg_.mode == ServeMode::kThreaded) shard.cv.notify_one();
  return {true, 0, depth};
}

Admission SessionManager::submit_observe(uint64_t session_id,
                                         const data::Batch& batch) {
  Request r;
  r.kind = Request::Kind::kObserve;
  r.session_id = session_id;
  r.batch = batch;
  return enqueue(shard_of(session_id), std::move(r));
}

std::optional<std::vector<int64_t>> SessionManager::predict(
    uint64_t session_id, const std::vector<data::ImageKey>& keys,
    Admission* admission) {
  std::promise<std::vector<int64_t>> reply;
  std::future<std::vector<int64_t>> result = reply.get_future();
  Request r;
  r.kind = Request::Kind::kPredict;
  r.session_id = session_id;
  r.keys = &keys;
  r.reply = &reply;
  const int64_t shard_idx = shard_of(session_id);
  const Admission adm = enqueue(shard_idx, std::move(r));
  if (admission) *admission = adm;
  if (!adm.accepted) return std::nullopt;
  // The promise lives on this stack frame, so the request must be fully
  // dispatched before returning — deterministically by draining the shard
  // here, or by blocking on the worker in threaded mode.
  if (cfg_.mode == ServeMode::kDeterministic) drain_shard(shard_idx);
  return result.get();
}

void SessionManager::drain() {
  if (cfg_.mode == ServeMode::kDeterministic) {
    // Round-robin one request per shard per pass: a deterministic
    // interleaving that exercises cross-session switching (and therefore
    // eviction) harder than draining shard-by-shard would.
    bool any = true;
    while (any) {
      any = false;
      for (auto& shard : shards_) {
        Request r;
        {
          std::lock_guard<std::mutex> lock(shard->mu);
          // cham-lint: begin(dispatch)
          if (shard->queue.empty()) continue;
          r = std::move(shard->queue.front());
          shard->queue.pop_front();
          // cham-lint: end(dispatch)
        }
        dispatch(r);
        any = true;
      }
    }
    return;
  }
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->cv_idle.wait(lock, [&shard] {
      return shard->queue.empty() && shard->in_flight == 0;
    });
  }
}

void SessionManager::drain_shard(int64_t shard_idx) {
  Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
  for (;;) {
    Request r;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      // cham-lint: begin(dispatch)
      if (shard.queue.empty()) return;
      r = std::move(shard.queue.front());
      shard.queue.pop_front();
      // cham-lint: end(dispatch)
    }
    dispatch(r);
  }
}

void SessionManager::worker_loop(Shard& shard) {
  for (;;) {
    Request r;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [this, &shard] {
        return stop_ || !shard.queue.empty();
      });
      // cham-lint: begin(dispatch)
      if (shard.queue.empty()) return;  // stop_ set and no work left
      r = std::move(shard.queue.front());
      shard.queue.pop_front();
      ++shard.in_flight;
      // cham-lint: end(dispatch)
    }
    dispatch(r);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      --shard.in_flight;
      if (shard.queue.empty() && shard.in_flight == 0) {
        shard.cv_idle.notify_all();
      }
    }
  }
}

void SessionManager::dispatch(Request& r) {
  core::ChameleonLearner* learner = nullptr;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    learner = acquire_session(r.session_id);
  }
  // Execute unpinned from sessions_mu_: other shards keep admitting and
  // evicting while this session trains (it is protected by its in_use pin).
  if (r.kind == Request::Kind::kObserve) {
    learner->observe(r.batch);
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.observes;
  } else {
    r.reply->set_value(learner->predict(*r.keys));
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.predicts;
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session_op_stats_[r.session_id] = learner->stats();
    release_session(r.session_id);
  }
}

core::ChameleonLearner* SessionManager::acquire_session(uint64_t session_id) {
  Session& session = sessions_[session_id];
  if (!session.learner) {
    while (resident_ >= cfg_.max_resident) evict_one_locked();
    auto fresh = factory_(session_id, session_seed(session_id));
    CHAM_CHECK(fresh != nullptr, "SessionManager: factory returned null");
    if (store_.contains(session_id)) {
      const auto t0 = std::chrono::steady_clock::now();
      const bool ok = store_.load(session_id, *fresh);
      CHAM_CHECK(ok, "SessionManager: corrupt session blob for id " +
                         std::to_string(session_id));
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.restores;
      stats_.record_restore_ms(ms_since(t0));
    } else {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.creates;
    }
    session.learner = std::move(fresh);
    ++resident_;
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.resident_high_water =
        std::max(stats_.resident_high_water, resident_);
  }
  CHAM_CHECK(!session.in_use,
             "SessionManager: session " + std::to_string(session_id) +
                 " dispatched concurrently (shard routing broken)");
  session.in_use = true;
  session.last_used = ++tick_;
  return session.learner.get();
}

void SessionManager::release_session(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  CHAM_CHECK(it != sessions_.end(),
             "SessionManager: releasing unknown session");
  it->second.in_use = false;
}

void SessionManager::evict_one_locked() {
  uint64_t victim_id = 0;
  Session* victim = nullptr;
  for (auto& [id, session] : sessions_) {
    if (!session.learner || session.in_use) continue;
    if (!victim || session.last_used < victim->last_used) {
      victim = &session;
      victim_id = id;
    }
  }
  // max_resident >= num_shards guarantees a spare: at most num_shards - 1
  // other sessions are pinned while one dispatcher is admitting.
  CHAM_CHECK(victim != nullptr,
             "SessionManager: no evictable session (all pinned)");
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = store_.save(victim_id, *victim->learner);
  CHAM_CHECK(ok, "SessionManager: failed to serialise session " +
                     std::to_string(victim_id));
  victim->learner.reset();
  --resident_;
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.evictions;
  stats_.record_save_ms(ms_since(t0));
}

void SessionManager::flush() {
  drain();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  while (resident_ > 0) evict_one_locked();
}

ServeStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

core::OpStats SessionManager::aggregate_op_stats() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  core::OpStats total;
  for (const auto& [id, ops] : session_op_stats_) {
    (void)id;
    total += ops;
  }
  return total;
}

int64_t SessionManager::resident_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return resident_;
}

}  // namespace cham::serve
