// Disk-backed store of evicted session state.
//
// The serving runtime keeps a bounded pool of resident learners; everything
// else lives here as one binary blob per session (the full
// ChameleonLearner::save_state payload: head weights, ST/LT contents,
// preference statistics, staged LT burst, RNG state, step counter, traffic
// ledger). In the paper's memory-hierarchy terms the resident pool is the
// on-chip tier and this store the off-chip tier: capacity is cheap, access
// costs a serialisation round-trip, and the round-trip must be lossless —
// a restored session continues bit-identically (tests/test_serve.cpp gates
// this).
//
// Thread-safety: all methods are serialised by an internal mutex. Blob I/O
// happens under the lock; the store is accessed from the eviction/restore
// path, which the SessionManager already treats as its slow path.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/chameleon.h"

namespace cham::serve {

class SessionStore {
 public:
  // Creates `dir` (and parents) if missing. Existing session blobs in the
  // directory are visible immediately (a restarted server re-adopts them).
  explicit SessionStore(std::string dir);

  // Serialises the learner's full state to the session's blob (overwrites).
  bool save(uint64_t session_id, const core::ChameleonLearner& learner);

  // Restores a blob into a learner constructed with the same config and
  // environment. False if absent or malformed.
  bool load(uint64_t session_id, core::ChameleonLearner& learner);

  bool contains(uint64_t session_id) const;
  bool erase(uint64_t session_id);
  void clear();  // removes every session blob

  std::vector<uint64_t> session_ids() const;
  int64_t size() const;  // stored session count

  const std::string& dir() const { return dir_; }
  int64_t bytes_written() const;
  int64_t bytes_read() const;

 private:
  std::string path_for(uint64_t session_id) const;

  std::string dir_;
  mutable std::mutex mu_;
  int64_t bytes_written_ = 0;
  int64_t bytes_read_ = 0;
};

}  // namespace cham::serve
