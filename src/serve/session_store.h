// Disk-backed store of evicted session state.
//
// The serving runtime keeps a bounded pool of resident learners; everything
// else lives here as one blob per session (the full
// ChameleonLearner::save_state payload: head weights, ST/LT contents,
// preference statistics, staged LT burst, RNG state, step counter, traffic
// ledger). In the paper's memory-hierarchy terms the resident pool is the
// on-chip tier and this store the off-chip tier: capacity is cheap, access
// costs a serialisation round-trip, and the round-trip must be lossless —
// a restored session continues bit-identically (tests/test_serve.cpp gates
// this).
//
// On-disk layout per session:
//   session_<id>.chk     the last FULL blob (CHS2)
//   session_<id>.delta   optional CHS3 delta against that blob — at most
//                        one; each delta write replaces the previous, and
//                        a full write removes it. The pair (.chk, .delta)
//                        is the session's newest state.
//
// Durability: every write goes through write+fsync to a temp name, then
// rename, then a best-effort directory fsync. Write errors (disk full,
// short write) are detected BEFORE the rename, so a failed save never
// replaces a valid blob with a truncated one. Crash-consistency of the
// pair: a full write renames .chk first and unlinks .delta second, so a
// crash in between leaves a .delta whose base hash no longer matches —
// load() detects that and serves the (newer) base alone.
//
// Thread-safety: all methods are serialised by an internal mutex. Blob I/O
// happens under the lock; callers on latency-sensitive paths (the
// write-behind IO thread, cold restores) already treat this as the slow
// tier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/chameleon.h"
#include "core/checkpoint.h"
#include "quant/quantize.h"
#include "util/sync.h"

namespace cham::serve {

class SessionStore {
 public:
  // Creates `dir` (and parents) if missing. Existing session blobs in the
  // directory are visible immediately (a restarted server re-adopts them).
  explicit SessionStore(std::string dir);

  // --- Raw blob interface (the write-behind pipeline's entry points). ---

  // Durably installs `data` as the session's full blob and removes any
  // delta. False on any I/O error, in which case the previous blob (and
  // delta) remain intact and readable.
  bool put_full(uint64_t session_id, const char* data, std::size_t n)
      CHAM_EXCLUDES(mu_);

  // Durably installs a CHS3 delta frame next to the existing full blob
  // (which must exist). Replaces any previous delta.
  bool put_delta(uint64_t session_id, const char* data, std::size_t n)
      CHAM_EXCLUDES(mu_);

  // Raw bytes of the full blob / the delta frame. False if absent or
  // unreadable.
  bool get_blob(uint64_t session_id, core::ByteBuf& out) const
      CHAM_EXCLUDES(mu_);
  bool get_delta(uint64_t session_id, core::ByteBuf& out) const
      CHAM_EXCLUDES(mu_);
  bool has_delta(uint64_t session_id) const CHAM_EXCLUDES(mu_);

  // --- Learner convenience wrappers. ---

  // Serialises the learner's full state (in memory, then one durable
  // write). False on serialisation or I/O failure; never clobbers the
  // previous blob on failure.
  bool save(uint64_t session_id, const core::ChameleonLearner& learner,
            quant::Precision precision = quant::Precision::kFp32)
      CHAM_EXCLUDES(mu_);

  // Restores the session's newest state into a learner constructed with
  // the same config and environment. Applies a chunk delta if one is
  // present; ignores a stale delta (base hash mismatch — see the
  // crash-consistency note above). Returns false if absent or malformed,
  // and also if the newest state is behind an op-log delta: replaying ops
  // needs the SessionManager (it owns dispatch), so plain readers must
  // only be pointed at compacted stores (SessionManager::flush compacts).
  bool load(uint64_t session_id, core::ChameleonLearner& learner)
      CHAM_EXCLUDES(mu_);

  bool contains(uint64_t session_id) const CHAM_EXCLUDES(mu_);
  bool erase(uint64_t session_id) CHAM_EXCLUDES(mu_);
  void clear() CHAM_EXCLUDES(mu_);  // removes every session blob and delta

  std::vector<uint64_t> session_ids() const CHAM_EXCLUDES(mu_);
  int64_t size() const CHAM_EXCLUDES(mu_);  // stored session count

  const std::string& dir() const { return dir_; }
  int64_t bytes_written() const CHAM_EXCLUDES(mu_);
  int64_t bytes_read() const CHAM_EXCLUDES(mu_);

 private:
  std::string path_for(uint64_t session_id) const;
  std::string delta_path_for(uint64_t session_id) const;
  // write+fsync to path+".tmp", rename over path, fsync the directory.
  // Filesystem state is guarded state too: mu_ serialises every read and
  // write of the blob/delta pair, so these carry CHAM_REQUIRES(mu_) even
  // though they touch no data member directly.
  bool write_atomic(const std::string& path, const char* data,
                    std::size_t n) CHAM_REQUIRES(mu_);
  bool read_file(const std::string& path, core::ByteBuf& out) const
      CHAM_REQUIRES(mu_);

  std::string dir_;
  // Guards the byte counters AND the on-disk blob/delta pair: the two-file
  // update protocols (rename-then-unlink) are atomic only because every
  // accessor serialises here.
  mutable util::Mutex mu_;
  int64_t bytes_written_ CHAM_GUARDED_BY(mu_) = 0;
  int64_t bytes_read_ CHAM_GUARDED_BY(mu_) = 0;
};

}  // namespace cham::serve
