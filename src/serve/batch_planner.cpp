#include "serve/batch_planner.h"

#include <algorithm>

namespace cham::serve {

void BatchPlanner::take_eligible(std::deque<Request>& queue,
                                 std::vector<Request>& out) const {
  if (queue.empty()) return;
  // Sessions with a request left in the queue: later requests of the same
  // session must stay behind it. A flat vector beats a hash set at shard
  // queue depths (tens of entries, very few distinct sessions).
  std::vector<uint64_t> blocked;
  auto is_blocked = [&](uint64_t id) {
    return std::find(blocked.begin(), blocked.end(), id) != blocked.end();
  };
  std::deque<Request> keep;
  for (Request& r : queue) {
    if (r.kind == Request::Kind::kPredict && !is_blocked(r.session_id)) {
      out.push_back(std::move(r));
      continue;
    }
    // Anything left in place — an observe, or a predict behind one —
    // blocks every later request of its session.
    if (!is_blocked(r.session_id)) blocked.push_back(r.session_id);
    keep.push_back(std::move(r));
  }
  queue.swap(keep);
}

BatchPlan BatchPlanner::finalize(std::vector<Request> items) const {
  BatchPlan plan;
  plan.items = std::move(items);
  // Stable: same-session items keep their submission order (they all came
  // from one shard's extraction pass in queue order). The sorted order is
  // therefore a pure function of per-session request sequences.
  std::stable_sort(plan.items.begin(), plan.items.end(),
                   [](const Request& a, const Request& b) {
                     return a.session_id < b.session_id;
                   });
  for (std::size_t i = 0; i < plan.items.size();) {
    PlanGroup g;
    g.session_id = plan.items[i].session_id;
    g.begin = i;
    for (; i < plan.items.size() && plan.items[i].session_id == g.session_id;
         ++i) {
      g.rows += static_cast<int64_t>(plan.items[i].keys.size());
    }
    g.end = i;
    plan.groups.push_back(g);
  }
  return plan;
}

}  // namespace cham::serve
