#include "quant/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace cham::quant {
namespace {

constexpr int64_t kBfpBlockSize = 16;

uint32_t float_bits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float bits_float(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

}  // namespace

// ------------------------------------------------------------------ fp16

uint16_t fp32_to_fp16_bits(float value) {
  const uint32_t bits = float_bits(value);
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const int32_t exponent = static_cast<int32_t>((bits >> 23) & 0xFF) - 127;
  uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent == 128) {  // inf / NaN
    return static_cast<uint16_t>(sign | 0x7C00u | (mantissa ? 0x200u : 0u));
  }
  if (exponent > 15) {  // overflow -> inf
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (exponent >= -14) {  // normal range
    // Round mantissa from 23 to 10 bits, round-to-nearest-even.
    uint32_t m = mantissa >> 13;
    const uint32_t rest = mantissa & 0x1FFFu;
    if (rest > 0x1000u || (rest == 0x1000u && (m & 1u))) ++m;
    uint32_t e = static_cast<uint32_t>(exponent + 15);
    if (m == 0x400u) {  // mantissa rounded up into the next exponent
      m = 0;
      ++e;
      if (e >= 31) return static_cast<uint16_t>(sign | 0x7C00u);
    }
    return static_cast<uint16_t>(sign | (e << 10) | m);
  }
  if (exponent >= -24) {  // denormal half
    mantissa |= 0x800000u;  // implicit leading 1
    const int shift = -exponent - 14 + 13;
    uint32_t m = mantissa >> shift;
    const uint32_t rest = mantissa & ((1u << shift) - 1);
    const uint32_t half = 1u << (shift - 1);
    if (rest > half || (rest == half && (m & 1u))) ++m;
    return static_cast<uint16_t>(sign | m);
  }
  return static_cast<uint16_t>(sign);  // underflow -> signed zero
}

float fp16_bits_to_fp32(uint16_t bits) {
  const uint32_t sign = (uint32_t(bits) & 0x8000u) << 16;
  const uint32_t exponent = (bits >> 10) & 0x1Fu;
  const uint32_t mantissa = bits & 0x3FFu;

  if (exponent == 0x1F) {  // inf / NaN
    return bits_float(sign | 0x7F800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return bits_float(sign);  // signed zero
    // Denormal: value = mantissa * 2^-24.
    const float magnitude = static_cast<float>(mantissa) * 0x1.0p-24f;
    return sign ? -magnitude : magnitude;
  }
  return bits_float(sign | ((exponent + 112) << 23) | (mantissa << 13));
}

// ------------------------------------------------------------------ int8

Int8Params choose_int8_params(std::span<const float> values) {
  float lo = values.empty() ? 0.0f : values[0];
  float hi = lo;
  for (float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Always include zero so that zero stays exact.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  Int8Params p;
  const float range = hi - lo;
  p.scale = range > 0 ? range / 255.0f : 1.0f;
  p.zero_point =
      static_cast<int32_t>(std::lround(-128.0 - lo / p.scale));
  p.zero_point = std::clamp(p.zero_point, -128, 127);
  return p;
}

int8_t quantize_int8(float value, const Int8Params& p) {
  const long q = std::lround(value / p.scale) + p.zero_point;
  return static_cast<int8_t>(std::clamp<long>(q, -128, 127));
}

float dequantize_int8(int8_t q, const Int8Params& p) {
  return p.scale * static_cast<float>(int32_t(q) - p.zero_point);
}

// ------------------------------------------------------------------- BFP

BfpBlock bfp_encode(std::span<const float> values, int mantissa_bits) {
  BfpBlock block;
  block.mantissas.resize(values.size());
  float max_abs = 0;
  for (float v : values) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0) {
    block.shared_exponent = 0;
    return block;
  }
  // Shared exponent so the largest magnitude uses the full mantissa range.
  int exp = 0;
  std::frexp(max_abs, &exp);  // max_abs = m * 2^exp, m in [0.5, 1)
  const int mant_max = (1 << (mantissa_bits - 1)) - 1;  // e.g. 127
  block.shared_exponent = static_cast<int8_t>(
      std::clamp(exp - (mantissa_bits - 1), -128, 127));
  const float scale = std::ldexp(1.0f, -block.shared_exponent);
  for (size_t i = 0; i < values.size(); ++i) {
    const long m = std::lround(values[i] * scale);
    block.mantissas[i] = static_cast<int8_t>(
        std::clamp<long>(m, -mant_max - 1, mant_max));
  }
  return block;
}

void bfp_decode(const BfpBlock& block, int mantissa_bits,
                std::span<float> out) {
  (void)mantissa_bits;
  const float scale = std::ldexp(1.0f, block.shared_exponent);
  for (size_t i = 0; i < out.size() && i < block.mantissas.size(); ++i) {
    out[i] = static_cast<float>(block.mantissas[i]) * scale;
  }
}

// --------------------------------------------------------------- codecs

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kFp16: return "fp16";
    case Precision::kBfp8: return "bfp8";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

int64_t storage_bytes(Precision p, int64_t numel) {
  switch (p) {
    case Precision::kFp32:
      return numel * 4;
    case Precision::kFp16:
      return numel * 2;
    case Precision::kBfp8: {
      const int64_t blocks = (numel + kBfpBlockSize - 1) / kBfpBlockSize;
      return numel + blocks;  // one mantissa byte each + exponent per block
    }
    case Precision::kInt8:
      return numel + static_cast<int64_t>(sizeof(float) + sizeof(int32_t));
  }
  return numel * 4;
}

EncodedTensor encode(const Tensor& t, Precision p) {
  EncodedTensor e;
  e.precision = p;
  e.shape = t.shape();
  const int64_t n = t.numel();
  switch (p) {
    case Precision::kFp32: {
      e.bytes.resize(static_cast<size_t>(n * 4));
      std::memcpy(e.bytes.data(), t.data(), static_cast<size_t>(n * 4));
      break;
    }
    case Precision::kFp16: {
      e.bytes.resize(static_cast<size_t>(n * 2));
      auto* out = reinterpret_cast<uint16_t*>(e.bytes.data());
      for (int64_t i = 0; i < n; ++i) out[i] = fp32_to_fp16_bits(t[i]);
      break;
    }
    case Precision::kBfp8: {
      const int64_t blocks = (n + kBfpBlockSize - 1) / kBfpBlockSize;
      e.bytes.resize(static_cast<size_t>(n + blocks));
      size_t pos = 0;
      for (int64_t b = 0; b < blocks; ++b) {
        const int64_t start = b * kBfpBlockSize;
        const int64_t len = std::min<int64_t>(kBfpBlockSize, n - start);
        const BfpBlock block = bfp_encode(
            std::span<const float>(t.data() + start,
                                   static_cast<size_t>(len)),
            8);
        e.bytes[pos++] = static_cast<uint8_t>(block.shared_exponent);
        for (int64_t i = 0; i < len; ++i) {
          e.bytes[pos++] = static_cast<uint8_t>(block.mantissas[
              static_cast<size_t>(i)]);
        }
      }
      break;
    }
    case Precision::kInt8: {
      const Int8Params params =
          choose_int8_params({t.data(), static_cast<size_t>(n)});
      e.bytes.resize(static_cast<size_t>(n) + sizeof(float) +
                     sizeof(int32_t));
      std::memcpy(e.bytes.data(), &params.scale, sizeof(float));
      std::memcpy(e.bytes.data() + sizeof(float), &params.zero_point,
                  sizeof(int32_t));
      auto* out = reinterpret_cast<int8_t*>(e.bytes.data() + sizeof(float) +
                                            sizeof(int32_t));
      for (int64_t i = 0; i < n; ++i) out[i] = quantize_int8(t[i], params);
      break;
    }
  }
  return e;
}

Tensor decode(const EncodedTensor& e) {
  Tensor t(e.shape);
  const int64_t n = t.numel();
  switch (e.precision) {
    case Precision::kFp32: {
      std::memcpy(t.data(), e.bytes.data(), static_cast<size_t>(n * 4));
      break;
    }
    case Precision::kFp16: {
      const auto* in = reinterpret_cast<const uint16_t*>(e.bytes.data());
      for (int64_t i = 0; i < n; ++i) t[i] = fp16_bits_to_fp32(in[i]);
      break;
    }
    case Precision::kBfp8: {
      size_t pos = 0;
      for (int64_t start = 0; start < n; start += kBfpBlockSize) {
        const int64_t len = std::min<int64_t>(kBfpBlockSize, n - start);
        BfpBlock block;
        block.shared_exponent = static_cast<int8_t>(e.bytes[pos++]);
        block.mantissas.resize(static_cast<size_t>(len));
        for (int64_t i = 0; i < len; ++i) {
          block.mantissas[static_cast<size_t>(i)] =
              static_cast<int8_t>(e.bytes[pos++]);
        }
        bfp_decode(block, 8,
                   std::span<float>(t.data() + start,
                                    static_cast<size_t>(len)));
      }
      break;
    }
    case Precision::kInt8: {
      Int8Params params;
      std::memcpy(&params.scale, e.bytes.data(), sizeof(float));
      std::memcpy(&params.zero_point, e.bytes.data() + sizeof(float),
                  sizeof(int32_t));
      const auto* in = reinterpret_cast<const int8_t*>(
          e.bytes.data() + sizeof(float) + sizeof(int32_t));
      for (int64_t i = 0; i < n; ++i) t[i] = dequantize_int8(in[i], params);
      break;
    }
  }
  return t;
}

double round_trip_error(const Tensor& t, Precision p) {
  const Tensor back = decode(encode(t, p));
  double m = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    m = std::max(m, std::abs(double(t[i]) - double(back[i])));
  }
  return m;
}

}  // namespace cham::quant
